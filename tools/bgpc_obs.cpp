// bgpc_obs — flight-recorder span miner: merge the per-node .bgps span
// files a run wrote (bgpc_run --obs / --obs-trace) and print a self-profile
// of where the simulated cycles and the host time went, one row per span
// name. Optionally re-exports the merged spans as a single Chrome
// trace-event JSON for Perfetto. The upc.* rows reproduce the paper's §IV
// library overhead figure (initialize+start+stop = 196 cycles per call)
// from span data alone.
//
//   bgpc_obs DIR APP [--trace=FILE] [--top=N] [--quiet]
#include <algorithm>
#include <cstdio>
#include <string>

#include "cli.hpp"
#include "common/strfmt.hpp"
#include "daemon/attach.hpp"
#include "obs/span_io.hpp"

using namespace bgp;

namespace {

/// --attach: print a live view of a session's snapshot file — per-node
/// lifecycle state and publication cycle, plus the metrics exposition the
/// publisher mirrored into the file.
int attach_view(const std::filesystem::path& snap, bool quiet,
                unsigned retries) {
  daemon::AttachView view;
  try {
    daemon::AttachRetry retry;
    if (retries != 0) retry.attempts = retries;
    view = daemon::attach_file_retry(snap, retry);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bgpc_obs --attach: %s\n", e.what());
    return 1;
  }
  std::printf("%s: session %s, app %s — %s\n", snap.string().c_str(),
              view.session.c_str(), view.app.c_str(),
              view.final_only ? "final" : "LIVE");
  for (const daemon::NodeSnapshot& n : view.nodes) {
    const char* state = n.state == daemon::SnapState::kIdle ? "idle"
                        : n.state == daemon::SnapState::kCounting
                            ? "counting"
                            : "final";
    std::printf("  node %3u card %3u mode %u  %-8s @ cycle %llu\n", n.node_id,
                n.card_id, n.mode, state,
                static_cast<unsigned long long>(n.published_cycle));
  }
  for (const unsigned n : view.unreadable) {
    std::printf("  node %3u UNREADABLE (writer churn or corruption)\n", n);
  }
  if (!quiet && !view.metrics_text.empty()) {
    std::printf("\npublished metrics exposition:\n%s",
                view.metrics_text.c_str());
  }
  return view.unreadable.empty() ? 0 : 1;
}

void print_profile(const std::vector<obs::ProfileRow>& rows, unsigned top) {
  std::printf("%-22s %-10s %10s %14s %10s %12s\n", "span", "cat", "calls",
              "cycles", "cyc/call", "host ms");
  unsigned shown = 0;
  for (const obs::ProfileRow& r : rows) {
    if (top != 0 && shown++ >= top) {
      std::printf("  ... %zu more row(s), raise --top to see them\n",
                  rows.size() - top);
      break;
    }
    std::printf("%-22s %-10s %10llu %14llu %10.1f %12.3f\n", r.name.c_str(),
                std::string(obs::to_string(r.cat)).c_str(),
                static_cast<unsigned long long>(r.calls),
                static_cast<unsigned long long>(r.cycles),
                r.calls ? static_cast<double>(r.cycles) / r.calls : 0.0,
                1e-6 * static_cast<double>(r.host_ns));
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::filesystem::path trace_file;
  unsigned top = 20;
  bool quiet = false;

  std::filesystem::path attach_path;
  cli::FlagSet fs("bgpc_obs", "DIR APP");
  fs.path_value("attach", "SNAPFILE",
                "inspect a daemon/bgpc_run snapshot file (live attach) "
                "instead of span files",
                &attach_path);
  unsigned attach_retries = 0;
  fs.positive_value("attach-retries", "N",
                    "--attach: re-read attempts while the writer holds a "
                    "node's seqlock (default 8; each backs off with jitter)",
                    &attach_retries);
  fs.path_value("trace", "FILE",
                "re-export the merged spans as Chrome trace-event JSON",
                &trace_file);
  fs.unsigned_value("top", "N",
                    "self-profile rows to print, 0 for all (default 20)",
                    &top);
  fs.toggle("quiet", "suppress the self-profile tables", &quiet);

  if (argc >= 2 && argv[1][0] == '-') {
    if (const auto rc = fs.parse(argc, argv, 1)) return *rc;
    if (!attach_path.empty()) {
      return attach_view(attach_path, quiet, attach_retries);
    }
    fs.print_usage(stderr);
    return 2;
  }
  if (argc < 3) {
    fs.print_usage(stderr);
    return 2;
  }
  const std::filesystem::path dir = argv[1];
  const std::string app = argv[2];
  if (const auto rc = fs.parse(argc, argv, 3)) return *rc;

  obs::SpanSet set;
  try {
    set = obs::load_span_dir(dir, app);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bgpc_obs: %s\n", e.what());
    return 1;
  }
  if (set.nodes.empty()) {
    std::fprintf(stderr, "bgpc_obs: no %s.node*.bgps files in %s\n",
                 app.c_str(), dir.string().c_str());
    return 1;
  }

  if (!quiet) {
    std::printf("%s: %zu node(s), %zu span(s), %zu instant(s)",
                app.c_str(), set.nodes.size(), set.spans.size(),
                set.instants.size());
    if (set.dropped > 0) {
      std::printf(", %llu DROPPED (ring too small — raise "
                  "--obs-span-capacity)",
                  static_cast<unsigned long long>(set.dropped));
    }
    std::printf("\n\nself-profile by inclusive simulated cycles:\n");
    print_profile(obs::self_profile(set.spans), top);

    // The paper's §IV library-overhead figure, recovered from span data
    // alone: mean cycles per call of the three hot interface calls.
    u64 calls = 0, cycles = 0;
    double per_call = 0.0;
    for (const obs::ProfileRow& r : obs::self_profile(set.spans)) {
      if (r.name == "upc.initialize" || r.name == "upc.start" ||
          r.name == "upc.stop") {
        calls = std::max(calls, r.calls);
        per_call += r.calls ? static_cast<double>(r.cycles) / r.calls : 0.0;
        cycles += r.cycles;
      }
    }
    if (calls > 0) {
      std::printf("\nlibrary overhead (initialize+start+stop): %.0f "
                  "cycles/call (%llu cycles over %llu calls)\n",
                  per_call, static_cast<unsigned long long>(cycles),
                  static_cast<unsigned long long>(calls));
    }
    if (!set.instants.empty()) {
      std::printf("\ninstants:\n");
      for (const obs::InstantRec& i : set.instants) {
        std::printf("  node %u core %u @ %llu: %s\n", i.node, i.core,
                    static_cast<unsigned long long>(i.cycles),
                    i.name.c_str());
      }
    }
  }

  if (!trace_file.empty()) {
    try {
      obs::write_chrome_trace_file(trace_file, set.spans, set.instants, app);
      if (!quiet) std::printf("wrote %s\n", trace_file.string().c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bgpc_obs: %s\n", e.what());
      return 1;
    }
  }
  return 0;
}
