// bgpc_top — live terminal dashboard for a running bgpcd. Polls the
// daemon's HTTP observability surface (/metrics, /sessions, /healthz)
// and renders, once per interval:
//
//   - daemon health, uptime, and build version,
//   - every host-latency histogram family as count / req-per-sec /
//     p50 / p99 (quantiles via Prometheus-style linear interpolation
//     over the cumulative buckets),
//   - the live session table (state, simulated cycles, modeled bytes).
//
// Rates come from _count deltas between frames, so the first frame shows
// totals only. `--once` prints a single plain frame (what the ctest
// render check uses); `--raw` keeps the per-frame output but skips the
// ANSI clear for piping into a file.
//
//   bgpc_top --port=PORT [--host=H] [--interval=DUR] [--frames=N]
//            [--once] [--raw]
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "cli.hpp"
#include "daemon/json.hpp"
#include "obs/promtext.hpp"

using namespace bgp;
namespace json = bgp::daemon::json;

namespace {

volatile std::sig_atomic_t g_stop = 0;
void on_interrupt(int) { g_stop = 1; }

/// Minimal HTTP/1.0 GET; nullopt when the daemon is unreachable or the
/// response is malformed (the dashboard shows a retry banner instead of
/// dying — daemons restart, dashboards should survive that).
std::optional<std::string> http_get(const std::string& host,
                                    unsigned short port,
                                    const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::nullopt;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return std::nullopt;
  }
  timeval tv{};
  tv.tv_sec = 5;
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  (void)::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return std::nullopt;
  }
  const std::string req = "GET " + path + " HTTP/1.0\r\n\r\n";
  if (::send(fd, req.data(), req.size(), MSG_NOSIGNAL) !=
      static_cast<ssize_t>(req.size())) {
    ::close(fd);
    return std::nullopt;
  }
  std::string all;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    all.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const std::size_t split = all.find("\r\n\r\n");
  if (split == std::string::npos) return std::nullopt;
  return all.substr(split + 4);
}

/// Human latency: seconds -> "840ns" / "12.4us" / "3.1ms" / "1.25s".
std::string fmt_latency(double seconds) {
  if (!(seconds == seconds)) return "-";  // NaN: empty histogram
  if (seconds < 1e-6) return strfmt("%.0fns", seconds * 1e9);
  if (seconds < 1e-3) return strfmt("%.1fus", seconds * 1e6);
  if (seconds < 1.0) return strfmt("%.2fms", seconds * 1e3);
  return strfmt("%.2fs", seconds);
}

std::string fmt_bytes(double b) {
  const double gib = 1024.0 * static_cast<double>(MiB);
  if (b >= gib) return strfmt("%.1fGiB", b / gib);
  if (b >= static_cast<double>(MiB)) {
    return strfmt("%.1fMiB", b / static_cast<double>(MiB));
  }
  if (b >= 1024.0) return strfmt("%.1fKiB", b / 1024.0);
  return strfmt("%.0fB", b);
}

/// Strip the shared prefix/suffix from a histogram key for the table:
/// `bgpcd_control_request_seconds{phase="parse"}` -> `control_request{parse}`.
std::string short_key(const std::string& key) {
  std::string s = key;
  if (s.rfind("bgpcd_", 0) == 0) s.erase(0, 6);
  const std::size_t sec = s.find("_seconds");
  if (sec != std::string::npos) s.erase(sec, 8);
  // Collapse `{label="value"}` to `{value}` — the label name is obvious
  // from the family and the column stays narrow.
  const std::size_t brace = s.find('{');
  if (brace != std::string::npos) {
    const std::size_t eq = s.find('=', brace);
    const std::size_t close = s.rfind('}');
    if (eq != std::string::npos && close != std::string::npos) {
      std::string v = s.substr(eq + 1, close - eq - 1);
      std::erase(v, '"');
      s = s.substr(0, brace) + "{" + v + "}";
    }
  }
  return s;
}

struct TopArgs {
  std::string host = "127.0.0.1";
  unsigned port = 0;
  u64 interval_ns = u64{1'000'000'000};
  unsigned frames = 0;  ///< 0 = until interrupted
  bool once = false;
  bool raw = false;
};

/// One full poll + render. `prev_counts`/`prev_time` carry rate state
/// between frames. Returns false when the daemon was unreachable.
bool render_frame(const TopArgs& a,
                  std::map<std::string, u64>& prev_counts,
                  std::chrono::steady_clock::time_point& prev_time,
                  unsigned frame) {
  const auto port = static_cast<unsigned short>(a.port);
  const auto metrics = http_get(a.host, port, "/metrics");
  const auto sessions = http_get(a.host, port, "/sessions");
  const auto health = http_get(a.host, port, "/healthz");
  const auto now = std::chrono::steady_clock::now();
  const double dt =
      std::chrono::duration<double>(now - prev_time).count();

  if (!a.raw && !a.once) std::printf("\x1b[H\x1b[2J");
  if (!metrics) {
    std::printf("bgpc_top: %s:%u unreachable (frame %u)\n", a.host.c_str(),
                a.port, frame);
    return false;
  }

  // Header: health, version, uptime, event counts.
  std::string version = "unknown";
  double uptime = 0.0;
  double events_total = 0.0;
  std::map<std::string, double> gauges;
  for (std::size_t pos = 0; pos < metrics->size();) {
    std::size_t eol = metrics->find('\n', pos);
    if (eol == std::string::npos) eol = metrics->size();
    const std::string_view line(metrics->data() + pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#') continue;
    try {
      const obs::PromSample s = obs::parse_prometheus_sample(line);
      if (s.name == "bgpcd_build_info") {
        for (const auto& [k, v] : s.labels) {
          if (k == "version") version = v;
        }
      } else if (s.name == "bgpcd_uptime_seconds") {
        uptime = s.value;
      } else if (s.name == "bgpcd_host_events_total") {
        events_total += s.value;
      } else if (s.labels.empty()) {
        gauges[s.name] = s.value;
      }
    } catch (const std::exception&) {
      // A malformed line is the daemon's bug, not ours: skip it.
    }
  }
  std::string health_line = health ? *health : "unreachable";
  while (!health_line.empty() &&
         (health_line.back() == '\n' || health_line.back() == '\r')) {
    health_line.pop_back();
  }
  std::printf("bgpcd %s on %s:%u — %s — up %.0fs — %.0f host events\n",
              version.c_str(), a.host.c_str(), a.port, health_line.c_str(),
              uptime, events_total);

  // Host-latency histogram table, one row per family instance.
  const auto hists = obs::parse_prometheus_histograms(*metrics);
  std::printf("\n%-32s %10s %9s %9s %9s\n", "host latency", "count", "req/s",
              "p50", "p99");
  for (const auto& [key, h] : hists) {
    double rate = 0.0;
    if (const auto it = prev_counts.find(key);
        it != prev_counts.end() && dt > 0 && h.count >= it->second) {
      rate = static_cast<double>(h.count - it->second) / dt;
    }
    prev_counts[key] = h.count;
    std::printf("%-32s %10llu %9.1f %9s %9s\n", short_key(key).c_str(),
                static_cast<unsigned long long>(h.count), rate,
                fmt_latency(obs::histogram_quantile(h, 0.50)).c_str(),
                fmt_latency(obs::histogram_quantile(h, 0.99)).c_str());
  }
  prev_time = now;

  // Session table.
  std::printf("\n%-24s %-10s %14s %10s  %s\n", "session", "state",
              "sim cycles", "resident", "detail");
  unsigned shown = 0;
  if (sessions) {
    try {
      const json::Value arr = json::Value::parse(*sessions);
      for (const json::Value& s : arr.items()) {
        const json::Value* name = s.get("session");
        const json::Value* state = s.get("state");
        if (name == nullptr || state == nullptr) continue;
        const json::Value* cyc = s.get("sim_cycles");
        const json::Value* res = s.get("resident_bytes");
        const json::Value* det = s.get("detail");
        std::string detail = det != nullptr ? det->as_string() : "";
        if (detail.size() > 40) detail = detail.substr(0, 37) + "...";
        std::printf("%-24s %-10s %14.0f %10s  %s\n",
                    name->as_string().c_str(), state->as_string().c_str(),
                    cyc != nullptr ? cyc->as_number() : 0.0,
                    fmt_bytes(res != nullptr ? res->as_number() : 0.0).c_str(),
                    detail.c_str());
        ++shown;
      }
    } catch (const std::exception& e) {
      std::printf("(sessions unavailable: %s)\n", e.what());
    }
  }
  if (shown == 0) std::printf("(no sessions)\n");

  // A few load-bearing service gauges, when present.
  const auto g = [&gauges](const char* k) {
    const auto it = gauges.find(k);
    return it != gauges.end() ? it->second : 0.0;
  };
  std::printf("\nrunning %.0f  draining %.0f  read-only %.0f  resident %s\n",
              g("bgpcd_sessions_running"), g("bgpcd_draining"),
              g("bgpcd_read_only"),
              fmt_bytes(g("bgpcd_resident_bytes")).c_str());
  std::fflush(stdout);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  TopArgs a;
  cli::FlagSet fs("bgpc_top");
  fs.string_value("host", "ADDR", "daemon address (default 127.0.0.1)",
                  &a.host);
  fs.positive_value("port", "PORT", "daemon HTTP port (required)", &a.port);
  fs.duration_ns_value("interval", "DUR",
                       "refresh period, e.g. 500ms or 2s (default 1s)",
                       &a.interval_ns);
  fs.unsigned_value("frames", "N",
                    "stop after N refreshes (default 0 = until ^C)",
                    &a.frames);
  fs.toggle("once", "render one plain frame and exit", &a.once);
  fs.toggle("raw", "no ANSI clear between frames (for piping)", &a.raw);
  if (const auto rc = fs.parse(argc, argv, 1)) return *rc;
  if (a.port == 0 || a.port > 65535) {
    std::fprintf(stderr, "bgpc_top: --port=PORT (1..65535) is required\n");
    fs.print_usage(stderr);
    return 2;
  }
  if (a.once) a.frames = 1;

  std::signal(SIGINT, on_interrupt);
  std::signal(SIGTERM, on_interrupt);
  std::signal(SIGPIPE, SIG_IGN);

  std::map<std::string, u64> prev_counts;
  auto prev_time = std::chrono::steady_clock::now();
  bool ever_ok = false;
  for (unsigned frame = 0; g_stop == 0; ++frame) {
    ever_ok |= render_frame(a, prev_counts, prev_time, frame);
    if (a.frames != 0 && frame + 1 >= a.frames) break;
    std::this_thread::sleep_for(std::chrono::nanoseconds(a.interval_ns));
  }
  return ever_ok ? 0 : 1;
}
