// bgpcd — the resident counter-service daemon. `bgpcd serve` hosts
// simulated sessions (the same Machine + interface-library construction
// bgpc_run does) behind a Unix-socket control channel and an HTTP
// observability surface; the other subcommands are thin control-channel
// clients:
//
//   bgpcd serve [--socket=P] [--dir=D] [--http=PORT] [--snapshot-period=DUR]
//               [--max-sessions=N] [--max-ranks=N] [--max-bytes=B]
//               [--preload=JSON]...
//   bgpcd submit JOBJSON [--socket=P] [--wait]
//   bgpcd list|drain|shutdown|ping [--socket=P]
//   bgpcd status|kill SESSION [--socket=P]
//
// SIGTERM/SIGINT drain gracefully: admissions stop, running sessions finish
// (or checkpoint when killed), the exit code is 0 when no session failed.
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <thread>

#include "cli.hpp"
#include "daemon/daemon.hpp"

using namespace bgp;
namespace json = bgp::daemon::json;

namespace {

int g_signal_pipe[2] = {-1, -1};

void on_drain_signal(int) {
  const char byte = 1;
  // Async-signal-safe: just poke the drain waiter thread.
  [[maybe_unused]] const ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

int serve(int argc, char** argv) {
  daemon::DaemonConfig cfg;
  cfg.service.work_dir = "bgpcd_work";
  unsigned http_port = 0;
  std::vector<std::string> preload;
  u64 max_bytes = 0;

  cli::FlagSet fs("bgpcd serve");
  fs.path_value("socket", "PATH",
                "control socket path (default DIR/bgpcd.sock)",
                &cfg.socket_path);
  fs.path_value("dir", "DIR", "session working directory (default bgpcd_work)",
                &cfg.service.work_dir);
  fs.unsigned_value("http", "PORT",
                    "HTTP port on 127.0.0.1 (default 0 = ephemeral)",
                    &http_port);
  fs.positive_value("http-threads", "N", "HTTP accept threads (default 2)",
                    &cfg.http_threads);
  fs.duration_cycles_value(
      "snapshot-period", "DUR",
      "default snapshot publication period in simulated time, with a "
      "mandatory unit suffix, e.g. 500us or 2ms (default 500us)",
      &cfg.service.snapshot.period_cycles);
  fs.positive_value("max-sessions", "N",
                    "admission quota: concurrent sessions (default 8)",
                    &cfg.service.quotas.max_sessions);
  fs.positive_value("max-ranks", "N",
                    "admission quota: ranks per session (default 1024)",
                    &cfg.service.quotas.max_ranks);
  fs.u64_value("max-bytes", "B",
               "admission quota: modeled resident bytes (default 2 GiB)",
               &max_bytes);
  fs.repeated_value("preload", "JSON",
                    "submit this job spec at startup (repeatable)", &preload);
  if (const auto rc = fs.parse(argc, argv, 2)) return *rc;
  cfg.http_port = static_cast<unsigned short>(http_port);
  if (max_bytes != 0) cfg.service.quotas.max_resident_bytes = max_bytes;

  if (::pipe(g_signal_pipe) != 0) {
    std::perror("bgpcd: pipe");
    return 1;
  }
  struct sigaction sa{};
  sa.sa_handler = on_drain_signal;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  daemon::Daemon d(cfg);
  const daemon::RecoveryReport& rec = d.service().recovery();
  if (rec.journal_found) {
    std::printf(
        "bgpcd: journal replayed %zu record(s): %u session(s) re-listed, "
        "%u orphan(s) aborted, %u dump(s) salvaged\n",
        rec.records_replayed, rec.relisted, rec.orphans_aborted,
        rec.dumps_salvaged);
    if (rec.bytes_dropped != 0) {
      std::printf("bgpcd: dropped %zu torn journal byte(s): %s\n",
                  rec.bytes_dropped, rec.tail_error.c_str());
    }
    for (const std::string& line : rec.log) {
      std::printf("bgpcd: recovery: %s\n", line.c_str());
    }
  }
  if (d.service().read_only()) {
    std::printf("bgpcd: WARNING: journal unwritable, serving read-only\n");
  }
  std::printf("bgpcd: control socket %s\n",
              d.socket_path().string().c_str());
  std::printf("bgpcd: http://127.0.0.1:%u/metrics /sessions /healthz\n",
              d.http_port());
  std::fflush(stdout);

  for (const std::string& text : preload) {
    json::Value req = json::Value::object();
    req.set("cmd", json::Value("submit"));
    req.set("job", json::Value::parse(text));
    const json::Value resp = daemon::control_request(d.socket_path(), req);
    std::printf("bgpcd: preload -> %s\n", resp.dump().c_str());
  }

  std::thread drain_waiter([&d] {
    char byte = 0;
    if (::read(g_signal_pipe[0], &byte, 1) == 1) {
      std::printf("bgpcd: drain requested, waiting for sessions\n");
      std::fflush(stdout);
      d.begin_drain();
    }
  });
  const unsigned failed = d.run_until_drained();
  ::close(g_signal_pipe[1]);  // wakes the waiter if a control drain got here
  drain_waiter.join();
  ::close(g_signal_pipe[0]);
  std::printf("bgpcd: drained, %u session(s) failed\n", failed);
  return failed == 0 ? 0 : 1;
}

/// Shared client plumbing: parse --socket/--retries/--timeout, send `req`
/// with jittered-backoff retries, print the response, exit 0 on
/// {"ok":true}.
int run_client(const char* sub, int argc, char** argv, int first,
               json::Value req, const std::filesystem::path& socket_default,
               bool* wait_out = nullptr) {
  std::filesystem::path socket = socket_default;
  daemon::ControlRetry retry;
  u64 timeout_ns = 0;
  cli::FlagSet fs(strfmt("bgpcd %s", sub));
  fs.path_value("socket", "PATH", "control socket (default bgpcd_work/bgpcd.sock)",
                &socket);
  fs.positive_value("retries", "N",
                    "attempts per request when the daemon is unreachable or "
                    "answers with a retryable error (default 5)",
                    &retry.attempts);
  fs.duration_ns_value("timeout", "DUR",
                       "per-request socket deadline, e.g. 5s or 500ms "
                       "(default 10s)",
                       &timeout_ns);
  if (wait_out != nullptr) {
    fs.toggle("wait", "poll until the session reaches a terminal state",
              wait_out);
  }
  if (const auto rc = fs.parse(argc, argv, first)) return *rc;
  if (timeout_ns != 0) {
    retry.timeout_ms = static_cast<unsigned>(
        std::min<u64>(timeout_ns / 1'000'000, ~0u));
  }
  try {
    json::Value resp = daemon::control_request_retry(socket, req, retry);
    std::printf("%s\n", resp.dump().c_str());
    const json::Value* ok = resp.get("ok");
    if (ok == nullptr || !ok->as_bool()) return 1;
    if (wait_out != nullptr && *wait_out) {
      const json::Value* session = resp.get("session");
      if (session == nullptr) return 1;
      json::Value status_req = json::Value::object();
      status_req.set("cmd", json::Value("status"));
      status_req.set("session", *session);
      for (;;) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        resp = daemon::control_request_retry(socket, status_req, retry);
        const json::Value* s = resp.get("session");
        const json::Value* state = s != nullptr ? s->get("state") : nullptr;
        if (state == nullptr) return 1;
        const std::string& st = state->as_string();
        if (st != "queued" && st != "running") {
          std::printf("%s\n", resp.dump().c_str());
          return st == "finished" ? 0 : 1;
        }
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bgpcd %s: %s\n", sub, e.what());
    return 1;
  }
}

void usage(std::FILE* out) {
  std::fprintf(out,
               "usage: bgpcd serve|submit|list|status|kill|drain|shutdown|"
               "ping [args] (see bgpcd SUBCOMMAND --help)\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage(stderr);
    return 2;
  }
  const std::string sub = argv[1];
  const std::filesystem::path socket_default = "bgpcd_work/bgpcd.sock";
  if (sub == "--help") {
    usage(stdout);
    return 0;
  }
  if (sub == "--version") {
    std::printf("bgpcd %s\n", cli::version());
    return 0;
  }
  if (sub == "serve") return serve(argc, argv);
  if (sub == "submit") {
    if (argc < 3 || argv[2][0] == '-') {
      std::fprintf(stderr, "usage: bgpcd submit JOBJSON [--socket=P] [--wait]\n");
      return 2;
    }
    json::Value req = json::Value::object();
    req.set("cmd", json::Value("submit"));
    try {
      req.set("job", json::Value::parse(argv[2]));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bgpcd submit: %s\n", e.what());
      return 2;
    }
    bool wait = false;
    return run_client("submit", argc, argv, 3, std::move(req), socket_default,
                      &wait);
  }
  if (sub == "list" || sub == "drain" || sub == "shutdown" || sub == "ping") {
    json::Value req = json::Value::object();
    req.set("cmd", json::Value(sub));
    return run_client(sub.c_str(), argc, argv, 2, std::move(req),
                      socket_default);
  }
  if (sub == "status" || sub == "kill") {
    if (argc < 3 || argv[2][0] == '-') {
      std::fprintf(stderr, "usage: bgpcd %s SESSION [--socket=P]\n",
                   sub.c_str());
      return 2;
    }
    json::Value req = json::Value::object();
    req.set("cmd", json::Value(sub));
    req.set("session", json::Value(argv[2]));
    return run_client(sub.c_str(), argc, argv, 3, std::move(req),
                      socket_default);
  }
  usage(stderr);
  return 2;
}
