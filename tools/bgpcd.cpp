// bgpcd — the resident counter-service daemon. `bgpcd serve` hosts
// simulated sessions (the same Machine + interface-library construction
// bgpc_run does) behind a Unix-socket control channel and an HTTP
// observability surface; the other subcommands are thin control-channel
// clients:
//
//   bgpcd serve [--socket=P] [--dir=D] [--http=PORT] [--snapshot-period=DUR]
//               [--max-sessions=N] [--max-ranks=N] [--max-bytes=B]
//               [--preload=JSON]...
//   bgpcd submit JOBJSON [--socket=P] [--wait]
//   bgpcd list|drain|shutdown|ping [--socket=P]
//   bgpcd status|kill SESSION [--socket=P]
//
// SIGTERM/SIGINT drain gracefully: admissions stop, running sessions finish
// (or checkpoint when killed), the exit code is 0 when no session failed.
#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <thread>

#include "cli.hpp"
#include "daemon/daemon.hpp"

using namespace bgp;
namespace json = bgp::daemon::json;

namespace {

int g_signal_pipe[2] = {-1, -1};

void on_drain_signal(int) {
  const char byte = 1;
  // Async-signal-safe: just poke the drain waiter thread.
  [[maybe_unused]] const ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

// --- fatal-signal flight dump ---------------------------------------------
// On SIGSEGV/SIGABRT the mmap'd flight ring already survives (the kernel
// owns the pages), but a dump written *now* saves the next operator a
// restart: append every CRC-valid ring record to flight.jsonl using only
// async-signal-safe calls, then re-raise with the default disposition so
// the crash still produces a core/exit status.
std::atomic<obs::FlightRing*> g_flight_ring{nullptr};
char g_flight_dump_path[4096] = {0};

void on_fatal_signal(int sig) {
  const obs::FlightRing* ring =
      g_flight_ring.load(std::memory_order_acquire);
  if (ring != nullptr && g_flight_dump_path[0] != '\0') {
    const int fd = ::open(g_flight_dump_path,
                          O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
    if (fd >= 0) {
      ring->dump_signal_safe(fd);
      ::close(fd);
    }
  }
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

void install_flight_dump(daemon::HostObs& host) {
  obs::FlightRing* ring = host.ring();
  if (ring == nullptr) return;
  const std::string dump = host.flight_dump_path().string();
  if (dump.size() + 1 > sizeof(g_flight_dump_path)) return;
  std::memcpy(g_flight_dump_path, dump.c_str(), dump.size() + 1);
  g_flight_ring.store(ring, std::memory_order_release);
  struct sigaction sa{};
  sa.sa_handler = on_fatal_signal;
  ::sigaction(SIGSEGV, &sa, nullptr);
  ::sigaction(SIGABRT, &sa, nullptr);
  ::sigaction(SIGBUS, &sa, nullptr);
}

int serve(int argc, char** argv) {
  daemon::DaemonConfig cfg;
  cfg.service.work_dir = "bgpcd_work";
  unsigned http_port = 0;
  std::vector<std::string> preload;
  u64 max_bytes = 0;
  std::string log_level = "info";

  cli::FlagSet fs("bgpcd serve");
  fs.path_value("socket", "PATH",
                "control socket path (default DIR/bgpcd.sock)",
                &cfg.socket_path);
  fs.path_value("dir", "DIR", "session working directory (default bgpcd_work)",
                &cfg.service.work_dir);
  fs.unsigned_value("http", "PORT",
                    "HTTP port on 127.0.0.1 (default 0 = ephemeral)",
                    &http_port);
  fs.positive_value("http-threads", "N", "HTTP accept threads (default 2)",
                    &cfg.http_threads);
  fs.duration_cycles_value(
      "snapshot-period", "DUR",
      "default snapshot publication period in simulated time, with a "
      "mandatory unit suffix, e.g. 500us or 2ms (default 500us)",
      &cfg.service.snapshot.period_cycles);
  fs.positive_value("max-sessions", "N",
                    "admission quota: concurrent sessions (default 8)",
                    &cfg.service.quotas.max_sessions);
  fs.positive_value("max-ranks", "N",
                    "admission quota: ranks per session (default 1024)",
                    &cfg.service.quotas.max_ranks);
  fs.u64_value("max-bytes", "B",
               "admission quota: modeled resident bytes (default 2 GiB)",
               &max_bytes);
  fs.repeated_value("preload", "JSON",
                    "submit this job spec at startup (repeatable)", &preload);
  fs.string_value("log-level", "LEVEL",
                  "stderr threshold for structured host events: debug, "
                  "info, warn, error, or off (default info; events.jsonl "
                  "always gets everything)",
                  &log_level);
  if (const auto rc = fs.parse(argc, argv, 2)) return *rc;
  cfg.http_port = static_cast<unsigned short>(http_port);
  if (max_bytes != 0) cfg.service.quotas.max_resident_bytes = max_bytes;
  cfg.service.host.version = cli::version();
  if (log_level == "off" || log_level == "none") {
    cfg.service.host.stderr_level.reset();
  } else if (const auto lv = obs::parse_event_level(log_level)) {
    cfg.service.host.stderr_level = *lv;
  } else {
    std::fprintf(stderr,
                 "bgpcd serve: --log-level must be debug, info, warn, "
                 "error, or off; got '%s'\n",
                 log_level.c_str());
    return 2;
  }

  if (::pipe(g_signal_pipe) != 0) {
    std::perror("bgpcd: pipe");
    return 1;
  }
  struct sigaction sa{};
  sa.sa_handler = on_drain_signal;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  daemon::Daemon d(cfg);
  install_flight_dump(d.service().host());
  if (d.service().host().salvaged_events() != 0) {
    std::printf("bgpcd: salvaged %zu flight-recorder event(s) into %s\n",
                d.service().host().salvaged_events(),
                d.service().host().flight_dump_path().string().c_str());
  }
  const daemon::RecoveryReport& rec = d.service().recovery();
  if (rec.journal_found) {
    std::printf(
        "bgpcd: journal replayed %zu record(s): %u session(s) re-listed, "
        "%u orphan(s) aborted, %u dump(s) salvaged\n",
        rec.records_replayed, rec.relisted, rec.orphans_aborted,
        rec.dumps_salvaged);
    if (rec.bytes_dropped != 0) {
      std::printf("bgpcd: dropped %zu torn journal byte(s): %s\n",
                  rec.bytes_dropped, rec.tail_error.c_str());
    }
    for (const std::string& line : rec.log) {
      std::printf("bgpcd: recovery: %s\n", line.c_str());
    }
  }
  if (d.service().read_only()) {
    std::printf("bgpcd: WARNING: journal unwritable, serving read-only\n");
  }
  std::printf("bgpcd: control socket %s\n",
              d.socket_path().string().c_str());
  std::printf(
      "bgpcd: http://127.0.0.1:%u/metrics /sessions /healthz /debug/events\n",
      d.http_port());
  std::fflush(stdout);

  for (const std::string& text : preload) {
    json::Value req = json::Value::object();
    req.set("cmd", json::Value("submit"));
    req.set("job", json::Value::parse(text));
    const json::Value resp = daemon::control_request(d.socket_path(), req);
    std::printf("bgpcd: preload -> %s\n", resp.dump().c_str());
  }

  std::thread drain_waiter([&d] {
    char byte = 0;
    if (::read(g_signal_pipe[0], &byte, 1) == 1) {
      std::printf("bgpcd: drain requested, waiting for sessions\n");
      std::fflush(stdout);
      d.begin_drain();
    }
  });
  const unsigned failed = d.run_until_drained();
  ::close(g_signal_pipe[1]);  // wakes the waiter if a control drain got here
  drain_waiter.join();
  ::close(g_signal_pipe[0]);
  std::printf("bgpcd: drained, %u session(s) failed\n", failed);
  // The ring dies with the Daemon below; disarm the crash dumper first.
  g_flight_ring.store(nullptr, std::memory_order_release);
  return failed == 0 ? 0 : 1;
}

/// Shared client plumbing: parse --socket/--retries/--timeout, send `req`
/// with jittered-backoff retries, print the response, exit 0 on
/// {"ok":true}.
int run_client(const char* sub, int argc, char** argv, int first,
               json::Value req, const std::filesystem::path& socket_default,
               bool* wait_out = nullptr) {
  std::filesystem::path socket = socket_default;
  daemon::ControlRetry retry;
  u64 timeout_ns = 0;
  cli::FlagSet fs(strfmt("bgpcd %s", sub));
  fs.path_value("socket", "PATH", "control socket (default bgpcd_work/bgpcd.sock)",
                &socket);
  fs.positive_value("retries", "N",
                    "attempts per request when the daemon is unreachable or "
                    "answers with a retryable error (default 5)",
                    &retry.attempts);
  fs.duration_ns_value("timeout", "DUR",
                       "per-request socket deadline, e.g. 5s or 500ms "
                       "(default 10s)",
                       &timeout_ns);
  if (wait_out != nullptr) {
    fs.toggle("wait", "poll until the session reaches a terminal state",
              wait_out);
  }
  if (const auto rc = fs.parse(argc, argv, first)) return *rc;
  if (timeout_ns != 0) {
    retry.timeout_ms = static_cast<unsigned>(
        std::min<u64>(timeout_ns / 1'000'000, ~0u));
  }
  try {
    json::Value resp = daemon::control_request_retry(socket, req, retry);
    std::printf("%s\n", resp.dump().c_str());
    const json::Value* ok = resp.get("ok");
    if (ok == nullptr || !ok->as_bool()) return 1;
    if (wait_out != nullptr && *wait_out) {
      const json::Value* session = resp.get("session");
      if (session == nullptr) return 1;
      json::Value status_req = json::Value::object();
      status_req.set("cmd", json::Value("status"));
      status_req.set("session", *session);
      for (;;) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        resp = daemon::control_request_retry(socket, status_req, retry);
        const json::Value* s = resp.get("session");
        const json::Value* state = s != nullptr ? s->get("state") : nullptr;
        if (state == nullptr) return 1;
        const std::string& st = state->as_string();
        if (st != "queued" && st != "running") {
          std::printf("%s\n", resp.dump().c_str());
          return st == "finished" ? 0 : 1;
        }
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bgpcd %s: %s\n", sub, e.what());
    return 1;
  }
}

void usage(std::FILE* out) {
  std::fprintf(out,
               "usage: bgpcd serve|submit|list|status|kill|drain|shutdown|"
               "ping [args] (see bgpcd SUBCOMMAND --help)\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage(stderr);
    return 2;
  }
  const std::string sub = argv[1];
  const std::filesystem::path socket_default = "bgpcd_work/bgpcd.sock";
  if (sub == "--help") {
    usage(stdout);
    return 0;
  }
  if (sub == "--version") {
    std::printf("bgpcd %s\n", cli::version());
    return 0;
  }
  if (sub == "serve") return serve(argc, argv);
  if (sub == "submit") {
    if (argc < 3 || argv[2][0] == '-') {
      std::fprintf(stderr, "usage: bgpcd submit JOBJSON [--socket=P] [--wait]\n");
      return 2;
    }
    json::Value req = json::Value::object();
    req.set("cmd", json::Value("submit"));
    try {
      req.set("job", json::Value::parse(argv[2]));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bgpcd submit: %s\n", e.what());
      return 2;
    }
    bool wait = false;
    return run_client("submit", argc, argv, 3, std::move(req), socket_default,
                      &wait);
  }
  if (sub == "list" || sub == "drain" || sub == "shutdown" || sub == "ping") {
    json::Value req = json::Value::object();
    req.set("cmd", json::Value(sub));
    return run_client(sub.c_str(), argc, argv, 2, std::move(req),
                      socket_default);
  }
  if (sub == "status" || sub == "kill") {
    if (argc < 3 || argv[2][0] == '-') {
      std::fprintf(stderr, "usage: bgpcd %s SESSION [--socket=P]\n",
                   sub.c_str());
      return 2;
    }
    json::Value req = json::Value::object();
    req.set("cmd", json::Value(sub));
    req.set("session", json::Value(argv[2]));
    return run_client(sub.c_str(), argc, argv, 3, std::move(req),
                      socket_default);
  }
  usage(stderr);
  return 2;
}
