// bgpc_trace — time-series counter tracing end to end: run an instrumented
// NAS benchmark with the threshold-driven sampler attached to every node,
// then mine the per-node trace files into a per-interval timeline and a
// change-point phase report (MFLOPS, DDR bandwidth and instruction-mix
// drift over the run). With --mine-only it skips the run and mines an
// existing trace directory, including the `.bgpt.partial` leftovers of
// nodes that died mid-run (the report carries a coverage annotation).
//
//   bgpc_trace BENCH [options]            run + trace + mine
//   bgpc_trace --mine-only DIR APP [options]   mine existing traces
//   bgpc_trace --list                     list benchmarks, modes, presets
//
//   run options (mirroring bgpc_run):
//     --nodes=N            partition size (default 4)
//     --mode=M             smp1|smp4|dual|vnm (default vnm)
//     --class=C            S|W|A (default S)
//     --ranks=N            use fewer ranks than the partition hosts
//     --dumps=DIR          trace/dump directory (default bgpc_traces)
//     --interval-cycles=N  sampling interval (default 10000)
//     --events=PRESET      default|fp|mix|mem (see --list)
//     --buffer=N           per-node ring capacity in intervals (default 4096)
//     --kill-nodes=N       kill N random nodes mid-run (fault injection)
//     --fault-seed=S       seed for --kill-nodes (default 1)
//   mining options:
//     --timeline=FILE      write the per-interval CSV
//     --phases=FILE        write the per-phase CSV
//     --expected-nodes=N   traces the run should have produced (default infer)
//     --change-threshold=F phase-detection sensitivity (default 0.35)
//     --min-phase=N        minimum phase length in intervals (default 4)
//     --sealed-only        ignore .bgpt.partial files
//     --quiet              suppress the stdout report
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>

#include "cli.hpp"
#include "core/session.hpp"
#include "fault/fault.hpp"
#include "nas/kernel.hpp"
#include "postproc/timeline.hpp"

using namespace bgp;

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s BENCH [--nodes=N] [--mode=smp1|smp4|dual|vnm] "
      "[--class=S|W|A] [--ranks=N] [--dumps=DIR] [--interval-cycles=N] "
      "[--events=PRESET] [--buffer=N] [--kill-nodes=N] [--fault-seed=S] "
      "[mining options]\n"
      "       %s --mine-only DIR APP [mining options]\n"
      "       %s --list\n"
      "mining options: [--timeline=FILE] [--phases=FILE] "
      "[--expected-nodes=N] [--change-threshold=F] [--min-phase=N] "
      "[--sealed-only] [--quiet]\n",
      argv0, argv0, argv0);
  return 2;
}

int list_choices() {
  std::printf("benchmarks:");
  for (const nas::Benchmark b : nas::all_benchmarks()) {
    std::printf(" %s", std::string(nas::name(b)).c_str());
  }
  std::printf("\nmodes: smp1 smp4 dual vnm\nclasses: S W A\nevent presets:");
  for (const std::string& p : trace::trace_preset_names()) {
    std::printf(" %s", p.c_str());
  }
  std::printf("\n");
  return 0;
}

struct MiningArgs {
  post::TimelineOptions opts;
  std::string timeline_file;
  std::string phases_file;
  bool quiet = false;
};

/// Consume one mining flag; returns false when `arg` is not a mining flag.
bool parse_mining_arg(const char* arg, MiningArgs& m) {
  const char* v = nullptr;
  if (cli::match_value(arg, "timeline", &v)) {
    m.timeline_file = v;
  } else if (cli::match_value(arg, "phases", &v)) {
    m.phases_file = v;
  } else if (cli::match_value(arg, "expected-nodes", &v)) {
    m.opts.expected_nodes = cli::parse_unsigned("--expected-nodes", v);
  } else if (cli::match_value(arg, "change-threshold", &v)) {
    m.opts.change_threshold = cli::parse_double("--change-threshold", v, 0.0, 5.0);
  } else if (cli::match_value(arg, "min-phase", &v)) {
    m.opts.min_phase_intervals = cli::parse_positive("--min-phase", v);
  } else if (cli::match_flag(arg, "sealed-only")) {
    m.opts.include_partial = false;
  } else if (cli::match_flag(arg, "quiet")) {
    m.quiet = true;
  } else {
    return false;
  }
  return true;
}

int report_and_write(const post::TimelineReport& report, const MiningArgs& m) {
  if (!m.quiet) {
    std::fputs(post::render_timeline(report).c_str(), stdout);
  }
  if (!m.timeline_file.empty()) {
    const std::string text = post::interval_csv(report);
    std::FILE* f = std::fopen(m.timeline_file.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", m.timeline_file.c_str());
      return 1;
    }
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    if (!m.quiet) std::printf("wrote %s\n", m.timeline_file.c_str());
  }
  if (!m.phases_file.empty()) {
    const std::string text = post::phase_csv(report);
    std::FILE* f = std::fopen(m.phases_file.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", m.phases_file.c_str());
      return 1;
    }
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    if (!m.quiet) std::printf("wrote %s\n", m.phases_file.c_str());
  }
  return report.ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  if (cli::match_flag(argv[1], "list")) return list_choices();

  MiningArgs mining;

  if (cli::match_flag(argv[1], "mine-only")) {
    if (argc < 4) return usage(argv[0]);
    const std::filesystem::path dir = argv[2];
    const std::string app = argv[3];
    try {
      for (int i = 4; i < argc; ++i) {
        if (!parse_mining_arg(argv[i], mining)) {
          std::fprintf(stderr, "unknown flag %s\n", argv[i]);
          return usage(argv[0]);
        }
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return usage(argv[0]);
    }
    return report_and_write(post::mine_timeline(dir, app, mining.opts),
                            mining);
  }

  nas::Benchmark bench;
  unsigned nodes = 4, ranks = 0, kill_nodes = 0;
  u64 fault_seed = 1;
  sys::OpMode mode = sys::OpMode::kVnm;
  nas::ProblemClass cls = nas::ProblemClass::kS;
  std::filesystem::path dir = "bgpc_traces";
  trace::TraceConfig tc;
  tc.enabled = true;

  try {
    bench = nas::parse_benchmark(argv[1]);
    for (int i = 2; i < argc; ++i) {
      const char* v = nullptr;
      if (cli::match_value(argv[i], "nodes", &v)) {
        nodes = cli::parse_positive("--nodes", v);
      } else if (cli::match_value(argv[i], "mode", &v)) {
        mode = sys::parse_mode(v);
      } else if (cli::match_value(argv[i], "class", &v)) {
        cls = nas::parse_class(v);
      } else if (cli::match_value(argv[i], "ranks", &v)) {
        ranks = cli::parse_unsigned("--ranks", v);
      } else if (cli::match_value(argv[i], "dumps", &v)) {
        dir = v;
      } else if (cli::match_value(argv[i], "interval-cycles", &v)) {
        tc.interval_cycles = cli::parse_u64("--interval-cycles", v);
        if (tc.interval_cycles == 0) {
          throw std::invalid_argument("--interval-cycles must be positive");
        }
      } else if (cli::match_value(argv[i], "events", &v)) {
        tc.preset = v;  // validated against the catalogue below
        (void)trace::preset_trace_events(tc.preset, 0);
      } else if (cli::match_value(argv[i], "buffer", &v)) {
        tc.buffer_capacity = cli::parse_positive("--buffer", v);
      } else if (cli::match_value(argv[i], "kill-nodes", &v)) {
        kill_nodes = cli::parse_unsigned("--kill-nodes", v);
      } else if (cli::match_value(argv[i], "fault-seed", &v)) {
        fault_seed = cli::parse_u64("--fault-seed", v);
      } else if (parse_mining_arg(argv[i], mining)) {
        // handled
      } else {
        std::fprintf(stderr, "unknown flag %s\n", argv[i]);
        return usage(argv[0]);
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return usage(argv[0]);
  }

  std::filesystem::create_directories(dir);
  tc.trace_dir = dir;

  std::unique_ptr<fault::FaultInjector> injector;
  if (kill_nodes > 0) {
    fault::FaultSpec spec;
    spec.node_deaths = kill_nodes;
    injector = std::make_unique<fault::FaultInjector>(
        fault::FaultPlan::random(fault_seed, nodes, spec));
  }

  rt::MachineConfig mc;
  mc.num_nodes = nodes;
  mc.mode = mode;
  mc.num_ranks_override = ranks;
  rt::Machine machine(mc);
  if (injector) machine.set_fault_injector(injector.get());

  pc::Options opts;
  opts.app_name = std::string(nas::name(bench));
  opts.dump_dir = dir;
  opts.trace = tc;
  if (injector) opts.fault = injector.get();
  pc::Session session(machine, opts);
  session.link_with_mpi();

  std::printf("%s class %s | %u nodes %s (%u ranks) | interval %llu cycles | "
              "events %s | buffer %zu\n",
              opts.app_name.c_str(), std::string(nas::name(cls)).c_str(),
              nodes, std::string(sys::to_string(mode)).c_str(),
              machine.num_ranks(),
              static_cast<unsigned long long>(tc.interval_cycles),
              tc.preset.c_str(), tc.buffer_capacity);

  auto kernel = nas::make_kernel(bench, cls);
  machine.run([&](rt::RankCtx& ctx) {
    ctx.mpi_init();
    kernel->run(ctx);
    ctx.mpi_finalize();
  });

  if (!machine.dead_nodes().empty()) {
    std::printf("%zu node(s) died mid-run — their traces are truncated\n",
                machine.dead_nodes().size());
  }
  std::printf("sealed %zu trace file(s) in %s\n",
              session.trace_files().size(), dir.string().c_str());

  mining.opts.expected_nodes =
      mining.opts.expected_nodes == 0 ? nodes : mining.opts.expected_nodes;
  const post::TimelineReport report =
      post::mine_timeline(dir, opts.app_name, mining.opts);
  const int mine_rc = report_and_write(report, mining);
  return kernel->result().verified ? mine_rc : 1;
}
