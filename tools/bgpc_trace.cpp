// bgpc_trace — time-series counter tracing end to end: run an instrumented
// NAS benchmark with the threshold-driven sampler attached to every node,
// then mine the per-node trace files into a per-interval timeline and a
// change-point phase report (MFLOPS, DDR bandwidth and instruction-mix
// drift over the run). With --mine-only it skips the run and mines an
// existing trace directory, including the `.bgpt.partial` leftovers of
// nodes that died mid-run (the report carries a coverage annotation).
//
//   bgpc_trace BENCH [options]                 run + trace + mine
//   bgpc_trace --mine-only DIR APP [options]   mine existing traces
//   bgpc_trace --list                          list benchmarks, modes, presets
//
// See --help for the full flag list (run flags mirror bgpc_run; the
// mining flags are shared between both modes).
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>

#include "cli.hpp"
#include "core/session.hpp"
#include "fault/fault.hpp"
#include "nas/kernel.hpp"
#include "postproc/timeline.hpp"

using namespace bgp;

namespace {

int list_choices() {
  std::printf("benchmarks:");
  for (const nas::Benchmark b : nas::all_benchmarks()) {
    std::printf(" %s", std::string(nas::name(b)).c_str());
  }
  std::printf("\nmodes: smp1 smp4 dual vnm\nclasses: S W A\nevent presets:");
  for (const std::string& p : trace::trace_preset_names()) {
    std::printf(" %s", p.c_str());
  }
  std::printf("\n");
  return 0;
}

struct MiningArgs {
  post::TimelineOptions opts;
  std::string timeline_file;
  std::string phases_file;
  bool quiet = false;
};

/// The mining flags, shared between run+mine and --mine-only.
void add_mining_flags(cli::FlagSet& fs, MiningArgs& m) {
  fs.string_value("timeline", "FILE", "write the per-interval CSV",
                  &m.timeline_file);
  fs.string_value("phases", "FILE", "write the per-phase CSV", &m.phases_file);
  fs.unsigned_value("expected-nodes", "N",
                    "traces the run should have produced (default: infer)",
                    &m.opts.expected_nodes);
  fs.double_value("change-threshold", "F",
                  "phase-detection sensitivity (default 0.35)", 0.0, 5.0,
                  &m.opts.change_threshold);
  fs.value("min-phase", "N", "minimum phase length in intervals (default 4)",
           [&m](const char* v) {
             m.opts.min_phase_intervals = cli::parse_positive("--min-phase", v);
           });
  fs.flag("sealed-only", "ignore .bgpt.partial files",
          [&m] { m.opts.include_partial = false; });
  fs.toggle("quiet", "suppress the stdout report", &m.quiet);
}

int report_and_write(const post::TimelineReport& report, const MiningArgs& m) {
  if (!m.quiet) {
    std::fputs(post::render_timeline(report).c_str(), stdout);
  }
  if (!m.timeline_file.empty()) {
    const std::string text = post::interval_csv(report);
    std::FILE* f = std::fopen(m.timeline_file.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", m.timeline_file.c_str());
      return 1;
    }
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    if (!m.quiet) std::printf("wrote %s\n", m.timeline_file.c_str());
  }
  if (!m.phases_file.empty()) {
    const std::string text = post::phase_csv(report);
    std::FILE* f = std::fopen(m.phases_file.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", m.phases_file.c_str());
      return 1;
    }
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    if (!m.quiet) std::printf("wrote %s\n", m.phases_file.c_str());
  }
  return report.ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  MiningArgs mining;

  if (argc >= 2 && cli::match_flag(argv[1], "list")) return list_choices();
  if (argc >= 2 && cli::match_flag(argv[1], "mine-only")) {
    cli::FlagSet fs("bgpc_trace --mine-only", "DIR APP");
    add_mining_flags(fs, mining);
    if (argc < 4) {
      fs.print_usage(stderr);
      return 2;
    }
    const std::filesystem::path dir = argv[2];
    const std::string app = argv[3];
    if (const auto rc = fs.parse(argc, argv, 4)) return *rc;
    return report_and_write(post::mine_timeline(dir, app, mining.opts),
                            mining);
  }

  unsigned nodes = 4, ranks = 0, kill_nodes = 0;
  u64 fault_seed = 1;
  sys::OpMode mode = sys::OpMode::kVnm;
  nas::ProblemClass cls = nas::ProblemClass::kS;
  std::filesystem::path dir = "bgpc_traces";
  trace::TraceConfig tc;
  tc.enabled = true;
  cli::ObsArgs obs_args;
  cli::SchedArgs sched_args;

  cli::FlagSet fs("bgpc_trace", "BENCH");
  fs.flag("list", "list benchmarks, modes and event presets",
          [] { std::exit(list_choices()); });
  fs.positive_value("nodes", "N", "partition size (default 4)", &nodes);
  fs.value("mode", "M", "smp1|smp4|dual|vnm (default vnm)",
           [&](const char* v) { mode = sys::parse_mode(v); });
  fs.value("class", "C", "problem class S|W|A (default S)",
           [&](const char* v) { cls = nas::parse_class(v); });
  fs.unsigned_value("ranks", "N", "use fewer ranks than the partition hosts",
                    &ranks);
  fs.path_value("dumps", "DIR", "trace/dump directory (default bgpc_traces)",
                &dir);
  fs.value("interval-cycles", "N", "sampling interval (default 10000)",
           [&](const char* v) {
             tc.interval_cycles = cli::parse_u64("--interval-cycles", v);
             if (tc.interval_cycles == 0) {
               throw std::invalid_argument("--interval-cycles must be positive");
             }
           });
  fs.value("interval", "DUR",
           "sampling interval as simulated time with a unit suffix "
           "(e.g. 12us); the duration twin of --interval-cycles",
           [&](const char* v) {
             tc.interval_cycles =
                 cli::duration_to_cycles(cli::parse_duration_ns("--interval", v));
             if (tc.interval_cycles == 0) {
               throw std::invalid_argument(
                   "--interval is shorter than one 850 MHz cycle");
             }
           });
  fs.value("events", "PRESET", "default|fp|mix|mem (see --list)",
           [&](const char* v) {
             tc.preset = v;  // validated against the catalogue
             (void)trace::preset_trace_events(tc.preset, 0);
           });
  fs.value("buffer", "N",
           "per-node ring capacity in intervals (default 4096)",
           [&](const char* v) {
             tc.buffer_capacity = cli::parse_positive("--buffer", v);
           });
  fs.unsigned_value("kill-nodes", "N",
                    "kill N random nodes mid-run (fault injection)",
                    &kill_nodes);
  fs.u64_value("fault-seed", "S", "seed for --kill-nodes (default 1)",
               &fault_seed);
  add_mining_flags(fs, mining);
  cli::add_obs_flags(fs, obs_args);
  cli::add_sched_flags(fs, sched_args);

  if (argc < 2) {
    fs.print_usage(stderr);
    return 2;
  }
  if (argv[1][0] == '-') {
    if (const auto rc = fs.parse(argc, argv, 1)) return *rc;
    fs.print_usage(stderr);
    return 2;
  }

  nas::Benchmark bench;
  try {
    bench = nas::parse_benchmark(argv[1]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bgpc_trace: %s\n", e.what());
    fs.print_usage(stderr);
    return 2;
  }
  if (const auto rc = fs.parse(argc, argv, 2)) return *rc;

  std::filesystem::create_directories(dir);
  tc.trace_dir = dir;

  std::unique_ptr<fault::FaultInjector> injector;
  if (kill_nodes > 0) {
    fault::FaultSpec spec;
    spec.node_deaths = kill_nodes;
    injector = std::make_unique<fault::FaultInjector>(
        fault::FaultPlan::random(fault_seed, nodes, spec));
  }

  rt::MachineConfig mc;
  mc.num_nodes = nodes;
  mc.mode = mode;
  mc.num_ranks_override = ranks;
  cli::apply_sched_args(sched_args, mc);
  rt::Machine machine(mc);
  if (injector) machine.set_fault_injector(injector.get());

  pc::Options opts;
  opts.app_name = std::string(nas::name(bench));
  opts.dump_dir = dir;
  opts.trace = tc;
  opts.obs = obs_args.config;
  if (injector) opts.fault = injector.get();
  pc::Session session(machine, opts);
  session.link_with_mpi();

  std::printf("%s class %s | %u nodes %s (%u ranks) | interval %llu cycles | "
              "events %s | buffer %zu\n",
              opts.app_name.c_str(), std::string(nas::name(cls)).c_str(),
              nodes, std::string(sys::to_string(mode)).c_str(),
              machine.num_ranks(),
              static_cast<unsigned long long>(tc.interval_cycles),
              tc.preset.c_str(), tc.buffer_capacity);

  auto kernel = nas::make_kernel(bench, cls);
  machine.run([&](rt::RankCtx& ctx) {
    ctx.mpi_init();
    kernel->run(ctx);
    ctx.mpi_finalize();
  });

  if (!machine.dead_nodes().empty()) {
    std::printf("%zu node(s) died mid-run — their traces are truncated\n",
                machine.dead_nodes().size());
  }
  std::printf("sealed %zu trace file(s) in %s\n",
              session.trace_files().size(), dir.string().c_str());

  const int obs_rc = cli::write_obs_outputs(
      obs_args, session.flight_recorder(), opts.app_name, mining.quiet);

  mining.opts.expected_nodes =
      mining.opts.expected_nodes == 0 ? nodes : mining.opts.expected_nodes;
  const post::TimelineReport report =
      post::mine_timeline(dir, opts.app_name, mining.opts);
  const int mine_rc = report_and_write(report, mining);
  return kernel->result().verified && obs_rc == 0 ? mine_rc : 1;
}
