// bgpc_mine — the post-processing / data-mining tool of the paper's §IV as
// a command-line program: reads the per-node binary dumps an instrumented
// application wrote, validates them, aggregates the counters across nodes
// and emits the metrics / statistics / full-counter .csv files usable "with
// Microsoft Excel or Open office calc".
//
//   bgpc_mine <dump_dir> <app_name> [options]
//     --set=N           instrumentation set to mine (default 0)
//     --metrics=FILE    write the per-application metrics record
//     --stats=FILE      write min/max/mean of all monitored counters
//     --full=FILE       write every counter value read on every node
//     --quiet           suppress the stdout summary
#include <cstdio>
#include <cstring>
#include <string>

#include "common/strfmt.hpp"
#include "postproc/loader.hpp"
#include "postproc/report.hpp"
#include "postproc/sanity.hpp"

using namespace bgp;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <dump_dir> <app_name> [--set=N] [--metrics=FILE] "
               "[--stats=FILE] [--full=FILE] [--quiet]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage(argv[0]);
  const std::filesystem::path dir = argv[1];
  const std::string app = argv[2];
  unsigned set = 0;
  std::string metrics_file, stats_file, full_file;
  bool quiet = false;
  for (int i = 3; i < argc; ++i) {
    if (std::strncmp(argv[i], "--set=", 6) == 0) {
      set = static_cast<unsigned>(std::atoi(argv[i] + 6));
    } else if (std::strncmp(argv[i], "--metrics=", 10) == 0) {
      metrics_file = argv[i] + 10;
    } else if (std::strncmp(argv[i], "--stats=", 8) == 0) {
      stats_file = argv[i] + 8;
    } else if (std::strncmp(argv[i], "--full=", 7) == 0) {
      full_file = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else {
      return usage(argv[0]);
    }
  }

  std::vector<pc::NodeDump> dumps;
  try {
    dumps = post::load_dumps(dir, app);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error loading dumps: %s\n", e.what());
    return 1;
  }
  if (dumps.empty()) {
    std::fprintf(stderr, "no %s.node*.bgpc files in %s\n", app.c_str(),
                 dir.string().c_str());
    return 1;
  }

  const post::SanityReport sanity = post::check(dumps);
  if (!sanity.ok()) {
    std::fprintf(stderr, "sanity check FAILED:\n");
    for (const auto& p : sanity.problems) {
      std::fprintf(stderr, "  %s\n", p.c_str());
    }
    return 1;
  }

  const post::Aggregate agg(dumps, set);
  const post::AppRecord rec = post::make_record(app, agg);

  if (!quiet) {
    std::printf("%zu node dumps, set %u, sanity OK\n", dumps.size(), set);
    std::printf("  mode-0 nodes (per-core events): %zu\n",
                agg.dumps_in_mode(0).size());
    std::printf("  mode-1 nodes (memory events):   %zu\n",
                agg.dumps_in_mode(1).size());
    std::printf("  exec cycles (mean node max): %.0f (%.3f ms at 850 MHz)\n",
                rec.exec_cycles,
                1e3 * rec.exec_cycles / kCoreClockHz);
    std::printf("  MFLOPS/node:                 %.2f\n", rec.mflops_per_node);
    std::printf("  L3<->DDR traffic/node:       %s\n",
                human_bytes(rec.ddr_traffic_bytes).c_str());
    std::printf("  L3 read miss ratio:          %.2f%%\n",
                100.0 * rec.l3_read_miss_ratio);
    std::printf("  dynamic FP mix:");
    for (unsigned i = 0; i < isa::kNumFpOps; ++i) {
      const auto op = static_cast<isa::FpOp>(i);
      if (rec.fp.fraction(op) < 0.005) continue;
      std::printf(" %s=%.1f%%", std::string(isa::to_string(op)).c_str(),
                  100.0 * rec.fp.fraction(op));
    }
    std::printf("\n");
  }

  if (!metrics_file.empty()) {
    CsvWriter csv;
    post::write_metrics_csv(csv, {rec});
    csv.write_file(metrics_file);
    if (!quiet) std::printf("wrote %s\n", metrics_file.c_str());
  }
  if (!stats_file.empty()) {
    CsvWriter csv;
    post::write_counter_stats_csv(csv, agg);
    csv.write_file(stats_file);
    if (!quiet) std::printf("wrote %s\n", stats_file.c_str());
  }
  if (!full_file.empty()) {
    CsvWriter csv;
    post::write_full_csv(csv, dumps, set);
    csv.write_file(full_file);
    if (!quiet) std::printf("wrote %s\n", full_file.c_str());
  }
  return 0;
}
