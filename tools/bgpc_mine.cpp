// bgpc_mine — the post-processing / data-mining tool of the paper's §IV as
// a command-line program: reads the per-node binary dumps an instrumented
// application wrote, validates them, aggregates the counters across nodes
// and emits the metrics / statistics / full-counter .csv files usable "with
// Microsoft Excel or Open office calc".
//
// By default the miner runs in degraded mode: dumps that are missing,
// truncated or checksum-corrupt are skipped and reported, and the metrics
// are mined from the surviving quorum (at least --min-coverage of the
// expected nodes), with the coverage annotated in the output. --strict
// inverts this: any problem at all refuses to mine.
//
//   bgpc_mine <dump_dir> <app_name> [options]
//     --set=N            instrumentation set to mine (default 0)
//     --metrics=FILE     write the per-application metrics record
//     --stats=FILE       write min/max/mean of all monitored counters
//     --full=FILE        write every counter value read on every node
//     --strict           refuse to mine unless every node's dump is clean
//     --min-coverage=F   degraded-mode quorum fraction (default 0.9)
//     --expected-nodes=N nodes the run should have dumped (default: infer)
//     --ft               FT run: deaths the dumps' recovery logs account
//                        for are expected casualties, not problems; with
//                        --strict the batch passes iff survivors + deaths
//                        cover every expected node, and a contradiction
//                        with --expected-nodes is a hard error
//     --quiet            suppress the stdout summary
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "cli.hpp"
#include "common/strfmt.hpp"
#include "postproc/aggregate.hpp"
#include "postproc/pipeline.hpp"

using namespace bgp;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <dump_dir> <app_name> [--set=N] [--metrics=FILE] "
               "[--stats=FILE] [--full=FILE] [--strict] [--min-coverage=F] "
               "[--expected-nodes=N] [--ft] [--quiet]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage(argv[0]);
  const std::filesystem::path dir = argv[1];
  const std::string app = argv[2];
  post::MineOptions opts;
  std::string metrics_file, stats_file, full_file;
  bool quiet = false;
  try {
    for (int i = 3; i < argc; ++i) {
      const char* v = nullptr;
      if (cli::match_value(argv[i], "set", &v)) {
        opts.set = cli::parse_unsigned("--set", v);
      } else if (cli::match_value(argv[i], "metrics", &v)) {
        metrics_file = v;
      } else if (cli::match_value(argv[i], "stats", &v)) {
        stats_file = v;
      } else if (cli::match_value(argv[i], "full", &v)) {
        full_file = v;
      } else if (cli::match_flag(argv[i], "strict")) {
        opts.strict = true;
      } else if (cli::match_value(argv[i], "min-coverage", &v)) {
        opts.min_coverage = cli::parse_double("--min-coverage", v, 0.0, 1.0);
      } else if (cli::match_value(argv[i], "expected-nodes", &v)) {
        opts.expected_nodes = cli::parse_unsigned("--expected-nodes", v);
      } else if (cli::match_flag(argv[i], "ft")) {
        opts.ft = true;
      } else if (cli::match_flag(argv[i], "quiet")) {
        quiet = true;
      } else {
        std::fprintf(stderr, "unknown flag %s\n", argv[i]);
        return usage(argv[0]);
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return usage(argv[0]);
  }

  const post::MineResult res = post::mine(dir, app, opts);

  if (!res.problems.empty()) {
    std::fprintf(stderr, "%zu problem(s) with the dump batch:\n",
                 res.problems.size());
    for (const auto& p : res.problems) {
      std::fprintf(stderr, "  %s\n", p.c_str());
    }
  }
  if (!res.ok) {
    std::fprintf(stderr, "%s: refusing to mine (coverage %s)\n",
                 opts.strict ? "strict mode" : "below quorum",
                 res.coverage.to_string().c_str());
    return 1;
  }

  const post::AppRecord& rec = res.record;
  const post::Aggregate agg(res.dumps, opts.set);

  if (!quiet) {
    const bool complete =
        opts.ft ? res.coverage.accounted() || res.coverage.full()
                : res.coverage.full();
    std::printf("coverage %s, set %u%s\n", res.coverage.to_string().c_str(),
                opts.set, complete ? ", sanity OK" : " — DEGRADED mine");
    if (opts.ft && !res.recovery.empty()) {
      std::printf("  FT recovery (%zu events):\n", res.recovery.size());
      for (const auto& e : res.recovery) {
        std::printf("    %s\n", ft::describe(e).c_str());
      }
    }
    std::printf("  mode-0 nodes (per-core events): %zu\n",
                agg.dumps_in_mode(0).size());
    std::printf("  mode-1 nodes (memory events):   %zu\n",
                agg.dumps_in_mode(1).size());
    std::printf("  exec cycles (mean node max): %.0f (%.3f ms at 850 MHz)\n",
                rec.exec_cycles,
                1e3 * rec.exec_cycles / kCoreClockHz);
    std::printf("  MFLOPS/node:                 %.2f\n", rec.mflops_per_node);
    std::printf("  L3<->DDR traffic/node:       %s\n",
                human_bytes(rec.ddr_traffic_bytes).c_str());
    std::printf("  L3 read miss ratio:          %.2f%%\n",
                100.0 * rec.l3_read_miss_ratio);
    std::printf("  dynamic FP mix:");
    for (unsigned i = 0; i < isa::kNumFpOps; ++i) {
      const auto op = static_cast<isa::FpOp>(i);
      if (rec.fp.fraction(op) < 0.005) continue;
      std::printf(" %s=%.1f%%", std::string(isa::to_string(op)).c_str(),
                  100.0 * rec.fp.fraction(op));
    }
    std::printf("\n");
  }

  if (!metrics_file.empty()) {
    CsvWriter csv;
    post::write_metrics_csv(csv, {rec});
    csv.write_file(metrics_file);
    if (!quiet) std::printf("wrote %s\n", metrics_file.c_str());
  }
  if (!stats_file.empty()) {
    CsvWriter csv;
    post::write_counter_stats_csv(csv, agg);
    csv.write_file(stats_file);
    if (!quiet) std::printf("wrote %s\n", stats_file.c_str());
  }
  if (!full_file.empty()) {
    CsvWriter csv;
    post::write_full_csv(csv, res.dumps, opts.set);
    csv.write_file(full_file);
    if (!quiet) std::printf("wrote %s\n", full_file.c_str());
  }
  return 0;
}
