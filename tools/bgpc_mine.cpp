// bgpc_mine — the post-processing / data-mining tool of the paper's §IV as
// a command-line program: reads the per-node binary dumps an instrumented
// application wrote, validates them, aggregates the counters across nodes
// and emits the metrics / statistics / full-counter .csv files usable "with
// Microsoft Excel or Open office calc".
//
// By default the miner runs in degraded mode: dumps that are missing,
// truncated or checksum-corrupt are skipped and reported, and the metrics
// are mined from the surviving quorum (at least --min-coverage of the
// expected nodes), with the coverage annotated in the output. --strict
// inverts this: any problem at all refuses to mine.
//
//   bgpc_mine DIR APP [options]       (see --help for the full flag list)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "cli.hpp"
#include "common/strfmt.hpp"
#include "daemon/attach.hpp"
#include "postproc/aggregate.hpp"
#include "postproc/pipeline.hpp"
#include "postproc/report.hpp"

using namespace bgp;

namespace {

/// --attach: mine a live (or final) snapshot file instead of a dump
/// directory. The snapshot's raw counters reconstruct as one open set-0
/// pair per node, so the standard aggregate/record pipeline applies
/// mid-flight.
int attach_mine(const std::filesystem::path& snap, unsigned set, bool quiet,
                unsigned retries) {
  daemon::AttachView view;
  try {
    daemon::AttachRetry retry;
    if (retries != 0) retry.attempts = retries;
    view = daemon::attach_file_retry(snap, retry);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bgpc_mine --attach: %s\n", e.what());
    return 1;
  }
  const std::vector<pc::NodeDump> dumps = daemon::to_node_dumps(view);
  std::size_t counting = 0, final_count = 0;
  for (const daemon::NodeSnapshot& n : view.nodes) {
    if (n.state == daemon::SnapState::kCounting) ++counting;
    if (n.state == daemon::SnapState::kFinal) ++final_count;
  }
  const post::Aggregate agg(dumps, set);
  const post::AppRecord rec = post::make_record(view.app, agg);
  if (!quiet) {
    std::printf("attached to %s: session %s, app %s — %s\n",
                snap.string().c_str(), view.session.c_str(),
                view.app.c_str(),
                view.final_only ? "run finished (final snapshot)"
                                : "LIVE mid-run snapshot");
    std::printf("  nodes: %zu readable (%zu counting, %zu final), %zu "
                "unreadable\n",
                view.nodes.size(), counting, final_count,
                view.unreadable.size());
    cycles_t newest = 0;
    for (const daemon::NodeSnapshot& n : view.nodes) {
      newest = std::max(newest, n.published_cycle);
    }
    std::printf("  newest publication: cycle %llu (%.3f ms simulated)\n",
                static_cast<unsigned long long>(newest),
                1e3 * static_cast<double>(newest) / kCoreClockHz);
    std::printf("  exec cycles (mean node max): %.0f\n", rec.exec_cycles);
    std::printf("  MFLOPS/node so far:          %.2f\n", rec.mflops_per_node);
    std::printf("  L3<->DDR traffic/node:       %s\n",
                human_bytes(rec.ddr_traffic_bytes).c_str());
    std::printf("  L3 read miss ratio:          %.2f%%\n",
                100.0 * rec.l3_read_miss_ratio);
  }
  return view.unreadable.empty() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  post::MineOptions opts;
  std::string metrics_file, stats_file, full_file;
  std::filesystem::path attach_path;
  bool quiet = false;
  cli::ObsArgs obs_args;

  cli::FlagSet fs("bgpc_mine", "DIR APP");
  fs.path_value("attach", "SNAPFILE",
                "mine a daemon/bgpc_run snapshot file (live attach) instead "
                "of a dump directory",
                &attach_path);
  unsigned attach_retries = 0;
  fs.positive_value("attach-retries", "N",
                    "--attach: re-read attempts while the writer holds a "
                    "node's seqlock (default 8; each backs off with jitter)",
                    &attach_retries);
  fs.unsigned_value("set", "N", "instrumentation set to mine (default 0)",
                    &opts.set);
  fs.string_value("metrics", "FILE", "write the per-application metrics record",
                  &metrics_file);
  fs.string_value("stats", "FILE",
                  "write min/max/mean of all monitored counters", &stats_file);
  fs.string_value("full", "FILE",
                  "write every counter value read on every node", &full_file);
  fs.toggle("strict", "refuse to mine unless every node's dump is clean",
            &opts.strict);
  fs.double_value("min-coverage", "F",
                  "degraded-mode quorum fraction (default 0.9)", 0.0, 1.0,
                  &opts.min_coverage);
  fs.unsigned_value("expected-nodes", "N",
                    "nodes the run should have dumped (default: infer)",
                    &opts.expected_nodes);
  fs.toggle("ft",
            "FT run: deaths the dumps' recovery logs account for are "
            "expected casualties, not problems",
            &opts.ft);
  fs.toggle("quiet", "suppress the stdout summary", &quiet);
  cli::add_obs_flags(fs, obs_args);

  if (argc >= 2 && argv[1][0] == '-') {
    if (const auto rc = fs.parse(argc, argv, 1)) return *rc;
    if (!attach_path.empty()) {
      return attach_mine(attach_path, opts.set, quiet, attach_retries);
    }
    fs.print_usage(stderr);
    return 2;
  }
  if (argc < 3) {
    fs.print_usage(stderr);
    return 2;
  }
  const std::filesystem::path dir = argv[1];
  const std::string app = argv[2];
  if (const auto rc = fs.parse(argc, argv, 3)) return *rc;

  // The miner has no Machine, but its pipeline still reports into the
  // flight recorder's metrics registry when one is installed (how many
  // mines ran, problems found, last coverage). A 1x1 recorder is enough.
  std::unique_ptr<obs::FlightRecorder> recorder;
  if (obs_args.config.enabled) {
    recorder = std::make_unique<obs::FlightRecorder>(1, 1, obs_args.config);
    obs::set_recorder(recorder.get());
  }

  const post::MineResult res = post::mine(dir, app, opts);

  const int obs_rc = cli::write_obs_outputs(obs_args, recorder.get(), app,
                                            quiet);
  obs::set_recorder(nullptr);

  if (!res.problems.empty()) {
    std::fprintf(stderr, "%zu problem(s) with the dump batch:\n",
                 res.problems.size());
    for (const auto& p : res.problems) {
      std::fprintf(stderr, "  %s\n", p.c_str());
    }
  }
  if (!res.ok) {
    std::fprintf(stderr, "%s: refusing to mine (coverage %s)\n",
                 opts.strict ? "strict mode" : "below quorum",
                 res.coverage.to_string().c_str());
    return 1;
  }

  const post::AppRecord& rec = res.record;
  const post::Aggregate agg(res.dumps, opts.set);

  if (!quiet) {
    const bool complete =
        opts.ft ? res.coverage.accounted() || res.coverage.full()
                : res.coverage.full();
    std::printf("coverage %s, set %u%s\n", res.coverage.to_string().c_str(),
                opts.set, complete ? ", sanity OK" : " — DEGRADED mine");
    if (opts.ft && !res.recovery.empty()) {
      std::printf("  FT recovery (%zu events):\n", res.recovery.size());
      for (const auto& e : res.recovery) {
        std::printf("    %s\n", ft::describe(e).c_str());
      }
    }
    std::printf("  mode-0 nodes (per-core events): %zu\n",
                agg.dumps_in_mode(0).size());
    std::printf("  mode-1 nodes (memory events):   %zu\n",
                agg.dumps_in_mode(1).size());
    std::printf("  exec cycles (mean node max): %.0f (%.3f ms at 850 MHz)\n",
                rec.exec_cycles,
                1e3 * rec.exec_cycles / kCoreClockHz);
    std::printf("  MFLOPS/node:                 %.2f\n", rec.mflops_per_node);
    std::printf("  L3<->DDR traffic/node:       %s\n",
                human_bytes(rec.ddr_traffic_bytes).c_str());
    std::printf("  L3 read miss ratio:          %.2f%%\n",
                100.0 * rec.l3_read_miss_ratio);
    std::printf("  dynamic FP mix:");
    for (unsigned i = 0; i < isa::kNumFpOps; ++i) {
      const auto op = static_cast<isa::FpOp>(i);
      if (rec.fp.fraction(op) < 0.005) continue;
      std::printf(" %s=%.1f%%", std::string(isa::to_string(op)).c_str(),
                  100.0 * rec.fp.fraction(op));
    }
    std::printf("\n");
  }

  if (!metrics_file.empty()) {
    CsvWriter csv;
    post::write_metrics_csv(csv, {rec});
    csv.write_file(metrics_file);
    if (!quiet) std::printf("wrote %s\n", metrics_file.c_str());
  }
  if (!stats_file.empty()) {
    CsvWriter csv;
    post::write_counter_stats_csv(csv, agg);
    csv.write_file(stats_file);
    if (!quiet) std::printf("wrote %s\n", stats_file.c_str());
  }
  if (!full_file.empty()) {
    CsvWriter csv;
    post::write_full_csv(csv, res.dumps, opts.set);
    csv.write_file(full_file);
    if (!quiet) std::printf("wrote %s\n", full_file.c_str());
  }
  return obs_rc;
}
