// Shared argument handling for the bgpc_* command-line tools: one flag
// convention (--name=value), strict numeric parsing that rejects junk with
// a useful message instead of silently falling back to 0, and a typed
// flag table (FlagSet) that generates --help, answers --version with the
// git describe baked in at build time, and exits 2 with usage on unknown
// flags. The --obs-* observability flags are declared once here
// (add_obs_flags) and reused by every tool that runs a Machine.
#pragma once

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/strfmt.hpp"
#include "common/types.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/obs.hpp"
#include "obs/promtext.hpp"
#include "runtime/sched.hpp"

namespace bgp::cli {

#ifndef BGPC_VERSION
#define BGPC_VERSION "unknown"
#endif

/// The version string baked in by tools/CMakeLists.txt (git describe).
inline const char* version() { return BGPC_VERSION; }

/// True when `arg` is `--<name>=...`; leaves `*value` pointing at the text
/// after the '='.
inline bool match_value(const char* arg, const char* name,
                        const char** value) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, "--", 2) != 0 ||
      std::strncmp(arg + 2, name, n) != 0 || arg[2 + n] != '=') {
    return false;
  }
  *value = arg + 2 + n + 1;
  return true;
}

/// True when `arg` is exactly `--<name>`.
inline bool match_flag(const char* arg, const char* name) {
  return std::strncmp(arg, "--", 2) == 0 && std::strcmp(arg + 2, name) == 0;
}

/// Parse a non-negative integer; rejects empty strings, trailing junk and
/// out-of-range values (the old atoi paths silently produced 0 instead).
inline u64 parse_u64(const char* flag, const char* text) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE ||
      std::strchr(text, '-') != nullptr) {
    throw std::invalid_argument(
        strfmt("%s needs a non-negative integer, got '%s'", flag, text));
  }
  return v;
}

inline unsigned parse_unsigned(const char* flag, const char* text) {
  const u64 v = parse_u64(flag, text);
  if (v > ~0u) {
    throw std::invalid_argument(strfmt("%s: %s is out of range", flag, text));
  }
  return static_cast<unsigned>(v);
}

/// Like parse_unsigned but additionally rejects zero.
inline unsigned parse_positive(const char* flag, const char* text) {
  const unsigned v = parse_unsigned(flag, text);
  if (v == 0) {
    throw std::invalid_argument(strfmt("%s must be positive", flag));
  }
  return v;
}

/// Parse a fraction in [lo, hi].
inline double parse_double(const char* flag, const char* text, double lo,
                           double hi) {
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  if (end == text || *end != '\0' || v < lo || v > hi) {
    throw std::invalid_argument(
        strfmt("%s needs a number in [%g, %g], got '%s'", flag, lo, hi, text));
  }
  return v;
}

/// Parse a duration with a unit suffix (`250ms`, `2s`, `800us`, `425000ns`)
/// into nanoseconds. The suffix is mandatory: a bare number is ambiguous
/// and rejected with a pointer at the accepted units. Fractional values
/// (`1.5ms`) are accepted; the result is rounded to whole nanoseconds.
inline u64 parse_duration_ns(const char* flag, const char* text) {
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(text, &end);
  const auto fail = [&]() -> std::invalid_argument {
    return std::invalid_argument(
        strfmt("%s needs a duration with a unit suffix (ns, us, ms, s), "
               "e.g. 250ms or 2s; got '%s'",
               flag, text));
  };
  // `!(v >= 0)` instead of `v < 0`: NaN fails every comparison, so the
  // negated form rejects it too (a NaN would otherwise reach the
  // float->integer cast below, which is undefined behavior).
  if (end == text || errno == ERANGE || !(v >= 0)) throw fail();
  double scale = 0;
  if (std::strcmp(end, "ns") == 0) {
    scale = 1.0;
  } else if (std::strcmp(end, "us") == 0) {
    scale = 1e3;
  } else if (std::strcmp(end, "ms") == 0) {
    scale = 1e6;
  } else if (std::strcmp(end, "s") == 0) {
    scale = 1e9;
  } else {
    throw fail();
  }
  const double ns = v * scale;
  // Cap at int64 max, not u64 max: downstream arithmetic (cycle
  // conversion, deadline addition) does signed math on these values, and a
  // double cannot represent u64 max exactly anyway — casting one past the
  // representable range silently wraps. 9.2e18 ns is ~292 years, so the
  // cap costs nothing real.
  constexpr double kMaxNs = 9.223372036854775e18;
  if (!(ns <= kMaxNs)) {
    throw std::invalid_argument(
        strfmt("%s: %s overflows the nanosecond range", flag, text));
  }
  return static_cast<u64>(ns + 0.5);
}

/// A duration expressed in *simulated* cycles of the 850 MHz core clock:
/// `250ms` of simulated time is 212.5M cycles. Used by the sampling-period
/// flags (--interval, --snapshot-period), which pace modeled activity on
/// the simulated timeline.
inline cycles_t duration_to_cycles(u64 ns) {
  // kCoreClockHz = 850e6 -> 0.85 cycles per ns; keep the arithmetic exact
  // in integers: 17 cycles per 20 ns.
  return static_cast<cycles_t>((static_cast<unsigned __int128>(ns) * 17) / 20);
}

/// Typed flag table. Tools declare their flags once; parse() consumes
/// argv, auto-answers --help and --version, and turns unknown flags or
/// bad values into usage + exit 2 (returned, not called — main stays in
/// charge). Value flags are `--name=VALUE`, boolean flags bare `--name`.
class FlagSet {
 public:
  explicit FlagSet(std::string prog, std::string positionals = "")
      : prog_(std::move(prog)), positionals_(std::move(positionals)) {}

  using ValueFn = std::function<void(const char*)>;

  FlagSet& value(std::string name, std::string metavar, std::string help,
                 ValueFn fn) {
    flags_.push_back(Flag{std::move(name), std::move(metavar), std::move(help),
                          std::move(fn)});
    return *this;
  }
  FlagSet& flag(std::string name, std::string help, std::function<void()> fn) {
    flags_.push_back(Flag{std::move(name), "", std::move(help),
                          [fn = std::move(fn)](const char*) { fn(); }});
    return *this;
  }

  // Typed conveniences over the parse_* helpers.
  FlagSet& toggle(std::string name, std::string help, bool* out) {
    return flag(std::move(name), std::move(help), [out] { *out = true; });
  }
  FlagSet& unsigned_value(std::string name, std::string metavar,
                          std::string help, unsigned* out) {
    const std::string f = "--" + name;
    return value(std::move(name), std::move(metavar), std::move(help),
                 [out, f](const char* v) { *out = parse_unsigned(f.c_str(), v); });
  }
  FlagSet& positive_value(std::string name, std::string metavar,
                          std::string help, unsigned* out) {
    const std::string f = "--" + name;
    return value(std::move(name), std::move(metavar), std::move(help),
                 [out, f](const char* v) { *out = parse_positive(f.c_str(), v); });
  }
  FlagSet& u64_value(std::string name, std::string metavar, std::string help,
                     u64* out) {
    const std::string f = "--" + name;
    return value(std::move(name), std::move(metavar), std::move(help),
                 [out, f](const char* v) { *out = parse_u64(f.c_str(), v); });
  }
  FlagSet& double_value(std::string name, std::string metavar,
                        std::string help, double lo, double hi, double* out) {
    const std::string f = "--" + name;
    return value(std::move(name), std::move(metavar), std::move(help),
                 [out, f, lo, hi](const char* v) {
                   *out = parse_double(f.c_str(), v, lo, hi);
                 });
  }
  FlagSet& string_value(std::string name, std::string metavar,
                        std::string help, std::string* out) {
    return value(std::move(name), std::move(metavar), std::move(help),
                 [out](const char* v) { *out = v; });
  }
  /// Duration flag (`--name=250ms`); stores nanoseconds.
  FlagSet& duration_ns_value(std::string name, std::string metavar,
                             std::string help, u64* out) {
    const std::string f = "--" + name;
    return value(std::move(name), std::move(metavar), std::move(help),
                 [out, f](const char* v) {
                   *out = parse_duration_ns(f.c_str(), v);
                 });
  }
  /// Duration flag interpreted on the simulated 850 MHz timeline; stores
  /// core-clock cycles (`2s` -> 1.7e9 cycles).
  FlagSet& duration_cycles_value(std::string name, std::string metavar,
                                 std::string help, cycles_t* out) {
    const std::string f = "--" + name;
    return value(std::move(name), std::move(metavar), std::move(help),
                 [out, f](const char* v) {
                   *out = duration_to_cycles(parse_duration_ns(f.c_str(), v));
                 });
  }
  /// Repeatable flag: every occurrence appends (the single-value helpers
  /// above overwrite, so `--preload=a --preload=b` would lose `a`).
  FlagSet& repeated_value(std::string name, std::string metavar,
                          std::string help, std::vector<std::string>* out) {
    return value(std::move(name), std::move(metavar), std::move(help),
                 [out](const char* v) { out->push_back(v); });
  }
  FlagSet& path_value(std::string name, std::string metavar, std::string help,
                      std::filesystem::path* out) {
    return value(std::move(name), std::move(metavar), std::move(help),
                 [out](const char* v) { *out = v; });
  }

  /// Parse argv[first..); returns the process exit code when parsing
  /// settled the run (--help/--version -> 0, errors -> 2), nullopt to
  /// proceed.
  [[nodiscard]] std::optional<int> parse(int argc, char** argv,
                                         int first) const {
    for (int i = first; i < argc; ++i) {
      if (const auto rc = parse_one(argv[i])) return rc;
    }
    return std::nullopt;
  }

  /// Parse a single argument (for tools that mix positionals in).
  [[nodiscard]] std::optional<int> parse_one(const char* arg) const {
    if (match_flag(arg, "help")) {
      print_help(stdout);
      return 0;
    }
    if (match_flag(arg, "version")) {
      std::printf("%s %s\n", prog_.c_str(), version());
      return 0;
    }
    try {
      for (const Flag& f : flags_) {
        if (f.metavar.empty()) {
          if (match_flag(arg, f.name.c_str())) {
            f.fn(nullptr);
            return std::nullopt;
          }
        } else {
          const char* v = nullptr;
          if (match_value(arg, f.name.c_str(), &v)) {
            f.fn(v);
            return std::nullopt;
          }
        }
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: %s\n", prog_.c_str(), e.what());
      print_usage(stderr);
      return 2;
    }
    std::fprintf(stderr, "%s: unknown flag %s (try --help)\n", prog_.c_str(),
                 arg);
    print_usage(stderr);
    return 2;
  }

  void print_usage(std::FILE* out) const {
    std::string line = "usage: " + prog_;
    if (!positionals_.empty()) line += " " + positionals_;
    line += " [options] [--help] [--version]";
    std::fprintf(out, "%s\n", line.c_str());
  }

  void print_help(std::FILE* out) const {
    print_usage(out);
    std::size_t width = 0;
    const auto left_col = [](const Flag& f) {
      return f.metavar.empty() ? "--" + f.name
                               : "--" + f.name + "=" + f.metavar;
    };
    for (const Flag& f : flags_) {
      width = std::max(width, left_col(f).size());
    }
    std::fprintf(out, "options:\n");
    for (const Flag& f : flags_) {
      std::fprintf(out, "  %-*s  %s\n", static_cast<int>(width),
                   left_col(f).c_str(), f.help.c_str());
    }
    std::fprintf(out, "  %-*s  %s\n", static_cast<int>(width), "--help",
                 "show this help and exit");
    std::fprintf(out, "  %-*s  %s\n", static_cast<int>(width), "--version",
                 "print the tool version and exit");
  }

 private:
  struct Flag {
    std::string name;
    std::string metavar;  ///< empty for boolean flags
    std::string help;
    ValueFn fn;
  };

  std::string prog_;
  std::string positionals_;
  std::vector<Flag> flags_;
};

/// Scheduler selection shared by the run-a-Machine tools.
struct SchedArgs {
  rt::SchedMode sched = rt::SchedMode::kSerial;
  unsigned jobs = 0;
};

/// Declare --sched/--jobs once. Both dispatchers produce byte-identical
/// results; parallel trades the serial oracle's one-thread-per-rank for a
/// bounded worker pool running rank fibers concurrently.
inline void add_sched_flags(FlagSet& fs, SchedArgs& a) {
  fs.value("sched", "MODE",
           "dispatcher: 'serial' (token passing, one thread per rank) or "
           "'parallel' (epoch scheduler: rank fibers on a bounded worker "
           "pool, byte-identical results)",
           [&a](const char* v) {
             if (std::strcmp(v, "serial") == 0) {
               a.sched = rt::SchedMode::kSerial;
             } else if (std::strcmp(v, "parallel") == 0) {
               a.sched = rt::SchedMode::kParallel;
             } else {
               throw std::invalid_argument(
                   strfmt("--sched must be serial or parallel, got '%s'", v));
             }
           });
  fs.unsigned_value("jobs", "N",
                    "parallel scheduler worker threads (0 = hardware "
                    "concurrency; never more than the node count)",
                    &a.jobs);
}

/// Copy the parsed scheduler selection into a MachineConfig.
template <typename MachineConfigT>
inline void apply_sched_args(const SchedArgs& a, MachineConfigT& mc) {
  mc.sched = a.sched;
  mc.jobs = a.jobs;
}

/// The observability surface shared by the run-a-Machine tools.
struct ObsArgs {
  obs::ObsConfig config;
  std::filesystem::path trace_file;    ///< Chrome trace-event JSON
  std::filesystem::path metrics_file;  ///< Prometheus text exposition
};

/// Declare the --obs-* flags once (bgpc_run, bgpc_trace, bgpc_mine all
/// accept the same set). Either output flag implies --obs.
inline void add_obs_flags(FlagSet& fs, ObsArgs& a) {
  fs.toggle("obs",
            "enable the flight recorder (spans + metrics; writes per-node "
            ".bgps span files next to the dumps)",
            &a.config.enabled);
  fs.value("obs-trace", "FILE",
           "write a Chrome trace-event JSON of the run (implies --obs); "
           "open in Perfetto or chrome://tracing",
           [&a](const char* v) {
             a.trace_file = v;
             a.config.enabled = true;
           });
  fs.value("obs-metrics", "FILE",
           "write the metrics registry in Prometheus text format "
           "(implies --obs)",
           [&a](const char* v) {
             a.metrics_file = v;
             a.config.enabled = true;
           });
  fs.value("obs-span-capacity", "N",
           "per-rank span ring capacity (oldest spans dropped beyond this)",
           [&a](const char* v) {
             a.config.span_capacity = parse_positive("--obs-span-capacity", v);
           });
}

/// Export the requested observability outputs after a run; returns 0, or
/// 1 when a file could not be written.
inline int write_obs_outputs(const ObsArgs& a, obs::FlightRecorder* fr,
                             const std::string& app, bool quiet = false) {
  if (fr == nullptr) return 0;
  fr->update_self_metrics();
  int rc = 0;
  if (!a.trace_file.empty()) {
    try {
      obs::write_chrome_trace_file(a.trace_file, *fr, app);
      if (!quiet) std::printf("wrote %s\n", a.trace_file.string().c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      rc = 1;
    }
  }
  if (!a.metrics_file.empty()) {
    try {
      obs::write_prometheus_file(a.metrics_file, fr->metrics());
      if (!quiet) std::printf("wrote %s\n", a.metrics_file.string().c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      rc = 1;
    }
  }
  return rc;
}

}  // namespace bgp::cli
