// Shared argument handling for the bgpc_* command-line tools: one flag
// convention (--name=value), strict numeric parsing that rejects junk with
// a useful message instead of silently falling back to 0, and the common
// "unknown flag → usage + non-zero exit" behaviour.
#pragma once

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include "common/strfmt.hpp"
#include "common/types.hpp"

namespace bgp::cli {

/// True when `arg` is `--<name>=...`; leaves `*value` pointing at the text
/// after the '='.
inline bool match_value(const char* arg, const char* name,
                        const char** value) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, "--", 2) != 0 ||
      std::strncmp(arg + 2, name, n) != 0 || arg[2 + n] != '=') {
    return false;
  }
  *value = arg + 2 + n + 1;
  return true;
}

/// True when `arg` is exactly `--<name>`.
inline bool match_flag(const char* arg, const char* name) {
  return std::strncmp(arg, "--", 2) == 0 && std::strcmp(arg + 2, name) == 0;
}

/// Parse a non-negative integer; rejects empty strings, trailing junk and
/// out-of-range values (the old atoi paths silently produced 0 instead).
inline u64 parse_u64(const char* flag, const char* text) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE ||
      std::strchr(text, '-') != nullptr) {
    throw std::invalid_argument(
        strfmt("%s needs a non-negative integer, got '%s'", flag, text));
  }
  return v;
}

inline unsigned parse_unsigned(const char* flag, const char* text) {
  const u64 v = parse_u64(flag, text);
  if (v > ~0u) {
    throw std::invalid_argument(strfmt("%s: %s is out of range", flag, text));
  }
  return static_cast<unsigned>(v);
}

/// Like parse_unsigned but additionally rejects zero.
inline unsigned parse_positive(const char* flag, const char* text) {
  const unsigned v = parse_unsigned(flag, text);
  if (v == 0) {
    throw std::invalid_argument(strfmt("%s must be positive", flag));
  }
  return v;
}

/// Parse a fraction in [lo, hi].
inline double parse_double(const char* flag, const char* text, double lo,
                           double hi) {
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  if (end == text || *end != '\0' || v < lo || v > hi) {
    throw std::invalid_argument(
        strfmt("%s needs a number in [%g, %g], got '%s'", flag, lo, hi, text));
  }
  return v;
}

}  // namespace bgp::cli
