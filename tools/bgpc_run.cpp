// bgpc_run — launch an instrumented NAS benchmark on a simulated Blue
// Gene/P partition (the moral equivalent of the paper's job submission):
// pick the benchmark, partition size, operating mode, problem class, boot
// options and compiler option set; the interface library is linked into
// MPI and per-node dump files are written for bgpc_mine. --trace
// additionally attaches the time-series sampler and writes .bgpt trace
// files for bgpc_trace --mine-only.
//
//   bgpc_run BENCH [options]
//   bgpc_run --list        list benchmarks, modes, classes, event presets
//     --nodes=N            partition size (default 4)
//     --mode=M             smp1|smp4|dual|vnm (default vnm)
//     --class=C            S|W|A (default W)
//     --l3=MB              L3 size in MiB, 0 disables (default 8)
//     --prefetch=D         L2 prefetch depth, 0 disables (default 2)
//     --opt=FLAGS          e.g. "-O5 -qarch440d" (default)
//     --ranks=N            use fewer ranks than the partition hosts
//     --dumps=DIR          dump directory (default bgpc_dumps)
//     --trace              enable time-series tracing
//     --interval-cycles=N  trace sampling interval (default 10000)
//     --events=PRESET      trace event preset (see --list)
//     --deaths=K           inject K random node deaths (needs --fault-seed)
//     --fault-seed=S       seed for the deterministic fault plan (default 1)
//     --ft                 ULFM-style survivor recovery: detect the deaths,
//                          revoke/agree/shrink, survivors finalize and dump
//     --ft-detect-latency=N  failure-detection latency in cycles (default 2000)
//
// Without --ft an injected death cascades (PR 1 behaviour: blocked peers
// are stranded, the run is mined degraded); with --ft the survivors ride
// through it and the recovery log is printed and embedded in the dumps.
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "cli.hpp"
#include "common/strfmt.hpp"
#include "fault/fault.hpp"
#include "ft/ftcomm.hpp"
#include "nas/kernel.hpp"
#include "core/session.hpp"
#include "postproc/report.hpp"
#include "postproc/sanity.hpp"

using namespace bgp;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s BENCH [--nodes=N] [--mode=smp1|smp4|dual|vnm] "
               "[--class=S|W|A] [--l3=MB] [--prefetch=D] [--opt=FLAGS] "
               "[--ranks=N] [--dumps=DIR] [--trace] [--interval-cycles=N] "
               "[--events=PRESET] [--deaths=K] [--fault-seed=S] [--ft] "
               "[--ft-detect-latency=N]\n"
               "       %s --list\n",
               argv0, argv0);
  return 2;
}

int list_choices() {
  std::printf("benchmarks:");
  for (const nas::Benchmark b : nas::all_benchmarks()) {
    std::printf(" %s", std::string(nas::name(b)).c_str());
  }
  std::printf("\nmodes: smp1 smp4 dual vnm\nclasses: S W A\nevent presets:");
  for (const std::string& p : trace::trace_preset_names()) {
    std::printf(" %s", p.c_str());
  }
  std::printf("\nfault tolerance: --deaths=K --fault-seed=S inject K node "
              "deaths;\n  --ft enables ULFM-style survivor recovery "
              "(revoke/agree/shrink),\n  --ft-detect-latency=N sets the "
              "failure-detection latency in cycles (default %llu)\n",
              static_cast<unsigned long long>(ft::FtParams{}.detect_latency));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  if (cli::match_flag(argv[1], "list")) return list_choices();

  nas::Benchmark bench;
  unsigned nodes = 4, ranks = 0;
  sys::OpMode mode = sys::OpMode::kVnm;
  nas::ProblemClass cls = nas::ProblemClass::kW;
  sys::BootOptions boot;
  opt::OptConfig optcfg{opt::OptLevel::kO5, false, true};
  std::filesystem::path dump_dir = "bgpc_dumps";
  trace::TraceConfig tc;
  unsigned deaths = 0;
  u64 fault_seed = 1;
  ft::FtParams ftp;

  try {
    bench = nas::parse_benchmark(argv[1]);
    for (int i = 2; i < argc; ++i) {
      const char* v = nullptr;
      if (cli::match_value(argv[i], "nodes", &v)) {
        nodes = cli::parse_positive("--nodes", v);
      } else if (cli::match_value(argv[i], "mode", &v)) {
        mode = sys::parse_mode(v);
      } else if (cli::match_value(argv[i], "class", &v)) {
        cls = nas::parse_class(v);
      } else if (cli::match_value(argv[i], "l3", &v)) {
        boot.l3_size_bytes = cli::parse_u64("--l3", v) * MiB;
      } else if (cli::match_value(argv[i], "prefetch", &v)) {
        const unsigned d = cli::parse_unsigned("--prefetch", v);
        boot.prefetch.enabled = d > 0;
        boot.prefetch.depth = d;
      } else if (cli::match_value(argv[i], "opt", &v)) {
        optcfg = opt::OptConfig::parse(v);
      } else if (cli::match_value(argv[i], "ranks", &v)) {
        ranks = cli::parse_unsigned("--ranks", v);
      } else if (cli::match_value(argv[i], "dumps", &v)) {
        dump_dir = v;
      } else if (cli::match_flag(argv[i], "trace")) {
        tc.enabled = true;
      } else if (cli::match_value(argv[i], "interval-cycles", &v)) {
        tc.interval_cycles = cli::parse_u64("--interval-cycles", v);
        if (tc.interval_cycles == 0) {
          throw std::invalid_argument("--interval-cycles must be positive");
        }
      } else if (cli::match_value(argv[i], "events", &v)) {
        tc.preset = v;
        (void)trace::preset_trace_events(tc.preset, 0);
      } else if (cli::match_value(argv[i], "deaths", &v)) {
        deaths = cli::parse_unsigned("--deaths", v);
      } else if (cli::match_value(argv[i], "fault-seed", &v)) {
        fault_seed = cli::parse_u64("--fault-seed", v);
      } else if (cli::match_flag(argv[i], "ft")) {
        ftp.enabled = true;
      } else if (cli::match_value(argv[i], "ft-detect-latency", &v)) {
        ftp.detect_latency = cli::parse_u64("--ft-detect-latency", v);
      } else {
        std::fprintf(stderr, "unknown flag %s\n", argv[i]);
        return usage(argv[0]);
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return usage(argv[0]);
  }

  std::filesystem::create_directories(dump_dir);
  tc.trace_dir = dump_dir;

  rt::MachineConfig mc;
  mc.num_nodes = nodes;
  mc.mode = mode;
  mc.boot = boot;
  mc.opt = optcfg;
  mc.num_ranks_override = ranks;
  rt::Machine machine(mc);

  fault::FaultInjector injector{[&] {
    fault::FaultSpec spec;
    spec.node_deaths = deaths;
    return fault::FaultPlan::random(fault_seed, nodes, spec);
  }()};
  if (deaths > 0) machine.set_fault_injector(&injector);
  machine.set_ft_params(ftp);

  pc::Options opts;
  opts.app_name = std::string(nas::name(bench));
  opts.dump_dir = dump_dir;
  opts.trace = tc;
  pc::Session session(machine, opts);
  session.link_with_mpi();

  std::printf("%s class %s | %u nodes %s (%u ranks) | L3 %s | prefetch %s | "
              "%s%s\n",
              opts.app_name.c_str(), std::string(nas::name(cls)).c_str(),
              nodes, std::string(sys::to_string(mode)).c_str(),
              machine.num_ranks(),
              boot.l3_size_bytes ? human_bytes((double)boot.l3_size_bytes).c_str()
                                 : "off",
              boot.prefetch.enabled
                  ? strfmt("depth %u", boot.prefetch.depth).c_str()
                  : "off",
              optcfg.name().c_str(),
              tc.enabled
                  ? strfmt(" | tracing every %llu cycles (%s)",
                           static_cast<unsigned long long>(tc.interval_cycles),
                           tc.preset.c_str())
                        .c_str()
                  : "");

  if (deaths > 0) {
    std::printf("fault plan (seed %llu): %u node death(s)%s\n",
                static_cast<unsigned long long>(fault_seed), deaths,
                ftp.enabled ? ", FT recovery enabled" : "");
  }

  auto kernel = nas::make_kernel(bench, cls);
  if (ftp.enabled) {
    machine.run([&](rt::RankCtx& ctx) {
      ft::run_guarded(ctx, [&](rt::RankCtx& c) {
        c.mpi_init();
        kernel->run(c);
      });
      ft::finalize_guarded(ctx);
    });
  } else {
    machine.run([&](rt::RankCtx& ctx) {
      ctx.mpi_init();
      kernel->run(ctx);
      ctx.mpi_finalize();
    });
  }

  const std::vector<unsigned> dead = machine.dead_nodes();
  if (ftp.enabled && !dead.empty()) {
    std::printf("verification: SKIPPED (degraded FT run: %zu node(s) died, "
                "the dead ranks never contributed)\n",
                dead.size());
  } else {
    std::printf("verification: %s (%s)\n",
                kernel->result().verified ? "PASSED" : "FAILED",
                kernel->result().detail.c_str());
  }
  if (!machine.recovery_log().empty()) {
    std::printf("recovery log (%zu events):\n", machine.recovery_log().size());
    for (const ft::RecoveryEvent& e : machine.recovery_log()) {
      std::printf("  %s\n", ft::describe(e).c_str());
    }
  }
  if (!dead.empty()) {
    std::printf("%zu node(s) lost:", dead.size());
    for (const unsigned n : dead) std::printf(" %u", n);
    std::printf("  (survivor dumps: %zu)\n", session.dump_files().size());
  }
  std::printf("simulated time: %.3f ms (%llu cycles on the slowest node)\n",
              1e3 * cycles_to_seconds(machine.elapsed()),
              static_cast<unsigned long long>(machine.elapsed()));
  std::printf("wrote %zu dump files to %s — mine them with:\n"
              "  bgpc_mine %s %s --metrics=metrics.csv%s\n",
              session.dump_files().size(), dump_dir.string().c_str(),
              dump_dir.string().c_str(), opts.app_name.c_str(),
              ftp.enabled ? strfmt(" --ft --expected-nodes=%u", nodes).c_str()
                          : "");
  if (tc.enabled) {
    std::printf("wrote %zu trace files — mine them with:\n"
                "  bgpc_trace --mine-only %s %s --phases=phases.csv\n",
                session.trace_files().size(), dump_dir.string().c_str(),
                opts.app_name.c_str());
  }
  if (ftp.enabled && !dead.empty()) {
    // An FT run with casualties cannot verify (the dead ranks never
    // contributed); it succeeded when every survivor wrote a clean dump.
    bool writes_ok = true;
    for (const pc::DumpWriteOutcome& o : session.write_outcomes()) {
      writes_ok = writes_ok && o.ok;
    }
    const std::size_t survivors = nodes - dead.size();
    return writes_ok && session.dump_files().size() == survivors ? 0 : 1;
  }
  return kernel->result().verified ? 0 : 1;
}
