// bgpc_run — launch an instrumented NAS benchmark on a simulated Blue
// Gene/P partition (the moral equivalent of the paper's job submission):
// pick the benchmark, partition size, operating mode, problem class, boot
// options and compiler option set; the interface library is linked into
// MPI and per-node dump files are written for bgpc_mine. --trace
// additionally attaches the time-series sampler and writes .bgpt trace
// files for bgpc_trace --mine-only. The --obs-* flags attach the flight
// recorder and export a Chrome trace / Prometheus metrics view of the run
// (inspect span files with bgpc_obs).
//
//   bgpc_run BENCH [options]       (see --help for the full flag list)
//   bgpc_run --list                list benchmarks, modes, classes, presets
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>

#include "cli.hpp"
#include "common/strfmt.hpp"
#include "daemon/publisher.hpp"
#include "fault/fault.hpp"
#include "ft/ftcomm.hpp"
#include "nas/kernel.hpp"
#include "core/session.hpp"
#include "postproc/report.hpp"
#include "postproc/sanity.hpp"
#include "runtime/obs_scope.hpp"

using namespace bgp;

namespace {

/// SIGINT/SIGTERM turn into a cooperative Machine stop: the dispatcher
/// finishes the instruction block in flight, traces are sealed and every
/// initialized node checkpoint-dumps through the atomic write path, so an
/// interrupted run leaves minable files instead of torn ones.
std::atomic<rt::Machine*> g_machine{nullptr};
volatile std::sig_atomic_t g_signal = 0;

void on_stop_signal(int sig) {
  g_signal = sig;
  // Both the load and request_stop() are lock-free atomics —
  // async-signal-safe.
  if (rt::Machine* m = g_machine.load(std::memory_order_relaxed)) {
    m->request_stop();
  }
}

int list_choices() {
  std::printf("benchmarks:");
  for (const nas::Benchmark b : nas::all_benchmarks()) {
    std::printf(" %s", std::string(nas::name(b)).c_str());
  }
  std::printf("\nmodes: smp1 smp4 dual vnm\nclasses: S W A\nevent presets:");
  for (const std::string& p : trace::trace_preset_names()) {
    std::printf(" %s", p.c_str());
  }
  std::printf("\nfault tolerance: --deaths=K --fault-seed=S inject K node "
              "deaths;\n  --ft enables ULFM-style survivor recovery "
              "(revoke/agree/shrink),\n  --ft-detect-latency=N sets the "
              "failure-detection latency in cycles (default %llu)\n",
              static_cast<unsigned long long>(ft::FtParams{}.detect_latency));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  unsigned nodes = 4, ranks = 0;
  sys::OpMode mode = sys::OpMode::kVnm;
  nas::ProblemClass cls = nas::ProblemClass::kW;
  sys::BootOptions boot;
  opt::OptConfig optcfg{opt::OptLevel::kO5, false, true};
  std::filesystem::path dump_dir = "bgpc_dumps";
  trace::TraceConfig tc;
  unsigned deaths = 0;
  u64 fault_seed = 1;
  ft::FtParams ftp;
  cli::ObsArgs obs_args;
  cli::SchedArgs sched_args;
  std::filesystem::path snapshot_file;
  daemon::PublisherConfig snap_cfg;

  cli::FlagSet fs("bgpc_run", "BENCH");
  fs.flag("list", "list benchmarks, modes, classes and event presets",
          [] { std::exit(list_choices()); });
  fs.positive_value("nodes", "N", "partition size (default 4)", &nodes);
  fs.value("mode", "M", "smp1|smp4|dual|vnm (default vnm)",
           [&](const char* v) { mode = sys::parse_mode(v); });
  fs.value("class", "C", "problem class S|W|A (default W)",
           [&](const char* v) { cls = nas::parse_class(v); });
  fs.value("l3", "MB", "L3 size in MiB, 0 disables (default 8)",
           [&](const char* v) {
             boot.l3_size_bytes = cli::parse_u64("--l3", v) * MiB;
           });
  fs.value("prefetch", "D", "L2 prefetch depth, 0 disables (default 2)",
           [&](const char* v) {
             const unsigned d = cli::parse_unsigned("--prefetch", v);
             boot.prefetch.enabled = d > 0;
             boot.prefetch.depth = d;
           });
  fs.value("opt", "FLAGS", "compiler options, e.g. \"-O5 -qarch440d\"",
           [&](const char* v) { optcfg = opt::OptConfig::parse(v); });
  fs.unsigned_value("ranks", "N", "use fewer ranks than the partition hosts",
                    &ranks);
  fs.path_value("dumps", "DIR", "dump directory (default bgpc_dumps)",
                &dump_dir);
  fs.toggle("trace", "enable time-series tracing", &tc.enabled);
  fs.value("interval-cycles", "N", "trace sampling interval (default 10000)",
           [&](const char* v) {
             tc.interval_cycles = cli::parse_u64("--interval-cycles", v);
             if (tc.interval_cycles == 0) {
               throw std::invalid_argument("--interval-cycles must be positive");
             }
           });
  fs.value("events", "PRESET", "trace event preset (see --list)",
           [&](const char* v) {
             tc.preset = v;
             (void)trace::preset_trace_events(tc.preset, 0);
           });
  fs.unsigned_value("deaths", "K",
                    "inject K random node deaths (see --fault-seed)", &deaths);
  fs.u64_value("fault-seed", "S",
               "seed for the deterministic fault plan (default 1)",
               &fault_seed);
  fs.toggle("ft",
            "ULFM-style survivor recovery: detect the deaths, "
            "revoke/agree/shrink, survivors finalize and dump",
            &ftp.enabled);
  fs.u64_value("ft-detect-latency", "N",
               "failure-detection latency in cycles (default 2000)",
               &ftp.detect_latency);
  fs.value("interval", "DUR",
           "trace sampling interval as simulated time with a unit suffix "
           "(e.g. 12us); the duration twin of --interval-cycles",
           [&](const char* v) {
             tc.interval_cycles =
                 cli::duration_to_cycles(cli::parse_duration_ns("--interval", v));
             if (tc.interval_cycles == 0) {
               throw std::invalid_argument(
                   "--interval is shorter than one 850 MHz cycle");
             }
           });
  fs.path_value("snapshot-file", "PATH",
                "publish live counter snapshots to this mmap-able file "
                "(attach with bgpc_mine/bgpc_obs --attach)",
                &snapshot_file);
  fs.duration_cycles_value(
      "snapshot-period", "DUR",
      "snapshot publication period as simulated time with a unit suffix "
      "(default 500us; needs --snapshot-file)",
      &snap_cfg.period_cycles);
  cli::add_obs_flags(fs, obs_args);
  cli::add_sched_flags(fs, sched_args);

  if (argc < 2) {
    fs.print_usage(stderr);
    return 2;
  }
  if (argv[1][0] == '-') {
    // No benchmark given: --list/--help/--version are still fine; anything
    // else is an error (parse_one reports it).
    if (const auto rc = fs.parse(argc, argv, 1)) return *rc;
    fs.print_usage(stderr);
    return 2;
  }

  nas::Benchmark bench;
  try {
    bench = nas::parse_benchmark(argv[1]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bgpc_run: %s\n", e.what());
    fs.print_usage(stderr);
    return 2;
  }
  if (const auto rc = fs.parse(argc, argv, 2)) return *rc;

  std::filesystem::create_directories(dump_dir);
  tc.trace_dir = dump_dir;

  rt::MachineConfig mc;
  mc.num_nodes = nodes;
  mc.mode = mode;
  mc.boot = boot;
  mc.opt = optcfg;
  mc.num_ranks_override = ranks;
  cli::apply_sched_args(sched_args, mc);
  rt::Machine machine(mc);

  fault::FaultInjector injector{[&] {
    fault::FaultSpec spec;
    spec.node_deaths = deaths;
    return fault::FaultPlan::random(fault_seed, nodes, spec);
  }()};
  if (deaths > 0) machine.set_fault_injector(&injector);
  machine.set_ft_params(ftp);

  pc::Options opts;
  opts.app_name = std::string(nas::name(bench));
  opts.dump_dir = dump_dir;
  opts.trace = tc;
  opts.obs = obs_args.config;
  pc::Session session(machine, opts);
  session.link_with_mpi();

  std::printf("%s class %s | %u nodes %s (%u ranks) | L3 %s | prefetch %s | "
              "%s%s\n",
              opts.app_name.c_str(), std::string(nas::name(cls)).c_str(),
              nodes, std::string(sys::to_string(mode)).c_str(),
              machine.num_ranks(),
              boot.l3_size_bytes ? human_bytes((double)boot.l3_size_bytes).c_str()
                                 : "off",
              boot.prefetch.enabled
                  ? strfmt("depth %u", boot.prefetch.depth).c_str()
                  : "off",
              optcfg.name().c_str(),
              tc.enabled
                  ? strfmt(" | tracing every %llu cycles (%s)",
                           static_cast<unsigned long long>(tc.interval_cycles),
                           tc.preset.c_str())
                        .c_str()
                  : "");

  if (deaths > 0) {
    std::printf("fault plan (seed %llu): %u node death(s)%s\n",
                static_cast<unsigned long long>(fault_seed), deaths,
                ftp.enabled ? ", FT recovery enabled" : "");
  }

  std::unique_ptr<daemon::SnapshotPublisher> publisher;
  if (!snapshot_file.empty()) {
    publisher = std::make_unique<daemon::SnapshotPublisher>(
        machine, snapshot_file, opts.app_name, opts.app_name, snap_cfg);
    if (session.flight_recorder() != nullptr) {
      publisher->set_metrics_source(&session.flight_recorder()->metrics());
    }
    std::printf("publishing snapshots to %s every %llu cycles\n",
                snapshot_file.string().c_str(),
                static_cast<unsigned long long>(snap_cfg.period_cycles));
  }

  struct sigaction sa{};
  sa.sa_handler = on_stop_signal;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
  g_machine.store(&machine, std::memory_order_relaxed);

  auto kernel = nas::make_kernel(bench, cls);
  const std::string region = "region." + opts.app_name;
  bool stopped = false;
  try {
    if (ftp.enabled) {
      machine.run([&](rt::RankCtx& ctx) {
        ft::run_guarded(ctx, [&](rt::RankCtx& c) {
          c.mpi_init();
          rt::ObsScope span(c, region, obs::SpanCat::kRegion);
          kernel->run(c);
        });
        ft::finalize_guarded(ctx);
      });
    } else {
      machine.run([&](rt::RankCtx& ctx) {
        ctx.mpi_init();
        {
          rt::ObsScope span(ctx, region, obs::SpanCat::kRegion);
          kernel->run(ctx);
        }
        ctx.mpi_finalize();
      });
    }
  } catch (const rt::RunStopped&) {
    stopped = true;
  }
  g_machine.store(nullptr, std::memory_order_relaxed);

  if (stopped) {
    // Interrupted: seal what was recording and checkpoint-dump every
    // initialized node so the partial run stays minable.
    session.seal_all_traces();
    session.checkpoint_dump();
    if (publisher) publisher->publish_final();
    std::printf("interrupted at %llu cycles: sealed %zu trace(s), wrote %zu "
                "checkpoint dump(s) to %s\n",
                static_cast<unsigned long long>(machine.elapsed()),
                session.trace_files().size(), session.dump_files().size(),
                dump_dir.string().c_str());
    return 128 + static_cast<int>(g_signal);
  }
  if (publisher) publisher->publish_final();

  const std::vector<unsigned> dead = machine.dead_nodes();
  if (ftp.enabled && !dead.empty()) {
    std::printf("verification: SKIPPED (degraded FT run: %zu node(s) died, "
                "the dead ranks never contributed)\n",
                dead.size());
  } else {
    std::printf("verification: %s (%s)\n",
                kernel->result().verified ? "PASSED" : "FAILED",
                kernel->result().detail.c_str());
  }
  if (!machine.recovery_log().empty()) {
    std::printf("recovery log (%zu events):\n", machine.recovery_log().size());
    for (const ft::RecoveryEvent& e : machine.recovery_log()) {
      std::printf("  %s\n", ft::describe(e).c_str());
    }
  }
  if (!dead.empty()) {
    std::printf("%zu node(s) lost:", dead.size());
    for (const unsigned n : dead) std::printf(" %u", n);
    std::printf("  (survivor dumps: %zu)\n", session.dump_files().size());
  }
  std::printf("simulated time: %.3f ms (%llu cycles on the slowest node)\n",
              1e3 * cycles_to_seconds(machine.elapsed()),
              static_cast<unsigned long long>(machine.elapsed()));
  std::printf("wrote %zu dump files to %s — mine them with:\n"
              "  bgpc_mine %s %s --metrics=metrics.csv%s\n",
              session.dump_files().size(), dump_dir.string().c_str(),
              dump_dir.string().c_str(), opts.app_name.c_str(),
              ftp.enabled ? strfmt(" --ft --expected-nodes=%u", nodes).c_str()
                          : "");
  if (tc.enabled) {
    std::printf("wrote %zu trace files — mine them with:\n"
                "  bgpc_trace --mine-only %s %s --phases=phases.csv\n",
                session.trace_files().size(), dump_dir.string().c_str(),
                opts.app_name.c_str());
  }
  const int obs_rc =
      cli::write_obs_outputs(obs_args, session.flight_recorder(),
                             opts.app_name);
  if (obs_args.config.enabled && !session.span_files().empty()) {
    std::printf("wrote %zu span files — inspect them with:\n"
                "  bgpc_obs %s %s\n",
                session.span_files().size(), dump_dir.string().c_str(),
                opts.app_name.c_str());
  }
  if (ftp.enabled && !dead.empty()) {
    // An FT run with casualties cannot verify (the dead ranks never
    // contributed); it succeeded when every survivor wrote a clean dump.
    bool writes_ok = true;
    for (const pc::DumpWriteOutcome& o : session.write_outcomes()) {
      writes_ok = writes_ok && o.ok;
    }
    const std::size_t survivors = nodes - dead.size();
    return writes_ok && session.dump_files().size() == survivors && obs_rc == 0
               ? 0
               : 1;
  }
  return kernel->result().verified && obs_rc == 0 ? 0 : 1;
}
