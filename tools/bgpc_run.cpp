// bgpc_run — launch an instrumented NAS benchmark on a simulated Blue
// Gene/P partition (the moral equivalent of the paper's job submission):
// pick the benchmark, partition size, operating mode, problem class, boot
// options and compiler option set; the interface library is linked into
// MPI and per-node dump files are written for bgpc_mine.
//
//   bgpc_run BENCH [options]
//     --nodes=N         partition size (default 4)
//     --mode=M          smp1|smp4|dual|vnm (default vnm)
//     --class=C         S|W|A (default W)
//     --l3=MB           L3 size in MiB, 0 disables (default 8)
//     --prefetch=D      L2 prefetch depth, 0 disables (default 2)
//     --opt=FLAGS       e.g. "-O5 -qarch440d" (default)
//     --ranks=N         use fewer ranks than the partition hosts
//     --dumps=DIR       dump directory (default bgpc_dumps)
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "common/strfmt.hpp"
#include "nas/kernel.hpp"
#include "core/session.hpp"
#include "postproc/report.hpp"
#include "postproc/sanity.hpp"

using namespace bgp;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s BENCH [--nodes=N] [--mode=smp1|smp4|dual|vnm] "
               "[--class=S|W|A] [--l3=MB] [--prefetch=D] [--opt=FLAGS] "
               "[--ranks=N] [--dumps=DIR]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);

  nas::Benchmark bench;
  unsigned nodes = 4, ranks = 0;
  sys::OpMode mode = sys::OpMode::kVnm;
  nas::ProblemClass cls = nas::ProblemClass::kW;
  sys::BootOptions boot;
  opt::OptConfig optcfg{opt::OptLevel::kO5, false, true};
  std::filesystem::path dump_dir = "bgpc_dumps";

  try {
    bench = nas::parse_benchmark(argv[1]);
    for (int i = 2; i < argc; ++i) {
      if (std::strncmp(argv[i], "--nodes=", 8) == 0) {
        nodes = static_cast<unsigned>(std::atoi(argv[i] + 8));
      } else if (std::strncmp(argv[i], "--mode=", 7) == 0) {
        mode = sys::parse_mode(argv[i] + 7);
      } else if (std::strncmp(argv[i], "--class=", 8) == 0) {
        cls = nas::parse_class(argv[i] + 8);
      } else if (std::strncmp(argv[i], "--l3=", 5) == 0) {
        boot.l3_size_bytes = static_cast<u64>(std::atoi(argv[i] + 5)) * MiB;
      } else if (std::strncmp(argv[i], "--prefetch=", 11) == 0) {
        const int d = std::atoi(argv[i] + 11);
        boot.prefetch.enabled = d > 0;
        boot.prefetch.depth = static_cast<unsigned>(d);
      } else if (std::strncmp(argv[i], "--opt=", 6) == 0) {
        optcfg = opt::OptConfig::parse(argv[i] + 6);
      } else if (std::strncmp(argv[i], "--ranks=", 8) == 0) {
        ranks = static_cast<unsigned>(std::atoi(argv[i] + 8));
      } else if (std::strncmp(argv[i], "--dumps=", 8) == 0) {
        dump_dir = argv[i] + 8;
      } else {
        return usage(argv[0]);
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return usage(argv[0]);
  }

  std::filesystem::create_directories(dump_dir);

  rt::MachineConfig mc;
  mc.num_nodes = nodes;
  mc.mode = mode;
  mc.boot = boot;
  mc.opt = optcfg;
  mc.num_ranks_override = ranks;
  rt::Machine machine(mc);

  pc::Options opts;
  opts.app_name = std::string(nas::name(bench));
  opts.dump_dir = dump_dir;
  pc::Session session(machine, opts);
  session.link_with_mpi();

  std::printf("%s class %s | %u nodes %s (%u ranks) | L3 %s | prefetch %s | "
              "%s\n",
              opts.app_name.c_str(), std::string(nas::name(cls)).c_str(),
              nodes, std::string(sys::to_string(mode)).c_str(),
              machine.num_ranks(),
              boot.l3_size_bytes ? human_bytes((double)boot.l3_size_bytes).c_str()
                                 : "off",
              boot.prefetch.enabled
                  ? strfmt("depth %u", boot.prefetch.depth).c_str()
                  : "off",
              optcfg.name().c_str());

  auto kernel = nas::make_kernel(bench, cls);
  machine.run([&](rt::RankCtx& ctx) {
    ctx.mpi_init();
    kernel->run(ctx);
    ctx.mpi_finalize();
  });

  std::printf("verification: %s (%s)\n",
              kernel->result().verified ? "PASSED" : "FAILED",
              kernel->result().detail.c_str());
  std::printf("simulated time: %.3f ms (%llu cycles on the slowest node)\n",
              1e3 * cycles_to_seconds(machine.elapsed()),
              static_cast<unsigned long long>(machine.elapsed()));
  std::printf("wrote %zu dump files to %s — mine them with:\n"
              "  bgpc_mine %s %s --metrics=metrics.csv\n",
              session.dump_files().size(), dump_dir.string().c_str(),
              dump_dir.string().c_str(), opts.app_name.c_str());
  return kernel->result().verified ? 0 : 1;
}
