// Profile a NAS benchmark end to end the way the paper does it (Fig 5):
// link the interface library into MPI so the application needs no code
// changes, run it, dump per-node binary files, post-process them into the
// metrics .csv records.
//
//   build/examples/nas_profile [BENCH] [nodes] [vnm|smp1|dual] [S|W|A]
//   e.g. build/examples/nas_profile FT 8 vnm W
#include <cstdio>
#include <filesystem>

#include "common/strfmt.hpp"
#include "nas/runner.hpp"
#include "postproc/loader.hpp"
#include "postproc/sanity.hpp"

using namespace bgp;

int main(int argc, char** argv) {
  const nas::Benchmark bench =
      argc > 1 ? nas::parse_benchmark(argv[1]) : nas::Benchmark::kCG;
  const unsigned nodes = argc > 2 ? std::atoi(argv[2]) : 4;
  const sys::OpMode mode =
      argc > 3 ? sys::parse_mode(argv[3]) : sys::OpMode::kVnm;
  const nas::ProblemClass cls =
      argc > 4 ? nas::parse_class(argv[4]) : nas::ProblemClass::kW;

  const auto dump_dir = std::filesystem::path("bgpc_dumps");
  std::filesystem::create_directories(dump_dir);

  // Build the machine and instrument "MPI" with the interface library.
  rt::MachineConfig mc;
  mc.num_nodes = nodes;
  mc.mode = mode;
  rt::Machine machine(mc);
  pc::Options opts;
  opts.app_name = std::string(nas::name(bench));
  opts.dump_dir = dump_dir;
  pc::Session session(machine, opts);
  session.link_with_mpi();

  auto kernel = nas::make_kernel(bench, cls);
  std::printf("running %s class %s on %u nodes (%s, %u ranks)...\n",
              std::string(nas::name(bench)).c_str(),
              std::string(nas::name(cls)).c_str(), nodes,
              std::string(sys::to_string(mode)).c_str(),
              machine.num_ranks());
  machine.run([&](rt::RankCtx& ctx) {
    ctx.mpi_init();
    kernel->run(ctx);
    ctx.mpi_finalize();
  });
  std::printf("verification: %s (%s)\n",
              kernel->result().verified ? "PASSED" : "FAILED",
              kernel->result().detail.c_str());

  // Post-process the dump files exactly like the paper's tools.
  const auto dumps = post::load_dumps(dump_dir, opts.app_name);
  std::printf("loaded %zu per-node dump files from %s\n", dumps.size(),
              dump_dir.string().c_str());
  const auto sanity = post::check(dumps);
  if (!sanity.ok()) {
    for (const auto& p : sanity.problems)
      std::printf("sanity: %s\n", p.text.c_str());
    return 1;
  }

  const post::Aggregate agg(dumps, 0);
  const auto rec = post::make_record(opts.app_name, agg);

  CsvWriter metrics;
  post::write_metrics_csv(metrics, {rec});
  metrics.write_file(dump_dir / "metrics.csv");
  CsvWriter stats;
  post::write_counter_stats_csv(stats, agg);
  stats.write_file(dump_dir / "counter_stats.csv");

  std::printf("\nmetrics record:\n%s", metrics.text().c_str());
  std::printf("\nMFLOPS/node=%.1f  exec=%.2f Mcycles (%.2f ms at 850 MHz)\n",
              rec.mflops_per_node, rec.exec_cycles / 1e6,
              1e3 * cycles_to_seconds(
                        static_cast<cycles_t>(rec.exec_cycles)));
  std::printf("L3<->DDR traffic: %s/node\n",
              human_bytes(rec.ddr_traffic_bytes).c_str());
  std::printf("wrote %s and %s\n", (dump_dir / "metrics.csv").string().c_str(),
              (dump_dir / "counter_stats.csv").string().c_str());
  return kernel->result().verified ? 0 : 1;
}
