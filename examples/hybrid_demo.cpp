// Hybrid MPI+OpenMP on the quad-core node — the experiment the paper's §IX
// says it is "curious to see": the same stencil workload run as
//   VNM    4 MPI processes x 1 thread  (message passing inside the chip)
//   DUAL   2 MPI processes x 2 threads
//   SMP/4  1 MPI process  x 4 threads  (pure worksharing)
// with the counters reporting per-chip throughput for each.
//
//   build/examples/hybrid_demo
#include <cstdio>

#include "core/session.hpp"
#include "postproc/report.hpp"
#include "runtime/rankctx.hpp"

using namespace bgp;

namespace {

/// One relaxation sweep over a rank-slice of a shared-size grid: the total
/// work across the chip is identical in every mode.
void stencil_phase(rt::RankCtx& ctx, u64 total_points_per_chip) {
  const unsigned procs = ctx.size();
  const u64 points = total_points_per_chip / procs;
  auto grid = ctx.alloc<double>(points);
  auto out = ctx.alloc<double>(points);
  for (u64 i = 0; i < points; ++i) grid[i] = 0.01 * double(i % 97);

  isa::LoopDesc d;
  d.name = "stencil";
  d.trip = points;
  d.body.fp_at(isa::FpOp::kAddSub) = 4;
  d.body.fp_at(isa::FpOp::kFma) = 2;
  d.body.ls_at(isa::LsOp::kLoadDouble) = 3;
  d.body.ls_at(isa::LsOp::kStoreDouble) = 1;
  d.body.int_at(isa::IntOp::kAlu) = 4;
  d.body.int_at(isa::IntOp::kBranch) = 1;
  d.vectorizable = 0.8;

  for (int sweep = 0; sweep < 4; ++sweep) {
    for (u64 i = 1; i + 1 < points; ++i) {
      out[i] = 0.25 * (grid[i - 1] + 2.0 * grid[i] + grid[i + 1]);
    }
    std::swap(grid, out);
    // Worksharing across the process's cores (1 thread in VNM, 2 in Dual,
    // 4 in SMP/4).
    ctx.parallel_loop(d, {rt::MemRange{grid.addr(), grid.bytes(), false},
                          rt::MemRange{out.addr(), out.bytes(), true}});
    if (procs > 1) ctx.barrier();  // halo sync stand-in
  }
}

}  // namespace

int main() {
  constexpr u64 kPointsPerChip = 1 << 20;  // 8 MiB of doubles per chip

  std::printf("hybrid decomposition of one chip, identical total work:\n\n");
  std::printf("%-8s %10s %10s %14s %16s\n", "mode", "procs", "thr/proc",
              "exec Mcyc", "MFLOPS/chip");
  for (sys::OpMode mode :
       {sys::OpMode::kVnm, sys::OpMode::kDual, sys::OpMode::kSmp4}) {
    rt::MachineConfig mc;
    mc.num_nodes = 1;
    mc.mode = mode;
    rt::Machine machine(mc);
    pc::Options opts;
    opts.write_dumps = false;
    opts.mode_even_cards = 0;
    pc::Session session(machine, opts);
    session.link_with_mpi();

    machine.run([&](rt::RankCtx& ctx) {
      ctx.mpi_init();
      stencil_phase(ctx, kPointsPerChip);
      ctx.mpi_finalize();
    });

    const post::Aggregate agg(session.dumps(), 0);
    const auto rec = post::make_record("hybrid", agg);
    std::printf("%-8s %10u %10u %14.2f %16.1f\n",
                std::string(sys::to_string(mode)).c_str(),
                sys::processes_per_node(mode), sys::threads_per_process(mode),
                rec.exec_cycles / 1e6, rec.mflops_per_node);
  }
  std::printf("\nall three use the full chip; the trade-off is MPI overhead "
              "(VNM) vs fork/join overhead (SMP/4).\n");
  return 0;
}
