// Explore a workload's sensitivity to the shared-L3 size and the L2
// prefetch depth (the hardware parameters the paper varies in §VII and
// flags as future work in §IX). Demonstrates the svchost-style boot options.
//
//   build/examples/l3_explorer [BENCH] [nodes]
#include <cstdio>

#include "common/strfmt.hpp"
#include "nas/runner.hpp"

using namespace bgp;

int main(int argc, char** argv) {
  const nas::Benchmark bench =
      argc > 1 ? nas::parse_benchmark(argv[1]) : nas::Benchmark::kMG;
  // At least 4 nodes so both node-card parities exist: memory metrics come
  // from the odd-card (mode 1) nodes (paper's 512-events-per-run scheme).
  const unsigned nodes = argc > 2 ? std::atoi(argv[2]) : 4;

  std::printf("%s, %u nodes VNM, class W — boot-option exploration\n\n",
              std::string(nas::name(bench)).c_str(), nodes);

  std::printf("%-14s %14s %14s %12s\n", "L3 size", "DDR traffic", "exec Mcyc",
              "L3 miss%");
  for (u64 mb : {0, 1, 2, 4, 8}) {
    nas::RunConfig cfg;
    cfg.bench = bench;
    cfg.cls = nas::ProblemClass::kW;
    cfg.num_nodes = nodes;
    cfg.mode = sys::OpMode::kVnm;
    cfg.boot.l3_size_bytes = mb * MiB;
    const auto out = nas::run_benchmark(cfg);
    std::printf("%-14s %14s %14.2f %11.1f%%\n",
                mb ? strfmt("%llu MiB", (unsigned long long)mb).c_str()
                   : "disabled",
                human_bytes(out.record.ddr_traffic_bytes).c_str(),
                out.record.exec_cycles / 1e6,
                100.0 * out.record.l3_read_miss_ratio);
  }

  std::printf("\n%-14s %14s %14s\n", "L2 prefetch", "DDR traffic",
              "exec Mcyc");
  for (unsigned depth : {0u, 2u, 8u}) {
    nas::RunConfig cfg;
    cfg.bench = bench;
    cfg.cls = nas::ProblemClass::kW;
    cfg.num_nodes = nodes;
    cfg.mode = sys::OpMode::kVnm;
    cfg.boot.prefetch.enabled = depth > 0;
    cfg.boot.prefetch.depth = depth;
    const auto out = nas::run_benchmark(cfg);
    std::printf("%-14s %14s %14.2f\n",
                depth ? strfmt("depth %u", depth).c_str() : "off",
                human_bytes(out.record.ddr_traffic_bytes).c_str(),
                out.record.exec_cycles / 1e6);
  }
  return 0;
}
