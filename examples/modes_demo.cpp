// Run the same benchmark in the node's operating modes (paper Fig 3 /
// §VIII): Virtual Node Mode with four processes per chip, Dual mode with
// two, SMP/1 with one — same total rank count, different chips used — and
// compare per-chip efficiency.
//
//   build/examples/modes_demo [BENCH]
#include <cstdio>

#include "common/strfmt.hpp"
#include "nas/runner.hpp"

using namespace bgp;

int main(int argc, char** argv) {
  const nas::Benchmark bench =
      argc > 1 ? nas::parse_benchmark(argv[1]) : nas::Benchmark::kCG;
  constexpr unsigned kRanks = 16;

  std::printf("%s class A, %u ranks in each operating mode\n\n",
              std::string(nas::name(bench)).c_str(), kRanks);
  std::printf("%-8s %8s %8s %14s %14s %14s\n", "mode", "nodes", "ranks",
              "exec Mcyc", "MFLOPS/chip", "DDR/node");

  struct ModeRun {
    sys::OpMode mode;
    unsigned nodes;
  };
  for (const ModeRun m : {ModeRun{sys::OpMode::kVnm, kRanks / 4},
                          ModeRun{sys::OpMode::kDual, kRanks / 2},
                          ModeRun{sys::OpMode::kSmp1, kRanks}}) {
    nas::RunConfig cfg;
    cfg.bench = bench;
    cfg.cls = nas::ProblemClass::kA;
    cfg.num_nodes = m.nodes;
    cfg.mode = m.mode;
    const auto out = nas::run_benchmark(cfg);
    std::printf("%-8s %8u %8u %14.2f %14.1f %14s %s\n",
                std::string(sys::to_string(m.mode)).c_str(), m.nodes, kRanks,
                out.record.exec_cycles / 1e6, out.record.mflops_per_node,
                human_bytes(out.record.ddr_traffic_bytes).c_str(),
                out.result.verified ? "" : "(verification FAILED)");
  }
  std::printf("\nVNM delivers the most work per chip; SMP/1 the most per "
              "process — the paper's §VIII trade-off.\n");
  return 0;
}
