// Thresholding demo (paper §I/§III-A): arm a counter threshold so the UPC
// unit raises an interrupt when an event count is crossed — the mechanism
// the paper proposes for dynamic feedback to data placement, thread
// assignment and communication tuning.
//
//   build/examples/threshold_monitor
#include <cstdio>

#include "core/session.hpp"
#include "runtime/rankctx.hpp"

using namespace bgp;

int main() {
  rt::MachineConfig mc;
  mc.num_nodes = 1;
  mc.mode = sys::OpMode::kSmp1;
  rt::Machine machine(mc);
  pc::Options opts;
  opts.write_dumps = false;
  pc::Session session(machine, opts);

  // Watch L1D read misses; fire when the working set starts thrashing.
  const isa::EventId watched = isa::ev::l1d(0, isa::L1dEvent::kReadMiss);
  constexpr u64 kThreshold = 2000;

  unsigned interrupts = 0;
  machine.partition().node(0).upc().set_threshold_handler(
      [&](u8 counter, u64 value) {
        ++interrupts;
        std::printf(">>> threshold interrupt: counter %u (%s) reached %llu\n",
                    counter,
                    std::string(isa::event_info(watched).name).c_str(),
                    static_cast<unsigned long long>(value));
      });

  machine.run([&](rt::RankCtx& ctx) {
    session.BGP_Initialize(ctx);
    session.arm_threshold(ctx, watched, kThreshold);
    session.BGP_Start(ctx);

    // Phase 1: cache-friendly walks — few misses, no interrupt.
    auto small = ctx.alloc<double>(2048);  // 16 KiB, fits L1
    for (int pass = 0; pass < 8; ++pass) {
      ctx.touch(rt::MemRange{small.addr(), small.bytes(), false}, 3.0);
    }
    std::printf("after cache-friendly phase: interrupts=%u (expect 0)\n",
                interrupts);

    // Phase 2: a 2 MiB streaming walk blows through the L1 and trips the
    // threshold; a runtime system could react by re-blocking the loop.
    auto big = ctx.alloc<double>(256 * 1024);
    for (int pass = 0; pass < 2; ++pass) {
      ctx.touch(rt::MemRange{big.addr(), big.bytes(), false}, 3.0);
    }
    std::printf("after streaming phase:      interrupts=%u (expect 1)\n",
                interrupts);

    session.BGP_Stop(ctx);
  });

  const u64 misses = session.monitor(0).set_record(0).deltas[
      isa::event_counter(watched)];
  std::printf("total L1D read misses in set 0: %llu (threshold %llu)\n",
              static_cast<unsigned long long>(misses),
              static_cast<unsigned long long>(kThreshold));
  return interrupts == 1 ? 0 : 1;
}
