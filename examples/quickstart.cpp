// Quickstart: instrument a code snippet with the four interface calls
// (paper Fig 4), run it on one simulated Blue Gene/P node, and read the raw
// counters back — the minimal end-to-end tour of the library.
//
//   build/examples/quickstart
#include <cstdio>

#include "core/capi.hpp"
#include "runtime/rankctx.hpp"

using namespace bgp;
using namespace bgp::pc;  // the paper-style BGP_* free functions

int main() {
  // One node, one process (SMP/1), default boot options.
  rt::MachineConfig mc;
  mc.num_nodes = 1;
  mc.mode = sys::OpMode::kSmp1;
  rt::Machine machine(mc);

  pc::Options opts;
  opts.app_name = "quickstart";
  opts.write_dumps = false;  // keep the counters in memory for this demo
  pc::Session session(machine, opts);
  pc::BGP_Bind(&session);  // enable the paper-style free functions

  machine.run([](rt::RankCtx& ctx) {
    BGP_Initialize(ctx);

    // A daxpy-like kernel: z[i] = a*x[i] + y[i], fully vectorizable.
    auto x = ctx.alloc<double>(8192);
    auto y = ctx.alloc<double>(8192);
    auto z = ctx.alloc<double>(8192);
    for (std::size_t i = 0; i < x.size(); ++i) {
      x[i] = 0.5 * static_cast<double>(i);
      y[i] = 1.0;
    }

    isa::LoopDesc daxpy;
    daxpy.name = "daxpy";
    daxpy.trip = x.size();
    daxpy.body.fp_at(isa::FpOp::kFma) = 1;
    daxpy.body.ls_at(isa::LsOp::kLoadDouble) = 2;
    daxpy.body.ls_at(isa::LsOp::kStoreDouble) = 1;
    daxpy.body.int_at(isa::IntOp::kAlu) = 2;
    daxpy.body.int_at(isa::IntOp::kBranch) = 1;
    daxpy.vectorizable = 1.0;

    BGP_Start(ctx, /*set=*/1);
    for (std::size_t i = 0; i < x.size(); ++i) z[i] = 2.0 * x[i] + y[i];
    ctx.loop(daxpy, {rt::MemRange{x.addr(), x.bytes(), false},
                     rt::MemRange{y.addr(), y.bytes(), false},
                     rt::MemRange{z.addr(), z.bytes(), true}});
    BGP_Stop(ctx, /*set=*/1);

    BGP_Finalize(ctx);

    std::printf("daxpy result check: z[100] = %.1f (expect %.1f)\n", z[100],
                2.0 * x[100] + y[100]);
  });

  // Read the set-1 record straight from the node monitor.
  const auto& rec = session.monitor(0).set_record(1);
  std::printf("\ncounters for set 1 (mode %u, %u start/stop pair):\n",
              session.monitor(0).programmed_mode(), rec.pairs);
  for (unsigned c = 0; c < isa::kCountersPerUnit; ++c) {
    if (rec.deltas[c] == 0) continue;
    const auto& info = isa::event_info(
        static_cast<isa::EventId>(session.monitor(0).programmed_mode() *
                                      isa::kCountersPerUnit + c));
    std::printf("  %-28s %12llu\n", std::string(info.name).c_str(),
                static_cast<unsigned long long>(rec.deltas[c]));
  }
  pc::BGP_Bind(nullptr);
  return 0;
}
