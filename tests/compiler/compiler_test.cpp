#include "compiler/compiler.hpp"

#include <gtest/gtest.h>

#include "cpu/core.hpp"

namespace bgp::opt {
namespace {

using isa::FpOp;
using isa::IntOp;
using isa::LoopDesc;
using isa::LsOp;

/// A daxpy-like loop: z[i] = a*x[i] + y[i], fully vectorizable.
LoopDesc daxpy(u64 trip = 1000) {
  LoopDesc d;
  d.name = "daxpy";
  d.trip = trip;
  d.body.fp_at(FpOp::kFma) = 1;
  d.body.ls_at(LsOp::kLoadDouble) = 2;
  d.body.ls_at(LsOp::kStoreDouble) = 1;
  d.body.int_at(IntOp::kAlu) = 4;
  d.body.int_at(IntOp::kBranch) = 1;
  d.vectorizable = 1.0;
  return d;
}

TEST(Compiler, BaselineKeepsScalarForm) {
  Compiler cc(OptConfig::parse("-O -qstrict"));
  const auto out = cc.compile(daxpy());
  EXPECT_EQ(out.ops.fp_at(FpOp::kFma), 1000u);
  EXPECT_EQ(out.ops.fp_at(FpOp::kSimdFma), 0u);
  EXPECT_EQ(out.ops.ls_at(LsOp::kLoadQuad), 0u);
  EXPECT_EQ(out.ops.int_at(IntOp::kBranch), 1000u);
}

TEST(Compiler, SimdizerPairsOpsAndLoads) {
  Compiler cc(OptConfig::parse("-O5 -qarch440d"));
  const auto out = cc.compile(daxpy());
  // Full vectorizable fraction at -O5: everything pairs.
  EXPECT_EQ(out.ops.fp_at(FpOp::kSimdFma), 500u);
  EXPECT_EQ(out.ops.fp_at(FpOp::kFma), 0u);
  EXPECT_EQ(out.ops.ls_at(LsOp::kLoadQuad), 1000u);
  EXPECT_EQ(out.ops.ls_at(LsOp::kLoadDouble), 0u);
  EXPECT_EQ(out.ops.ls_at(LsOp::kStoreQuad), 500u);
}

TEST(Compiler, SimdizationPreservesFlops) {
  const auto base = Compiler(OptConfig::parse("-O3")).compile(daxpy());
  const auto simd =
      Compiler(OptConfig::parse("-O5 -qarch440d")).compile(daxpy());
  EXPECT_EQ(base.ops.total_flops(), simd.ops.total_flops());
  EXPECT_EQ(base.ops.bytes_loaded(), simd.ops.bytes_loaded());
  EXPECT_EQ(base.ops.bytes_stored(), simd.ops.bytes_stored());
}

TEST(Compiler, NoSimdWithoutQarch440d) {
  for (const char* flags : {"-O3", "-O4", "-O5"}) {
    Compiler cc(OptConfig::parse(flags));
    const auto out = cc.compile(daxpy());
    EXPECT_EQ(out.ops.fp_at(FpOp::kSimdFma), 0u) << flags;
  }
}

TEST(Compiler, SimdNeedsO3Infrastructure) {
  // -qarch440d with plain -O produces no SIMD (the SIMDizer rides on the
  // higher-level loop framework).
  Compiler cc(OptConfig{OptLevel::kO, false, true});
  EXPECT_EQ(cc.simd_efficiency(), 0.0);
  EXPECT_EQ(cc.compile(daxpy()).ops.fp_at(FpOp::kSimdFma), 0u);
}

TEST(Compiler, SimdEfficiencyGrowsWithLevel) {
  const double e3 = Compiler(OptConfig::parse("-O3 -qarch440d")).simd_efficiency();
  const double e4 = Compiler(OptConfig::parse("-O4 -qarch440d")).simd_efficiency();
  const double e5 = Compiler(OptConfig::parse("-O5 -qarch440d")).simd_efficiency();
  EXPECT_LT(e3, e4);
  EXPECT_LT(e4, e5);
  EXPECT_EQ(e5, 1.0);
}

TEST(Compiler, PartialVectorizableLeavesResidue) {
  auto d = daxpy();
  d.vectorizable = 0.5;
  Compiler cc(OptConfig::parse("-O5 -qarch440d"));
  const auto out = cc.compile(d);
  EXPECT_EQ(out.ops.fp_at(FpOp::kSimdFma), 250u);
  EXPECT_EQ(out.ops.fp_at(FpOp::kFma), 500u);
}

TEST(Compiler, ReductionsVectorizeWithPenaltyAndNoStorePairing) {
  auto d = daxpy();
  d.reduction = true;
  Compiler cc(OptConfig::parse("-O5 -qarch440d"));
  const auto out = cc.compile(d);
  EXPECT_GT(out.ops.fp_at(FpOp::kSimdFma), 0u);
  EXPECT_LT(out.ops.fp_at(FpOp::kSimdFma), 500u);  // 0.9 efficiency
  EXPECT_EQ(out.ops.ls_at(LsOp::kStoreQuad), 0u);
}

TEST(Compiler, DividesStayScalar) {
  LoopDesc d;
  d.trip = 100;
  d.body.fp_at(FpOp::kDiv) = 2;
  d.vectorizable = 1.0;
  Compiler cc(OptConfig::parse("-O5 -qarch440d"));
  const auto out = cc.compile(d);
  EXPECT_EQ(out.ops.fp_at(FpOp::kDiv), 200u);
  EXPECT_EQ(out.ops.fp_at(FpOp::kSimdDiv), 0u);
}

TEST(Compiler, UnrollReducesBranches) {
  const auto o0 = Compiler(OptConfig::parse("-O")).compile(daxpy());
  const auto o3 = Compiler(OptConfig::parse("-O3")).compile(daxpy());
  const auto o4 = Compiler(OptConfig::parse("-O4")).compile(daxpy());
  EXPECT_GT(o0.ops.int_at(IntOp::kBranch), o3.ops.int_at(IntOp::kBranch));
  EXPECT_GT(o3.ops.int_at(IntOp::kBranch), o4.ops.int_at(IntOp::kBranch));
}

TEST(Compiler, IpaRemovesCalls) {
  LoopDesc d = daxpy();
  d.has_calls = true;
  d.body.int_at(IntOp::kCall) = 2;
  const auto o4 = Compiler(OptConfig::parse("-O4")).compile(d);
  const auto o5 = Compiler(OptConfig::parse("-O5")).compile(d);
  EXPECT_EQ(o4.ops.int_at(IntOp::kCall), 2000u);
  EXPECT_EQ(o5.ops.int_at(IntOp::kCall), 0u);
}

TEST(Compiler, QhotImprovesOverlapForStreamingLoops) {
  auto d = daxpy();
  d.locality = isa::LocalityClass::kStreaming;
  const auto o3 = Compiler(OptConfig::parse("-O3")).compile(d);
  const auto o4 = Compiler(OptConfig::parse("-O4")).compile(d);
  EXPECT_GT(o4.mem_overlap, o3.mem_overlap);

  d.locality = isa::LocalityClass::kRandom;
  const auto r3 = Compiler(OptConfig::parse("-O3")).compile(d);
  const auto r4 = Compiler(OptConfig::parse("-O4")).compile(d);
  EXPECT_EQ(r4.mem_overlap, r3.mem_overlap);
}

TEST(Compiler, ExecutionCyclesDropAcrossLevelsAndWith440d) {
  // The claims behind Figs 9/10: higher levels are never slower within a
  // series, and each -qarch440d variant beats its plain counterpart on a
  // vectorizable loop (a 440d variant may beat even the *next* plain level,
  // exactly as in the paper's charts).
  auto cycles = [](const char* flags) {
    const auto out = Compiler(OptConfig::parse(flags)).compile(daxpy());
    return cpu::Core::bundle_cycles(out.ops, cpu::CoreParams{});
  };
  EXPECT_GE(cycles("-O -qstrict"), cycles("-O3"));
  EXPECT_GE(cycles("-O3"), cycles("-O4"));
  EXPECT_GE(cycles("-O4"), cycles("-O5"));
  EXPECT_GT(cycles("-O3"), cycles("-O3 -qarch440d"));
  EXPECT_GT(cycles("-O4"), cycles("-O4 -qarch440d"));
  EXPECT_GT(cycles("-O5"), cycles("-O5 -qarch440d"));
  EXPECT_GE(cycles("-O3 -qarch440d"), cycles("-O5 -qarch440d"));
}

class CompileSweep
    : public ::testing::TestWithParam<std::tuple<double, bool, int>> {};

TEST_P(CompileSweep, FlopsAndBytesInvariantUnderAllOptions) {
  const auto [vec, reduction, cfg_idx] = GetParam();
  auto d = daxpy(12345);
  d.vectorizable = vec;
  d.reduction = reduction;
  const auto& cfg = OptConfig::paper_set()[static_cast<std::size_t>(cfg_idx)];
  const auto out = Compiler(cfg).compile(d);
  const auto base = Compiler(OptConfig::parse("-O")).compile(d);
  // Optimization never changes the useful work, only its encoding.
  EXPECT_EQ(out.ops.total_flops(), base.ops.total_flops());
  EXPECT_EQ(out.ops.bytes_loaded(), base.ops.bytes_loaded());
  EXPECT_EQ(out.ops.bytes_stored(), base.ops.bytes_stored());
}

INSTANTIATE_TEST_SUITE_P(
    Space, CompileSweep,
    ::testing::Combine(::testing::Values(0.0, 0.3, 0.7, 1.0),
                       ::testing::Bool(), ::testing::Range(0, 7)));

}  // namespace
}  // namespace bgp::opt
