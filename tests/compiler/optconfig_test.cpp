#include "compiler/optconfig.hpp"

#include <gtest/gtest.h>

namespace bgp::opt {
namespace {

TEST(OptConfig, ParseLevels) {
  EXPECT_EQ(OptConfig::parse("-O").level, OptLevel::kO);
  EXPECT_EQ(OptConfig::parse("-O3").level, OptLevel::kO3);
  EXPECT_EQ(OptConfig::parse("-O4").level, OptLevel::kO4);
  EXPECT_EQ(OptConfig::parse("-O5").level, OptLevel::kO5);
}

TEST(OptConfig, ParseFlags) {
  const auto cfg = OptConfig::parse("-O -qstrict");
  EXPECT_TRUE(cfg.qstrict);
  EXPECT_FALSE(cfg.qarch440d);
  const auto simd = OptConfig::parse("-O5 -qarch440d");
  EXPECT_TRUE(simd.qarch440d);
  EXPECT_TRUE(simd.ipa());
  EXPECT_TRUE(OptConfig::parse("-O4 -qarch=440d").qarch440d);
}

TEST(OptConfig, ImpliedOptions) {
  EXPECT_FALSE(OptConfig::parse("-O3").qhot());
  EXPECT_TRUE(OptConfig::parse("-O4").qhot());
  EXPECT_FALSE(OptConfig::parse("-O4").ipa());
  EXPECT_TRUE(OptConfig::parse("-O5").qhot());
}

TEST(OptConfig, RejectsUnknownOrMissingLevel) {
  EXPECT_THROW((void)OptConfig::parse("-O9"), std::invalid_argument);
  EXPECT_THROW((void)OptConfig::parse("-qarch440d"), std::invalid_argument);
  EXPECT_THROW((void)OptConfig::parse("-O3 -funroll"), std::invalid_argument);
}

TEST(OptConfig, Names) {
  EXPECT_EQ(OptConfig::parse("-O -qstrict").name(), "-O -qstrict");
  EXPECT_EQ(OptConfig::parse("-O5 -qarch440d").name(), "-O5 -qarch440d");
}

TEST(OptConfig, PaperSetOrderAndSize) {
  const auto& set = OptConfig::paper_set();
  ASSERT_EQ(set.size(), 7u);
  EXPECT_EQ(set[0].name(), "-O -qstrict");
  EXPECT_EQ(set[1].name(), "-O3");
  EXPECT_EQ(set[2].name(), "-O3 -qarch440d");
  EXPECT_EQ(set[6].name(), "-O5 -qarch440d");
}

}  // namespace
}  // namespace bgp::opt
