// The shared CLI helpers: duration parsing with mandatory unit suffixes,
// the exact ns -> simulated-cycles conversion, and FlagSet's typed flag
// table (duration flags, repeated flags, error exits).
#include <gtest/gtest.h>

#include "cli.hpp"

namespace bgp::cli {
namespace {

TEST(ParseDuration, AcceptsEveryUnitSuffix) {
  EXPECT_EQ(parse_duration_ns("--t", "425000ns"), 425'000u);
  EXPECT_EQ(parse_duration_ns("--t", "800us"), 800'000u);
  EXPECT_EQ(parse_duration_ns("--t", "250ms"), 250'000'000u);
  EXPECT_EQ(parse_duration_ns("--t", "2s"), 2'000'000'000u);
  EXPECT_EQ(parse_duration_ns("--t", "0ns"), 0u);
}

TEST(ParseDuration, AcceptsFractionsRoundedToWholeNs) {
  EXPECT_EQ(parse_duration_ns("--t", "1.5ms"), 1'500'000u);
  EXPECT_EQ(parse_duration_ns("--t", "0.5us"), 500u);
  EXPECT_EQ(parse_duration_ns("--t", "2.6ns"), 3u);  // rounds, not truncates
}

TEST(ParseDuration, RejectsBareNumbersJunkAndNegatives) {
  EXPECT_THROW((void)parse_duration_ns("--t", "500"), std::invalid_argument);
  EXPECT_THROW((void)parse_duration_ns("--t", "5m"), std::invalid_argument);
  EXPECT_THROW((void)parse_duration_ns("--t", "ms"), std::invalid_argument);
  EXPECT_THROW((void)parse_duration_ns("--t", "-1s"), std::invalid_argument);
  EXPECT_THROW((void)parse_duration_ns("--t", ""), std::invalid_argument);
  EXPECT_THROW((void)parse_duration_ns("--t", "1e12s"),
               std::invalid_argument);  // overflows the ns range
  try {
    (void)parse_duration_ns("--t", "1e12s");
    FAIL();
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("overflows"), std::string::npos)
        << e.what();
  }
  try {
    (void)parse_duration_ns("--snapshot-period", "500");
    FAIL();
  } catch (const std::invalid_argument& e) {
    // The message names the flag and the accepted units.
    EXPECT_NE(std::string(e.what()).find("--snapshot-period"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("ns, us, ms, s"), std::string::npos);
  }
}

TEST(ParseDuration, RejectsValuesPastInt64AndNaN) {
  // 9.3e18 ns fits u64 but not int64: a silent wrap downstream. Rejected.
  EXPECT_THROW((void)parse_duration_ns("--t", "9300000000000000000ns"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_duration_ns("--t", "1.8e19ns"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_duration_ns("--t", "10000000000s"),
               std::invalid_argument);
  // NaN fails every comparison — it must not sneak past the negative check
  // into an undefined float->integer cast.
  EXPECT_THROW((void)parse_duration_ns("--t", "nans"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_duration_ns("--t", "infs"),
               std::invalid_argument);
  // The largest representable duration still parses (~292 years).
  EXPECT_GT(parse_duration_ns("--t", "9000000000000000000ns"), 0u);
}

TEST(DurationToCycles, ExactAt850MHz) {
  // 17 cycles per 20 ns, computed in integers: no floating-point drift.
  EXPECT_EQ(duration_to_cycles(0), 0u);
  EXPECT_EQ(duration_to_cycles(20), 17u);
  EXPECT_EQ(duration_to_cycles(1'000'000'000), 850'000'000u);  // 1 s
  EXPECT_EQ(duration_to_cycles(500'000), 425'000u);            // 500 us
  // A full hour of simulated time stays exact (no u64 overflow en route).
  EXPECT_EQ(duration_to_cycles(u64{3'600} * 1'000'000'000),
            u64{3'060'000'000'000});
}

TEST(FlagSet, DurationAndRepeatedFlags) {
  cycles_t period = 0;
  u64 ns = 0;
  std::vector<std::string> preloads;
  FlagSet fs("t");
  fs.duration_cycles_value("snapshot-period", "DUR", "", &period)
      .duration_ns_value("timeout", "DUR", "", &ns)
      .repeated_value("preload", "JOB", "", &preloads);

  const char* argv[] = {"t", "--snapshot-period=500us", "--timeout=2s",
                        "--preload=a", "--preload=b"};
  EXPECT_EQ(fs.parse(5, const_cast<char**>(argv), 1), std::nullopt);
  EXPECT_EQ(period, 425'000u);
  EXPECT_EQ(ns, 2'000'000'000u);
  EXPECT_EQ(preloads, (std::vector<std::string>{"a", "b"}));
}

TEST(FlagSet, BadDurationValueExitsTwo) {
  cycles_t period = 0;
  FlagSet fs("t");
  fs.duration_cycles_value("snapshot-period", "DUR", "", &period);
  const char* argv[] = {"t", "--snapshot-period=500"};
  EXPECT_EQ(fs.parse(2, const_cast<char**>(argv), 1), std::optional<int>{2});
  const char* unknown[] = {"t", "--frobnicate"};
  EXPECT_EQ(fs.parse(2, const_cast<char**>(unknown), 1),
            std::optional<int>{2});
}

}  // namespace
}  // namespace bgp::cli
