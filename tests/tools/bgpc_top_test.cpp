// bgpc_top against a live daemon: run one session to completion in an
// in-process Daemon, then execute the real bgpc_top binary with --once
// and assert the rendered frame carries the header, the host-latency
// table with non-zero counts, and the session row. This is the "does the
// dashboard actually render from a running daemon" end-to-end check.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>

#include "daemon/daemon.hpp"

#ifndef BGPC_TOP_BINARY
#error "bgpc_top_test needs -DBGPC_TOP_BINARY=\"<path to bgpc_top>\""
#endif

namespace fs = std::filesystem;

namespace bgp::daemon {
namespace {

std::string run_top(const std::string& args, int* exit_code) {
  const std::string cmd = std::string(BGPC_TOP_BINARY) + " " + args + " 2>&1";
  FILE* pipe = ::popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr);
  std::string out;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), pipe)) > 0) out.append(buf, n);
  const int status = ::pclose(pipe);
  *exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return out;
}

TEST(BgpcTop, RendersOneLiveFrameAgainstARunningDaemon) {
  const fs::path dir =
      fs::temp_directory_path() / "bgpc_top_render";
  fs::remove_all(dir);
  fs::create_directories(dir);
  DaemonConfig cfg;
  cfg.service.work_dir = dir;
  Daemon d(cfg);

  // One quick verifiable session so every table has content.
  json::Value req = json::Value::object();
  req.set("cmd", json::Value("submit"));
  req.set("job", json::Value::parse(
                     R"({"session":"top1","bench":"EP","class":"S","nodes":2})"));
  const json::Value resp = control_request(d.socket_path(), req);
  ASSERT_TRUE(resp.get("ok")->as_bool()) << resp.dump();
  json::Value status_req = json::Value::object();
  status_req.set("cmd", json::Value("status"));
  status_req.set("session", json::Value("top1"));
  for (int i = 0;; ++i) {
    ASSERT_LT(i, 60'000) << "session never finished";
    const json::Value st = control_request(d.socket_path(), status_req);
    const std::string state =
        st.get("session")->get("state")->as_string();
    if (state == "finished") break;
    ASSERT_TRUE(state == "queued" || state == "running") << state;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  // Prime the scrape histogram so the dashboard's own poll sees it.
  int code = -1;
  (void)run_top("--port=" + std::to_string(d.http_port()) + " --once",
                &code);
  ASSERT_EQ(code, 0);

  const std::string frame = run_top(
      "--port=" + std::to_string(d.http_port()) + " --once", &code);
  EXPECT_EQ(code, 0) << frame;
  // Header: daemon identity and health.
  EXPECT_NE(frame.find("bgpcd"), std::string::npos) << frame;
  EXPECT_NE(frame.find("— ok —"), std::string::npos) << frame;
  // Host-latency table with real rows.
  EXPECT_NE(frame.find("host latency"), std::string::npos) << frame;
  EXPECT_NE(frame.find("p99"), std::string::npos) << frame;
  EXPECT_NE(frame.find("control_request{dispatch}"), std::string::npos)
      << frame;
  EXPECT_NE(frame.find("journal_append{fsync}"), std::string::npos) << frame;
  EXPECT_NE(frame.find("snapshot_publish"), std::string::npos) << frame;
  EXPECT_NE(frame.find("session_queue_wait"), std::string::npos) << frame;
  EXPECT_NE(frame.find("http_request{/metrics}"), std::string::npos) << frame;
  // The finished session's row.
  EXPECT_NE(frame.find("top1"), std::string::npos) << frame;
  EXPECT_NE(frame.find("finished"), std::string::npos) << frame;

  // Unreachable daemon: a banner and exit 1, not a crash.
  const std::string dead = run_top("--port=1 --once", &code);
  EXPECT_EQ(code, 1);
  EXPECT_NE(dead.find("unreachable"), std::string::npos) << dead;

  d.begin_drain();
  EXPECT_EQ(d.run_until_drained(), 0u);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace bgp::daemon
