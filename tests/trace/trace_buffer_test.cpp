// The bounded ring buffer between the sampler and the trace writer: hard
// capacity, oldest-first eviction with drop accounting, and the static
// memory bound the acceptance criteria pin tracing memory use to.
#include <gtest/gtest.h>

#include "trace/trace_buffer.hpp"

namespace bgp::trace {
namespace {

IntervalRecord rec(u64 index) {
  IntervalRecord r;
  r.index = index;
  r.spanned = 1;
  r.t_begin = index * 100;
  r.t_end = (index + 1) * 100;
  r.values = {index};
  return r;
}

TEST(TraceBuffer, HoldsUpToCapacity) {
  TraceBuffer b(4);
  EXPECT_EQ(b.capacity(), 4u);
  EXPECT_TRUE(b.empty());
  for (u64 i = 0; i < 4; ++i) b.push(rec(i));
  EXPECT_EQ(b.size(), 4u);
  EXPECT_EQ(b.dropped(), 0u);
  EXPECT_EQ(b.total_pushed(), 4u);
  EXPECT_EQ(b.front().index, 0u);
}

TEST(TraceBuffer, EvictsOldestAndCountsDrops) {
  TraceBuffer b(3);
  for (u64 i = 0; i < 10; ++i) b.push(rec(i));
  EXPECT_EQ(b.size(), 3u);       // never exceeds the bound
  EXPECT_EQ(b.dropped(), 7u);    // 0..6 evicted unflushed
  EXPECT_EQ(b.total_pushed(), 10u);
  // The retained window is the newest records, oldest first.
  EXPECT_EQ(b.front().index, 7u);
  b.pop_front();
  EXPECT_EQ(b.front().index, 8u);
  b.pop_front();
  EXPECT_EQ(b.front().index, 9u);
}

TEST(TraceBuffer, DrainingPreventsDrops) {
  TraceBuffer b(2);
  for (u64 i = 0; i < 100; ++i) {
    b.push(rec(i));
    while (!b.empty()) b.pop_front();  // a keeping-up writer
  }
  EXPECT_EQ(b.dropped(), 0u);
  EXPECT_EQ(b.total_pushed(), 100u);
}

TEST(TraceBuffer, MemoryBoundScalesWithCapacityAndEvents) {
  const std::size_t one = TraceBuffer::memory_bound_bytes(1, 16);
  EXPECT_GE(one, sizeof(IntervalRecord) + 16 * sizeof(u64));
  EXPECT_EQ(TraceBuffer::memory_bound_bytes(4096, 16), 4096 * one);
  // The default session configuration stays under a megabyte per node for
  // a 16-event set — the "configured bound" of the acceptance criteria.
  EXPECT_LT(TraceBuffer::memory_bound_bytes(4096, 16), 2u << 20);
}

}  // namespace
}  // namespace bgp::trace
