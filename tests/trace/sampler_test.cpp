// The threshold-driven sampler (tracing tentpole): interrupt pacing on the
// cycle counter, coalescing of multi-boundary increments, the Time-Base
// polled fallback for modes without a cycle counter, and the modeled
// per-sample overhead hand-off to the runtime.
#include <gtest/gtest.h>

#include <stdexcept>

#include "trace/sampler.hpp"

namespace bgp::trace {
namespace {

constexpr isa::EventId kCycle = isa::ev::cycle_count(0);
constexpr isa::EventId kFma = isa::ev::fpu_op(0, isa::FpOp::kFma);
constexpr cycles_t kInterval = 1'000;

SamplerConfig config_for(std::vector<isa::EventId> events) {
  SamplerConfig cfg;
  cfg.interval_cycles = kInterval;
  cfg.events = std::move(events);
  cfg.per_sample_overhead = 64;
  return cfg;
}

TEST(Sampler, RejectsDegenerateConfigs) {
  sys::Node node(0);
  TraceBuffer buf(16);
  SamplerConfig no_events = config_for({});
  EXPECT_THROW(Sampler(node, no_events, buf), std::invalid_argument);
  SamplerConfig zero = config_for({kCycle});
  zero.interval_cycles = 0;
  EXPECT_THROW(Sampler(node, zero, buf), std::invalid_argument);
}

TEST(Sampler, InterruptDrivenSamplesAtEachBoundary) {
  sys::Node node(0);  // mode 0: the cycle counter is in the programmed set
  node.upc().start();
  TraceBuffer buf(16);
  Sampler s(node, config_for({kCycle, kFma}), buf);
  s.arm();
  ASSERT_TRUE(s.armed());
  ASSERT_TRUE(s.interrupt_driven());

  node.upc().signal(kFma, 10);
  node.upc().signal(kCycle, 999);
  EXPECT_TRUE(buf.empty());  // boundary not reached yet

  node.upc().signal(kFma, 5);
  node.upc().signal(kCycle, 501);  // crosses 1000: the interrupt samples
  ASSERT_EQ(buf.size(), 1u);
  const IntervalRecord& r = buf.front();
  EXPECT_EQ(r.index, 0u);
  EXPECT_EQ(r.spanned, 1u);
  EXPECT_EQ(r.t_begin, 0u);
  EXPECT_EQ(r.t_end, kInterval);
  // Deltas cover everything counted up to the interrupt, including the
  // tail of the increment that crossed the boundary.
  EXPECT_EQ(r.values[0], 1500u);
  EXPECT_EQ(r.values[1], 15u);
  EXPECT_EQ(s.samples(), 1u);
  EXPECT_EQ(s.intervals_closed(), 1u);
}

TEST(Sampler, OneLongIncrementCoalescesIntoASpannedRecord) {
  sys::Node node(0);
  node.upc().start();
  TraceBuffer buf(16);
  Sampler s(node, config_for({kCycle, kFma}), buf);
  s.arm();

  node.upc().signal(kFma, 100);
  node.upc().signal(kCycle, 5'300);  // one bundle crosses five boundaries
  ASSERT_EQ(buf.size(), 1u);  // ONE interrupt, ONE coalesced record
  const IntervalRecord& r = buf.front();
  EXPECT_EQ(r.index, 0u);
  EXPECT_EQ(r.spanned, 5u);
  EXPECT_EQ(r.t_begin, 0u);
  EXPECT_EQ(r.t_end, 5 * kInterval);
  EXPECT_EQ(r.values[0], 5'300u);
  EXPECT_EQ(r.values[1], 100u);
  EXPECT_EQ(s.samples(), 1u);
  EXPECT_EQ(s.intervals_closed(), 5u);

  // The threshold re-armed at the NEXT boundary, not the missed ones: the
  // next crossing yields index 5.
  node.upc().signal(kCycle, 700);  // 6000: crosses the re-armed threshold
  ASSERT_EQ(buf.size(), 2u);
  buf.pop_front();
  EXPECT_EQ(buf.front().index, 5u);
  EXPECT_EQ(buf.front().spanned, 1u);
}

TEST(Sampler, TimebasePolledFallbackForModesWithoutACycleCounter) {
  sys::Node node(0);
  node.upc().set_mode(1);  // memory events: no per-core cycle counter
  node.upc().start();
  TraceBuffer buf(16);
  constexpr isa::EventId kL3 = isa::ev::l3(isa::L3Event::kReadAccess);
  Sampler s(node, config_for({kL3}), buf);
  s.arm();
  ASSERT_FALSE(s.interrupt_driven());

  node.upc().signal(kL3, 40);
  EXPECT_EQ(s.poll(), 0u);  // Time Base has not moved: nothing due

  node.core(0).advance(2'500);  // Time Base = max core clock
  node.upc().signal(kL3, 2);
  ASSERT_EQ(s.poll(), 1u);
  ASSERT_EQ(buf.size(), 1u);
  const IntervalRecord& r = buf.front();
  EXPECT_EQ(r.index, 0u);
  EXPECT_EQ(r.spanned, 2u);  // polling late coalesces, same as interrupts
  EXPECT_EQ(r.values[0], 42u);
}

TEST(Sampler, PollIsIdleWhileTheUnitIsStopped) {
  sys::Node node(0);
  node.upc().set_mode(1);
  TraceBuffer buf(16);
  Sampler s(node, config_for({isa::ev::l3(isa::L3Event::kReadAccess)}), buf);
  s.arm();
  node.core(0).advance(5'000);
  EXPECT_EQ(s.poll(), 0u);  // counters are not running: nothing to sample
  EXPECT_TRUE(buf.empty());
}

TEST(Sampler, DisarmTakesAFinalSampleAndDropsThePartialTail) {
  sys::Node node(0);
  node.upc().start();
  TraceBuffer buf(16);
  Sampler s(node, config_for({kCycle}), buf);
  s.arm();
  node.upc().signal(kCycle, 2'400);  // 2 boundaries + a 400-cycle tail
  ASSERT_EQ(buf.size(), 1u);
  s.disarm();
  EXPECT_FALSE(s.armed());
  // The tail past the last boundary is discarded, not emitted as a record.
  EXPECT_EQ(buf.size(), 1u);
  EXPECT_EQ(s.intervals_closed(), 2u);
  // Disarm also disarms the hardware threshold: further counting is silent.
  node.upc().signal(kCycle, 10'000);
  EXPECT_EQ(buf.size(), 1u);
}

TEST(Sampler, ArmIsIdempotentAndOverheadIsHandedOffOnce) {
  sys::Node node(0);
  node.upc().start();
  TraceBuffer buf(16);
  Sampler s(node, config_for({kCycle}), buf);
  s.arm();
  s.arm();  // no double listener, no baseline reset

  node.upc().signal(kCycle, 1'000);
  EXPECT_EQ(s.samples(), 1u);
  EXPECT_EQ(s.overhead_cycles(), 64u);
  EXPECT_EQ(s.take_pending_overhead(), 64u);
  EXPECT_EQ(s.take_pending_overhead(), 0u);  // drained

  node.upc().signal(kCycle, 2'000);
  EXPECT_EQ(s.samples(), 2u);
  EXPECT_EQ(s.overhead_cycles(), 128u);  // lifetime total keeps growing
  EXPECT_EQ(s.take_pending_overhead(), 64u);
}

}  // namespace
}  // namespace bgp::trace
