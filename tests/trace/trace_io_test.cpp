// The sectioned BGPT trace format: header/chunk/footer round-trips, the
// partial → sealed rename protocol, clean truncation of crashed traces
// (complete chunks survive, torn tails are discarded) and CRC rejection of
// silent corruption.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "common/binio.hpp"
#include "trace/trace_io.hpp"

namespace bgp::trace {
namespace {

namespace fs = std::filesystem;

TraceMeta test_meta() {
  TraceMeta m;
  m.node_id = 7;
  m.card_id = 3;
  m.counter_mode = 0;
  m.app_name = "iotest";
  m.interval_cycles = 4'000;
  m.pacer_event = isa::ev::cycle_count(0);
  m.events = {isa::ev::cycle_count(0), isa::ev::instr_completed(0),
              isa::ev::fpu_op(0, isa::FpOp::kFma)};
  return m;
}

IntervalRecord rec(u64 index, u32 spanned = 1) {
  IntervalRecord r;
  r.index = index;
  r.spanned = spanned;
  r.t_begin = index * 4'000;
  r.t_end = (index + spanned) * 4'000;
  r.values = {4'000 * spanned, 2'000 * spanned, index};
  return r;
}

class TraceIo : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test: ctest -j runs fixture tests concurrently.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::temp_directory_path() /
           (std::string("bgpc_trace_io_") + info->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

TEST_F(TraceIo, SealedRoundTripPreservesEverything) {
  const fs::path base = dir_ / "iotest.node0007";
  TraceTotals totals;
  totals.intervals = 150;
  totals.dropped = 3;
  totals.samples = 150;
  totals.overhead_cycles = 150 * 64;
  {
    TraceWriter w(base, test_meta());
    EXPECT_TRUE(fs::exists(w.partial_path()));
    for (u64 i = 0; i < 150; ++i) w.append(rec(i));
    const fs::path sealed = w.finalize(totals);
    EXPECT_EQ(sealed, base.string() + kTraceSuffix);
    EXPECT_TRUE(w.finalized());
    EXPECT_EQ(w.intervals_written(), 150u);
  }
  // The rename is atomic: no partial left behind.
  EXPECT_FALSE(fs::exists(base.string() + kPartialSuffix));

  TraceReader r(base.string() + kTraceSuffix);
  EXPECT_EQ(r.meta().node_id, 7u);
  EXPECT_EQ(r.meta().card_id, 3u);
  EXPECT_EQ(r.meta().app_name, "iotest");
  EXPECT_EQ(r.meta().interval_cycles, 4'000u);
  EXPECT_EQ(r.meta().pacer_event, isa::ev::cycle_count(0));
  ASSERT_EQ(r.meta().events, test_meta().events);
  for (u64 i = 0; i < 150; ++i) {
    auto got = r.next();
    ASSERT_TRUE(got.has_value()) << "record " << i;
    EXPECT_EQ(got->index, i);
    EXPECT_EQ(got->values, rec(i).values);
  }
  EXPECT_FALSE(r.next().has_value());
  ASSERT_TRUE(r.sealed());
  EXPECT_FALSE(r.truncated());
  EXPECT_EQ(r.totals()->intervals, 150u);
  EXPECT_EQ(r.totals()->dropped, 3u);
  EXPECT_EQ(r.totals()->overhead_cycles, 150u * 64u);
}

TEST_F(TraceIo, SpannedRecordsRoundTrip) {
  const fs::path base = dir_ / "iotest.node0007";
  {
    TraceWriter w(base, test_meta());
    w.append(rec(0, 4));
    w.append(rec(4, 1));
    w.finalize({});
  }
  TraceReader r(base.string() + kTraceSuffix);
  auto a = r.next();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->spanned, 4u);
  EXPECT_EQ(a->t_end, 4u * 4'000u);
  auto b = r.next();
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->index, 4u);
}

TEST_F(TraceIo, CrashedPartialKeepsCompleteChunks) {
  const fs::path base = dir_ / "iotest.node0007";
  const fs::path partial = base.string() + kPartialSuffix;
  {
    // 100 records with 32-record chunks: 3 committed chunks (96 records)
    // and 4 still buffered when the "node dies" (writer destroyed without
    // finalize — the destructor flushes what it has but writes no footer).
    TraceWriter w(base, test_meta(), 32);
    for (u64 i = 0; i < 100; ++i) w.append(rec(i));
  }
  ASSERT_TRUE(fs::exists(partial));

  TraceReader r(partial);
  u64 count = 0;
  while (r.next().has_value()) ++count;
  EXPECT_EQ(count, 100u);  // the destructor's final flush committed the tail
  EXPECT_TRUE(r.truncated());  // ...but there is no footer
  EXPECT_FALSE(r.sealed());
}

TEST_F(TraceIo, HeaderAloneIsAParseablePartial) {
  // A node can die before its first chunk commits; the header is flushed
  // eagerly so even that trace establishes its identity.
  const fs::path base = dir_ / "iotest.node0007";
  TraceWriter w(base, test_meta());
  TraceReader r(w.partial_path());
  EXPECT_EQ(r.meta().node_id, 7u);
  EXPECT_FALSE(r.next().has_value());
  EXPECT_TRUE(r.truncated());
}

TEST_F(TraceIo, TornTailIsDiscardedCleanly) {
  const fs::path base = dir_ / "iotest.node0007";
  const fs::path sealed = base.string() + kTraceSuffix;
  {
    TraceWriter w(base, test_meta(), 16);
    for (u64 i = 0; i < 48; ++i) w.append(rec(i));
    w.finalize({});
  }
  // Tear the file mid-way through the last chunk (simulates a crash while
  // the OS was flushing): the two complete chunks must still parse.
  fs::resize_file(sealed, fs::file_size(sealed) - 200);
  TraceReader r(sealed);
  u64 count = 0;
  while (r.next().has_value()) ++count;
  EXPECT_EQ(count, 32u);
  EXPECT_TRUE(r.truncated());
  EXPECT_FALSE(r.sealed());
}

TEST_F(TraceIo, CorruptChunkFailsItsCrc) {
  const fs::path base = dir_ / "iotest.node0007";
  const fs::path sealed = base.string() + kTraceSuffix;
  {
    TraceWriter w(base, test_meta(), 16);
    for (u64 i = 0; i < 16; ++i) w.append(rec(i));
    w.finalize({});
  }
  // Flip one byte inside the chunk payload (well past the header).
  const auto size = fs::file_size(sealed);
  std::fstream f(sealed, std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(static_cast<std::streamoff>(size / 2));
  char b = 0;
  f.seekg(static_cast<std::streamoff>(size / 2));
  f.read(&b, 1);
  b = static_cast<char>(b ^ 0x40);
  f.seekp(static_cast<std::streamoff>(size / 2));
  f.write(&b, 1);
  f.close();

  TraceReader r(sealed);  // header is intact
  EXPECT_THROW(
      {
        while (r.next().has_value()) {
        }
      },
      BinIoError);
}

TEST_F(TraceIo, CorruptHeaderIsRejectedAtOpen) {
  const fs::path base = dir_ / "iotest.node0007";
  const fs::path sealed = base.string() + kTraceSuffix;
  {
    TraceWriter w(base, test_meta());
    w.append(rec(0));
    w.finalize({});
  }
  std::fstream f(sealed, std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(12);  // inside the CRC-covered header region
  const char junk = 0x5A;
  f.write(&junk, 1);
  f.close();
  EXPECT_THROW(TraceReader{sealed}, BinIoError);
}

TEST_F(TraceIo, NotATraceIsRejected) {
  const fs::path bogus = dir_ / "bogus.bgpt";
  std::ofstream(bogus) << "definitely not a trace";
  EXPECT_THROW(TraceReader{bogus}, BinIoError);
}

TEST_F(TraceIo, AppendAfterFinalizeThrows) {
  const fs::path base = dir_ / "iotest.node0007";
  TraceWriter w(base, test_meta());
  w.append(rec(0));
  w.finalize({});
  EXPECT_THROW(w.append(rec(1)), BinIoError);
}

TEST_F(TraceIo, MismatchedValueCountIsRejected) {
  const fs::path base = dir_ / "iotest.node0007";
  TraceWriter w(base, test_meta(), 1);  // chunk of 1: append flushes
  IntervalRecord bad = rec(0);
  bad.values.pop_back();
  EXPECT_THROW(w.append(bad), BinIoError);
}

}  // namespace
}  // namespace bgp::trace
