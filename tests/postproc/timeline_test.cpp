// Timeline mining over synthetic traces: the streaming merge (including
// the span-consumption cursor a coalesced record must not livelock),
// span proration, phase change-point detection, coverage/degraded-mode
// annotations and the CSV renderings.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "common/strfmt.hpp"
#include "postproc/timeline.hpp"

namespace bgp::post {
namespace {

namespace fs = std::filesystem;

constexpr cycles_t kInterval = 4'000;
constexpr isa::EventId kFma = isa::ev::fpu_op(0, isa::FpOp::kFma);
constexpr isa::EventId kInstr = isa::ev::instr_completed(0);

trace::TraceMeta meta_for(unsigned node, cycles_t interval = kInterval) {
  trace::TraceMeta m;
  m.node_id = node;
  m.card_id = node / 2;
  m.counter_mode = 0;
  m.app_name = "tl";
  m.interval_cycles = interval;
  m.pacer_event = isa::ev::cycle_count(0);
  m.events = {kFma, kInstr};
  return m;
}

trace::IntervalRecord rec(u64 index, u32 spanned, u64 fma, u64 instr) {
  trace::IntervalRecord r;
  r.index = index;
  r.spanned = spanned;
  r.t_begin = index * kInterval;
  r.t_end = (index + spanned) * kInterval;
  r.values = {fma, instr};
  return r;
}

class Timeline : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test: ctest -j runs fixture tests concurrently.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::temp_directory_path() /
           (std::string("bgpc_timeline_") + info->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path base(unsigned node) const {
    return dir_ / strfmt("tl.node%04u", node);
  }

  /// Write one node's trace; seal == false leaves a dead-node .partial.
  void write_trace(unsigned node,
                   const std::vector<trace::IntervalRecord>& records,
                   bool seal = true, cycles_t interval = kInterval) {
    trace::TraceWriter w(base(node), meta_for(node, interval));
    for (const auto& r : records) w.append(r);
    if (seal) {
      trace::TraceTotals t;
      t.intervals = records.size();
      t.samples = records.size();
      t.overhead_cycles = records.size() * 64;
      w.finalize(t);
    }
  }

  fs::path dir_;
};

// Regression: a record spanning several intervals must advance the merge
// cursor through its span. An earlier version pinned the global minimum at
// the record's first index forever — any multi-span trace hung the miner.
TEST_F(Timeline, CoalescedRecordTerminatesAndProrates) {
  write_trace(0, {rec(0, 4, 400, 800)});
  const TimelineReport rep = mine_timeline(dir_, "tl");
  ASSERT_TRUE(rep.ok);
  ASSERT_EQ(rep.intervals.size(), 4u);
  for (u64 i = 0; i < 4; ++i) {
    const IntervalMetrics& m = rep.intervals[i];
    EXPECT_EQ(m.index, i);
    EXPECT_EQ(m.nodes, 1u);
    // 400 FMAs over 4 intervals → 100 per interval → 200 flops each.
    EXPECT_DOUBLE_EQ(m.flops, 200.0);
    EXPECT_DOUBLE_EQ(m.instructions, 200.0);
    EXPECT_DOUBLE_EQ(m.fp_fraction, 0.5);
    EXPECT_GT(m.mflops, 0.0);
  }
}

TEST_F(Timeline, MergesNodesWithDifferentRecordGranularity) {
  // Node 0 sampled every boundary; node 1 coalesced the same range into
  // one spanned record. Each interval must see BOTH nodes, with node 1's
  // deltas prorated to match.
  write_trace(0, {rec(0, 1, 100, 200), rec(1, 1, 100, 200),
                  rec(2, 1, 100, 200)});
  write_trace(1, {rec(0, 3, 300, 600)});
  const TimelineReport rep = mine_timeline(dir_, "tl");
  ASSERT_TRUE(rep.ok);
  ASSERT_EQ(rep.intervals.size(), 3u);
  for (const IntervalMetrics& m : rep.intervals) {
    EXPECT_EQ(m.nodes, 2u);
    EXPECT_DOUBLE_EQ(m.flops, 400.0);  // (100 + 100) FMAs × 2 flops
    EXPECT_DOUBLE_EQ(m.instructions, 400.0);
  }
}

TEST_F(Timeline, SparseTracesLeaveGapsNotLivelocks) {
  // A trace whose records skip indexes (idle node between bursts).
  write_trace(0, {rec(0, 1, 100, 200), rec(5, 1, 100, 200)});
  const TimelineReport rep = mine_timeline(dir_, "tl");
  ASSERT_TRUE(rep.ok);
  ASSERT_EQ(rep.intervals.size(), 2u);
  EXPECT_EQ(rep.intervals[0].index, 0u);
  EXPECT_EQ(rep.intervals[1].index, 5u);
}

TEST_F(Timeline, DetectsAPhaseChange) {
  // 6 hot intervals then 6 cold ones: one clean change point.
  std::vector<trace::IntervalRecord> rs;
  for (u64 i = 0; i < 6; ++i) rs.push_back(rec(i, 1, 900, 1'000));
  for (u64 i = 6; i < 12; ++i) rs.push_back(rec(i, 1, 10, 1'000));
  write_trace(0, rs);
  const TimelineReport rep = mine_timeline(dir_, "tl");
  ASSERT_TRUE(rep.ok);
  ASSERT_EQ(rep.phases.size(), 2u);
  EXPECT_EQ(rep.phases[0].first_interval, 0u);
  EXPECT_EQ(rep.phases[0].last_interval, 5u);
  EXPECT_EQ(rep.phases[1].first_interval, 6u);
  EXPECT_EQ(rep.phases[1].last_interval, 11u);
  EXPECT_GT(rep.phases[0].mflops, rep.phases[1].mflops);
  EXPECT_NEAR(rep.phases[0].fp_fraction, 0.9, 1e-9);
  EXPECT_NEAR(rep.phases[1].fp_fraction, 0.01, 1e-9);
}

TEST_F(Timeline, SingleIntervalSpikeIsFoldedIntoThePhase) {
  // A one-interval excursion shorter than min_phase_intervals must not
  // fragment the timeline, even though its distance from the running mean
  // is well above the change threshold when it happens.
  std::vector<trace::IntervalRecord> rs;
  for (u64 i = 0; i < 8; ++i) {
    rs.push_back(i == 2 ? rec(i, 1, 450, 1'000) : rec(i, 1, 900, 1'000));
  }
  write_trace(0, rs);
  const TimelineReport rep = mine_timeline(dir_, "tl");
  ASSERT_TRUE(rep.ok);
  EXPECT_EQ(rep.phases.size(), 1u);
}

TEST_F(Timeline, TruncatedPartialFromADeadNodeIsAnnotated) {
  write_trace(0, {rec(0, 1, 100, 200), rec(1, 1, 100, 200)});
  write_trace(1, {rec(0, 1, 100, 200)}, /*seal=*/false);
  const TimelineReport rep = mine_timeline(dir_, "tl");
  ASSERT_TRUE(rep.ok);
  EXPECT_EQ(rep.coverage.loaded, 2u);
  EXPECT_EQ(rep.coverage.mined, 2u);
  ASSERT_EQ(rep.truncated_nodes.size(), 1u);
  EXPECT_EQ(rep.truncated_nodes[0], 1u);
  // Footer-derived totals come only from the sealed trace.
  EXPECT_EQ(rep.overhead_cycles, 2u * 64u);
  // Excluding partials drops the dead node entirely.
  TimelineOptions no_partial;
  no_partial.include_partial = false;
  const TimelineReport strict = mine_timeline(dir_, "tl", no_partial);
  EXPECT_EQ(strict.coverage.loaded, 1u);
  EXPECT_TRUE(strict.truncated_nodes.empty());
}

TEST_F(Timeline, ExpectedNodesDrivesCoverage) {
  write_trace(0, {rec(0, 1, 100, 200)});
  write_trace(1, {rec(0, 1, 100, 200)});
  TimelineOptions opts;
  opts.expected_nodes = 4;
  const TimelineReport rep = mine_timeline(dir_, "tl", opts);
  EXPECT_TRUE(rep.ok);
  EXPECT_EQ(rep.coverage.expected, 4u);
  EXPECT_EQ(rep.coverage.loaded, 2u);
  // Without an explicit expectation it is inferred from the node ids seen.
  const TimelineReport inferred = mine_timeline(dir_, "tl");
  EXPECT_EQ(inferred.coverage.expected, 2u);
}

TEST_F(Timeline, GeometryMismatchSkipsTheOddTraceOut) {
  write_trace(0, {rec(0, 1, 100, 200)});
  write_trace(1, {rec(0, 1, 100, 200)}, /*seal=*/true, /*interval=*/8'000);
  const TimelineReport rep = mine_timeline(dir_, "tl");
  EXPECT_TRUE(rep.ok);  // the batch survives without the misfit
  EXPECT_EQ(rep.coverage.loaded, 1u);
  ASSERT_EQ(rep.problems.size(), 1u);
  EXPECT_NE(rep.problems[0].find("interval geometry mismatch"),
            std::string::npos);
}

TEST_F(Timeline, UnreadableTraceIsReportedNotFatal) {
  write_trace(0, {rec(0, 1, 100, 200)});
  std::ofstream(dir_ / "tl.node0001.bgpt") << "garbage";
  const TimelineReport rep = mine_timeline(dir_, "tl");
  EXPECT_TRUE(rep.ok);
  EXPECT_EQ(rep.coverage.loaded, 1u);
  ASSERT_EQ(rep.problems.size(), 1u);
}

TEST_F(Timeline, EmptyDirectoryIsNotOk) {
  const TimelineReport rep = mine_timeline(dir_, "tl");
  EXPECT_FALSE(rep.ok);
  EXPECT_TRUE(rep.intervals.empty());
}

TEST_F(Timeline, ListTraceFilesFiltersByAppAndPartial) {
  write_trace(0, {rec(0, 1, 1, 2)});
  write_trace(1, {rec(0, 1, 1, 2)}, /*seal=*/false);
  std::ofstream(dir_ / "other.node0000.bgpt") << "x";
  std::ofstream(dir_ / "unrelated.txt") << "x";
  EXPECT_EQ(list_trace_files(dir_, "tl").size(), 2u);
  EXPECT_EQ(list_trace_files(dir_, "tl", /*include_partial=*/false).size(),
            1u);
  EXPECT_EQ(list_trace_files(dir_, "").size(), 3u);  // any app, any state
  EXPECT_THROW(list_trace_files(dir_ / "missing", "tl"), BinIoError);
}

TEST_F(Timeline, CsvAndRenderCarryTheTimeline) {
  write_trace(0, {rec(0, 1, 100, 200), rec(1, 1, 100, 200),
                  rec(2, 1, 100, 200), rec(3, 1, 100, 200)});
  const TimelineReport rep = mine_timeline(dir_, "tl");
  ASSERT_TRUE(rep.ok);
  const std::string iv = interval_csv(rep);
  EXPECT_NE(iv.find("interval,t_begin_cycles"), std::string::npos);
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(iv.begin(), iv.end(), '\n')),
            1 + rep.intervals.size());
  const std::string ph = phase_csv(rep);
  EXPECT_NE(ph.find("phase,first_interval"), std::string::npos);
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(ph.begin(), ph.end(), '\n')),
            1 + rep.phases.size());
  const std::string text = render_timeline(rep);
  EXPECT_NE(text.find("coverage:"), std::string::npos);
  EXPECT_NE(text.find("phase  0"), std::string::npos);
}

}  // namespace
}  // namespace bgp::post
