#include <gtest/gtest.h>

#include <filesystem>

#include "core/capi.hpp"
#include "core/session.hpp"
#include "postproc/loader.hpp"
#include "postproc/report.hpp"
#include "postproc/sanity.hpp"

namespace bgp::post {
namespace {

using pc::NodeDump;
using pc::SetDump;

/// Hand-built dumps: two nodes in mode 0 (per-core events), two in mode 1
/// (memory events).
std::vector<NodeDump> synthetic_dumps() {
  std::vector<NodeDump> dumps;
  for (u32 node = 0; node < 4; ++node) {
    NodeDump d;
    d.node_id = node;
    d.card_id = node / 2;
    d.counter_mode = (node / 2) % 2;
    d.app_name = "synth";
    SetDump s;
    s.set_id = 0;
    s.pairs = 1;
    s.first_start_cycle = 1000;
    s.last_stop_cycle = 101000;  // 100k cycle window
    if (d.counter_mode == 0) {
      for (unsigned core = 0; core < 4; ++core) {
        s.deltas[isa::event_counter(isa::ev::fpu_op(core, isa::FpOp::kFma))] =
            1000;
        s.deltas[isa::event_counter(
            isa::ev::fpu_op(core, isa::FpOp::kSimdFma))] = 500;
        s.deltas[isa::event_counter(isa::ev::cycle_count(core))] =
            100000 + core;  // core 3 is the slowest
      }
    } else {
      s.deltas[isa::event_counter(
          isa::ev::ddr(0, isa::DdrEvent::kBytesRead16B))] = 1000;
      s.deltas[isa::event_counter(
          isa::ev::ddr(1, isa::DdrEvent::kBytesWritten16B))] = 500;
      s.deltas[isa::event_counter(isa::ev::l3(isa::L3Event::kReadAccess))] =
          10000;
      s.deltas[isa::event_counter(isa::ev::l3(isa::L3Event::kReadMiss))] =
          1000;
    }
    d.sets.push_back(s);
    dumps.push_back(d);
  }
  return dumps;
}

TEST(Sanity, CleanDumpsPass) {
  const auto rep = check(synthetic_dumps());
  EXPECT_TRUE(rep.ok()) << (rep.problems.empty() ? "" : rep.problems[0].text);
}

TEST(Sanity, DetectsProblems) {
  auto dumps = synthetic_dumps();
  dumps[1].node_id = 0;  // duplicate
  EXPECT_FALSE(check(dumps).ok());

  dumps = synthetic_dumps();
  dumps[2].sets[0].pairs = 0;
  EXPECT_FALSE(check(dumps).ok());

  dumps = synthetic_dumps();
  dumps[0].sets[0].deltas[7] = u64{1} << 61;
  EXPECT_FALSE(check(dumps).ok());

  dumps = synthetic_dumps();
  dumps[3].app_name = "other";
  EXPECT_FALSE(check(dumps).ok());

  dumps = synthetic_dumps();
  dumps[1].sets[0].last_stop_cycle = 0;
  EXPECT_FALSE(check(dumps).ok());

  EXPECT_FALSE(check({}).ok());
}

TEST(Aggregate, MergesEvenAndOddCardViews) {
  const Aggregate agg(synthetic_dumps(), 0);
  // FPU events: 2 mode-0 nodes report.
  const auto fma = isa::ev::fpu_op(0, isa::FpOp::kFma);
  EXPECT_EQ(agg.nodes_reporting(fma), 2u);
  EXPECT_DOUBLE_EQ(agg.mean(fma), 1000.0);
  // Memory events: the other 2 nodes.
  const auto l3 = isa::ev::l3(isa::L3Event::kReadAccess);
  EXPECT_EQ(agg.nodes_reporting(l3), 2u);
  EXPECT_DOUBLE_EQ(agg.mean(l3), 10000.0);
  EXPECT_EQ(agg.dumps_in_mode(0).size(), 2u);
  EXPECT_EQ(agg.dumps_in_mode(1).size(), 2u);
}

TEST(Metrics, FpProfile) {
  const Aggregate agg(synthetic_dumps(), 0);
  const FpProfile p = fp_profile(agg);
  // Per node: 4 cores * 1000 FMA + 4 * 500 SIMD FMA.
  EXPECT_DOUBLE_EQ(p.counts[static_cast<int>(isa::FpOp::kFma)], 4000.0);
  EXPECT_DOUBLE_EQ(p.counts[static_cast<int>(isa::FpOp::kSimdFma)], 2000.0);
  EXPECT_DOUBLE_EQ(p.total(), 6000.0);
  EXPECT_DOUBLE_EQ(p.fraction(isa::FpOp::kFma), 4000.0 / 6000.0);
  // flops: 4000*2 + 2000*4.
  EXPECT_DOUBLE_EQ(p.flops(), 16000.0);
  EXPECT_DOUBLE_EQ(p.simd_instructions(), 2000.0);
}

TEST(Metrics, ExecCyclesUsesSlowestCore) {
  const Aggregate agg(synthetic_dumps(), 0);
  EXPECT_DOUBLE_EQ(mean_exec_cycles(agg), 100003.0);
}

TEST(Metrics, MflopsConversion) {
  const Aggregate agg(synthetic_dumps(), 0);
  const double expected =
      16000.0 / (100003.0 / kCoreClockHz) / 1e6;
  EXPECT_NEAR(mean_mflops_per_node(agg), expected, 1e-9);
}

TEST(Metrics, DdrTrafficAndBandwidth) {
  const Aggregate agg(synthetic_dumps(), 0);
  EXPECT_DOUBLE_EQ(mean_ddr_traffic_bytes(agg), 1500.0 * 16.0);
  EXPECT_DOUBLE_EQ(mean_ddr_bandwidth(agg), 1500.0 * 16.0 / 100000.0);
}

TEST(Metrics, L3MissRatio) {
  const Aggregate agg(synthetic_dumps(), 0);
  EXPECT_DOUBLE_EQ(l3_read_miss_ratio(agg), 0.1);
}

TEST(Report, MetricsCsvHasOneRowPerApp) {
  const Aggregate agg(synthetic_dumps(), 0);
  CsvWriter csv;
  write_metrics_csv(csv, {make_record("synth", agg)});
  EXPECT_EQ(csv.rows(), 2u);  // header + 1 record
  EXPECT_NE(csv.text().find("synth"), std::string::npos);
  EXPECT_NE(csv.text().find("fp_simd_fma"), std::string::npos);
}

TEST(Report, CounterStatsCsvListsMonitoredEvents) {
  const Aggregate agg(synthetic_dumps(), 0);
  CsvWriter csv;
  write_counter_stats_csv(csv, agg);
  EXPECT_NE(csv.text().find("CORE0_fp_fma"), std::string::npos);
  EXPECT_NE(csv.text().find("DDR0_BYTES_READ_16B"), std::string::npos);
  EXPECT_GT(csv.rows(), 10u);
}

TEST(Report, FullCsvHasPerNodeRows) {
  CsvWriter csv;
  write_full_csv(csv, synthetic_dumps(), 0);
  // 4 nodes, each with its non-zero counters listed individually.
  EXPECT_NE(csv.text().find("CORE3_CYCLE_COUNT"), std::string::npos);
  EXPECT_NE(csv.text().find("L3_READ_MISS"), std::string::npos);
}

TEST(EndToEnd, InstrumentedRunThroughDumpFilesToMetrics) {
  const auto dir =
      std::filesystem::temp_directory_path() / "bgpc_postproc_e2e";
  std::filesystem::create_directories(dir);

  rt::MachineConfig mc;
  mc.num_nodes = 4;
  mc.mode = sys::OpMode::kVnm;
  rt::Machine m(mc);
  pc::Options opts;
  opts.app_name = "e2e";
  opts.dump_dir = dir;
  pc::Session session(m, opts);
  session.link_with_mpi();

  m.run([&](rt::RankCtx& ctx) {
    ctx.mpi_init();
    isa::LoopDesc d;
    d.name = "axpy";
    d.trip = 2000;
    d.body.fp_at(isa::FpOp::kFma) = 1;
    d.body.ls_at(isa::LsOp::kLoadDouble) = 2;
    d.vectorizable = 1.0;
    auto x = ctx.alloc<double>(4096);
    ctx.loop(d, {rt::MemRange{x.addr(), x.bytes(), false}});
    ctx.mpi_finalize();
  });

  const auto dumps = load_dumps(dir, "e2e");
  ASSERT_EQ(dumps.size(), 4u);
  EXPECT_TRUE(check(dumps).ok());

  const Aggregate agg(dumps, 0);
  const auto rec = make_record("e2e", agg);
  // Default opt is -O5 -qarch440d and the loop is fully vectorizable:
  // the mix must be SIMD FMA dominated.
  EXPECT_GT(rec.fp.counts[static_cast<int>(isa::FpOp::kSimdFma)], 0.0);
  EXPECT_EQ(rec.fp.counts[static_cast<int>(isa::FpOp::kFma)], 0.0);
  EXPECT_GT(rec.mflops_per_node, 0.0);
  EXPECT_GT(rec.exec_cycles, 0.0);
  // Mode-1 nodes saw the DDR traffic of the cold array walk.
  EXPECT_GT(rec.ddr_traffic_bytes, 0.0);

  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace bgp::post
