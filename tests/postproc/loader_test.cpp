// Robustness of the dump-file loader against real directory contents:
// junk files, other applications' dumps, unsorted node numbering.
#include "postproc/loader.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "common/binio.hpp"
#include "common/strfmt.hpp"
#include "core/node_monitor.hpp"

namespace bgp::post {
namespace {

namespace fs = std::filesystem;

class LoaderDir : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "bgpc_loader_test";
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  void write_dump(const std::string& app, u32 node) {
    pc::NodeDump d;
    d.node_id = node;
    d.card_id = node / 2;
    d.counter_mode = node % 2;
    d.app_name = app;
    pc::SetDump s;
    s.set_id = 0;
    s.pairs = 1;
    s.last_stop_cycle = 100;
    d.sets.push_back(s);
    const auto bytes = pc::NodeMonitor::serialize(d);
    std::ofstream out(dir_ / strfmt("%s.node%04u.bgpc", app.c_str(), node),
                      std::ios::binary);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }

  fs::path dir_;
};

TEST_F(LoaderDir, LoadsOnlyMatchingAppAndSortsByNode) {
  write_dump("FT", 3);
  write_dump("FT", 0);
  write_dump("FT", 12);
  write_dump("CG", 1);  // other app: ignored
  std::ofstream(dir_ / "notes.txt") << "junk";
  std::ofstream(dir_ / "FT.node0003.bgpc.bak") << "junk";

  const auto dumps = load_dumps(dir_, "FT");
  ASSERT_EQ(dumps.size(), 3u);
  EXPECT_EQ(dumps[0].node_id, 0u);
  EXPECT_EQ(dumps[1].node_id, 3u);
  EXPECT_EQ(dumps[2].node_id, 12u);
  for (const auto& d : dumps) EXPECT_EQ(d.app_name, "FT");
}

TEST_F(LoaderDir, EmptyDirectoryGivesEmptyVector) {
  EXPECT_TRUE(load_dumps(dir_, "FT").empty());
}

TEST_F(LoaderDir, CorruptFileThrows) {
  std::ofstream(dir_ / "FT.node0000.bgpc") << "this is not a dump";
  EXPECT_THROW((void)load_dumps(dir_, "FT"), BinIoError);
}

TEST_F(LoaderDir, ExplicitFileListRoundTrip) {
  write_dump("IS", 5);
  const auto dumps =
      load_dumps(std::vector<fs::path>{dir_ / "IS.node0005.bgpc"});
  ASSERT_EQ(dumps.size(), 1u);
  EXPECT_EQ(dumps[0].node_id, 5u);
  EXPECT_EQ(dumps[0].counter_mode, 1u);
}

TEST_F(LoaderDir, MissingExplicitFileThrows) {
  EXPECT_THROW((void)load_dumps(std::vector<fs::path>{dir_ / "nope.bgpc"}),
               BinIoError);
}

}  // namespace
}  // namespace bgp::post
