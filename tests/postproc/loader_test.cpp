// Robustness of the dump-file loader against real directory contents:
// junk files, other applications' dumps, unsorted node numbering.
#include "postproc/loader.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "common/binio.hpp"
#include "common/strfmt.hpp"
#include "core/node_monitor.hpp"

namespace bgp::post {
namespace {

namespace fs = std::filesystem;

class LoaderDir : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test: ctest -j runs fixture tests concurrently.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::temp_directory_path() /
           (std::string("bgpc_loader_") + info->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  void write_dump(const std::string& app, u32 node) {
    pc::NodeDump d;
    d.node_id = node;
    d.card_id = node / 2;
    d.counter_mode = node % 2;
    d.app_name = app;
    pc::SetDump s;
    s.set_id = 0;
    s.pairs = 1;
    s.last_stop_cycle = 100;
    d.sets.push_back(s);
    const auto bytes = pc::NodeMonitor::serialize(d);
    std::ofstream out(dir_ / strfmt("%s.node%04u.bgpc", app.c_str(), node),
                      std::ios::binary);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }

  fs::path dir_;
};

TEST_F(LoaderDir, LoadsOnlyMatchingAppAndSortsByNode) {
  write_dump("FT", 3);
  write_dump("FT", 0);
  write_dump("FT", 12);
  write_dump("CG", 1);  // other app: ignored
  std::ofstream(dir_ / "notes.txt") << "junk";
  std::ofstream(dir_ / "FT.node0003.bgpc.bak") << "junk";

  const auto dumps = load_dumps(dir_, "FT");
  ASSERT_EQ(dumps.size(), 3u);
  EXPECT_EQ(dumps[0].node_id, 0u);
  EXPECT_EQ(dumps[1].node_id, 3u);
  EXPECT_EQ(dumps[2].node_id, 12u);
  for (const auto& d : dumps) EXPECT_EQ(d.app_name, "FT");
}

TEST_F(LoaderDir, EmptyDirectoryThrowsWithClearError) {
  // A silent empty result used to mask typo'd app names and missing runs.
  try {
    (void)load_dumps(dir_, "FT");
    FAIL() << "expected BinIoError";
  } catch (const BinIoError& e) {
    EXPECT_NE(std::string(e.what()).find("FT.node*.bgpc"), std::string::npos)
        << e.what();
  }
}

TEST_F(LoaderDir, MissingDirectoryThrows) {
  EXPECT_THROW((void)load_dumps(dir_ / "nope", "FT"), BinIoError);
}

TEST_F(LoaderDir, CorruptFileThrows) {
  std::ofstream(dir_ / "FT.node0000.bgpc") << "this is not a dump";
  EXPECT_THROW((void)load_dumps(dir_, "FT"), BinIoError);
}

TEST_F(LoaderDir, ExplicitFileListRoundTrip) {
  write_dump("IS", 5);
  const auto dumps =
      load_dumps(std::vector<fs::path>{dir_ / "IS.node0005.bgpc"});
  ASSERT_EQ(dumps.size(), 1u);
  EXPECT_EQ(dumps[0].node_id, 5u);
  EXPECT_EQ(dumps[0].counter_mode, 1u);
}

TEST_F(LoaderDir, MissingExplicitFileThrows) {
  EXPECT_THROW((void)load_dumps(std::vector<fs::path>{dir_ / "nope.bgpc"}),
               BinIoError);
}

// ---- malformed-file edge cases ---------------------------------------------

class LoaderEdgeCases : public LoaderDir {
 protected:
  fs::path write_bytes(const std::string& name,
                       const std::vector<std::byte>& bytes) {
    const fs::path p = dir_ / name;
    std::ofstream out(p, std::ios::binary);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    return p;
  }

  static pc::NodeDump sample_dump() {
    pc::NodeDump d;
    d.node_id = 7;
    d.card_id = 3;
    d.counter_mode = 1;
    d.app_name = "LU";
    pc::SetDump s;
    s.set_id = 0;
    s.pairs = 2;
    s.first_start_cycle = 10;
    s.last_stop_cycle = 500;
    for (unsigned c = 0; c < isa::kCountersPerUnit; ++c) s.deltas[c] = c * 3;
    d.sets.push_back(s);
    return d;
  }
};

TEST_F(LoaderEdgeCases, ZeroLengthFileThrows) {
  const auto p = write_bytes("LU.node0000.bgpc", {});
  EXPECT_THROW((void)load_dump(p), BinIoError);
}

TEST_F(LoaderEdgeCases, BadMagicThrows) {
  auto bytes = pc::NodeMonitor::serialize(sample_dump());
  bytes[0] ^= std::byte{0xFF};
  const auto p = write_bytes("LU.node0007.bgpc", bytes);
  try {
    (void)load_dump(p);
    FAIL() << "expected BinIoError";
  } catch (const BinIoError& e) {
    EXPECT_NE(std::string(e.what()).find("magic"), std::string::npos);
  }
}

TEST_F(LoaderEdgeCases, UnsupportedVersionThrows) {
  auto bytes = pc::NodeMonitor::serialize(sample_dump());
  bytes[4] = std::byte{99};  // version field follows the magic
  const auto p = write_bytes("LU.node0007.bgpc", bytes);
  try {
    (void)load_dump(p);
    FAIL() << "expected BinIoError";
  } catch (const BinIoError& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }
}

TEST_F(LoaderEdgeCases, HeaderClaimingMoreSetsThanBytesThrows) {
  // Corrupting the set count upward must be caught by the plausibility
  // check before any allocation, not crash or over-read.
  pc::NodeDump d = sample_dump();
  auto bytes = pc::NodeMonitor::serialize(d, pc::kDumpVersionLegacy);
  // v1 header: magic, version, node, card, mode, app string (u32 len +
  // chars), then the set count.
  const std::size_t count_at = 4 * 5 + 4 + d.app_name.size();
  bytes[count_at] = std::byte{0xFF};
  bytes[count_at + 1] = std::byte{0xFF};
  const auto p = write_bytes("LU.node0007.bgpc", bytes);
  try {
    (void)load_dump(p);
    FAIL() << "expected BinIoError";
  } catch (const BinIoError& e) {
    EXPECT_NE(std::string(e.what()).find("sets"), std::string::npos)
        << e.what();
  }
}

TEST_F(LoaderEdgeCases, TruncatedFileThrows) {
  auto bytes = pc::NodeMonitor::serialize(sample_dump());
  bytes.resize(bytes.size() / 2);
  const auto p = write_bytes("LU.node0007.bgpc", bytes);
  EXPECT_THROW((void)load_dump(p), BinIoError);
}

TEST_F(LoaderEdgeCases, FlippedByteFailsTheSectionCrc) {
  auto bytes = pc::NodeMonitor::serialize(sample_dump());
  bytes[bytes.size() - 40] ^= std::byte{0x10};  // inside the last set record
  const auto p = write_bytes("LU.node0007.bgpc", bytes);
  try {
    (void)load_dump(p);
    FAIL() << "expected BinIoError";
  } catch (const BinIoError& e) {
    EXPECT_NE(std::string(e.what()).find("CRC mismatch"), std::string::npos)
        << e.what();
  }
}

TEST_F(LoaderEdgeCases, LegacyV1RoundTripsThroughV2Reader) {
  const pc::NodeDump d = sample_dump();
  const auto v1 = pc::NodeMonitor::serialize(d, pc::kDumpVersionLegacy);
  const auto v2 = pc::NodeMonitor::serialize(d, pc::kDumpVersion);
  EXPECT_LT(v1.size(), v2.size());  // v2 carries the CRC words

  const auto p1 = write_bytes("LU.node0007.bgpc", v1);
  const pc::NodeDump back = load_dump(p1);
  EXPECT_EQ(back.node_id, d.node_id);
  EXPECT_EQ(back.card_id, d.card_id);
  EXPECT_EQ(back.app_name, d.app_name);
  ASSERT_EQ(back.sets.size(), 1u);
  EXPECT_EQ(back.sets[0].deltas, d.sets[0].deltas);

  // And a v1 byte flip goes undetected structurally — the motivation for
  // v2: same flip, but the file still parses (garbage in, garbage out).
  auto flipped = v1;
  flipped[flipped.size() - 40] ^= std::byte{0x10};
  const auto p2 = write_bytes("LU.node0008.bgpc", flipped);
  EXPECT_NO_THROW((void)load_dump(p2));
}

TEST_F(LoaderEdgeCases, TolerantLoadSkipsBadFilesAndReports) {
  write_dump("FT", 0);
  write_dump("FT", 1);
  write_dump("FT", 2);
  auto bytes = pc::NodeMonitor::serialize(sample_dump());
  bytes[bytes.size() - 8] ^= std::byte{0x01};
  write_bytes("FT.node0003.bgpc", bytes);

  const LoadReport rep = load_dumps_tolerant(dir_, "FT");
  EXPECT_FALSE(rep.ok());
  ASSERT_EQ(rep.dumps.size(), 3u);
  ASSERT_EQ(rep.errors.size(), 1u);
  EXPECT_EQ(rep.errors[0].file.filename(), "FT.node0003.bgpc");
  EXPECT_NE(rep.errors[0].reason.find("CRC"), std::string::npos);
}

TEST_F(LoaderEdgeCases, TolerantLoadOfEmptyDirectoryIsAnError) {
  const LoadReport rep = load_dumps_tolerant(dir_, "FT");
  EXPECT_FALSE(rep.ok());
  EXPECT_TRUE(rep.dumps.empty());
  ASSERT_EQ(rep.errors.size(), 1u);
}

}  // namespace
}  // namespace bgp::post
