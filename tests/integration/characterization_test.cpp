// Integration tests pinning the paper's characterization claims at test
// scale (class S — the bench harnesses check the same shapes at larger
// scale). These run the full stack: kernels -> compiler -> cores/caches ->
// UPC -> interface library -> dumps -> post-processing.
#include <gtest/gtest.h>

#include "nas/runner.hpp"
#include "postproc/metrics.hpp"

namespace bgp {
namespace {

nas::RunOutput run(nas::Benchmark b, unsigned nodes = 4,
                   sys::OpMode mode = sys::OpMode::kVnm,
                   const char* opt = "-O5 -qarch440d",
                   u64 l3_bytes = 8 * MiB) {
  nas::RunConfig cfg;
  cfg.bench = b;
  cfg.cls = nas::ProblemClass::kS;
  cfg.num_nodes = nodes;
  cfg.mode = mode;
  cfg.opt = opt::OptConfig::parse(opt);
  cfg.boot.l3_size_bytes = l3_bytes;
  return nas::run_benchmark(cfg);
}

TEST(Characterization, Fig6MgAndFtAreSimdDominated) {
  for (nas::Benchmark b : {nas::Benchmark::kMG, nas::Benchmark::kFT}) {
    const auto out = run(b);
    ASSERT_TRUE(out.result.verified) << out.result.detail;
    const double simd_share =
        out.record.fp.simd_instructions() / out.record.fp.total();
    EXPECT_GT(simd_share, 0.5) << nas::name(b);
  }
}

TEST(Characterization, Fig6OthersAreSingleFmaDominated) {
  for (nas::Benchmark b : {nas::Benchmark::kEP, nas::Benchmark::kCG,
                           nas::Benchmark::kLU, nas::Benchmark::kBT}) {
    const auto out = run(b);
    ASSERT_TRUE(out.result.verified) << out.result.detail;
    double max_frac = 0;
    isa::FpOp dominant = isa::FpOp::kAddSub;
    for (unsigned i = 0; i < isa::kNumFpOps; ++i) {
      const auto op = static_cast<isa::FpOp>(i);
      if (out.record.fp.fraction(op) > max_frac) {
        max_frac = out.record.fp.fraction(op);
        dominant = op;
      }
    }
    EXPECT_EQ(dominant, isa::FpOp::kFma) << nas::name(b);
  }
}

TEST(Characterization, Fig6DividesAreNegligible) {
  for (nas::Benchmark b : nas::all_benchmarks()) {
    const auto out = run(b);
    const double div_share = out.record.fp.fraction(isa::FpOp::kDiv) +
                             out.record.fp.fraction(isa::FpOp::kSimdDiv);
    // SP's band eliminations carry the most divides; still ~a tenth.
    EXPECT_LT(div_share, 0.10) << nas::name(b);
  }
}

TEST(Characterization, Fig7SimdAppearsOnlyWith440d) {
  const auto plain = run(nas::Benchmark::kFT, 4, sys::OpMode::kVnm, "-O5");
  const auto simd = run(nas::Benchmark::kFT);
  EXPECT_EQ(plain.record.fp.simd_instructions(), 0.0);
  EXPECT_GT(simd.record.fp.simd_instructions(), 0.0);
  EXPECT_LT(simd.record.exec_cycles, plain.record.exec_cycles);
}

TEST(Characterization, Fig9BaselineIsSlowestForEveryBenchmark) {
  for (nas::Benchmark b : nas::all_benchmarks()) {
    const auto base = run(b, 4, sys::OpMode::kVnm, "-O -qstrict");
    const auto best = run(b);
    if (!base.result.verified) continue;  // FT needs pow2 ranks: 16 ok
    EXPECT_LT(best.record.exec_cycles, base.record.exec_cycles)
        << nas::name(b);
  }
}

TEST(Characterization, Fig11NoL3MeansMoreTrafficThanBigL3) {
  for (nas::Benchmark b : {nas::Benchmark::kCG, nas::Benchmark::kMG,
                           nas::Benchmark::kIS}) {
    const auto no_l3 = run(b, 4, sys::OpMode::kVnm, "-O5 -qarch440d", 0);
    const auto big = run(b, 4, sys::OpMode::kVnm, "-O5 -qarch440d", 8 * MiB);
    EXPECT_GT(no_l3.record.ddr_traffic_bytes,
              2.0 * big.record.ddr_traffic_bytes)
        << nas::name(b);
    // Removing the L3 must also cost time.
    EXPECT_GT(no_l3.record.exec_cycles, big.record.exec_cycles)
        << nas::name(b);
  }
}

TEST(Characterization, Fig12VnmTrafficRatioBoundedByRankPacking) {
  // 16 ranks each way: VNM on 4 nodes vs SMP/1 on 16 nodes (L3=2MB).
  // Class W so there is real DDR traffic to compare (class S fits in L3);
  // at least 4 nodes so both node-card parities exist for memory counters.
  for (nas::Benchmark b : {nas::Benchmark::kCG, nas::Benchmark::kMG}) {
    nas::RunConfig vnm;
    vnm.bench = b;
    vnm.cls = nas::ProblemClass::kW;
    vnm.num_nodes = 4;
    vnm.mode = sys::OpMode::kVnm;
    const auto v = nas::run_benchmark(vnm);
    nas::RunConfig smp = vnm;
    smp.num_nodes = 16;
    smp.mode = sys::OpMode::kSmp1;
    smp.boot.l3_size_bytes = 2 * MiB;
    const auto s = nas::run_benchmark(smp);
    ASSERT_TRUE(v.result.verified && s.result.verified);
    const double ratio =
        v.record.ddr_traffic_bytes / std::max(1.0, s.record.ddr_traffic_bytes);
    EXPECT_GT(ratio, 1.0) << nas::name(b);
    EXPECT_LE(ratio, 4.5) << nas::name(b);
    // Fig 14's bound: per-chip MFLOPS ratio in (1, 4.2].
    const double mflops_ratio =
        v.record.mflops_per_node / std::max(1.0, s.record.mflops_per_node);
    EXPECT_GT(mflops_ratio, 1.0) << nas::name(b);
    EXPECT_LE(mflops_ratio, 4.2) << nas::name(b);
  }
}

TEST(Characterization, EvenOddCardsSplitTheEventSpace) {
  const auto out = run(nas::Benchmark::kCG);
  unsigned mode0 = 0, mode1 = 0;
  for (const auto& d : out.dumps) {
    if (d.counter_mode == 0) ++mode0;
    if (d.counter_mode == 1) ++mode1;
  }
  // 4 nodes, 2 per card: two even-card and two odd-card nodes.
  EXPECT_EQ(mode0, 2u);
  EXPECT_EQ(mode1, 2u);
  // Merged view exposes both per-core and memory events in one run.
  EXPECT_GT(out.record.fp.total(), 0.0);
  EXPECT_GT(out.record.ddr_traffic_bytes + out.record.l3_read_miss_ratio,
            0.0);
}

TEST(Characterization, CycleCountMatchesMachineElapsedScale) {
  const auto out = run(nas::Benchmark::kMG);
  // The mean per-node CYCLE_COUNT cannot exceed the slowest node's clock,
  // and must be within 3x of it (nodes do symmetric work).
  EXPECT_LE(out.record.exec_cycles, static_cast<double>(out.elapsed));
  EXPECT_GT(out.record.exec_cycles, static_cast<double>(out.elapsed) / 3.0);
}

TEST(Characterization, FlopsAreOptimizationInvariant) {
  // The useful work must not depend on the option set (only its encoding
  // does) — checked end-to-end through the counters.
  const auto a = run(nas::Benchmark::kMG, 4, sys::OpMode::kVnm, "-O -qstrict");
  const auto b = run(nas::Benchmark::kMG);
  EXPECT_NEAR(a.record.fp.flops() / b.record.fp.flops(), 1.0, 0.01);
}

}  // namespace
}  // namespace bgp
