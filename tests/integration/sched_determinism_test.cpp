// Serial-vs-parallel determinism matrix (docs/parallel-scheduler.md): the
// parallel epoch scheduler must be bit-for-bit indistinguishable from the
// serial dispatcher. Every cell runs the same instrumented benchmark twice
// — once per scheduler — and byte-compares all artifacts: counter dumps
// (.bgpc), sealed and partial trace files (.bgpt*), and span files (.bgps,
// compared with host-nanosecond fields zeroed, the one wall-clock channel
// in the formats). The matrix covers {SMP, DUAL, VNM} x {no fault, kill-2,
// FT kill-3} with tracing and the flight recorder both attached, plus a
// 256-rank stress cell on eight workers.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <string>

#include "core/session.hpp"
#include "fault/fault.hpp"
#include "ft/ftcomm.hpp"
#include "nas/kernel.hpp"
#include "obs/span_io.hpp"
#include "runtime/machine.hpp"
#include "runtime/rankctx.hpp"

namespace bgp {
namespace {

namespace fs = std::filesystem;

struct MatrixCell {
  sys::OpMode mode = sys::OpMode::kVnm;
  unsigned nodes = 4;
  unsigned deaths = 0;
  bool ft = false;
  unsigned jobs = 4;
  /// Run with the legacy per-instruction event emission and the legacy
  /// virtual cache walk instead of the batched/devirtualized fast paths.
  bool legacy = false;
};

/// Everything observable a run leaves behind, in comparable form.
struct RunArtifacts {
  std::map<std::string, std::string> files;  ///< name -> raw bytes
  cycles_t elapsed = 0;
  std::size_t dead_nodes = 0;
  std::size_t recovery_events = 0;
};

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

/// Re-serialize a span file with its host-ns fields zeroed: span begin/end
/// wall times are real time, everything else is simulated state.
std::string normalized_spans(const fs::path& p) {
  obs::SpanFile f = obs::load_span_file(p);
  std::string out;
  for (const obs::SpanRec& s : f.spans) {
    out += s.name + ' ' + std::string(obs::to_string(s.cat)) + ' ' +
           std::to_string(s.node) + ':' + std::to_string(s.core) + ' ' +
           std::to_string(s.depth) + ' ' + std::to_string(s.begin_cycles) +
           '-' + std::to_string(s.end_cycles) + '\n';
  }
  for (const obs::InstantRec& i : f.instants) {
    out += i.name + ' ' + std::string(obs::to_string(i.cat)) + ' ' +
           std::to_string(i.node) + ':' + std::to_string(i.core) + ' ' +
           std::to_string(i.cycles) + '\n';
  }
  out += "dropped=" + std::to_string(f.dropped) + '\n';
  return out;
}

RunArtifacts run_cell(const MatrixCell& cell, rt::SchedMode sched) {
  const ::testing::TestInfo* ti =
      ::testing::UnitTest::GetInstance()->current_test_info();
  const fs::path dir =
      fs::temp_directory_path() /
      (std::string("bgpc_sched_") + ti->name() +
       (sched == rt::SchedMode::kParallel ? "_par" : "_ser") +
       (cell.legacy ? "_legacy" : ""));
  fs::remove_all(dir);
  fs::create_directories(dir);

  rt::MachineConfig mc;
  mc.num_nodes = cell.nodes;
  mc.mode = cell.mode;
  mc.sched = sched;
  mc.jobs = sched == rt::SchedMode::kParallel ? cell.jobs : 0;
  mc.legacy_block_events = cell.legacy;
  mc.boot.legacy_mem_walk = cell.legacy;
  rt::Machine machine(mc);

  fault::FaultInjector injector{[&] {
    fault::FaultSpec spec;
    spec.node_deaths = cell.deaths;
    return fault::FaultPlan::random(7, cell.nodes, spec);
  }()};
  if (cell.deaths > 0) machine.set_fault_injector(&injector);
  ft::FtParams ftp;
  ftp.enabled = cell.ft;
  machine.set_ft_params(ftp);

  pc::Options opts;
  opts.app_name = "CG";
  opts.dump_dir = dir;
  opts.trace.enabled = true;
  opts.trace.trace_dir = dir;
  opts.obs.enabled = true;
  pc::Session session(machine, opts);
  session.link_with_mpi();

  auto kernel = nas::make_kernel(nas::Benchmark::kCG, nas::ProblemClass::kS);
  if (cell.ft) {
    machine.run([&](rt::RankCtx& ctx) {
      ft::run_guarded(ctx, [&](rt::RankCtx& c) {
        c.mpi_init();
        kernel->run(c);
      });
      ft::finalize_guarded(ctx);
    });
  } else {
    machine.run([&](rt::RankCtx& ctx) {
      ctx.mpi_init();
      kernel->run(ctx);
      ctx.mpi_finalize();
    });
  }

  RunArtifacts a;
  a.elapsed = machine.elapsed();
  a.dead_nodes = machine.dead_nodes().size();
  a.recovery_events = machine.recovery_log().size();
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    a.files[name] = entry.path().extension() == ".bgps"
                        ? normalized_spans(entry.path())
                        : slurp(entry.path());
  }
  fs::remove_all(dir);
  return a;
}

void expect_identical(const MatrixCell& cell) {
  const RunArtifacts ser = run_cell(cell, rt::SchedMode::kSerial);
  const RunArtifacts par = run_cell(cell, rt::SchedMode::kParallel);

  EXPECT_EQ(ser.elapsed, par.elapsed);
  EXPECT_EQ(ser.dead_nodes, par.dead_nodes);
  EXPECT_EQ(ser.recovery_events, par.recovery_events);
  ASSERT_FALSE(ser.files.empty());
  ASSERT_EQ(ser.files.size(), par.files.size());
  for (const auto& [name, bytes] : ser.files) {
    const auto it = par.files.find(name);
    ASSERT_NE(it, par.files.end()) << name << " missing from parallel run";
    EXPECT_EQ(bytes, it->second) << name << " differs between schedulers";
  }
}

TEST(SchedDeterminism, Smp1Plain) {
  expect_identical({.mode = sys::OpMode::kSmp1});
}
TEST(SchedDeterminism, Smp1Kill2) {
  expect_identical({.mode = sys::OpMode::kSmp1, .deaths = 2});
}
TEST(SchedDeterminism, Smp1FtKill3) {
  expect_identical({.mode = sys::OpMode::kSmp1, .nodes = 8, .deaths = 3,
                    .ft = true});
}
TEST(SchedDeterminism, DualPlain) {
  expect_identical({.mode = sys::OpMode::kDual});
}
TEST(SchedDeterminism, DualKill2) {
  expect_identical({.mode = sys::OpMode::kDual, .deaths = 2});
}
TEST(SchedDeterminism, DualFtKill3) {
  expect_identical({.mode = sys::OpMode::kDual, .nodes = 8, .deaths = 3,
                    .ft = true});
}
TEST(SchedDeterminism, VnmPlain) {
  expect_identical({.mode = sys::OpMode::kVnm});
}
TEST(SchedDeterminism, VnmKill2) {
  expect_identical({.mode = sys::OpMode::kVnm, .deaths = 2});
}
TEST(SchedDeterminism, VnmFtKill3) {
  expect_identical({.mode = sys::OpMode::kVnm, .nodes = 8, .deaths = 3,
                    .ft = true});
}

/// 256 ranks (64 VNM nodes) on eight workers: the stress cell where
/// commit-order races would actually show up.
TEST(SchedDeterminism, Stress256Ranks) {
  expect_identical({.mode = sys::OpMode::kVnm, .nodes = 64, .jobs = 8});
}

/// The batched/devirtualized fast paths against the legacy walk and
/// per-instruction event delivery: same pinned seed, every artifact
/// byte-identical. Runs under the named scheduler for both variants.
void expect_fast_matches_legacy(MatrixCell cell, rt::SchedMode sched) {
  cell.legacy = true;
  const RunArtifacts legacy = run_cell(cell, sched);
  cell.legacy = false;
  const RunArtifacts fast = run_cell(cell, sched);

  EXPECT_EQ(legacy.elapsed, fast.elapsed);
  EXPECT_EQ(legacy.dead_nodes, fast.dead_nodes);
  EXPECT_EQ(legacy.recovery_events, fast.recovery_events);
  ASSERT_FALSE(legacy.files.empty());
  ASSERT_EQ(legacy.files.size(), fast.files.size());
  for (const auto& [name, bytes] : legacy.files) {
    const auto it = fast.files.find(name);
    ASSERT_NE(it, fast.files.end()) << name << " missing from fast-path run";
    EXPECT_EQ(bytes, it->second) << name << " differs legacy vs fast path";
  }
}

TEST(SchedDeterminism, FastPathVnmPlainSerial) {
  expect_fast_matches_legacy({.mode = sys::OpMode::kVnm},
                             rt::SchedMode::kSerial);
}
TEST(SchedDeterminism, FastPathVnmPlainParallel) {
  expect_fast_matches_legacy({.mode = sys::OpMode::kVnm},
                             rt::SchedMode::kParallel);
}
TEST(SchedDeterminism, FastPathVnmKill2Serial) {
  expect_fast_matches_legacy({.mode = sys::OpMode::kVnm, .deaths = 2},
                             rt::SchedMode::kSerial);
}
TEST(SchedDeterminism, FastPathDualFtKill3Parallel) {
  expect_fast_matches_legacy(
      {.mode = sys::OpMode::kDual, .nodes = 8, .deaths = 3, .ft = true},
      rt::SchedMode::kParallel);
}

}  // namespace
}  // namespace bgp
