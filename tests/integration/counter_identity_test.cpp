// Counter-identity checks for the batched fast paths (block event vectors
// and the devirtualized cache walk). Two families:
//
//  1. Structural identities the hardware counters must satisfy regardless
//     of delivery path: hits + misses == accesses at every level that
//     counts all three (L2/L3 reads, L3 writes), misses <= accesses where
//     there is no hit counter (L1D, L2 writes).
//
//  2. Path equivalence: a run with the legacy per-instruction event
//     emission and the legacy virtual cache walk must produce exactly the
//     same 256 counter deltas per set as the batched/devirtualized fast
//     paths — per node, per set, in all four counter modes, under both
//     schedulers. The fast paths are a delivery optimization, never a
//     semantic change.
#include <gtest/gtest.h>

#include <vector>

#include "core/session.hpp"
#include "nas/kernel.hpp"
#include "runtime/machine.hpp"
#include "runtime/rankctx.hpp"

namespace bgp {
namespace {

struct PathConfig {
  u8 mode = 0;  ///< counter mode programmed on every node card
  rt::SchedMode sched = rt::SchedMode::kSerial;
  bool legacy = false;  ///< per-instruction events + virtual walk
};

std::vector<pc::NodeDump> run_cg(const PathConfig& cfg) {
  rt::MachineConfig mc;
  mc.num_nodes = 4;
  mc.mode = sys::OpMode::kVnm;
  mc.sched = cfg.sched;
  mc.jobs = cfg.sched == rt::SchedMode::kParallel ? 2 : 0;
  mc.legacy_block_events = cfg.legacy;
  mc.boot.legacy_mem_walk = cfg.legacy;
  rt::Machine machine(mc);

  pc::Options opts;
  opts.app_name = "identity";
  opts.write_dumps = false;
  // Same mode on even and odd cards so every node counts the mode under
  // test (the split-mode scheme is covered by the characterization tests).
  opts.mode_even_cards = cfg.mode;
  opts.mode_odd_cards = cfg.mode;
  pc::Session session(machine, opts);
  session.link_with_mpi();

  auto kernel = nas::make_kernel(nas::Benchmark::kCG, nas::ProblemClass::kS);
  machine.run([&](rt::RankCtx& ctx) {
    ctx.mpi_init();
    kernel->run(ctx);
    ctx.mpi_finalize();
  });
  EXPECT_TRUE(kernel->result().verified) << kernel->result().detail;
  return session.dumps();
}

/// Counter delta of `id` in set 0, or 0 when the dump's mode does not
/// cover the event.
u64 delta(const pc::NodeDump& d, isa::EventId id) {
  if (isa::event_mode(id) != d.counter_mode) return 0;
  return d.sets.at(0).deltas.at(isa::event_counter(id));
}

const char* sched_name(rt::SchedMode s) {
  return s == rt::SchedMode::kSerial ? "serial" : "parallel";
}

constexpr rt::SchedMode kScheds[] = {rt::SchedMode::kSerial,
                                     rt::SchedMode::kParallel};

TEST(CounterIdentity, Mode0PerCoreCacheIdentities) {
  for (const rt::SchedMode sched : kScheds) {
    const auto dumps = run_cg({0, sched, false});
    ASSERT_FALSE(dumps.empty());
    bool any_l1 = false;
    for (const auto& d : dumps) {
      for (unsigned c = 0; c < isa::kCoresPerNode; ++c) {
        const u64 l1_ra = delta(d, isa::ev::l1d(c, isa::L1dEvent::kReadAccess));
        const u64 l1_rm = delta(d, isa::ev::l1d(c, isa::L1dEvent::kReadMiss));
        const u64 l1_wa =
            delta(d, isa::ev::l1d(c, isa::L1dEvent::kWriteAccess));
        const u64 l1_wm = delta(d, isa::ev::l1d(c, isa::L1dEvent::kWriteMiss));
        EXPECT_LE(l1_rm, l1_ra) << sched_name(sched);
        EXPECT_LE(l1_wm, l1_wa) << sched_name(sched);
        any_l1 = any_l1 || l1_ra > 0;

        const u64 l2_ra = delta(d, isa::ev::l2(c, isa::L2Event::kReadAccess));
        const u64 l2_rh = delta(d, isa::ev::l2(c, isa::L2Event::kReadHit));
        const u64 l2_rm = delta(d, isa::ev::l2(c, isa::L2Event::kReadMiss));
        const u64 l2_wa = delta(d, isa::ev::l2(c, isa::L2Event::kWriteAccess));
        const u64 l2_wm = delta(d, isa::ev::l2(c, isa::L2Event::kWriteMiss));
        EXPECT_EQ(l2_ra, l2_rh + l2_rm)
            << sched_name(sched) << " node " << d.node_id << " core " << c;
        EXPECT_LE(l2_wm, l2_wa) << sched_name(sched);
      }
    }
    EXPECT_TRUE(any_l1) << "CG never touched the L1D?";
  }
}

TEST(CounterIdentity, Mode1SharedLevelIdentities) {
  for (const rt::SchedMode sched : kScheds) {
    const auto dumps = run_cg({1, sched, false});
    ASSERT_FALSE(dumps.empty());
    for (const auto& d : dumps) {
      const u64 ra = delta(d, isa::ev::l3(isa::L3Event::kReadAccess));
      const u64 rh = delta(d, isa::ev::l3(isa::L3Event::kReadHit));
      const u64 rm = delta(d, isa::ev::l3(isa::L3Event::kReadMiss));
      const u64 wa = delta(d, isa::ev::l3(isa::L3Event::kWriteAccess));
      const u64 wh = delta(d, isa::ev::l3(isa::L3Event::kWriteHit));
      const u64 wm = delta(d, isa::ev::l3(isa::L3Event::kWriteMiss));
      EXPECT_EQ(ra, rh + rm) << sched_name(sched) << " node " << d.node_id;
      EXPECT_EQ(wa, wh + wm) << sched_name(sched) << " node " << d.node_id;
    }
  }
}

TEST(CounterIdentity, BatchedMatchesLegacyAllModesBothSchedulers) {
  for (u8 mode = 0; mode < isa::kNumCounterModes; ++mode) {
    for (const rt::SchedMode sched : kScheds) {
      const auto legacy = run_cg({mode, sched, true});
      const auto fast = run_cg({mode, sched, false});
      ASSERT_EQ(legacy.size(), fast.size());
      for (std::size_t n = 0; n < legacy.size(); ++n) {
        const pc::NodeDump& a = legacy[n];
        const pc::NodeDump& b = fast[n];
        ASSERT_EQ(a.node_id, b.node_id);
        ASSERT_EQ(a.sets.size(), b.sets.size());
        for (std::size_t s = 0; s < a.sets.size(); ++s) {
          EXPECT_EQ(a.sets[s].first_start_cycle, b.sets[s].first_start_cycle)
              << "mode " << unsigned(mode) << " " << sched_name(sched);
          EXPECT_EQ(a.sets[s].last_stop_cycle, b.sets[s].last_stop_cycle)
              << "mode " << unsigned(mode) << " " << sched_name(sched);
          for (unsigned c = 0; c < isa::kCountersPerUnit; ++c) {
            ASSERT_EQ(a.sets[s].deltas[c], b.sets[s].deltas[c])
                << "mode " << unsigned(mode) << " " << sched_name(sched)
                << " node " << a.node_id << " counter " << c << " ("
                << isa::event_info(a.event_of(c)).name << ")";
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace bgp
