// End-to-end tracing acceptance (ISSUE 2): a 16-node SMP run with
// threshold-driven tracing on and two nodes killed mid-run. The surviving
// traces must seal, the dead nodes' partials must truncate cleanly, the
// miner must produce a phase report with the correct coverage annotation,
// and the same seed must reproduce byte-identical trace files.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "core/session.hpp"
#include "fault/fault.hpp"
#include "postproc/timeline.hpp"
#include "runtime/machine.hpp"
#include "runtime/rankctx.hpp"

namespace bgp {
namespace {

namespace fs = std::filesystem;

constexpr u64 kSeed = 20260806;
constexpr unsigned kNodes = 16;
constexpr cycles_t kInterval = 4'000;

isa::LoopDesc fp_phase(u64 trip) {
  isa::LoopDesc d;
  d.name = "fp_phase";
  d.trip = trip;
  d.body.fp_at(isa::FpOp::kSimdFma) = 4;
  d.body.fp_at(isa::FpOp::kAddSub) = 2;
  d.body.ls_at(isa::LsOp::kLoadQuad) = 2;
  d.body.int_at(isa::IntOp::kAlu) = 1;
  return d;
}

isa::LoopDesc mem_phase(u64 trip) {
  isa::LoopDesc d;
  d.name = "mem_phase";
  d.trip = trip;
  d.body.ls_at(isa::LsOp::kLoadDouble) = 4;
  d.body.ls_at(isa::LsOp::kStoreDouble) = 2;
  d.body.int_at(isa::IntOp::kAlu) = 3;
  return d;
}

struct TracedOutcome {
  std::vector<unsigned> dead;
  unsigned sealed = 0;
  unsigned partial = 0;
  post::TimelineReport report;
  std::string interval_csv;
  std::string phase_csv;
  /// filename → raw bytes of every trace file the run left behind.
  std::map<std::string, std::string> files;
};

TracedOutcome run_traced(const fs::path& dir) {
  fault::FaultSpec spec;
  spec.node_deaths = 2;
  spec.death_window = 10'000;  // well inside the run: both deaths fire
  fault::FaultInjector inj(fault::FaultPlan::random(kSeed, kNodes, spec));

  rt::MachineConfig mc;
  mc.num_nodes = kNodes;
  mc.mode = sys::OpMode::kSmp1;
  rt::Machine m(mc);
  m.set_fault_injector(&inj);

  {
    pc::Options o;
    o.app_name = "traced";
    o.dump_dir = dir;
    o.write_dumps = false;  // this run is about the traces
    o.fault = &inj;
    o.trace.enabled = true;
    o.trace.interval_cycles = kInterval;
    o.trace.trace_dir = dir;
    pc::Session s(m, o);
    s.link_with_mpi();
    m.run([&](rt::RankCtx& ctx) {
      ctx.mpi_init();
      // Two workload phases the timeline miner should recover: an
      // FP/SIMD-heavy stretch, then a load-store-dominated one.
      for (int i = 0; i < 6; ++i) {
        ctx.loop(fp_phase(20'000), {});
        (void)ctx.allreduce_sum(1.0);
      }
      for (int i = 0; i < 6; ++i) {
        ctx.loop(mem_phase(20'000), {});
        (void)ctx.allreduce_sum(1.0);
      }
      ctx.mpi_finalize();
    });
    // Session destruction flushes the dead nodes' unflushed tails into
    // their .partial files (the writers' crash path).
  }

  TracedOutcome out;
  out.dead = m.dead_nodes();
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.ends_with(trace::kPartialSuffix)) {
      ++out.partial;
    } else if (name.ends_with(trace::kTraceSuffix)) {
      ++out.sealed;
    } else {
      continue;
    }
    std::ifstream in(entry.path(), std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    out.files.emplace(name, std::move(bytes));
  }

  post::TimelineOptions opts;
  opts.expected_nodes = kNodes;
  out.report = post::mine_timeline(dir, "traced", opts);
  out.interval_csv = post::interval_csv(out.report);
  out.phase_csv = post::phase_csv(out.report);
  return out;
}

class TraceTimeline : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test: ctest -j runs fixture tests concurrently.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::temp_directory_path() /
           (std::string("bgpc_trace_itg_") + info->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

TEST_F(TraceTimeline, SurvivingTracesMineToAPhaseReport) {
  const TracedOutcome out = run_traced(dir_);

  // Two nodes died; every survivor sealed its trace, the dead left
  // parseable partials behind.
  ASSERT_EQ(out.dead.size(), 2u);
  EXPECT_EQ(out.sealed, kNodes - 2);
  EXPECT_EQ(out.partial, 2u);

  const post::TimelineReport& rep = out.report;
  EXPECT_TRUE(rep.ok);
  EXPECT_EQ(rep.coverage.expected, kNodes);
  EXPECT_EQ(rep.coverage.loaded, kNodes);  // partials still load
  EXPECT_EQ(rep.coverage.mined, kNodes);
  EXPECT_EQ(rep.truncated_nodes, out.dead);
  EXPECT_EQ(rep.interval_cycles, kInterval);
  EXPECT_GT(rep.overhead_cycles, 0u);

  // The two workload phases show up as a change point: the FP stretch
  // runs at a higher rate than the load-store stretch.
  ASSERT_FALSE(rep.intervals.empty());
  ASSERT_GE(rep.phases.size(), 2u);
  EXPECT_GT(rep.phases.front().mflops, rep.phases.back().mflops);
  EXPECT_GT(rep.phases.front().fp_fraction, rep.phases.back().fp_fraction);

  // Interval indexes come out strictly increasing (the merge cannot emit
  // an interval twice, however the records were coalesced).
  for (std::size_t i = 1; i < rep.intervals.size(); ++i) {
    EXPECT_GT(rep.intervals[i].index, rep.intervals[i - 1].index);
  }

  // CI artifact hand-off: when the workflow exports an artifact directory,
  // leave the mined CSVs there for upload.
  if (const char* artifact_dir = std::getenv("BGPC_TRACE_ARTIFACT_DIR")) {
    fs::create_directories(artifact_dir);
    std::ofstream(fs::path(artifact_dir) / "trace_intervals.csv")
        << out.interval_csv;
    std::ofstream(fs::path(artifact_dir) / "trace_phases.csv")
        << out.phase_csv;
  }
}

TEST_F(TraceTimeline, SameSeedIsByteIdentical) {
  const fs::path other = dir_.parent_path() / (dir_.filename().string() + "2");
  fs::remove_all(other);
  fs::create_directories(other);

  const TracedOutcome a = run_traced(dir_);
  const TracedOutcome b = run_traced(other);
  fs::remove_all(other);

  EXPECT_EQ(a.dead, b.dead);
  // Same seed, same schedule, same interrupts: every trace file — sealed
  // and partial alike — is byte-identical, and so is everything mined
  // from them.
  ASSERT_EQ(a.files.size(), b.files.size());
  for (const auto& [name, bytes] : a.files) {
    auto it = b.files.find(name);
    ASSERT_NE(it, b.files.end()) << name;
    EXPECT_EQ(bytes, it->second) << name << " differs between runs";
  }
  EXPECT_EQ(a.interval_csv, b.interval_csv);
  EXPECT_EQ(a.phase_csv, b.phase_csv);
}

}  // namespace
}  // namespace bgp
