// End-to-end fault-injection run (ISSUE 1 acceptance): a fixed seed kills
// 2 of 16 nodes mid-run and silently corrupts one survivor's dump. The
// degraded miner must still produce a coverage-annotated record over the
// surviving quorum, strict mode must refuse with the full problem list,
// and the same seed must reproduce byte-identical results.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "common/csv.hpp"
#include "core/session.hpp"
#include "fault/fault.hpp"
#include "postproc/pipeline.hpp"
#include "postproc/report.hpp"
#include "runtime/machine.hpp"
#include "runtime/rankctx.hpp"

namespace bgp {
namespace {

namespace fs = std::filesystem;

constexpr u64 kSeed = 20260806;
constexpr unsigned kNodes = 16;

isa::LoopDesc stencil(u64 trip) {
  isa::LoopDesc d;
  d.name = "stencil";
  d.trip = trip;
  d.body.fp_at(isa::FpOp::kFma) = 4;
  d.body.fp_at(isa::FpOp::kAddSub) = 2;
  d.body.int_at(isa::IntOp::kAlu) = 2;
  d.body.ls_at(isa::LsOp::kLoadDouble) = 3;
  d.body.ls_at(isa::LsOp::kStoreDouble) = 1;
  return d;
}

struct RunOutcome {
  std::vector<unsigned> dead;
  post::MineResult degraded;
  post::MineResult strict;
  std::string metrics_csv;
};

RunOutcome run_faulted(const fs::path& dir) {
  fault::FaultSpec spec;
  spec.node_deaths = 2;
  spec.dump_bit_flips = 1;
  spec.death_window = 10'000;  // well inside the run: both deaths fire
  fault::FaultInjector inj(fault::FaultPlan::random(kSeed, kNodes, spec));

  rt::MachineConfig mc;
  mc.num_nodes = kNodes;
  mc.mode = sys::OpMode::kSmp1;
  rt::Machine m(mc);
  m.set_fault_injector(&inj);
  pc::Options o;
  o.app_name = "faulted";
  o.dump_dir = dir;
  o.fault = &inj;
  pc::Session s(m, o);
  s.link_with_mpi();
  m.run([&](rt::RankCtx& ctx) {
    ctx.mpi_init();
    for (int i = 0; i < 8; ++i) {
      ctx.loop(stencil(20'000), {});
      (void)ctx.allreduce_sum(1.0);
    }
    ctx.mpi_finalize();
  });

  RunOutcome out;
  out.dead = m.dead_nodes();

  post::MineOptions deg;
  deg.min_coverage = 0.75;
  deg.expected_nodes = kNodes;
  out.degraded = post::mine(dir, "faulted", deg);

  post::MineOptions strict = deg;
  strict.strict = true;
  out.strict = post::mine(dir, "faulted", strict);

  CsvWriter csv;
  post::write_metrics_csv(csv, {out.degraded.record});
  out.metrics_csv = csv.text();
  return out;
}

class FaultInjection : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test: ctest -j runs fixture tests concurrently.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::temp_directory_path() /
           (std::string("bgpc_fault_itg_") + info->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

TEST_F(FaultInjection, DegradedMineCoversTheSurvivingQuorum) {
  const RunOutcome out = run_faulted(dir_);

  // The plan kills exactly two nodes; the collectives complete over the
  // survivors, so nothing cascades.
  ASSERT_EQ(out.dead.size(), 2u);

  // 14 survivors wrote dumps; the bit-flipped one fails its CRC on load.
  const auto& res = out.degraded;
  EXPECT_TRUE(res.ok);
  EXPECT_EQ(res.coverage.expected, kNodes);
  EXPECT_EQ(res.coverage.loaded, 13u);
  EXPECT_GE(res.coverage.mined, 13u);
  EXPECT_GE(res.coverage.fraction(), 13.0 / 16.0);
  ASSERT_EQ(res.load_errors.size(), 1u);
  EXPECT_NE(res.load_errors[0].reason.find("CRC"), std::string::npos)
      << res.load_errors[0].reason;

  // The record itself carries the coverage annotation...
  EXPECT_EQ(res.record.nodes_expected, kNodes);
  EXPECT_EQ(res.record.nodes_mined, res.coverage.mined);
  EXPECT_GT(res.record.fp.flops(), 0.0);
  // ...and it lands in the CSV.
  EXPECT_NE(out.metrics_csv.find("nodes_expected"), std::string::npos);
  EXPECT_NE(out.metrics_csv.find("nodes_mined"), std::string::npos);
  EXPECT_NE(out.metrics_csv.find("16"), std::string::npos);
  EXPECT_NE(out.metrics_csv.find("13"), std::string::npos);
}

TEST_F(FaultInjection, StrictModeRefusesAndListsEveryProblem) {
  const RunOutcome out = run_faulted(dir_);
  const auto& res = out.strict;

  EXPECT_FALSE(res.ok);
  // Two dead nodes' dumps are missing and one survivor's dump is corrupt:
  // at least three distinct problems, each naming its fault.
  EXPECT_GE(res.problems.size(), 3u);
  unsigned missing = 0, corrupt = 0;
  for (const auto& p : res.problems) {
    if (p.find("dump missing") != std::string::npos) ++missing;
    if (p.find("CRC mismatch") != std::string::npos) ++corrupt;
  }
  EXPECT_EQ(missing, 2u);
  EXPECT_EQ(corrupt, 1u);
}

TEST_F(FaultInjection, SameSeedIsByteIdentical) {
  const fs::path other = dir_.parent_path() / (dir_.filename().string() + "2");
  fs::remove_all(other);
  fs::create_directories(other);

  const RunOutcome a = run_faulted(dir_);
  const RunOutcome b = run_faulted(other);
  fs::remove_all(other);

  EXPECT_EQ(a.dead, b.dead);
  EXPECT_EQ(a.degraded.coverage.mined, b.degraded.coverage.mined);
  EXPECT_EQ(a.metrics_csv, b.metrics_csv);
}

}  // namespace
}  // namespace bgp
