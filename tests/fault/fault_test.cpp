// The fault-injection plan generator and runtime oracle: determinism,
// victim selection, corruption application, write-failure budgets.
#include "fault/fault.hpp"

#include <gtest/gtest.h>

#include <set>

namespace bgp::fault {
namespace {

FaultSpec busy_spec() {
  FaultSpec spec;
  spec.node_deaths = 2;
  spec.dump_truncates = 1;
  spec.dump_bit_flips = 2;
  spec.transient_write_errors = 1;
  spec.lost_dumps = 1;
  spec.counter_wraps = 1;
  return spec;
}

TEST(FaultPlan, SameSeedSamePlan) {
  const FaultPlan a = FaultPlan::random(42, 16, busy_spec());
  const FaultPlan b = FaultPlan::random(42, 16, busy_spec());
  ASSERT_EQ(a.events().size(), b.events().size());
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_EQ(describe(a.events()[i]), describe(b.events()[i])) << i;
  }
}

TEST(FaultPlan, DifferentSeedsDiffer) {
  const FaultPlan a = FaultPlan::random(1, 16, busy_spec());
  const FaultPlan b = FaultPlan::random(2, 16, busy_spec());
  std::string sa, sb;
  for (const auto& e : a.events()) sa += describe(e) + "\n";
  for (const auto& e : b.events()) sb += describe(e) + "\n";
  EXPECT_NE(sa, sb);
}

TEST(FaultPlan, DeathVictimsAreDistinctAndDumpFaultsHitSurvivors) {
  FaultSpec spec = busy_spec();
  spec.node_deaths = 5;
  const FaultPlan plan = FaultPlan::random(7, 8, spec);
  std::set<u32> dead;
  for (const auto& e : plan.events()) {
    if (e.kind == FaultKind::kNodeDeath) {
      EXPECT_TRUE(dead.insert(e.node).second) << "duplicate victim";
      EXPECT_GE(e.cycle, 1u);
      EXPECT_LE(e.cycle, spec.death_window);
    } else {
      EXPECT_FALSE(dead.contains(e.node))
          << describe(e) << " targets a dead node";
    }
  }
  EXPECT_EQ(dead.size(), 5u);
}

TEST(FaultPlan, DeathCountClampedToNodeCount) {
  FaultSpec spec;
  spec.node_deaths = 99;
  const FaultPlan plan = FaultPlan::random(3, 4, spec);
  EXPECT_EQ(plan.events().size(), 4u);
}

TEST(FaultInjector, DeathCycleReportsEarliest) {
  FaultPlan plan;
  plan.add({.kind = FaultKind::kNodeDeath, .node = 2, .cycle = 900});
  plan.add({.kind = FaultKind::kNodeDeath, .node = 2, .cycle = 300});
  FaultInjector inj(std::move(plan));
  ASSERT_TRUE(inj.death_cycle(2).has_value());
  EXPECT_EQ(*inj.death_cycle(2), 300u);
  EXPECT_FALSE(inj.death_cycle(0).has_value());
}

TEST(FaultInjector, WriteFailureBudgetCountsDown) {
  FaultPlan plan;
  plan.add({.kind = FaultKind::kDumpWriteError, .node = 1, .attempts = 2});
  FaultInjector inj(std::move(plan));
  EXPECT_TRUE(inj.next_write_fails(1));
  EXPECT_TRUE(inj.next_write_fails(1));
  EXPECT_FALSE(inj.next_write_fails(1));
  EXPECT_FALSE(inj.next_write_fails(0));
}

TEST(FaultInjector, AlwaysFailNeverRecovers) {
  FaultPlan plan;
  plan.add(
      {.kind = FaultKind::kDumpWriteError, .node = 3, .attempts = kAlwaysFail});
  FaultInjector inj(std::move(plan));
  for (int i = 0; i < 20; ++i) EXPECT_TRUE(inj.next_write_fails(3));
}

TEST(FaultInjector, CorruptDumpTruncatesAndFlips) {
  FaultPlan plan;
  plan.add({.kind = FaultKind::kDumpTruncate, .node = 0, .keep_bytes = 10});
  plan.add({.kind = FaultKind::kDumpBitFlip,
            .node = 0,
            .byte_offset = 4,
            .bit = 3});
  FaultInjector inj(std::move(plan));

  std::vector<std::byte> bytes(100, std::byte{0});
  const auto applied = inj.corrupt_dump(0, bytes);
  ASSERT_EQ(applied.size(), 2u);
  EXPECT_EQ(bytes.size(), 10u);
  EXPECT_EQ(bytes[4], std::byte{0x08});
  EXPECT_EQ(inj.injected_log().size(), 2u);

  // Other nodes' dumps are untouched.
  std::vector<std::byte> other(100, std::byte{0});
  EXPECT_TRUE(inj.corrupt_dump(1, other).empty());
  EXPECT_EQ(other.size(), 100u);
}

TEST(FaultInjector, CounterWrapPreloadSitsBelowTheBoundary) {
  FaultPlan plan;
  plan.add({.kind = FaultKind::kCounterWrap,
            .node = 5,
            .counter = 17,
            .margin = 1000});
  FaultInjector inj(std::move(plan));
  const auto wraps = inj.counter_wraps(5);
  ASSERT_EQ(wraps.size(), 1u);
  EXPECT_EQ(wraps[0].counter, 17u);
  EXPECT_EQ(wraps[0].preload, (u64{1} << 32) - 1000);
  EXPECT_TRUE(inj.counter_wraps(4).empty());
}

}  // namespace
}  // namespace bgp::fault
