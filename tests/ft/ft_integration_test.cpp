// End-to-end FT recovery (ISSUE 3 acceptance): a fixed seed kills 3 of 16
// nodes mid-run with ULFM-style recovery enabled. Every survivor must ride
// through the failures, finalize, and write a minable dump carrying the
// recovery log; the FT-aware miner must account for the casualties and
// pass strict mode over the 13-survivor batch; and the same seed must
// reproduce byte-identical dump files and report.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "common/csv.hpp"
#include "core/session.hpp"
#include "fault/fault.hpp"
#include "ft/ftcomm.hpp"
#include "postproc/pipeline.hpp"
#include "postproc/report.hpp"
#include "runtime/machine.hpp"
#include "runtime/rankctx.hpp"

namespace bgp {
namespace {

namespace fs = std::filesystem;

constexpr u64 kSeed = 20260806;
constexpr unsigned kNodes = 16;
constexpr unsigned kDeaths = 3;

isa::LoopDesc stencil(u64 trip) {
  isa::LoopDesc d;
  d.name = "stencil";
  d.trip = trip;
  d.body.fp_at(isa::FpOp::kFma) = 4;
  d.body.fp_at(isa::FpOp::kAddSub) = 2;
  d.body.int_at(isa::IntOp::kAlu) = 2;
  d.body.ls_at(isa::LsOp::kLoadDouble) = 3;
  d.body.ls_at(isa::LsOp::kStoreDouble) = 1;
  return d;
}

struct FtOutcome {
  std::vector<unsigned> dead;
  std::vector<ft::RecoveryEvent> recovery;
  post::MineResult ft_strict;
  post::MineResult plain_strict;
  std::string metrics_csv;
  std::map<std::string, std::string> dump_bytes;  ///< filename -> contents
};

FtOutcome run_ft(const fs::path& dir) {
  fault::FaultSpec spec;
  spec.node_deaths = kDeaths;
  spec.death_window = 10'000;  // well inside the run: all deaths fire
  fault::FaultInjector inj(fault::FaultPlan::random(kSeed, kNodes, spec));

  rt::MachineConfig mc;
  mc.num_nodes = kNodes;
  mc.mode = sys::OpMode::kSmp1;
  rt::Machine m(mc);
  m.set_fault_injector(&inj);
  ft::FtParams ftp;
  ftp.enabled = true;
  m.set_ft_params(ftp);

  pc::Options o;
  o.app_name = "ftrun";
  o.dump_dir = dir;
  o.fault = &inj;
  pc::Session s(m, o);
  s.link_with_mpi();
  m.run([&](rt::RankCtx& ctx) {
    ft::run_guarded(ctx, [&](rt::RankCtx& c) {
      c.mpi_init();
      for (int i = 0; i < 8; ++i) {
        c.loop(stencil(20'000), {});
        (void)c.allreduce_sum(1.0);
      }
    });
    ft::finalize_guarded(ctx);  // every survivor dumps, whatever happened
  });

  FtOutcome out;
  out.dead = m.dead_nodes();
  out.recovery = m.recovery_log();

  post::MineOptions fopts;
  fopts.strict = true;
  fopts.ft = true;
  fopts.expected_nodes = kNodes;
  out.ft_strict = post::mine(dir, "ftrun", fopts);

  post::MineOptions plain;
  plain.strict = true;
  plain.expected_nodes = kNodes;
  out.plain_strict = post::mine(dir, "ftrun", plain);

  CsvWriter csv;
  post::write_metrics_csv(csv, {out.ft_strict.record});
  out.metrics_csv = csv.text();

  for (const auto& entry : fs::directory_iterator(dir)) {
    std::ifstream in(entry.path(), std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    out.dump_bytes[entry.path().filename().string()] = std::move(bytes);
  }
  return out;
}

class FtRecovery : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test: ctest -j runs fixture tests concurrently.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::temp_directory_path() /
           (std::string("bgpc_ft_itg_") + info->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

TEST_F(FtRecovery, EverySurvivorDumpsAndStrictFtMinePasses) {
  const FtOutcome out = run_ft(dir_);

  // The three deaths fired; nobody was stranded by a cascade, so exactly
  // 13 survivor dumps exist and all of them load and mine.
  ASSERT_EQ(out.dead.size(), kDeaths);
  EXPECT_EQ(out.dump_bytes.size(), kNodes - kDeaths);

  const post::MineResult& res = out.ft_strict;
  EXPECT_TRUE(res.ok) << (res.problems.empty() ? "" : res.problems.front());
  EXPECT_TRUE(res.problems.empty());
  EXPECT_EQ(res.coverage.expected, kNodes);
  EXPECT_EQ(res.coverage.loaded, kNodes - kDeaths);
  EXPECT_EQ(res.coverage.mined, kNodes - kDeaths);
  EXPECT_EQ(res.coverage.failed, kDeaths);
  EXPECT_TRUE(res.coverage.accounted());

  // The record and CSV carry the casualty accounting.
  EXPECT_EQ(res.record.nodes_expected, kNodes);
  EXPECT_EQ(res.record.nodes_mined, kNodes - kDeaths);
  EXPECT_EQ(res.record.nodes_failed, kDeaths);
  EXPECT_GT(res.record.fp.flops(), 0.0);
  EXPECT_NE(out.metrics_csv.find("nodes_failed"), std::string::npos);
  const std::string cov = res.coverage.to_string();
  EXPECT_NE(cov.find("3 death(s) FT-accounted"), std::string::npos) << cov;
}

TEST_F(FtRecovery, TheReportListsEveryDeathWithItsCosts) {
  const FtOutcome out = run_ft(dir_);

  // The miner reconstructs the full recovery log from the survivor dumps.
  EXPECT_EQ(out.ft_strict.recovery, out.recovery);

  unsigned detected = 0, revokes = 0, agrees = 0, shrinks = 0;
  for (const ft::RecoveryEvent& e : out.ft_strict.recovery) {
    switch (e.kind) {
      case ft::RecoveryKind::kDeathDetected:
        ++detected;
        EXPECT_GT(e.cost, 0u);  // the detection latency
        EXPECT_GT(e.aux, 0u);   // the injected death cycle
        break;
      case ft::RecoveryKind::kRevoke: ++revokes; break;
      case ft::RecoveryKind::kAgree:
        ++agrees;
        EXPECT_GT(e.cost, 0u);
        break;
      case ft::RecoveryKind::kShrink:
        ++shrinks;
        EXPECT_GT(e.cost, 0u);
        break;
    }
  }
  EXPECT_EQ(detected, kDeaths);
  EXPECT_GE(revokes, 1u);
  EXPECT_GE(agrees, 1u);
  EXPECT_GE(shrinks, 1u);

  // Every survivor's dump embeds the same recovery section (format v3).
  for (const pc::NodeDump& d : out.ft_strict.dumps) {
    EXPECT_EQ(d.recovery, out.recovery) << "node " << d.node_id;
  }
}

TEST_F(FtRecovery, WithoutTheFtFlagTheMinerStillSeesMissingNodes) {
  const FtOutcome out = run_ft(dir_);

  // Same batch, plain strict mine: the three dead nodes are unexplained
  // missing dumps, so strict refuses — FT accounting is strictly opt-in.
  const post::MineResult& res = out.plain_strict;
  EXPECT_FALSE(res.ok);
  unsigned missing = 0;
  for (const auto& p : res.problems) {
    if (p.find("dump missing") != std::string::npos) ++missing;
  }
  EXPECT_EQ(missing, kDeaths);
}

TEST_F(FtRecovery, SameSeedIsByteIdentical) {
  const fs::path other = dir_.parent_path() / (dir_.filename().string() + "2");
  fs::remove_all(other);
  fs::create_directories(other);

  const FtOutcome a = run_ft(dir_);
  const FtOutcome b = run_ft(other);
  fs::remove_all(other);

  EXPECT_EQ(a.dead, b.dead);
  EXPECT_EQ(a.recovery, b.recovery);
  EXPECT_EQ(a.metrics_csv, b.metrics_csv);
  // Not just the same values: the same bytes in every dump file.
  EXPECT_EQ(a.dump_bytes, b.dump_bytes);
}

}  // namespace
}  // namespace bgp
