// ULFM-style recovery in the MiniMPI runtime: a failed peer raises
// ProcFailedError at the blocked caller instead of cascading the death,
// revoke interrupts posted receives, agree/shrink rebuild the communicator
// over the survivors, and every step is billed deterministic cycle costs.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <memory>
#include <optional>
#include <vector>

#include "fault/fault.hpp"
#include "ft/ftcomm.hpp"
#include "runtime/machine.hpp"
#include "runtime/rankctx.hpp"

namespace bgp {
namespace {

rt::MachineConfig smp(unsigned nodes) {
  rt::MachineConfig cfg;
  cfg.num_nodes = nodes;
  cfg.mode = sys::OpMode::kSmp1;
  return cfg;
}

isa::LoopDesc work(u64 trip) {
  isa::LoopDesc d;
  d.name = "work";
  d.trip = trip;
  d.body.fp_at(isa::FpOp::kFma) = 4;
  d.body.int_at(isa::IntOp::kAlu) = 2;
  return d;
}

ft::FtParams ft_on(cycles_t detect_latency = 2000) {
  ft::FtParams p;
  p.enabled = true;
  p.detect_latency = detect_latency;
  return p;
}

fault::FaultInjector kill_node(unsigned node, cycles_t cycle = 1) {
  fault::FaultPlan plan;
  plan.add({.kind = fault::FaultKind::kNodeDeath, .node = node,
            .cycle = cycle});
  return fault::FaultInjector(std::move(plan));
}

std::vector<ft::RecoveryEvent> events_of(const rt::Machine& m,
                                         ft::RecoveryKind kind) {
  std::vector<ft::RecoveryEvent> out;
  for (const ft::RecoveryEvent& e : m.recovery_log()) {
    if (e.kind == kind) out.push_back(e);
  }
  return out;
}

TEST(FtDetect, RecvOnDeadPeerRaisesInsteadOfCascading) {
  fault::FaultInjector inj = kill_node(0);
  rt::Machine m(smp(2));
  m.set_fault_injector(&inj);
  m.set_ft_params(ft_on());

  std::vector<int> caught(m.num_ranks(), 0);
  std::vector<int> finished(m.num_ranks(), 0);
  m.run([&](rt::RankCtx& ctx) {
    if (ctx.rank() == 0) {
      ctx.loop(work(300), {});  // dies here
      std::array<std::byte, 8> buf{};
      ctx.send(1, buf);
    } else {
      std::array<std::byte, 8> buf{};
      try {
        ctx.recv(0, buf);  // the message never comes
      } catch (const ft::ProcFailedError&) {
        caught[ctx.rank()] = 1;
      }
      finished[ctx.rank()] = 1;
    }
  });

  // Rank 1 got an error return, not an inherited death (the PR 1 cascade).
  EXPECT_EQ(m.dead_ranks(), (std::vector<unsigned>{0}));
  EXPECT_TRUE(m.stranded_ranks().empty());
  EXPECT_EQ(caught[1], 1);
  EXPECT_EQ(finished[1], 1);
  EXPECT_EQ(m.dead_nodes(), (std::vector<unsigned>{0}));

  const auto detected = events_of(m, ft::RecoveryKind::kDeathDetected);
  ASSERT_EQ(detected.size(), 1u);
  EXPECT_EQ(detected[0].node, 0u);
  EXPECT_EQ(detected[0].rank, 1u);
  EXPECT_EQ(detected[0].aux, 1u);  // the injected death cycle
}

TEST(FtDetect, SendToDeadPeerRaises) {
  fault::FaultInjector inj = kill_node(0);
  rt::Machine m(smp(2));
  m.set_fault_injector(&inj);
  m.set_ft_params(ft_on());

  std::vector<int> caught(m.num_ranks(), 0);
  m.run([&](rt::RankCtx& ctx) {
    if (ctx.rank() == 0) {
      ctx.loop(work(300), {});
      ctx.loop(work(300), {});  // dies at this checkpoint
    } else {
      ctx.loop(work(2000), {});  // outlive the peer
      std::array<std::byte, 8> buf{};
      try {
        ctx.send(0, buf);
      } catch (const ft::ProcFailedError&) {
        caught[ctx.rank()] = 1;
      }
    }
  });
  EXPECT_EQ(caught[1], 1);
  EXPECT_TRUE(m.stranded_ranks().empty());
}

TEST(FtDetect, DetectionLatencyIsBilledToTheDetectingCore) {
  const auto detect = [](cycles_t latency) {
    fault::FaultInjector inj = kill_node(0);
    rt::Machine m(smp(2));
    m.set_fault_injector(&inj);
    m.set_ft_params(ft_on(latency));
    m.run([&](rt::RankCtx& ctx) {
      if (ctx.rank() == 0) {
        ctx.loop(work(300), {});
        ctx.loop(work(300), {});  // dies at this checkpoint
      } else {
        std::array<std::byte, 8> buf{};
        try {
          ctx.recv(0, buf);
        } catch (const ft::ProcFailedError&) {
        }
      }
    });
    const auto detected = events_of(m, ft::RecoveryKind::kDeathDetected);
    EXPECT_EQ(detected.size(), 1u);
    return detected.at(0);
  };
  const ft::RecoveryEvent fast = detect(1000);
  const ft::RecoveryEvent slow = detect(5000);
  EXPECT_EQ(fast.cost, 1000u);
  EXPECT_EQ(slow.cost, 5000u);
  // Identical programs: the detection completes exactly the extra latency
  // later.
  EXPECT_EQ(slow.cycle - fast.cycle, 4000u);
}

TEST(FtDetect, SimultaneousDetectionByTwoPeersIsLoggedOnce) {
  fault::FaultInjector inj = kill_node(0);
  rt::Machine m(smp(3));
  m.set_fault_injector(&inj);
  m.set_ft_params(ft_on());

  std::vector<int> caught(m.num_ranks(), 0);
  m.run([&](rt::RankCtx& ctx) {
    if (ctx.rank() == 0) {
      ctx.loop(work(300), {});
      ctx.loop(work(300), {});  // dies at this checkpoint
      return;
    }
    std::array<std::byte, 8> buf{};
    try {
      ctx.recv(0, buf);  // ranks 1 and 2 both block on the dead peer
    } catch (const ft::ProcFailedError&) {
      caught[ctx.rank()] = 1;
    }
  });

  // Both blocked peers get the error, but the death is logged exactly once.
  EXPECT_EQ(caught[1], 1);
  EXPECT_EQ(caught[2], 1);
  EXPECT_EQ(events_of(m, ft::RecoveryKind::kDeathDetected).size(), 1u);
  EXPECT_TRUE(m.stranded_ranks().empty());
}

TEST(FtRecover, RevokeInterruptsAPostedRecv) {
  fault::FaultInjector inj = kill_node(2);
  rt::Machine m(smp(3));
  m.set_fault_injector(&inj);
  m.set_ft_params(ft_on());

  std::vector<int> revoked_seen(m.num_ranks(), 0);
  m.run([&](rt::RankCtx& ctx) {
    if (ctx.rank() == 2) {
      ctx.loop(work(300), {});
      ctx.loop(work(300), {});  // dies at this checkpoint
      return;
    }
    std::array<std::byte, 8> buf{};
    if (ctx.rank() == 0) {
      try {
        ctx.recv(2, buf);
      } catch (const ft::ProcFailedError&) {
      }
      ft::FtComm comm(ctx);
      comm.revoke();  // must reach rank 1, parked in a recv on a LIVE peer
      comm.shrink(comm.agree());
    } else {
      try {
        ctx.recv(0, buf);  // rank 0 never sends: only the revoke ends this
      } catch (const ft::RevokedError&) {
        revoked_seen[ctx.rank()] = 1;
      }
      ft::FtComm comm(ctx);
      comm.shrink(comm.agree());  // agree/shrink are legal while revoked
    }
  });

  EXPECT_EQ(revoked_seen[1], 1);
  EXPECT_TRUE(m.stranded_ranks().empty());
  EXPECT_EQ(m.comm_group(), (std::vector<unsigned>{0, 1}));
  EXPECT_EQ(m.comm_epoch(), 1u);
  EXPECT_FALSE(m.comm_revoked());
  EXPECT_EQ(events_of(m, ft::RecoveryKind::kRevoke).size(), 1u);
  const auto shrinks = events_of(m, ft::RecoveryKind::kShrink);
  ASSERT_EQ(shrinks.size(), 1u);
  EXPECT_EQ(shrinks[0].aux, 2u);  // survivor communicator size
  EXPECT_GT(shrinks[0].cost, 0u);
}

TEST(FtRecover, GuardedRunShrinksAndCollectivesRouteAroundTheDead) {
  fault::FaultInjector inj = kill_node(2);
  rt::Machine m(smp(4));
  m.set_fault_injector(&inj);
  m.set_ft_params(ft_on());

  std::vector<int> clean(m.num_ranks(), -1);
  std::vector<unsigned> sizes(m.num_ranks(), 0);
  std::vector<unsigned> new_ranks(m.num_ranks(), ~0u);
  std::vector<double> post_sum(m.num_ranks(), 0.0);
  m.run([&](rt::RankCtx& ctx) {
    clean[ctx.rank()] = ft::run_guarded(ctx, [&](rt::RankCtx& c) {
                          for (int i = 0; i < 4; ++i) {
                            c.loop(work(400), {});
                            (void)c.allreduce_sum(1.0);
                          }
                        })
                            ? 1
                            : 0;
    ft::FtComm comm(ctx);
    sizes[ctx.rank()] = comm.size();
    new_ranks[ctx.rank()] = comm.new_rank();
    // The communicator is whole again: plain collectives span exactly the
    // survivors.
    post_sum[ctx.rank()] = ctx.allreduce_sum(1.0);
  });

  for (unsigned r : {0u, 1u, 3u}) {
    EXPECT_EQ(clean[r], 0) << r;  // every survivor saw the recovery
    EXPECT_EQ(sizes[r], 3u) << r;
    EXPECT_DOUBLE_EQ(post_sum[r], 3.0) << r;
  }
  EXPECT_EQ(new_ranks[0], 0u);
  EXPECT_EQ(new_ranks[1], 1u);
  EXPECT_EQ(new_ranks[3], 2u);  // renumbered past the hole
  EXPECT_EQ(m.comm_group(), (std::vector<unsigned>{0, 1, 3}));
  EXPECT_EQ(m.comm_epoch(), 1u);
}

// A second node dies while the survivors are mid-recovery from the first
// death (the "shrink coordinator dies during agreement" scenario). The
// protocol must run another recovery round and still terminate with every
// death accounted. The mid-recovery cycle is taken from a first, single-
// death run of the same deterministic program.
TEST(FtRecover, DeathDuringRecoveryTriggersAnotherRound) {
  const auto run = [](std::optional<cycles_t> second_death) {
    fault::FaultPlan plan;
    plan.add({.kind = fault::FaultKind::kNodeDeath, .node = 1, .cycle = 1});
    if (second_death) {
      plan.add({.kind = fault::FaultKind::kNodeDeath, .node = 0,
                .cycle = *second_death});
    }
    fault::FaultInjector inj(std::move(plan));
    auto m = std::make_unique<rt::Machine>(smp(4));
    m->set_fault_injector(&inj);
    m->set_ft_params(ft_on());
    m->run([&](rt::RankCtx& ctx) {
      ft::run_guarded(ctx, [&](rt::RankCtx& c) {
        for (int i = 0; i < 6; ++i) {
          c.loop(work(400), {});
          (void)c.allreduce_sum(1.0);
        }
      });
      // Keep recovering until a whole barrier passes clean (bounded: each
      // round removes at least one dead rank).
      for (int round = 0; round < 8; ++round) {
        if (ft::run_guarded(ctx, [](rt::RankCtx& c) { c.barrier(); })) break;
      }
    });
    return m;
  };

  const auto first = run(std::nullopt);
  const auto revokes = events_of(*first, ft::RecoveryKind::kRevoke);
  ASSERT_EQ(revokes.size(), 1u);

  // Land the second death between the revoke and the shrink: node 0 is in
  // the middle of the agreement when it dies.
  const auto second = run(revokes[0].cycle + 100);
  EXPECT_EQ(second->dead_nodes(), (std::vector<unsigned>{0, 1}));
  EXPECT_TRUE(second->stranded_ranks().empty());
  EXPECT_EQ(events_of(*second, ft::RecoveryKind::kDeathDetected).size(), 2u);
  const auto shrinks = events_of(*second, ft::RecoveryKind::kShrink);
  ASSERT_GE(shrinks.size(), 1u);
  EXPECT_EQ(shrinks.back().aux, 2u);  // final communicator: the 2 survivors
  EXPECT_EQ(second->comm_group(), (std::vector<unsigned>{2, 3}));
  EXPECT_FALSE(second->comm_revoked());
}

TEST(FtOff, DisabledMeansTheCascadeOfPr1AndNoRecoveryLog) {
  fault::FaultInjector inj = kill_node(0);
  rt::Machine m(smp(2));
  m.set_fault_injector(&inj);  // ft params left at the default: disabled
  m.run([&](rt::RankCtx& ctx) {
    if (ctx.rank() == 0) {
      ctx.loop(work(300), {});
      std::array<std::byte, 8> buf{};
      ctx.send(1, buf);
    } else {
      std::array<std::byte, 8> buf{};
      ctx.recv(0, buf);
    }
  });
  EXPECT_EQ(m.stranded_ranks(), (std::vector<unsigned>{1}));
  EXPECT_TRUE(m.recovery_log().empty());
}

TEST(FtOff, EnabledWithoutFailuresChangesNothing) {
  const auto elapsed = [](bool ft_enabled) {
    rt::Machine m(smp(4));
    if (ft_enabled) m.set_ft_params(ft_on());
    std::vector<double> sums(m.num_ranks(), 0.0);
    m.run([&](rt::RankCtx& ctx) {
      const bool ok = ft::run_guarded(ctx, [&](rt::RankCtx& c) {
        for (int i = 0; i < 3; ++i) {
          c.loop(work(500), {});
          sums[c.rank()] += c.allreduce_sum(1.0);
          c.barrier();
        }
      });
      EXPECT_TRUE(ok);
    });
    for (double s : sums) EXPECT_DOUBLE_EQ(s, 12.0);
    EXPECT_TRUE(m.recovery_log().empty());
    return m.elapsed();
  };
  // The pruned-tree cost model degenerates to the full formula when the
  // whole partition is live: enabling FT must not move a single cycle.
  EXPECT_EQ(elapsed(false), elapsed(true));
}

TEST(FtOff, RecoveryOpsWithoutFtAreALogicError) {
  rt::Machine m(smp(2));
  std::vector<int> threw(m.num_ranks(), 0);
  m.run([&](rt::RankCtx& ctx) {
    try {
      ft::FtComm(ctx).revoke();
    } catch (const std::logic_error&) {
      threw[ctx.rank()] = 1;
    }
  });
  EXPECT_EQ(threw[0], 1);
  EXPECT_EQ(threw[1], 1);
}

TEST(FtPlan, DeathsDuringRecoveryLandAfterThePrimaryWave) {
  fault::FaultSpec spec;
  spec.node_deaths = 2;
  spec.deaths_during_recovery = 2;
  spec.death_window = 10'000;
  const fault::FaultPlan plan = fault::FaultPlan::random(5, 16, spec);

  std::vector<const fault::FaultEvent*> deaths;
  for (const fault::FaultEvent& e : plan.events()) {
    if (e.kind == fault::FaultKind::kNodeDeath) deaths.push_back(&e);
  }
  ASSERT_EQ(deaths.size(), 4u);
  // Distinct victims.
  std::vector<u32> victims;
  for (const auto* e : deaths) victims.push_back(e->node);
  std::sort(victims.begin(), victims.end());
  EXPECT_EQ(std::unique(victims.begin(), victims.end()), victims.end());
  // The two secondary deaths (generated after the primaries) strike
  // strictly later than every primary death.
  const cycles_t last_primary =
      std::max(deaths[0]->cycle, deaths[1]->cycle);
  EXPECT_GT(deaths[2]->cycle, last_primary);
  EXPECT_GT(deaths[3]->cycle, last_primary);

  // Same knobs, same seed: identical plan.
  const fault::FaultPlan again = fault::FaultPlan::random(5, 16, spec);
  ASSERT_EQ(again.events().size(), plan.events().size());
  for (std::size_t i = 0; i < plan.events().size(); ++i) {
    EXPECT_EQ(fault::describe(plan.events()[i]),
              fault::describe(again.events()[i]))
        << i;
  }
}

}  // namespace
}  // namespace bgp
