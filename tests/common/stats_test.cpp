#include "common/stats.hpp"

#include <gtest/gtest.h>

namespace bgp {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.min(), 3.5);
  EXPECT_EQ(s.max(), 3.5);
  EXPECT_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownSequence) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of this classic sequence is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, NegativeValues) {
  RunningStats s;
  s.add(-10.0);
  s.add(10.0);
  EXPECT_EQ(s.min(), -10.0);
  EXPECT_EQ(s.max(), 10.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(RunningStats, LargeCountStable) {
  RunningStats s;
  for (int i = 0; i < 1000000; ++i) s.add(1.0);
  EXPECT_DOUBLE_EQ(s.mean(), 1.0);
  EXPECT_NEAR(s.variance(), 0.0, 1e-9);
}

}  // namespace
}  // namespace bgp
