#include "common/strfmt.hpp"

#include <gtest/gtest.h>

namespace bgp {
namespace {

TEST(StrFmt, BasicFormatting) {
  EXPECT_EQ(strfmt("x=%d", 42), "x=42");
  EXPECT_EQ(strfmt("%s/%s", "a", "b"), "a/b");
  EXPECT_EQ(strfmt("%.2f", 3.14159), "3.14");
  EXPECT_EQ(strfmt("empty"), "empty");
}

TEST(StrFmt, LongOutput) {
  const std::string s = strfmt("%0512d", 7);
  EXPECT_EQ(s.size(), 512u);
  EXPECT_EQ(s.back(), '7');
}

TEST(HumanBytes, Units) {
  EXPECT_EQ(human_bytes(512), "512.0 B");
  EXPECT_EQ(human_bytes(4.0 * 1024 * 1024), "4.0 MiB");
  EXPECT_EQ(human_bytes(1536), "1.5 KiB");
}

}  // namespace
}  // namespace bgp
