#include "common/binio.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace bgp {
namespace {

TEST(BinIo, ScalarRoundTrip) {
  BinaryWriter w;
  w.put<u32>(0xDEADBEEF);
  w.put<u64>(0x0123456789ABCDEFull);
  w.put<double>(3.14159);
  w.put<u8>(7);

  BinaryReader r(w.buffer());
  EXPECT_EQ(r.get<u32>(), 0xDEADBEEFu);
  EXPECT_EQ(r.get<u64>(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.get<double>(), 3.14159);
  EXPECT_EQ(r.get<u8>(), 7);
  EXPECT_TRUE(r.at_end());
}

TEST(BinIo, StringRoundTrip) {
  BinaryWriter w;
  w.put_string("hello, world");
  w.put_string("");
  w.put_string(std::string("embedded\0null", 13));

  BinaryReader r(w.buffer());
  EXPECT_EQ(r.get_string(), "hello, world");
  EXPECT_EQ(r.get_string(), "");
  EXPECT_EQ(r.get_string(), std::string("embedded\0null", 13));
  EXPECT_TRUE(r.at_end());
}

TEST(BinIo, TruncatedReadThrows) {
  BinaryWriter w;
  w.put<u32>(1);
  BinaryReader r(w.buffer());
  EXPECT_EQ(r.get<u32>(), 1u);
  EXPECT_THROW(r.get<u8>(), BinIoError);
}

TEST(BinIo, TruncatedStringThrows) {
  BinaryWriter w;
  w.put<u32>(100);  // claims 100 bytes follow, but none do
  BinaryReader r(w.buffer());
  EXPECT_THROW(r.get_string(), BinIoError);
}

TEST(BinIo, FileRoundTrip) {
  const auto path =
      std::filesystem::temp_directory_path() / "bgp_binio_test.bin";
  BinaryWriter w;
  for (u64 i = 0; i < 1000; ++i) w.put<u64>(i * i);
  w.write_file(path);

  const auto bytes = read_file_bytes(path);
  ASSERT_EQ(bytes.size(), w.size());
  BinaryReader r(bytes);
  for (u64 i = 0; i < 1000; ++i) EXPECT_EQ(r.get<u64>(), i * i);
  std::filesystem::remove(path);
}

TEST(BinIo, MissingFileThrows) {
  EXPECT_THROW(read_file_bytes("/nonexistent/bgp/file.bin"), BinIoError);
}

TEST(BinIo, RemainingAndPosition) {
  BinaryWriter w;
  w.put<u64>(1);
  w.put<u64>(2);
  BinaryReader r(w.buffer());
  EXPECT_EQ(r.remaining(), 16u);
  r.get<u64>();
  EXPECT_EQ(r.position(), 8u);
  EXPECT_EQ(r.remaining(), 8u);
}

}  // namespace
}  // namespace bgp
