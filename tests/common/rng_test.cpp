#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace bgp {
namespace {

TEST(NasRng, ProducesValuesInOpenUnitInterval) {
  NasRng rng;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next();
    EXPECT_GT(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(NasRng, StateStaysBelowTwoPow46) {
  NasRng rng;
  for (int i = 0; i < 10000; ++i) {
    rng.next();
    EXPECT_LT(rng.state(), 70368744177664.0);  // 2^46
    EXPECT_GE(rng.state(), 0.0);
    // State must be an exact integer (the LCG is over integers).
    EXPECT_EQ(rng.state(), std::floor(rng.state()));
  }
}

TEST(NasRng, DeterministicForFixedSeed) {
  NasRng a(12345.0);
  NasRng b(12345.0);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(NasRng, JumpMatchesSequentialAdvance) {
  // jump(seed, a, k) must equal the state after k sequential next() calls.
  for (u64 k : {0ull, 1ull, 2ull, 17ull, 100ull, 12345ull}) {
    NasRng seq(NasRng::kDefaultSeed);
    for (u64 i = 0; i < k; ++i) seq.next();
    const double jumped =
        NasRng::jump(NasRng::kDefaultSeed, NasRng::kDefaultA, k);
    EXPECT_EQ(seq.state(), jumped) << "k=" << k;
  }
}

TEST(NasRng, MeanIsApproximatelyHalf) {
  NasRng rng;
  double sum = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += rng.next();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Xoshiro, DoublesInHalfOpenUnitInterval) {
  Xoshiro256pp rng(42);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Xoshiro, NextBelowRespectsBound) {
  Xoshiro256pp rng(7);
  for (u64 bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Xoshiro, DifferentSeedsDiverge) {
  Xoshiro256pp a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

}  // namespace
}  // namespace bgp
