// CRC32 (IEEE 802.3 reflected) used by the v2 dump format's per-section
// checksums.
#include "common/crc.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

namespace bgp {
namespace {

std::vector<std::byte> bytes_of(const char* s) {
  std::vector<std::byte> v(std::strlen(s));
  std::memcpy(v.data(), s, v.size());
  return v;
}

TEST(Crc32, KnownVectors) {
  // The standard check value for this polynomial/reflection combination.
  EXPECT_EQ(crc32(bytes_of("123456789")), 0xCBF43926u);
  EXPECT_EQ(crc32({}), 0x00000000u);
  EXPECT_EQ(crc32(bytes_of("a")), 0xE8B7BE43u);
}

TEST(Crc32, DetectsSingleBitFlips) {
  auto data = bytes_of("the quick brown fox jumps over the lazy dog");
  const u32 clean = crc32(data);
  for (std::size_t byte = 0; byte < data.size(); byte += 7) {
    for (unsigned bit = 0; bit < 8; ++bit) {
      data[byte] ^= std::byte{static_cast<unsigned char>(1u << bit)};
      EXPECT_NE(crc32(data), clean) << "byte " << byte << " bit " << bit;
      data[byte] ^= std::byte{static_cast<unsigned char>(1u << bit)};
    }
  }
  EXPECT_EQ(crc32(data), clean);
}

TEST(Crc32, ChainsAcrossSplits) {
  const auto data = bytes_of("split me anywhere, the result must not change");
  const u32 whole = crc32(data);
  for (std::size_t cut = 0; cut <= data.size(); ++cut) {
    const std::span<const std::byte> all(data);
    const u32 chained = crc32(all.subspan(cut), crc32(all.first(cut)));
    EXPECT_EQ(chained, whole) << "cut at " << cut;
  }
}

}  // namespace
}  // namespace bgp
