#include "common/csv.hpp"

#include <gtest/gtest.h>

namespace bgp {
namespace {

TEST(Csv, SimpleRows) {
  CsvWriter csv;
  csv.header({"app", "mflops"});
  csv.row({"FT", "1234.5"});
  EXPECT_EQ(csv.text(), "app,mflops\nFT,1234.5\n");
  EXPECT_EQ(csv.rows(), 2u);
}

TEST(Csv, EscapesCommasQuotesNewlines) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("two\nlines"), "\"two\nlines\"");
}

TEST(Csv, EscapedCellsInRow) {
  CsvWriter csv;
  csv.row({"a,b", "c"});
  EXPECT_EQ(csv.text(), "\"a,b\",c\n");
}

TEST(Csv, EmptyCells) {
  CsvWriter csv;
  csv.row({"", "", ""});
  EXPECT_EQ(csv.text(), ",,\n");
}

}  // namespace
}  // namespace bgp
