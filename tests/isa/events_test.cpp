#include "isa/events.hpp"

#include <gtest/gtest.h>

#include <set>

namespace bgp::isa {
namespace {

TEST(Events, ModeAndCounterDecomposition) {
  EXPECT_EQ(event_mode(0), 0);
  EXPECT_EQ(event_counter(0), 0);
  EXPECT_EQ(event_mode(255), 0);
  EXPECT_EQ(event_counter(255), 255);
  EXPECT_EQ(event_mode(256), 1);
  EXPECT_EQ(event_counter(256), 0);
  EXPECT_EQ(event_mode(1023), 3);
  EXPECT_EQ(event_counter(1023), 255);
}

TEST(Events, TableHas1024Entries) {
  EXPECT_EQ(event_table().size(), 1024u);
}

TEST(Events, PerCoreEventsAreInMode0) {
  for (unsigned core = 0; core < kCoresPerNode; ++core) {
    EXPECT_EQ(event_mode(ev::fpu_op(core, FpOp::kSimdFma)), 0) << core;
    EXPECT_EQ(event_mode(ev::cycle_count(core)), 0) << core;
    EXPECT_EQ(event_mode(ev::l2(core, L2Event::kStreamDetected)), 0) << core;
  }
}

TEST(Events, MemoryEventsAreInMode1) {
  EXPECT_EQ(event_mode(ev::l3(L3Event::kReadMiss)), 1);
  EXPECT_EQ(event_mode(ev::ddr(0, DdrEvent::kBytesRead16B)), 1);
  EXPECT_EQ(event_mode(ev::ddr(1, DdrEvent::kQueueStallCycles)), 1);
  EXPECT_EQ(event_mode(ev::snoop(SnoopEvent::kRequests)), 1);
}

TEST(Events, NetworkEventsAreInMode2) {
  EXPECT_EQ(event_mode(ev::torus(TorusEvent::kHopsTotal)), 2);
  EXPECT_EQ(event_mode(ev::collective(CollectiveEvent::kBytes32B)), 2);
  EXPECT_EQ(event_mode(ev::barrier(BarrierEvent::kWaitCycles)), 2);
}

TEST(Events, SystemEventsAreInMode3PerSlot) {
  for (unsigned slot = 0; slot < 4; ++slot) {
    EXPECT_EQ(event_mode(ev::system(SysEvent::kUpcOverheadCycles, slot)), 3);
  }
  EXPECT_NE(ev::system(SysEvent::kMpiSends, 0), ev::system(SysEvent::kMpiSends, 1));
}

TEST(Events, NoCollisionsAmongNamedEvents) {
  // Every non-reserved event id must be unique (the builders must not
  // overlap within a mode's 256 slots).
  std::set<EventId> seen;
  unsigned named = 0;
  for (const auto& info : event_table()) {
    if (info.unit == Unit::kReserved) continue;
    ++named;
    EXPECT_TRUE(seen.insert(info.id).second) << "dup id " << info.id;
    EXPECT_NE(info.name, "RESERVED");
  }
  // 4 cores * (8 fp + 6 ls + 4 int + 2 + 7 L1D + 2 L1I + 8 L2) = 148
  // + 9 L3 + 12 DDR + 4 snoop + 11 torus + 3 coll + 2 barrier + 44 sys
  EXPECT_EQ(named, 4 * 37 + 9 + 12 + 4 + 11 + 3 + 2 + 4 * 11);
}

TEST(Events, InfoNamesAreDescriptive) {
  EXPECT_EQ(event_info(ev::fpu_op(0, FpOp::kSimdFma)).name,
            "CORE0_fp_simd_fma");
  EXPECT_EQ(event_info(ev::l3(L3Event::kWritebackToDdr)).name,
            "L3_WRITEBACK_TO_DDR");
  EXPECT_EQ(event_info(ev::ddr(1, DdrEvent::kBusyCycles)).name,
            "DDR1_BUSY_CYCLES");
  EXPECT_EQ(event_info(ev::cycle_count(2)).name, "CORE2_CYCLE_COUNT");
}

TEST(Events, OutOfRangeInfoThrows) {
  EXPECT_THROW(event_info(1024), std::out_of_range);
}

TEST(Events, CoreSlicesDoNotOverlap) {
  // The last event of core c's slice must precede the first of core c+1.
  for (unsigned core = 0; core + 1 < kCoresPerNode; ++core) {
    EXPECT_LT(ev::l2(core, L2Event::kStreamDetected),
              ev::fpu_op(core + 1, FpOp::kAddSub));
  }
}

}  // namespace
}  // namespace bgp::isa
