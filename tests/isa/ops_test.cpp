#include "isa/ops.hpp"

#include <gtest/gtest.h>

namespace bgp::isa {
namespace {

TEST(Ops, FlopsPerOpMatchesPaperWeights) {
  // MFLOPS computation weights (paper §IV): scalar ops 1 flop, FMA 2,
  // SIMD add/mult 2, SIMD FMA 4.
  EXPECT_EQ(flops_per_op(FpOp::kAddSub), 1u);
  EXPECT_EQ(flops_per_op(FpOp::kMult), 1u);
  EXPECT_EQ(flops_per_op(FpOp::kDiv), 1u);
  EXPECT_EQ(flops_per_op(FpOp::kFma), 2u);
  EXPECT_EQ(flops_per_op(FpOp::kSimdAddSub), 2u);
  EXPECT_EQ(flops_per_op(FpOp::kSimdMult), 2u);
  EXPECT_EQ(flops_per_op(FpOp::kSimdDiv), 2u);
  EXPECT_EQ(flops_per_op(FpOp::kSimdFma), 4u);
}

TEST(Ops, SimdClassification) {
  EXPECT_FALSE(is_simd(FpOp::kAddSub));
  EXPECT_FALSE(is_simd(FpOp::kFma));
  EXPECT_TRUE(is_simd(FpOp::kSimdAddSub));
  EXPECT_TRUE(is_simd(FpOp::kSimdFma));
}

TEST(Ops, BytesPerLsOp) {
  EXPECT_EQ(bytes_per_op(LsOp::kLoadSingle), 4u);
  EXPECT_EQ(bytes_per_op(LsOp::kLoadDouble), 8u);
  EXPECT_EQ(bytes_per_op(LsOp::kLoadQuad), 16u);
  EXPECT_EQ(bytes_per_op(LsOp::kStoreQuad), 16u);
}

TEST(Ops, LoadClassification) {
  EXPECT_TRUE(is_load(LsOp::kLoadQuad));
  EXPECT_FALSE(is_load(LsOp::kStoreDouble));
}

TEST(OpMix, Totals) {
  OpMix m;
  m.fp_at(FpOp::kFma) = 10;       // 20 flops
  m.fp_at(FpOp::kSimdFma) = 5;    // 20 flops
  m.fp_at(FpOp::kAddSub) = 3;     // 3 flops
  m.ls_at(LsOp::kLoadDouble) = 7; // 56 bytes loaded
  m.ls_at(LsOp::kStoreQuad) = 2;  // 32 bytes stored
  m.int_at(IntOp::kBranch) = 4;

  EXPECT_EQ(m.total_fp_instructions(), 18u);
  EXPECT_EQ(m.total_instructions(), 18u + 9u + 4u);
  EXPECT_EQ(m.total_flops(), 43u);
  EXPECT_EQ(m.bytes_loaded(), 56u);
  EXPECT_EQ(m.bytes_stored(), 32u);
}

TEST(OpMix, SumAndScale) {
  OpMix a;
  a.fp_at(FpOp::kMult) = 2;
  a.ls_at(LsOp::kLoadDouble) = 1;
  OpMix b;
  b.fp_at(FpOp::kMult) = 3;
  b.int_at(IntOp::kAlu) = 5;

  OpMix c = a;
  c += b;
  EXPECT_EQ(c.fp_at(FpOp::kMult), 5u);
  EXPECT_EQ(c.ls_at(LsOp::kLoadDouble), 1u);
  EXPECT_EQ(c.int_at(IntOp::kAlu), 5u);

  const OpMix s = a.scaled(10);
  EXPECT_EQ(s.fp_at(FpOp::kMult), 20u);
  EXPECT_EQ(s.ls_at(LsOp::kLoadDouble), 10u);
}

TEST(OpMix, EqualityAndDefaultZero) {
  OpMix a, b;
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.total_instructions(), 0u);
  b.fp_at(FpOp::kDiv) = 1;
  EXPECT_NE(a, b);
}

TEST(Ops, Names) {
  EXPECT_EQ(to_string(FpOp::kSimdFma), "fp_simd_fma");
  EXPECT_EQ(to_string(LsOp::kLoadQuad), "load_quad");
  EXPECT_EQ(to_string(IntOp::kBranch), "branch");
}

}  // namespace
}  // namespace bgp::isa
