#include "net/torus.hpp"

#include <gtest/gtest.h>

#include <map>

namespace bgp::net {
namespace {

TEST(Shape, FactorizationIsNearCubic) {
  EXPECT_EQ(Shape::for_nodes(8), (Shape{2, 2, 2}));
  EXPECT_EQ(Shape::for_nodes(32), (Shape{4, 4, 2}));
  EXPECT_EQ(Shape::for_nodes(64), (Shape{4, 4, 4}));
  EXPECT_EQ(Shape::for_nodes(128), (Shape{8, 4, 4}));
  EXPECT_EQ(Shape::for_nodes(1), (Shape{1, 1, 1}));
  EXPECT_EQ(Shape::for_nodes(7), (Shape{7, 1, 1}));  // prime: a ring
}

TEST(Shape, InvalidNodeCount) {
  EXPECT_THROW((void)Shape::for_nodes(0), std::invalid_argument);
}

TEST(Torus, CoordRoundTrip) {
  Torus t(Shape{4, 4, 2});
  for (unsigned n = 0; n < 32; ++n) {
    EXPECT_EQ(t.node_of(t.coord_of(n)), n);
  }
  EXPECT_THROW((void)t.coord_of(32), std::out_of_range);
}

TEST(Torus, HopsUseWraparound) {
  Torus t(Shape{8, 1, 1});
  EXPECT_EQ(t.hops(0, 1), 1u);
  EXPECT_EQ(t.hops(0, 4), 4u);  // halfway: either way is 4
  EXPECT_EQ(t.hops(0, 7), 1u);  // wraps
  EXPECT_EQ(t.hops(1, 6), 3u);  // wraps via 0
}

TEST(Torus, HopsAreSymmetricAndZeroOnSelf) {
  Torus t(Shape{4, 4, 2});
  for (unsigned a = 0; a < 32; a += 5) {
    EXPECT_EQ(t.hops(a, a), 0u);
    for (unsigned b = 0; b < 32; b += 3) {
      EXPECT_EQ(t.hops(a, b), t.hops(b, a));
    }
  }
}

TEST(Torus, TriangleInequality) {
  Torus t(Shape{4, 4, 4});
  for (unsigned a = 0; a < 64; a += 7) {
    for (unsigned b = 0; b < 64; b += 5) {
      for (unsigned c = 0; c < 64; c += 11) {
        EXPECT_LE(t.hops(a, c), t.hops(a, b) + t.hops(b, c));
      }
    }
  }
}

TEST(Torus, MaxHopsBoundedByShape) {
  Torus t(Shape{4, 4, 2});
  for (unsigned a = 0; a < 32; ++a) {
    for (unsigned b = 0; b < 32; ++b) {
      EXPECT_LE(t.hops(a, b), 2u + 2u + 1u);  // half of each dimension
    }
  }
}

TEST(Torus, TransferTimeGrowsWithDistanceAndSize) {
  Torus t(Shape{8, 8, 8});
  EXPECT_EQ(t.transfer_cycles(0, 0, 4096), 0u);
  const auto near = t.transfer_cycles(0, 1, 1024);
  const auto far = t.transfer_cycles(0, 7 * 8 * 8 / 2 + 4, 1024);
  EXPECT_LT(near, far);
  EXPECT_LT(t.transfer_cycles(0, 1, 1024), t.transfer_cycles(0, 1, 64 * 1024));
}

TEST(Torus, NearestNeighbourLatencyIsSubMicrosecond) {
  // BG/P nearest-neighbour latency is ~0.1 us; our model should be in that
  // ballpark for a small packet (< 2000 cycles at 850 MHz ~= 2.3 us).
  Torus t(Shape{8, 4, 4});
  EXPECT_LT(t.transfer_cycles(0, 1, 256), 2000u);
}

TEST(Torus, RecordsEventsOnBothEndpoints) {
  class Recorder final : public mem::EventSink {
   public:
    void event(isa::EventId id, u64 count) override { counts[id] += count; }
    std::map<isa::EventId, u64> counts;
  };
  Torus t(Shape{4, 1, 1});
  Recorder src, dst;
  t.attach_sink(0, &src);
  t.attach_sink(1, &dst);
  t.record_transfer(0, 1, 1024);  // 4 packets of 256 B
  namespace ev = isa::ev;
  EXPECT_EQ(src.counts[ev::torus(isa::TorusEvent::kPacketsSentXp)], 4u);
  EXPECT_EQ(src.counts[ev::torus(isa::TorusEvent::kBytesSent32B)], 32u);
  EXPECT_EQ(src.counts[ev::torus(isa::TorusEvent::kHopsTotal)], 4u);
  EXPECT_EQ(dst.counts[ev::torus(isa::TorusEvent::kPacketsReceived)], 4u);
  // Wrap-around direction: node 0 -> node 3 goes -x.
  t.record_transfer(0, 3, 256);
  EXPECT_EQ(src.counts[ev::torus(isa::TorusEvent::kPacketsSentXm)], 1u);
}

}  // namespace
}  // namespace bgp::net
