#include "net/collective.hpp"

#include <gtest/gtest.h>

#include <array>
#include <map>

namespace bgp::net {
namespace {

TEST(Collective, DepthIsCeilLog2) {
  EXPECT_EQ(CollectiveNet(1).depth(), 0u);
  EXPECT_EQ(CollectiveNet(2).depth(), 1u);
  EXPECT_EQ(CollectiveNet(3).depth(), 2u);
  EXPECT_EQ(CollectiveNet(32).depth(), 5u);
  EXPECT_EQ(CollectiveNet(128).depth(), 7u);
}

TEST(Collective, LatencyGrowsWithNodesAndBytes) {
  CollectiveNet small(8), large(128);
  EXPECT_LT(small.op_cycles(8), large.op_cycles(8));
  EXPECT_LT(small.op_cycles(8), small.op_cycles(64 * 1024));
}

TEST(Collective, RecordsOnAllNodes) {
  class Recorder final : public mem::EventSink {
   public:
    void event(isa::EventId id, u64 count) override { counts[id] += count; }
    std::map<isa::EventId, u64> counts;
  };
  CollectiveNet net(4);
  std::array<Recorder, 4> recs;
  for (unsigned i = 0; i < 4; ++i) net.attach_sink(i, &recs[i]);
  net.record_operation(64, 1234);
  namespace ev = isa::ev;
  for (auto& r : recs) {
    EXPECT_EQ(r.counts[ev::collective(isa::CollectiveEvent::kOperations)], 1u);
    EXPECT_EQ(r.counts[ev::collective(isa::CollectiveEvent::kBytes32B)], 2u);
    EXPECT_EQ(r.counts[ev::collective(isa::CollectiveEvent::kLatencyCycles)],
              1234u);
  }
}

TEST(Barrier, LatencyGrowsSlowlyWithNodes) {
  BarrierNet small(2), large(1024);
  EXPECT_LT(small.barrier_cycles(), large.barrier_cycles());
  // Even at 1024 nodes the barrier is ~1 us (under 1000 cycles).
  EXPECT_LT(large.barrier_cycles(), 1000u);
}

TEST(Barrier, RecordsEntries) {
  class Recorder final : public mem::EventSink {
   public:
    void event(isa::EventId id, u64 count) override { counts[id] += count; }
    std::map<isa::EventId, u64> counts;
  };
  BarrierNet net(2);
  Recorder a, b;
  net.attach_sink(0, &a);
  net.attach_sink(1, &b);
  net.record_barrier(100);
  namespace ev = isa::ev;
  EXPECT_EQ(a.counts[ev::barrier(isa::BarrierEvent::kEntries)], 1u);
  EXPECT_EQ(b.counts[ev::barrier(isa::BarrierEvent::kWaitCycles)], 50u);
}

}  // namespace
}  // namespace bgp::net
