// Threshold-interrupt edge cases (ISSUE 2 satellite): re-arm from inside
// the handler, thresholds rewritten while armed, and counter wrap racing a
// threshold crossing. The sampling layer depends on every one of these
// behaviours — a spurious or missed interrupt there becomes a duplicated or
// lost trace interval.
#include <gtest/gtest.h>

#include <vector>

#include "upc/upc_unit.hpp"

namespace bgp::upc {
namespace {

constexpr isa::EventId kEvent = isa::ev::cycle_count(0);
constexpr u8 kCounter = isa::event_counter(kEvent);

UpcUnit armed_unit(u64 threshold) {
  UpcUnit u;
  u.start();
  CounterConfig cfg;
  cfg.interrupt_enable = true;
  cfg.threshold = threshold;
  u.configure(kCounter, cfg);
  return u;
}

TEST(UpcThreshold, FiresExactlyOncePerCrossing) {
  UpcUnit u = armed_unit(100);
  u.signal(kEvent, 99);
  EXPECT_EQ(u.threshold_interrupts(), 0u);
  u.signal(kEvent, 1);  // lands exactly on the threshold
  EXPECT_EQ(u.threshold_interrupts(), 1u);
  u.signal(kEvent, 500);  // already past: no re-fire
  EXPECT_EQ(u.threshold_interrupts(), 1u);
}

TEST(UpcThreshold, HandlerRearmsFromInsideTheInterrupt) {
  UpcUnit u = armed_unit(100);
  std::vector<u64> fired_at;
  u.set_threshold_handler([&](u8 counter, u64 value) {
    ASSERT_EQ(counter, kCounter);
    fired_at.push_back(value);
    // Interrupt-service-routine style re-arm: next boundary 100 further,
    // written over the MMIO threshold register like the sampler does.
    u.mmio_write64(u.mmio_base() + UpcUnit::kThresholdOffset + 8ull * kCounter,
                   u.read(kCounter) + 100);
  });
  for (int i = 0; i < 10; ++i) u.signal(kEvent, 35);
  // 350 counted events, boundaries every 100 starting at the first arm.
  ASSERT_EQ(fired_at.size(), 3u);
  EXPECT_EQ(u.threshold_interrupts(), 3u);
  EXPECT_GE(fired_at[0], 100u);
  EXPECT_GE(fired_at[1], fired_at[0] + 100);
  EXPECT_GE(fired_at[2], fired_at[1] + 100);
}

TEST(UpcThreshold, RaisingTheThresholdWhileArmedDefersTheInterrupt) {
  UpcUnit u = armed_unit(100);
  u.signal(kEvent, 50);
  // Move the boundary out before it is reached: nothing fires at the old one.
  u.mmio_write64(u.mmio_base() + UpcUnit::kThresholdOffset + 8ull * kCounter,
                 300);
  u.signal(kEvent, 100);  // would have crossed 100; must stay silent
  EXPECT_EQ(u.threshold_interrupts(), 0u);
  u.signal(kEvent, 150);  // crosses the rewritten boundary
  EXPECT_EQ(u.threshold_interrupts(), 1u);
}

TEST(UpcThreshold, LoweringTheThresholdBelowTheCountFiresImmediately) {
  UpcUnit u = armed_unit(1'000'000);
  u.signal(kEvent, 500);
  EXPECT_EQ(u.threshold_interrupts(), 0u);
  // The count already passed the new boundary: the write itself must raise
  // the interrupt (the crossing would otherwise be lost forever).
  u.mmio_write64(u.mmio_base() + UpcUnit::kThresholdOffset + 8ull * kCounter,
                 200);
  EXPECT_EQ(u.threshold_interrupts(), 1u);
}

TEST(UpcThreshold, RewritingAnAlreadyObservedThresholdDoesNotRefire) {
  UpcUnit u = armed_unit(100);
  u.signal(kEvent, 150);
  ASSERT_EQ(u.threshold_interrupts(), 1u);
  // Writing the same registers again (config sweep, debugger poke) must not
  // repeat a crossing that was already delivered.
  u.mmio_write64(u.mmio_base() + UpcUnit::kThresholdOffset + 8ull * kCounter,
                 100);
  CounterConfig cfg = u.config(kCounter);
  u.configure(kCounter, cfg);
  EXPECT_EQ(u.threshold_interrupts(), 1u);
}

TEST(UpcThreshold, WrapAcrossTheThresholdStillRaisesTheInterrupt) {
  UpcUnit u = armed_unit(200);
  u.set_counter_width(kCounter, 8);  // wraps at 256
  u.write(kCounter, 180);
  // One increment carries the counter across the threshold AND past the
  // wrap point; the stored value ends up tiny but the crossing happened.
  u.signal(kEvent, 100);
  EXPECT_EQ(u.read(kCounter), (180u + 100u) % 256u);
  EXPECT_EQ(u.threshold_interrupts(), 1u);
}

TEST(UpcThreshold, WrapStartingAboveTheThresholdDoesNotRefire) {
  UpcUnit u = armed_unit(200);
  u.set_counter_width(kCounter, 8);
  u.write(kCounter, 250);  // already past the threshold
  u.signal(kEvent, 50);    // wraps to 44 — below the threshold again
  EXPECT_EQ(u.read(kCounter), 44u);
  // The wrap must not be mistaken for a fresh approach to the boundary.
  EXPECT_EQ(u.threshold_interrupts(), 0u);
  // ...but a genuine second crossing after the wrap does fire.
  u.signal(kEvent, 200);
  EXPECT_EQ(u.threshold_interrupts(), 1u);
}

TEST(UpcThreshold, ListenersFireAfterTheHandlerAndPersist) {
  UpcUnit u = armed_unit(10);
  std::vector<int> order;
  u.set_threshold_handler([&](u8, u64) { order.push_back(0); });
  u.add_threshold_listener([&](u8, u64) { order.push_back(1); });
  u.add_threshold_listener([&](u8, u64) { order.push_back(2); });
  u.signal(kEvent, 10);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(UpcThreshold, ListenerRegisteredMidDeliveryIsSkippedForThatInterrupt) {
  UpcUnit u = armed_unit(10);
  int late_calls = 0;
  u.add_threshold_listener([&](u8, u64) {
    u.add_threshold_listener([&](u8, u64) { ++late_calls; });
  });
  u.signal(kEvent, 10);
  EXPECT_EQ(late_calls, 0);  // not called for the interrupt that added it
  // Re-arm and cross again: now the late listener participates.
  u.mmio_write64(u.mmio_base() + UpcUnit::kThresholdOffset + 8ull * kCounter,
                 20);
  u.signal(kEvent, 10);
  EXPECT_EQ(late_calls, 1);
}

TEST(UpcThreshold, DisabledCounterOrInterruptStaysSilent) {
  UpcUnit u;
  u.start();
  CounterConfig cfg;
  cfg.interrupt_enable = false;
  cfg.threshold = 10;
  u.configure(kCounter, cfg);
  u.signal(kEvent, 100);
  EXPECT_EQ(u.threshold_interrupts(), 0u);  // interrupts off

  cfg.interrupt_enable = true;
  cfg.enabled = false;
  u.write(kCounter, 0);
  u.configure(kCounter, cfg);
  u.signal(kEvent, 100);
  EXPECT_EQ(u.read(kCounter), 0u);  // disabled counters do not count
  EXPECT_EQ(u.threshold_interrupts(), 0u);
}

}  // namespace
}  // namespace bgp::upc
