// Property-style sweeps over the UPC unit's full configuration space:
// every (mode, counter) cell of the 4x256 event grid must behave
// identically, and events of inactive modes must never leak into the
// active mode's physical counters.
#include <gtest/gtest.h>

#include "upc/upc_unit.hpp"

namespace bgp::upc {
namespace {

class ModeSweep : public ::testing::TestWithParam<int> {};

TEST_P(ModeSweep, EveryCounterCountsItsOwnModeOnly) {
  const u8 mode = static_cast<u8>(GetParam());
  UpcUnit u;
  u.set_mode(mode);
  u.start();
  // Signal one event in every mode at a few representative counters.
  for (unsigned counter : {0u, 1u, 17u, 128u, 255u}) {
    for (u8 m = 0; m < isa::kNumCounterModes; ++m) {
      const auto id = static_cast<isa::EventId>(m * isa::kCountersPerUnit +
                                                counter);
      u.signal(id, 10 + m);
    }
  }
  for (unsigned counter : {0u, 1u, 17u, 128u, 255u}) {
    EXPECT_EQ(u.read(static_cast<u8>(counter)), 10u + mode)
        << "mode " << int(mode) << " counter " << counter;
  }
}

INSTANTIATE_TEST_SUITE_P(AllModes, ModeSweep, ::testing::Range(0, 4));

TEST(UpcProperty, ModeSwitchPreservesPhysicalCounters) {
  // The paper: "usually, the whole UPC unit is set to a particular mode,
  // which decides the purpose for which each of the counters is used."
  // Switching modes must not clear the physical counters — software decides
  // when to reset.
  UpcUnit u;
  u.start();
  u.signal(isa::ev::fpu_op(0, isa::FpOp::kFma), 5);
  const u8 c = isa::event_counter(isa::ev::fpu_op(0, isa::FpOp::kFma));
  u.set_mode(1);
  EXPECT_EQ(u.read(c), 5u);  // stale but preserved
  u.set_mode(0);
  u.signal(isa::ev::fpu_op(0, isa::FpOp::kFma), 5);
  EXPECT_EQ(u.read(c), 10u);
}

TEST(UpcProperty, EveryCounterSupportsThresholding) {
  UpcUnit u;
  u.set_mode(2);
  u.start();
  unsigned fired = 0;
  u.set_threshold_handler([&](u8, u64) { ++fired; });
  for (unsigned counter = 0; counter < UpcUnit::kNumCounters; counter += 37) {
    CounterConfig cfg;
    cfg.interrupt_enable = true;
    cfg.threshold = 3;
    u.configure(static_cast<u8>(counter), cfg);
    const auto id =
        static_cast<isa::EventId>(2 * isa::kCountersPerUnit + counter);
    u.signal(id, 5);
  }
  EXPECT_EQ(fired, (UpcUnit::kNumCounters + 36) / 37);
}

TEST(UpcProperty, ConfigEncodingIsStableAcrossAllSixteenWords) {
  // decode(encode(x)) == x for the full 4-bit configuration space, via the
  // MMIO path.
  UpcUnit u;
  for (u32 word = 0; word < 16; ++word) {
    const addr_t a = u.mmio_base() + UpcUnit::kConfigOffset + 4 * (word % 7);
    u.mmio_write32(a, word);
    EXPECT_EQ(u.mmio_read32(a), word);
  }
}

TEST(UpcProperty, StopStartPairsNeverLoseCounts) {
  UpcUnit u;
  u.start();
  const auto id = isa::ev::int_op(3, isa::IntOp::kBranch);
  u64 expect = 0;
  for (int i = 0; i < 100; ++i) {
    u.signal(id, 7);
    expect += 7;
    u.stop();
    u.signal(id, 1000);  // must be dropped
    u.start();
  }
  EXPECT_EQ(u.read(isa::event_counter(id)), expect);
}

}  // namespace
}  // namespace bgp::upc
