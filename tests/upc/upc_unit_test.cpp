#include "upc/upc_unit.hpp"

#include <gtest/gtest.h>

namespace bgp::upc {
namespace {

using isa::EventId;
namespace ev = isa::ev;

TEST(UpcUnit, CountsOnlyWhileRunning) {
  UpcUnit u;
  const EventId e = ev::fpu_op(0, isa::FpOp::kFma);
  u.signal(e, 5);
  EXPECT_EQ(u.read(isa::event_counter(e)), 0u);
  u.start();
  u.signal(e, 5);
  EXPECT_EQ(u.read(isa::event_counter(e)), 5u);
  u.stop();
  u.signal(e, 5);
  EXPECT_EQ(u.read(isa::event_counter(e)), 5u);
}

TEST(UpcUnit, OnlyActiveModeCounts) {
  UpcUnit u;
  u.start();
  const EventId mode0_event = ev::fpu_op(1, isa::FpOp::kMult);
  const EventId mode1_event = ev::l3(isa::L3Event::kReadMiss);
  // Same physical counter indices in different modes must not alias.
  u.set_mode(0);
  u.signal(mode0_event, 3);
  u.signal(mode1_event, 7);  // ignored: unit is in mode 0
  EXPECT_EQ(u.read(isa::event_counter(mode0_event)), 3u);

  u.set_mode(1);
  u.reset_counters();
  u.signal(mode0_event, 3);  // ignored now
  u.signal(mode1_event, 7);
  EXPECT_EQ(u.read(isa::event_counter(mode1_event)), 7u);
}

TEST(UpcUnit, InvalidModeThrows) {
  UpcUnit u;
  EXPECT_THROW(u.set_mode(4), UpcError);
  EXPECT_NO_THROW(u.set_mode(3));
}

TEST(UpcUnit, DisabledCounterIgnoresSignals) {
  UpcUnit u;
  u.start();
  const EventId e = ev::fpu_op(0, isa::FpOp::kAddSub);
  CounterConfig cfg;
  cfg.enabled = false;
  u.configure(isa::event_counter(e), cfg);
  u.signal(e, 10);
  EXPECT_EQ(u.read(isa::event_counter(e)), 0u);
}

TEST(UpcUnit, ResetCountersPreservesConfig) {
  UpcUnit u;
  u.start();
  const EventId e = ev::fpu_op(0, isa::FpOp::kAddSub);
  CounterConfig cfg;
  cfg.threshold = 99;
  u.configure(isa::event_counter(e), cfg);
  u.signal(e, 4);
  u.reset_counters();
  EXPECT_EQ(u.read(isa::event_counter(e)), 0u);
  EXPECT_EQ(u.config(isa::event_counter(e)).threshold, 99u);
}

TEST(UpcUnit, LevelSemantics) {
  UpcUnit u;
  u.start();
  const EventId e = ev::ddr(0, isa::DdrEvent::kBusyCycles);
  u.set_mode(1);
  const u8 c = isa::event_counter(e);

  CounterConfig high;
  high.signal = SignalMode::kLevelHigh;
  u.configure(c, high);
  u.signal_level(e, 30, 100);
  EXPECT_EQ(u.read(c), 30u);

  CounterConfig low;
  low.signal = SignalMode::kLevelLow;
  u.configure(c, low);
  u.reset_counters();
  u.signal_level(e, 30, 100);
  EXPECT_EQ(u.read(c), 70u);
}

TEST(UpcUnit, EdgeConfigIgnoresLevelAccumulationButCountsTransition) {
  UpcUnit u;
  u.start();
  u.set_mode(1);
  const EventId e = ev::ddr(0, isa::DdrEvent::kBusyCycles);
  const u8 c = isa::event_counter(e);
  CounterConfig edge;
  edge.signal = SignalMode::kEdgeRise;
  u.configure(c, edge);
  u.signal_level(e, 30, 100);  // one observation window with activity
  EXPECT_EQ(u.read(c), 1u);
  u.signal_level(e, 0, 100);  // idle window: no transition
  EXPECT_EQ(u.read(c), 1u);
}

TEST(UpcUnit, LevelConfigIgnoresEdgeSignals) {
  UpcUnit u;
  u.start();
  const EventId e = ev::fpu_op(0, isa::FpOp::kMult);
  const u8 c = isa::event_counter(e);
  CounterConfig level;
  level.signal = SignalMode::kLevelHigh;
  u.configure(c, level);
  u.signal(e, 10);
  EXPECT_EQ(u.read(c), 0u);
}

TEST(UpcUnit, ThresholdInterruptFiresOnceOnCrossing) {
  UpcUnit u;
  u.start();
  const EventId e = ev::fpu_op(0, isa::FpOp::kFma);
  const u8 c = isa::event_counter(e);
  CounterConfig cfg;
  cfg.interrupt_enable = true;
  cfg.threshold = 100;
  u.configure(c, cfg);

  int fires = 0;
  u64 fired_value = 0;
  u.set_threshold_handler([&](u8 counter, u64 value) {
    ++fires;
    fired_value = value;
    EXPECT_EQ(counter, c);
  });

  u.signal(e, 60);
  EXPECT_EQ(fires, 0);
  u.signal(e, 60);  // crosses 100
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(fired_value, 120u);
  u.signal(e, 60);  // already above: no re-fire
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(u.threshold_interrupts(), 1u);
}

TEST(UpcUnit, ThresholdRequiresInterruptEnable) {
  UpcUnit u;
  u.start();
  const EventId e = ev::fpu_op(0, isa::FpOp::kFma);
  const u8 c = isa::event_counter(e);
  CounterConfig cfg;
  cfg.interrupt_enable = false;
  cfg.threshold = 10;
  u.configure(c, cfg);
  int fires = 0;
  u.set_threshold_handler([&](u8, u64) { ++fires; });
  u.signal(e, 100);
  EXPECT_EQ(fires, 0);
}

TEST(UpcUnit, CountersAre64Bit) {
  UpcUnit u;
  u.start();
  const EventId e = ev::fpu_op(0, isa::FpOp::kAddSub);
  const u8 c = isa::event_counter(e);
  u.write(c, 0xFFFFFFFFull);  // would overflow a 32-bit counter
  u.signal(e, 1);
  EXPECT_EQ(u.read(c), 0x100000000ull);
}

TEST(CounterConfig, EncodeDecodeRoundTrip) {
  for (u32 word = 0; word < 16; ++word) {
    const CounterConfig cfg = CounterConfig::decode(word);
    EXPECT_EQ(cfg.encode(), word);
  }
  CounterConfig cfg;
  cfg.signal = SignalMode::kLevelLow;
  cfg.interrupt_enable = true;
  cfg.enabled = true;
  EXPECT_EQ(cfg.encode(), 0b1111u);
  EXPECT_EQ(CounterConfig::decode(cfg.encode()), cfg);
}

TEST(CounterConfig, PaperSignalEncodings) {
  // §III-A: 00 LEVEL_HIGH, 01 EDGE_RISE, 10 EDGE_FALL, 11 LEVEL_LOW.
  EXPECT_EQ(static_cast<u8>(SignalMode::kLevelHigh), 0b00);
  EXPECT_EQ(static_cast<u8>(SignalMode::kEdgeRise), 0b01);
  EXPECT_EQ(static_cast<u8>(SignalMode::kEdgeFall), 0b10);
  EXPECT_EQ(static_cast<u8>(SignalMode::kLevelLow), 0b11);
}

TEST(UpcUnit, NarrowedCounterWrapsAtItsWidth) {
  UpcUnit u;
  u.start();
  const EventId e = ev::fpu_op(0, isa::FpOp::kFma);
  const u8 c = isa::event_counter(e);
  u.set_counter_width(c, 32);
  EXPECT_EQ(u.counter_mask(c), 0xFFFF'FFFFull);

  // Preload just below the boundary; the next signals wrap around zero —
  // the fault-injection model for a defective 32-bit counter.
  u.write(c, (u64{1} << 32) - 3);
  u.signal(e, 10);
  EXPECT_EQ(u.read(c), 7u);

  // The snapshot-delta arithmetic the monitor uses then yields a value in
  // the top half of u64 — the wraparound signature sanity looks for.
  const u64 delta = u.read(c) - ((u64{1} << 32) - 3);
  EXPECT_GE(delta, u64{1} << 63);
}

TEST(UpcUnit, CounterWidthValidatesArguments) {
  UpcUnit u;
  EXPECT_THROW(u.set_counter_width(0, 0), UpcError);
  EXPECT_THROW(u.set_counter_width(0, 65), UpcError);
  EXPECT_NO_THROW(u.set_counter_width(0, 64));
  EXPECT_EQ(u.counter_mask(0), ~u64{0});
}

TEST(UpcUnit, WriteIsMaskedOnNarrowCounter) {
  UpcUnit u;
  u.set_counter_width(5, 16);
  u.write(5, 0x1'2345);
  EXPECT_EQ(u.read(5), 0x2345u);
}

}  // namespace
}  // namespace bgp::upc
