#include <gtest/gtest.h>

#include "upc/upc_unit.hpp"

namespace bgp::upc {
namespace {

namespace ev = isa::ev;

TEST(UpcMmio, CounterReadWrite) {
  UpcUnit u;
  const addr_t base = u.mmio_base();
  u.mmio_write64(base + 8 * 42, 777);
  EXPECT_EQ(u.read(42), 777u);
  EXPECT_EQ(u.mmio_read64(base + 8 * 42), 777u);
}

TEST(UpcMmio, AllCountersAddressable) {
  UpcUnit u;
  const addr_t base = u.mmio_base();
  for (unsigned i = 0; i < UpcUnit::kNumCounters; ++i) {
    u.mmio_write64(base + 8 * i, i * 3);
  }
  for (unsigned i = 0; i < UpcUnit::kNumCounters; ++i) {
    EXPECT_EQ(u.mmio_read64(base + 8 * i), i * 3);
  }
}

TEST(UpcMmio, ConfigReadWrite) {
  UpcUnit u;
  const addr_t cfg_addr = u.mmio_base() + UpcUnit::kConfigOffset + 4 * 10;
  CounterConfig cfg;
  cfg.signal = SignalMode::kEdgeFall;
  cfg.interrupt_enable = true;
  u.mmio_write32(cfg_addr, cfg.encode());
  EXPECT_EQ(u.config(10).signal, SignalMode::kEdgeFall);
  EXPECT_TRUE(u.config(10).interrupt_enable);
  EXPECT_EQ(u.mmio_read32(cfg_addr), cfg.encode());
}

TEST(UpcMmio, ConfigWritePreservesThreshold) {
  UpcUnit u;
  const addr_t thr_addr = u.mmio_base() + UpcUnit::kThresholdOffset + 8 * 5;
  const addr_t cfg_addr = u.mmio_base() + UpcUnit::kConfigOffset + 4 * 5;
  u.mmio_write64(thr_addr, 12345);
  u.mmio_write32(cfg_addr, 0b0101);
  EXPECT_EQ(u.config(5).threshold, 12345u);
  EXPECT_EQ(u.mmio_read64(thr_addr), 12345u);
}

TEST(UpcMmio, SingleMonitoringThreadCanReadEverything) {
  // Paper: global accessibility of configuration and count values allows a
  // single monitoring thread to read the performance counters. Emulate by
  // walking the whole MMIO window.
  UpcUnit u;
  u.start();
  u.set_mode(0);
  u.signal(ev::fpu_op(0, isa::FpOp::kSimdFma), 9);
  u64 total = 0;
  for (unsigned i = 0; i < UpcUnit::kNumCounters; ++i) {
    total += u.mmio_read64(u.mmio_base() + 8 * i);
  }
  EXPECT_EQ(total, 9u);
}

TEST(UpcMmio, OutOfWindowThrows) {
  UpcUnit u;
  EXPECT_THROW((void)u.mmio_read64(u.mmio_base() - 8), UpcError);
  EXPECT_THROW((void)u.mmio_read64(u.mmio_base() + UpcUnit::kMmioSpan), UpcError);
  EXPECT_THROW(u.mmio_write64(u.mmio_base() + UpcUnit::kMmioSpan, 1), UpcError);
}

TEST(UpcMmio, UnalignedAccessThrows) {
  UpcUnit u;
  EXPECT_THROW((void)u.mmio_read64(u.mmio_base() + 4), UpcError);
  EXPECT_THROW(
      u.mmio_write32(u.mmio_base() + UpcUnit::kConfigOffset + 2, 0),
      UpcError);
}

TEST(UpcMmio, WrongWidthInConfigRegionThrows) {
  UpcUnit u;
  EXPECT_THROW((void)u.mmio_read64(u.mmio_base() + UpcUnit::kConfigOffset), UpcError);
  EXPECT_THROW((void)u.mmio_read32(u.mmio_base()), UpcError);
}

}  // namespace
}  // namespace bgp::upc
