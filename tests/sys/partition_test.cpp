#include "sys/partition.hpp"

#include <gtest/gtest.h>

namespace bgp::sys {
namespace {

TEST(Node, CardParityFollowsBootOptions) {
  BootOptions boot;
  boot.nodes_per_card = 2;
  EXPECT_TRUE(Node(0, boot).even_card());
  EXPECT_TRUE(Node(1, boot).even_card());
  EXPECT_FALSE(Node(2, boot).even_card());
  EXPECT_FALSE(Node(3, boot).even_card());
  EXPECT_TRUE(Node(4, boot).even_card());
}

TEST(Node, BootOptionsControlL3) {
  BootOptions boot;
  boot.l3_size_bytes = 2 * MiB;
  Node n(0, boot);
  EXPECT_EQ(n.memory().l3().params().size_bytes, 2 * MiB);
  boot.l3_size_bytes = 0;
  Node n2(0, boot);
  EXPECT_FALSE(n2.memory().has_l3());
}

TEST(Node, HardwareEventsReachTheUpc) {
  Node n(0);
  n.upc().set_mode(0);
  n.upc().start();
  n.core(2).execute([] {
    isa::OpMix m;
    m.fp_at(isa::FpOp::kSimdFma) = 42;
    return m;
  }());
  const auto counter = isa::event_counter(isa::ev::fpu_op(2, isa::FpOp::kSimdFma));
  EXPECT_EQ(n.upc().read(counter), 42u);
}

TEST(Node, MemoryEventsReachTheUpcInMode1) {
  Node n(0);
  n.upc().set_mode(1);
  n.upc().start();
  // A read larger than all caches forces DDR traffic.
  for (addr_t a = 0; a < 64 * KiB; a += 128) n.memory().read(0, a, 128, 0);
  const auto counter = isa::event_counter(isa::ev::l3(isa::L3Event::kReadMiss));
  EXPECT_GT(n.upc().read(counter), 0u);
}

TEST(Node, TimebaseIsMaxOverCores) {
  Node n(0);
  n.core(0).advance(10);
  n.core(3).advance(99);
  EXPECT_EQ(n.timebase(), 99u);
}

TEST(Partition, RankCountsPerMode) {
  EXPECT_EQ(Partition(32, OpMode::kVnm).num_ranks(), 128u);
  EXPECT_EQ(Partition(32, OpMode::kSmp1).num_ranks(), 32u);
  EXPECT_EQ(Partition(16, OpMode::kDual).num_ranks(), 32u);
}

TEST(Partition, VnmPlacementPacksFourRanksPerNode) {
  Partition p(4, OpMode::kVnm);
  for (unsigned r = 0; r < 16; ++r) {
    const auto pl = p.placement(r);
    EXPECT_EQ(pl.node, r / 4);
    EXPECT_EQ(pl.core, r % 4);
  }
  EXPECT_THROW((void)p.placement(16), std::out_of_range);
}

TEST(Partition, DualPlacementUsesCorePairs) {
  Partition p(2, OpMode::kDual);
  EXPECT_EQ(p.placement(0).core, 0u);
  EXPECT_EQ(p.placement(1).core, 2u);
  EXPECT_EQ(p.placement(2).node, 1u);
}

TEST(Partition, Smp1LeavesCoresIdle) {
  Partition p(4, OpMode::kSmp1);
  for (unsigned r = 0; r < 4; ++r) {
    EXPECT_EQ(p.placement(r).node, r);
    EXPECT_EQ(p.placement(r).core, 0u);
  }
}

TEST(Partition, NetworksMatchNodeCount) {
  Partition p(32, OpMode::kVnm);
  EXPECT_EQ(p.torus().shape().nodes(), 32u);
  EXPECT_EQ(p.collective().nodes(), 32u);
}

TEST(Partition, TorusEventsLandOnNodeUpc) {
  Partition p(4, OpMode::kSmp1);
  p.node(0).upc().set_mode(2);
  p.node(0).upc().start();
  p.torus().record_transfer(0, 1, 256);
  const auto counter =
      isa::event_counter(isa::ev::torus(isa::TorusEvent::kPacketsSentXp));
  EXPECT_EQ(p.node(0).upc().read(counter), 1u);
}

TEST(Partition, ZeroNodesRejected) {
  EXPECT_THROW(Partition(0, OpMode::kVnm), std::invalid_argument);
}

}  // namespace
}  // namespace bgp::sys
