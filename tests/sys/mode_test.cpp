#include "sys/mode.hpp"

#include <gtest/gtest.h>

namespace bgp::sys {
namespace {

TEST(Mode, PaperFig3Table) {
  // Fig 3: processes and threads per node in each operating mode.
  EXPECT_EQ(processes_per_node(OpMode::kSmp1), 1u);
  EXPECT_EQ(threads_per_process(OpMode::kSmp1), 1u);
  EXPECT_EQ(processes_per_node(OpMode::kSmp4), 1u);
  EXPECT_EQ(threads_per_process(OpMode::kSmp4), 4u);
  EXPECT_EQ(processes_per_node(OpMode::kDual), 2u);
  EXPECT_EQ(threads_per_process(OpMode::kDual), 2u);
  EXPECT_EQ(processes_per_node(OpMode::kVnm), 4u);
  EXPECT_EQ(threads_per_process(OpMode::kVnm), 1u);
}

TEST(Mode, EveryModeUsesAtMostFourCores) {
  for (OpMode m : {OpMode::kSmp1, OpMode::kSmp4, OpMode::kDual, OpMode::kVnm}) {
    EXPECT_LE(processes_per_node(m) * threads_per_process(m), 4u);
  }
}

TEST(Mode, ProcessCorePacking) {
  EXPECT_EQ(first_core_of_process(OpMode::kVnm, 0), 0u);
  EXPECT_EQ(first_core_of_process(OpMode::kVnm, 3), 3u);
  EXPECT_EQ(first_core_of_process(OpMode::kDual, 1), 2u);
  EXPECT_EQ(first_core_of_process(OpMode::kSmp4, 0), 0u);
}

TEST(Mode, ParseAndPrint) {
  EXPECT_EQ(parse_mode("vnm"), OpMode::kVnm);
  EXPECT_EQ(parse_mode("smp1"), OpMode::kSmp1);
  EXPECT_EQ(parse_mode("smp"), OpMode::kSmp1);
  EXPECT_EQ(parse_mode("dual"), OpMode::kDual);
  EXPECT_EQ(parse_mode("smp4"), OpMode::kSmp4);
  EXPECT_THROW((void)parse_mode("quad"), std::invalid_argument);
  EXPECT_EQ(to_string(OpMode::kVnm), "VNM");
  EXPECT_EQ(to_string(OpMode::kSmp1), "SMP/1");
}

}  // namespace
}  // namespace bgp::sys
