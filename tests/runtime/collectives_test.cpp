#include <gtest/gtest.h>

#include <numeric>

#include "runtime/machine.hpp"
#include "runtime/rankctx.hpp"

namespace bgp::rt {
namespace {

MachineConfig small(unsigned nodes = 2, sys::OpMode mode = sys::OpMode::kVnm) {
  MachineConfig cfg;
  cfg.num_nodes = nodes;
  cfg.mode = mode;
  return cfg;
}

TEST(Collectives, BarrierSynchronizesClocks) {
  Machine m(small(2));
  m.run([](RankCtx& ctx) {
    // Unbalanced compute before the barrier.
    isa::LoopDesc d;
    d.trip = 1000 * (ctx.rank() + 1);
    d.body.int_at(isa::IntOp::kAlu) = 8;
    ctx.loop(d);
    ctx.barrier();
    // After the barrier every clock must be at least the slowest arrival.
    EXPECT_GE(ctx.now(), 4000u);
  });
}

TEST(Collectives, AllreduceSumScalar) {
  Machine m(small(2));
  m.run([](RankCtx& ctx) {
    const double s = ctx.allreduce_sum(static_cast<double>(ctx.rank() + 1));
    const double n = ctx.size();
    EXPECT_DOUBLE_EQ(s, n * (n + 1) / 2.0);
  });
}

TEST(Collectives, AllreduceSumVector) {
  Machine m(small(2));
  m.run([](RankCtx& ctx) {
    std::array<double, 3> v{1.0, double(ctx.rank()), -1.0};
    ctx.allreduce_sum(v);
    EXPECT_DOUBLE_EQ(v[0], double(ctx.size()));
    EXPECT_DOUBLE_EQ(v[1], double(ctx.size() * (ctx.size() - 1) / 2));
    EXPECT_DOUBLE_EQ(v[2], -double(ctx.size()));
  });
}

TEST(Collectives, AllreduceSumU64Exact) {
  Machine m(small(2));
  m.run([](RankCtx& ctx) {
    // Values that would lose precision in a double reduction.
    const u64 big = (1ull << 53) + 1 + ctx.rank();
    const u64 s = ctx.allreduce_sum(big);
    u64 expect = 0;
    for (unsigned r = 0; r < ctx.size(); ++r) expect += (1ull << 53) + 1 + r;
    EXPECT_EQ(s, expect);
  });
}

TEST(Collectives, AllreduceMax) {
  Machine m(small(2));
  m.run([](RankCtx& ctx) {
    const double mx = ctx.allreduce_max(ctx.rank() == 3 ? 99.5 : 1.0);
    EXPECT_DOUBLE_EQ(mx, 99.5);
  });
}

TEST(Collectives, Bcast) {
  Machine m(small(2));
  m.run([](RankCtx& ctx) {
    std::array<u64, 5> data{};
    if (ctx.rank() == 2) data = {10, 20, 30, 40, 50};
    ctx.bcast(std::as_writable_bytes(std::span(data)), /*root=*/2);
    EXPECT_EQ(data[0], 10u);
    EXPECT_EQ(data[4], 50u);
  });
}

TEST(Collectives, Alltoall) {
  Machine m(small(2));
  m.run([](RankCtx& ctx) {
    const unsigned p = ctx.size();
    std::vector<u64> send(p), recv(p);
    for (unsigned d = 0; d < p; ++d) send[d] = ctx.rank() * 100 + d;
    ctx.alltoall(std::as_bytes(std::span(send)),
                 std::as_writable_bytes(std::span(recv)), sizeof(u64));
    for (unsigned s = 0; s < p; ++s) {
      EXPECT_EQ(recv[s], s * 100 + ctx.rank());
    }
  });
}

TEST(Collectives, Allgather) {
  Machine m(small(2));
  m.run([](RankCtx& ctx) {
    const unsigned p = ctx.size();
    const u64 mine = 7000 + ctx.rank();
    std::vector<u64> all(p);
    ctx.allgather(std::as_bytes(std::span(&mine, 1)),
                  std::as_writable_bytes(std::span(all)));
    for (unsigned r = 0; r < p; ++r) EXPECT_EQ(all[r], 7000 + r);
  });
}

TEST(Collectives, MismatchedCollectiveKindsFail) {
  Machine m(small(1));
  EXPECT_THROW(m.run([](RankCtx& ctx) {
    if (ctx.rank() == 0) {
      ctx.barrier();
    } else {
      double v = 1.0;
      (void)ctx.allreduce_sum(v);
    }
  }),
               std::logic_error);
}

TEST(Collectives, CollectiveLatencyGrowsWithPartition) {
  auto elapsed = [](unsigned nodes) {
    MachineConfig cfg;
    cfg.num_nodes = nodes;
    cfg.mode = sys::OpMode::kSmp1;
    Machine m(cfg);
    m.run([](RankCtx& ctx) {
      for (int i = 0; i < 50; ++i) (void)ctx.allreduce_sum(1.0);
    });
    return m.elapsed();
  };
  EXPECT_LT(elapsed(2), elapsed(16));
}

TEST(Collectives, MpiEventsLandInMode3) {
  MachineConfig cfg = small(1);
  Machine m(cfg);
  auto& node = m.partition().node(0);
  node.upc().set_mode(3);
  node.upc().start();
  m.run([](RankCtx& ctx) {
    ctx.barrier();
    (void)ctx.allreduce_sum(1.0);
    if (ctx.rank() == 0) {
      std::array<u64, 1> v{1};
      ctx.send_values<u64>(1, v);
    } else if (ctx.rank() == 1) {
      std::array<u64, 1> v{};
      ctx.recv_values<u64>(0, v);
    }
  });
  namespace ev = isa::ev;
  const auto coll0 =
      node.upc().read(isa::event_counter(ev::system(isa::SysEvent::kMpiCollectives, 0)));
  EXPECT_EQ(coll0, 2u);  // barrier + allreduce on rank slot 0
  const auto sends =
      node.upc().read(isa::event_counter(ev::system(isa::SysEvent::kMpiSends, 0)));
  EXPECT_EQ(sends, 1u);
  const auto recvs =
      node.upc().read(isa::event_counter(ev::system(isa::SysEvent::kMpiRecvs, 1)));
  EXPECT_EQ(recvs, 1u);
}

TEST(Collectives, SimArrayAllocationIsPerRankDisjoint) {
  Machine m(small(1));
  std::array<std::pair<addr_t, addr_t>, 4> regions;
  m.run([&](RankCtx& ctx) {
    auto a = ctx.alloc<double>(1000);
    auto b = ctx.alloc<float>(10);
    EXPECT_GE(b.addr(), a.addr() + 8000);
    EXPECT_EQ(a.addr() % 128, 0u);
    EXPECT_EQ(b.addr() % 128, 0u);
    regions[ctx.rank()] = {a.addr(), b.addr() + b.bytes()};
  });
  for (unsigned i = 0; i < 4; ++i) {
    for (unsigned j = i + 1; j < 4; ++j) {
      const bool disjoint = regions[i].second <= regions[j].first ||
                            regions[j].second <= regions[i].first;
      EXPECT_TRUE(disjoint) << i << "," << j;
    }
  }
}

TEST(Collectives, HeapExhaustionThrows) {
  Machine m(small(1));
  EXPECT_THROW(m.run([](RankCtx& ctx) {
    (void)ctx.alloc<double>(300 * MiB / 8 + 1);
  }),
               std::runtime_error);
}

}  // namespace
}  // namespace bgp::rt
