// Cooperative stop: request_stop() mid-run makes Machine::run() throw
// RunStopped under both dispatchers, after which the session layer can
// seal traces and write checkpoint dumps through the atomic paths — the
// mechanism behind bgpc_run's SIGTERM handling and the daemon's kill.
#include <gtest/gtest.h>

#include <filesystem>
#include <thread>

#include "core/session.hpp"
#include "nas/kernel.hpp"
#include "runtime/machine.hpp"
#include "runtime/rankctx.hpp"

namespace fs = std::filesystem;

namespace bgp {
namespace {

fs::path test_dir() {
  const auto* info = testing::UnitTest::GetInstance()->current_test_info();
  fs::path dir =
      fs::temp_directory_path() / (std::string("bgpc_stop_") + info->name());
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

void expect_stop_checkpoints(rt::SchedMode sched) {
  const fs::path dir = test_dir();
  rt::MachineConfig mc;
  mc.num_nodes = 4;
  mc.sched = sched;
  mc.jobs = sched == rt::SchedMode::kParallel ? 4 : 0;
  rt::Machine machine(mc);

  pc::Options opts;
  opts.app_name = "CG";
  opts.dump_dir = dir;
  opts.trace.enabled = true;
  opts.trace.trace_dir = dir;
  pc::Session session(machine, opts);
  session.link_with_mpi();

  // Stop from another thread a moment into the run — the signal-handler
  // shape (request_stop is lock-free and async-signal-safe).
  std::thread stopper([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    machine.request_stop();
  });

  auto kernel = nas::make_kernel(nas::Benchmark::kCG, nas::ProblemClass::kW);
  bool stopped = false;
  try {
    machine.run([&](rt::RankCtx& ctx) {
      ctx.mpi_init();
      kernel->run(ctx);
      ctx.mpi_finalize();
    });
  } catch (const rt::RunStopped&) {
    stopped = true;
  }
  stopper.join();
  ASSERT_TRUE(stopped) << "class-W CG finished before the stop landed";
  EXPECT_GT(machine.elapsed(), 0u);

  // The checkpoint paths still work after the abort.
  session.seal_all_traces();
  session.checkpoint_dump();
  EXPECT_EQ(session.trace_files().size(), 4u);
  EXPECT_EQ(session.dump_files().size(), 4u);
  unsigned bgpc = 0, bgpt = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".bgpc") ++bgpc;
    if (entry.path().extension() == ".bgpt") ++bgpt;
    EXPECT_GT(fs::file_size(entry.path()), 0u) << entry.path();
  }
  EXPECT_EQ(bgpc, 4u);
  EXPECT_EQ(bgpt, 4u);
  fs::remove_all(dir);
}

TEST(RequestStop, SerialDispatcherStopsAndCheckpoints) {
  expect_stop_checkpoints(rt::SchedMode::kSerial);
}

TEST(RequestStop, ParallelDispatcherStopsAndCheckpoints) {
  expect_stop_checkpoints(rt::SchedMode::kParallel);
}

TEST(RequestStop, StopBeforeRunThrowsImmediately) {
  rt::MachineConfig mc;
  mc.num_nodes = 2;
  rt::Machine machine(mc);
  machine.request_stop();
  auto kernel = nas::make_kernel(nas::Benchmark::kEP, nas::ProblemClass::kS);
  EXPECT_THROW(machine.run([&](rt::RankCtx& ctx) {
    ctx.mpi_init();
    kernel->run(ctx);
    ctx.mpi_finalize();
  }),
               rt::RunStopped);
}

}  // namespace
}  // namespace bgp
