// Node-death injection through the MiniMPI scheduler: a dead node's ranks
// unwind cleanly, survivors complete their collectives over the remaining
// members, receivers blocked on dead peers inherit the death, and run()
// returns normally with the casualties reported.
#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "fault/fault.hpp"
#include "runtime/machine.hpp"
#include "runtime/rankctx.hpp"

namespace bgp::rt {
namespace {

MachineConfig smp(unsigned nodes) {
  MachineConfig cfg;
  cfg.num_nodes = nodes;
  cfg.mode = sys::OpMode::kSmp1;
  return cfg;
}

isa::LoopDesc work(u64 trip) {
  isa::LoopDesc d;
  d.name = "work";
  d.trip = trip;
  d.body.fp_at(isa::FpOp::kFma) = 4;
  d.body.int_at(isa::IntOp::kAlu) = 2;
  return d;
}

TEST(NodeDeath, SurvivorsFinishAndCasualtiesAreReported) {
  fault::FaultPlan plan;
  plan.add({.kind = fault::FaultKind::kNodeDeath, .node = 1, .cycle = 1});
  fault::FaultInjector inj(std::move(plan));

  Machine m(smp(4));
  m.set_fault_injector(&inj);
  std::vector<int> finished(m.num_ranks(), 0);
  m.run([&](RankCtx& ctx) {
    for (int i = 0; i < 4; ++i) {
      ctx.loop(work(500), {});
      (void)ctx.allreduce_sum(1.0);
    }
    finished[ctx.rank()] = 1;
  });

  EXPECT_EQ(m.dead_nodes(), (std::vector<unsigned>{1}));
  ASSERT_EQ(m.dead_ranks().size(), 1u);
  EXPECT_EQ(m.dead_ranks()[0], 1u);
  EXPECT_EQ(finished[0], 1);
  EXPECT_EQ(finished[1], 0);
  EXPECT_EQ(finished[2], 1);
  EXPECT_EQ(finished[3], 1);
}

TEST(NodeDeath, CollectiveResultCoversOnlySurvivors) {
  fault::FaultPlan plan;
  plan.add({.kind = fault::FaultKind::kNodeDeath, .node = 2, .cycle = 1});
  fault::FaultInjector inj(std::move(plan));

  Machine m(smp(4));
  m.set_fault_injector(&inj);
  std::vector<double> sums(m.num_ranks(), 0.0);
  m.run([&](RankCtx& ctx) {
    ctx.loop(work(200), {});  // give the doomed rank a checkpoint to die at
    sums[ctx.rank()] = ctx.allreduce_sum(1.0);
  });

  // Three survivors contributed.
  for (unsigned r : {0u, 1u, 3u}) EXPECT_DOUBLE_EQ(sums[r], 3.0) << r;
  EXPECT_DOUBLE_EQ(sums[2], 0.0);
}

TEST(NodeDeath, ReceiverBlockedOnDeadPeerInheritsTheDeath) {
  fault::FaultPlan plan;
  plan.add({.kind = fault::FaultKind::kNodeDeath, .node = 0, .cycle = 1});
  fault::FaultInjector inj(std::move(plan));

  Machine m(smp(2));
  m.set_fault_injector(&inj);
  m.run([&](RankCtx& ctx) {
    if (ctx.rank() == 0) {
      ctx.loop(work(300), {});  // dies here
      std::array<std::byte, 8> buf{};
      ctx.send(1, buf);
    } else {
      std::array<std::byte, 8> buf{};
      ctx.recv(0, buf);  // the message never comes
    }
  });
  // Both ranks are gone, but the accounting tells them apart: node 0 was
  // killed by the injector, rank 1 was stranded by the cascade (the case
  // FT recovery turns into an error return instead).
  ASSERT_EQ(m.dead_ranks().size(), 1u);
  EXPECT_EQ(m.dead_ranks()[0], 0u);
  ASSERT_EQ(m.stranded_ranks().size(), 1u);
  EXPECT_EQ(m.stranded_ranks()[0], 1u);
  EXPECT_EQ(m.dead_nodes(), (std::vector<unsigned>{0, 1}));
}

TEST(NodeDeath, SameSeedSameCasualties) {
  const auto casualties = [](u64 seed) {
    fault::FaultSpec spec;
    spec.node_deaths = 2;
    spec.death_window = 5'000;
    fault::FaultInjector inj(fault::FaultPlan::random(seed, 8, spec));
    Machine m(smp(8));
    m.set_fault_injector(&inj);
    m.run([&](RankCtx& ctx) {
      for (int i = 0; i < 3; ++i) {
        ctx.loop(work(400), {});
        ctx.barrier();
      }
    });
    return m.dead_nodes();
  };
  const auto a = casualties(99);
  const auto b = casualties(99);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 2u);
}

TEST(NodeDeath, NoFaultInjectorMeansNoDeaths) {
  Machine m(smp(2));
  m.run([](RankCtx& ctx) { ctx.barrier(); });
  EXPECT_TRUE(m.dead_ranks().empty());
  EXPECT_TRUE(m.dead_nodes().empty());
}

TEST(NodeDeath, RealErrorsStillPropagate) {
  fault::FaultPlan plan;
  plan.add({.kind = fault::FaultKind::kNodeDeath, .node = 0, .cycle = 1});
  fault::FaultInjector inj(std::move(plan));

  Machine m(smp(3));
  m.set_fault_injector(&inj);
  EXPECT_THROW(m.run([&](RankCtx& ctx) {
    ctx.loop(work(200), {});
    if (ctx.rank() == 2) throw std::runtime_error("boom");
    ctx.barrier();
  }),
               std::runtime_error);
}

}  // namespace
}  // namespace bgp::rt
