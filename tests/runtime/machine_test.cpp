#include "runtime/machine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "runtime/rankctx.hpp"

namespace bgp::rt {
namespace {

MachineConfig small(unsigned nodes = 2, sys::OpMode mode = sys::OpMode::kVnm) {
  MachineConfig cfg;
  cfg.num_nodes = nodes;
  cfg.mode = mode;
  return cfg;
}

TEST(Machine, RunsEveryRankExactlyOnce) {
  Machine m(small(2));  // 8 ranks in VNM
  std::vector<int> visits(m.num_ranks(), 0);
  m.run([&](RankCtx& ctx) { ++visits[ctx.rank()]; });
  for (int v : visits) EXPECT_EQ(v, 1);
}

TEST(Machine, RankOverrideLimitsRanks) {
  MachineConfig cfg = small(4);
  cfg.num_ranks_override = 11;  // e.g. SP/BT square-ish rank counts
  Machine m(cfg);
  EXPECT_EQ(m.num_ranks(), 11u);
  std::atomic<int> count{0};
  m.run([&](RankCtx&) { ++count; });
  EXPECT_EQ(count.load(), 11);
}

TEST(Machine, InvalidOverrideThrows) {
  MachineConfig cfg = small(2);
  cfg.num_ranks_override = 9;  // only 8 available
  EXPECT_THROW(Machine m(cfg), std::invalid_argument);
}

TEST(Machine, RunTwiceRejected) {
  Machine m(small(1));
  m.run([](RankCtx&) {});
  EXPECT_THROW(m.run([](RankCtx&) {}), std::logic_error);
}

TEST(Machine, RankExceptionPropagates) {
  Machine m(small(2));
  EXPECT_THROW(m.run([](RankCtx& ctx) {
    ctx.barrier();
    if (ctx.rank() == 3) throw std::runtime_error("boom");
    ctx.barrier();  // others block here while rank 3 dies
  }),
               std::runtime_error);
}

TEST(Machine, DeadlockDetected) {
  Machine m(small(1));  // 4 ranks
  EXPECT_THROW(m.run([](RankCtx& ctx) {
    std::array<std::byte, 8> buf{};
    // Everyone receives, nobody sends.
    ctx.recv((ctx.rank() + 1) % ctx.size(), buf);
  }),
               std::runtime_error);
}

TEST(Machine, PlacementMatchesMode) {
  Machine m(small(2, sys::OpMode::kSmp1));
  EXPECT_EQ(m.num_ranks(), 2u);
  m.run([](RankCtx& ctx) {
    EXPECT_EQ(ctx.node_id(), ctx.rank());
    EXPECT_EQ(ctx.core_id(), 0u);
  });
}

TEST(Machine, SendRecvMovesData) {
  Machine m(small(2));
  m.run([](RankCtx& ctx) {
    const unsigned p = ctx.size();
    std::array<u64, 4> buf{};
    if (ctx.rank() == 0) {
      for (unsigned d = 1; d < p; ++d) {
        std::array<u64, 4> payload{d, d * 2, d * 3, d * 4};
        ctx.send_values<u64>(d, payload, /*tag=*/7);
      }
    } else {
      ctx.recv_values<u64>(0, buf, /*tag=*/7);
      EXPECT_EQ(buf[0], ctx.rank());
      EXPECT_EQ(buf[3], ctx.rank() * 4);
    }
  });
}

TEST(Machine, RecvBlocksUntilSendAndTimeAdvances) {
  Machine m(small(2, sys::OpMode::kSmp1));
  m.run([](RankCtx& ctx) {
    std::array<double, 128> buf{};
    if (ctx.rank() == 0) {
      // Sender does a pile of compute first.
      isa::LoopDesc d;
      d.name = "delay";
      d.trip = 100000;
      d.body.int_at(isa::IntOp::kAlu) = 4;
      ctx.loop(d);
      buf.fill(3.25);
      ctx.send_values<double>(1, buf);
    } else {
      const cycles_t t0 = ctx.now();
      ctx.recv_values<double>(0, buf);
      // The receiver must have waited for the sender's compute + transfer.
      EXPECT_GT(ctx.now(), t0 + 100000);
      EXPECT_EQ(buf[17], 3.25);
      EXPECT_GT(ctx.core().stats().wait_cycles, 0u);
    }
  });
}

TEST(Machine, MessageOrderIsFifoPerPair) {
  Machine m(small(1));
  m.run([](RankCtx& ctx) {
    if (ctx.rank() == 0) {
      for (u64 i = 0; i < 10; ++i) {
        std::array<u64, 1> v{i};
        ctx.send_values<u64>(1, v);
      }
    } else if (ctx.rank() == 1) {
      for (u64 i = 0; i < 10; ++i) {
        std::array<u64, 1> v{};
        ctx.recv_values<u64>(0, v);
        EXPECT_EQ(v[0], i);
      }
    }
  });
}

TEST(Machine, TagsMatchSelectively) {
  Machine m(small(1));
  m.run([](RankCtx& ctx) {
    if (ctx.rank() == 0) {
      std::array<u64, 1> a{111}, b{222};
      ctx.send_values<u64>(1, a, /*tag=*/1);
      ctx.send_values<u64>(1, b, /*tag=*/2);
    } else if (ctx.rank() == 1) {
      std::array<u64, 1> v{};
      ctx.recv_values<u64>(0, v, /*tag=*/2);  // out of order by tag
      EXPECT_EQ(v[0], 222u);
      ctx.recv_values<u64>(0, v, /*tag=*/1);
      EXPECT_EQ(v[0], 111u);
    }
  });
}

TEST(Machine, SendRecvSizeMismatchFails) {
  Machine m(small(1));
  EXPECT_THROW(m.run([](RankCtx& ctx) {
    if (ctx.rank() == 0) {
      std::array<u64, 2> v{};
      ctx.send_values<u64>(1, v);
    } else if (ctx.rank() == 1) {
      std::array<u64, 3> v{};
      ctx.recv_values<u64>(0, v);
    } else {
      ctx.barrier();
    }
  }),
               std::runtime_error);
}

TEST(Machine, SendRecvExchange) {
  Machine m(small(2));
  m.run([](RankCtx& ctx) {
    const unsigned peer = ctx.rank() ^ 1u;
    std::array<u64, 8> out{}, in{};
    out.fill(ctx.rank());
    ctx.sendrecv(peer, std::as_bytes(std::span(out)),
                 std::as_writable_bytes(std::span(in)));
    EXPECT_EQ(in[0], peer);
  });
}

TEST(Machine, DeterministicElapsedTime) {
  auto run_once = [] {
    Machine m(small(2));
    m.run([](RankCtx& ctx) {
      ctx.mpi_init();
      isa::LoopDesc d;
      d.trip = 1000 + ctx.rank() * 37;
      d.body.fp_at(isa::FpOp::kFma) = 2;
      d.body.ls_at(isa::LsOp::kLoadDouble) = 1;
      auto arr = ctx.alloc<double>(4096);
      ctx.loop(d, {MemRange{arr.addr(), arr.bytes(), false}});
      const double s = ctx.allreduce_sum(1.0);
      EXPECT_EQ(s, double(ctx.size()));
      ctx.mpi_finalize();
    });
    return m.elapsed();
  };
  const cycles_t a = run_once();
  const cycles_t b = run_once();
  EXPECT_EQ(a, b);
  EXPECT_GT(a, 0u);
}

}  // namespace
}  // namespace bgp::rt
