// Tests of the OpenMP-style parallel_loop worksharing (the paper's §IX
// hybrid MPI+OpenMP direction): work splitting, shared-cache behaviour,
// fork/join timing and mode interactions.
#include <gtest/gtest.h>

#include "runtime/machine.hpp"
#include "runtime/rankctx.hpp"

namespace bgp::rt {
namespace {

isa::LoopDesc fma_loop(u64 trip) {
  isa::LoopDesc d;
  d.name = "work";
  d.trip = trip;
  d.body.fp_at(isa::FpOp::kFma) = 2;
  d.body.int_at(isa::IntOp::kAlu) = 1;
  return d;
}

MachineConfig smp4(unsigned nodes = 1) {
  MachineConfig cfg;
  cfg.num_nodes = nodes;
  cfg.mode = sys::OpMode::kSmp4;
  return cfg;
}

TEST(ParallelLoop, TeamSizeFollowsMode) {
  {
    Machine m(smp4());
    m.run([](RankCtx& ctx) { EXPECT_EQ(ctx.num_threads(), 4u); });
  }
  {
    MachineConfig cfg;
    cfg.num_nodes = 1;
    cfg.mode = sys::OpMode::kDual;
    Machine m(cfg);
    m.run([](RankCtx& ctx) { EXPECT_EQ(ctx.num_threads(), 2u); });
  }
  {
    MachineConfig cfg;
    cfg.num_nodes = 1;
    cfg.mode = sys::OpMode::kVnm;
    Machine m(cfg);
    m.run([](RankCtx& ctx) { EXPECT_EQ(ctx.num_threads(), 1u); });
  }
}

TEST(ParallelLoop, SplitsWorkAcrossAllFourCores) {
  Machine m(smp4());
  m.run([](RankCtx& ctx) { ctx.parallel_loop(fma_loop(100000)); });
  // Every core executed ~1/4 of the FMAs.
  auto& node = m.partition().node(0);
  for (unsigned c = 0; c < 4; ++c) {
    EXPECT_NEAR(static_cast<double>(node.core(c).stats().flops),
                100000.0, 64.0)
        << "core " << c;  // 2 FMA/iter * 2 flops * trip/4
  }
}

TEST(ParallelLoop, FourThreadsBeatOneOnComputeBoundWork) {
  auto elapsed = [](unsigned nthreads) {
    Machine m(smp4());
    m.run([&](RankCtx& ctx) {
      ctx.parallel_loop(fma_loop(400000), {}, nthreads);
    });
    return m.elapsed();
  };
  const cycles_t t1 = elapsed(1);
  const cycles_t t4 = elapsed(4);
  EXPECT_LT(t4, t1);
  // Near-perfect scaling on compute-bound work (within fork/join overhead).
  EXPECT_NEAR(static_cast<double>(t1) / static_cast<double>(t4), 4.0, 0.3);
}

TEST(ParallelLoop, MemoryRangesAreSliced) {
  Machine m(smp4());
  m.run([](RankCtx& ctx) {
    auto arr = ctx.alloc<double>(64 * 1024);  // 512 KiB
    isa::LoopDesc d = fma_loop(64 * 1024);
    d.body.ls_at(isa::LsOp::kLoadDouble) = 1;
    ctx.parallel_loop(d, {MemRange{arr.addr(), arr.bytes(), false}});
  });
  // Each core's L1 saw roughly a quarter of the lines.
  auto& node = m.partition().node(0);
  const u64 total_lines = 512 * 1024 / 32;
  for (unsigned c = 0; c < 4; ++c) {
    const u64 reads = node.core(c).id() >= 0
                          ? node.memory().l1d(c).stats().read_access
                          : 0;
    EXPECT_NEAR(static_cast<double>(reads),
                static_cast<double>(total_lines) / 4.0,
                static_cast<double>(total_lines) / 16.0)
        << "core " << c;
  }
}

TEST(ParallelLoop, OversubscriptionThrows) {
  Machine m(smp4());
  EXPECT_THROW(m.run([](RankCtx& ctx) {
    ctx.parallel_loop(fma_loop(100), {}, 5);
  }),
               std::invalid_argument);
}

TEST(ParallelLoop, SingleThreadEqualsLoop) {
  auto run_with = [](bool parallel) {
    MachineConfig cfg;
    cfg.num_nodes = 1;
    cfg.mode = sys::OpMode::kSmp1;
    Machine m(cfg);
    m.run([&](RankCtx& ctx) {
      if (parallel) {
        ctx.parallel_loop(fma_loop(5000), {}, 1);
      } else {
        ctx.loop(fma_loop(5000));
      }
    });
    return m.elapsed();
  };
  EXPECT_EQ(run_with(true), run_with(false));
}

TEST(ParallelLoop, DualModeTeamsDoNotOverlap) {
  MachineConfig cfg;
  cfg.num_nodes = 1;
  cfg.mode = sys::OpMode::kDual;  // 2 processes x 2 threads
  Machine m(cfg);
  m.run([](RankCtx& ctx) { ctx.parallel_loop(fma_loop(10000)); });
  // Process 0 used cores 0-1, process 1 used cores 2-3; all four carry
  // roughly equal work, none is idle.
  auto& node = m.partition().node(0);
  for (unsigned c = 0; c < 4; ++c) {
    EXPECT_GT(node.core(c).stats().flops, 0u) << "core " << c;
  }
}

TEST(ParallelLoop, HybridMatchesVnmThroughputShape) {
  // The §IX question: 1 process x 4 threads vs 4 processes x 1 thread on
  // the same chip, same total work. Both must complete in the same order
  // of magnitude; hybrid pays fork/join, VNM pays MPI overheads.
  auto vnm_time = [] {
    MachineConfig cfg;
    cfg.num_nodes = 1;
    cfg.mode = sys::OpMode::kVnm;
    Machine m(cfg);
    m.run([](RankCtx& ctx) { ctx.loop(fma_loop(100000)); });  // 1/4 each
    return m.elapsed();
  }();
  auto smp4_time = [] {
    Machine m(smp4());
    m.run([](RankCtx& ctx) { ctx.parallel_loop(fma_loop(400000)); });
    return m.elapsed();
  }();
  EXPECT_LT(static_cast<double>(smp4_time),
            1.5 * static_cast<double>(vnm_time));
  EXPECT_LT(static_cast<double>(vnm_time),
            1.5 * static_cast<double>(smp4_time));
}

}  // namespace
}  // namespace bgp::rt
