// The crash-safe dump pipeline under injected faults: atomic writes with
// bounded retry, lost dumps, silent corruption caught by the v2 CRCs, and
// counter-wrap defects surfacing in the sanity report.
#include <gtest/gtest.h>

#include <filesystem>

#include "common/binio.hpp"
#include "core/session.hpp"
#include "fault/fault.hpp"
#include "postproc/loader.hpp"
#include "postproc/sanity.hpp"

namespace bgp::pc {
namespace {

namespace fs = std::filesystem;

isa::LoopDesc fma_loop(u64 trip) {
  isa::LoopDesc d;
  d.name = "fma";
  d.trip = trip;
  d.body.fp_at(isa::FpOp::kFma) = 2;
  d.body.int_at(isa::IntOp::kAlu) = 1;
  return d;
}

class DumpFault : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test: ctest -j runs fixture tests concurrently.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::temp_directory_path() /
           (std::string("bgpc_dump_fault_") + info->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  /// Run a 2-node SMP session with `inj` attached and return it.
  void run_session(fault::FaultInjector& inj, Session*& out) {
    rt::MachineConfig mc;
    mc.num_nodes = 2;
    mc.mode = sys::OpMode::kSmp1;
    machine_ = std::make_unique<rt::Machine>(mc);
    machine_->set_fault_injector(&inj);
    Options o;
    o.app_name = "faulty";
    o.dump_dir = dir_;
    o.fault = &inj;
    session_ = std::make_unique<Session>(*machine_, o);
    session_->link_with_mpi();
    machine_->run([&](rt::RankCtx& ctx) {
      ctx.mpi_init();
      ctx.loop(fma_loop(200), {});
      ctx.mpi_finalize();
    });
    out = session_.get();
  }

  static const DumpWriteOutcome& outcome_for(const Session& s, unsigned node) {
    for (const auto& o : s.write_outcomes()) {
      if (o.node == node) return o;
    }
    throw std::logic_error("no outcome for node");
  }

  fs::path dir_;
  std::unique_ptr<rt::Machine> machine_;
  std::unique_ptr<Session> session_;
};

TEST_F(DumpFault, TransientWriteErrorIsRetriedToSuccess) {
  fault::FaultPlan plan;
  plan.add({.kind = fault::FaultKind::kDumpWriteError,
            .node = 0,
            .attempts = 2});
  fault::FaultInjector inj(std::move(plan));
  Session* s = nullptr;
  run_session(inj, s);

  ASSERT_EQ(s->write_outcomes().size(), 2u);
  const auto& hit = outcome_for(*s, 0);
  EXPECT_TRUE(hit.ok);
  EXPECT_EQ(hit.attempts, 3u);  // two injected failures, then success
  const auto& clean = outcome_for(*s, 1);
  EXPECT_TRUE(clean.ok);
  EXPECT_EQ(clean.attempts, 1u);
  EXPECT_EQ(s->dump_files().size(), 2u);
  // The retried dump parses cleanly — no torn state left behind.
  EXPECT_NO_THROW((void)post::load_dump(hit.path));
  EXPECT_FALSE(fs::exists(hit.path.string() + ".tmp"));
}

TEST_F(DumpFault, ExhaustedRetryBudgetLosesOnlyThatDump) {
  fault::FaultPlan plan;
  plan.add({.kind = fault::FaultKind::kDumpWriteError,
            .node = 1,
            .attempts = fault::kAlwaysFail});
  fault::FaultInjector inj(std::move(plan));
  Session* s = nullptr;
  run_session(inj, s);

  ASSERT_EQ(s->write_outcomes().size(), 2u);
  const auto& lost = outcome_for(*s, 1);
  EXPECT_FALSE(lost.ok);
  EXPECT_EQ(lost.attempts, Options{}.dump_write_retries + 1);
  EXPECT_NE(lost.error.find("injected I/O error"), std::string::npos);
  EXPECT_FALSE(fs::exists(lost.path));
  EXPECT_FALSE(fs::exists(lost.path.string() + ".tmp"));

  // Node 0's dump survived and is minable.
  ASSERT_EQ(s->dump_files().size(), 1u);
  EXPECT_EQ(post::load_dump(s->dump_files()[0]).node_id, 0u);
}

TEST_F(DumpFault, SilentCorruptionIsRecordedAndCaughtByCrc) {
  fault::FaultPlan plan;
  plan.add({.kind = fault::FaultKind::kDumpBitFlip,
            .node = 0,
            .byte_offset = 200,
            .bit = 5});
  fault::FaultInjector inj(std::move(plan));
  Session* s = nullptr;
  run_session(inj, s);

  const auto& hit = outcome_for(*s, 0);
  EXPECT_TRUE(hit.ok);  // the write itself "succeeded" — that's the point
  ASSERT_EQ(hit.injected.size(), 1u);
  EXPECT_NE(hit.injected[0].find("flipped bit"), std::string::npos);
  try {
    (void)post::load_dump(hit.path);
    FAIL() << "expected the CRC to catch the flip";
  } catch (const BinIoError& e) {
    EXPECT_NE(std::string(e.what()).find("CRC mismatch"), std::string::npos)
        << e.what();
  }
}

TEST_F(DumpFault, TruncatedDumpFailsToParse) {
  fault::FaultPlan plan;
  plan.add({.kind = fault::FaultKind::kDumpTruncate,
            .node = 1,
            .keep_bytes = 64});
  fault::FaultInjector inj(std::move(plan));
  Session* s = nullptr;
  run_session(inj, s);

  const auto& hit = outcome_for(*s, 1);
  ASSERT_EQ(hit.injected.size(), 1u);
  EXPECT_THROW((void)post::load_dump(hit.path), BinIoError);
  // And node 0 still parses.
  EXPECT_NO_THROW((void)post::load_dump(outcome_for(*s, 0).path));
}

TEST_F(DumpFault, CounterWrapSurfacesInSanity) {
  // Narrow the cycle counter of core 0 (mode-0 event, counter 0 region)
  // with a margin smaller than the measured interval, so it wraps mid-run.
  fault::FaultPlan plan;
  plan.add({.kind = fault::FaultKind::kCounterWrap,
            .node = 0,
            .counter = isa::event_counter(isa::ev::fpu_op(0, isa::FpOp::kFma)),
            .margin = 10});
  fault::FaultInjector inj(std::move(plan));
  Session* s = nullptr;
  run_session(inj, s);

  const auto dumps = post::load_dumps(dir_, "faulty");
  const auto rep = post::check(dumps);
  EXPECT_FALSE(rep.ok());
  bool wrap_found = false;
  for (const auto& p : rep.problems) {
    if (p.kind == post::ProblemKind::kCounterWrap) {
      wrap_found = true;
      EXPECT_EQ(p.node, 0u);
      EXPECT_NE(p.text.find("wraparound suspected"), std::string::npos);
    }
  }
  EXPECT_TRUE(wrap_found);
}

}  // namespace
}  // namespace bgp::pc
