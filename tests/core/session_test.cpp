#include "core/session.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "common/binio.hpp"
#include "core/capi.hpp"

namespace bgp::pc {
namespace {

rt::MachineConfig cfg(unsigned nodes = 4,
                      sys::OpMode mode = sys::OpMode::kVnm) {
  rt::MachineConfig c;
  c.num_nodes = nodes;
  c.mode = mode;
  return c;
}

Options mem_only(const char* app = "test") {
  Options o;
  o.app_name = app;
  o.write_dumps = false;
  return o;
}

isa::LoopDesc fma_loop(u64 trip) {
  isa::LoopDesc d;
  d.name = "fma";
  d.trip = trip;
  d.body.fp_at(isa::FpOp::kFma) = 2;
  d.body.int_at(isa::IntOp::kAlu) = 1;
  return d;
}

TEST(Session, CardParityPicksCounterMode) {
  rt::Machine m(cfg(4));  // nodes_per_card = 2 -> cards 0,0,1,1
  Session s(m, mem_only());
  m.run([&](rt::RankCtx& ctx) { s.BGP_Initialize(ctx); });
  EXPECT_EQ(s.monitor(0).programmed_mode(), 0);
  EXPECT_EQ(s.monitor(1).programmed_mode(), 0);
  EXPECT_EQ(s.monitor(2).programmed_mode(), 1);
  EXPECT_EQ(s.monitor(3).programmed_mode(), 1);
}

TEST(Session, CountsOnlyBetweenStartAndStop) {
  rt::Machine m(cfg(1, sys::OpMode::kSmp1));
  Session s(m, mem_only());
  m.run([&](rt::RankCtx& ctx) {
    ctx.loop(fma_loop(100));  // before initialize: not counted
    s.BGP_Initialize(ctx);
    ctx.loop(fma_loop(100));  // before start: not counted
    s.BGP_Start(ctx);
    ctx.loop(fma_loop(1000));
    s.BGP_Stop(ctx);
    ctx.loop(fma_loop(100));  // after stop: not counted
    s.BGP_Finalize(ctx);
  });
  const auto& rec = s.monitor(0).set_record(0);
  const auto counter =
      isa::event_counter(isa::ev::fpu_op(0, isa::FpOp::kFma));
  EXPECT_EQ(rec.deltas[counter], 2000u);
  EXPECT_EQ(rec.pairs, 1u);
}

TEST(Session, MultipleSetsIsolateRegions) {
  rt::Machine m(cfg(1, sys::OpMode::kSmp1));
  Session s(m, mem_only());
  m.run([&](rt::RankCtx& ctx) {
    s.BGP_Initialize(ctx);
    s.BGP_Start(ctx, 1);
    ctx.loop(fma_loop(500));
    s.BGP_Stop(ctx, 1);
    s.BGP_Start(ctx, 2);
    ctx.loop(fma_loop(300));
    s.BGP_Stop(ctx, 2);
    s.BGP_Finalize(ctx);
  });
  const auto counter =
      isa::event_counter(isa::ev::fpu_op(0, isa::FpOp::kFma));
  EXPECT_EQ(s.monitor(0).set_record(1).deltas[counter], 1000u);
  EXPECT_EQ(s.monitor(0).set_record(2).deltas[counter], 600u);
}

TEST(Session, RepeatedPairsAccumulate) {
  rt::Machine m(cfg(1, sys::OpMode::kSmp1));
  Session s(m, mem_only());
  m.run([&](rt::RankCtx& ctx) {
    s.BGP_Initialize(ctx);
    for (int i = 0; i < 5; ++i) {
      s.BGP_Start(ctx, 3);
      ctx.loop(fma_loop(10));
      s.BGP_Stop(ctx, 3);
      ctx.loop(fma_loop(1000));  // outside the set
    }
    s.BGP_Finalize(ctx);
  });
  const auto& rec = s.monitor(0).set_record(3);
  EXPECT_EQ(rec.pairs, 5u);
  const auto counter =
      isa::event_counter(isa::ev::fpu_op(0, isa::FpOp::kFma));
  EXPECT_EQ(rec.deltas[counter], 100u);
}

TEST(Session, VnmRanksShareTheNodeUnit) {
  rt::Machine m(cfg(1, sys::OpMode::kVnm));
  Session s(m, mem_only());
  m.run([&](rt::RankCtx& ctx) {
    s.BGP_Initialize(ctx);
    s.BGP_Start(ctx);
    ctx.loop(fma_loop(100 * (ctx.rank() + 1)));
    s.BGP_Stop(ctx);
    s.BGP_Finalize(ctx);
  });
  // All four cores' FMA counts must appear in the node's single record.
  const auto& rec = s.monitor(0).set_record(0);
  for (unsigned core = 0; core < 4; ++core) {
    const auto counter =
        isa::event_counter(isa::ev::fpu_op(core, isa::FpOp::kFma));
    EXPECT_EQ(rec.deltas[counter], 200u * (core + 1)) << core;
  }
}

TEST(Session, StopWithoutStartThrows) {
  rt::Machine m(cfg(1, sys::OpMode::kSmp1));
  Session s(m, mem_only());
  EXPECT_THROW(m.run([&](rt::RankCtx& ctx) {
    s.BGP_Initialize(ctx);
    s.BGP_Stop(ctx);
  }),
               std::logic_error);
}

TEST(Session, StartBeforeInitializeThrows) {
  rt::Machine m(cfg(1, sys::OpMode::kSmp1));
  Session s(m, mem_only());
  EXPECT_THROW(m.run([&](rt::RankCtx& ctx) { s.BGP_Start(ctx); }),
               std::logic_error);
}

TEST(Session, OverheadMatchesPaperBudget) {
  // §IV: initialize + start + stop = 196 cycles.
  EXPECT_EQ(measured_overhead(Options{}), 196u);

  rt::Machine m(cfg(1, sys::OpMode::kSmp1));
  Session s(m, mem_only());
  cycles_t overhead = 0;
  m.run([&](rt::RankCtx& ctx) {
    const cycles_t t0 = ctx.core().read_timebase();
    s.BGP_Initialize(ctx);
    s.BGP_Start(ctx);
    s.BGP_Stop(ctx);
    overhead = ctx.core().read_timebase() - t0;
  });
  EXPECT_EQ(overhead, 196u);
}

TEST(Session, MpiHooksInstrumentWithoutCodeChanges) {
  rt::Machine m(cfg(2, sys::OpMode::kVnm));
  Session s(m, mem_only());
  s.link_with_mpi();
  m.run([&](rt::RankCtx& ctx) {
    ctx.mpi_init();  // BGP_Initialize + BGP_Start run inside
    ctx.loop(fma_loop(100));
    ctx.mpi_finalize();  // BGP_Stop + BGP_Finalize run inside
  });
  const auto counter =
      isa::event_counter(isa::ev::fpu_op(0, isa::FpOp::kFma));
  EXPECT_EQ(s.monitor(0).set_record(0).deltas[counter], 200u);
  EXPECT_EQ(s.monitor(1).set_record(0).pairs, 1u);
}

TEST(Session, DumpFilesRoundTrip) {
  const auto dir =
      std::filesystem::temp_directory_path() / "bgpc_session_test";
  std::filesystem::create_directories(dir);
  Options o;
  o.app_name = "roundtrip";
  o.dump_dir = dir;
  rt::Machine m(cfg(2, sys::OpMode::kVnm));
  Session s(m, o);
  s.link_with_mpi();
  m.run([&](rt::RankCtx& ctx) {
    ctx.mpi_init();
    ctx.loop(fma_loop(64));
    ctx.mpi_finalize();
  });
  ASSERT_EQ(s.dump_files().size(), 2u);
  for (const auto& f : s.dump_files()) {
    const auto dump = NodeMonitor::parse(read_file_bytes(f));
    EXPECT_EQ(dump.app_name, "roundtrip");
    ASSERT_EQ(dump.sets.size(), 1u);
    EXPECT_EQ(dump.sets[0].pairs, 1u);
  }
  std::filesystem::remove_all(dir);
}

TEST(Session, SerializeParseRejectsCorruption) {
  NodeDump d;
  d.node_id = 3;
  d.app_name = "x";
  d.sets.resize(1);
  auto bytes = NodeMonitor::serialize(d);
  EXPECT_EQ(NodeMonitor::parse(bytes).node_id, 3u);

  auto bad_magic = bytes;
  bad_magic[0] = std::byte{0xFF};
  EXPECT_THROW((void)NodeMonitor::parse(bad_magic), BinIoError);

  auto truncated = bytes;
  truncated.resize(truncated.size() - 10);
  EXPECT_THROW((void)NodeMonitor::parse(truncated), BinIoError);

  auto trailing = bytes;
  trailing.push_back(std::byte{0});
  EXPECT_THROW((void)NodeMonitor::parse(trailing), BinIoError);
}

TEST(Session, ThresholdInterruptFiresViaUpc) {
  rt::Machine m(cfg(1, sys::OpMode::kSmp1));
  Session s(m, mem_only());
  unsigned fires = 0;
  m.partition().node(0).upc().set_threshold_handler(
      [&](u8, u64) { ++fires; });
  m.run([&](rt::RankCtx& ctx) {
    s.BGP_Initialize(ctx);
    s.arm_threshold(ctx, isa::ev::fpu_op(0, isa::FpOp::kFma), 500);
    s.BGP_Start(ctx);
    ctx.loop(fma_loop(1000));  // 2000 FMAs > 500 threshold
    s.BGP_Stop(ctx);
  });
  EXPECT_EQ(fires, 1u);
}

TEST(CApi, FreeFunctionsUseBoundSession) {
  rt::Machine m(cfg(1, sys::OpMode::kSmp1));
  Session s(m, mem_only());
  BGP_Bind(&s);
  m.run([&](rt::RankCtx& ctx) {
    BGP_Initialize(ctx);
    BGP_Start(ctx);
    ctx.loop(fma_loop(10));
    BGP_Stop(ctx);
    BGP_Finalize(ctx);
  });
  BGP_Bind(nullptr);
  EXPECT_EQ(s.monitor(0).set_record(0).pairs, 1u);
}

TEST(CApi, UnboundThrows) {
  BGP_Bind(nullptr);
  rt::Machine m(cfg(1, sys::OpMode::kSmp1));
  EXPECT_THROW(m.run([](rt::RankCtx& ctx) { BGP_Initialize(ctx); }),
               std::logic_error);
}

}  // namespace
}  // namespace bgp::pc
