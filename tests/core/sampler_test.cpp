#include "core/sampler.hpp"

#include <gtest/gtest.h>

#include "core/session.hpp"

namespace bgp::pc {
namespace {

rt::MachineConfig one_node() {
  rt::MachineConfig cfg;
  cfg.num_nodes = 1;
  cfg.mode = sys::OpMode::kSmp1;
  return cfg;
}

isa::LoopDesc fma_loop(u64 trip) {
  isa::LoopDesc d;
  d.trip = trip;
  d.body.fp_at(isa::FpOp::kFma) = 1;
  return d;
}

TEST(Sampler, RejectsZeroInterval) {
  rt::Machine m(one_node());
  EXPECT_THROW(Sampler(m.partition().node(0), {}, 0), std::invalid_argument);
}

TEST(Sampler, TimelineTracksMonotoneCounters) {
  rt::Machine m(one_node());
  Options opts;
  opts.write_dumps = false;
  Session session(m, opts);
  auto& node = m.partition().node(0);
  Sampler sampler(node, {isa::ev::fpu_op(0, isa::FpOp::kFma),
                         isa::ev::cycle_count(0)},
                  /*interval=*/1000);

  m.run([&](rt::RankCtx& ctx) {
    session.BGP_Initialize(ctx);
    session.BGP_Start(ctx);
    for (int phase = 0; phase < 20; ++phase) {
      ctx.loop(fma_loop(500));
      sampler.poll();
    }
    session.BGP_Stop(ctx);
  });

  const auto& tl = sampler.timeline();
  ASSERT_GE(tl.size(), 3u);
  for (std::size_t i = 1; i < tl.size(); ++i) {
    EXPECT_GT(tl[i].timestamp, tl[i - 1].timestamp);
    EXPECT_EQ(tl[i].timestamp, tl[i - 1].timestamp + 1000);
    EXPECT_GE(tl[i].values[0], tl[i - 1].values[0]);  // FMA counter grows
  }
  EXPECT_GT(tl.back().values[0], 0u);
}

TEST(Sampler, DeltasMatchTimelineDifferences) {
  rt::Machine m(one_node());
  Options opts;
  opts.write_dumps = false;
  Session session(m, opts);
  auto& node = m.partition().node(0);
  Sampler sampler(node, {isa::ev::fpu_op(0, isa::FpOp::kFma)}, 500);

  m.run([&](rt::RankCtx& ctx) {
    session.BGP_Initialize(ctx);
    session.BGP_Start(ctx);
    for (int phase = 0; phase < 10; ++phase) {
      ctx.loop(fma_loop(300));
      sampler.poll();
    }
    session.BGP_Stop(ctx);
  });

  const auto deltas = sampler.deltas();
  const auto& tl = sampler.timeline();
  ASSERT_EQ(deltas.size(), tl.size() - 1);
  u64 sum = 0;
  for (const auto& d : deltas) sum += d.values[0];
  EXPECT_EQ(sum, tl.back().values[0] - tl.front().values[0]);
}

TEST(Sampler, PhaseChangeVisibleInDeltas) {
  // Two phases: FMA-heavy then integer-only; the FMA delta series must
  // drop to ~zero in the second phase — the phase-detection use case.
  rt::Machine m(one_node());
  Options opts;
  opts.write_dumps = false;
  Session session(m, opts);
  auto& node = m.partition().node(0);
  Sampler sampler(node, {isa::ev::fpu_op(0, isa::FpOp::kFma)}, 2000);

  m.run([&](rt::RankCtx& ctx) {
    session.BGP_Initialize(ctx);
    session.BGP_Start(ctx);
    for (int i = 0; i < 10; ++i) {
      ctx.loop(fma_loop(2000));
      sampler.poll();
    }
    isa::LoopDesc ints;
    ints.trip = 2000;
    ints.body.int_at(isa::IntOp::kAlu) = 4;
    for (int i = 0; i < 10; ++i) {
      ctx.loop(ints);
      sampler.poll();
    }
    session.BGP_Stop(ctx);
  });

  const auto deltas = sampler.deltas();
  ASSERT_GE(deltas.size(), 4u);
  EXPECT_GT(deltas.front().values[0], 0u);
  EXPECT_EQ(deltas.back().values[0], 0u);
}

TEST(Sampler, CsvOutputHasHeaderAndRows) {
  rt::Machine m(one_node());
  Options opts;
  opts.write_dumps = false;
  Session session(m, opts);
  auto& node = m.partition().node(0);
  Sampler sampler(node, {isa::ev::cycle_count(0)}, 100);
  m.run([&](rt::RankCtx& ctx) {
    session.BGP_Initialize(ctx);
    session.BGP_Start(ctx);
    ctx.loop(fma_loop(1000));
    sampler.poll();
    session.BGP_Stop(ctx);
  });
  CsvWriter csv;
  sampler.write_csv(csv);
  EXPECT_NE(csv.text().find("cycle,CORE0_CYCLE_COUNT"), std::string::npos);
  EXPECT_GT(csv.rows(), 1u);
}

}  // namespace
}  // namespace bgp::pc
