// Write-ahead journal contract: appended records replay exactly, a torn or
// bit-flipped tail never surfaces a partial record (committed prefix only),
// the writer truncates torn tails on reopen so appends stay readable, and
// the injected daemon faults (torn append, ENOSPC, EINTR) behave like their
// real counterparts.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "daemon/journal.hpp"
#include "fault/fault.hpp"

namespace fs = std::filesystem;

namespace bgp::daemon {
namespace {

fs::path test_dir() {
  const auto* info = testing::UnitTest::GetInstance()->current_test_info();
  fs::path dir =
      fs::temp_directory_path() / (std::string("bgpcd_jrnl_") + info->name());
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

JournalRecord make_record(unsigned i) {
  JournalRecord rec;
  rec.op = i % 2 == 0 ? journal_op::kAdmit : journal_op::kFinish;
  rec.session = "s" + std::to_string(i);
  json::Value body = json::Value::object();
  body.set("i", json::Value(u64{i}));
  body.set("text", json::Value(std::string(i * 7, 'x')));
  rec.body = body;
  return rec;
}

std::string dump(const JournalRecord& rec) { return rec.to_json().dump(); }

/// Write `n` records; returns the file offset after each append (frame
/// boundaries, for tests that truncate between/inside frames).
std::vector<std::size_t> write_journal(const fs::path& path, unsigned n) {
  std::vector<std::size_t> ends;
  JournalWriter w(path);
  for (unsigned i = 0; i < n; ++i) {
    w.append(make_record(i));
    ends.push_back(static_cast<std::size_t>(fs::file_size(path)));
  }
  return ends;
}

std::vector<std::byte> read_bytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::vector<char> chars{std::istreambuf_iterator<char>(in),
                          std::istreambuf_iterator<char>()};
  std::vector<std::byte> out(chars.size());
  std::memcpy(out.data(), chars.data(), chars.size());
  return out;
}

void write_bytes(const fs::path& path, const std::vector<std::byte>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

TEST(Journal, RoundTripAndPersistence) {
  const fs::path path = test_dir() / "j";
  {
    JournalWriter w(path);
    EXPECT_EQ(w.recovered().records.size(), 0u);
    for (unsigned i = 0; i < 5; ++i) w.append(make_record(i));
    EXPECT_EQ(w.appended(), 5u);
  }
  const JournalReplay replay = replay_journal(path);
  ASSERT_EQ(replay.records.size(), 5u);
  EXPECT_EQ(replay.dropped_bytes, 0u);
  EXPECT_TRUE(replay.tail_error.empty()) << replay.tail_error;
  for (unsigned i = 0; i < 5; ++i) {
    EXPECT_EQ(dump(replay.records[i]), dump(make_record(i)));
  }

  // A second writer sees the history and appends after it.
  {
    JournalWriter w(path);
    EXPECT_EQ(w.recovered().records.size(), 5u);
    w.append(make_record(5));
  }
  EXPECT_EQ(replay_journal(path).records.size(), 6u);
}

TEST(Journal, MissingAndEmptyFilesAreEmptyJournals) {
  const fs::path dir = test_dir();
  EXPECT_EQ(replay_journal(dir / "nope").records.size(), 0u);
  { std::ofstream out(dir / "empty", std::ios::binary); }
  EXPECT_EQ(replay_journal(dir / "empty").records.size(), 0u);
}

TEST(Journal, ForeignFileRefusedNotClobbered) {
  const fs::path path = test_dir() / "notes.txt";
  {
    std::ofstream out(path, std::ios::binary);
    out << "these are someone's notes, not a journal\n";
  }
  EXPECT_THROW((void)replay_journal(path), JournalError);
  EXPECT_THROW(JournalWriter{path}, JournalError);
  // The file must be untouched.
  EXPECT_NE(fs::file_size(path), 0u);
}

// Property: truncating the file at *any* point yields exactly the records
// whose frames survived whole — the committed prefix — and never a torn
// record or a crash.
TEST(Journal, TruncatedTailYieldsExactlyTheCommittedPrefix) {
  const fs::path dir = test_dir();
  const fs::path path = dir / "j";
  const unsigned kRecords = 8;
  const std::vector<std::size_t> ends = write_journal(path, kRecords);
  const std::vector<std::byte> full = read_bytes(path);

  std::mt19937_64 rng(0xC0FFEE);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t cut = rng() % (full.size() + 1);
    std::vector<std::byte> bytes(full.begin(),
                                 full.begin() + static_cast<long>(cut));
    const fs::path p = dir / "cut";
    write_bytes(p, bytes);

    const JournalReplay replay = replay_journal(p);
    std::size_t expected = 0;
    while (expected < ends.size() && ends[expected] <= cut) ++expected;
    ASSERT_EQ(replay.records.size(), expected) << "cut at " << cut;
    for (std::size_t i = 0; i < expected; ++i) {
      EXPECT_EQ(dump(replay.records[i]), dump(make_record(unsigned(i))));
    }
    EXPECT_EQ(replay.valid_bytes + replay.dropped_bytes, cut);
  }
}

// Property: a bit flip anywhere past the header (injected through the same
// fault machinery the dump pipeline uses) invalidates exactly the frame it
// hit — replay returns the intact prefix before it, never a mutated record.
TEST(Journal, BitFlippedTailNeverYieldsACorruptRecord) {
  const fs::path dir = test_dir();
  const fs::path path = dir / "j";
  const unsigned kRecords = 8;
  const std::vector<std::size_t> ends = write_journal(path, kRecords);
  const std::vector<std::byte> full = read_bytes(path);

  std::mt19937_64 rng(0xBADC0DE);
  for (int trial = 0; trial < 200; ++trial) {
    const u32 offset = static_cast<u32>(
        kJournalHeaderBytes + rng() % (full.size() - kJournalHeaderBytes));
    fault::FaultPlan plan;
    fault::FaultEvent flip;
    flip.kind = fault::FaultKind::kDumpBitFlip;
    flip.node = 0;
    flip.byte_offset = offset;
    flip.bit = static_cast<u8>(rng() % 8);
    plan.add(flip);
    fault::FaultInjector injector(plan);

    std::vector<std::byte> bytes = full;
    ASSERT_EQ(injector.corrupt_dump(0, bytes).size(), 1u);
    const fs::path p = dir / "flip";
    write_bytes(p, bytes);

    // The frame containing the flipped byte is the first invalid one.
    std::size_t victim = 0;
    while (victim < ends.size() && ends[victim] <= offset) ++victim;

    const JournalReplay replay = replay_journal(p);
    ASSERT_EQ(replay.records.size(), victim)
        << "flip at " << offset << " bit " << unsigned(flip.bit);
    for (std::size_t i = 0; i < victim; ++i) {
      EXPECT_EQ(dump(replay.records[i]), dump(make_record(unsigned(i))));
    }
    EXPECT_FALSE(replay.tail_error.empty());
  }
}

TEST(Journal, WriterTruncatesTornTailAndAppendsCleanly) {
  const fs::path dir = test_dir();
  const fs::path path = dir / "j";
  const std::vector<std::size_t> ends = write_journal(path, 4);

  // Tear the last frame: keep the boundary of record 2 plus a few bytes.
  std::vector<std::byte> full = read_bytes(path);
  full.resize(ends[2] + 3);
  write_bytes(path, full);

  {
    JournalWriter w(path);
    EXPECT_EQ(w.recovered().records.size(), 3u);
    EXPECT_EQ(w.recovered().dropped_bytes, 3u);
    EXPECT_FALSE(w.recovered().tail_error.empty());
    // The tail was truncated: the file ends on a frame boundary again.
    EXPECT_EQ(fs::file_size(path), ends[2]);
    w.append(make_record(100));
  }
  const JournalReplay replay = replay_journal(path);
  ASSERT_EQ(replay.records.size(), 4u);
  EXPECT_EQ(dump(replay.records[3]), dump(make_record(100)));
  EXPECT_TRUE(replay.tail_error.empty()) << replay.tail_error;
}

TEST(Journal, InjectedTornAppendLeavesARecoverableTail) {
  const fs::path path = test_dir() / "j";
  std::vector<fault::DaemonFaultEvent> plan;
  fault::DaemonFaultEvent torn;
  torn.kind = fault::DaemonFaultKind::kJournalTorn;
  torn.after = 2;
  torn.keep_bytes = 5;
  plan.push_back(torn);
  fault::DaemonFaultInjector faults(std::move(plan));

  {
    JournalWriter w(path, &faults);
    w.append(make_record(0));
    w.append(make_record(1));
    EXPECT_THROW(w.append(make_record(2)), JournalWriteError);
    EXPECT_EQ(w.appended(), 2u);
    EXPECT_EQ(faults.injected_log().size(), 1u);
  }
  // Exactly what a crash mid-append leaves: two whole frames + 5 tail
  // bytes. Replay keeps the committed prefix; a new writer truncates.
  const JournalReplay replay = replay_journal(path);
  ASSERT_EQ(replay.records.size(), 2u);
  EXPECT_EQ(replay.dropped_bytes, 5u);
  JournalWriter w2(path);
  EXPECT_EQ(w2.recovered().records.size(), 2u);
}

TEST(Journal, InjectedEnospcAndEintr) {
  const fs::path path = test_dir() / "j";
  std::vector<fault::DaemonFaultEvent> plan;
  fault::DaemonFaultEvent eintr;
  eintr.kind = fault::DaemonFaultKind::kJournalEintr;
  eintr.after = 0;
  plan.push_back(eintr);
  fault::DaemonFaultEvent transient;
  transient.kind = fault::DaemonFaultKind::kJournalError;
  transient.after = 1;
  plan.push_back(transient);
  fault::DaemonFaultEvent sticky;
  sticky.kind = fault::DaemonFaultKind::kJournalError;
  sticky.after = 3;
  sticky.persistent = true;
  plan.push_back(sticky);
  fault::DaemonFaultInjector faults(std::move(plan));

  JournalWriter w(path, &faults);
  w.append(make_record(0));  // EINTR: retried internally, append succeeds
  EXPECT_THROW(w.append(make_record(1)), JournalWriteError);  // transient
  w.append(make_record(2));                                   // recovered
  EXPECT_THROW(w.append(make_record(3)), JournalWriteError);  // sticky...
  EXPECT_THROW(w.append(make_record(4)), JournalWriteError);  // ...forever
  EXPECT_THROW(w.append(make_record(5)), JournalWriteError);
  EXPECT_EQ(w.appended(), 2u);
}

}  // namespace
}  // namespace bgp::daemon
