// Snapshot-file (BGPSNAP) round trips and the seqlock's no-torn-reads
// guarantee: a reader racing a writer must always observe a snapshot some
// single publish produced, never a mix of two. The concurrency tests here
// are the tsan lane's daemon coverage.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <thread>

#include "daemon/snapfile.hpp"

namespace fs = std::filesystem;

namespace bgp::daemon {
namespace {

fs::path temp_path(const char* name) {
  const auto* info = testing::UnitTest::GetInstance()->current_test_info();
  fs::path dir = fs::temp_directory_path() /
                 (std::string("bgpsnap_") + info->name());
  fs::create_directories(dir);
  return dir / name;
}

std::array<u64, isa::kCountersPerUnit> stamped(u64 stamp) {
  std::array<u64, isa::kCountersPerUnit> c{};
  c.fill(stamp);
  return c;
}

TEST(Snapfile, RoundTripsNodesAndMetrics) {
  const fs::path path = temp_path("rt.bgpsnap");
  {
    SnapshotWriter w(path, "CG", "sess-1", 3);
    w.publish_node(0, 0, 0, 0, SnapState::kCounting, 1000, stamped(7));
    w.publish_node(2, 2, 102, 1, SnapState::kFinal, 2000, stamped(9));
    w.publish_metrics("# HELP x y\nx 1\n");
  }
  SnapshotReader r = SnapshotReader::open_file(path);
  EXPECT_EQ(r.app(), "CG");
  EXPECT_EQ(r.session(), "sess-1");
  ASSERT_EQ(r.num_nodes(), 3u);

  NodeSnapshot snap;
  ASSERT_TRUE(r.read_node(0, snap));
  EXPECT_EQ(snap.state, SnapState::kCounting);
  EXPECT_EQ(snap.published_cycle, 1000u);
  EXPECT_EQ(snap.counters[0], 7u);
  EXPECT_EQ(snap.counters[isa::kCountersPerUnit - 1], 7u);

  ASSERT_TRUE(r.read_node(1, snap));  // never published: still idle
  EXPECT_EQ(snap.state, SnapState::kIdle);

  ASSERT_TRUE(r.read_node(2, snap));
  EXPECT_EQ(snap.state, SnapState::kFinal);
  EXPECT_EQ(snap.card_id, 102u);
  EXPECT_EQ(snap.mode, 1u);
  EXPECT_EQ(snap.counters[5], 9u);

  std::string metrics;
  ASSERT_TRUE(r.read_metrics(metrics));
  EXPECT_EQ(metrics, "# HELP x y\nx 1\n");
}

TEST(Snapfile, RepublishOverwritesTheActiveSlot) {
  const fs::path path = temp_path("re.bgpsnap");
  SnapshotWriter w(path, "EP", "s", 1);
  for (u64 i = 1; i <= 5; ++i) {
    w.publish_node(0, 0, 0, 0, SnapState::kCounting, i * 100, stamped(i));
  }
  SnapshotReader r = SnapshotReader::from_view(w.data(), w.size());
  NodeSnapshot snap;
  ASSERT_TRUE(r.read_node(0, snap));
  EXPECT_EQ(snap.published_cycle, 500u);
  EXPECT_EQ(snap.counters[17], 5u);
}

TEST(Snapfile, MetricsTextTruncatesToSlotCapacity) {
  const fs::path path = temp_path("trunc.bgpsnap");
  SnapshotWriter w(path, "EP", "s", 1, /*metrics_capacity=*/64);
  w.publish_metrics(std::string(1000, 'm'));
  SnapshotReader r = SnapshotReader::from_view(w.data(), w.size());
  std::string metrics;
  ASSERT_TRUE(r.read_metrics(metrics));
  EXPECT_LE(metrics.size(), 64u);
  EXPECT_EQ(metrics, std::string(metrics.size(), 'm'));
}

TEST(Snapfile, OpenFileRejectsForeignAndShortFiles) {
  const fs::path missing = temp_path("missing.bgpsnap");
  EXPECT_THROW((void)SnapshotReader::open_file(missing), std::exception);

  const fs::path foreign = temp_path("foreign.bgpsnap");
  std::ofstream(foreign, std::ios::binary) << "not a snapshot at all";
  EXPECT_THROW((void)SnapshotReader::open_file(foreign), std::exception);

  // A real header cut short must not be readable either.
  const fs::path shorty = temp_path("short.bgpsnap");
  {
    SnapshotWriter w(temp_path("full.bgpsnap"), "EP", "s", 2);
    std::ofstream out(shorty, std::ios::binary);
    out.write(reinterpret_cast<const char*>(w.data()),
              static_cast<std::streamsize>(w.size() / 2));
  }
  EXPECT_THROW((void)SnapshotReader::open_file(shorty), std::exception);
}

// The seqlock contract: under a continuously republishing writer, every
// successful read is internally consistent — all 256 counters carry the
// same stamp and the published cycle matches it. A torn read would mix
// stamps from two publishes.
TEST(Snapfile, ConcurrentReadersNeverSeeTornSnapshots) {
  const fs::path path = temp_path("race.bgpsnap");
  SnapshotWriter w(path, "CG", "race", 2);
  std::atomic<bool> stop{false};
  std::atomic<u64> reads{0};

  std::thread writer([&] {
    u64 stamp = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      w.publish_node(0, 0, 0, 0, SnapState::kCounting, stamp * 10,
                     stamped(stamp));
      w.publish_node(1, 1, 101, 1, SnapState::kCounting, stamp * 10,
                     stamped(stamp));
      w.publish_metrics("stamp " + std::to_string(stamp) + "\n");
      ++stamp;
    }
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      SnapshotReader r = SnapshotReader::from_view(w.data(), w.size());
      NodeSnapshot snap;
      std::string metrics;
      while (reads.load(std::memory_order_relaxed) < 2000) {
        for (unsigned node = 0; node < 2; ++node) {
          if (!r.read_node(node, snap)) continue;  // pathological churn: retry
          if (snap.state == SnapState::kIdle) continue;
          const u64 stamp = snap.counters[0];
          EXPECT_EQ(snap.published_cycle, stamp * 10);
          for (std::size_t i = 0; i < snap.counters.size(); ++i) {
            ASSERT_EQ(snap.counters[i], stamp) << "torn read at counter " << i;
          }
          reads.fetch_add(1, std::memory_order_relaxed);
        }
        if (r.read_metrics(metrics) && !metrics.empty()) {
          EXPECT_EQ(metrics.substr(0, 6), "stamp ");
          EXPECT_EQ(metrics.back(), '\n');
        }
      }
    });
  }
  for (auto& t : readers) t.join();
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  EXPECT_GE(reads.load(), 2000u);
}

// Same race through the on-disk mapping (open_file) instead of the live
// view — the cross-process attach path.
TEST(Snapfile, FileReaderRacesWriter) {
  const fs::path path = temp_path("filerace.bgpsnap");
  SnapshotWriter w(path, "EP", "filerace", 1);
  w.publish_node(0, 0, 0, 0, SnapState::kCounting, 10, stamped(1));

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    u64 stamp = 2;
    while (!stop.load(std::memory_order_relaxed)) {
      w.publish_node(0, 0, 0, 0, SnapState::kCounting, stamp * 10,
                     stamped(stamp));
      ++stamp;
    }
  });

  SnapshotReader r = SnapshotReader::open_file(path);
  NodeSnapshot snap;
  for (int i = 0; i < 2000; ++i) {
    if (!r.read_node(0, snap)) continue;
    const u64 stamp = snap.counters[0];
    EXPECT_EQ(snap.published_cycle, stamp * 10);
    for (std::size_t c = 0; c < snap.counters.size(); ++c) {
      ASSERT_EQ(snap.counters[c], stamp);
    }
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
}

}  // namespace
}  // namespace bgp::daemon
