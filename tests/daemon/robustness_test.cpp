// Degradation and client-resilience behavior under injected daemon faults:
// a full disk (ENOSPC on the journal) turns the daemon read-only instead of
// killing it — /healthz says "degraded", /metrics and /sessions keep
// serving, submits get a structured retryable rejection; a reset control
// connection is survived by the retrying client; a server that never
// answers trips the client's socket deadline; and an attach against a
// snapshot whose writer died mid-publish fails with a clear "writer gone"
// error instead of spinning forever.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>

#include "daemon/attach.hpp"
#include "daemon/daemon.hpp"
#include "daemon/snapfile.hpp"
#include "fault/fault.hpp"
#include "nas/kernel.hpp"

namespace fs = std::filesystem;

namespace bgp::daemon {
namespace {

fs::path test_dir() {
  const auto* info = testing::UnitTest::GetInstance()->current_test_info();
  fs::path dir =
      fs::temp_directory_path() / (std::string("bgpcd_rob_") + info->name());
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

JobSpec quick_spec() {
  JobSpec spec;
  spec.bench = nas::Benchmark::kEP;
  spec.cls = nas::ProblemClass::kS;
  spec.nodes = 2;
  return spec;
}

std::string http_get(unsigned short port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string req = "GET " + path + " HTTP/1.0\r\n\r\n";
  EXPECT_EQ(::send(fd, req.data(), req.size(), 0),
            static_cast<ssize_t>(req.size()));
  std::string all;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) all.append(buf, size_t(n));
  ::close(fd);
  const std::size_t split = all.find("\r\n\r\n");
  return split == std::string::npos ? all : all.substr(split + 4);
}

TEST(DaemonRobustness, JournalEnospcDegradesToReadOnlyNotACrash) {
  // The very first journal append (the first submit's admit record) hits a
  // persistent ENOSPC.
  std::vector<fault::DaemonFaultEvent> plan;
  fault::DaemonFaultEvent enospc;
  enospc.kind = fault::DaemonFaultKind::kJournalError;
  enospc.after = 0;
  enospc.persistent = true;
  plan.push_back(enospc);
  fault::DaemonFaultInjector faults(std::move(plan));

  DaemonConfig cfg;
  cfg.service.work_dir = test_dir();
  cfg.service.faults = &faults;
  Daemon d(cfg);
  ASSERT_EQ(http_get(d.http_port(), "/healthz"), "ok\n");

  json::Value req = json::Value::object();
  req.set("cmd", json::Value("submit"));
  req.set("job", quick_spec().to_json());
  const json::Value resp = control_request(d.socket_path(), req);
  ASSERT_FALSE(resp.get("ok")->as_bool());
  const json::Value* err = resp.get("error");
  ASSERT_NE(err, nullptr);
  EXPECT_EQ(err->get("code")->as_string(), "journal_unwritable");
  EXPECT_TRUE(err->get("retryable")->as_bool());
  EXPECT_TRUE(control_response_retryable(resp));

  // Degraded, not dead: health says so, reads keep working, and further
  // submits are rejected with the same retryable code.
  EXPECT_TRUE(d.service().read_only());
  EXPECT_EQ(http_get(d.http_port(), "/healthz"), "degraded\n");
  const std::string metrics = http_get(d.http_port(), "/metrics");
  EXPECT_NE(metrics.find("bgpcd_read_only 1"), std::string::npos) << metrics;
  EXPECT_NE(metrics.find("bgpcd_journal_append_errors_total 1"),
            std::string::npos);
  EXPECT_NE(http_get(d.http_port(), "/sessions").find("["),
            std::string::npos);
  const SubmitResult again = d.service().submit(quick_spec());
  EXPECT_FALSE(again.ok);
  EXPECT_EQ(again.error_code, "journal_unwritable");
}

TEST(DaemonRobustness, RetryableCodesAreExactlyTheTransientOnes) {
  EXPECT_TRUE(is_retryable_code("journal_unwritable"));
  EXPECT_TRUE(is_retryable_code("over_quota_sessions"));
  EXPECT_TRUE(is_retryable_code("over_quota_bytes"));
  EXPECT_FALSE(is_retryable_code("bad_request"));
  EXPECT_FALSE(is_retryable_code("duplicate_session"));
  EXPECT_FALSE(is_retryable_code("over_quota_ranks"));
  EXPECT_FALSE(is_retryable_code("draining"));
  EXPECT_FALSE(is_retryable_code("not_found"));
}

TEST(DaemonRobustness, ClientRetriesThroughAResetConnection) {
  // The first control response is dropped mid-flight (connection reset).
  std::vector<fault::DaemonFaultEvent> plan;
  fault::DaemonFaultEvent reset;
  reset.kind = fault::DaemonFaultKind::kSocketReset;
  reset.after = 0;
  plan.push_back(reset);
  fault::DaemonFaultInjector faults(std::move(plan));

  DaemonConfig cfg;
  cfg.service.work_dir = test_dir();
  cfg.service.faults = &faults;
  Daemon d(cfg);

  json::Value ping = json::Value::object();
  ping.set("cmd", json::Value("ping"));
  // The non-retrying client sees the reset as a transport error...
  EXPECT_THROW((void)control_request(d.socket_path(), ping),
               std::runtime_error);
  // ...the retrying client absorbs it and lands on the second attempt.
  ControlRetry retry;
  retry.base_delay_ms = 1;
  retry.jitter_seed = 7;
  const json::Value resp = control_request_retry(d.socket_path(), ping, retry);
  EXPECT_TRUE(resp.get("ok")->as_bool());
}

TEST(DaemonRobustness, ClientDeadlineTripsOnASilentServer) {
  // A unix socket that accepts and then never answers.
  const fs::path sock = test_dir() / "mute.sock";
  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(listen_fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, sock.c_str(), sizeof(addr.sun_path) - 1);
  ASSERT_EQ(::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listen_fd, 4), 0);
  std::thread accepter([listen_fd] {
    const int c = ::accept(listen_fd, nullptr, nullptr);
    if (c >= 0) {
      char buf[256];
      (void)::read(c, buf, sizeof(buf));  // swallow the request, say nothing
      std::this_thread::sleep_for(std::chrono::milliseconds(500));
      ::close(c);
    }
  });

  json::Value ping = json::Value::object();
  ping.set("cmd", json::Value("ping"));
  try {
    (void)control_request(sock, ping, /*timeout_ms=*/100);
    FAIL() << "expected a timeout";
  } catch (const std::exception& e) {
    EXPECT_NE(std::string(e.what()).find("timed out"), std::string::npos)
        << e.what();
  }
  ::shutdown(listen_fd, SHUT_RDWR);
  ::close(listen_fd);
  accepter.join();
}

TEST(DaemonRobustness, HttpServerDropsSlowClients) {
  DaemonConfig cfg;
  cfg.service.work_dir = test_dir();
  cfg.http_io_timeout_ms = 100;
  Daemon d(cfg);

  // Half a request, then silence: the server's receive deadline must close
  // the connection instead of pinning the worker forever.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(d.http_port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const char partial[] = "GET /metr";
  ASSERT_EQ(::send(fd, partial, sizeof(partial) - 1, 0),
            static_cast<ssize_t>(sizeof(partial) - 1));
  timeval tv{};
  tv.tv_sec = 5;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  char buf[64];
  const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
  EXPECT_EQ(n, 0) << "server kept a half-open connection alive";
  ::close(fd);

  // And the server still answers well-formed requests afterwards.
  EXPECT_EQ(http_get(d.http_port(), "/healthz"), "ok\n");
}

TEST(DaemonRobustness, AttachReportsAWedgedWriterInsteadOfSpinning) {
  const fs::path dir = test_dir();
  const fs::path snap = dir / "counters.bgpsnap";

  // The second publication for a node dies mid-write, leaving its seqlock
  // odd forever — the writer then "crashes" (is destroyed).
  std::vector<fault::DaemonFaultEvent> plan;
  fault::DaemonFaultEvent torn;
  torn.kind = fault::DaemonFaultKind::kSnapshotTorn;
  torn.after = 2;
  plan.push_back(torn);
  fault::DaemonFaultInjector faults(std::move(plan));
  {
    SnapshotWriter w(snap, "ep", "wedged", 2, kSnapMetricsCapacity, &faults);
    std::array<u64, isa::kCountersPerUnit> counters{};
    counters[0] = 7;
    w.publish_node(0, 0, 0, 0, SnapState::kCounting, 100, counters);
    w.publish_node(1, 1, 0, 0, SnapState::kCounting, 100, counters);
    w.publish_node(0, 0, 0, 0, SnapState::kCounting, 200, counters);  // torn
  }

  // One-shot attach classifies the wedged node as busy, not corrupt.
  const AttachView once = attach_file(snap);
  ASSERT_EQ(once.busy.size(), 1u);
  EXPECT_EQ(once.busy[0], 0u);
  EXPECT_TRUE(once.corrupt.empty());
  ASSERT_EQ(once.nodes.size(), 1u);
  EXPECT_EQ(once.nodes[0].node_id, 1u);

  // The bounded-retry attach gives up with a diagnosis instead of spinning.
  AttachRetry retry;
  retry.attempts = 3;
  retry.base_delay_ms = 1;
  retry.jitter_seed = 11;
  try {
    (void)attach_file_retry(snap, retry);
    FAIL() << "expected attach_file_retry to throw";
  } catch (const std::exception& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("writer is gone or the snapshot is stale"),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("3 attach attempts"), std::string::npos) << what;
  }
}

TEST(DaemonRobustness, AttachRetrySucceedsOnAHealthyFinalSnapshot) {
  const fs::path dir = test_dir();
  const fs::path snap = dir / "counters.bgpsnap";
  {
    SnapshotWriter w(snap, "ep", "done", 2);
    std::array<u64, isa::kCountersPerUnit> counters{};
    for (unsigned node = 0; node < 2; ++node) {
      w.publish_node(node, node, 0, 0, SnapState::kFinal, 500, counters);
    }
  }
  AttachRetry retry;
  retry.jitter_seed = 3;
  const AttachView view = attach_file_retry(snap, retry);
  EXPECT_EQ(view.nodes.size(), 2u);
  EXPECT_TRUE(view.busy.empty());
  EXPECT_TRUE(view.final_only);
}

}  // namespace
}  // namespace bgp::daemon
