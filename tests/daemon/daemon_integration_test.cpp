// End-to-end daemon scenario, in-process: four concurrent sessions over the
// control socket, one killed mid-run, one live-attached through its
// snapshot file while it runs, /metrics scraped over real HTTP throughout,
// then a graceful drain that exits clean with every surviving dump sealed.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>

#include "daemon/attach.hpp"
#include "daemon/daemon.hpp"
#include "daemon/snapfile.hpp"
#include "obs/promtext.hpp"

namespace fs = std::filesystem;

namespace bgp::daemon {
namespace {

fs::path test_dir() {
  const auto* info = testing::UnitTest::GetInstance()->current_test_info();
  fs::path dir =
      fs::temp_directory_path() / (std::string("bgpcd_itg_") + info->name());
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// Minimal HTTP/1.0 GET against 127.0.0.1:`port`; returns the body and
/// stores the status line + headers in `head`.
std::string http_get(unsigned short port, const std::string& path,
                     std::string* head = nullptr) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
      << "connect to port " << port;
  const std::string req = "GET " + path + " HTTP/1.0\r\n\r\n";
  EXPECT_EQ(::send(fd, req.data(), req.size(), 0),
            static_cast<ssize_t>(req.size()));
  std::string all;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) all.append(buf, size_t(n));
  ::close(fd);
  const std::size_t split = all.find("\r\n\r\n");
  EXPECT_NE(split, std::string::npos) << "no header/body split in: " << all;
  if (head != nullptr) *head = all.substr(0, split);
  return split == std::string::npos ? "" : all.substr(split + 4);
}

json::Value submit(const fs::path& sock, const std::string& job_json) {
  json::Value req = json::Value::object();
  req.set("cmd", json::Value("submit"));
  req.set("job", json::Value::parse(job_json));
  return control_request(sock, req);
}

json::Value command(const fs::path& sock, const char* cmd,
                    const std::string& session = "") {
  json::Value req = json::Value::object();
  req.set("cmd", json::Value(cmd));
  if (!session.empty()) req.set("session", json::Value(session));
  return control_request(sock, req);
}

std::string session_state(const fs::path& sock, const std::string& name) {
  const json::Value resp = command(sock, "status", name);
  if (!resp.get("ok")->as_bool()) return "<" + std::string("not_found") + ">";
  return resp.get("session")->get("state")->as_string();
}

std::string wait_terminal(const fs::path& sock, const std::string& name) {
  for (int i = 0; i < 60'000; ++i) {
    const std::string st = session_state(sock, name);
    if (st != "queued" && st != "running") return st;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ADD_FAILURE() << name << " never reached a terminal state";
  return "timeout";
}

TEST(DaemonIntegration, FourSessionsKillAttachScrapeDrain) {
  const fs::path dir = test_dir();
  DaemonConfig cfg;
  cfg.service.work_dir = dir;
  cfg.service.quotas.max_sessions = 4;
  Daemon d(cfg);
  const fs::path sock = d.socket_path();
  const unsigned short port = d.http_port();
  ASSERT_NE(port, 0);

  // Liveness before anything runs.
  EXPECT_EQ(http_get(port, "/healthz"), "ok\n");
  const json::Value pong = command(sock, "ping");
  EXPECT_TRUE(pong.get("ok")->as_bool());
  EXPECT_FALSE(pong.get("draining")->as_bool());

  // Four concurrent sessions: two slow class-W runs (the kill victim and
  // the live-attach target) and two quick verifiable EP runs.
  const json::Value victim = submit(
      sock,
      R"({"session":"victim","bench":"CG","class":"W","nodes":4,"trace":true})");
  ASSERT_TRUE(victim.get("ok")->as_bool()) << victim.dump();
  const json::Value attachee = submit(
      sock,
      R"({"session":"attachee","bench":"CG","class":"W","nodes":2,)"
      R"("snapshot_period_cycles":50000})");
  ASSERT_TRUE(attachee.get("ok")->as_bool()) << attachee.dump();
  for (const char* job :
       {R"({"session":"quick1","bench":"EP","class":"S","nodes":2})",
        R"({"session":"quick2","bench":"EP","class":"S","nodes":2})"}) {
    const json::Value resp = submit(sock, job);
    ASSERT_TRUE(resp.get("ok")->as_bool()) << resp.dump();
  }

  // All four were admitted microseconds ago and are live: a fifth submit
  // must bounce with a structured quota error and touch nothing.
  const json::Value over = submit(sock, R"({"bench":"EP","class":"S"})");
  EXPECT_FALSE(over.get("ok")->as_bool());
  EXPECT_EQ(over.get("error")->get("code")->as_string(),
            "over_quota_sessions");

  // Scrape /metrics over real HTTP while everything runs.
  {
    std::string head;
    const std::string body = http_get(port, "/metrics", &head);
    EXPECT_NE(head.find("200"), std::string::npos);
    EXPECT_NE(head.find("version=0.0.4"), std::string::npos);
    const auto samples = obs::parse_prometheus(body);  // throws if malformed
    EXPECT_EQ(samples.at("bgpcd_sessions_admitted_total"), 4.0);
    EXPECT_EQ(
        samples.at("bgpcd_sessions_rejected_total{reason=\"over_quota_"
                   "sessions\"}"),
        1.0);
  }
  // /sessions lists all four.
  {
    const json::Value sessions =
        json::Value::parse(http_get(port, "/sessions"));
    EXPECT_EQ(sessions.items().size(), 4u);
  }

  // Live attach: wait for the attachee's snapshot file, then watch it until
  // a mid-run (counting) publication lands.
  const fs::path snap_path = attachee.get("snapshot")->as_string();
  bool saw_live = false;
  for (int i = 0; i < 60'000 && !saw_live; ++i) {
    if (fs::exists(snap_path)) {
      AttachView view = attach_file(snap_path);
      EXPECT_EQ(view.session, "attachee");
      EXPECT_EQ(view.app, "CG");
      for (const NodeSnapshot& snap : view.nodes) {
        if (snap.state == SnapState::kCounting && snap.published_cycle > 0) {
          saw_live = true;
          // A mid-run snapshot carries real counter content.
          u64 total = 0;
          for (const u64 c : snap.counters) total += c;
          EXPECT_GT(total, 0u);
        }
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_TRUE(saw_live) << "never observed a live mid-run snapshot";

  // Kill the victim mid-flight; it checkpoints and seals.
  const json::Value killed = command(sock, "kill", "victim");
  ASSERT_TRUE(killed.get("ok")->as_bool()) << killed.dump();
  EXPECT_EQ(wait_terminal(sock, "victim"), "killed");

  // The quick sessions finish verified, unaffected by the kill next door.
  for (const char* name : {"quick1", "quick2"}) {
    EXPECT_EQ(wait_terminal(sock, name), "finished");
    const json::Value st = command(sock, "status", name);
    EXPECT_TRUE(st.get("session")->get("verified")->as_bool());
    EXPECT_EQ(st.get("session")->get("dump_files")->as_u64(), 2u);
  }

  // Shorten the drain: stop the attachee too (checkpoints like the victim).
  ASSERT_TRUE(command(sock, "kill", "attachee").get("ok")->as_bool());
  EXPECT_EQ(wait_terminal(sock, "attachee"), "killed");

  // Host self-characterization: after this workload, every host-latency
  // histogram family on /metrics has a non-zero _count and a computable
  // p99. (The extra scrape first guarantees at least one completed
  // /metrics request has been observed into the scrape family.)
  std::string final_metrics;
  {
    (void)http_get(port, "/metrics");
    const std::string body = http_get(port, "/metrics");
    final_metrics = body;
    const auto hists = obs::parse_prometheus_histograms(body);
    const char* keys[] = {
        "bgpcd_control_request_seconds{phase=\"parse\"}",
        "bgpcd_control_request_seconds{phase=\"dispatch\"}",
        "bgpcd_control_request_seconds{phase=\"respond\"}",
        "bgpcd_journal_append_seconds{phase=\"write\"}",
        "bgpcd_journal_append_seconds{phase=\"fsync\"}",
        "bgpcd_snapshot_publish_seconds",
        "bgpcd_session_queue_wait_seconds",
        "bgpcd_http_request_seconds{path=\"/metrics\"}",
    };
    for (const char* key : keys) {
      ASSERT_TRUE(hists.count(key)) << key << " missing from:\n" << body;
      EXPECT_GT(hists.at(key).count, 0u) << key;
      EXPECT_FALSE(std::isnan(obs::histogram_quantile(hists.at(key), 0.99)))
          << key;
    }
    const auto samples = obs::parse_prometheus(body);
    EXPECT_GE(samples.at("bgpcd_uptime_seconds"), 0.0);
    bool build_info = false;
    for (const auto& [key, value] : samples) {
      if (key.rfind("bgpcd_build_info{", 0) == 0) {
        build_info = true;
        EXPECT_EQ(value, 1.0);
        EXPECT_NE(key.find("version="), std::string::npos);
        EXPECT_NE(key.find("compiler="), std::string::npos);
      }
    }
    EXPECT_TRUE(build_info) << body;
  }

  // Drain: admissions close immediately, the surfaces stay up until
  // run_until_drained() finishes the shutdown.
  ASSERT_TRUE(command(sock, "drain").get("ok")->as_bool());
  EXPECT_EQ(http_get(port, "/healthz"), "draining\n");
  const json::Value refused = submit(sock, R"({"bench":"EP","class":"S"})");
  EXPECT_FALSE(refused.get("ok")->as_bool());
  EXPECT_EQ(refused.get("error")->get("code")->as_string(), "draining");

  EXPECT_EQ(d.run_until_drained(), 0u);  // nothing failed: clean exit

  // Post-mortem on disk: every session left sealed, non-empty artifacts.
  for (const char* name : {"victim", "attachee", "quick1", "quick2"}) {
    unsigned dumps = 0;
    for (const auto& entry : fs::directory_iterator(dir / name)) {
      if (entry.path().extension() == ".bgpc") {
        ++dumps;
        EXPECT_GT(fs::file_size(entry.path()), 0u);
      }
    }
    EXPECT_GT(dumps, 0u) << name;
  }
  // The victim traced: its seal must have produced .bgpt files.
  unsigned traces = 0;
  for (const auto& entry : fs::directory_iterator(dir / "victim")) {
    if (entry.path().extension() == ".bgpt") ++traces;
  }
  EXPECT_EQ(traces, 4u);
  // Final snapshots readable for everyone.
  for (const char* name : {"victim", "attachee", "quick1", "quick2"}) {
    AttachView view = attach_file(dir / name / "counters.bgpsnap");
    EXPECT_TRUE(view.unreadable.empty());
    EXPECT_TRUE(view.final_only) << name;
  }

  // CI artifact export: the post-workload /metrics scrape and the complete
  // host event log, uploaded from the daemon lane.
  if (const char* dest = std::getenv("BGPC_DAEMON_ARTIFACT_DIR")) {
    fs::create_directories(dest);
    std::ofstream(fs::path(dest) / "final_metrics.prom") << final_metrics;
    if (fs::exists(dir / "events.jsonl")) {
      fs::copy_file(dir / "events.jsonl", fs::path(dest) / "events.jsonl",
                    fs::copy_options::overwrite_existing);
    }
  }
}

TEST(DaemonIntegration, HostEventsCarryCorrelationIdsEndToEnd) {
  const fs::path dir = test_dir();
  DaemonConfig cfg;
  cfg.service.work_dir = dir;
  Daemon d(cfg);
  const fs::path sock = d.socket_path();
  const unsigned short port = d.http_port();

  const json::Value resp =
      submit(sock, R"({"session":"traced","bench":"EP","class":"S","nodes":2})");
  ASSERT_TRUE(resp.get("ok")->as_bool()) << resp.dump();
  EXPECT_EQ(wait_terminal(sock, "traced"), "finished");

  // /debug/events serves the live flight ring as NDJSON: every line is a
  // well-formed event with the fixed schema prefix, and the session
  // lifecycle (admit -> start -> finish) is all there.
  std::string head;
  const std::string ndjson = http_get(port, "/debug/events", &head);
  EXPECT_NE(head.find("application/x-ndjson"), std::string::npos) << head;
  std::string admit_req;
  std::map<std::string, int> seen;
  std::istringstream in(ndjson);
  for (std::string line; std::getline(in, line);) {
    ASSERT_FALSE(line.empty());
    const json::Value ev = json::Value::parse(line);  // throws if torn
    ASSERT_NE(ev.get("ts_ns"), nullptr) << line;
    ASSERT_NE(ev.get("level"), nullptr) << line;
    ASSERT_NE(ev.get("event"), nullptr) << line;
    const std::string& name = ev.get("event")->as_string();
    ++seen[name];
    if (name == "session_admit") {
      ASSERT_NE(ev.get("req"), nullptr) << line;
      admit_req = ev.get("req")->as_string();
      EXPECT_EQ(ev.get("session")->as_string(), "traced");
    }
  }
  EXPECT_GE(seen["daemon_start"], 1);
  EXPECT_GE(seen["session_admit"], 1);
  EXPECT_GE(seen["session_start"], 1);
  EXPECT_GE(seen["session_finish"], 1);

  // The correlation ID minted by the control server ("rNNNNNN") threads
  // through: the admit event, the control_request event for the submit,
  // and the journal's admit record all carry the same id — one grep
  // reconstructs the request's whole path through the daemon.
  ASSERT_FALSE(admit_req.empty());
  EXPECT_EQ(admit_req[0], 'r');
  std::map<std::string, int> req_events;
  {
    std::ifstream events(dir / "events.jsonl");
    ASSERT_TRUE(events.is_open());
    for (std::string line; std::getline(events, line);) {
      const json::Value ev = json::Value::parse(line);
      const json::Value* req = ev.get("req");
      if (req != nullptr && req->as_string() == admit_req) {
        ++req_events[ev.get("event")->as_string()];
      }
    }
  }
  EXPECT_GE(req_events["session_admit"], 1);
  EXPECT_GE(req_events["control_request"], 1);
  {
    std::ifstream journal(dir / "bgpcd.journal", std::ios::binary);
    ASSERT_TRUE(journal.is_open());
    std::stringstream buf;
    buf << journal.rdbuf();
    EXPECT_NE(buf.str().find("\"req\":\"" + admit_req + "\""),
              std::string::npos)
        << "journal admit record lost the correlation id";
  }

  d.begin_drain();
  EXPECT_EQ(d.run_until_drained(), 0u);
}

TEST(DaemonIntegration, ControlProtocolErrorsAreStructured) {
  DaemonConfig cfg;
  cfg.service.work_dir = test_dir();
  Daemon d(cfg);
  const fs::path sock = d.socket_path();

  {  // not JSON at all → bad_request, connection survives per line
    const json::Value resp =
        control_request(sock, json::Value::parse(R"({"cmd":"status"})"));
    EXPECT_FALSE(resp.get("ok")->as_bool());
    EXPECT_EQ(resp.get("error")->get("code")->as_string(), "bad_request");
  }
  {  // unknown session
    const json::Value resp = command(sock, "status", "ghost");
    EXPECT_EQ(resp.get("error")->get("code")->as_string(), "not_found");
  }
  {  // unknown command
    const json::Value resp = command(sock, "reboot");
    EXPECT_EQ(resp.get("error")->get("code")->as_string(), "bad_request");
  }
  {  // malformed job spec: named key in the detail
    const json::Value resp = submit(sock, R"({"bench":"nope"})");
    EXPECT_EQ(resp.get("error")->get("code")->as_string(), "bad_request");
    EXPECT_NE(resp.get("error")->get("detail")->as_string().find("bench"),
              std::string::npos);
  }
  d.begin_drain();
  EXPECT_EQ(d.run_until_drained(), 0u);
}

}  // namespace
}  // namespace bgp::daemon
