// Session-manager behavior: admission control returns structured codes
// without disturbing running sessions, kill lands in kKilled with
// checkpoint dumps, and — the core daemon guarantee — a finished daemon
// session's artifacts are byte-identical to a same-seed batch run with the
// same snapshot configuration, under both schedulers.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <thread>

#include "core/session.hpp"
#include "daemon/service.hpp"
#include "daemon/snapfile.hpp"
#include "fault/fault.hpp"
#include "nas/kernel.hpp"
#include "runtime/machine.hpp"
#include "runtime/obs_scope.hpp"
#include "runtime/rankctx.hpp"

namespace fs = std::filesystem;

namespace bgp::daemon {
namespace {

fs::path test_dir(const char* leaf) {
  const auto* info = testing::UnitTest::GetInstance()->current_test_info();
  fs::path dir = fs::temp_directory_path() /
                 (std::string("bgpcd_svc_") + info->name()) / leaf;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

/// All artifact bytes except the snapshot file (whose header carries the
/// session name; it is compared semantically instead).
std::map<std::string, std::string> artifact_bytes(const fs::path& dir) {
  std::map<std::string, std::string> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name == "counters.bgpsnap") continue;
    files[name] = slurp(entry.path());
  }
  return files;
}

SessionStatus wait_terminal(const Service& svc, const std::string& name) {
  SessionStatus st;
  for (int i = 0; i < 60'000; ++i) {
    EXPECT_TRUE(svc.status(name, &st));
    if (st.state != SessionState::kQueued &&
        st.state != SessionState::kRunning) {
      return st;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ADD_FAILURE() << "session " << name << " never reached a terminal state";
  return st;
}

struct BatchRun {
  std::map<std::string, std::string> files;
  cycles_t elapsed = 0;
};

/// The bgpc_run / Service::run_session construction, inline: same machine,
/// fault plan, session options and (optionally) snapshot publisher.
BatchRun run_batch(const JobSpec& spec, const fs::path& dir,
                   const PublisherConfig* pub_cfg) {
  rt::MachineConfig mc;
  mc.num_nodes = spec.nodes;
  mc.mode = spec.mode;
  mc.num_ranks_override = spec.ranks;
  mc.sched = spec.sched;
  mc.jobs = spec.jobs;
  rt::Machine machine(mc);

  fault::FaultInjector injector{[&] {
    fault::FaultSpec fsp;
    fsp.node_deaths = spec.deaths;
    return fault::FaultPlan::random(spec.fault_seed, spec.nodes, fsp);
  }()};
  if (spec.deaths > 0) machine.set_fault_injector(&injector);
  machine.set_ft_params(spec.ftp);

  pc::Options opts;
  opts.app_name = std::string(nas::name(spec.bench));
  opts.dump_dir = dir;
  opts.trace.enabled = spec.trace;
  opts.trace.interval_cycles = spec.interval_cycles;
  opts.trace.preset = spec.preset;
  opts.trace.trace_dir = dir;
  opts.obs.enabled = spec.obs;
  pc::Session session(machine, opts);
  session.link_with_mpi();

  std::unique_ptr<SnapshotPublisher> publisher;
  if (pub_cfg != nullptr) {
    publisher = std::make_unique<SnapshotPublisher>(
        machine, dir / "counters.bgpsnap", opts.app_name, "batch", *pub_cfg);
  }

  auto kernel = nas::make_kernel(spec.bench, spec.cls);
  const std::string region = "region." + opts.app_name;
  machine.run([&](rt::RankCtx& ctx) {
    ctx.mpi_init();
    {
      rt::ObsScope span(ctx, region, obs::SpanCat::kRegion);
      kernel->run(ctx);
    }
    ctx.mpi_finalize();
  });
  if (publisher != nullptr) publisher->publish_final();

  BatchRun out;
  out.elapsed = machine.elapsed();
  out.files = artifact_bytes(dir);
  return out;
}

JobSpec quick_spec(rt::SchedMode sched) {
  JobSpec spec;
  spec.bench = nas::Benchmark::kEP;
  spec.cls = nas::ProblemClass::kS;
  spec.nodes = 2;
  spec.sched = sched;
  spec.jobs = sched == rt::SchedMode::kParallel ? 2 : 0;
  spec.trace = true;
  spec.snapshot_period_cycles = 100'000;
  return spec;
}

/// A session long enough (seconds of wall time) to kill or reject against
/// while it is reliably still running.
JobSpec slow_spec() {
  JobSpec spec;
  spec.bench = nas::Benchmark::kCG;
  spec.cls = nas::ProblemClass::kW;
  spec.nodes = 4;
  return spec;
}

void expect_daemon_matches_batch(rt::SchedMode sched) {
  const JobSpec spec = quick_spec(sched);

  ServiceConfig cfg;
  cfg.work_dir = test_dir("daemon");
  Service svc(cfg);
  JobSpec submitted = spec;
  submitted.session = "det";
  const SubmitResult res = svc.submit(submitted);
  ASSERT_TRUE(res.ok) << res.error_code << ": " << res.detail;
  const SessionStatus st = wait_terminal(svc, "det");
  ASSERT_EQ(st.state, SessionState::kFinished) << st.detail;
  EXPECT_TRUE(st.verified) << st.detail;
  EXPECT_EQ(st.dump_files, 2u);
  EXPECT_EQ(st.trace_files, 2u);

  PublisherConfig pub_cfg = cfg.snapshot;
  pub_cfg.period_cycles = *spec.snapshot_period_cycles;
  const fs::path batch_dir = test_dir("batch");
  const BatchRun batch = run_batch(spec, batch_dir, &pub_cfg);

  EXPECT_EQ(st.sim_cycles, batch.elapsed);
  const auto daemon_files = artifact_bytes(st.dump_dir);
  ASSERT_FALSE(daemon_files.empty());
  ASSERT_EQ(daemon_files.size(), batch.files.size());
  for (const auto& [name, bytes] : batch.files) {
    const auto it = daemon_files.find(name);
    ASSERT_NE(it, daemon_files.end()) << name << " missing from daemon run";
    EXPECT_EQ(bytes, it->second) << name << " differs daemon vs batch";
  }

  // The snapshot file: same node states, cycles and counter words (the
  // header's session name legitimately differs).
  SnapshotReader dr = SnapshotReader::open_file(st.snapshot_path);
  SnapshotReader br = SnapshotReader::open_file(batch_dir / "counters.bgpsnap");
  ASSERT_EQ(dr.num_nodes(), br.num_nodes());
  EXPECT_EQ(dr.app(), br.app());
  for (unsigned node = 0; node < dr.num_nodes(); ++node) {
    NodeSnapshot a, b;
    ASSERT_TRUE(dr.read_node(node, a));
    ASSERT_TRUE(br.read_node(node, b));
    EXPECT_EQ(a.state, SnapState::kFinal);
    EXPECT_EQ(a.state, b.state);
    EXPECT_EQ(a.published_cycle, b.published_cycle);
    EXPECT_EQ(a.card_id, b.card_id);
    EXPECT_EQ(a.mode, b.mode);
    EXPECT_EQ(a.counters, b.counters);
  }
}

TEST(ServiceDeterminism, DaemonDumpMatchesBatchSerial) {
  expect_daemon_matches_batch(rt::SchedMode::kSerial);
}

TEST(ServiceDeterminism, DaemonDumpMatchesBatchParallel) {
  expect_daemon_matches_batch(rt::SchedMode::kParallel);
}

// snapshot_period_cycles = 0 publishes only the final snapshot and installs
// no pulse hooks: the run must be byte- and cycle-identical to a batch run
// with no publisher at all.
TEST(ServiceDeterminism, FinalOnlySnapshotsPerturbNothing) {
  JobSpec spec = quick_spec(rt::SchedMode::kSerial);
  spec.snapshot_period_cycles = 0;

  ServiceConfig cfg;
  cfg.work_dir = test_dir("daemon");
  Service svc(cfg);
  JobSpec submitted = spec;
  submitted.session = "final-only";
  ASSERT_TRUE(svc.submit(submitted).ok);
  const SessionStatus st = wait_terminal(svc, "final-only");
  ASSERT_EQ(st.state, SessionState::kFinished) << st.detail;

  JobSpec plain = spec;
  const BatchRun batch = run_batch(plain, test_dir("batch"), nullptr);
  EXPECT_EQ(st.sim_cycles, batch.elapsed);
  const auto daemon_files = artifact_bytes(st.dump_dir);
  ASSERT_EQ(daemon_files.size(), batch.files.size());
  for (const auto& [name, bytes] : batch.files) {
    ASSERT_TRUE(daemon_files.count(name)) << name;
    EXPECT_EQ(bytes, daemon_files.at(name)) << name;
  }
  // And the final-only snapshot still landed, with every node final.
  SnapshotReader r = SnapshotReader::open_file(st.snapshot_path);
  NodeSnapshot snap;
  for (unsigned node = 0; node < r.num_nodes(); ++node) {
    ASSERT_TRUE(r.read_node(node, snap));
    EXPECT_EQ(snap.state, SnapState::kFinal);
  }
}

TEST(Service, RejectionsAreStructuredAndLeaveRunningSessionsAlone) {
  ServiceConfig cfg;
  cfg.work_dir = test_dir("work");
  cfg.quotas.max_sessions = 1;
  cfg.quotas.max_ranks = 64;
  Service svc(cfg);

  JobSpec runner = slow_spec();
  runner.session = "runner";
  ASSERT_TRUE(svc.submit(runner).ok);

  {  // session quota: the runner occupies the only slot
    const SubmitResult r = svc.submit(quick_spec(rt::SchedMode::kSerial));
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.error_code, "over_quota_sessions");
    EXPECT_NE(r.detail.find("quota is 1"), std::string::npos);
  }
  {  // duplicate name
    JobSpec dup = quick_spec(rt::SchedMode::kSerial);
    dup.session = "runner";
    const SubmitResult r = svc.submit(dup);
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.error_code, "duplicate_session");
  }
  {  // invalid name (checked before anything else)
    JobSpec bad = quick_spec(rt::SchedMode::kSerial);
    bad.session = ".hidden";
    EXPECT_EQ(svc.submit(bad).error_code, "invalid_session");
  }

  // The rejections above must not have perturbed the running session.
  SessionStatus st;
  ASSERT_TRUE(svc.status("runner", &st));
  EXPECT_TRUE(st.state == SessionState::kQueued ||
              st.state == SessionState::kRunning);

  // Cut the runner short rather than riding out class W.
  std::string err;
  EXPECT_TRUE(svc.kill("runner", &err)) << err;
  st = wait_terminal(svc, "runner");
  EXPECT_EQ(st.state, SessionState::kKilled);

  {  // rank quota (no live session needed)
    JobSpec wide = quick_spec(rt::SchedMode::kSerial);
    wide.nodes = 32;  // 128 VNM ranks > 64
    const SubmitResult r = svc.submit(wide);
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.error_code, "over_quota_ranks");
  }

  svc.begin_drain();
  {  // draining refuses everything
    const SubmitResult r = svc.submit(quick_spec(rt::SchedMode::kSerial));
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.error_code, "draining");
  }
}

TEST(Service, ByteQuotaCountsOnlyLiveSessions) {
  ServiceConfig cfg;
  cfg.work_dir = test_dir("work");
  // Enough for one slow session (4 nodes VNM: ~56 MiB) but not two.
  cfg.quotas.max_resident_bytes = 80 * MiB;
  Service svc(cfg);

  JobSpec first = slow_spec();
  first.session = "first";
  ASSERT_TRUE(svc.submit(first).ok);

  JobSpec second = slow_spec();
  second.session = "second";
  const SubmitResult r = svc.submit(second);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error_code, "over_quota_bytes");
  EXPECT_NE(r.detail.find("budget"), std::string::npos);

  std::string err;
  ASSERT_TRUE(svc.kill("first", &err)) << err;
  (void)wait_terminal(svc, "first");

  // The killed session's budget is released; the same job now fits.
  EXPECT_TRUE(svc.submit(second).ok);
  ASSERT_TRUE(svc.kill("second", &err)) << err;
  (void)wait_terminal(svc, "second");
}

TEST(Service, KillCheckpointsAndSealsMidRun) {
  ServiceConfig cfg;
  cfg.work_dir = test_dir("work");
  Service svc(cfg);

  JobSpec spec = slow_spec();
  spec.session = "victim";
  spec.trace = true;
  spec.snapshot_period_cycles = 50'000;
  ASSERT_TRUE(svc.submit(spec).ok);

  // Let it get properly underway (class W runs for seconds).
  SessionStatus st;
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(svc.status("victim", &st));
    if (st.state == SessionState::kRunning) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  std::string err;
  ASSERT_TRUE(svc.kill("victim", &err)) << err;
  st = wait_terminal(svc, "victim");
  ASSERT_EQ(st.state, SessionState::kKilled);
  EXPECT_NE(st.detail.find("checkpoint"), std::string::npos);
  EXPECT_EQ(st.dump_files, 4u);   // every node checkpoint-dumped
  EXPECT_EQ(st.trace_files, 4u);  // every trace sealed

  // Killing again is a structured no-op.
  EXPECT_FALSE(svc.kill("victim", &err));
  EXPECT_NE(err.find("already killed"), std::string::npos);
  EXPECT_FALSE(svc.kill("nobody", &err));
  EXPECT_NE(err.find("no session"), std::string::npos);

  // The checkpoint dumps are readable, non-empty artifacts on disk.
  unsigned dumps = 0;
  for (const auto& entry : fs::directory_iterator(st.dump_dir)) {
    if (entry.path().extension() == ".bgpc") {
      ++dumps;
      EXPECT_GT(fs::file_size(entry.path()), 0u);
    }
  }
  EXPECT_EQ(dumps, 4u);
  // And the snapshot's final word is published for every node.
  SnapshotReader r = SnapshotReader::open_file(st.snapshot_path);
  NodeSnapshot snap;
  for (unsigned node = 0; node < r.num_nodes(); ++node) {
    ASSERT_TRUE(r.read_node(node, snap));
    EXPECT_EQ(snap.state, SnapState::kFinal);
  }
}

TEST(Service, AutoNamesAndMetricsAccounting) {
  ServiceConfig cfg;
  cfg.work_dir = test_dir("work");
  Service svc(cfg);

  const SubmitResult a = svc.submit(quick_spec(rt::SchedMode::kSerial));
  const SubmitResult b = svc.submit(quick_spec(rt::SchedMode::kSerial));
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  EXPECT_EQ(a.session, "s0000");
  EXPECT_EQ(b.session, "s0001");
  (void)wait_terminal(svc, a.session);
  (void)wait_terminal(svc, b.session);

  svc.update_metrics();
  const auto series = [&](const char* name, obs::LabelSet labels = {}) {
    return svc.metrics().counter(name, "", std::move(labels)).value();
  };
  EXPECT_EQ(series("bgpcd_sessions_admitted_total"), 2u);
  EXPECT_EQ(series("bgpcd_sessions_done_total", {{"state", "finished"}}), 2u);
  EXPECT_EQ(series("bgpcd_sessions_done_total", {{"state", "failed"}}), 0u);
  EXPECT_GT(series("bgpcd_snapshot_publishes_total"), 0u);
}

}  // namespace
}  // namespace bgp::daemon
