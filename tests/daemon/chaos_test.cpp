// Crash-restart chaos harness: runs the real bgpcd binary, SIGKILLs it at
// five seeded points during a four-session workload, and asserts the
// recovery invariants after every restart — the journal replays, every
// finished session is re-listed exactly once, orphans are aborted with
// their last checkpoint salvaged into minable dumps, and the sessions that
// eventually run to completion produce dumps byte-identical to an
// uninterrupted same-seed in-process run.
//
// On failure the work directory (journal, recovery.log, per-epoch serve
// logs) is copied to $BGPC_CHAOS_ARTIFACT_DIR when set, so CI can upload
// it.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "daemon/control.hpp"
#include "daemon/jobspec.hpp"
#include "daemon/service.hpp"
#include "nas/kernel.hpp"
#include "obs/promtext.hpp"
#include "postproc/loader.hpp"

#ifndef BGPCD_BINARY
#error "chaos_test needs -DBGPCD_BINARY=\"<path to bgpcd>\""
#endif

namespace fs = std::filesystem;

namespace bgp::daemon {
namespace {

fs::path test_dir(const char* leaf) {
  const auto* info = testing::UnitTest::GetInstance()->current_test_info();
  fs::path dir = fs::temp_directory_path() /
                 (std::string("bgpcd_chaos_") + info->name()) / leaf;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

pid_t start_daemon(const fs::path& dir, const fs::path& sock,
                   const fs::path& log) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    const int fd =
        ::open(log.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd >= 0) {
      ::dup2(fd, 1);
      ::dup2(fd, 2);
      ::close(fd);
    }
    const std::string dir_flag = "--dir=" + dir.string();
    const std::string sock_flag = "--socket=" + sock.string();
    ::execl(BGPCD_BINARY, "bgpcd", "serve", dir_flag.c_str(),
            sock_flag.c_str(), "--http=0", static_cast<char*>(nullptr));
    ::_exit(127);
  }
  return pid;
}

json::Value request(const fs::path& sock, json::Value req) {
  ControlRetry retry;
  retry.attempts = 8;
  retry.base_delay_ms = 5;
  retry.jitter_seed = 0x5EED;
  return control_request_retry(sock, std::move(req), retry);
}

bool wait_ready(const fs::path& sock) {
  json::Value ping = json::Value::object();
  ping.set("cmd", json::Value("ping"));
  for (int i = 0; i < 2'000; ++i) {
    try {
      const json::Value resp = control_request(sock, ping, 1'000);
      const json::Value* ok = resp.get("ok");
      if (ok != nullptr && ok->as_bool()) return true;
    } catch (const std::exception&) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return false;
}

json::Value list_sessions(const fs::path& sock) {
  json::Value req = json::Value::object();
  req.set("cmd", json::Value("list"));
  const json::Value resp = request(sock, std::move(req));
  EXPECT_TRUE(resp.get("ok")->as_bool()) << resp.dump();
  return *resp.get("sessions");
}

void graceful_stop(const fs::path& sock, pid_t pid, int expect_code) {
  json::Value req = json::Value::object();
  req.set("cmd", json::Value("shutdown"));
  EXPECT_TRUE(request(sock, std::move(req)).get("ok")->as_bool());
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), expect_code);
}

/// The four-session workload: distinct quick jobs so every epoch has real
/// work in flight to orphan.
std::vector<JobSpec> workload() {
  std::vector<JobSpec> specs(4);
  specs[0].bench = nas::Benchmark::kEP;
  specs[0].nodes = 2;
  specs[1].bench = nas::Benchmark::kEP;
  specs[1].nodes = 1;
  specs[1].trace = true;
  specs[2].bench = nas::Benchmark::kIS;
  specs[2].nodes = 2;
  specs[3].bench = nas::Benchmark::kIS;
  specs[3].nodes = 1;
  for (JobSpec& s : specs) s.cls = nas::ProblemClass::kS;
  return specs;
}

std::string gen_name(std::size_t spec, unsigned gen) {
  return "j" + std::to_string(spec) + "g" + std::to_string(gen);
}

/// Parse "j<spec>g<gen>" back to the spec index; -1 for foreign names.
int spec_of(const std::string& name) {
  if (name.size() < 4 || name[0] != 'j') return -1;
  const std::size_t g = name.find('g');
  if (g == std::string::npos) return -1;
  return std::atoi(name.substr(1, g - 1).c_str());
}

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

/// The ephemeral HTTP port from a serve log's
/// "bgpcd: http://127.0.0.1:PORT/metrics ..." line; 0 until printed.
unsigned short parse_http_port(const fs::path& log) {
  const std::string text = slurp(log);
  const std::string needle = "http://127.0.0.1:";
  const std::size_t at = text.find(needle);
  if (at == std::string::npos) return 0;
  return static_cast<unsigned short>(
      std::atoi(text.c_str() + at + needle.size()));
}

/// Minimal HTTP/1.0 GET body (empty string on any failure).
std::string http_get_body(unsigned short port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string req = "GET " + path + " HTTP/1.0\r\n\r\n";
  (void)::send(fd, req.data(), req.size(), MSG_NOSIGNAL);
  std::string all;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    all.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const std::size_t split = all.find("\r\n\r\n");
  return split == std::string::npos ? "" : all.substr(split + 4);
}

std::map<std::string, std::string> artifact_bytes(const fs::path& dir) {
  std::map<std::string, std::string> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name == "counters.bgpsnap") continue;
    files[name] = slurp(entry.path());
  }
  return files;
}

void save_artifacts_on_failure(const fs::path& work) {
  if (!testing::Test::HasFailure()) return;
  const char* dest = std::getenv("BGPC_CHAOS_ARTIFACT_DIR");
  if (dest == nullptr || *dest == '\0') return;
  std::error_code ec;
  fs::create_directories(dest, ec);
  fs::copy(work, fs::path(dest) / work.filename(),
           fs::copy_options::recursive | fs::copy_options::overwrite_existing,
           ec);
  if (ec) {
    std::fprintf(stderr, "could not save chaos artifacts: %s\n",
                 ec.message().c_str());
  } else {
    std::fprintf(stderr, "chaos artifacts saved to %s\n", dest);
  }
}

TEST(DaemonChaos, SurvivesFiveSigkillsWithoutLosingOrDuplicatingASession) {
  const fs::path work = test_dir("work");
  const fs::path sock = work / "bgpcd.sock";
  const std::vector<JobSpec> specs = workload();

  // Five seeded kill points, spread from "sessions barely admitted" to
  // "most sessions finished". Same seed -> same schedule.
  std::mt19937_64 rng(0xB1E57);
  std::vector<unsigned> kill_delays_ms;
  const unsigned lo[] = {5, 20, 60, 150, 300};
  const unsigned hi[] = {15, 60, 150, 400, 800};
  for (int k = 0; k < 5; ++k) {
    kill_delays_ms.push_back(
        lo[k] + static_cast<unsigned>(rng() % (hi[k] - lo[k])));
  }

  std::map<std::size_t, std::string> finished_name;  // spec -> session
  unsigned gen = 0;
  pid_t pid = start_daemon(work, sock, work / "serve.0.log");
  ASSERT_TRUE(wait_ready(sock)) << "daemon never came up";

  const auto submit_pending = [&] {
    for (std::size_t i = 0; i < specs.size(); ++i) {
      if (finished_name.count(i)) continue;
      JobSpec spec = specs[i];
      spec.session = gen_name(i, gen);
      json::Value req = json::Value::object();
      req.set("cmd", json::Value("submit"));
      req.set("job", spec.to_json());
      const json::Value resp = request(sock, std::move(req));
      ASSERT_TRUE(resp.get("ok")->as_bool())
          << spec.session << ": " << resp.dump();
    }
  };
  const auto harvest_finished = [&] {
    const json::Value listed = list_sessions(sock);
    for (const json::Value& s : listed.items()) {
      if (s.get("state")->as_string() != "finished") continue;
      const int idx = spec_of(s.get("session")->as_string());
      ASSERT_GE(idx, 0);
      const auto [it, inserted] = finished_name.emplace(
          static_cast<std::size_t>(idx), s.get("session")->as_string());
      if (!inserted) {
        // Already finished in an earlier epoch: it must be the same
        // session re-listed, not a duplicate completion.
        EXPECT_EQ(it->second, s.get("session")->as_string())
            << "spec " << idx << " finished twice";
      }
    }
  };

  submit_pending();
  for (unsigned k = 0; k < 5; ++k) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(kill_delays_ms[k]));
    ASSERT_EQ(::kill(pid, SIGKILL), 0);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status));

    ++gen;
    pid = start_daemon(work, sock,
                       work / ("serve." + std::to_string(gen) + ".log"));
    ASSERT_TRUE(wait_ready(sock))
        << "daemon did not recover after kill " << k;
    harvest_finished();
    submit_pending();
  }

  // Every SIGKILL left a dirty flight ring behind; each restart salvaged
  // it into flight.jsonl (appending — crash generations accumulate). By
  // now the dump holds whole JSON events from at least five crashes.
  {
    const fs::path flight = work / "flight.jsonl";
    ASSERT_TRUE(fs::exists(flight))
        << "no flight-recorder salvage after SIGKILL";
    unsigned lines = 0;
    std::ifstream in(flight);
    for (std::string line; std::getline(in, line); ++lines) {
      ASSERT_FALSE(line.empty());
      EXPECT_EQ(line.front(), '{') << line;
      EXPECT_EQ(line.back(), '}') << line;
      EXPECT_NE(line.find("\"event\":"), std::string::npos) << line;
    }
    EXPECT_GE(lines, 5u) << "fewer salvaged events than crash generations";
  }

  // Final epoch: let every pending session run to completion, then stop
  // gracefully (exit 0: aborted sessions are not failures).
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (finished_name.count(i)) continue;
    const std::string name = gen_name(i, gen);
    json::Value req = json::Value::object();
    req.set("cmd", json::Value("status"));
    req.set("session", json::Value(name));
    for (int tries = 0;; ++tries) {
      ASSERT_LT(tries, 60'000) << name << " never finished";
      const json::Value resp = request(sock, req);
      ASSERT_TRUE(resp.get("ok")->as_bool()) << resp.dump();
      const std::string state =
          resp.get("session")->get("state")->as_string();
      if (state == "finished") break;
      ASSERT_TRUE(state == "queued" || state == "running")
          << name << " ended " << state;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    finished_name[i] = name;
  }
  harvest_finished();
  ASSERT_EQ(finished_name.size(), specs.size());
  graceful_stop(sock, pid, 0);

  // One more restart: the journal must re-list every session of every
  // epoch — each finished exactly once, everything else aborted — and the
  // salvaged orphan dumps must be minable.
  ++gen;
  pid = start_daemon(work, sock,
                     work / ("serve." + std::to_string(gen) + ".log"));
  ASSERT_TRUE(wait_ready(sock));
  std::map<int, unsigned> finished_count;
  unsigned aborted = 0, salvaged_dirs = 0;
  const json::Value relisted = list_sessions(sock);
  for (const json::Value& s : relisted.items()) {
    const std::string name = s.get("session")->as_string();
    const std::string state = s.get("state")->as_string();
    EXPECT_TRUE(s.get("recovered") != nullptr &&
                s.get("recovered")->as_bool())
        << name << " not marked recovered";
    if (state == "finished") {
      ++finished_count[spec_of(name)];
      EXPECT_EQ(finished_name.at(
                    static_cast<std::size_t>(spec_of(name))),
                name);
    } else {
      EXPECT_EQ(state, "aborted") << name;
      ++aborted;
      const json::Value* sd = s.get("salvage_dir");
      if (sd != nullptr && !sd->as_string().empty()) {
        ++salvaged_dirs;
        const fs::path dir = sd->as_string();
        const std::string app{
            nas::name(specs[static_cast<std::size_t>(spec_of(name))].bench)};
        const post::LoadReport loaded = post::load_dumps_tolerant(dir, app);
        EXPECT_TRUE(loaded.ok()) << dir;
        EXPECT_FALSE(loaded.dumps.empty()) << dir;
      }
    }
  }
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(finished_count[static_cast<int>(i)], 1u)
        << "spec " << i << " not re-listed exactly once";
  }
  // Early kills guarantee in-flight work was orphaned at least once.
  EXPECT_GT(aborted, 0u);

  // Final observability scrape over real HTTP: the exposition parses,
  // the host-latency families carry this epoch's control traffic, and
  // the raw text is kept as a CI artifact alongside the host event log
  // and the flight dump (saved always, not only on failure).
  {
    const fs::path log = work / ("serve." + std::to_string(gen) + ".log");
    unsigned short port = 0;
    for (int i = 0; i < 2'000 && port == 0; ++i) {
      port = parse_http_port(log);
      if (port == 0) std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ASSERT_NE(port, 0) << "no http port line in " << log;
    const std::string body = http_get_body(port, "/metrics");
    ASSERT_FALSE(body.empty());
    const auto hists = obs::parse_prometheus_histograms(body);
    const std::string key =
        "bgpcd_control_request_seconds{phase=\"dispatch\"}";
    ASSERT_TRUE(hists.count(key)) << body;
    EXPECT_GT(hists.at(key).count, 0u);
    if (const char* dest = std::getenv("BGPC_CHAOS_ARTIFACT_DIR");
        dest != nullptr && *dest != '\0') {
      std::error_code ec;
      fs::create_directories(dest, ec);
      std::ofstream(fs::path(dest) / "final_metrics.prom") << body;
      for (const char* f : {"events.jsonl", "flight.jsonl"}) {
        fs::copy_file(work / f, fs::path(dest) / f,
                      fs::copy_options::overwrite_existing, ec);
      }
    }
  }
  graceful_stop(sock, pid, 0);

  // Determinism across all that chaos: each finished session's artifacts
  // are byte-identical to an uninterrupted same-spec in-process run.
  const fs::path ref_dir = test_dir("ref");
  ServiceConfig ref_cfg;
  ref_cfg.work_dir = ref_dir;
  ref_cfg.recover = false;
  Service ref(ref_cfg);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    JobSpec spec = specs[i];
    spec.session = "ref" + std::to_string(i);
    ASSERT_TRUE(ref.submit(spec).ok);
  }
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const std::string name = "ref" + std::to_string(i);
    SessionStatus st;
    for (int tries = 0;; ++tries) {
      ASSERT_LT(tries, 60'000);
      ASSERT_TRUE(ref.status(name, &st));
      if (st.state == SessionState::kFinished) break;
      ASSERT_TRUE(st.state == SessionState::kQueued ||
                  st.state == SessionState::kRunning)
          << st.detail;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    const auto expect = artifact_bytes(ref_dir / name);
    const auto got = artifact_bytes(work / finished_name.at(i));
    ASSERT_FALSE(expect.empty());
    ASSERT_EQ(got.size(), expect.size()) << finished_name.at(i);
    for (const auto& [file, bytes] : expect) {
      ASSERT_TRUE(got.count(file)) << file;
      EXPECT_EQ(got.at(file), bytes)
          << file << " differs after crash-restart for "
          << finished_name.at(i);
    }
  }

  save_artifacts_on_failure(work);
}

}  // namespace
}  // namespace bgp::daemon
