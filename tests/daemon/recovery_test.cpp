// Startup recovery: a restarted Service replays its journal, re-lists every
// terminal session exactly as it ended, aborts orphaned in-flight sessions
// and salvages their last BGPSNAP checkpoint into minable dumps — and a
// second restart changes nothing (recovery is idempotent because the first
// one journals the aborts it decides).
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>

#include "daemon/journal.hpp"
#include "daemon/service.hpp"
#include "daemon/snapfile.hpp"
#include "nas/kernel.hpp"
#include "postproc/loader.hpp"

namespace fs = std::filesystem;

namespace bgp::daemon {
namespace {

fs::path test_dir() {
  const auto* info = testing::UnitTest::GetInstance()->current_test_info();
  fs::path dir =
      fs::temp_directory_path() / (std::string("bgpcd_rec_") + info->name());
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

JobSpec quick_spec() {
  JobSpec spec;
  spec.bench = nas::Benchmark::kEP;
  spec.cls = nas::ProblemClass::kS;
  spec.nodes = 2;
  return spec;
}

SessionStatus wait_terminal(const Service& svc, const std::string& name) {
  SessionStatus st;
  for (int i = 0; i < 60'000; ++i) {
    EXPECT_TRUE(svc.status(name, &st));
    if (st.state != SessionState::kQueued &&
        st.state != SessionState::kRunning) {
      return st;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ADD_FAILURE() << "session " << name << " never reached a terminal state";
  return st;
}

/// Append admit(+start) records for a session the daemon never got to
/// finish — the on-disk state an in-flight session leaves when the process
/// is SIGKILLed.
void journal_orphan(const fs::path& journal, const JobSpec& spec,
                    const std::string& name, bool started) {
  JournalWriter w(journal);
  JournalRecord admit;
  admit.op = journal_op::kAdmit;
  admit.session = name;
  json::Value body = json::Value::object();
  JobSpec named = spec;
  named.session = name;
  body.set("spec", named.to_json());
  admit.body = body;
  w.append(admit);
  if (started) {
    JournalRecord start;
    start.op = journal_op::kStart;
    start.session = name;
    start.body = json::Value::object();
    w.append(start);
  }
}

/// The checkpoint a crashed session's publisher left behind: a snapshot
/// file whose nodes are mid-run (kCounting), writer gone, seqlock stable.
void write_orphan_snapshot(const fs::path& dir, const std::string& app,
                           const std::string& session, unsigned nodes) {
  fs::create_directories(dir);
  SnapshotWriter w(dir / "counters.bgpsnap", app, session, nodes);
  std::array<u64, isa::kCountersPerUnit> counters{};
  for (unsigned node = 0; node < nodes; ++node) {
    counters[0] = 1000 + node;
    counters[7] = 42;
    w.publish_node(node, node, node / 32, 0, SnapState::kCounting,
                   123'456 + node, counters);
  }
}

TEST(ServiceRecovery, RelistsFinishedAbortsAndSalvagesOrphans) {
  const fs::path dir = test_dir();
  ServiceConfig cfg;
  cfg.work_dir = dir;

  // Life 1: one session runs to completion (auto-named s0000); its finish
  // record is journaled by the live daemon.
  SessionStatus done;
  {
    Service svc(cfg);
    const SubmitResult res = svc.submit(quick_spec());
    ASSERT_TRUE(res.ok) << res.detail;
    ASSERT_EQ(res.session, "s0000");
    done = wait_terminal(svc, "s0000");
    ASSERT_EQ(done.state, SessionState::kFinished) << done.detail;
  }

  // Crash aftermath, hand-staged: an admitted-and-started session whose
  // checkpoint snapshot survived, with no terminal record.
  journal_orphan(dir / "bgpcd.journal", quick_spec(), "orphan", true);
  write_orphan_snapshot(dir / "orphan", "ep", "orphan", 2);

  // Life 2: recovery re-lists the finished session verbatim and salvages
  // the orphan.
  Service svc(cfg);
  const RecoveryReport& rec = svc.recovery();
  EXPECT_TRUE(rec.journal_found);
  EXPECT_EQ(rec.relisted, 1u);
  EXPECT_EQ(rec.orphans_aborted, 1u);
  EXPECT_EQ(rec.dumps_salvaged, 2u);
  EXPECT_TRUE(fs::exists(dir / "recovery.log"));

  SessionStatus st;
  ASSERT_TRUE(svc.status("s0000", &st));
  EXPECT_EQ(st.state, SessionState::kFinished);
  EXPECT_TRUE(st.recovered);
  EXPECT_EQ(st.verified, done.verified);
  EXPECT_EQ(st.dump_files, done.dump_files);
  EXPECT_EQ(st.trace_files, done.trace_files);
  EXPECT_EQ(st.sim_cycles, done.sim_cycles);
  EXPECT_EQ(st.detail, done.detail);

  ASSERT_TRUE(svc.status("orphan", &st));
  EXPECT_EQ(st.state, SessionState::kAborted);
  EXPECT_TRUE(st.recovered);
  EXPECT_NE(st.detail.find("orphaned by daemon restart (was running)"),
            std::string::npos)
      << st.detail;
  EXPECT_EQ(st.dump_files, 2u);
  ASSERT_FALSE(st.salvage_dir.empty());

  // The salvaged dumps are minable through the standard tolerant loader.
  const post::LoadReport loaded =
      post::load_dumps_tolerant(st.salvage_dir, "ep");
  EXPECT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.dumps.size(), 2u);
  EXPECT_EQ(loaded.dumps[0].node_id, 0u);
  EXPECT_EQ(loaded.dumps[1].node_id, 1u);

  // The auto-name counter advanced past recovered names: no collision.
  const SubmitResult fresh = svc.submit(quick_spec());
  ASSERT_TRUE(fresh.ok) << fresh.detail;
  EXPECT_EQ(fresh.session, "s0001");
  (void)wait_terminal(svc, fresh.session);
}

TEST(ServiceRecovery, SecondRestartIsIdempotent) {
  const fs::path dir = test_dir();
  ServiceConfig cfg;
  cfg.work_dir = dir;

  journal_orphan(dir / "bgpcd.journal", quick_spec(), "orphan", false);
  write_orphan_snapshot(dir / "orphan", "ep", "orphan", 2);

  fs::file_time_type salvage_mtime;
  {
    Service svc(cfg);
    EXPECT_EQ(svc.recovery().orphans_aborted, 1u);
    SessionStatus st;
    ASSERT_TRUE(svc.status("orphan", &st));
    EXPECT_NE(st.detail.find("(was queued)"), std::string::npos) << st.detail;
    ASSERT_FALSE(st.salvage_dir.empty());
    salvage_mtime =
        fs::last_write_time(st.salvage_dir / "ep.node0000.bgpc");
  }

  // Restart again: the abort record written by the first recovery makes
  // the orphan terminal — it is re-listed, not re-salvaged.
  Service svc(cfg);
  EXPECT_EQ(svc.recovery().orphans_aborted, 0u);
  EXPECT_EQ(svc.recovery().relisted, 1u);
  SessionStatus st;
  ASSERT_TRUE(svc.status("orphan", &st));
  EXPECT_EQ(st.state, SessionState::kAborted);
  EXPECT_EQ(st.dump_files, 2u);
  EXPECT_FALSE(st.salvage_dir.empty());
  EXPECT_EQ(fs::last_write_time(st.salvage_dir / "ep.node0000.bgpc"),
            salvage_mtime)
      << "second recovery rewrote the salvage dumps";
}

TEST(ServiceRecovery, TornJournalTailIsDroppedAndReported) {
  const fs::path dir = test_dir();
  ServiceConfig cfg;
  cfg.work_dir = dir;

  journal_orphan(dir / "bgpcd.journal", quick_spec(), "whole", false);
  // Append a torn frame by hand: a frame header promising more payload
  // than the file holds (exactly what a crash mid-append leaves).
  {
    JournalRecord rec;
    rec.op = journal_op::kAdmit;
    rec.session = "torn";
    rec.body = json::Value::object();
    const std::vector<std::byte> frame = encode_journal_frame(rec);
    std::ofstream out(dir / "bgpcd.journal",
                      std::ios::binary | std::ios::app);
    out.write(reinterpret_cast<const char*>(frame.data()),
              static_cast<std::streamsize>(frame.size() / 2));
  }

  Service svc(cfg);
  EXPECT_GT(svc.recovery().bytes_dropped, 0u);
  EXPECT_FALSE(svc.recovery().tail_error.empty());
  // The committed record survived; the torn one never surfaced.
  SessionStatus st;
  EXPECT_TRUE(svc.status("whole", &st));
  EXPECT_FALSE(svc.status("torn", &st));
}

TEST(ServiceRecovery, DisabledRecoveryStartsEmpty) {
  const fs::path dir = test_dir();
  ServiceConfig cfg;
  cfg.work_dir = dir;
  journal_orphan(dir / "bgpcd.journal", quick_spec(), "ghost", true);

  ServiceConfig off = cfg;
  off.recover = false;
  Service svc(off);
  EXPECT_EQ(svc.list().size(), 0u);
  EXPECT_FALSE(svc.recovery().journal_found);
}

}  // namespace
}  // namespace bgp::daemon
