// The control-protocol JSON value: parse/dump round trips, strict error
// reporting, and the JobSpec wire form (unknown keys and bad values are
// structured errors, never silent defaults).
#include <gtest/gtest.h>

#include "daemon/jobspec.hpp"
#include "daemon/json.hpp"

namespace bgp::daemon {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(json::Value::parse("null").is_null());
  EXPECT_TRUE(json::Value::parse("true").as_bool());
  EXPECT_FALSE(json::Value::parse("false").as_bool());
  EXPECT_DOUBLE_EQ(json::Value::parse("-2.5e3").as_number(), -2500.0);
  EXPECT_EQ(json::Value::parse("\"hi\\n\\\"there\\\"\"").as_string(),
            "hi\n\"there\"");
  EXPECT_EQ(json::Value::parse("18014398509481984").as_u64(),
            u64{18014398509481984});
}

TEST(Json, ParsesNestedStructures) {
  const json::Value v =
      json::Value::parse(R"({"a":[1,2,{"b":true}],"c":{"d":null}})");
  ASSERT_TRUE(v.is_object());
  const json::Value* a = v.get("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->items().size(), 3u);
  EXPECT_DOUBLE_EQ(a->items()[0].as_number(), 1.0);
  EXPECT_TRUE(a->items()[2].get("b")->as_bool());
  EXPECT_TRUE(v.get("c")->get("d")->is_null());
  EXPECT_EQ(v.get("missing"), nullptr);
}

TEST(Json, DumpRoundTripsAndKeepsMemberOrder) {
  const char* text = R"({"z":1,"a":[true,null,"x"],"m":{"k":2.5}})";
  const json::Value v = json::Value::parse(text);
  EXPECT_EQ(v.dump(), text);  // insertion order, compact integers
  const json::Value again = json::Value::parse(v.dump());
  EXPECT_EQ(again.dump(), v.dump());
}

TEST(Json, EscapesControlCharactersOnDump) {
  json::Value v = json::Value::object();
  v.set("s", json::Value(std::string("a\tb\x01" "c")));
  EXPECT_EQ(v.dump(), "{\"s\":\"a\\tb\\u0001c\"}");
  EXPECT_EQ(json::Value::parse(v.dump()).get("s")->as_string(),
            "a\tb\x01" "c");
}

TEST(Json, DecodesUnicodeEscapes) {
  EXPECT_EQ(json::Value::parse("\"\\u00e9\\u20ac\"").as_string(),
            "\xc3\xa9\xe2\x82\xac");  // é €
}

TEST(Json, ParseErrorsCarryByteOffsets) {
  try {
    (void)json::Value::parse("{\"a\": tru}");
    FAIL() << "expected JsonError";
  } catch (const json::JsonError& e) {
    EXPECT_NE(std::string(e.what()).find("at byte"), std::string::npos);
  }
  EXPECT_THROW((void)json::Value::parse(""), json::JsonError);
  EXPECT_THROW((void)json::Value::parse("{\"a\":1} junk"), json::JsonError);
  EXPECT_THROW((void)json::Value::parse("[1,]"), json::JsonError);
  EXPECT_THROW((void)json::Value::parse("\"unterminated"), json::JsonError);
}

TEST(Json, TypeMismatchesThrow) {
  const json::Value v = json::Value::parse("{\"n\":-1}");
  EXPECT_THROW((void)v.get("n")->as_u64(), json::JsonError);
  EXPECT_THROW((void)v.get("n")->as_string(), json::JsonError);
  EXPECT_THROW((void)v.get("n")->as_bool(), json::JsonError);
  EXPECT_THROW((void)json::Value::parse("1.5").as_u64(), json::JsonError);
}

TEST(JobSpec, RoundTripsThroughJson) {
  JobSpec spec;
  spec.session = "night-run.7";
  spec.bench = nas::Benchmark::kLU;
  spec.cls = nas::ProblemClass::kW;
  spec.nodes = 8;
  spec.mode = sys::OpMode::kDual;
  spec.ranks = 12;
  spec.sched = rt::SchedMode::kParallel;
  spec.jobs = 4;
  spec.deaths = 2;
  spec.fault_seed = 99;
  spec.ftp.enabled = true;
  spec.trace = true;
  spec.interval_cycles = 5000;
  spec.obs = true;
  spec.snapshot_period_cycles = 100'000;

  const JobSpec back = JobSpec::from_json(spec.to_json());
  EXPECT_EQ(back.session, spec.session);
  EXPECT_EQ(back.bench, spec.bench);
  EXPECT_EQ(back.cls, spec.cls);
  EXPECT_EQ(back.nodes, spec.nodes);
  EXPECT_EQ(back.mode, spec.mode);
  EXPECT_EQ(back.ranks, spec.ranks);
  EXPECT_EQ(back.sched, spec.sched);
  EXPECT_EQ(back.jobs, spec.jobs);
  EXPECT_EQ(back.deaths, spec.deaths);
  EXPECT_EQ(back.fault_seed, spec.fault_seed);
  EXPECT_EQ(back.ftp.enabled, spec.ftp.enabled);
  EXPECT_EQ(back.trace, spec.trace);
  EXPECT_EQ(back.interval_cycles, spec.interval_cycles);
  EXPECT_EQ(back.obs, spec.obs);
  ASSERT_TRUE(back.snapshot_period_cycles.has_value());
  EXPECT_EQ(*back.snapshot_period_cycles, *spec.snapshot_period_cycles);
}

TEST(JobSpec, RejectsUnknownKeysAndBadValues) {
  const auto parse = [](const char* text) {
    return JobSpec::from_json(json::Value::parse(text));
  };
  EXPECT_THROW((void)parse(R"({"bennch":"CG"})"), json::JsonError);
  EXPECT_THROW((void)parse(R"({"bench":"XX"})"), json::JsonError);
  EXPECT_THROW((void)parse(R"({"nodes":0})"), json::JsonError);
  EXPECT_THROW((void)parse(R"({"sched":"turbo"})"), json::JsonError);
  EXPECT_THROW((void)parse(R"({"session":".hidden"})"), json::JsonError);
  EXPECT_THROW((void)parse(R"({"session":"a/b"})"), json::JsonError);
  EXPECT_THROW((void)parse(R"({"interval_cycles":0})"), json::JsonError);
  EXPECT_THROW((void)parse(R"({"preset":"nope"})"), json::JsonError);
  // Ranks beyond the partition's capacity (4 nodes VNM = 16).
  EXPECT_THROW((void)parse(R"({"nodes":4,"ranks":17})"), json::JsonError);
  EXPECT_THROW((void)parse(R"(["not","an","object"])"), json::JsonError);
}

TEST(JobSpec, EffectiveRanksFollowsModeAndOverride) {
  JobSpec spec;
  spec.nodes = 4;
  spec.mode = sys::OpMode::kVnm;
  EXPECT_EQ(spec.effective_ranks(), 16u);
  spec.mode = sys::OpMode::kSmp1;
  EXPECT_EQ(spec.effective_ranks(), 4u);
  spec.ranks = 3;
  EXPECT_EQ(spec.effective_ranks(), 3u);
}

TEST(JobSpec, ResidentEstimateScalesWithPartition) {
  JobSpec small, big;
  small.nodes = 2;
  big.nodes = 32;
  EXPECT_LT(estimate_resident_bytes(small), estimate_resident_bytes(big));
  EXPECT_GT(estimate_resident_bytes(small), 0u);
}

TEST(JobSpec, SessionNameValidation) {
  EXPECT_TRUE(valid_session_name("run-1.A_b"));
  EXPECT_FALSE(valid_session_name(""));
  EXPECT_FALSE(valid_session_name(".dot"));
  EXPECT_FALSE(valid_session_name("a b"));
  EXPECT_FALSE(valid_session_name("a/b"));
  EXPECT_FALSE(valid_session_name(std::string(65, 'x')));
}

}  // namespace
}  // namespace bgp::daemon
