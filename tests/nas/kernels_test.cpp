// Every kernel must pass its own NPB-style verification — on one rank, on
// several ranks in VNM, and (for the parameterized suite) across operating
// modes. These are the strongest correctness tests in the repository: they
// exercise real numerics through the whole runtime.
#include <gtest/gtest.h>

#include "nas/kernel.hpp"
#include "nas/runner.hpp"

namespace bgp::nas {
namespace {

KernelResult run_plain(Benchmark b, unsigned nodes, sys::OpMode mode,
                       unsigned ranks_override = 0) {
  rt::MachineConfig mc;
  mc.num_nodes = nodes;
  mc.mode = mode;
  mc.num_ranks_override = ranks_override;
  rt::Machine m(mc);
  auto kernel = make_kernel(b, ProblemClass::kS);
  m.run([&](rt::RankCtx& ctx) {
    ctx.mpi_init();
    kernel->run(ctx);
    ctx.mpi_finalize();
  });
  return kernel->result();
}

class SingleRank : public ::testing::TestWithParam<Benchmark> {};

TEST_P(SingleRank, VerifiesOnOneRank) {
  const auto res = run_plain(GetParam(), 1, sys::OpMode::kSmp1);
  EXPECT_TRUE(res.verified) << res.detail;
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, SingleRank, ::testing::ValuesIn(all_benchmarks()),
    [](const ::testing::TestParamInfo<Benchmark>& info) {
      return std::string(name(info.param));
    });

class VnmFourRanks : public ::testing::TestWithParam<Benchmark> {};

TEST_P(VnmFourRanks, VerifiesOnFourRanksOneNode) {
  const auto res = run_plain(GetParam(), 1, sys::OpMode::kVnm);
  EXPECT_TRUE(res.verified) << res.detail;
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, VnmFourRanks, ::testing::ValuesIn(all_benchmarks()),
    [](const ::testing::TestParamInfo<Benchmark>& info) {
      return std::string(name(info.param));
    });

class VnmEightRanks : public ::testing::TestWithParam<Benchmark> {};

TEST_P(VnmEightRanks, VerifiesOnTwoNodes) {
  const auto res = run_plain(GetParam(), 2, sys::OpMode::kVnm);
  EXPECT_TRUE(res.verified) << res.detail;
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, VnmEightRanks, ::testing::ValuesIn(all_benchmarks()),
    [](const ::testing::TestParamInfo<Benchmark>& info) {
      return std::string(name(info.param));
    });

TEST(Kernels, SpBtRunOnNonPowerOfTwoRankCounts) {
  // The paper runs SP/BT on 121 ranks; our decomposition must accept any
  // count. 3 ranks exercises the uneven block split.
  for (Benchmark b : {Benchmark::kSP, Benchmark::kBT}) {
    const auto res = run_plain(b, 1, sys::OpMode::kVnm, 3);
    EXPECT_TRUE(res.verified) << name(b) << ": " << res.detail;
  }
}

TEST(Kernels, FtRejectsNonPowerOfTwoGracefully) {
  const auto res = run_plain(Benchmark::kFT, 1, sys::OpMode::kVnm, 3);
  EXPECT_FALSE(res.verified);
  EXPECT_NE(res.detail.find("power-of-two"), std::string::npos);
}

TEST(Kernels, DualModeWorks) {
  const auto res = run_plain(Benchmark::kCG, 2, sys::OpMode::kDual);
  EXPECT_TRUE(res.verified) << res.detail;
}

TEST(Kernels, BlockDecompositionCoversEverythingOnce) {
  for (u64 total : {1ull, 7ull, 64ull, 121ull, 1000ull}) {
    for (unsigned parts : {1u, 2u, 3u, 7u, 16u}) {
      u64 covered = 0;
      u64 expected_begin = 0;
      for (unsigned i = 0; i < parts; ++i) {
        const Block blk = block_of(total, parts, i);
        EXPECT_EQ(blk.begin, expected_begin);
        expected_begin = blk.end;
        covered += blk.size();
      }
      EXPECT_EQ(covered, total);
    }
  }
}

TEST(Runner, ProducesVerifiedInstrumentedRun) {
  RunConfig cfg;
  cfg.bench = Benchmark::kCG;
  cfg.cls = ProblemClass::kS;
  cfg.num_nodes = 2;
  cfg.mode = sys::OpMode::kVnm;
  const RunOutput out = run_benchmark(cfg);
  EXPECT_TRUE(out.result.verified) << out.result.detail;
  EXPECT_EQ(out.dumps.size(), 2u);
  EXPECT_GT(out.elapsed, 0u);
  EXPECT_GT(out.record.exec_cycles, 0.0);
  EXPECT_GT(out.record.mflops_per_node, 0.0);
  EXPECT_GT(out.record.fp.total(), 0.0);
}

TEST(Runner, DeterministicAcrossRuns) {
  RunConfig cfg;
  cfg.bench = Benchmark::kMG;
  cfg.cls = ProblemClass::kS;
  cfg.num_nodes = 2;
  const RunOutput a = run_benchmark(cfg);
  const RunOutput b = run_benchmark(cfg);
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.record.exec_cycles, b.record.exec_cycles);
  EXPECT_EQ(a.record.ddr_traffic_bytes, b.record.ddr_traffic_bytes);
}

TEST(Runner, SimdMixRespondsToCompilerConfig) {
  RunConfig cfg;
  cfg.bench = Benchmark::kFT;
  cfg.cls = ProblemClass::kS;
  cfg.num_nodes = 1;
  cfg.opt = opt::OptConfig::parse("-O -qstrict");
  const RunOutput base = run_benchmark(cfg);
  cfg.opt = opt::OptConfig::parse("-O5 -qarch440d");
  const RunOutput simd = run_benchmark(cfg);
  EXPECT_EQ(base.record.fp.simd_instructions(), 0.0);
  EXPECT_GT(simd.record.fp.simd_instructions(), 0.0);
  EXPECT_LT(simd.record.exec_cycles, base.record.exec_cycles);
}

TEST(Kernels, NamesRoundTrip) {
  for (Benchmark b : all_benchmarks()) {
    EXPECT_EQ(parse_benchmark(name(b)), b);
  }
  EXPECT_THROW((void)parse_benchmark("XX"), std::invalid_argument);
  EXPECT_EQ(parse_class("W"), ProblemClass::kW);
  EXPECT_THROW((void)parse_class("Z"), std::invalid_argument);
}

}  // namespace
}  // namespace bgp::nas
