// Cross-checks of the kernels' numerics against independent references:
// the distributed FFT against a direct O(n^2) DFT, and statistical
// properties of the EP Gaussian stream — stronger evidence than the
// kernels' built-in verifications alone.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <vector>

#include "common/rng.hpp"
#include "nas/kernel.hpp"
#include "nas/runner.hpp"

namespace bgp::nas {
namespace {

using cplx = std::complex<double>;

/// Direct DFT reference: X[k] = sum_j x[j] e^{-2pi i jk/n}.
std::vector<cplx> dft(const std::vector<cplx>& x) {
  const std::size_t n = x.size();
  std::vector<cplx> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    cplx acc{0, 0};
    for (std::size_t j = 0; j < n; ++j) {
      const double ang = -2.0 * M_PI * double(j * k) / double(n);
      acc += x[j] * cplx(std::cos(ang), std::sin(ang));
    }
    out[k] = acc;
  }
  return out;
}

// The FT kernel keeps fft_line internal; exercise the same math through a
// one-rank FT run *and* validate the underlying radix-2 idea against a DFT
// using an independent local implementation with identical structure.
void fft_radix2(std::vector<cplx>& a, bool inverse) {
  const std::size_t n = a.size();
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = (inverse ? 2.0 : -2.0) * M_PI / double(len);
    const cplx wl(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      cplx w(1, 0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const cplx u = a[i + k];
        const cplx v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wl;
      }
    }
  }
  if (inverse) {
    for (auto& v : a) v /= double(n);
  }
}

TEST(Numerics, Radix2MatchesDirectDft) {
  for (std::size_t n : {2u, 4u, 16u, 64u}) {
    std::vector<cplx> x(n);
    Xoshiro256pp rng(n);
    for (auto& v : x) v = cplx(rng.next_double() - 0.5, rng.next_double());
    const auto reference = dft(x);
    std::vector<cplx> fast = x;
    fft_radix2(fast, false);
    for (std::size_t k = 0; k < n; ++k) {
      EXPECT_NEAR(std::abs(fast[k] - reference[k]), 0.0, 1e-9)
          << "n=" << n << " k=" << k;
    }
    // And the inverse returns the input.
    fft_radix2(fast, true);
    for (std::size_t k = 0; k < n; ++k) {
      EXPECT_NEAR(std::abs(fast[k] - x[k]), 0.0, 1e-10);
    }
  }
}

TEST(Numerics, FtKernelRoundTripAtMultipleRankCounts) {
  // The kernel's own verification is a full distributed forward+inverse
  // round trip; exercise it at 1, 2 and 4 ranks (different transpose
  // geometries).
  for (unsigned nodes : {1u, 2u, 4u}) {
    rt::MachineConfig mc;
    mc.num_nodes = nodes;
    mc.mode = sys::OpMode::kSmp1;
    rt::Machine m(mc);
    auto kernel = make_kernel(Benchmark::kFT, ProblemClass::kS);
    m.run([&](rt::RankCtx& ctx) {
      ctx.mpi_init();
      kernel->run(ctx);
      ctx.mpi_finalize();
    });
    EXPECT_TRUE(kernel->result().verified)
        << nodes << " nodes: " << kernel->result().detail;
  }
}

TEST(Numerics, EpGaussianMomentsAreRight) {
  // Generate a Marsaglia-polar Gaussian stream exactly as EP does and check
  // the second moment (variance 1) alongside the mean.
  NasRng rng;
  double sum = 0, sum_sq = 0;
  u64 count = 0;
  for (int i = 0; i < 200000; ++i) {
    const double x = 2.0 * rng.next() - 1.0;
    const double y = 2.0 * rng.next() - 1.0;
    const double t = x * x + y * y;
    if (t <= 1.0 && t > 0.0) {
      const double z = std::sqrt(-2.0 * std::log(t) / t);
      for (double g : {x * z, y * z}) {
        sum += g;
        sum_sq += g * g;
        ++count;
      }
    }
  }
  const double mean = sum / double(count);
  const double var = sum_sq / double(count) - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.02);
}

TEST(Numerics, EpAcceptanceMatchesPiOver4) {
  NasRng rng(9349.0);
  u64 accepted = 0;
  constexpr int kPairs = 200000;
  for (int i = 0; i < kPairs; ++i) {
    const double x = 2.0 * rng.next() - 1.0;
    const double y = 2.0 * rng.next() - 1.0;
    if (x * x + y * y <= 1.0) ++accepted;
  }
  EXPECT_NEAR(double(accepted) / kPairs, M_PI / 4.0, 0.005);
}

TEST(Numerics, CgConvergesFasterWithMoreIterationsOfWork) {
  // Residual ratios from the kernel's own record: class S (4 CG iterations)
  // vs class W (8 iterations) — more iterations must reduce further.
  auto residual_of = [](ProblemClass cls) {
    rt::MachineConfig mc;
    mc.num_nodes = 1;
    mc.mode = sys::OpMode::kSmp1;
    rt::Machine m(mc);
    auto kernel = make_kernel(Benchmark::kCG, cls);
    m.run([&](rt::RankCtx& ctx) {
      ctx.mpi_init();
      kernel->run(ctx);
      ctx.mpi_finalize();
    });
    EXPECT_TRUE(kernel->result().verified) << kernel->result().detail;
    // detail: "residual reduced to X of initial, ..."
    const std::string& d = kernel->result().detail;
    return std::stod(d.substr(d.find("to ") + 3));
  };
  EXPECT_LT(residual_of(ProblemClass::kW), residual_of(ProblemClass::kS));
}

}  // namespace
}  // namespace bgp::nas
