// Direct tests of the banded / block solvers SP and BT build on, including
// property-style sweeps against dense references.
#include "nas/solvers.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace bgp::nas {
namespace {

PentaBands laplacian_like(u64, u64) {
  return PentaBands{-0.5, -1.0, 6.0, -1.0, -0.5};
}

PentaBands wavy(u64 row, u64 seed) {
  const double s = std::sin(0.1 * static_cast<double>(row + seed));
  return PentaBands{-0.4 + 0.1 * s, -1.2 - 0.1 * s, 7.0 + s, -0.9 + 0.05 * s,
                    -0.6 - 0.05 * s};
}

TEST(PentaSolve, IdentityLikeSystem) {
  // Diagonal-only system: x = rhs / b.
  std::vector<double> x{8.0, 16.0, 24.0};
  const double resid = penta_solve(
      3, 0, [](u64, u64) { return PentaBands{0, 0, 8.0, 0, 0}; }, x);
  EXPECT_LT(resid, 1e-12);
  EXPECT_DOUBLE_EQ(x[0], 1.0);
  EXPECT_DOUBLE_EQ(x[1], 2.0);
  EXPECT_DOUBLE_EQ(x[2], 3.0);
}

TEST(PentaSolve, RecoversManufacturedSolution) {
  constexpr u64 n = 64;
  // Build rhs = A * known for a known solution, solve, compare.
  std::vector<double> known(n), rhs(n, 0.0);
  for (u64 i = 0; i < n; ++i) known[i] = std::cos(0.3 * double(i));
  for (u64 i = 0; i < n; ++i) {
    const PentaBands w = wavy(i, 5);
    rhs[i] = w.b * known[i];
    if (i >= 2) rhs[i] += w.a2 * known[i - 2];
    if (i >= 1) rhs[i] += w.a1 * known[i - 1];
    if (i + 1 < n) rhs[i] += w.c1 * known[i + 1];
    if (i + 2 < n) rhs[i] += w.c2 * known[i + 2];
  }
  std::vector<double> x = rhs;
  const double resid = penta_solve(n, 5, wavy, x);
  EXPECT_LT(resid, 1e-10);
  for (u64 i = 0; i < n; ++i) EXPECT_NEAR(x[i], known[i], 1e-10);
}

class PentaSizes : public ::testing::TestWithParam<int> {};

TEST_P(PentaSizes, ResidualTinyAcrossSizes) {
  const u64 n = static_cast<u64>(GetParam());
  std::vector<double> x(n);
  for (u64 i = 0; i < n; ++i) x[i] = std::sin(double(i)) + 2.0;
  const double resid = penta_solve(n, 123, laplacian_like, x);
  EXPECT_LT(resid, 1e-10) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, PentaSizes,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 17, 64, 257));

TEST(Mat5, MulMatchesManualComputation) {
  Mat5 a{}, b{};
  for (unsigned i = 0; i < 25; ++i) {
    a[i] = double(i + 1);
    b[i] = double((i * 7) % 11) - 5.0;
  }
  const Mat5 c = mat5_mul(a, b);
  for (unsigned i = 0; i < kBlock; ++i) {
    for (unsigned j = 0; j < kBlock; ++j) {
      double acc = 0;
      for (unsigned k = 0; k < kBlock; ++k) {
        acc += a[i * kBlock + k] * b[k * kBlock + j];
      }
      EXPECT_DOUBLE_EQ(c[i * kBlock + j], acc);
    }
  }
}

TEST(Mat5, SolveInvertsRandomWellConditionedMatrices) {
  std::mt19937_64 gen(42);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  for (int trial = 0; trial < 50; ++trial) {
    Mat5 m{};
    for (unsigned i = 0; i < 25; ++i) m[i] = dist(gen);
    for (unsigned i = 0; i < kBlock; ++i) m[i * kBlock + i] += 6.0;
    Vec5 x_true;
    for (auto& v : x_true) v = dist(gen);
    const Vec5 rhs = mat5_vec(m, x_true);
    const Vec5 x = mat5_solve_vec(m, rhs);
    for (unsigned i = 0; i < kBlock; ++i) {
      EXPECT_NEAR(x[i], x_true[i], 1e-10) << "trial " << trial;
    }
  }
}

TEST(Mat5, SolveHandlesPivoting) {
  // Zero on the leading diagonal position forces a row swap.
  Mat5 m{};
  m[0 * kBlock + 0] = 0.0;
  m[0 * kBlock + 1] = 2.0;
  m[1 * kBlock + 0] = 3.0;
  for (unsigned i = 2; i < kBlock; ++i) m[i * kBlock + i] = 1.0;
  Vec5 rhs{2.0, 3.0, 1.0, 1.0, 1.0};
  const Vec5 x = mat5_solve_vec(m, rhs);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 1.0, 1e-12);
}

namespace {
void easy_blocks(u64 cell, u64 seed, Mat5& a, Mat5& b, Mat5& c) {
  const double s = std::sin(0.05 * double(cell + seed));
  a.fill(-0.2 + 0.02 * s);
  c.fill(-0.3 - 0.02 * s);
  b.fill(0.1 * s);
  for (unsigned i = 0; i < kBlock; ++i) b[i * kBlock + i] = 9.0 + s;
}
}  // namespace

class BlockTridiagSizes : public ::testing::TestWithParam<int> {};

TEST_P(BlockTridiagSizes, ResidualTinyAcrossSizes) {
  const u64 n = static_cast<u64>(GetParam());
  std::vector<double> x(n * kBlock);
  for (u64 i = 0; i < x.size(); ++i) x[i] = std::cos(0.2 * double(i)) + 1.5;
  const double resid = block_tridiag_solve(n, 77, easy_blocks, x);
  EXPECT_LT(resid, 1e-9) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, BlockTridiagSizes,
                         ::testing::Values(1, 2, 3, 5, 16, 48, 128));

TEST(BlockTridiag, RecoversManufacturedSolution) {
  constexpr u64 n = 24;
  std::vector<double> known(n * kBlock);
  for (u64 i = 0; i < known.size(); ++i) known[i] = std::sin(0.4 * double(i));
  // rhs = A * known
  std::vector<double> rhs(n * kBlock, 0.0);
  for (u64 i = 0; i < n; ++i) {
    Mat5 a, b, c;
    easy_blocks(i, 9, a, b, c);
    Vec5 xi, xm{}, xp{};
    for (unsigned k = 0; k < kBlock; ++k) {
      xi[k] = known[i * kBlock + k];
      if (i > 0) xm[k] = known[(i - 1) * kBlock + k];
      if (i + 1 < n) xp[k] = known[(i + 1) * kBlock + k];
    }
    Vec5 acc = mat5_vec(b, xi);
    if (i > 0) {
      const Vec5 t = mat5_vec(a, xm);
      for (unsigned k = 0; k < kBlock; ++k) acc[k] += t[k];
    }
    if (i + 1 < n) {
      const Vec5 t = mat5_vec(c, xp);
      for (unsigned k = 0; k < kBlock; ++k) acc[k] += t[k];
    }
    for (unsigned k = 0; k < kBlock; ++k) rhs[i * kBlock + k] = acc[k];
  }
  std::vector<double> x = rhs;
  const double resid = block_tridiag_solve(n, 9, easy_blocks, x);
  EXPECT_LT(resid, 1e-9);
  for (u64 i = 0; i < x.size(); ++i) EXPECT_NEAR(x[i], known[i], 1e-9);
}

}  // namespace
}  // namespace bgp::nas
