#include "mem/hierarchy.hpp"

#include <gtest/gtest.h>

namespace bgp::mem {
namespace {

TEST(Hierarchy, BuildsWithDefaults) {
  MemoryHierarchy h{HierarchyParams{}};
  EXPECT_TRUE(h.has_l3());
  EXPECT_EQ(h.l3().params().size_bytes, 8 * MiB);
  EXPECT_EQ(h.l1d(0).params().size_bytes, 32 * KiB);
}

TEST(Hierarchy, L3DisabledRoutesMissesToDdr) {
  HierarchyParams p;
  p.l3_size_bytes = 0;
  p.prefetch.enabled = false;
  MemoryHierarchy h{p};
  EXPECT_FALSE(h.has_l3());
  h.read(0, 0x10000, 128, 0);
  EXPECT_GT(h.ddr().total().read_reqs, 0u);
}

TEST(Hierarchy, RepeatedReadsHitInL1) {
  MemoryHierarchy h{HierarchyParams{}};
  h.read(0, 0x1000, 32, 0);
  const u64 ddr_before = h.ddr().total().requests();
  for (int i = 0; i < 100; ++i) h.read(0, 0x1000, 32, 0);
  EXPECT_EQ(h.ddr().total().requests(), ddr_before);
  EXPECT_EQ(h.l1d(0).stats().read_access, 101u);
  EXPECT_EQ(h.l1d(0).stats().read_miss, 1u);
}

TEST(Hierarchy, MultiLineReadTouchesEveryLine) {
  HierarchyParams p;
  p.prefetch.enabled = false;
  MemoryHierarchy h{p};
  h.read(0, 0, 1024, 0);  // 32 L1 lines
  EXPECT_EQ(h.l1d(0).stats().read_access, 32u);
}

TEST(Hierarchy, UnalignedReadCoversStraddledLines) {
  HierarchyParams p;
  p.prefetch.enabled = false;
  MemoryHierarchy h{p};
  // 8 bytes starting 4 bytes before a 32 B boundary touch 2 lines.
  h.read(0, 28, 8, 0);
  EXPECT_EQ(h.l1d(0).stats().read_access, 2u);
}

TEST(Hierarchy, CoresHavePrivateL1s) {
  MemoryHierarchy h{HierarchyParams{}};
  h.read(0, 0x1000, 32, 0);
  // Another core reading the same line misses its own L1.
  h.read(1, 0x1000, 32, 0);
  EXPECT_EQ(h.l1d(0).stats().read_miss, 1u);
  EXPECT_EQ(h.l1d(1).stats().read_miss, 1u);
}

TEST(Hierarchy, SharedL3ServicesSecondCoreFaster) {
  HierarchyParams p;
  p.prefetch.enabled = false;
  MemoryHierarchy h{p};
  const auto first = h.read(0, 0x4000, 128, 0);
  const auto second = h.read(1, 0x4000, 128, 0);
  EXPECT_LT(second.latency, first.latency);   // L3 hit vs DDR
  EXPECT_EQ(second.serviced_by, 3);
}

TEST(Hierarchy, WritesReachL3NotDdrWhileCapacityHolds) {
  HierarchyParams p;
  p.prefetch.enabled = false;
  MemoryHierarchy h{p};
  // Stream 64 KiB of stores: write-through L1/L2, absorbed by L3.
  for (addr_t a = 0; a < 64 * KiB; a += 32) h.write(0, a, 32, 0);
  EXPECT_GT(h.l3().stats().write_access, 0u);
  EXPECT_EQ(h.ddr().total().write_reqs, 0u);
  // Reads for ownership (write-allocate fills) do hit DDR.
  EXPECT_GT(h.ddr().total().read_reqs, 0u);
}

TEST(Hierarchy, EvictedDirtyL3LinesProduceDdrWrites) {
  HierarchyParams p;
  p.l3_size_bytes = 512 * KiB;  // small L3 so we can overflow it quickly
  p.prefetch.enabled = false;
  MemoryHierarchy h{p};
  for (addr_t a = 0; a < 2 * MiB; a += 32) h.write(0, a, 32, 0);
  EXPECT_GT(h.ddr().total().write_reqs, 0u);
}

TEST(Hierarchy, SmallerL3MeansMoreDdrTraffic) {
  // Workload with two reuse scales: a 1 MiB hot region swept repeatedly
  // plus a 3 MiB cold region swept once per outer pass (total 4 MiB).
  auto traffic = [](u64 l3_size) {
    HierarchyParams p;
    p.l3_size_bytes = l3_size;
    MemoryHierarchy h{p};
    for (int pass = 0; pass < 2; ++pass) {
      for (int rep = 0; rep < 5; ++rep) {
        for (addr_t a = 0; a < MiB; a += 128) h.read(0, a, 128, 0);
      }
      for (addr_t a = MiB; a < 4 * MiB; a += 128) h.read(0, a, 128, 0);
    }
    return h.ddr().total().bytes();
  };
  const u64 t0 = traffic(0);
  const u64 t2 = traffic(2 * MiB);
  const u64 t4 = traffic(4 * MiB);
  const u64 t8 = traffic(8 * MiB);
  EXPECT_GT(t0, t2);   // hot region now fits
  EXPECT_GT(t2, t4);   // whole footprint now fits
  EXPECT_GE(t4, t8);   // beyond the footprint, little further benefit
}

TEST(Hierarchy, PrefetcherReducesDemandLatency) {
  auto total_latency = [](bool enabled) {
    HierarchyParams p;
    p.prefetch.enabled = enabled;
    MemoryHierarchy h{p};
    cycles_t now = 0;
    for (addr_t a = 0; a < MiB; a += 32) {
      now += h.read(0, a, 32, now).latency;
    }
    return now;
  };
  EXPECT_LT(total_latency(true), total_latency(false));
}

TEST(Hierarchy, IfetchHitsAfterWarm) {
  MemoryHierarchy h{HierarchyParams{}};
  h.ifetch(0, 0x100, 0);
  const auto r = h.ifetch(0, 0x100, 0);
  EXPECT_EQ(r.latency, h.params().l1i.hit_latency);
}

TEST(Hierarchy, SnoopSeesCrossCoreSharing) {
  MemoryHierarchy h{HierarchyParams{}};
  h.read(0, 0x2000, 32, 0);
  h.read(1, 0x2000, 32, 0);
  h.write(0, 0x2000, 32, 0);
  EXPECT_EQ(h.snoop().stats().invalidates_sent, 1u);
}

}  // namespace
}  // namespace bgp::mem
