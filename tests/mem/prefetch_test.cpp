#include "mem/prefetch.hpp"

#include <gtest/gtest.h>

namespace bgp::mem {
namespace {

CacheParams l2_params() {
  return CacheParams{.size_bytes = 16 * KiB,
                     .line_bytes = 128,
                     .assoc = 8,
                     .hit_latency = 12,
                     .write_through = true,
                     .write_allocate = false};
}

TEST(L2Prefetch, SequentialStreamDetected) {
  Backstop mem(100);
  PrefetchParams pf{.enabled = true, .streams = 4, .depth = 2};
  L2Unit l2("l2", l2_params(), pf, &mem);
  // Sequential line-sized reads: miss, miss (stream detected), then the
  // prefetcher runs ahead and later lines hit.
  for (addr_t a = 0; a < 16 * 128; a += 128) {
    l2.access(a, AccessType::kRead, 0, 0);
  }
  EXPECT_GE(l2.prefetch_stats().streams_detected, 1u);
  EXPECT_GT(l2.prefetch_stats().issued, 0u);
  EXPECT_GT(l2.prefetch_stats().hits, 0u);
  // Steady state: most accesses after detection are prefetch hits.
  EXPECT_LE(l2.cache_stats().read_miss, 4u);
}

TEST(L2Prefetch, DisabledPrefetcherMissesEveryColdLine) {
  Backstop mem(100);
  PrefetchParams pf{.enabled = false, .streams = 4, .depth = 2};
  L2Unit l2("l2", l2_params(), pf, &mem);
  for (addr_t a = 0; a < 16 * 128; a += 128) {
    l2.access(a, AccessType::kRead, 0, 0);
  }
  EXPECT_EQ(l2.cache_stats().read_miss, 16u);
  EXPECT_EQ(l2.prefetch_stats().issued, 0u);
}

TEST(L2Prefetch, RandomAccessesDoNotTriggerStreams) {
  Backstop mem(100);
  PrefetchParams pf{.enabled = true, .streams = 4, .depth = 2};
  L2Unit l2("l2", l2_params(), pf, &mem);
  // Strided by 3 lines: never two consecutive lines.
  for (addr_t a = 0; a < 64 * 128; a += 3 * 128) {
    l2.access(a, AccessType::kRead, 0, 0);
  }
  EXPECT_EQ(l2.prefetch_stats().streams_detected, 0u);
  EXPECT_EQ(l2.prefetch_stats().issued, 0u);
}

TEST(L2Prefetch, DeeperPrefetchHidesMoreLatency) {
  // A consumer that spends 20 cycles per 128 B line against a 100-cycle
  // memory: a 1-deep prefetcher cannot stay ahead (each hit still pays
  // most of the fill residue); an 8-deep one hides the latency fully.
  auto run = [](unsigned depth) {
    Backstop mem(100);
    PrefetchParams pf{.enabled = true, .streams = 4, .depth = depth};
    L2Unit l2("l2", l2_params(), pf, &mem);
    cycles_t now = 0;
    cycles_t total = 0;
    for (addr_t a = 0; a < 64 * 128; a += 128) {
      total += l2.access(a, AccessType::kRead, 0, now).latency;
      now += 20;
    }
    return total;
  };
  EXPECT_LT(run(8), run(1));
}

TEST(L2Prefetch, PrefetchConsumesDownstreamBandwidth) {
  Backstop mem(100);
  PrefetchParams pf{.enabled = true, .streams = 4, .depth = 2};
  L2Unit l2("l2", l2_params(), pf, &mem);
  for (addr_t a = 0; a < 32 * 128; a += 128) {
    l2.access(a, AccessType::kRead, 0, 0);
  }
  // Downstream sees demand misses + prefetches, at least one per line.
  EXPECT_GE(mem.accesses(), 32u);
}

TEST(L2Prefetch, MultipleConcurrentStreams) {
  Backstop mem(100);
  PrefetchParams pf{.enabled = true, .streams = 4, .depth = 2};
  L2Unit l2("l2", l2_params(), pf, &mem);
  // Interleave two distant sequential streams (like x[i] and y[i] in a dot
  // product); both must be tracked.
  for (unsigned i = 0; i < 32; ++i) {
    l2.access(0x00000 + addr_t{i} * 128, AccessType::kRead, 0, 0);
    l2.access(0x80000 + addr_t{i} * 128, AccessType::kRead, 0, 0);
  }
  EXPECT_GE(l2.prefetch_stats().streams_detected, 2u);
  EXPECT_GT(l2.prefetch_stats().hits, 20u);
}

TEST(L2Prefetch, WritesBypassPrefetcher) {
  Backstop mem(100);
  PrefetchParams pf{.enabled = true, .streams = 4, .depth = 4};
  L2Unit l2("l2", l2_params(), pf, &mem);
  for (addr_t a = 0; a < 32 * 128; a += 128) {
    l2.access(a, AccessType::kWrite, 0, 0);
  }
  EXPECT_EQ(l2.prefetch_stats().streams_detected, 0u);
  EXPECT_EQ(mem.writes(), 32u);
}

}  // namespace
}  // namespace bgp::mem
