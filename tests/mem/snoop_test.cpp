#include "mem/snoop.hpp"

#include <gtest/gtest.h>

namespace bgp::mem {
namespace {

TEST(Snoop, WriteWithNoSharersIsFiltered) {
  SnoopFilter f;
  EXPECT_EQ(f.on_write(0, 100), 0u);
  EXPECT_EQ(f.stats().requests, 1u);
  EXPECT_EQ(f.stats().filter_hits, 1u);
  EXPECT_EQ(f.stats().invalidates_sent, 0u);
}

TEST(Snoop, WriteInvalidatesOtherSharers) {
  SnoopFilter f;
  f.record_fill(0, 100);
  f.record_fill(1, 100);
  f.record_fill(2, 100);
  EXPECT_EQ(f.on_write(0, 100), 2u);  // cores 1 and 2
  EXPECT_EQ(f.stats().invalidates_sent, 2u);
  // After invalidation only the writer holds the line.
  EXPECT_EQ(f.on_write(0, 100), 0u);
}

TEST(Snoop, OwnCopyDoesNotSelfInvalidate) {
  SnoopFilter f;
  f.record_fill(3, 77);
  EXPECT_EQ(f.on_write(3, 77), 0u);
}

TEST(Snoop, DistinctLinesTrackedIndependently) {
  SnoopFilter f;
  f.record_fill(1, 10);
  f.record_fill(2, 11);
  EXPECT_EQ(f.on_write(0, 10), 1u);
  EXPECT_EQ(f.on_write(0, 11), 1u);
}

TEST(Snoop, DirectMappedCollisionLosesOldEntryConservatively) {
  SnoopFilter f(/*table_entries=*/16);
  f.record_fill(1, 5);
  f.record_fill(2, 5 + 16);  // collides with line 5, displaces it
  // The displaced line's sharers are forgotten: write is filtered.
  EXPECT_EQ(f.on_write(0, 5), 0u);
  // The resident entry still works.
  EXPECT_EQ(f.on_write(0, 5 + 16), 1u);
}

TEST(Snoop, PrivateWorkingSetsGenerateNoInvalidates) {
  // Ranks use disjoint address regions (the runtime's layout); the filter
  // must stay quiet then.
  SnoopFilter f;
  for (unsigned core = 0; core < 4; ++core) {
    const addr_t base = addr_t{core} << 20;
    for (addr_t l = 0; l < 256; ++l) {
      f.record_fill(core, base + l);
      f.on_write(core, base + l);
    }
  }
  EXPECT_EQ(f.stats().invalidates_sent, 0u);
}

}  // namespace
}  // namespace bgp::mem
