#include "mem/cache.hpp"

#include <gtest/gtest.h>

#include <map>
#include <tuple>

namespace bgp::mem {
namespace {

CacheParams small_wb() {
  // 4 sets * 2 ways * 64 B = 512 B write-back cache for easy conflict tests.
  return CacheParams{.size_bytes = 512,
                     .line_bytes = 64,
                     .assoc = 2,
                     .hit_latency = 3,
                     .write_through = false,
                     .write_allocate = true};
}

TEST(Cache, GeometryValidation) {
  Backstop mem;
  CacheParams bad = small_wb();
  bad.size_bytes = 500;  // not sets*assoc*line
  EXPECT_THROW(Cache("bad", bad, &mem), std::invalid_argument);
  EXPECT_EQ(small_wb().num_sets(), 4u);
}

TEST(Cache, ColdMissThenHit) {
  Backstop mem(100);
  Cache c("c", small_wb(), &mem);
  const auto miss = c.access(0x1000, AccessType::kRead, 0, 0);
  EXPECT_EQ(miss.latency, 103u);  // hit latency + backstop
  EXPECT_EQ(miss.serviced_by, 4);
  const auto hit = c.access(0x1000, AccessType::kRead, 0, 0);
  EXPECT_EQ(hit.latency, 3u);
  EXPECT_EQ(hit.serviced_by, 1);
  EXPECT_EQ(c.stats().read_access, 2u);
  EXPECT_EQ(c.stats().read_miss, 1u);
}

TEST(Cache, SameLineDifferentOffsetsHit) {
  Backstop mem;
  Cache c("c", small_wb(), &mem);
  c.access(0x1000, AccessType::kRead, 0, 0);
  EXPECT_EQ(c.access(0x103F, AccessType::kRead, 0, 0).latency, 3u);
  EXPECT_EQ(c.stats().read_miss, 1u);
}

TEST(Cache, LruEvictionWithinSet) {
  Backstop mem;
  Cache c("c", small_wb(), &mem);
  // Three lines mapping to the same set (set stride = 4 lines * 64 B = 256).
  const addr_t a = 0x0000, b = 0x0100, d = 0x0200;
  c.access(a, AccessType::kRead, 0, 0);
  c.access(b, AccessType::kRead, 0, 0);
  c.access(a, AccessType::kRead, 0, 0);  // a is now MRU
  c.access(d, AccessType::kRead, 0, 0);  // evicts b (LRU)
  EXPECT_TRUE(c.probe(a));
  EXPECT_FALSE(c.probe(b));
  EXPECT_TRUE(c.probe(d));
  EXPECT_EQ(c.stats().evictions, 1u);
}

TEST(Cache, WritebackOfDirtyVictim) {
  Backstop mem;
  Cache c("c", small_wb(), &mem);
  const addr_t a = 0x0000, b = 0x0100, d = 0x0200;
  c.access(a, AccessType::kWrite, 0, 0);  // allocate dirty
  c.access(b, AccessType::kRead, 0, 0);
  c.access(d, AccessType::kRead, 0, 0);  // evicts dirty a -> writeback
  EXPECT_EQ(c.stats().writebacks, 1u);
  EXPECT_EQ(mem.writes(), 1u);
}

TEST(Cache, CleanVictimNoWriteback) {
  Backstop mem;
  Cache c("c", small_wb(), &mem);
  const addr_t a = 0x0000, b = 0x0100, d = 0x0200;
  c.access(a, AccessType::kRead, 0, 0);
  c.access(b, AccessType::kRead, 0, 0);
  c.access(d, AccessType::kRead, 0, 0);
  EXPECT_EQ(c.stats().writebacks, 0u);
  EXPECT_EQ(mem.writes(), 0u);
}

TEST(Cache, WriteThroughForwardsEveryWrite) {
  Backstop mem;
  CacheParams wt = small_wb();
  wt.write_through = true;
  wt.write_allocate = false;
  Cache c("c", wt, &mem);
  c.access(0x1000, AccessType::kRead, 0, 0);   // fill
  c.access(0x1000, AccessType::kWrite, 0, 0);  // write hit: forwarded
  c.access(0x2000, AccessType::kWrite, 0, 0);  // write miss: forwarded, no allocate
  EXPECT_EQ(mem.writes(), 2u);
  EXPECT_FALSE(c.probe(0x2000));
  EXPECT_EQ(c.stats().writebacks, 0u);
}

TEST(Cache, WriteBackAbsorbsWriteHits) {
  Backstop mem;
  Cache c("c", small_wb(), &mem);
  c.access(0x1000, AccessType::kRead, 0, 0);
  for (int i = 0; i < 100; ++i) c.access(0x1000, AccessType::kWrite, 0, 0);
  EXPECT_EQ(mem.writes(), 0u);  // dirty line stays until eviction
}

TEST(Cache, InstallDoesNotDoubleInsert) {
  Backstop mem;
  Cache c("c", small_wb(), &mem);
  EXPECT_TRUE(c.install(0x1000, 0, 0));
  EXPECT_FALSE(c.install(0x1000, 0, 0));
  EXPECT_TRUE(c.probe(0x1000));
  EXPECT_EQ(c.access(0x1000, AccessType::kRead, 0, 0).latency, 3u);
}

TEST(Cache, FlushWritesBackDirtyLines) {
  Backstop mem;
  Cache c("c", small_wb(), &mem);
  c.access(0x0000, AccessType::kWrite, 0, 0);
  c.access(0x1000, AccessType::kRead, 0, 0);
  c.flush(0, 0);
  EXPECT_EQ(mem.writes(), 1u);
  EXPECT_EQ(c.resident_lines(), 0u);
  EXPECT_FALSE(c.probe(0x0000));
}

TEST(Cache, CapacityBehaviour) {
  // Working set of exactly the cache size must fit after one pass.
  Backstop mem;
  Cache c("c", small_wb(), &mem);
  for (addr_t a = 0; a < 512; a += 64) c.access(a, AccessType::kRead, 0, 0);
  const u64 misses_after_fill = c.stats().read_miss;
  for (addr_t a = 0; a < 512; a += 64) c.access(a, AccessType::kRead, 0, 0);
  EXPECT_EQ(c.stats().read_miss, misses_after_fill);
  EXPECT_EQ(c.resident_lines(), 8u);
}

TEST(Cache, ThrashingBeyondCapacity) {
  // A working set of 2x the cache size in the same sets must keep missing.
  Backstop mem;
  Cache c("c", small_wb(), &mem);
  for (int pass = 0; pass < 3; ++pass) {
    for (addr_t a = 0; a < 1024; a += 64) c.access(a, AccessType::kRead, 0, 0);
  }
  // LRU on a cyclic pattern of 4 lines/set into 2 ways: every access misses.
  EXPECT_EQ(c.stats().read_miss, c.stats().read_access);
}

TEST(Cache, EventsEmittedToSink) {
  class Recorder final : public EventSink {
   public:
    void event(isa::EventId id, u64 count) override { counts[id] += count; }
    std::map<isa::EventId, u64> counts;
  } rec;

  Backstop mem;
  CacheEventIds ids;
  ids.read_access = 7;
  ids.read_miss = 8;
  Cache c("c", small_wb(), &mem, &rec, ids);
  c.access(0x0, AccessType::kRead, 0, 0);
  c.access(0x0, AccessType::kRead, 0, 0);
  EXPECT_EQ(rec.counts[7], 2u);
  EXPECT_EQ(rec.counts[8], 1u);
}

TEST(Cache, MissWithNoNextLevelIsWiringBug) {
  Cache c("c", small_wb(), nullptr);
  EXPECT_THROW(c.access(0x0, AccessType::kRead, 0, 0), std::logic_error);
}

class CacheSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CacheSweep, MissRateNeverExceedsOneAndFitsWhenSized) {
  const auto [size_kb, assoc] = GetParam();
  Backstop mem;
  CacheParams p{.size_bytes = static_cast<u64>(size_kb) * KiB,
                .line_bytes = 64,
                .assoc = static_cast<u32>(assoc),
                .hit_latency = 3,
                .write_through = false,
                .write_allocate = true};
  Cache c("c", p, &mem);
  // Stream half the capacity twice: second pass must be all hits.
  const addr_t span = p.size_bytes / 2;
  for (addr_t a = 0; a < span; a += 64) c.access(a, AccessType::kRead, 0, 0);
  const u64 m1 = c.stats().read_miss;
  for (addr_t a = 0; a < span; a += 64) c.access(a, AccessType::kRead, 0, 0);
  EXPECT_EQ(c.stats().read_miss, m1);
  EXPECT_LE(c.stats().miss_rate(), 1.0);
  EXPECT_EQ(m1, span / 64);  // cold misses exactly once per line
}

INSTANTIATE_TEST_SUITE_P(Geometries, CacheSweep,
                         ::testing::Combine(::testing::Values(4, 32, 256),
                                            ::testing::Values(1, 2, 8, 16)));

}  // namespace
}  // namespace bgp::mem
