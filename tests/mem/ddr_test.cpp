#include "mem/ddr.hpp"

#include <gtest/gtest.h>

namespace bgp::mem {
namespace {

TEST(Ddr, UncontendedReadLatency) {
  DdrParams p;  // base 104, 8 B/cycle, 128 B lines -> service 16
  DdrController ctrl(p);
  const auto r = ctrl.access(0, AccessType::kRead, 0, 1000);
  EXPECT_EQ(r.latency, 104u + 16u);
  EXPECT_EQ(r.serviced_by, 4);
}

TEST(Ddr, BackToBackRequestsQueue) {
  DdrParams p;
  DdrController ctrl(p);
  ctrl.access(0, AccessType::kRead, 0, 1000);
  // Second request at the same instant waits for the first to drain.
  const auto r2 = ctrl.access(128, AccessType::kRead, 1, 1000);
  EXPECT_EQ(r2.latency, 16u + 104u + 16u);
  EXPECT_EQ(ctrl.stats().queue_stall_cycles, 16u);
}

TEST(Ddr, IdleGapDrainsQueue) {
  DdrParams p;
  DdrController ctrl(p);
  ctrl.access(0, AccessType::kRead, 0, 0);
  const auto r2 = ctrl.access(128, AccessType::kRead, 0, 10000);
  EXPECT_EQ(r2.latency, 104u + 16u);  // no queueing after the gap
}

TEST(Ddr, TrafficAccounting) {
  DdrParams p;
  DdrController ctrl(p);
  for (int i = 0; i < 10; ++i) ctrl.access(i * 128, AccessType::kRead, 0, 0);
  for (int i = 0; i < 4; ++i) ctrl.access(i * 128, AccessType::kWrite, 0, 0);
  EXPECT_EQ(ctrl.stats().read_reqs, 10u);
  EXPECT_EQ(ctrl.stats().write_reqs, 4u);
  EXPECT_EQ(ctrl.stats().bytes_read, 1280u);
  EXPECT_EQ(ctrl.stats().bytes_written, 512u);
  EXPECT_EQ(ctrl.stats().busy_cycles, 14u * 16u);
}

TEST(Ddr, QueueDelayIsCapped) {
  DdrParams p;
  p.max_queue_services = 4;
  DdrController ctrl(p);
  for (int i = 0; i < 100; ++i) ctrl.access(0, AccessType::kRead, 0, 0);
  // Worst observed queue wait must be bounded by 4 services.
  const auto r = ctrl.access(0, AccessType::kRead, 0, 0);
  EXPECT_LE(r.latency, 104u + 16u + 4u * 16u);
}

TEST(Ddr, PostedWritesAreCheapForRequester) {
  DdrParams p;
  DdrController ctrl(p);
  const auto w = ctrl.access(0, AccessType::kWrite, 0, 0);
  EXPECT_LE(w.latency, 16u);
}

TEST(DdrSystem, InterleavesAcrossControllers) {
  DdrParams p;
  DdrSystem sys(p);
  // Consecutive lines alternate controllers.
  for (int i = 0; i < 8; ++i) sys.access(i * 128, AccessType::kRead, 0, 0);
  EXPECT_EQ(sys.controller(0).stats().read_reqs, 4u);
  EXPECT_EQ(sys.controller(1).stats().read_reqs, 4u);
  EXPECT_EQ(sys.total().read_reqs, 8u);
  EXPECT_EQ(sys.total().bytes_read, 8u * 128u);
}

TEST(DdrSystem, InterleavingHalvesQueueing) {
  DdrParams p;
  DdrSystem single_stream(p);
  cycles_t same_ctrl = 0, alternating = 0;
  for (int i = 0; i < 16; ++i) {
    // Same controller: lines 0, 2, 4... (even line index -> controller 0).
    same_ctrl += single_stream.access(i * 256, AccessType::kRead, 0, 0).latency;
  }
  DdrSystem both(p);
  for (int i = 0; i < 16; ++i) {
    alternating += both.access(i * 128, AccessType::kRead, 0, 0).latency;
  }
  EXPECT_LT(alternating, same_ctrl);
}

TEST(DdrSystem, EmitsUpcEventsWhenWired) {
  class Recorder final : public EventSink {
   public:
    void event(isa::EventId id, u64 count) override { total[id] += count; }
    std::map<isa::EventId, u64> total;
  } rec;
  DdrParams p;
  DdrSystem sys(p, &rec);
  sys.access(0, AccessType::kRead, 0, 0);    // controller 0
  sys.access(128, AccessType::kWrite, 0, 0); // controller 1
  EXPECT_EQ(rec.total[isa::ev::ddr(0, isa::DdrEvent::kReadReq)], 1u);
  EXPECT_EQ(rec.total[isa::ev::ddr(0, isa::DdrEvent::kBytesRead16B)], 8u);
  EXPECT_EQ(rec.total[isa::ev::ddr(1, isa::DdrEvent::kWriteReq)], 1u);
  EXPECT_EQ(rec.total[isa::ev::ddr(1, isa::DdrEvent::kBytesWritten16B)], 8u);
}

}  // namespace
}  // namespace bgp::mem
