#include "cpu/core.hpp"

#include <gtest/gtest.h>

#include <map>

namespace bgp::cpu {
namespace {

using isa::FpOp;
using isa::IntOp;
using isa::LsOp;
using isa::OpMix;

class Recorder final : public mem::EventSink {
 public:
  void event(isa::EventId id, u64 count) override { counts[id] += count; }
  std::map<isa::EventId, u64> counts;
};

TEST(Core, EmptyBundleCostsNothing) {
  Core c(0, CoreParams{});
  EXPECT_EQ(c.execute(OpMix{}), 0u);
  EXPECT_EQ(c.now(), 0u);
}

TEST(Core, DualIssueBound) {
  // 100 integer ops, nothing else: 2-way issue -> 50 cycles.
  OpMix m;
  m.int_at(IntOp::kAlu) = 100;
  EXPECT_EQ(Core::bundle_cycles(m, CoreParams{}), 50u);
}

TEST(Core, FpuOccupancyBound) {
  // 100 FMAs alone: FPU does 1/cycle -> 100 cycles despite 2-way issue.
  OpMix m;
  m.fp_at(FpOp::kFma) = 100;
  EXPECT_EQ(Core::bundle_cycles(m, CoreParams{}), 100u);
}

TEST(Core, SimdHalvesFpuOccupancy) {
  OpMix scalar;
  scalar.fp_at(FpOp::kFma) = 100;
  OpMix simd;
  simd.fp_at(FpOp::kSimdFma) = 50;  // same flops, half the instructions
  EXPECT_LT(Core::bundle_cycles(simd, CoreParams{}),
            Core::bundle_cycles(scalar, CoreParams{}));
  // And the same flops are reported.
  EXPECT_EQ(scalar.total_flops(), simd.total_flops());
}

TEST(Core, DividesAreUnpipelined) {
  OpMix m;
  m.fp_at(FpOp::kDiv) = 10;
  const CoreParams p{};
  EXPECT_EQ(Core::bundle_cycles(m, p), 10 * p.fp_div_cycles);
}

TEST(Core, LsuBound) {
  OpMix m;
  m.ls_at(LsOp::kLoadDouble) = 200;
  m.int_at(IntOp::kAlu) = 10;
  EXPECT_EQ(Core::bundle_cycles(m, CoreParams{}), 200u);
}

TEST(Core, QuadLoadsHalveLsuOccupancy) {
  OpMix dbl;
  dbl.ls_at(LsOp::kLoadDouble) = 200;
  OpMix quad;
  quad.ls_at(LsOp::kLoadQuad) = 100;  // same bytes
  EXPECT_EQ(dbl.bytes_loaded(), quad.bytes_loaded());
  EXPECT_LT(Core::bundle_cycles(quad, CoreParams{}),
            Core::bundle_cycles(dbl, CoreParams{}));
}

TEST(Core, BranchMispredictionPenalty) {
  CoreParams p;
  p.mispredict_rate = 0.5;
  p.mispredict_penalty = 7;
  OpMix m;
  m.int_at(IntOp::kBranch) = 100;
  // issue bound 50 + 50 mispredicts * 7.
  EXPECT_EQ(Core::bundle_cycles(m, p), 50u + 350u);
}

TEST(Core, ExecuteAccumulatesStatsAndTime) {
  Core c(1, CoreParams{});
  OpMix m;
  m.fp_at(FpOp::kSimdFma) = 10;
  m.ls_at(LsOp::kLoadQuad) = 5;
  c.execute(m);
  EXPECT_EQ(c.stats().instructions, 15u);
  EXPECT_EQ(c.stats().flops, 40u);
  EXPECT_EQ(c.now(), c.stats().compute_cycles);
  c.stall(100);
  c.wait(50);
  EXPECT_EQ(c.stats().memory_stall_cycles, 100u);
  EXPECT_EQ(c.stats().wait_cycles, 50u);
  EXPECT_EQ(c.now(), c.stats().total_cycles());
}

TEST(Core, SignalsFpuAndCycleEvents) {
  Recorder rec;
  Core c(2, CoreParams{}, &rec);
  OpMix m;
  m.fp_at(FpOp::kSimdAddSub) = 7;
  m.int_at(IntOp::kAlu) = 3;
  const cycles_t cycles = c.execute(m);
  EXPECT_EQ(rec.counts[isa::ev::fpu_op(2, FpOp::kSimdAddSub)], 7u);
  EXPECT_EQ(rec.counts[isa::ev::int_op(2, IntOp::kAlu)], 3u);
  EXPECT_EQ(rec.counts[isa::ev::instr_completed(2)], 10u);
  EXPECT_EQ(rec.counts[isa::ev::cycle_count(2)], cycles);
}

TEST(Core, SyncToOnlyMovesForward) {
  Core c(0, CoreParams{});
  c.advance(100);
  c.sync_to(50);  // no-op
  EXPECT_EQ(c.now(), 100u);
  c.sync_to(250);
  EXPECT_EQ(c.now(), 250u);
  EXPECT_EQ(c.stats().wait_cycles, 150u);
}

TEST(Core, TimebaseMatchesClockAndCountsReads) {
  Recorder rec;
  Core c(0, CoreParams{}, &rec);
  c.advance(123);
  EXPECT_EQ(c.read_timebase(), 123u);
  EXPECT_EQ(rec.counts[isa::ev::system(isa::SysEvent::kTimebaseReads, 0)], 1u);
}

TEST(Core, PeakSimdRateIsFourFlopsPerCycle) {
  // 13.6 GFLOPS node peak = 4 cores * 850 MHz * 4 flops: a pure SIMD-FMA
  // bundle must execute at 4 flops/cycle.
  OpMix m;
  m.fp_at(FpOp::kSimdFma) = 1000;
  const cycles_t cycles = Core::bundle_cycles(m, CoreParams{});
  EXPECT_EQ(m.total_flops() / cycles, 4u);
}

}  // namespace
}  // namespace bgp::cpu
