#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/strfmt.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/obs.hpp"
#include "obs/span_io.hpp"
#include "json_check.hpp"

namespace bgp {
namespace {

namespace fs = std::filesystem;
using obs::SpanCat;

/// A small deterministic recorder: 2 nodes x 2 cores, nested spans on
/// (0,0), a span on (1,1), one instant.
obs::FlightRecorder make_recorder() {
  obs::ObsConfig cfg;
  cfg.enabled = true;
  obs::FlightRecorder fr(2, 2, cfg);
  obs::SpanRecorder& r00 = fr.rank(0, 0);
  r00.begin("region.EP", SpanCat::kRegion, 100);
  r00.begin("coll.allreduce", SpanCat::kCollective, 200);
  r00.end(350);
  r00.begin("coll.barrier", SpanCat::kCollective, 400);
  r00.end(500);
  r00.end(1000);
  obs::SpanRecorder& r11 = fr.rank(1, 1);
  r11.begin("upc.start", SpanCat::kUpc, 40);
  r11.end(80);
  r11.instant("fault.node_death", SpanCat::kFault, 77);
  return fr;
}

TEST(ChromeTrace, RendersValidWellNestedJson) {
  const obs::FlightRecorder fr = make_recorder();
  const std::string json =
      obs::render_chrome_trace(fr.all_spans(), fr.all_instants(), "synthetic");

  ASSERT_TRUE(testjson::valid_json(json)) << json;

  // Golden structure: metadata names the processes/threads, spans are "X"
  // complete events with exact cycle stamps in args, instants are
  // thread-scoped "i" events.
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"app\":\"synthetic\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"node0000\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"node0001\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"core1\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"region.EP\",\"cat\":\"region\""),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"fault.node_death\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);

  const auto events = testjson::extract_x_events(json);
  ASSERT_EQ(events.size(), 4u);
  EXPECT_TRUE(testjson::well_nested(events));

  // Timestamps are cycles at 850 cycles/us: region.EP spans [100,1000).
  EXPECT_NE(json.find(strfmt("\"ts\":%.3f", 100 / 850.0)), std::string::npos);
  EXPECT_NE(json.find(strfmt("\"dur\":%.3f", 900 / 850.0)), std::string::npos);
  EXPECT_NE(json.find("\"bc\":100,\"ec\":1000"), std::string::npos);

  // Host times are deliberately absent: rendering twice from recorders
  // built at different host times gives the same bytes.
  const obs::FlightRecorder fr2 = make_recorder();
  EXPECT_EQ(json, obs::render_chrome_trace(fr2.all_spans(), fr2.all_instants(),
                                           "synthetic"));
}

TEST(ChromeTrace, OverlappingSiblingsOnOneTrackAreCaught) {
  // Sanity-check the checker itself: partial overlap must be rejected.
  std::vector<testjson::XEvent> bad(2);
  bad[0] = {"a", 0, 0, 100, 300};
  bad[1] = {"b", 0, 0, 200, 400};
  EXPECT_FALSE(testjson::well_nested(bad));
  // Same intervals on different tracks are fine.
  bad[1].tid = 1;
  EXPECT_TRUE(testjson::well_nested(bad));
}

TEST(SpanIo, FileRoundTripPreservesEverySpan) {
  const obs::FlightRecorder fr = make_recorder();
  const fs::path dir = fs::temp_directory_path() / "bgpc_obs_spanio";
  fs::remove_all(dir);
  fs::create_directories(dir);

  for (const unsigned node : {0u, 1u}) {
    obs::write_span_file(obs::span_file_path(dir, "synthetic", node),
                         "synthetic", node, fr);
  }
  const obs::SpanFile f0 =
      obs::load_span_file(obs::span_file_path(dir, "synthetic", 0));
  EXPECT_EQ(f0.app, "synthetic");
  EXPECT_EQ(f0.node, 0u);
  ASSERT_EQ(f0.spans.size(), 3u);
  EXPECT_EQ(f0.spans[0].name, "region.EP");  // sorted by begin, depth
  EXPECT_EQ(f0.spans[0].begin_cycles, 100u);
  EXPECT_EQ(f0.spans[0].end_cycles, 1000u);
  EXPECT_EQ(f0.spans[1].name, "coll.allreduce");
  EXPECT_EQ(f0.spans[1].cat, SpanCat::kCollective);
  EXPECT_EQ(f0.spans[1].depth, 1u);

  const obs::SpanSet set = obs::load_span_dir(dir, "synthetic");
  EXPECT_EQ(set.nodes, (std::vector<unsigned>{0u, 1u}));
  EXPECT_EQ(set.spans.size(), 4u);
  ASSERT_EQ(set.instants.size(), 1u);
  EXPECT_EQ(set.instants[0].name, "fault.node_death");
  EXPECT_EQ(set.instants[0].node, 1u);
  EXPECT_EQ(set.instants[0].cycles, 77u);

  // A different app's files are not picked up.
  EXPECT_TRUE(obs::load_span_dir(dir, "otherapp").nodes.empty());
  fs::remove_all(dir);
}

TEST(SpanIo, SelfProfileAggregatesByName) {
  const obs::FlightRecorder fr = make_recorder();
  const auto rows = obs::self_profile(fr.all_spans());
  ASSERT_EQ(rows.size(), 4u);
  // Sorted by inclusive cycles descending: region.EP (900) first.
  EXPECT_EQ(rows[0].name, "region.EP");
  EXPECT_EQ(rows[0].calls, 1u);
  EXPECT_EQ(rows[0].cycles, 900u);
  EXPECT_EQ(rows[1].name, "coll.allreduce");
  EXPECT_EQ(rows[1].cycles, 150u);
}

TEST(SpanIo, MalformedFilesThrow) {
  const fs::path dir = fs::temp_directory_path() / "bgpc_obs_badspan";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const fs::path p = dir / "bad.node0000.bgps";
  std::ofstream(p) << "not a span file\n";
  EXPECT_THROW((void)obs::load_span_file(p), std::runtime_error);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace bgp
