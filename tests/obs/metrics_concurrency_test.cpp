// Concurrent text exposition: hammer a MetricsRegistry from N threads —
// bumping existing series and registering brand-new ones — while another
// thread renders and re-parses the Prometheus exposition in a loop. Every
// render must parse cleanly and counters must be monotone across
// consecutive scrapes (the live daemon /metrics contract).
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/promtext.hpp"

namespace bgp::obs {
namespace {

TEST(MetricsConcurrency, RenderStaysParseableAndMonotoneUnderChurn) {
  MetricsRegistry reg;
  Counter& base = reg.counter("churn_ops_total", "ops");
  Gauge& g = reg.gauge("churn_level", "level");
  Histogram& h =
      reg.histogram("churn_latency", "latency", {1.0, 10.0, 100.0});

  std::atomic<bool> stop{false};
  constexpr int kWriters = 4;
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&, t] {
      // Each writer keeps registering fresh labeled series (the racy part:
      // family/instance tables grow underneath the renderer) while bumping
      // the shared ones.
      for (u64 i = 0; !stop.load(std::memory_order_relaxed); ++i) {
        base.add();
        g.set(double(i));
        h.observe(double(i % 200));
        Counter& labeled = reg.counter(
            "churn_labeled_total", "per-writer series",
            {{"writer", std::to_string(t)},
             {"shard", std::to_string(i % 16)}});
        labeled.add();
        // Histogram families churn too: fresh labeled series registered
        // mid-render, observations racing the cumulative bucket walk.
        Histogram& hl = reg.histogram(
            "churn_hist_seconds", "per-writer histogram",
            {0.001, 0.01, 0.1, 1.0},
            {{"writer", std::to_string(t)},
             {"shard", std::to_string(i % 8)}});
        hl.observe(double(i % 100) / 50.0);
      }
    });
  }

  std::map<std::string, double> prev;
  u64 scrapes = 0;
  while (scrapes < 300) {
    const std::string text = render_prometheus(reg);
    std::map<std::string, double> now;
    ASSERT_NO_THROW(now = parse_prometheus(text)) << text;
    // Every histogram in every scrape is internally consistent: buckets
    // cumulative-monotone in bound order, +Inf bucket == _count.
    for (const auto& [key, h] : parse_prometheus_histograms(text)) {
      u64 prev_cum = 0;
      for (const auto& [bound, cum] : h.buckets) {
        ASSERT_GE(cum, prev_cum)
            << key << " bucket le=" << bound << " went backwards in-scrape";
        prev_cum = cum;
      }
      ASSERT_EQ(prev_cum, h.count)
          << key << " +Inf bucket disagrees with _count";
    }
    // Counters never go backwards between scrapes; series never vanish.
    for (const auto& [key, value] : prev) {
      if (key.find("_total") == std::string::npos &&
          key.find("_count") == std::string::npos &&
          key.find("_bucket") == std::string::npos) {
        continue;  // gauges move freely
      }
      const auto it = now.find(key);
      ASSERT_NE(it, now.end()) << key << " vanished from the exposition";
      EXPECT_GE(it->second, value) << key << " went backwards";
    }
    prev = std::move(now);
    ++scrapes;
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : writers) t.join();

  // Quiescent sanity: the final render accounts for every write.
  const auto final_scrape = parse_prometheus(render_prometheus(reg));
  EXPECT_EQ(final_scrape.at("churn_ops_total"), double(base.value()));
  double labeled_sum = 0;
  for (const auto& [key, value] : final_scrape) {
    if (key.rfind("churn_labeled_total{", 0) == 0) labeled_sum += value;
  }
  EXPECT_EQ(labeled_sum, double(base.value()));
  EXPECT_EQ(final_scrape.at("churn_latency_count"), double(h.count()));
}

TEST(MetricsConcurrency, NumSeriesIsSafeDuringRegistration) {
  MetricsRegistry reg;
  std::atomic<bool> stop{false};
  std::thread registrar([&] {
    for (u64 i = 0; !stop.load(std::memory_order_relaxed); ++i) {
      reg.counter("series_total", "s", {{"i", std::to_string(i % 64)}});
    }
  });
  std::size_t last = 0;
  for (int i = 0; i < 5000; ++i) {
    const std::size_t n = reg.num_series();
    EXPECT_GE(n, last);  // series are never dropped
    last = n;
  }
  stop.store(true, std::memory_order_relaxed);
  registrar.join();
  EXPECT_LE(reg.num_series(), 64u);
}

}  // namespace
}  // namespace bgp::obs
