// Host-side observability primitives: the structured JSONL event log
// (leveled, rotating, one write(2) per line) and the mmap-backed flight
// ring (crash-surviving, CRC-framed, salvageable). These are the pieces
// bgpcd composes into its self-characterization surface, tested here
// without a daemon.
#include <fcntl.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/strfmt.hpp"
#include "obs/flight_ring.hpp"
#include "obs/host_clock.hpp"
#include "obs/host_log.hpp"

namespace bgp::obs {
namespace {

namespace fs = std::filesystem;

fs::path test_dir(const char* name) {
  const fs::path dir =
      fs::temp_directory_path() / (std::string("bgpc_hostobs_") + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::vector<std::string> file_lines(const fs::path& p) {
  std::ifstream in(p);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

// --- host clock ------------------------------------------------------------

TEST(HostClock, MonotoneAndBoundsAreSane) {
  const i64 a = host_now_ns();
  const i64 b = host_now_ns();
  EXPECT_GE(b, a);

  const std::vector<double>& bounds = host_latency_bounds();
  ASSERT_GE(bounds.size(), 8u);
  EXPECT_DOUBLE_EQ(bounds.front(), 1e-6);
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_GT(bounds[i], bounds[i - 1]) << "bounds must ascend";
  }
  EXPECT_LT(bounds.back(), 3.0);
}

TEST(HostClock, TimerObservesElapsedSeconds) {
  Histogram h(host_latency_bounds());
  HostTimer t;
  const double s = t.observe(&h);
  EXPECT_GE(s, 0.0);
  EXPECT_LT(s, 1.0);  // arming a timer does not take a second
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.sum(), s);
  // Null histogram: still returns the elapsed time, observes nowhere.
  HostTimer t2;
  EXPECT_GE(t2.observe(nullptr), 0.0);
}

// --- event levels + rendering ---------------------------------------------

TEST(HostLog, LevelNamesRoundTrip) {
  for (const EventLevel lv : {EventLevel::kDebug, EventLevel::kInfo,
                              EventLevel::kWarn, EventLevel::kError}) {
    const auto parsed = parse_event_level(to_string(lv));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, lv);
  }
  EXPECT_FALSE(parse_event_level("verbose").has_value());
  EXPECT_FALSE(parse_event_level("INFO").has_value());  // case-sensitive
  EXPECT_FALSE(parse_event_level("").has_value());
}

TEST(HostLog, JsonEscapeCoversQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string("a\x01z")), "a\\u0001z");
}

TEST(HostLog, EventRendersFixedSchemaInFieldOrder) {
  const std::string line = HostEvent("session_admit")
                               .str("req", "r000042")
                               .str("session", "s0001")
                               .num("nodes", u64{16})
                               .num("wait_s", 0.25)
                               .boolean("verified", true)
                               .render(EventLevel::kInfo, 1234);
  EXPECT_EQ(line,
            "{\"ts_ns\":1234,\"level\":\"info\",\"event\":\"session_admit\","
            "\"req\":\"r000042\",\"session\":\"s0001\",\"nodes\":16,"
            "\"wait_s\":0.25,\"verified\":true}");
}

// --- JSONL file sink -------------------------------------------------------

TEST(HostLog, WritesOneLinePerEventAndFiltersByLevel) {
  const fs::path dir = test_dir("log_levels");
  HostLogConfig cfg;
  cfg.path = dir / "events.jsonl";
  cfg.file_level = EventLevel::kInfo;
  HostEventLog log(cfg);
  EXPECT_FALSE(log.enabled(EventLevel::kDebug));
  EXPECT_TRUE(log.enabled(EventLevel::kInfo));

  log.write_line(EventLevel::kDebug, "{\"event\":\"dropped\"}");
  log.write_line(EventLevel::kInfo, "{\"event\":\"kept\"}");
  log.write_line(EventLevel::kError, "{\"event\":\"kept_too\"}");

  const auto lines = file_lines(cfg.path);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "{\"event\":\"kept\"}");
  EXPECT_EQ(lines[1], "{\"event\":\"kept_too\"}");
  EXPECT_EQ(log.lines_written(), 2u);
  fs::remove_all(dir);
}

TEST(HostLog, RotatesBySizeAndKeepsBoundedGenerations) {
  const fs::path dir = test_dir("log_rotate");
  HostLogConfig cfg;
  cfg.path = dir / "events.jsonl";
  cfg.rotate_bytes = 128;
  cfg.rotate_keep = 2;
  HostEventLog log(cfg);

  // ~60 bytes per line: every 2-3 lines forces a rotation.
  for (int i = 0; i < 20; ++i) {
    log.write_line(EventLevel::kInfo,
                   strfmt("{\"event\":\"fill\",\"n\":%d,\"pad\":\"%032d\"}",
                          i, i));
  }
  EXPECT_GT(log.rotations(), 0u);
  EXPECT_TRUE(fs::exists(cfg.path));
  EXPECT_TRUE(fs::exists(dir / "events.jsonl.1"));
  EXPECT_FALSE(fs::exists(dir / "events.jsonl.3"));  // keep=2 bounds it

  // Every surviving line is intact (rotation never tears a line), and
  // together the generations hold the newest writes.
  std::vector<std::string> all;
  for (const char* name :
       {"events.jsonl.2", "events.jsonl.1", "events.jsonl"}) {
    for (const std::string& l : file_lines(dir / name)) {
      EXPECT_EQ(l.front(), '{');
      EXPECT_EQ(l.back(), '}');
      all.push_back(l);
    }
  }
  ASSERT_FALSE(all.empty());
  EXPECT_NE(all.back().find("\"n\":19"), std::string::npos);
  fs::remove_all(dir);
}

// --- flight ring -----------------------------------------------------------

TEST(FlightRing, AppendAndReadBackInOrder) {
  const fs::path dir = test_dir("ring_basic");
  FlightRingConfig cfg;
  cfg.path = dir / "flight.ring";
  cfg.num_slots = 8;
  cfg.slot_bytes = 64;
  FlightRing ring(cfg);
  EXPECT_FALSE(ring.recovered_dirty());

  for (int i = 0; i < 5; ++i) ring.append(strfmt("{\"n\":%d}", i));
  const auto recs = ring.records();
  ASSERT_EQ(recs.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(recs[size_t(i)], strfmt("{\"n\":%d}", i));
  fs::remove_all(dir);
}

TEST(FlightRing, WrapsKeepingTheNewestRecords) {
  const fs::path dir = test_dir("ring_wrap");
  FlightRingConfig cfg;
  cfg.path = dir / "flight.ring";
  cfg.num_slots = 8;
  cfg.slot_bytes = 64;
  FlightRing ring(cfg);
  for (int i = 0; i < 20; ++i) ring.append(strfmt("{\"n\":%d}", i));
  const auto recs = ring.records();
  ASSERT_EQ(recs.size(), 8u);
  EXPECT_EQ(recs.front(), "{\"n\":12}");
  EXPECT_EQ(recs.back(), "{\"n\":19}");
  fs::remove_all(dir);
}

TEST(FlightRing, TruncatesOversizedRecordsToSlotCapacity) {
  const fs::path dir = test_dir("ring_trunc");
  FlightRingConfig cfg;
  cfg.path = dir / "flight.ring";
  cfg.num_slots = 8;
  cfg.slot_bytes = 64;  // 48 bytes of text capacity
  FlightRing ring(cfg);
  ring.append(std::string(300, 'x'));
  const auto recs = ring.records();
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0], std::string(48, 'x'));
  fs::remove_all(dir);
}

/// Snapshot the live ring file (the page cache view — exactly what a
/// SIGKILL would leave behind) without running the clean-close destructor.
fs::path dirty_copy(const FlightRing& ring, const fs::path& to) {
  fs::copy_file(ring.path(), to, fs::copy_options::overwrite_existing);
  return to;
}

TEST(FlightRing, DirtyRingIsSalvagedInSequenceOrder) {
  const fs::path dir = test_dir("ring_salvage");
  FlightRingConfig cfg;
  cfg.path = dir / "flight.ring";
  cfg.num_slots = 8;
  cfg.slot_bytes = 64;
  auto ring = std::make_unique<FlightRing>(cfg);
  for (int i = 0; i < 11; ++i) ring->append(strfmt("{\"n\":%d}", i));
  const fs::path crashed = dirty_copy(*ring, dir / "crashed.ring");

  // The standalone salvager sees the dirty copy's surviving tail.
  const auto salvaged = salvage_flight_ring(crashed);
  ASSERT_EQ(salvaged.size(), 8u);
  EXPECT_EQ(salvaged.front(), "{\"n\":3}");
  EXPECT_EQ(salvaged.back(), "{\"n\":10}");

  // Re-opening the dirty file as a ring salvages then resets.
  FlightRingConfig reopen = cfg;
  reopen.path = crashed;
  FlightRing successor(reopen);
  EXPECT_TRUE(successor.recovered_dirty());
  EXPECT_EQ(successor.salvaged(), salvaged);
  EXPECT_TRUE(successor.records().empty());  // fresh ring for this life

  // A cleanly closed ring leaves nothing to explain.
  ring.reset();
  EXPECT_TRUE(salvage_flight_ring(cfg.path).empty());
  FlightRing clean_reopen(cfg);
  EXPECT_FALSE(clean_reopen.recovered_dirty());
  fs::remove_all(dir);
}

TEST(FlightRing, SalvageRejectsForeignAndMissingFiles) {
  const fs::path dir = test_dir("ring_foreign");
  EXPECT_TRUE(salvage_flight_ring(dir / "nope.ring").empty());
  std::ofstream(dir / "foreign.ring") << "this is not a flight ring at all";
  EXPECT_TRUE(salvage_flight_ring(dir / "foreign.ring").empty());
  // And the ring constructor recreates over it rather than failing.
  FlightRingConfig cfg;
  cfg.path = dir / "foreign.ring";
  cfg.num_slots = 8;
  cfg.slot_bytes = 64;
  FlightRing ring(cfg);
  EXPECT_FALSE(ring.recovered_dirty());
  ring.append("{\"ok\":true}");
  EXPECT_EQ(ring.records().size(), 1u);
  fs::remove_all(dir);
}

TEST(FlightRing, SignalSafeDumpWritesEveryRecordAsLines) {
  const fs::path dir = test_dir("ring_dump");
  FlightRingConfig cfg;
  cfg.path = dir / "flight.ring";
  cfg.num_slots = 8;
  cfg.slot_bytes = 64;
  FlightRing ring(cfg);
  for (int i = 0; i < 12; ++i) ring.append(strfmt("{\"n\":%d}", i));

  const fs::path out = dir / "flight.jsonl";
  const int fd = ::open(out.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  ASSERT_GE(fd, 0);
  ring.dump_signal_safe(fd);
  ::close(fd);

  const auto lines = file_lines(out);
  ASSERT_EQ(lines.size(), 8u);
  EXPECT_EQ(lines.front(), "{\"n\":4}");
  EXPECT_EQ(lines.back(), "{\"n\":11}");
  fs::remove_all(dir);
}

TEST(FlightRing, ConcurrentAppendersNeverCorruptTheRing) {
  const fs::path dir = test_dir("ring_mt");
  FlightRingConfig cfg;
  cfg.path = dir / "flight.ring";
  cfg.num_slots = 64;
  cfg.slot_bytes = 64;
  FlightRing ring(cfg);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&ring, t] {
      for (int i = 0; i < 500; ++i) {
        ring.append(strfmt("{\"t\":%d,\"i\":%d}", t, i));
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto recs = ring.records();
  EXPECT_EQ(recs.size(), 64u);
  for (const std::string& r : recs) {
    EXPECT_EQ(r.rfind("{\"t\":", 0), 0u) << r;
    EXPECT_EQ(r.back(), '}') << r;
  }
  fs::remove_all(dir);
}

}  // namespace
}  // namespace bgp::obs
