#include "obs/span_recorder.hpp"

#include <gtest/gtest.h>

#include <chrono>

namespace bgp {
namespace {

using obs::SpanCat;
using obs::SpanRecorder;

SpanRecorder make(std::size_t capacity = 16) {
  return SpanRecorder(3, 1, capacity, std::chrono::steady_clock::now());
}

TEST(SpanRecorder, RecordsBeginEndPairsWithDepth) {
  SpanRecorder r = make();
  r.begin("outer", SpanCat::kRegion, 100);
  r.begin("inner", SpanCat::kCollective, 150);
  EXPECT_EQ(r.open_depth(), 2u);
  EXPECT_EQ(r.end(180), 30u);  // inner
  EXPECT_EQ(r.end(200), 100u);  // outer
  EXPECT_EQ(r.open_depth(), 0u);

  ASSERT_EQ(r.spans().size(), 2u);
  // Completion order: inner closes first.
  const obs::SpanRec& inner = r.spans()[0];
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(inner.cat, SpanCat::kCollective);
  EXPECT_EQ(inner.depth, 1u);
  EXPECT_EQ(inner.begin_cycles, 150u);
  EXPECT_EQ(inner.end_cycles, 180u);
  EXPECT_EQ(inner.node, 3u);
  EXPECT_EQ(inner.core, 1u);
  const obs::SpanRec& outer = r.spans()[1];
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(outer.depth, 0u);
  EXPECT_LE(outer.begin_host_ns, outer.end_host_ns);
}

TEST(SpanRecorder, UnmatchedEndIsCountedNotRecorded) {
  SpanRecorder r = make();
  EXPECT_EQ(r.end(10), 0u);
  EXPECT_EQ(r.spans().size(), 0u);
  EXPECT_EQ(r.unmatched_ends(), 1u);
}

TEST(SpanRecorder, RingEvictsOldestAndAccountsDrops) {
  SpanRecorder r = make(4);
  for (int i = 0; i < 10; ++i) {
    r.begin("s", SpanCat::kUpc, 10 * i);
    r.end(10 * i + 5);
  }
  EXPECT_EQ(r.spans().size(), 4u);
  EXPECT_EQ(r.spans_total(), 10u);
  EXPECT_EQ(r.spans_dropped(), 6u);
  // The survivors are the newest four.
  EXPECT_EQ(r.spans().front().begin_cycles, 60u);
  EXPECT_EQ(r.spans().back().begin_cycles, 90u);
}

TEST(SpanRecorder, InstantsAreBoundedToo) {
  SpanRecorder r = make(2);
  for (int i = 0; i < 5; ++i) {
    r.instant("fault.node_death", SpanCat::kFault, 7 * i);
  }
  EXPECT_EQ(r.instants().size(), 2u);
  EXPECT_EQ(r.instants_total(), 5u);
  EXPECT_EQ(r.instants_dropped(), 3u);
  EXPECT_EQ(r.instants().back().cycles, 28u);
  EXPECT_EQ(r.instants().back().cat, SpanCat::kFault);
}

TEST(SpanCatNames, RoundTrip) {
  for (const obs::SpanCat cat :
       {SpanCat::kUpc, SpanCat::kCollective, SpanCat::kFt, SpanCat::kDump,
        SpanCat::kTrace, SpanCat::kRegion, SpanCat::kFault}) {
    obs::SpanCat back;
    ASSERT_TRUE(obs::parse_span_cat(obs::to_string(cat), back));
    EXPECT_EQ(back, cat);
  }
  obs::SpanCat out;
  EXPECT_FALSE(obs::parse_span_cat("no-such-cat", out));
}

}  // namespace
}  // namespace bgp
