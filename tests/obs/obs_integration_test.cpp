// End-to-end flight-recorder acceptance (ISSUE 4): a fixed seed kills 2 of
// 16 nodes mid-run with ULFM-style recovery and the flight recorder on.
// The Chrome trace must be valid JSON, well-nested per (pid, tid), and
// carry collective + recovery + dump spans and the death instants; the
// Prometheus export must expose at least 10 named metric families; the
// survivor span files alone must reproduce the paper's 196-cycle
// initialize+start+stop figure; and the recorder must be free when off —
// dumps byte-identical to an obs-off run when per_span_overhead is 0.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "core/session.hpp"
#include "fault/fault.hpp"
#include "ft/ftcomm.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/promtext.hpp"
#include "obs/span_io.hpp"
#include "runtime/machine.hpp"
#include "runtime/rankctx.hpp"
#include "json_check.hpp"

namespace bgp {
namespace {

namespace fs = std::filesystem;

constexpr u64 kSeed = 20260806;
constexpr unsigned kNodes = 16;
constexpr unsigned kDeaths = 2;
constexpr unsigned kRanks = kNodes;  // SMP1: one rank per node

isa::LoopDesc stencil(u64 trip) {
  isa::LoopDesc d;
  d.name = "stencil";
  d.trip = trip;
  d.body.fp_at(isa::FpOp::kFma) = 4;
  d.body.fp_at(isa::FpOp::kAddSub) = 2;
  d.body.int_at(isa::IntOp::kAlu) = 2;
  d.body.ls_at(isa::LsOp::kLoadDouble) = 3;
  d.body.ls_at(isa::LsOp::kStoreDouble) = 1;
  return d;
}

struct ObsOutcome {
  std::vector<unsigned> dead;
  std::string chrome_json;
  std::string prom_text;
  std::size_t span_files = 0;
  obs::SpanSet spans;
  std::map<std::string, std::string> dump_bytes;  ///< .bgpc name -> bytes
};

ObsOutcome run_ft(const fs::path& dir, bool obs_on,
                  cycles_t per_span_overhead = 4) {
  fault::FaultSpec spec;
  spec.node_deaths = kDeaths;
  spec.death_window = 10'000;  // well inside the run: all deaths fire
  fault::FaultInjector inj(fault::FaultPlan::random(kSeed, kNodes, spec));

  rt::MachineConfig mc;
  mc.num_nodes = kNodes;
  mc.mode = sys::OpMode::kSmp1;
  rt::Machine m(mc);
  m.set_fault_injector(&inj);
  ft::FtParams ftp;
  ftp.enabled = true;
  m.set_ft_params(ftp);

  pc::Options o;
  o.app_name = "obsrun";
  o.dump_dir = dir;
  o.fault = &inj;
  o.obs.enabled = obs_on;
  o.obs.per_span_overhead = per_span_overhead;
  pc::Session s(m, o);
  s.link_with_mpi();
  m.run([&](rt::RankCtx& ctx) {
    ft::run_guarded(ctx, [&](rt::RankCtx& c) {
      c.mpi_init();
      for (int i = 0; i < 8; ++i) {
        c.loop(stencil(20'000), {});
        (void)c.allreduce_sum(1.0);
      }
    });
    ft::finalize_guarded(ctx);
  });

  ObsOutcome out;
  out.dead = m.dead_nodes();
  out.span_files = s.span_files().size();
  if (obs::FlightRecorder* fr = s.flight_recorder()) {
    fr->update_self_metrics();
    out.chrome_json =
        obs::render_chrome_trace(fr->all_spans(), fr->all_instants(), "obsrun");
    out.prom_text = obs::render_prometheus(fr->metrics());
    out.spans = obs::load_span_dir(dir, "obsrun");
  }
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() != ".bgpc") continue;
    std::ifstream in(entry.path(), std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    out.dump_bytes[entry.path().filename().string()] = std::move(bytes);
  }
  return out;
}

class ObsIntegration : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test: ctest -j runs fixture tests concurrently.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::temp_directory_path() /
           (std::string("bgpc_obs_itg_") + info->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

TEST_F(ObsIntegration, FtRunProducesAValidWellNestedChromeTrace) {
  const ObsOutcome out = run_ft(dir_, /*obs_on=*/true);
  ASSERT_EQ(out.dead.size(), kDeaths);

  ASSERT_TRUE(testjson::valid_json(out.chrome_json));
  const auto events = testjson::extract_x_events(out.chrome_json);
  ASSERT_FALSE(events.empty());
  EXPECT_TRUE(testjson::well_nested(events));

  // The trace covers the whole stack: collectives, FT recovery phases,
  // dump writes — plus the injected deaths as instants.
  unsigned coll = 0, ftspans = 0, dumps = 0, upc = 0;
  for (const auto& e : events) {
    coll += e.name.rfind("coll.", 0) == 0;
    ftspans += e.name.rfind("ft.", 0) == 0;
    dumps += e.name == "dump.write";
    upc += e.name.rfind("upc.", 0) == 0;
  }
  EXPECT_GT(coll, 0u);
  EXPECT_GT(ftspans, 0u);
  EXPECT_EQ(dumps, kNodes - kDeaths);  // one per survivor node
  EXPECT_GT(upc, 0u);
  EXPECT_NE(out.chrome_json.find("\"name\":\"fault.node_death\""),
            std::string::npos);
  EXPECT_NE(out.chrome_json.find("\"name\":\"ft.death_detected\""),
            std::string::npos);

  // CI artifact hand-off: when the workflow exports an artifact directory,
  // leave the rendered trace + metrics there for upload.
  if (const char* artifact_dir = std::getenv("BGPC_OBS_ARTIFACT_DIR")) {
    fs::create_directories(artifact_dir);
    std::ofstream(fs::path(artifact_dir) / "obsrun_chrome_trace.json")
        << out.chrome_json;
    std::ofstream(fs::path(artifact_dir) / "obsrun_metrics.prom")
        << out.prom_text;
  }
}

TEST_F(ObsIntegration, MetricsExposeTheWholeStackInValidPromFormat) {
  const ObsOutcome out = run_ft(dir_, /*obs_on=*/true);

  // At least 10 named families, all parseable.
  std::size_t families = 0;
  for (std::size_t p = out.prom_text.find("# TYPE");
       p != std::string::npos; p = out.prom_text.find("# TYPE", p + 1)) {
    ++families;
  }
  EXPECT_GE(families, 10u);
  const std::map<std::string, double> m =
      obs::parse_prometheus(out.prom_text);

  // Every rank that lived past startup initialized (a death can land
  // before the library call); only survivors finalized.
  using obs::prometheus_key;
  EXPECT_GE(m.at(prometheus_key("bgpc_upc_calls_total",
                                {{"call", "initialize"}})),
            static_cast<double>(kRanks - kDeaths));
  EXPECT_LE(m.at(prometheus_key("bgpc_upc_calls_total",
                                {{"call", "initialize"}})),
            static_cast<double>(kRanks));
  EXPECT_EQ(m.at(prometheus_key("bgpc_upc_calls_total",
                                {{"call", "finalize"}})),
            static_cast<double>(kRanks - kDeaths));
  EXPECT_EQ(m.at("bgpc_rank_deaths_total"), static_cast<double>(kDeaths));
  EXPECT_EQ(m.at("bgpc_deaths_detected_total"),
            static_cast<double>(kDeaths));
  EXPECT_GE(m.at(prometheus_key("bgpc_ft_recovery_phases_total",
                                {{"phase", "shrink"}})),
            1.0);
  EXPECT_EQ(m.at("bgpc_dump_writes_total"),
            static_cast<double>(kNodes - kDeaths));
  EXPECT_GT(m.at("bgpc_dump_bytes_total"), 0.0);
  EXPECT_GT(m.at("bgpc_coll_operations_total"), 0.0);
  EXPECT_GT(m.at("bgpc_obs_spans_recorded"), 0.0);
  EXPECT_EQ(m.at("bgpc_obs_spans_dropped"), 0.0);
  // The collective latency histogram saw every allreduce.
  EXPECT_GT(m.at(prometheus_key("bgpc_coll_latency_cycles_count",
                                {{"kind", "allreduce"}})),
            0.0);
}

TEST_F(ObsIntegration, SurvivorSpanFilesReproduceThe196CycleFigure) {
  const ObsOutcome out = run_ft(dir_, /*obs_on=*/true);

  // One .bgps per survivor node, none for the dead.
  EXPECT_EQ(out.span_files, kNodes - kDeaths);
  EXPECT_EQ(out.spans.nodes.size(), kNodes - kDeaths);
  EXPECT_EQ(out.spans.dropped, 0u);

  // The paper's §IV library overhead figure, from span data alone: mean
  // initialize+start+stop duration per call sums to exactly 196 cycles
  // (120 + 40 + 36), independent of the obs billing (which lands after
  // each span closes).
  double per_call = 0.0;
  for (const obs::ProfileRow& r : obs::self_profile(out.spans.spans)) {
    if (r.name == "upc.initialize" || r.name == "upc.start" ||
        r.name == "upc.stop") {
      ASSERT_GT(r.calls, 0u);
      per_call += static_cast<double>(r.cycles) / static_cast<double>(r.calls);
    }
  }
  EXPECT_DOUBLE_EQ(per_call, 196.0);
}

TEST_F(ObsIntegration, ZeroOverheadObsLeavesDumpsByteIdenticalToObsOff) {
  const fs::path other = dir_.parent_path() / (dir_.filename().string() + "2");
  fs::remove_all(other);
  fs::create_directories(other);

  const ObsOutcome off = run_ft(dir_, /*obs_on=*/false);
  const ObsOutcome zero = run_ft(other, /*obs_on=*/true,
                                 /*per_span_overhead=*/0);
  fs::remove_all(other);

  // Off is really off: no recorder, no exports, no span files.
  EXPECT_TRUE(off.chrome_json.empty());
  EXPECT_EQ(off.span_files, 0u);
  // Recording with zero billed overhead perturbs nothing the counters
  // see: every survivor dump is the same bytes.
  EXPECT_EQ(off.dead, zero.dead);
  EXPECT_EQ(off.dump_bytes, zero.dump_bytes);
}

TEST_F(ObsIntegration, SameSeedSameTraceAndMetrics) {
  const fs::path other = dir_.parent_path() / (dir_.filename().string() + "3");
  fs::remove_all(other);
  fs::create_directories(other);

  const ObsOutcome a = run_ft(dir_, /*obs_on=*/true);
  const ObsOutcome b = run_ft(other, /*obs_on=*/true);
  fs::remove_all(other);

  // The Chrome trace deliberately carries no host times and the metric
  // values are all simulation-derived: bit-deterministic for a seed.
  EXPECT_EQ(a.chrome_json, b.chrome_json);
  EXPECT_EQ(a.prom_text, b.prom_text);
}

}  // namespace
}  // namespace bgp
