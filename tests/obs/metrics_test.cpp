#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>

#include "obs/promtext.hpp"

namespace bgp {
namespace {

using obs::LabelSet;
using obs::MetricsRegistry;

TEST(MetricsRegistry, FetchOrCreateReturnsStableHandles) {
  MetricsRegistry reg;
  obs::Counter& a = reg.counter("bgpc_widgets_total", "widgets");
  obs::Counter& b = reg.counter("bgpc_widgets_total", "widgets");
  EXPECT_EQ(&a, &b);
  a.add(2);
  b.add(3);
  EXPECT_EQ(a.value(), 5u);

  // Distinct label sets are distinct series under one family.
  obs::Counter& red =
      reg.counter("bgpc_labeled_total", "labeled", {{"color", "red"}});
  obs::Counter& blue =
      reg.counter("bgpc_labeled_total", "labeled", {{"color", "blue"}});
  EXPECT_NE(&red, &blue);
  EXPECT_EQ(reg.num_series(), 3u);
  EXPECT_EQ(reg.families().size(), 2u);
}

TEST(MetricsRegistry, TypeMismatchAndBadNamesThrow) {
  MetricsRegistry reg;
  reg.counter("bgpc_thing_total", "thing");
  EXPECT_THROW(reg.gauge("bgpc_thing_total", "thing"), std::logic_error);
  EXPECT_THROW(reg.histogram("bgpc_thing_total", "thing", {1.0}),
               std::logic_error);
  EXPECT_THROW(reg.counter("0bad", "bad name"), std::invalid_argument);
  EXPECT_THROW(reg.counter("has space", "bad name"), std::invalid_argument);
  EXPECT_THROW(reg.counter("bgpc_ok_total", "bad label", {{"0bad", "v"}}),
               std::invalid_argument);
}

TEST(MetricNames, Grammar) {
  EXPECT_TRUE(obs::valid_metric_name("bgpc_upc_calls_total"));
  EXPECT_TRUE(obs::valid_metric_name("ns:sub:metric"));  // colons allowed
  EXPECT_TRUE(obs::valid_metric_name("_leading_underscore"));
  EXPECT_FALSE(obs::valid_metric_name(""));
  EXPECT_FALSE(obs::valid_metric_name("9starts_with_digit"));
  EXPECT_FALSE(obs::valid_metric_name("has-dash"));
  EXPECT_TRUE(obs::valid_label_name("call"));
  EXPECT_FALSE(obs::valid_label_name("with:colon"));  // labels: no colons
}

TEST(Histogram, BucketsAreCumulativeOnlyAtRenderTime) {
  obs::Histogram h({10.0, 100.0, 1000.0});
  h.observe(5);     // bucket 0
  h.observe(10);    // le=10 -> still bucket 0
  h.observe(50);    // bucket 1
  h.observe(5000);  // +Inf bucket
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 0u);
  EXPECT_EQ(h.bucket(3), 1u);  // +Inf
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 5065.0);
}

TEST(Promtext, RoundTripsEveryValueExactly) {
  MetricsRegistry reg;
  reg.counter("bgpc_runs_total", "runs").add(7);
  reg.counter("bgpc_calls_total", "calls", {{"call", "start"}}).add(41);
  reg.counter("bgpc_calls_total", "calls", {{"call", "stop"}}).add(40);
  // A value that needs all 17 significant digits to survive.
  reg.gauge("bgpc_ratio", "ratio").set(0.1 + 0.2);
  reg.gauge("bgpc_negative", "negative").set(-1234.5);
  obs::Histogram& h =
      reg.histogram("bgpc_lat_cycles", "latency", {100.0, 1000.0});
  h.observe(50);
  h.observe(500);
  h.observe(5000);

  const std::string text = obs::render_prometheus(reg);
  const std::map<std::string, double> parsed = obs::parse_prometheus(text);

  EXPECT_EQ(parsed.at("bgpc_runs_total"), 7.0);
  EXPECT_EQ(parsed.at(obs::prometheus_key("bgpc_calls_total",
                                          {{"call", "start"}})),
            41.0);
  EXPECT_EQ(parsed.at(obs::prometheus_key("bgpc_calls_total",
                                          {{"call", "stop"}})),
            40.0);
  EXPECT_EQ(parsed.at("bgpc_ratio"), 0.1 + 0.2);
  EXPECT_EQ(parsed.at("bgpc_negative"), -1234.5);
  // Histogram series render cumulative.
  EXPECT_EQ(parsed.at("bgpc_lat_cycles_bucket{le=\"100\"}"), 1.0);
  EXPECT_EQ(parsed.at("bgpc_lat_cycles_bucket{le=\"1000\"}"), 2.0);
  EXPECT_EQ(parsed.at("bgpc_lat_cycles_bucket{le=\"+Inf\"}"), 3.0);
  EXPECT_EQ(parsed.at("bgpc_lat_cycles_count"), 3.0);
  EXPECT_EQ(parsed.at("bgpc_lat_cycles_sum"), 5550.0);

  // The exposition carries HELP/TYPE headers for every family.
  EXPECT_NE(text.find("# HELP bgpc_runs_total runs"), std::string::npos);
  EXPECT_NE(text.find("# TYPE bgpc_runs_total counter"), std::string::npos);
  EXPECT_NE(text.find("# TYPE bgpc_ratio gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE bgpc_lat_cycles histogram"), std::string::npos);
}

TEST(Promtext, EscapesLabelValues) {
  MetricsRegistry reg;
  reg.counter("bgpc_esc_total", "escapes",
              {{"path", "a\"b\\c\nd"}})
      .add(1);
  const std::string text = obs::render_prometheus(reg);
  EXPECT_NE(text.find("path=\"a\\\"b\\\\c\\nd\""), std::string::npos) << text;
  // And the parser still sees exactly one sample.
  EXPECT_EQ(obs::parse_prometheus(text).size(), 1u);
}

TEST(Promtext, ParserRejectsMalformedSamples) {
  EXPECT_THROW((void)obs::parse_prometheus("bgpc_x not_a_number\n"),
               std::runtime_error);
  // Blank lines and comments are fine.
  const auto parsed = obs::parse_prometheus("\n# a comment\nbgpc_x 4\n");
  EXPECT_EQ(parsed.at("bgpc_x"), 4.0);
}

TEST(Promtext, SampleDecoderInvertsTheRendererExactly) {
  // Label values with every escapable character must survive the
  // render -> parse_prometheus_sample round trip byte-for-byte.
  MetricsRegistry reg;
  const LabelSet labels = {{"path", "a\"b\\c\nd"}, {"phase", "parse"}};
  reg.counter("bgpc_rt_total", "round trip", labels).add(3);
  const std::string text = obs::render_prometheus(reg);

  std::string sample_line;
  std::istringstream in(text);
  for (std::string line; std::getline(in, line);) {
    if (!line.empty() && line[0] != '#') sample_line = line;
  }
  ASSERT_FALSE(sample_line.empty());
  const obs::PromSample s = obs::parse_prometheus_sample(sample_line);
  EXPECT_EQ(s.name, "bgpc_rt_total");
  EXPECT_EQ(s.labels, labels);
  EXPECT_EQ(s.value, 3.0);

  EXPECT_THROW((void)obs::parse_prometheus_sample("name{unclosed=\"v\" 1"),
               std::runtime_error);
  EXPECT_THROW((void)obs::parse_prometheus_sample("justaname"),
               std::runtime_error);
  // +Inf bucket bounds decode to infinity.
  const obs::PromSample inf =
      obs::parse_prometheus_sample("h_bucket{le=\"+Inf\"} 9");
  ASSERT_EQ(inf.labels.size(), 1u);
  EXPECT_TRUE(std::isinf(obs::parse_prometheus_sample(
                             "h 1e999")  // overflowing value -> inf
                             .value));
  EXPECT_EQ(inf.labels[0].second, "+Inf");
}

TEST(Promtext, HistogramExpositionIsCumulativeAndMonotone) {
  MetricsRegistry reg;
  obs::Histogram& h = reg.histogram(
      "bgpc_hist_seconds", "hist", {0.001, 0.01, 0.1, 1.0},
      {{"phase", "dispatch"}});
  h.observe(0.0005);
  h.observe(0.005);
  h.observe(0.005);
  h.observe(0.5);
  h.observe(50.0);  // +Inf bucket

  const std::string text = obs::render_prometheus(reg);
  const auto hists = obs::parse_prometheus_histograms(text);
  const std::string key =
      "bgpc_hist_seconds{phase=\"dispatch\"}";
  ASSERT_TRUE(hists.count(key)) << text;
  const obs::ParsedHistogram& p = hists.at(key);

  // Buckets are cumulative and monotone non-decreasing in bound order,
  // and the +Inf bucket equals _count.
  ASSERT_EQ(p.buckets.size(), 5u);
  u64 prev = 0;
  for (const auto& [bound, cum] : p.buckets) {
    EXPECT_GE(cum, prev) << "bucket le=" << bound << " went backwards";
    prev = cum;
  }
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(p.buckets.at(0.001), 1u);
  EXPECT_EQ(p.buckets.at(0.01), 3u);
  EXPECT_EQ(p.buckets.at(0.1), 3u);
  EXPECT_EQ(p.buckets.at(1.0), 4u);
  EXPECT_EQ(p.buckets.at(inf), 5u);
  EXPECT_EQ(p.count, 5u);
  EXPECT_DOUBLE_EQ(p.sum, 0.0005 + 0.005 + 0.005 + 0.5 + 50.0);
}

TEST(Promtext, HistogramQuantileInterpolatesLinearly) {
  obs::ParsedHistogram h;
  const double inf = std::numeric_limits<double>::infinity();
  // 10 observations uniform in (0, 1]: bucket bounds 0.5 and 1.0 get 5
  // each; quantiles interpolate inside the containing bucket.
  h.buckets[0.5] = 5;
  h.buckets[1.0] = 10;
  h.buckets[inf] = 10;
  h.count = 10;
  h.sum = 5.0;
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(h, 0.5), 0.5);
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(h, 0.25), 0.25);
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(h, 1.0), 1.0);
  // q clamps; rank in the +Inf bucket returns the highest finite bound.
  obs::ParsedHistogram tail;
  tail.buckets[0.5] = 0;
  tail.buckets[inf] = 4;
  tail.count = 4;
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(tail, 0.99), 0.5);
  // Empty histogram: NaN.
  obs::ParsedHistogram empty;
  EXPECT_TRUE(std::isnan(obs::histogram_quantile(empty, 0.5)));
}

}  // namespace
}  // namespace bgp
