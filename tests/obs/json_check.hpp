// Minimal JSON validation for the Chrome-trace exporter tests: a strict
// recursive-descent parser (rejects trailing garbage, bad escapes,
// malformed numbers) plus helpers that pull the "X" events back out of
// the rendered text and check per-(pid,tid) well-nesting using the exact
// begin/end cycle counts each event carries in its args.
#pragma once

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

namespace bgp::testjson {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  /// True when the whole input is exactly one valid JSON value.
  bool valid() {
    pos_ = 0;
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }
  bool string() {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char e = text_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              return false;
            }
          }
        } else if (std::string_view("\"\\/bfnrt").find(e) ==
                   std::string_view::npos) {
          return false;
        }
      }
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size() ||
        !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      return false;
    }
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return false;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return false;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    return pos_ > start;
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') return false;
      ++pos_;
      if (!value()) return false;
      skip_ws();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      if (!value()) return false;
      skip_ws();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }
  bool value() {
    skip_ws();
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

inline bool valid_json(std::string_view text) { return Parser(text).valid(); }

/// One "X" (complete) event as re-extracted from the rendered JSON; bc/ec
/// are the exact cycle stamps the exporter put in the event args.
struct XEvent {
  std::string name;
  long pid = -1;
  long tid = -1;
  unsigned long long bc = 0;
  unsigned long long ec = 0;
};

inline std::string find_string_field(const std::string& line,
                                     const std::string& key) {
  const std::string pat = "\"" + key + "\":\"";
  const auto p = line.find(pat);
  if (p == std::string::npos) return {};
  const auto start = p + pat.size();
  return line.substr(start, line.find('"', start) - start);
}

inline long long find_int_field(const std::string& line,
                                const std::string& key) {
  const std::string pat = "\"" + key + "\":";
  const auto p = line.find(pat);
  if (p == std::string::npos) return -1;
  return std::atoll(line.c_str() + p + pat.size());
}

/// Pull every complete ("X") event out of the one-event-per-line JSON.
inline std::vector<XEvent> extract_x_events(const std::string& json) {
  std::vector<XEvent> out;
  std::size_t pos = 0;
  while (pos < json.size()) {
    auto eol = json.find('\n', pos);
    if (eol == std::string::npos) eol = json.size();
    const std::string line = json.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.find("\"ph\":\"X\"") == std::string::npos) continue;
    XEvent e;
    e.name = find_string_field(line, "name");
    e.pid = static_cast<long>(find_int_field(line, "pid"));
    e.tid = static_cast<long>(find_int_field(line, "tid"));
    e.bc = static_cast<unsigned long long>(find_int_field(line, "bc"));
    e.ec = static_cast<unsigned long long>(find_int_field(line, "ec"));
    out.push_back(std::move(e));
  }
  return out;
}

/// True when every (pid, tid) track's events are properly nested: any two
/// spans on a track either don't overlap or one contains the other.
inline bool well_nested(std::vector<XEvent> events) {
  std::stable_sort(events.begin(), events.end(),
                   [](const XEvent& a, const XEvent& b) {
                     if (a.pid != b.pid) return a.pid < b.pid;
                     if (a.tid != b.tid) return a.tid < b.tid;
                     if (a.bc != b.bc) return a.bc < b.bc;
                     return a.ec > b.ec;  // outermost first
                   });
  std::vector<const XEvent*> stack;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const XEvent& e = events[i];
    if (i > 0 &&
        (events[i - 1].pid != e.pid || events[i - 1].tid != e.tid)) {
      stack.clear();
    }
    while (!stack.empty() && stack.back()->ec <= e.bc) stack.pop_back();
    if (!stack.empty() && e.ec > stack.back()->ec) return false;
    stack.push_back(&e);
  }
  return true;
}

}  // namespace bgp::testjson
