// Microbenchmarks (google-benchmark) of the UPC-unit model's hot paths:
// event signaling, counter reads, MMIO access and the interface library's
// set bookkeeping. These bound the *simulator's* overhead, complementing
// tab_overhead which reports the *modelled* 196-cycle hardware cost.
#include <benchmark/benchmark.h>

#include "core/node_monitor.hpp"
#include "upc/upc_unit.hpp"

namespace {

using namespace bgp;

void BM_UpcSignal(benchmark::State& state) {
  upc::UpcUnit u;
  u.start();
  const auto ev = isa::ev::fpu_op(0, isa::FpOp::kSimdFma);
  for (auto _ : state) {
    u.signal(ev, 3);
  }
  benchmark::DoNotOptimize(u.read(isa::event_counter(ev)));
}
BENCHMARK(BM_UpcSignal);

void BM_UpcSignalWrongMode(benchmark::State& state) {
  upc::UpcUnit u;
  u.start();
  const auto ev = isa::ev::l3(isa::L3Event::kReadMiss);  // mode 1, unit in 0
  for (auto _ : state) {
    u.signal(ev, 1);
  }
}
BENCHMARK(BM_UpcSignalWrongMode);

void BM_UpcMmioRead(benchmark::State& state) {
  upc::UpcUnit u;
  u.write(17, 42);
  u64 acc = 0;
  for (auto _ : state) {
    acc += u.mmio_read64(u.mmio_base() + 8 * 17);
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_UpcMmioRead);

void BM_UpcSnapshot(benchmark::State& state) {
  upc::UpcUnit u;
  for (auto _ : state) {
    auto snap = u.snapshot();
    benchmark::DoNotOptimize(snap);
  }
}
BENCHMARK(BM_UpcSnapshot);

void BM_MonitorStartStop(benchmark::State& state) {
  sys::Node node(0);
  pc::Options opts;
  pc::NodeMonitor mon(node, opts);
  mon.initialize();
  for (auto _ : state) {
    mon.start(0, 0);
    mon.stop(0, 1);
  }
}
BENCHMARK(BM_MonitorStartStop);

void BM_DumpSerialize(benchmark::State& state) {
  pc::NodeDump dump;
  dump.sets.resize(4);
  for (auto _ : state) {
    auto bytes = pc::NodeMonitor::serialize(dump);
    benchmark::DoNotOptimize(bytes);
  }
}
BENCHMARK(BM_DumpSerialize);

}  // namespace

BENCHMARK_MAIN();
