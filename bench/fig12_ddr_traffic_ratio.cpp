// Figure 12: ratio of DDR traffic when using all four processors of a chip
// (Virtual Node Mode) to using a single processor (SMP/1 with L3 reduced to
// 2 MB), at equal total process counts.
#include "bench/mode_compare.hpp"

using namespace bgp;

int main(int argc, char** argv) {
  const auto args = bench::HarnessArgs::parse(argc, argv, /*nodes=*/4,
                                              nas::ProblemClass::kA);
  bench::banner("Figure 12", "DDR traffic ratio, VNM / SMP-1",
                "~3x on average; memory-intensive apps with cache "
                "interference (FT, IS in the paper) approach or exceed 4x");

  const auto pairs = bench::run_mode_comparison(args.nodes, args.cls);
  bench::Table t({"app", "VNM MB", "SMP MB", "ratio", "verified"});
  double ratio_sum = 0;
  unsigned counted = 0;
  bool all_ok = true;
  for (const auto& mp : pairs) {
    const double ratio =
        mp.vnm.record.ddr_traffic_bytes /
        std::max(1.0, mp.smp.record.ddr_traffic_bytes);
    ratio_sum += ratio;
    ++counted;
    all_ok = all_ok && mp.vnm.result.verified && mp.smp.result.verified;
    t.row({std::string(nas::name(mp.bench)),
           bench::fmt_double(mp.vnm.record.ddr_traffic_bytes / 1e6),
           bench::fmt_double(mp.smp.record.ddr_traffic_bytes / 1e6),
           bench::fmt_double(ratio), mp.vnm.result.verified &&
                   mp.smp.result.verified ? "yes" : "NO"});
  }
  t.print();
  const double avg = ratio_sum / counted;
  std::printf("\naverage ratio = %.2f (paper: ~3x; 4 ranks/chip bound the "
              "trivial ratio at 4x, shared-L3 reuse pulls it below)\n", avg);
  const bool shape_ok = avg > 2.0 && avg <= 4.3;
  return (all_ok && shape_ok) ? 0 : 1;
}
