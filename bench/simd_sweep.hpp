// Shared SIMD-vs-optimization sweep used by the Figure 7 (FT) and
// Figure 8 (MG) harnesses.
#pragma once

#include "bench/util.hpp"
#include "postproc/metrics.hpp"

namespace bgp::bench {


inline int run_simd_sweep(const char* figure, nas::Benchmark b, int argc,
                   char** argv) {
  const auto args = HarnessArgs::parse(argc, argv, /*nodes=*/4,
                                                   nas::ProblemClass::kW);
  banner(figure,
                strfmt("%s — SIMD instructions vs compiler optimization",
                       std::string(nas::name(b)).c_str())
                    .c_str(),
                "-qarch440d introduces large SIMD counts (zero without it); "
                "higher levels with 440d SIMDize the most; quad load/stores "
                "appear alongside");

  Table t({"option set", "simd add-sub", "simd mult", "simd fma",
                  "quad l/s fraction", "exec Mcycles", "verified"});
  bool all_ok = true;
  double simd_without_440d = 0, best_simd = 0;
  for (const auto& cfg_opt : opt::OptConfig::paper_set()) {
    nas::RunConfig cfg;
    cfg.bench = b;
    cfg.cls = args.cls;
    cfg.num_nodes = args.nodes;
    cfg.mode = sys::OpMode::kVnm;
    cfg.opt = cfg_opt;
    const auto out = nas::run_benchmark(cfg);
    all_ok = all_ok && out.result.verified;
    const auto& fp = out.record.fp;
    if (!cfg_opt.qarch440d) {
      simd_without_440d += fp.simd_instructions();
    } else {
      best_simd = std::max(best_simd, fp.simd_instructions());
    }
    // Quad fraction needs the load/store profile.
    const post::Aggregate agg(out.dumps, 0);
    const auto ls = post::ls_profile(agg);
    t.row({cfg_opt.name(),
           fmt_double(fp.counts[(int)isa::FpOp::kSimdAddSub], "%.0f"),
           fmt_double(fp.counts[(int)isa::FpOp::kSimdMult], "%.0f"),
           fmt_double(fp.counts[(int)isa::FpOp::kSimdFma], "%.0f"),
           strfmt("%.1f%%", 100.0 * ls.quad_fraction()),
           fmt_double(out.record.exec_cycles / 1e6),
           out.result.verified ? "yes" : "NO"});
  }
  t.print();
  std::printf("\nshape check: SIMD without -qarch440d = %.0f (expect 0), "
              "best SIMD with it = %.0f (expect > 0)\n",
              simd_without_440d, best_simd);
  return (all_ok && simd_without_440d == 0 && best_simd > 0) ? 0 : 1;
}


}  // namespace bgp::bench
