// Figure 7: SIMD instructions incorporated into FT by the different XL
// compiler option sets, plus the quadword load/stores the SIMDizer adds.
#include "bench/simd_sweep.hpp"

int main(int argc, char** argv) {
  return bgp::bench::run_simd_sweep("Figure 7", bgp::nas::Benchmark::kFT,
                                    argc, argv);
}
