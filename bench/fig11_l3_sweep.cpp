// Figure 11: L3<->DDR traffic while the shared L3 is swept from 0 MB (no
// L3 at all — every request goes to the off-chip DDR) to 8 MB in 2 MB
// steps, via the boot options the paper sets "using the svchost options
// while booting a node".
#include "bench/util.hpp"

using namespace bgp;

int main(int argc, char** argv) {
  const auto args = bench::HarnessArgs::parse(argc, argv, /*nodes=*/4,
                                              nas::ProblemClass::kW);
  bench::banner("Figure 11", "DDR traffic vs L3 cache size (VNM)",
                "steep drop 0->2->4 MB; ~10% L3 read miss ratio at 4 MB; "
                "little further benefit beyond 4 MB — \"4 MB is optimal\"");

  const std::vector<u64> sizes_mb{0, 2, 4, 6, 8};
  std::vector<std::string> headers{"app"};
  for (u64 mb : sizes_mb) headers.push_back(strfmt("%lluMB (MB to DDR)",
                                                   (unsigned long long)mb));
  headers.push_back("miss ratio @4MB");
  bench::Table t(headers);

  bool shape_ok = true;
  for (nas::Benchmark b : nas::all_benchmarks()) {
    std::vector<std::string> row{std::string(nas::name(b))};
    std::vector<double> traffic;
    double miss_at_4mb = 0;
    for (u64 mb : sizes_mb) {
      nas::RunConfig cfg;
      cfg.bench = b;
      cfg.cls = args.cls;
      cfg.num_nodes = args.nodes;
      cfg.mode = sys::OpMode::kVnm;
      cfg.boot.l3_size_bytes = mb * MiB;
      cfg.ranks_override = bench::ranks_for(b, args.nodes, cfg.mode);
      const auto out = nas::run_benchmark(cfg);
      traffic.push_back(out.record.ddr_traffic_bytes);
      row.push_back(bench::fmt_double(out.record.ddr_traffic_bytes / 1e6));
      if (mb == 4) miss_at_4mb = out.record.l3_read_miss_ratio;
    }
    row.push_back(strfmt("%.1f%%", 100.0 * miss_at_4mb));
    t.row(row);
    // Shape: monotone non-increasing, and the 4->8 MB benefit must be small
    // relative to the 0->4 MB drop.
    for (std::size_t i = 1; i < traffic.size(); ++i) {
      if (traffic[i] > traffic[i - 1] * 1.02) shape_ok = false;
    }
    const double drop_to_4 = traffic[0] - traffic[2];
    const double drop_beyond = traffic[2] - traffic[4];
    if (drop_to_4 > 0 && drop_beyond > 0.25 * drop_to_4) shape_ok = false;
  }
  t.print();
  std::printf("\nshape check (monotone decrease, knee at 4 MB): %s\n",
              shape_ok ? "OK" : "VIOLATED");
  return shape_ok ? 0 : 1;
}
