// Microbenchmark for the write-ahead session journal: append latency for a
// representative lifecycle record (the cost every admit/finish pays on the
// control path) and replay throughput (the cost a restart pays per journal
// record). Appends land on a tmpfs-backed temp file so the numbers measure
// framing + CRC + the write syscall, not disk seeks.
#include <benchmark/benchmark.h>

#include <filesystem>

#include "daemon/journal.hpp"

namespace fs = std::filesystem;
using namespace bgp;
using namespace bgp::daemon;

namespace {

fs::path bench_path() {
  return fs::temp_directory_path() / "bgpcd_journal_bench.jrnl";
}

JournalRecord sample_record() {
  JournalRecord rec;
  rec.op = journal_op::kFinish;
  rec.session = "s0042";
  json::Value body = json::Value::object();
  body.set("state", json::Value("finished"));
  body.set("detail", json::Value("verified: 8/8 ranks OK"));
  body.set("verified", json::Value(true));
  body.set("dump_files", json::Value(u64{8}));
  body.set("trace_files", json::Value(u64{8}));
  body.set("sim_cycles", json::Value(u64{123'456'789}));
  rec.body = body;
  return rec;
}

void BM_JournalAppend(benchmark::State& state) {
  const fs::path path = bench_path();
  fs::remove(path);
  JournalWriter writer(path);
  const JournalRecord rec = sample_record();
  for (auto _ : state) {
    writer.append(rec);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["journal_bytes"] =
      static_cast<double>(fs::file_size(path));
  fs::remove(path);
}
BENCHMARK(BM_JournalAppend);

void BM_JournalEncodeFrame(benchmark::State& state) {
  const JournalRecord rec = sample_record();
  for (auto _ : state) {
    benchmark::DoNotOptimize(encode_journal_frame(rec));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_JournalEncodeFrame);

void BM_JournalReplay(benchmark::State& state) {
  const fs::path path = bench_path();
  fs::remove(path);
  const auto records = static_cast<unsigned>(state.range(0));
  {
    JournalWriter writer(path);
    const JournalRecord rec = sample_record();
    for (unsigned i = 0; i < records; ++i) writer.append(rec);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(replay_journal(path));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * records);
  fs::remove(path);
}
BENCHMARK(BM_JournalReplay)->Arg(64)->Arg(1024)->Arg(16384);

}  // namespace

BENCHMARK_MAIN();
