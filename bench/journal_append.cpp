// Microbenchmark for the write-ahead session journal: append latency for a
// representative lifecycle record (the cost every admit/finish pays on the
// control path) and replay throughput (the cost a restart pays per journal
// record). Appends land on a tmpfs-backed temp file so the numbers measure
// framing + CRC + the write/fdatasync syscalls, not disk seeks.
//
// Besides the google-benchmark means, a dedicated quantile pass times every
// append individually and reports p50/p99/max — tail latency is what the
// daemon's admission path actually feels — with the daemon's own host
// histograms attached, so the same numbers are cross-checked through the
// bgpcd_journal_append_seconds{phase} exposition path. With
// BGPC_BENCH_ARTIFACT_DIR set the quantiles are written to
// $BGPC_BENCH_ARTIFACT_DIR/BENCH_daemon_host.json (the CI artifact);
// otherwise BENCH_daemon_host.json lands in the working directory.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "common/strfmt.hpp"
#include "daemon/journal.hpp"
#include "obs/host_clock.hpp"
#include "obs/promtext.hpp"

namespace fs = std::filesystem;
using namespace bgp;
using namespace bgp::daemon;

namespace {

fs::path bench_path() {
  return fs::temp_directory_path() / "bgpcd_journal_bench.jrnl";
}

JournalRecord sample_record() {
  JournalRecord rec;
  rec.op = journal_op::kFinish;
  rec.session = "s0042";
  json::Value body = json::Value::object();
  body.set("state", json::Value("finished"));
  body.set("detail", json::Value("verified: 8/8 ranks OK"));
  body.set("verified", json::Value(true));
  body.set("dump_files", json::Value(u64{8}));
  body.set("trace_files", json::Value(u64{8}));
  body.set("sim_cycles", json::Value(u64{123'456'789}));
  rec.body = body;
  return rec;
}

void BM_JournalAppend(benchmark::State& state) {
  const fs::path path = bench_path();
  fs::remove(path);
  JournalWriter writer(path);
  const JournalRecord rec = sample_record();
  for (auto _ : state) {
    writer.append(rec);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["journal_bytes"] =
      static_cast<double>(fs::file_size(path));
  fs::remove(path);
}
BENCHMARK(BM_JournalAppend);

void BM_JournalEncodeFrame(benchmark::State& state) {
  const JournalRecord rec = sample_record();
  for (auto _ : state) {
    benchmark::DoNotOptimize(encode_journal_frame(rec));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_JournalEncodeFrame);

void BM_JournalReplay(benchmark::State& state) {
  const fs::path path = bench_path();
  fs::remove(path);
  const auto records = static_cast<unsigned>(state.range(0));
  {
    JournalWriter writer(path);
    const JournalRecord rec = sample_record();
    for (unsigned i = 0; i < records; ++i) writer.append(rec);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(replay_journal(path));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * records);
  fs::remove(path);
}
BENCHMARK(BM_JournalReplay)->Arg(64)->Arg(1024)->Arg(16384);

/// Per-append latency distribution for the quantile report.
struct AppendQuantiles {
  unsigned records = 0;
  double mean_ns = 0.0;
  double p50_ns = 0.0;
  double p99_ns = 0.0;
  double max_ns = 0.0;
  std::size_t journal_bytes = 0;
  double replay_records_per_sec = 0.0;
  /// Quantiles reconstructed from the daemon's own host histograms
  /// (bgpcd_journal_append_seconds{phase="write"|"fsync"} exposition).
  double hist_write_p50_s = 0.0;
  double hist_write_p99_s = 0.0;
  double hist_fsync_p50_s = 0.0;
  double hist_fsync_p99_s = 0.0;
};

/// Nearest-rank statistic of a sorted sample, q in [0,1].
double rank_ns(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

/// Time every append individually — google-benchmark reports the mean, but
/// the daemon's admission path feels the tail. The writer carries the same
/// host histograms the live daemon attaches, so the exposition-derived
/// p50/p99 can be cross-checked against the directly measured ones.
AppendQuantiles measure_append_quantiles(unsigned records) {
  const fs::path path = bench_path();
  fs::remove(path);

  obs::MetricsRegistry reg;
  obs::Histogram& h_write = reg.histogram(
      "bgpcd_journal_append_seconds", "journal append host latency",
      obs::host_latency_bounds(), {{"phase", "write"}});
  obs::Histogram& h_fsync = reg.histogram(
      "bgpcd_journal_append_seconds", "journal append host latency",
      obs::host_latency_bounds(), {{"phase", "fsync"}});

  AppendQuantiles q;
  q.records = records;
  std::vector<double> ns;
  ns.reserve(records);
  {
    JournalWriter writer(path);
    writer.set_host_timers(&h_write, &h_fsync);
    const JournalRecord rec = sample_record();
    // Warm-up: fault in the file and allocator paths before measuring.
    for (unsigned i = 0; i < 256; ++i) writer.append(rec);
    for (unsigned i = 0; i < records; ++i) {
      const i64 t0 = obs::host_now_ns();
      writer.append(rec);
      ns.push_back(static_cast<double>(obs::host_now_ns() - t0));
    }
  }
  q.journal_bytes = fs::file_size(path);

  double sum = 0.0;
  for (const double v : ns) sum += v;
  q.mean_ns = sum / static_cast<double>(ns.size());
  std::sort(ns.begin(), ns.end());
  q.p50_ns = rank_ns(ns, 0.50);
  q.p99_ns = rank_ns(ns, 0.99);
  q.max_ns = ns.back();

  // Cross-check through the exposition: render the registry and pull the
  // same quantiles back out of the cumulative buckets.
  const auto hists =
      obs::parse_prometheus_histograms(obs::render_prometheus(reg));
  const auto write_it = hists.find(obs::prometheus_key(
      "bgpcd_journal_append_seconds", {{"phase", "write"}}));
  const auto fsync_it = hists.find(obs::prometheus_key(
      "bgpcd_journal_append_seconds", {{"phase", "fsync"}}));
  if (write_it != hists.end()) {
    q.hist_write_p50_s = obs::histogram_quantile(write_it->second, 0.50);
    q.hist_write_p99_s = obs::histogram_quantile(write_it->second, 0.99);
  }
  if (fsync_it != hists.end()) {
    q.hist_fsync_p50_s = obs::histogram_quantile(fsync_it->second, 0.50);
    q.hist_fsync_p99_s = obs::histogram_quantile(fsync_it->second, 0.99);
  }

  const i64 r0 = obs::host_now_ns();
  const JournalReplay replay = replay_journal(path);
  const double replay_s =
      static_cast<double>(obs::host_now_ns() - r0) / obs::kNsPerSecond;
  if (replay_s > 0.0) {
    q.replay_records_per_sec =
        static_cast<double>(replay.records.size()) / replay_s;
  }
  fs::remove(path);
  return q;
}

void write_artifact(const AppendQuantiles& q) {
  std::string json = "{\n";
  json += strfmt("  \"records\": %u,\n", q.records);
  json += strfmt(
      "  \"append_ns\": {\"mean\": %.1f, \"p50\": %.1f, \"p99\": %.1f, "
      "\"max\": %.1f},\n",
      q.mean_ns, q.p50_ns, q.p99_ns, q.max_ns);
  json += strfmt(
      "  \"histogram_seconds\": {\n"
      "    \"write\": {\"p50\": %.9f, \"p99\": %.9f},\n"
      "    \"fsync\": {\"p50\": %.9f, \"p99\": %.9f}\n"
      "  },\n",
      q.hist_write_p50_s, q.hist_write_p99_s, q.hist_fsync_p50_s,
      q.hist_fsync_p99_s);
  json += strfmt("  \"journal_bytes\": %zu,\n", q.journal_bytes);
  json += strfmt("  \"replay_records_per_sec\": %.0f\n}\n",
                 q.replay_records_per_sec);

  fs::path out = "BENCH_daemon_host.json";
  if (const char* dir = std::getenv("BGPC_BENCH_ARTIFACT_DIR")) {
    fs::create_directories(dir);
    out = fs::path(dir) / "BENCH_daemon_host.json";
  }
  std::FILE* f = std::fopen(out.string().c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out.string().c_str());
    return;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", out.string().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const AppendQuantiles q = measure_append_quantiles(16384);
  std::printf(
      "journal append latency over %u records: mean %.0f ns, p50 %.0f ns, "
      "p99 %.0f ns, max %.0f ns\n",
      q.records, q.mean_ns, q.p50_ns, q.p99_ns, q.max_ns);
  std::printf(
      "exposition cross-check (bgpcd_journal_append_seconds): "
      "write p50 %.1f us / p99 %.1f us, fsync p50 %.1f us / p99 %.1f us\n",
      q.hist_write_p50_s * 1e6, q.hist_write_p99_s * 1e6,
      q.hist_fsync_p50_s * 1e6, q.hist_fsync_p99_s * 1e6);
  std::printf("replay: %.0f records/s over %zu journal bytes\n",
              q.replay_records_per_sec, q.journal_bytes);
  write_artifact(q);

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
