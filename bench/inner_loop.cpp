// Before/after harness for the simulation inner-loop fast paths
// (docs/perf.md): the devirtualized cache walk and the block-batched
// counter-event delivery, each hand-timed against the legacy path it
// replaced (which stays selectable via HierarchyParams::legacy_walk and
// MachineConfig::legacy_block_events, so both are measured live in one
// binary on the same host). Rows report ns per walk / ns per delivered
// counter event and the fast-over-legacy speedup.
//
// With BGPC_BENCH_ARTIFACT_DIR set the rows are written to
// $BGPC_BENCH_ARTIFACT_DIR/BENCH_inner_loop.json (the CI artifact);
// otherwise BENCH_inner_loop.json lands in the working directory.
#include <benchmark/benchmark.h>  // DoNotOptimize only; timing is by hand

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/util.hpp"
#include "cpu/core.hpp"
#include "mem/hierarchy.hpp"
#include "upc/upc_unit.hpp"

using namespace bgp;

namespace {

/// Best-of-`kRepeats` ns/iteration of `fn(i)` (one warmup pass first).
template <class F>
double time_ns(std::size_t iters, F&& fn) {
  constexpr int kRepeats = 3;
  double best = 1e30;
  for (int rep = -1; rep < kRepeats; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < iters; ++i) fn(i);
    const auto t1 = std::chrono::steady_clock::now();
    const double ns =
        std::chrono::duration<double, std::nano>(t1 - t0).count() /
        static_cast<double>(iters);
    if (rep >= 0 && ns < best) best = ns;
  }
  return best;
}

mem::HierarchyParams walk_params(bool legacy) {
  mem::HierarchyParams p;
  p.legacy_walk = legacy;
  return p;
}

/// Forwards sink events into one UPC unit, exactly like sys::Node's
/// UpcSink, so event-delivery costs include the real counter bump.
struct UpcForwardSink final : mem::EventSink {
  upc::UpcUnit* unit;
  explicit UpcForwardSink(upc::UpcUnit* u) : unit(u) {}
  void event(isa::EventId id, u64 count) override { unit->signal(id, count); }
  void events(const isa::EventCount* batch, std::size_t n) override {
    unit->signal_batch(batch, n);
  }
};

struct Row {
  const char* name;
  const char* unit;
  double legacy_ns = 0;
  double fast_ns = 0;
  [[nodiscard]] double speedup() const { return legacy_ns / fast_ns; }
};

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      std::fprintf(stderr, "usage: %s [--quick]\n", argv[0]);
      return 2;
    }
  }
  const std::size_t scale = quick ? 10 : 1;

  bench::banner("Inner-loop fast paths (before/after)",
                "devirtualized cache walk and block-batched event delivery "
                "vs the legacy paths they replaced",
                "L1-hit walk >= 2x faster; per-event delivery cost >= 3x "
                "lower");

  std::vector<Row> rows;

  // --- cache walk: L1 hit (same shape as micro_cache BM_L1Hit) ----------
  {
    Row r{"l1_hit_walk", "ns_per_walk"};
    for (const bool legacy : {true, false}) {
      mem::MemoryHierarchy h{walk_params(legacy)};
      h.read(0, 0x1000, 32, 0);
      cycles_t acc = 0;
      const double ns = time_ns(2'000'000 / scale, [&](std::size_t) {
        acc += h.read(0, 0x1000, 32, 0).latency;
      });
      benchmark::DoNotOptimize(acc);
      (legacy ? r.legacy_ns : r.fast_ns) = ns;
    }
    rows.push_back(r);
  }

  // --- cache walk: write-through store (micro_cache BM_StoreWriteThrough)
  {
    Row r{"store_walk", "ns_per_walk"};
    for (const bool legacy : {true, false}) {
      mem::MemoryHierarchy h{walk_params(legacy)};
      addr_t a = 0;
      cycles_t acc = 0;
      const double ns = time_ns(1'000'000 / scale, [&](std::size_t) {
        acc += h.write(0, a, 32, 0).latency;
        a = (a + 32) % (64 * KiB);
      });
      benchmark::DoNotOptimize(acc);
      (legacy ? r.legacy_ns : r.fast_ns) = ns;
    }
    rows.push_back(r);
  }

  // --- block event delivery: Core::execute into a live UPC unit ---------
  {
    // A representative compiled loop: FMA-heavy with loads/stores and a
    // little integer work — 6 nonzero op classes.
    isa::OpMix mix;
    mix.fp_at(isa::FpOp::kFma) = 40;
    mix.fp_at(isa::FpOp::kAddSub) = 10;
    mix.ls_at(isa::LsOp::kLoadDouble) = 30;
    mix.ls_at(isa::LsOp::kStoreDouble) = 15;
    mix.int_at(isa::IntOp::kAlu) = 20;
    mix.int_at(isa::IntOp::kBranch) = 5;

    // The block event vector exactly as the compile cache stores it
    // (core-0 ids, zero counts elided, INSTR_COMPLETED last).
    std::vector<isa::EventCount> events;
    for (std::size_t i = 0; i < isa::kNumFpOps; ++i) {
      if (mix.fp[i] != 0) {
        events.push_back(
            {isa::ev::fpu_op(0, static_cast<isa::FpOp>(i)), mix.fp[i]});
      }
    }
    for (std::size_t i = 0; i < isa::kNumLsOps; ++i) {
      if (mix.ls[i] != 0) {
        events.push_back(
            {isa::ev::ls_op(0, static_cast<isa::LsOp>(i)), mix.ls[i]});
      }
    }
    for (std::size_t i = 0; i < isa::kNumIntOps; ++i) {
      if (mix.in[i] != 0) {
        events.push_back(
            {isa::ev::int_op(0, static_cast<isa::IntOp>(i)), mix.in[i]});
      }
    }
    events.push_back({isa::ev::instr_completed(0), mix.total_instructions()});

    // The delivery-ready batch exactly as Machine::compile_cached derives
    // it for core 0: the block events (already core-0 ids) with the
    // bundle's CYCLE_COUNT appended last.
    std::vector<isa::EventCount> prebased = events;
    prebased.push_back(
        {isa::ev::cycle_count(0),
         cpu::Core::bundle_cycles(mix, cpu::CoreParams{})});

    // Every execute() delivers the block's event entries plus the tick's
    // CYCLE_COUNT — the same entries on both paths. Delivery cost is
    // isolated by subtracting the same path's run with no sink attached
    // (compute and stats bookkeeping happen either way; only the counter
    // delivery disappears), then normalized per delivered event.
    const double per_call = static_cast<double>(prebased.size());

    Row r{"block_event_delivery", "ns_per_event"};
    for (const bool legacy : {true, false}) {
      upc::UpcUnit unit;
      unit.start();
      UpcForwardSink sink(&unit);
      double with_sink = 0;
      double without_sink = 0;
      for (const bool counted : {true, false}) {
        cpu::Core core(0, cpu::CoreParams{}, counted ? &sink : nullptr);
        const double ns = time_ns(1'000'000 / scale, [&](std::size_t) {
          if (legacy) {
            core.execute(mix);
          } else {
            core.execute_block(mix, prebased);
          }
        });
        (counted ? with_sink : without_sink) = ns;
      }
      benchmark::DoNotOptimize(unit.read(
          isa::event_counter(isa::ev::instr_completed(0))));
      (legacy ? r.legacy_ns : r.fast_ns) =
          std::max(with_sink - without_sink, 0.01) / per_call;
    }
    rows.push_back(r);
  }

  bench::Table t({"path", "unit", "legacy", "fast", "speedup"});
  for (const Row& r : rows) {
    t.row({r.name, r.unit, strfmt("%.2f", r.legacy_ns),
           strfmt("%.2f", r.fast_ns), strfmt("%.2fx", r.speedup())});
  }
  t.print();

  const bool meets = rows[0].speedup() >= 2.0 && rows[2].speedup() >= 3.0;
  std::printf("targets (l1_hit_walk >= 2x, block_event_delivery >= 3x): %s\n",
              meets ? "MET" : "NOT MET");

  std::string json = "{\n";
  json += strfmt("  \"quick\": %s,\n", quick ? "true" : "false");
  json += "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    json += strfmt("    {\"name\": \"%s\", \"unit\": \"%s\", "
                   "\"legacy\": %.3f, \"fast\": %.3f, \"speedup\": %.3f}%s\n",
                   rows[i].name, rows[i].unit, rows[i].legacy_ns,
                   rows[i].fast_ns, rows[i].speedup(),
                   i + 1 < rows.size() ? "," : "");
  }
  json += "  ],\n";
  json += "  \"targets\": {\"l1_hit_walk_speedup_min\": 2.0, "
          "\"block_event_delivery_speedup_min\": 3.0},\n";
  json += strfmt("  \"meets_targets\": %s\n}\n", meets ? "true" : "false");

  std::filesystem::path out = "BENCH_inner_loop.json";
  if (const char* dir = std::getenv("BGPC_BENCH_ARTIFACT_DIR")) {
    std::filesystem::create_directories(dir);
    out = std::filesystem::path(dir) / "BENCH_inner_loop.json";
  }
  std::FILE* f = std::fopen(out.string().c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out.string().c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", out.string().c_str());
  return 0;
}
