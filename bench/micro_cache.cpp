// Microbenchmarks (google-benchmark) of the cache simulator's hot paths:
// L1 hits, full-hierarchy misses, prefetcher-covered streams and the DDR
// queueing model. These are the per-access costs that bound end-to-end
// simulation speed.
#include <benchmark/benchmark.h>

#include "mem/hierarchy.hpp"

namespace {

using namespace bgp;
using namespace bgp::mem;

void BM_L1Hit(benchmark::State& state) {
  MemoryHierarchy h{HierarchyParams{}};
  h.read(0, 0x1000, 32, 0);
  cycles_t acc = 0;
  for (auto _ : state) {
    acc += h.read(0, 0x1000, 32, 0).latency;
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_L1Hit);

void BM_ColdMissChain(benchmark::State& state) {
  HierarchyParams p;
  p.prefetch.enabled = false;
  MemoryHierarchy h{p};
  addr_t a = 0;
  cycles_t acc = 0;
  for (auto _ : state) {
    acc += h.read(0, a, 32, 0).latency;
    a += 4096;  // new L1/L2/L3 line every time
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_ColdMissChain);

void BM_StreamWithPrefetch(benchmark::State& state) {
  MemoryHierarchy h{HierarchyParams{}};
  addr_t a = 0;
  cycles_t now = 0;
  for (auto _ : state) {
    now += h.read(0, a, 32, now).latency;
    a += 32;
  }
  benchmark::DoNotOptimize(now);
}
BENCHMARK(BM_StreamWithPrefetch);

void BM_StoreWriteThrough(benchmark::State& state) {
  MemoryHierarchy h{HierarchyParams{}};
  addr_t a = 0;
  cycles_t acc = 0;
  for (auto _ : state) {
    acc += h.write(0, a, 32, 0).latency;
    a = (a + 32) % (64 * KiB);
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_StoreWriteThrough);

void BM_DdrContention(benchmark::State& state) {
  DdrParams p;
  DdrSystem ddr(p);
  addr_t a = 0;
  cycles_t acc = 0;
  for (auto _ : state) {
    acc += ddr.access(a, AccessType::kRead, 0, 0).latency;
    a += 128;
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_DdrContention);

void BM_SnoopWrite(benchmark::State& state) {
  SnoopFilter f;
  f.record_fill(1, 7);
  addr_t line = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.on_write(0, line++ % 1024));
  }
}
BENCHMARK(BM_SnoopWrite);

}  // namespace

BENCHMARK_MAIN();
