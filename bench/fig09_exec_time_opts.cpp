// Figure 9: variation in execution time with the compiler option sets for
// FT, EP, CG and IS (the paper's first group). Cycle counts come from the
// CYCLE_COUNT counter exactly as in the paper; the reduction column is
// relative to the "-O -qstrict" baseline.
#include "bench/exec_time_sweep.hpp"

int main(int argc, char** argv) {
  using bgp::nas::Benchmark;
  return bgp::bench::run_exec_time_sweep(
      "Figure 9",
      {Benchmark::kFT, Benchmark::kEP, Benchmark::kCG, Benchmark::kIS},
      /*best_reduction_bench=*/"FT/EP reach up to ~60% reduction at "
      "-O5 -qarch440d; CG and IS benefit less",
      argc, argv);
}
