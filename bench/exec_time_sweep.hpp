// Shared execution-time-vs-optimization sweep for Figures 9 and 10.
#pragma once

#include "bench/util.hpp"

namespace bgp::bench {

inline int run_exec_time_sweep(const char* figure,
                               const std::vector<nas::Benchmark>& apps,
                               const char* expectation, int argc,
                               char** argv) {
  const auto args =
      HarnessArgs::parse(argc, argv, /*nodes=*/4, nas::ProblemClass::kW);
  banner(figure, "Execution time vs compiler optimization (VNM)",
         expectation);

  std::vector<std::string> headers{"option set"};
  for (nas::Benchmark b : apps) {
    headers.push_back(std::string(nas::name(b)) + " Mcyc");
    headers.push_back("vs base");
  }
  Table t(headers);

  // exec cycles per (config, app)
  std::vector<std::vector<double>> cycles;
  bool all_ok = true;
  for (const auto& cfg_opt : opt::OptConfig::paper_set()) {
    std::vector<double> per_app;
    for (nas::Benchmark b : apps) {
      nas::RunConfig cfg;
      cfg.bench = b;
      cfg.cls = args.cls;
      cfg.num_nodes = args.nodes;
      cfg.mode = sys::OpMode::kVnm;
      cfg.opt = cfg_opt;
      cfg.ranks_override = ranks_for(b, args.nodes, cfg.mode);
      const auto out = nas::run_benchmark(cfg);
      all_ok = all_ok && out.result.verified;
      per_app.push_back(out.record.exec_cycles);
    }
    cycles.push_back(per_app);
  }

  for (std::size_t c = 0; c < cycles.size(); ++c) {
    std::vector<std::string> row{opt::OptConfig::paper_set()[c].name()};
    for (std::size_t a = 0; a < apps.size(); ++a) {
      row.push_back(fmt_double(cycles[c][a] / 1e6));
      row.push_back(strfmt("%+.1f%%",
                           100.0 * (cycles[c][a] / cycles[0][a] - 1.0)));
    }
    t.row(row);
  }
  t.print();

  // Shape check: the best configuration (-O5 -qarch440d, last in the set)
  // must beat the baseline for every app.
  bool improved = true;
  std::printf("\nreduction at -O5 -qarch440d:");
  for (std::size_t a = 0; a < apps.size(); ++a) {
    const double red = 1.0 - cycles.back()[a] / cycles.front()[a];
    std::printf(" %s=%.0f%%", std::string(nas::name(apps[a])).c_str(),
                100.0 * red);
    improved = improved && red > 0.0;
  }
  std::printf("\n");
  return (all_ok && improved) ? 0 : 1;
}

}  // namespace bgp::bench
