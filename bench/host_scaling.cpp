// Host-scaling curve for the parallel epoch scheduler
// (docs/parallel-scheduler.md): run one benchmark serially (the oracle),
// then under --sched=parallel at each worker count in the --jobs list, and
// report host wall-clock, speedup over one worker, and the simulated cycle
// count of every run. The simulated cycles must be identical across all
// rows — the scheduler trades host time, never simulated behaviour — and
// the harness fails if they are not.
//
// Defaults reproduce the acceptance configuration (CG class A on 64 VNM
// nodes = 256 ranks); --nodes/--class/--jobs scale it down for quick runs.
// Speedup is only meaningful on a multi-core host: with one core the
// workers serialize and the curve is flat (the JSON records host_cores so
// readers can tell).
//
// With BGPC_BENCH_ARTIFACT_DIR set the same rows are written to
// $BGPC_BENCH_ARTIFACT_DIR/BENCH_scaling.json (the CI artifact); otherwise
// BENCH_scaling.json lands in the working directory.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench/util.hpp"
#include "core/session.hpp"
#include "nas/kernel.hpp"
#include "runtime/machine.hpp"
#include "runtime/rankctx.hpp"

using namespace bgp;

namespace {

struct RunResult {
  double wall_ms = 0;
  cycles_t sim_cycles = 0;
  bool verified = false;
};

RunResult one_run(nas::Benchmark bench, nas::ProblemClass cls, unsigned nodes,
                  rt::SchedMode sched, unsigned jobs) {
  rt::MachineConfig mc;
  mc.num_nodes = nodes;
  mc.mode = sys::OpMode::kVnm;
  mc.sched = sched;
  mc.jobs = jobs;
  rt::Machine machine(mc);

  pc::Options opts;
  opts.app_name = std::string(nas::name(bench));
  opts.write_dumps = false;
  pc::Session session(machine, opts);
  session.link_with_mpi();

  auto kernel = nas::make_kernel(bench, cls);
  const auto t0 = std::chrono::steady_clock::now();
  machine.run([&](rt::RankCtx& ctx) {
    ctx.mpi_init();
    kernel->run(ctx);
    ctx.mpi_finalize();
  });
  const auto t1 = std::chrono::steady_clock::now();

  RunResult r;
  r.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  r.sim_cycles = machine.elapsed();
  r.verified = kernel->result().verified;
  return r;
}

std::vector<unsigned> parse_jobs_list(const char* v) {
  std::vector<unsigned> jobs;
  for (const char* p = v; *p != '\0';) {
    char* end = nullptr;
    const unsigned long j = std::strtoul(p, &end, 10);
    if (end == p || j == 0) {
      std::fprintf(stderr, "bad --jobs list: %s\n", v);
      std::exit(2);
    }
    jobs.push_back(static_cast<unsigned>(j));
    p = *end == ',' ? end + 1 : end;
  }
  return jobs;
}

}  // namespace

int main(int argc, char** argv) {
  nas::Benchmark bench = nas::Benchmark::kCG;
  nas::ProblemClass cls = nas::ProblemClass::kA;
  unsigned nodes = 64;
  bool allow_oversub = false;
  std::vector<unsigned> jobs_list = {1, 2, 4, 8};
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--nodes=", 8) == 0) {
      nodes = static_cast<unsigned>(std::atoi(argv[i] + 8));
    } else if (std::strncmp(argv[i], "--class=", 8) == 0) {
      cls = nas::parse_class(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--bench=", 8) == 0) {
      bench = nas::parse_benchmark(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      jobs_list = parse_jobs_list(argv[i] + 7);
    } else if (std::strcmp(argv[i], "--allow-oversubscribed") == 0) {
      allow_oversub = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--bench=B] [--nodes=N] [--class=S|W|A] "
                   "[--jobs=1,2,4,8] [--allow-oversubscribed]\n",
                   argv[0]);
      return 2;
    }
  }

  const unsigned host_cores = std::thread::hardware_concurrency();

  // Datapoints with more workers than host cores measure scheduler noise,
  // not scaling: skip them by default (they stay in the JSON as skipped),
  // or run-but-flag them under --allow-oversubscribed. host_cores == 0
  // means the host could not report a count — run everything, flag nothing.
  std::vector<unsigned> skipped_jobs;
  if (host_cores != 0 && !allow_oversub) {
    std::vector<unsigned> kept;
    for (const unsigned j : jobs_list) {
      (j > host_cores ? skipped_jobs : kept).push_back(j);
    }
    jobs_list = std::move(kept);
  }
  const auto oversubscribed = [&](unsigned j) {
    return host_cores != 0 && j > host_cores;
  };
  const unsigned ranks = nodes * sys::processes_per_node(sys::OpMode::kVnm);
  bench::banner("Host scaling (parallel epoch scheduler)",
                "wall-clock vs worker count at fixed simulated behaviour",
                "simulated cycles identical on every row; wall-clock falls "
                "with --jobs up to min(host cores, nodes)");
  std::printf("%s class %s | %u VNM nodes (%u ranks) | host cores %u\n",
              std::string(nas::name(bench)).c_str(),
              std::string(nas::name(cls)).c_str(), nodes, ranks, host_cores);
  for (const unsigned j : skipped_jobs) {
    std::printf("skipping jobs=%u: oversubscribed (host has %u cores; "
                "--allow-oversubscribed to run anyway)\n",
                j, host_cores);
  }
  std::printf("\n");
  if (jobs_list.empty()) {
    std::fprintf(stderr, "no runnable --jobs datapoints\n");
    return 2;
  }

  const RunResult serial =
      one_run(bench, cls, nodes, rt::SchedMode::kSerial, 0);

  bench::Table t({"scheduler", "jobs", "wall ms", "speedup vs jobs=1",
                  "sim cycles"});
  std::vector<RunResult> rows;
  for (const unsigned j : jobs_list) {
    rows.push_back(one_run(bench, cls, nodes, rt::SchedMode::kParallel, j));
  }
  const double base_ms = rows.front().wall_ms;

  auto cyc = [](cycles_t v) {
    return strfmt("%llu", static_cast<unsigned long long>(v));
  };
  t.row({"serial", "-", strfmt("%.1f", serial.wall_ms), "-",
         cyc(serial.sim_cycles)});
  bool cycles_ok = serial.verified;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    t.row({oversubscribed(jobs_list[i]) ? "parallel (oversub)" : "parallel",
           strfmt("%u", jobs_list[i]), strfmt("%.1f", rows[i].wall_ms),
           strfmt("%.2fx", base_ms / rows[i].wall_ms),
           cyc(rows[i].sim_cycles)});
    cycles_ok = cycles_ok && rows[i].verified &&
                rows[i].sim_cycles == serial.sim_cycles;
  }
  t.print();
  if (!cycles_ok) {
    std::printf("FAIL: simulated cycles differ across schedulers (or a run "
                "failed verification)\n");
  }

  std::string json = "{\n";
  json += strfmt("  \"bench\": \"%s\",\n",
                 std::string(nas::name(bench)).c_str());
  json += strfmt("  \"class\": \"%s\",\n",
                 std::string(nas::name(cls)).c_str());
  json += strfmt("  \"nodes\": %u,\n  \"ranks\": %u,\n  \"host_cores\": %u,\n",
                 nodes, ranks, host_cores);
  json += strfmt("  \"serial\": {\"wall_ms\": %.3f, \"sim_cycles\": %llu},\n",
                 serial.wall_ms,
                 static_cast<unsigned long long>(serial.sim_cycles));
  json += "  \"parallel\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    json += strfmt("    {\"jobs\": %u, \"wall_ms\": %.3f, "
                   "\"speedup_vs_jobs1\": %.3f, \"sim_cycles\": %llu, "
                   "\"oversubscribed\": %s}%s\n",
                   jobs_list[i], rows[i].wall_ms, base_ms / rows[i].wall_ms,
                   static_cast<unsigned long long>(rows[i].sim_cycles),
                   oversubscribed(jobs_list[i]) ? "true" : "false",
                   i + 1 < rows.size() ? "," : "");
  }
  json += "  ],\n";
  json += "  \"skipped_oversubscribed\": [";
  for (std::size_t i = 0; i < skipped_jobs.size(); ++i) {
    json += strfmt("%s%u", i == 0 ? "" : ", ", skipped_jobs[i]);
  }
  json += "],\n";
  json += strfmt("  \"sim_cycles_identical\": %s\n}\n",
                 cycles_ok ? "true" : "false");

  std::filesystem::path out = "BENCH_scaling.json";
  if (const char* dir = std::getenv("BGPC_BENCH_ARTIFACT_DIR")) {
    std::filesystem::create_directories(dir);
    out = std::filesystem::path(dir) / "BENCH_scaling.json";
  }
  std::FILE* f = std::fopen(out.string().c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out.string().c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", out.string().c_str());
  return cycles_ok ? 0 : 1;
}
