// Figure 8: SIMD instructions incorporated into MG by the different XL
// compiler option sets, plus the quadword load/stores the SIMDizer adds.
#include "bench/simd_sweep.hpp"

int main(int argc, char** argv) {
  return bgp::bench::run_simd_sweep("Figure 8", bgp::nas::Benchmark::kMG,
                                    argc, argv);
}
