// Recovery-cost table for the ULFM-style FT layer (docs/fault-tolerance.md):
// for each partition size, one node is killed mid-run and the survivors
// recover; the table reports the detection latency and the modeled cycle
// cost of each recovery step (revoke over the barrier network, agreement
// over two tree reductions, shrink) next to the run's total wall clock, so
// the overhead of riding through a failure can be judged at scale.
//
// With BGPC_FT_ARTIFACT_DIR set the same rows are written to
// $BGPC_FT_ARTIFACT_DIR/recovery_costs.csv (the CI artifact).
#include <cstdlib>
#include <filesystem>
#include <map>

#include "bench/util.hpp"
#include "common/csv.hpp"
#include "fault/fault.hpp"
#include "ft/ftcomm.hpp"
#include "runtime/machine.hpp"
#include "runtime/rankctx.hpp"

using namespace bgp;

namespace {

constexpr cycles_t kDetectLatency = 2000;

isa::LoopDesc work(u64 trip) {
  isa::LoopDesc d;
  d.name = "work";
  d.trip = trip;
  d.body.fp_at(isa::FpOp::kFma) = 4;
  d.body.int_at(isa::IntOp::kAlu) = 2;
  d.body.ls_at(isa::LsOp::kLoadDouble) = 2;
  return d;
}

struct RecoveryProbe {
  cycles_t detect = 0;   ///< billed detection latency
  cycles_t revoke = 0;   ///< barrier-network propagation
  cycles_t agree = 0;    ///< two reductions over the pruned tree
  cycles_t shrink = 0;   ///< survivor-communicator rebuild
  cycles_t elapsed = 0;  ///< whole-run wall clock
};

RecoveryProbe probe(unsigned nodes) {
  fault::FaultPlan plan;
  plan.add({.kind = fault::FaultKind::kNodeDeath, .node = nodes / 2,
            .cycle = 1});
  fault::FaultInjector inj(std::move(plan));

  rt::MachineConfig mc;
  mc.num_nodes = nodes;
  mc.mode = sys::OpMode::kSmp1;
  rt::Machine m(mc);
  m.set_fault_injector(&inj);
  ft::FtParams ftp;
  ftp.enabled = true;
  ftp.detect_latency = kDetectLatency;
  m.set_ft_params(ftp);

  m.run([&](rt::RankCtx& ctx) {
    ft::run_guarded(ctx, [&](rt::RankCtx& c) {
      for (int i = 0; i < 4; ++i) {
        c.loop(work(2000), {});
        (void)c.allreduce_sum(1.0);
      }
    });
  });

  RecoveryProbe p;
  p.elapsed = m.elapsed();
  for (const ft::RecoveryEvent& e : m.recovery_log()) {
    switch (e.kind) {
      case ft::RecoveryKind::kDeathDetected: p.detect = e.cost; break;
      case ft::RecoveryKind::kRevoke: p.revoke = e.cost; break;
      case ft::RecoveryKind::kAgree: p.agree = e.cost; break;
      case ft::RecoveryKind::kShrink: p.shrink = e.cost; break;
    }
  }
  return p;
}

std::string cyc(cycles_t v) {
  return strfmt("%llu", static_cast<unsigned long long>(v));
}

}  // namespace

int main() {
  bench::banner(
      "Table (fault tolerance)", "ULFM-style recovery costs vs partition size",
      "detection is a fixed latency; revoke/agree/shrink grow with the "
      "log-depth of the (pruned) collective tree, staying a small fraction "
      "of the run");

  bench::Table t({"nodes", "detect", "revoke", "agree", "shrink",
                  "recovery total", "run cycles", "overhead"});
  CsvWriter csv;
  csv.header({"nodes", "detect_cycles", "revoke_cycles", "agree_cycles",
              "shrink_cycles", "recovery_total_cycles", "run_cycles"});

  bool shapes_ok = true;
  std::map<unsigned, RecoveryProbe> probes;
  for (const unsigned nodes : {4u, 8u, 16u, 32u}) {
    const RecoveryProbe p = probe(nodes);
    probes[nodes] = p;
    const cycles_t total = p.detect + p.revoke + p.agree + p.shrink;
    t.row({strfmt("%u", nodes), cyc(p.detect), cyc(p.revoke), cyc(p.agree),
           cyc(p.shrink), cyc(total), cyc(p.elapsed),
           strfmt("%.2f%%", 100.0 * static_cast<double>(total) /
                                static_cast<double>(p.elapsed))});
    csv.row({strfmt("%u", nodes), cyc(p.detect), cyc(p.revoke), cyc(p.agree),
             cyc(p.shrink), cyc(total), cyc(p.elapsed)});
    shapes_ok = shapes_ok && p.detect == kDetectLatency && p.revoke > 0 &&
                p.agree > 0 && p.shrink > 0;
  }
  t.print();

  // Shape checks: the detection latency is the configured constant, every
  // step has a nonzero modeled cost, and the tree-based steps do not shrink
  // as the partition grows.
  shapes_ok = shapes_ok && probes[32].agree >= probes[4].agree &&
              probes[32].shrink >= probes[4].shrink;
  if (!shapes_ok) {
    std::printf("FAIL: recovery cost shape violated\n");
  }

  if (const char* dir = std::getenv("BGPC_FT_ARTIFACT_DIR")) {
    std::filesystem::create_directories(dir);
    const std::filesystem::path out =
        std::filesystem::path(dir) / "recovery_costs.csv";
    csv.write_file(out);
    std::printf("wrote %s\n", out.string().c_str());
  }
  return shapes_ok ? 0 : 1;
}
