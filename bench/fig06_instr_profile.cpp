// Figure 6: dynamic FP instruction profile of the NAS parallel benchmarks
// (fractions of single add-sub / mult / FMA / div and SIMD add-sub / FMA /
// mult), measured with the interface library in Virtual Node Mode. The
// paper runs class C with 128 processes (121 for SP/BT) on 32 nodes; pass
// --nodes=32 to match that scale.
#include "bench/util.hpp"

using namespace bgp;

int main(int argc, char** argv) {
  const auto args = bench::HarnessArgs::parse(argc, argv, /*nodes=*/8,
                                              nas::ProblemClass::kW);
  bench::banner("Figure 6", "Dynamic FP instruction profile (VNM)",
                "MG and FT dominated by SIMD add-sub + SIMD FMA; EP, CG, IS, "
                "LU, SP, BT dominated by single FMA; div negligible");

  bench::Table t({"app", "ranks", "add-sub", "mult", "fma", "div",
                  "simd add-sub", "simd mult", "simd fma", "verified"});
  bool all_ok = true;
  for (nas::Benchmark b : nas::all_benchmarks()) {
    nas::RunConfig cfg;
    cfg.bench = b;
    cfg.cls = args.cls;
    cfg.num_nodes = args.nodes;
    cfg.mode = sys::OpMode::kVnm;
    cfg.ranks_override = bench::ranks_for(b, args.nodes, cfg.mode);
    const auto out = nas::run_benchmark(cfg);
    all_ok = all_ok && out.result.verified;
    const auto& fp = out.record.fp;
    auto frac = [&](isa::FpOp op) {
      return strfmt("%5.1f%%", 100.0 * fp.fraction(op));
    };
    const unsigned ranks = cfg.ranks_override
                               ? cfg.ranks_override
                               : args.nodes * sys::processes_per_node(cfg.mode);
    t.row({std::string(nas::name(b)), strfmt("%u", ranks),
           frac(isa::FpOp::kAddSub), frac(isa::FpOp::kMult),
           frac(isa::FpOp::kFma), frac(isa::FpOp::kDiv),
           frac(isa::FpOp::kSimdAddSub), frac(isa::FpOp::kSimdMult),
           frac(isa::FpOp::kSimdFma), out.result.verified ? "yes" : "NO"});
  }
  t.print();
  return all_ok ? 0 : 1;
}
