// Tracing-subsystem harness: run NAS kernels with threshold-driven counter
// tracing on, mine the per-node traces into a merged timeline, and print
// the recovered phase structure. The paper characterizes workloads from
// whole-run aggregates; the time-series layer shows the same metrics
// resolved over execution time.
#include <filesystem>
#include <memory>

#include "bench/util.hpp"
#include "core/session.hpp"
#include "postproc/timeline.hpp"
#include "runtime/rankctx.hpp"

using namespace bgp;

namespace {

struct TimelineOutcome {
  post::TimelineReport report;
  bool verified = false;
};

TimelineOutcome trace_one(nas::Benchmark bench, nas::ProblemClass cls,
                          unsigned nodes, const std::filesystem::path& dir) {
  rt::MachineConfig mc;
  mc.num_nodes = nodes;
  mc.mode = sys::OpMode::kSmp1;
  rt::Machine machine(mc);

  pc::Options opts;
  opts.app_name = std::string(nas::name(bench));
  opts.dump_dir = dir;
  opts.write_dumps = false;
  opts.trace.enabled = true;
  opts.trace.interval_cycles = 4'000;
  opts.trace.trace_dir = dir;
  pc::Session session(machine, opts);
  session.link_with_mpi();

  auto kernel = nas::make_kernel(bench, cls);
  machine.run([&](rt::RankCtx& ctx) {
    ctx.mpi_init();
    kernel->run(ctx);
    ctx.mpi_finalize();
  });

  post::TimelineOptions mine;
  mine.expected_nodes = nodes;
  TimelineOutcome out;
  out.report = post::mine_timeline(dir, opts.app_name, mine);
  out.verified = kernel->result().verified;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::HarnessArgs::parse(argc, argv, 8,
                                              nas::ProblemClass::kS);
  bench::banner("Timeline (tracing subsystem)",
                "Phase structure mined from per-node counter traces",
                "iterative kernels alternate compute and communicate; the "
                "change-point miner should recover a multi-phase timeline "
                "with full coverage and plausible per-phase MFLOPS");

  int rc = 0;
  for (const nas::Benchmark b : {nas::Benchmark::kFT, nas::Benchmark::kCG}) {
    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() /
        strfmt("bgpc_trace_timeline_bench_%s", std::string(nas::name(b)).c_str());
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    const TimelineOutcome out = trace_one(b, args.cls, args.nodes, dir);
    std::filesystem::remove_all(dir);

    std::printf("\n%s class %s, %u nodes SMP/1, interval 4000 cycles:\n",
                std::string(nas::name(b)).c_str(),
                std::string(nas::name(args.cls)).c_str(), args.nodes);
    std::fputs(post::render_timeline(out.report).c_str(), stdout);

    const bool shape_ok = out.report.ok && out.report.phases.size() >= 2 &&
                          out.report.coverage.mined == args.nodes &&
                          out.verified;
    if (!shape_ok) {
      std::printf("FAIL: expected a verified run mining to >= 2 phases with "
                  "full coverage\n");
      rc = 1;
    }
  }
  return rc;
}
