// Shared Virtual-Node-Mode vs SMP/1 comparison used by the Figure 12, 13
// and 14 harnesses. The paper compares the class C benchmarks with 128
// processes on 32 nodes (VNM) against the same 128 processes on 128 nodes
// (SMP/1, L3 reduced to 2 MB per node for a fair per-process cache): we run
// the same processes-count comparison at configurable scale.
#pragma once

#include "bench/util.hpp"

namespace bgp::bench {

struct ModePair {
  nas::Benchmark bench;
  nas::RunOutput vnm;
  nas::RunOutput smp;
};

/// Run every benchmark in both configurations. `vnm_nodes` VNM nodes host
/// 4x as many ranks; the SMP side gets 4x the node count so the rank count
/// matches.
inline std::vector<ModePair> run_mode_comparison(unsigned vnm_nodes,
                                                 nas::ProblemClass cls) {
  std::vector<ModePair> out;
  for (nas::Benchmark b : nas::all_benchmarks()) {
    ModePair mp;
    mp.bench = b;

    nas::RunConfig vnm;
    vnm.bench = b;
    vnm.cls = cls;
    vnm.num_nodes = vnm_nodes;
    vnm.mode = sys::OpMode::kVnm;
    vnm.ranks_override = ranks_for(b, vnm_nodes, vnm.mode);
    mp.vnm = nas::run_benchmark(vnm);

    nas::RunConfig smp;
    smp.bench = b;
    smp.cls = cls;
    smp.num_nodes = vnm_nodes * 4;
    smp.mode = sys::OpMode::kSmp1;
    // Paper §VIII: "we reduced the L3 cache size to 2 MB per node using the
    // svchost options" so one process sees the same cache as a VNM share.
    smp.boot.l3_size_bytes = 2 * MiB;
    smp.ranks_override = ranks_for(b, smp.num_nodes, smp.mode);
    mp.smp = nas::run_benchmark(smp);

    out.push_back(std::move(mp));
  }
  return out;
}

}  // namespace bgp::bench
