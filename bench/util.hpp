// Shared helpers for the experiment harnesses: consistent headers, aligned
// table printing, and command-line scaling knobs. Every harness prints the
// paper artifact it regenerates plus the expectation its shape is checked
// against (EXPERIMENTS.md records the outcomes).
#pragma once

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/strfmt.hpp"
#include "nas/runner.hpp"

namespace bgp::bench {

/// Print the standard harness banner.
inline void banner(const char* figure, const char* title,
                   const char* expectation) {
  std::printf("================================================================\n");
  std::printf("%s — %s\n", figure, title);
  std::printf("paper expectation: %s\n", expectation);
  std::printf("================================================================\n");
}

/// Minimal aligned-table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void print() const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      width[c] = headers_[c].size();
    }
    for (const auto& r : rows_) {
      for (std::size_t c = 0; c < r.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], r[c].size());
      }
    }
    auto line = [&](const std::vector<std::string>& cells) {
      std::printf("|");
      for (std::size_t c = 0; c < headers_.size(); ++c) {
        const std::string& v = c < cells.size() ? cells[c] : std::string();
        std::printf(" %-*s |", static_cast<int>(width[c]), v.c_str());
      }
      std::printf("\n");
    };
    line(headers_);
    std::printf("|");
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      std::printf("%s|", std::string(width[c] + 2, '-').c_str());
    }
    std::printf("\n");
    for (const auto& r : rows_) line(r);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Command-line scaling: --nodes=N, --class=S|W|A. Defaults keep each
/// harness in the tens-of-seconds range; pass bigger values to approach the
/// paper's 32-node/128-rank configuration.
struct HarnessArgs {
  unsigned nodes = 4;
  nas::ProblemClass cls = nas::ProblemClass::kW;

  static HarnessArgs parse(int argc, char** argv, unsigned default_nodes,
                           nas::ProblemClass default_cls) {
    HarnessArgs a;
    a.nodes = default_nodes;
    a.cls = default_cls;
    for (int i = 1; i < argc; ++i) {
      if (std::strncmp(argv[i], "--nodes=", 8) == 0) {
        a.nodes = static_cast<unsigned>(std::atoi(argv[i] + 8));
      } else if (std::strncmp(argv[i], "--class=", 8) == 0) {
        a.cls = nas::parse_class(argv[i] + 8);
      } else {
        std::fprintf(stderr, "usage: %s [--nodes=N] [--class=S|W|A]\n",
                     argv[0]);
        std::exit(2);
      }
    }
    return a;
  }
};

/// The paper's square-rank convention for SP and BT (121 of 128 processes).
inline unsigned square_ranks(unsigned total) {
  unsigned s = 1;
  while ((s + 1) * (s + 1) <= total) ++s;
  return s * s;
}

/// Rank override for a benchmark under the paper's conventions.
inline unsigned ranks_for(nas::Benchmark b, unsigned nodes, sys::OpMode mode) {
  const unsigned total = nodes * sys::processes_per_node(mode);
  if (b == nas::Benchmark::kSP || b == nas::Benchmark::kBT) {
    return square_ranks(total);
  }
  return 0;  // all
}

inline std::string fmt_double(double v, const char* fmt = "%.2f") {
  return strfmt(fmt, v);
}

}  // namespace bgp::bench
