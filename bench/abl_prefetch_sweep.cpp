// Ablation (paper §IX future work): "vary the hardware parameters like
// prefetch amount in L2 ... and conclude on the optimal values for the
// modern workloads". Sweeps the L2 stream-prefetcher depth and reports
// execution time and DDR traffic for the memory-sensitive kernels.
#include "bench/util.hpp"

using namespace bgp;

int main(int argc, char** argv) {
  const auto args = bench::HarnessArgs::parse(argc, argv, /*nodes=*/4,
                                              nas::ProblemClass::kW);
  bench::banner("Ablation A1", "L2 prefetch depth sweep (paper section IX)",
                "deeper sequential prefetch hides DDR latency for streaming "
                "kernels up to a knee; depth 0 disables the prefetcher");

  const std::vector<unsigned> depths{0, 1, 2, 4, 8};
  std::vector<std::string> headers{"app"};
  for (unsigned d : depths) headers.push_back(strfmt("d=%u Mcyc", d));
  headers.push_back("best depth");
  bench::Table t(headers);

  bool ok = true;
  for (nas::Benchmark b :
       {nas::Benchmark::kCG, nas::Benchmark::kMG, nas::Benchmark::kFT,
        nas::Benchmark::kLU}) {
    std::vector<std::string> row{std::string(nas::name(b))};
    double best = 1e300;
    unsigned best_depth = 0;
    double depth0 = 0;
    for (unsigned d : depths) {
      nas::RunConfig cfg;
      cfg.bench = b;
      cfg.cls = args.cls;
      cfg.num_nodes = args.nodes;
      cfg.mode = sys::OpMode::kVnm;
      cfg.boot.prefetch.enabled = d > 0;
      cfg.boot.prefetch.depth = d;
      const auto out = nas::run_benchmark(cfg);
      ok = ok && out.result.verified;
      row.push_back(bench::fmt_double(out.record.exec_cycles / 1e6));
      if (d == 0) depth0 = out.record.exec_cycles;
      if (out.record.exec_cycles < best) {
        best = out.record.exec_cycles;
        best_depth = d;
      }
    }
    row.push_back(strfmt("%u", best_depth));
    t.row(row);
    // Shape: prefetching must help streaming kernels.
    if (best >= depth0) ok = false;
  }
  t.print();
  return ok ? 0 : 1;
}
