// Figure 10: variation in execution time with the compiler option sets for
// MG, LU, SP and BT (the paper's second group).
#include "bench/exec_time_sweep.hpp"

int main(int argc, char** argv) {
  using bgp::nas::Benchmark;
  return bgp::bench::run_exec_time_sweep(
      "Figure 10",
      {Benchmark::kMG, Benchmark::kLU, Benchmark::kSP, Benchmark::kBT},
      "MG gains strongly from SIMDization; LU/SP/BT benefit more modestly",
      argc, argv);
}
