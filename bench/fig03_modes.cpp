// Figure 3: the operating modes of a Blue Gene/P node — processes and
// threads per node in SMP/1, SMP/4, Dual and Virtual Node Mode, plus the
// rank placement our runtime derives from each mode.
#include "bench/util.hpp"
#include "sys/partition.hpp"

using namespace bgp;

int main() {
  bench::banner("Figure 3", "Modes of operation of a Blue Gene/P node",
                "SMP/1: 1 proc x 1 thread; SMP/4: 1 x 4; DUAL: 2 x 2; "
                "VNM: 4 x 1");

  bench::Table t({"mode", "processes/node", "threads/process", "cores used",
                  "ranks on 32 nodes"});
  for (sys::OpMode m : {sys::OpMode::kSmp1, sys::OpMode::kSmp4,
                        sys::OpMode::kDual, sys::OpMode::kVnm}) {
    const unsigned ppn = sys::processes_per_node(m);
    const unsigned tpp = sys::threads_per_process(m);
    t.row({std::string(sys::to_string(m)), strfmt("%u", ppn),
           strfmt("%u", tpp), strfmt("%u", ppn * tpp),
           strfmt("%u", 32 * ppn)});
  }
  t.print();

  std::printf("\nplacement check (VNM, 2 nodes):\n");
  sys::Partition part(2, sys::OpMode::kVnm);
  for (unsigned r = 0; r < part.num_ranks(); ++r) {
    const auto pl = part.placement(r);
    std::printf("  rank %u -> node %u core %u\n", r, pl.node, pl.core);
  }
  return 0;
}
