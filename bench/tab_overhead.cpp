// §IV sanity check: the interface overhead. The paper measures 196 machine
// cycles for initializing the UPC unit plus one start()/stop() pair,
// checked against the Time Base register, and argues per-pair costs are far
// lower since initialization happens once.
//
// The tracing rows extend the table to the time-series layer: the modeled
// cost of one threshold-interrupt sample (snapshot + ring push + re-arm)
// must stay within the documented 96-cycle budget (docs/tracing.md), i.e.
// below half the paper's one-time 196-cycle figure even when charged
// thousands of times per run.
//
// The observability rows close the loop on the flight recorder
// (docs/observability.md): with the recorder off — the default — the
// instrumentation layer bills zero cycles (the 196 figure must come out
// unchanged), and with it on, each recorded span stays within its
// documented per-span budget.
// The snapshot rows do the same for the counter-service daemon
// (docs/bgpcd.md): each seqlocked double-buffer publication must stay
// within the same 96-cycle family as a trace sample, and a final-only
// publisher (period 0) must bill nothing at all.
// The host-observability rows prove the host timeline is invisible to the
// simulated one: the same periodic-publisher run with a host-latency
// histogram attached (PublisherConfig.host_publish_seconds) must print
// byte-identical table rows — host instrumentation measures real
// nanoseconds but bills zero simulated cycles.
#include <filesystem>

#include "bench/util.hpp"
#include "core/session.hpp"
#include "daemon/publisher.hpp"
#include "obs/host_clock.hpp"
#include "obs/metrics.hpp"

using namespace bgp;

namespace {

/// Per-sample tracing budget (documented in docs/tracing.md).
constexpr cycles_t kPerSampleBudget = 96;
/// Per-recorded-span budget (documented in docs/observability.md).
constexpr cycles_t kPerSpanBudget = 16;
/// Per-snapshot-publication budget (documented in docs/bgpcd.md).
constexpr cycles_t kPerSnapshotBudget = 96;
/// Spans recorded by initialize + one start/stop pair (one per call).
constexpr cycles_t kSpansPerInitStartStop = 3;

/// initialize + start + stop wall clock with the flight recorder attached.
cycles_t probe_obs_init_start_stop() {
  rt::MachineConfig mc;
  mc.num_nodes = 1;
  mc.mode = sys::OpMode::kSmp1;
  rt::Machine machine(mc);
  pc::Options o;
  o.write_dumps = false;
  o.obs.enabled = true;
  pc::Session session(machine, o);
  cycles_t measured = 0;
  machine.run([&](rt::RankCtx& ctx) {
    const cycles_t t0 = ctx.core().read_timebase();
    session.BGP_Initialize(ctx);
    session.BGP_Start(ctx, 0);
    session.BGP_Stop(ctx, 0);
    measured = ctx.core().read_timebase() - t0;
  });
  return measured;
}

struct TraceProbe {
  cycles_t loop_cycles = 0;  ///< instrumented-region wall clock
  u64 samples = 0;
  cycles_t modeled_overhead = 0;
};

/// One single-node run of a fixed loop, traced or not; the cycle difference
/// between the two is the tracing overhead actually billed to the core.
TraceProbe probe_loop(bool traced) {
  rt::MachineConfig mc;
  mc.num_nodes = 1;
  mc.mode = sys::OpMode::kSmp1;
  rt::Machine machine(mc);
  pc::Options o;
  o.write_dumps = false;
  std::filesystem::path tdir;
  if (traced) {
    tdir = std::filesystem::temp_directory_path() / "bgpc_tab_overhead_trace";
    std::filesystem::create_directories(tdir);
    o.trace.enabled = true;
    o.trace.interval_cycles = 10'000;
    o.trace.trace_dir = tdir;
  }
  pc::Session session(machine, o);

  TraceProbe p;
  machine.run([&](rt::RankCtx& ctx) {
    session.BGP_Initialize(ctx);
    isa::LoopDesc d;
    d.name = "traced_payload";
    d.trip = 5000;
    d.body.fp_at(isa::FpOp::kFma) = 2;
    d.body.int_at(isa::IntOp::kAlu) = 2;
    session.BGP_Start(ctx, 0);
    const cycles_t t0 = ctx.core().read_timebase();
    // Many short loop nests rather than one monolith: each crossing of an
    // interval boundary raises its own threshold interrupt, so the sampler
    // is exercised dozens of times instead of coalescing the whole region.
    for (unsigned i = 0; i < 40; ++i) ctx.loop(d);
    p.loop_cycles = ctx.core().read_timebase() - t0;
    session.BGP_Stop(ctx, 0);
    session.BGP_Finalize(ctx);
  });
  if (traced) {
    if (const trace::NodeTracer* t = session.tracer(0)) {
      p.samples = t->sampler().samples();
      p.modeled_overhead = t->sampler().overhead_cycles();
    }
    std::filesystem::remove_all(tdir);
  }
  return p;
}

struct SnapProbe {
  cycles_t loop_cycles = 0;  ///< instrumented-region wall clock
  u64 publishes = 0;
  cycles_t modeled_per_snapshot = 0;
};

/// The probe_loop payload with a snapshot publisher attached (period 0 =
/// final-only, which must be free; a short period exercises the seqlocked
/// double-buffer path dozens of times). An optional host histogram rides
/// along exactly as in the live daemon — it must not change any simulated
/// number.
SnapProbe probe_snapshot_loop(bool periodic,
                              obs::Histogram* host_publish = nullptr) {
  rt::MachineConfig mc;
  mc.num_nodes = 1;
  mc.mode = sys::OpMode::kSmp1;
  rt::Machine machine(mc);
  pc::Options o;
  o.write_dumps = false;
  pc::Session session(machine, o);

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "bgpc_tab_overhead_snap";
  std::filesystem::create_directories(dir);
  daemon::PublisherConfig pub;
  pub.period_cycles = periodic ? 10'000 : 0;
  pub.host_publish_seconds = host_publish;
  daemon::SnapshotPublisher publisher(machine, dir / "counters.bgpsnap",
                                      "tab_overhead", "bench", pub);

  SnapProbe p;
  machine.run([&](rt::RankCtx& ctx) {
    session.BGP_Initialize(ctx);
    isa::LoopDesc d;
    d.name = "snapshot_payload";
    d.trip = 5000;
    d.body.fp_at(isa::FpOp::kFma) = 2;
    d.body.int_at(isa::IntOp::kAlu) = 2;
    session.BGP_Start(ctx, 0);
    const cycles_t t0 = ctx.core().read_timebase();
    for (unsigned i = 0; i < 40; ++i) ctx.loop(d);
    p.loop_cycles = ctx.core().read_timebase() - t0;
    session.BGP_Stop(ctx, 0);
    session.BGP_Finalize(ctx);
  });
  publisher.publish_final();
  p.publishes = publisher.publishes();
  p.modeled_per_snapshot = publisher.config().per_snapshot_overhead;
  std::filesystem::remove_all(dir);
  return p;
}

}  // namespace

int main() {
  bench::banner("Table (section IV)", "Interface instrumentation overhead",
                "initialize+start+stop = 196 cycles measured against the "
                "Time Base register; negligible vs application runtime");

  rt::MachineConfig mc;
  mc.num_nodes = 1;
  mc.mode = sys::OpMode::kSmp1;
  rt::Machine machine(mc);
  pc::Options opts;
  opts.write_dumps = false;
  pc::Session session(machine, opts);

  cycles_t init_start_stop = 0;
  cycles_t per_pair = 0;
  cycles_t app_cycles = 0;
  machine.run([&](rt::RankCtx& ctx) {
    // Full path: initialize + one start/stop pair around an empty region.
    cycles_t t0 = ctx.core().read_timebase();
    session.BGP_Initialize(ctx);
    session.BGP_Start(ctx, 0);
    session.BGP_Stop(ctx, 0);
    init_start_stop = ctx.core().read_timebase() - t0;

    // Steady state: initialization already done, repeated pairs.
    t0 = ctx.core().read_timebase();
    constexpr unsigned kPairs = 100;
    for (unsigned i = 0; i < kPairs; ++i) {
      session.BGP_Start(ctx, 1);
      session.BGP_Stop(ctx, 1);
    }
    per_pair = (ctx.core().read_timebase() - t0) / kPairs;

    // A small real workload for scale.
    isa::LoopDesc d;
    d.name = "payload";
    d.trip = 1000000;
    d.body.fp_at(isa::FpOp::kFma) = 2;
    d.body.int_at(isa::IntOp::kAlu) = 2;
    t0 = ctx.core().read_timebase();
    session.BGP_Start(ctx, 2);
    ctx.loop(d);
    session.BGP_Stop(ctx, 2);
    app_cycles = ctx.core().read_timebase() - t0;
  });

  // Time-series layer: same loop with and without the threshold-driven
  // sampler armed; the difference is the overhead tracing actually billed.
  const TraceProbe plain = probe_loop(false);
  const TraceProbe traced = probe_loop(true);
  const cycles_t trace_delta = traced.loop_cycles - plain.loop_cycles;
  const cycles_t per_sample =
      traced.samples > 0 ? trace_delta / traced.samples : 0;
  const cycles_t modeled_per_sample =
      traced.samples > 0 ? traced.modeled_overhead / traced.samples : 0;

  bench::Table t({"quantity", "cycles", "note"});
  t.row({"initialize + start + stop", strfmt("%llu",
          (unsigned long long)init_start_stop),
         "the paper's 196-cycle measurement"});
  t.row({"steady-state start/stop pair", strfmt("%llu",
          (unsigned long long)per_pair),
         "\"far less than 196 per pair\""});
  t.row({"1M-iteration instrumented loop", strfmt("%llu",
          (unsigned long long)app_cycles),
         strfmt("overhead = %.5f%% of region",
                100.0 * (double)per_pair / (double)app_cycles)});
  t.row({"tracing: one interval sample", strfmt("%llu",
          (unsigned long long)per_sample),
         strfmt("billed over %llu samples; budget %llu cycles",
                (unsigned long long)traced.samples,
                (unsigned long long)kPerSampleBudget)});
  t.row({"tracing: loop slowdown", strfmt("%llu",
          (unsigned long long)trace_delta),
         strfmt("%.4f%% of the %llu-cycle region",
                plain.loop_cycles > 0
                    ? 100.0 * (double)trace_delta / (double)plain.loop_cycles
                    : 0.0,
                (unsigned long long)plain.loop_cycles)});

  // Observability layer: the 196 above was measured with the flight
  // recorder off, so matching the paper's figure IS the proof that the
  // disabled path bills nothing. With the recorder on, the same sequence
  // runs three recorded spans longer.
  const cycles_t obs_iss = probe_obs_init_start_stop();
  const cycles_t obs_delta = obs_iss - init_start_stop;
  const cycles_t per_span = obs_delta / kSpansPerInitStartStop;
  t.row({"obs off: init+start+stop", strfmt("%llu",
          (unsigned long long)init_start_stop),
         "unchanged from the 196 row: disabled recorder bills 0 cycles"});
  t.row({"obs on: one recorded span", strfmt("%llu",
          (unsigned long long)per_span),
         strfmt("+%llu over 3 spans; budget %llu cycles",
                (unsigned long long)obs_delta,
                (unsigned long long)kPerSpanBudget)});

  // Counter-service layer: the same loop with a snapshot publisher pulsing
  // every 10k cycles vs final-only. The delta divided by the publication
  // count is what each seqlocked double-buffer write billed the core.
  const SnapProbe snap_off = probe_snapshot_loop(false);
  const SnapProbe snap_on = probe_snapshot_loop(true);
  const cycles_t snap_delta = snap_on.loop_cycles - snap_off.loop_cycles;
  const cycles_t per_snapshot =
      snap_on.publishes > 0 ? snap_delta / snap_on.publishes : 0;
  // The publication row, rendered once for the plain run and once for the
  // run with a host-latency histogram attached: the cells must come out
  // byte-identical or host observability is leaking into the simulation.
  const auto snap_row = [&](const SnapProbe& on, cycles_t per_snap) {
    return std::vector<std::string>{
        "snapshot: one publication",
        strfmt("%llu", (unsigned long long)per_snap),
        strfmt("billed over %llu publications; budget %llu cycles",
               (unsigned long long)on.publishes,
               (unsigned long long)kPerSnapshotBudget)};
  };
  t.row({"snapshot: final-only publisher", strfmt("%llu",
          (unsigned long long)snap_off.loop_cycles),
         "period 0 installs no pulse hooks: bills 0 cycles"});
  const std::vector<std::string> plain_row = snap_row(snap_on, per_snapshot);
  t.row(plain_row);

  // Host-observability rerun: same periodic publisher, now with the
  // daemon's bgpcd_snapshot_publish_seconds histogram attached.
  obs::MetricsRegistry host_reg;
  obs::Histogram& host_hist = host_reg.histogram(
      "bgpcd_snapshot_publish_seconds", "seqlock publish host latency",
      obs::host_latency_bounds());
  const SnapProbe snap_host_off = probe_snapshot_loop(false, &host_hist);
  const SnapProbe snap_host = probe_snapshot_loop(true, &host_hist);
  const cycles_t host_delta = snap_host.loop_cycles - snap_host_off.loop_cycles;
  const cycles_t per_snapshot_host =
      snap_host.publishes > 0 ? host_delta / snap_host.publishes : 0;
  const std::vector<std::string> host_row =
      snap_row(snap_host, per_snapshot_host);
  const bool host_rows_identical =
      host_row == plain_row && snap_host_off.loop_cycles == snap_off.loop_cycles;
  t.row({"snapshot + host histogram", host_row[1],
         strfmt("%s; host saw %llu observations",
                host_rows_identical ? "row byte-identical to the one above"
                                    : "ROW DIVERGED",
                (unsigned long long)host_hist.count())});
  t.print();

  const bool trace_in_budget = traced.samples > 0 &&
                               per_sample <= kPerSampleBudget &&
                               modeled_per_sample <= kPerSampleBudget;
  if (!trace_in_budget) {
    std::printf("FAIL: per-sample tracing cost exceeds the %llu-cycle "
                "budget (billed %llu, modeled %llu)\n",
                (unsigned long long)kPerSampleBudget,
                (unsigned long long)per_sample,
                (unsigned long long)modeled_per_sample);
  }
  const bool obs_in_budget = per_span <= kPerSpanBudget;
  if (!obs_in_budget) {
    std::printf("FAIL: per-span observability cost exceeds the %llu-cycle "
                "budget (billed %llu)\n",
                (unsigned long long)kPerSpanBudget,
                (unsigned long long)per_span);
  }
  const bool snap_in_budget = snap_on.publishes > 0 &&
                              per_snapshot <= kPerSnapshotBudget &&
                              snap_on.modeled_per_snapshot <=
                                  kPerSnapshotBudget;
  if (!snap_in_budget) {
    std::printf("FAIL: per-snapshot publication cost exceeds the %llu-cycle "
                "budget (billed %llu over %llu, modeled %llu)\n",
                (unsigned long long)kPerSnapshotBudget,
                (unsigned long long)per_snapshot,
                (unsigned long long)snap_on.publishes,
                (unsigned long long)snap_on.modeled_per_snapshot);
  }
  const bool snap_final_only_free = snap_off.loop_cycles == plain.loop_cycles;
  if (!snap_final_only_free) {
    std::printf("FAIL: a final-only publisher perturbed the region "
                "(%llu cycles vs %llu without any publisher)\n",
                (unsigned long long)snap_off.loop_cycles,
                (unsigned long long)plain.loop_cycles);
  }
  // Both host-instrumented runs share the histogram: the periodic run's
  // pulses plus one publish_final per run (final publications time the
  // seqlock write too but are not counted in publishes()).
  const bool host_hist_observed = host_hist.count() == snap_host.publishes + 2;
  if (!host_rows_identical) {
    std::printf("FAIL: attaching a host-latency histogram changed the "
                "simulated publication rows (%s / %s vs %s / %s)\n",
                host_row[1].c_str(), host_row[2].c_str(),
                plain_row[1].c_str(), plain_row[2].c_str());
  }
  if (!host_hist_observed) {
    std::printf("FAIL: the host histogram missed publications "
                "(count %llu, expected %llu periodic + 2 final)\n",
                (unsigned long long)host_hist.count(),
                (unsigned long long)snap_host.publishes);
  }
  return (init_start_stop == 196 && trace_in_budget && obs_in_budget &&
          snap_in_budget && snap_final_only_free && host_rows_identical &&
          host_hist_observed)
             ? 0
             : 1;
}
