// §IV sanity check: the interface overhead. The paper measures 196 machine
// cycles for initializing the UPC unit plus one start()/stop() pair,
// checked against the Time Base register, and argues per-pair costs are far
// lower since initialization happens once.
#include "bench/util.hpp"
#include "core/session.hpp"

using namespace bgp;

int main() {
  bench::banner("Table (section IV)", "Interface instrumentation overhead",
                "initialize+start+stop = 196 cycles measured against the "
                "Time Base register; negligible vs application runtime");

  rt::MachineConfig mc;
  mc.num_nodes = 1;
  mc.mode = sys::OpMode::kSmp1;
  rt::Machine machine(mc);
  pc::Options opts;
  opts.write_dumps = false;
  pc::Session session(machine, opts);

  cycles_t init_start_stop = 0;
  cycles_t per_pair = 0;
  cycles_t app_cycles = 0;
  machine.run([&](rt::RankCtx& ctx) {
    // Full path: initialize + one start/stop pair around an empty region.
    cycles_t t0 = ctx.core().read_timebase();
    session.BGP_Initialize(ctx);
    session.BGP_Start(ctx, 0);
    session.BGP_Stop(ctx, 0);
    init_start_stop = ctx.core().read_timebase() - t0;

    // Steady state: initialization already done, repeated pairs.
    t0 = ctx.core().read_timebase();
    constexpr unsigned kPairs = 100;
    for (unsigned i = 0; i < kPairs; ++i) {
      session.BGP_Start(ctx, 1);
      session.BGP_Stop(ctx, 1);
    }
    per_pair = (ctx.core().read_timebase() - t0) / kPairs;

    // A small real workload for scale.
    isa::LoopDesc d;
    d.name = "payload";
    d.trip = 1000000;
    d.body.fp_at(isa::FpOp::kFma) = 2;
    d.body.int_at(isa::IntOp::kAlu) = 2;
    t0 = ctx.core().read_timebase();
    session.BGP_Start(ctx, 2);
    ctx.loop(d);
    session.BGP_Stop(ctx, 2);
    app_cycles = ctx.core().read_timebase() - t0;
  });

  bench::Table t({"quantity", "cycles", "note"});
  t.row({"initialize + start + stop", strfmt("%llu",
          (unsigned long long)init_start_stop),
         "the paper's 196-cycle measurement"});
  t.row({"steady-state start/stop pair", strfmt("%llu",
          (unsigned long long)per_pair),
         "\"far less than 196 per pair\""});
  t.row({"1M-iteration instrumented loop", strfmt("%llu",
          (unsigned long long)app_cycles),
         strfmt("overhead = %.5f%% of region",
                100.0 * (double)per_pair / (double)app_cycles)});
  t.print();
  return init_start_stop == 196 ? 0 : 1;
}
