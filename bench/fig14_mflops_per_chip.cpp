// Figure 14: increase in delivered MFLOPS per chip when using all four
// processors instead of one — the paper's headline for the Virtual Node
// Mode (~2.5x in their runs; 4x is the upper bound, the difference being
// the resource-sharing penalty of Figure 13).
#include "bench/mode_compare.hpp"

using namespace bgp;

int main(int argc, char** argv) {
  const auto args = bench::HarnessArgs::parse(argc, argv, /*nodes=*/4,
                                              nas::ProblemClass::kA);
  bench::banner("Figure 14", "MFLOPS per chip, VNM vs SMP-1",
                "~2.5x more MFLOPS per chip with all four cores (the paper's "
                "evidence that VNM sharply increases resource utilization)");

  const auto pairs = bench::run_mode_comparison(args.nodes, args.cls);
  bench::Table t({"app", "VNM MFLOPS/chip", "SMP MFLOPS/chip", "ratio",
                  "verified"});
  double ratio_sum = 0;
  bool all_ok = true;
  for (const auto& mp : pairs) {
    const double ratio = mp.vnm.record.mflops_per_node /
                         std::max(1.0, mp.smp.record.mflops_per_node);
    ratio_sum += ratio;
    all_ok = all_ok && mp.vnm.result.verified && mp.smp.result.verified;
    t.row({std::string(nas::name(mp.bench)),
           bench::fmt_double(mp.vnm.record.mflops_per_node, "%.1f"),
           bench::fmt_double(mp.smp.record.mflops_per_node, "%.1f"),
           bench::fmt_double(ratio),
           mp.vnm.result.verified && mp.smp.result.verified ? "yes" : "NO"});
  }
  t.print();
  const double avg = ratio_sum / pairs.size();
  std::printf("\naverage MFLOPS-per-chip ratio = %.2f (paper: ~2.5x; "
              "bounded by 4x, reduced by the Figure 13 penalty)\n", avg);
  const bool shape_ok = avg > 2.0 && avg <= 4.4;
  return (all_ok && shape_ok) ? 0 : 1;
}
