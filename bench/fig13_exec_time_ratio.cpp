// Figure 13: increase in per-node execution time when using all four
// processors of a chip (VNM) instead of one (SMP/1, L3 = 2 MB), at equal
// process counts — the on-chip resource-sharing penalty.
#include "bench/mode_compare.hpp"

using namespace bgp;

int main(int argc, char** argv) {
  const auto args = bench::HarnessArgs::parse(argc, argv, /*nodes=*/4,
                                              nas::ProblemClass::kA);
  bench::banner("Figure 13", "Execution-time increase per node, VNM vs SMP-1",
                "sharing the chip costs ~30% on average — far below the 4x "
                "worst case, confirming the CMP architecture's effectiveness");

  const auto pairs = bench::run_mode_comparison(args.nodes, args.cls);
  bench::Table t({"app", "VNM Mcyc", "SMP Mcyc", "increase", "verified"});
  double sum_incr = 0;
  bool all_ok = true;
  for (const auto& mp : pairs) {
    const double ratio =
        mp.vnm.record.exec_cycles / std::max(1.0, mp.smp.record.exec_cycles);
    sum_incr += ratio - 1.0;
    all_ok = all_ok && mp.vnm.result.verified && mp.smp.result.verified;
    t.row({std::string(nas::name(mp.bench)),
           bench::fmt_double(mp.vnm.record.exec_cycles / 1e6),
           bench::fmt_double(mp.smp.record.exec_cycles / 1e6),
           strfmt("%+.1f%%", 100.0 * (ratio - 1.0)),
           mp.vnm.result.verified && mp.smp.result.verified ? "yes" : "NO"});
  }
  t.print();
  const double avg = 100.0 * sum_incr / pairs.size();
  std::printf("\naverage increase = %+.1f%% (paper: ~30%%; compute-bound "
              "apps sit near 0%%, memory-bound ones carry the penalty)\n",
              avg);
  // Shape: the penalty must be far below the 300% worst case of packing
  // four processes per chip.
  const bool shape_ok = avg < 100.0;
  return (all_ok && shape_ok) ? 0 : 1;
}
