// Little-endian binary serialization helpers for the per-node dump files
// written by the interface library and read by the post-processing tools.
#pragma once

#include <cstring>
#include <filesystem>
#include <fstream>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace bgp {

/// Error thrown on malformed or truncated binary input.
class BinIoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Appends little-endian scalars and byte ranges to an in-memory buffer.
class BinaryWriter {
 public:
  template <typename T>
  void put(T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto old = buf_.size();
    buf_.resize(old + sizeof(T));
    std::memcpy(buf_.data() + old, &v, sizeof(T));
  }

  void put_bytes(std::span<const std::byte> bytes) {
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  }

  void put_string(const std::string& s) {
    put<u32>(static_cast<u32>(s.size()));
    const auto* p = reinterpret_cast<const std::byte*>(s.data());
    put_bytes({p, s.size()});
  }

  [[nodiscard]] const std::vector<std::byte>& buffer() const noexcept {
    return buf_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }

  /// Write the accumulated buffer to `path`, replacing any existing file.
  void write_file(const std::filesystem::path& path) const;

 private:
  std::vector<std::byte> buf_;
};

/// Reads little-endian scalars from a byte buffer with bounds checking.
class BinaryReader {
 public:
  explicit BinaryReader(std::span<const std::byte> data) noexcept
      : data_(data) {}

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    if (pos_ + sizeof(T) > data_.size()) {
      throw BinIoError("binary input truncated");
    }
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  std::string get_string() {
    const u32 n = get<u32>();
    if (pos_ + n > data_.size()) {
      throw BinIoError("binary input truncated (string)");
    }
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }
  /// Raw input bytes [begin, end) — e.g. to checksum an already-read span.
  [[nodiscard]] std::span<const std::byte> window(std::size_t begin,
                                                  std::size_t end) const {
    if (begin > end || end > data_.size()) {
      throw BinIoError("binary input window out of range");
    }
    return data_.subspan(begin, end - begin);
  }
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }
  [[nodiscard]] bool at_end() const noexcept { return pos_ == data_.size(); }

 private:
  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

/// Read a whole file into a byte vector; throws BinIoError on failure.
std::vector<std::byte> read_file_bytes(const std::filesystem::path& path);

}  // namespace bgp
