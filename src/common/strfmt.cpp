#include "common/strfmt.hpp"

#include <cstdio>
#include <vector>

namespace bgp {

std::string vstrfmt(const char* fmt, std::va_list ap) {
  std::va_list ap2;
  va_copy(ap2, ap);
  const int n = std::vsnprintf(nullptr, 0, fmt, ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

std::string strfmt(const char* fmt, ...) {
  std::va_list ap;
  va_start(ap, fmt);
  std::string out = vstrfmt(fmt, ap);
  va_end(ap);
  return out;
}

std::string human_bytes(double bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  int u = 0;
  while (bytes >= 1024.0 && u < 4) {
    bytes /= 1024.0;
    ++u;
  }
  return strfmt("%.1f %s", bytes, kUnits[u]);
}

}  // namespace bgp
