#include "common/log.hpp"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/strfmt.hpp"

namespace bgp {
namespace {

LogLevel initial_level() {
  if (const char* env = std::getenv("BGP_LOG")) {
    if (!std::strcmp(env, "debug")) return LogLevel::kDebug;
    if (!std::strcmp(env, "info")) return LogLevel::kInfo;
    if (!std::strcmp(env, "warn")) return LogLevel::kWarn;
    if (!std::strcmp(env, "error")) return LogLevel::kError;
    if (!std::strcmp(env, "off")) return LogLevel::kOff;
  }
  return LogLevel::kWarn;
}

std::atomic<LogLevel> g_level{initial_level()};

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

void vlog(LogLevel level, const char* fmt, std::va_list ap) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  const std::string body = vstrfmt(fmt, ap);
  std::fprintf(stderr, "[bgp:%s] %s\n", level_tag(level), body.c_str());
}

}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return g_level.load(std::memory_order_relaxed);
}

void log_message(LogLevel level, const std::string& msg) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  std::fprintf(stderr, "[bgp:%s] %s\n", level_tag(level), msg.c_str());
}

#define BGP_DEFINE_LOG_FN(name, level)     \
  void name(const char* fmt, ...) {        \
    std::va_list ap;                       \
    va_start(ap, fmt);                     \
    vlog(level, fmt, ap);                  \
    va_end(ap);                            \
  }

BGP_DEFINE_LOG_FN(log_debug, LogLevel::kDebug)
BGP_DEFINE_LOG_FN(log_info, LogLevel::kInfo)
BGP_DEFINE_LOG_FN(log_warn, LogLevel::kWarn)
BGP_DEFINE_LOG_FN(log_error, LogLevel::kError)

#undef BGP_DEFINE_LOG_FN

}  // namespace bgp
