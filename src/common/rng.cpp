#include "common/rng.hpp"

#include <cmath>

namespace bgp {
namespace {

// Constants from the NAS randlc: r23 = 2^-23, t23 = 2^23, r46, t46.
constexpr double r23 = 1.0 / 8388608.0;
constexpr double t23 = 8388608.0;
constexpr double r46 = r23 * r23;
constexpr double t46 = t23 * t23;

// One randlc step: returns the uniform deviate and updates x in place.
double randlc_step(double& x, double a) noexcept {
  // Break a and x into two 23-bit halves and carry out the 46-bit product.
  const double t1a = r23 * a;
  const double a1 = static_cast<double>(static_cast<i64>(t1a));
  const double a2 = a - t23 * a1;

  const double t1x = r23 * x;
  const double x1 = static_cast<double>(static_cast<i64>(t1x));
  const double x2 = x - t23 * x1;

  const double t1 = a1 * x2 + a2 * x1;
  const double t2 = static_cast<double>(static_cast<i64>(r23 * t1));
  const double z = t1 - t23 * t2;
  const double t3 = t23 * z + a2 * x2;
  const double t4 = static_cast<double>(static_cast<i64>(r46 * t3));
  x = t3 - t46 * t4;
  return r46 * x;
}

}  // namespace

NasRng::NasRng(double seed, double a) noexcept : x_(seed), a_(a) {}

double NasRng::next() noexcept { return randlc_step(x_, a_); }

double NasRng::jump(double seed, double a, u64 exp) noexcept {
  // Compute a^exp mod 2^46 by binary exponentiation, applying it to seed.
  double x = seed;
  double t = a;
  while (exp != 0) {
    if (exp & 1ull) {
      randlc_step(x, t);  // x <- t*x
    }
    double tt = t;
    randlc_step(t, tt);  // t <- t*t
    exp >>= 1;
  }
  return x;
}

Xoshiro256pp::Xoshiro256pp(u64 seed) noexcept {
  // SplitMix64 expansion of the seed into four lanes.
  u64 z = seed;
  for (auto& lane : s_) {
    z += 0x9E3779B97F4A7C15ull;
    u64 w = z;
    w = (w ^ (w >> 30)) * 0xBF58476D1CE4E5B9ull;
    w = (w ^ (w >> 27)) * 0x94D049BB133111EBull;
    lane = w ^ (w >> 31);
  }
}

u64 Xoshiro256pp::next() noexcept {
  auto rotl = [](u64 v, int k) { return (v << k) | (v >> (64 - k)); };
  const u64 result = rotl(s_[0] + s_[3], 23) + s_[0];
  const u64 t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Xoshiro256pp::next_double() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

u64 Xoshiro256pp::next_below(u64 bound) noexcept {
  if (bound == 0) return 0;
  // Rejection sampling on the top bits to avoid modulo bias.
  const u64 threshold = (0ull - bound) % bound;
  for (;;) {
    const u64 r = next();
    if (r >= threshold) return r % bound;
  }
}

}  // namespace bgp
