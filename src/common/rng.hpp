// Random number generators used by the workload models.
//
// NasRng implements the NAS Parallel Benchmarks linear congruential generator
// (the `randlc` routine): x_{k+1} = a * x_k mod 2^46 with a = 5^13, producing
// uniform doubles in (0,1). EP depends on its exact sequence and on the
// jump-ahead (`ipow46`) used to give each rank an independent subsequence.
//
// Xoshiro256pp is a fast general-purpose generator used where reproducibility
// against NAS semantics is not required (e.g. IS key generation, address
// stream perturbation).
#pragma once

#include <array>

#include "common/types.hpp"

namespace bgp {

/// NAS Parallel Benchmarks pseudorandom generator (46-bit LCG).
class NasRng {
 public:
  /// Default multiplier a = 5^13 and the EP/CG seed from the NPB reports.
  static constexpr double kDefaultA = 1220703125.0;  // 5^13
  static constexpr double kDefaultSeed = 271828183.0;

  explicit NasRng(double seed = kDefaultSeed, double a = kDefaultA) noexcept;

  /// Next uniform double in (0,1); advances the state by one step.
  double next() noexcept;

  /// Current raw state x (an integer value stored in a double, < 2^46).
  [[nodiscard]] double state() const noexcept { return x_; }

  /// Jump the seed forward: returns a^exp mod 2^46 applied to `seed`,
  /// i.e. the state after `exp` calls to next() starting from `seed`.
  static double jump(double seed, double a, u64 exp) noexcept;

  /// Re-seed in place.
  void seed(double s) noexcept { x_ = s; }

 private:
  double x_;
  double a_;
};

/// xoshiro256++ by Blackman & Vigna; public-domain algorithm, reimplemented.
class Xoshiro256pp {
 public:
  explicit Xoshiro256pp(u64 seed = 0x9E3779B97F4A7C15ull) noexcept;

  u64 next() noexcept;

  /// Uniform double in [0,1).
  double next_double() noexcept;

  /// Uniform integer in [0, bound) without modulo bias for small bounds.
  u64 next_below(u64 bound) noexcept;

 private:
  std::array<u64, 4> s_{};
};

}  // namespace bgp
