// Minimal printf-style string formatting (GCC 12 lacks <format>).
#pragma once

#include <cstdarg>
#include <string>

namespace bgp {

/// printf-style formatting into a std::string.
[[gnu::format(printf, 1, 2)]] std::string strfmt(const char* fmt, ...);

/// vprintf-style formatting into a std::string.
std::string vstrfmt(const char* fmt, std::va_list ap);

/// Human-readable byte count, e.g. "4.0 MiB".
std::string human_bytes(double bytes);

}  // namespace bgp
