#include "common/crc.hpp"

#include <array>

namespace bgp {

namespace {

constexpr std::array<u32, 256> make_table() {
  std::array<u32, 256> table{};
  for (u32 i = 0; i < 256; ++i) {
    u32 c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<u32, 256> kTable = make_table();

}  // namespace

u32 crc32(std::span<const std::byte> data, u32 prior) noexcept {
  u32 c = ~prior;
  for (const std::byte b : data) {
    c = kTable[(c ^ static_cast<u32>(b)) & 0xFFu] ^ (c >> 8);
  }
  return ~c;
}

}  // namespace bgp
