// Minimal leveled logger. Quiet by default so benchmark output stays clean;
// raise the level via set_log_level or the BGP_LOG environment variable.
#pragma once

#include <string>

namespace bgp {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

void log_message(LogLevel level, const std::string& msg);

[[gnu::format(printf, 1, 2)]] void log_debug(const char* fmt, ...);
[[gnu::format(printf, 1, 2)]] void log_info(const char* fmt, ...);
[[gnu::format(printf, 1, 2)]] void log_warn(const char* fmt, ...);
[[gnu::format(printf, 1, 2)]] void log_error(const char* fmt, ...);

}  // namespace bgp
