// Fundamental type aliases and small strong types shared across the library.
#pragma once

#include <cstdint>
#include <cstddef>

namespace bgp {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/// Simulated machine cycles (PPC450 core clock, 850 MHz on Blue Gene/P).
using cycles_t = u64;

/// Simulated physical byte address.
using addr_t = u64;

/// Blue Gene/P core clock in Hz; used to convert cycle counts to seconds.
inline constexpr double kCoreClockHz = 850.0e6;

/// Convert a cycle count to seconds of simulated time.
constexpr double cycles_to_seconds(cycles_t c) noexcept {
  return static_cast<double>(c) / kCoreClockHz;
}

/// Bytes helpers.
inline constexpr u64 KiB = 1024;
inline constexpr u64 MiB = 1024 * KiB;

}  // namespace bgp
