#include "common/csv.hpp"

#include <fstream>
#include <stdexcept>

namespace bgp {

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) {
    return cell;
  }
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::append_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) text_ += ',';
    text_ += escape(cells[i]);
  }
  text_ += '\n';
  ++rows_;
}

void CsvWriter::header(const std::vector<std::string>& cols) {
  append_row(cols);
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  append_row(cells);
}

void CsvWriter::write_file(const std::filesystem::path& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw std::runtime_error("cannot open for write: " + path.string());
  }
  out << text_;
}

}  // namespace bgp
