#include "common/binio.hpp"

namespace bgp {

void BinaryWriter::write_file(const std::filesystem::path& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw BinIoError("cannot open for write: " + path.string());
  }
  out.write(reinterpret_cast<const char*>(buf_.data()),
            static_cast<std::streamsize>(buf_.size()));
  if (!out) {
    throw BinIoError("short write: " + path.string());
  }
}

std::vector<std::byte> read_file_bytes(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    throw BinIoError("cannot open for read: " + path.string());
  }
  const auto size = in.tellg();
  in.seekg(0);
  std::vector<std::byte> buf(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(buf.data()),
          static_cast<std::streamsize>(buf.size()));
  if (!in) {
    throw BinIoError("short read: " + path.string());
  }
  return buf;
}

}  // namespace bgp
