// CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320) used to checksum the
// sections of the on-disk dump format so bit rot and torn writes are
// detected at load time instead of silently skewing the mined statistics.
#pragma once

#include <cstddef>
#include <span>

#include "common/types.hpp"

namespace bgp {

/// CRC32 of `data`. Pass a previous return value as `prior` to continue a
/// checksum across multiple buffers: crc32(ab) == crc32(b, crc32(a)).
[[nodiscard]] u32 crc32(std::span<const std::byte> data, u32 prior = 0) noexcept;

}  // namespace bgp
