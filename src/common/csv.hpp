// CSV emission for the post-processing tools (paper §IV: metrics are printed
// as .csv records usable with Excel / OpenOffice Calc).
#pragma once

#include <filesystem>
#include <string>
#include <vector>

namespace bgp {

/// Builds a CSV document row by row with RFC-4180 quoting.
class CsvWriter {
 public:
  void header(const std::vector<std::string>& cols);
  void row(const std::vector<std::string>& cells);

  [[nodiscard]] const std::string& text() const noexcept { return text_; }
  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }

  void write_file(const std::filesystem::path& path) const;

  /// Quote a cell if it contains a comma, quote or newline.
  static std::string escape(const std::string& cell);

 private:
  void append_row(const std::vector<std::string>& cells);

  std::string text_;
  std::size_t rows_ = 0;
};

}  // namespace bgp
