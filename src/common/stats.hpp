// Streaming statistics used by the post-processing tools.
#pragma once

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/types.hpp"

namespace bgp {

/// Welford-style running min/max/mean/variance over a stream of doubles.
class RunningStats {
 public:
  void add(double v) noexcept {
    ++n_;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
    const double delta = v - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (v - mean_);
  }

  [[nodiscard]] u64 count() const noexcept { return n_; }
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double sum() const noexcept {
    return mean_ * static_cast<double>(n_);
  }
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }

 private:
  u64 n_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace bgp
