#include "fault/fault.hpp"

#include <algorithm>

#include "common/rng.hpp"
#include "common/strfmt.hpp"

namespace bgp::fault {

const char* to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kNodeDeath: return "node-death";
    case FaultKind::kDumpWriteError: return "dump-write-error";
    case FaultKind::kDumpTruncate: return "dump-truncate";
    case FaultKind::kDumpBitFlip: return "dump-bit-flip";
    case FaultKind::kCounterWrap: return "counter-wrap";
  }
  return "unknown";
}

std::string describe(const FaultEvent& e) {
  switch (e.kind) {
    case FaultKind::kNodeDeath:
      return strfmt("node-death: node %u at cycle %llu", e.node,
                    static_cast<unsigned long long>(e.cycle));
    case FaultKind::kDumpWriteError:
      return e.attempts == kAlwaysFail
                 ? strfmt("dump-write-error: node %u, every attempt", e.node)
                 : strfmt("dump-write-error: node %u, %u attempts", e.node,
                          e.attempts);
    case FaultKind::kDumpTruncate:
      return strfmt("dump-truncate: node %u, keep %u bytes", e.node,
                    e.keep_bytes);
    case FaultKind::kDumpBitFlip:
      return strfmt("dump-bit-flip: node %u, byte %u bit %u", e.node,
                    e.byte_offset, e.bit);
    case FaultKind::kCounterWrap:
      return strfmt("counter-wrap: node %u, counter %u, margin %u", e.node,
                    e.counter, e.margin);
  }
  return "unknown fault";
}

FaultPlan FaultPlan::random(u64 seed, unsigned num_nodes,
                            const FaultSpec& spec) {
  FaultPlan plan;
  if (num_nodes == 0) return plan;
  Xoshiro256pp rng(seed ^ 0xB1CEC0DEF4017ull);

  // Deaths first: distinct victims, so the dump faults below can target
  // nodes that will actually write a dump.
  std::vector<u32> dead;
  const unsigned deaths = std::min(spec.node_deaths, num_nodes);
  while (dead.size() < deaths) {
    const u32 victim = static_cast<u32>(rng.next_below(num_nodes));
    if (std::find(dead.begin(), dead.end(), victim) != dead.end()) continue;
    dead.push_back(victim);
    FaultEvent e;
    e.kind = FaultKind::kNodeDeath;
    e.node = victim;
    e.cycle = 1 + rng.next_below(std::max<cycles_t>(spec.death_window, 1));
    plan.add(e);
  }

  // Secondary deaths land strictly after every primary one, in a window of
  // the same width: when the FT layer reacts to the first wave it is mid-
  // recovery as these strike. Same stream, distinct victims.
  cycles_t last_primary = 0;
  for (const FaultEvent& e : plan.events()) {
    last_primary = std::max(last_primary, e.cycle);
  }
  const unsigned secondary =
      std::min<unsigned>(spec.deaths_during_recovery,
                         num_nodes - static_cast<unsigned>(dead.size()));
  while (dead.size() < deaths + secondary) {
    const u32 victim = static_cast<u32>(rng.next_below(num_nodes));
    if (std::find(dead.begin(), dead.end(), victim) != dead.end()) continue;
    dead.push_back(victim);
    FaultEvent e;
    e.kind = FaultKind::kNodeDeath;
    e.node = victim;
    e.cycle = last_primary + 1 +
              rng.next_below(std::max<cycles_t>(spec.death_window, 1));
    plan.add(e);
  }

  std::vector<u32> survivors;
  for (u32 n = 0; n < num_nodes; ++n) {
    if (std::find(dead.begin(), dead.end(), n) == dead.end()) {
      survivors.push_back(n);
    }
  }
  auto survivor = [&]() -> u32 {
    return survivors.empty()
               ? static_cast<u32>(rng.next_below(num_nodes))
               : survivors[rng.next_below(survivors.size())];
  };

  for (unsigned i = 0; i < spec.dump_truncates; ++i) {
    FaultEvent e;
    e.kind = FaultKind::kDumpTruncate;
    e.node = survivor();
    // Keep a plausible prefix; the apply step clamps to the real size.
    e.keep_bytes = static_cast<u32>(8 + rng.next_below(2048));
    plan.add(e);
  }
  for (unsigned i = 0; i < spec.dump_bit_flips; ++i) {
    FaultEvent e;
    e.kind = FaultKind::kDumpBitFlip;
    e.node = survivor();
    e.byte_offset = static_cast<u32>(rng.next_below(1u << 20));
    e.bit = static_cast<u8>(rng.next_below(8));
    plan.add(e);
  }
  for (unsigned i = 0; i < spec.transient_write_errors; ++i) {
    FaultEvent e;
    e.kind = FaultKind::kDumpWriteError;
    e.node = survivor();
    e.attempts = static_cast<u32>(1 + rng.next_below(2));
    plan.add(e);
  }
  for (unsigned i = 0; i < spec.lost_dumps; ++i) {
    FaultEvent e;
    e.kind = FaultKind::kDumpWriteError;
    e.node = survivor();
    e.attempts = kAlwaysFail;
    plan.add(e);
  }
  for (unsigned i = 0; i < spec.counter_wraps; ++i) {
    FaultEvent e;
    e.kind = FaultKind::kCounterWrap;
    e.node = survivor();
    e.counter = spec.wrap_counter == FaultSpec::kAnyCounter
                    ? static_cast<u32>(rng.next_below(256))
                    : spec.wrap_counter;
    e.margin = static_cast<u32>(1 + rng.next_below(4096));
    plan.add(e);
  }
  return plan;
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
  for (const FaultEvent& e : plan_.events()) {
    if (e.kind != FaultKind::kDumpWriteError) continue;
    u64& left = write_failures_left_[e.node];
    if (e.attempts == kAlwaysFail || left == kAlwaysFail) {
      left = kAlwaysFail;
    } else {
      left += e.attempts;
    }
  }
}

std::optional<cycles_t> FaultInjector::death_cycle(u32 node) const {
  std::optional<cycles_t> first;
  for (const FaultEvent& e : plan_.events()) {
    if (e.kind != FaultKind::kNodeDeath || e.node != node) continue;
    if (!first || e.cycle < *first) first = e.cycle;
  }
  return first;
}

std::vector<FaultInjector::CounterWrap> FaultInjector::counter_wraps(
    u32 node) const {
  std::vector<CounterWrap> wraps;
  for (const FaultEvent& e : plan_.events()) {
    if (e.kind != FaultKind::kCounterWrap || e.node != node) continue;
    CounterWrap w;
    w.counter = e.counter;
    w.preload = (u64{1} << 32) - std::max<u64>(e.margin, 1);
    wraps.push_back(w);
  }
  return wraps;
}

std::vector<std::string> FaultInjector::corrupt_dump(
    u32 node, std::vector<std::byte>& bytes) {
  std::vector<std::string> applied;
  if (bytes.empty()) return applied;
  for (const FaultEvent& e : plan_.events()) {
    if (e.node != node) continue;
    if (e.kind == FaultKind::kDumpTruncate) {
      const std::size_t keep =
          std::min<std::size_t>(e.keep_bytes, bytes.size());
      applied.push_back(strfmt("truncated node %u dump to %zu of %zu bytes",
                               node, keep, bytes.size()));
      bytes.resize(keep);
      if (bytes.empty()) break;
    } else if (e.kind == FaultKind::kDumpBitFlip) {
      const std::size_t off = e.byte_offset % bytes.size();
      bytes[off] ^= std::byte{static_cast<unsigned char>(1u << (e.bit % 8))};
      applied.push_back(strfmt("flipped bit %u of byte %zu in node %u dump",
                               e.bit % 8, off, node));
    }
  }
  log_.insert(log_.end(), applied.begin(), applied.end());
  return applied;
}

bool FaultInjector::next_write_fails(u32 node) {
  const auto it = write_failures_left_.find(node);
  if (it == write_failures_left_.end() || it->second == 0) return false;
  if (it->second != kAlwaysFail) --it->second;
  log_.push_back(strfmt("failed a dump write attempt on node %u", node));
  return true;
}

// ---------------------------------------------------------------------------
// Daemon-surface faults.

const char* to_string(DaemonFaultKind kind) noexcept {
  switch (kind) {
    case DaemonFaultKind::kJournalTorn: return "journal-torn";
    case DaemonFaultKind::kJournalError: return "journal-error";
    case DaemonFaultKind::kJournalEintr: return "journal-eintr";
    case DaemonFaultKind::kSnapshotTorn: return "snapshot-torn";
    case DaemonFaultKind::kSocketReset: return "socket-reset";
  }
  return "unknown";
}

std::string describe(const DaemonFaultEvent& e) {
  switch (e.kind) {
    case DaemonFaultKind::kJournalTorn:
      return strfmt("journal-torn: append %u keeps %u bytes", e.after,
                    e.keep_bytes);
    case DaemonFaultKind::kJournalError:
      return e.persistent
                 ? strfmt("journal-error: append %u, persistent", e.after)
                 : strfmt("journal-error: append %u", e.after);
    case DaemonFaultKind::kJournalEintr:
      return strfmt("journal-eintr: append %u", e.after);
    case DaemonFaultKind::kSnapshotTorn:
      return strfmt("snapshot-torn: publication %u", e.after);
    case DaemonFaultKind::kSocketReset:
      return strfmt("socket-reset: response %u", e.after);
  }
  return "unknown daemon fault";
}

DaemonFaultInjector::DaemonFaultInjector(std::vector<DaemonFaultEvent> plan)
    : plan_(std::move(plan)) {}

DaemonFaultInjector DaemonFaultInjector::random(u64 seed,
                                                const DaemonFaultSpec& spec) {
  Xoshiro256pp rng(seed ^ 0xDAE40FF417Bull);
  const u32 window = std::max<u32>(spec.window, 1);
  std::vector<DaemonFaultEvent> plan;
  auto add = [&](DaemonFaultKind kind, unsigned count) {
    for (unsigned i = 0; i < count; ++i) {
      DaemonFaultEvent e;
      e.kind = kind;
      e.after = static_cast<u32>(rng.next_below(window));
      if (kind == DaemonFaultKind::kJournalTorn) {
        e.keep_bytes = static_cast<u32>(rng.next_below(spec.torn_keep_max + 1));
      }
      plan.push_back(e);
    }
  };
  add(DaemonFaultKind::kJournalTorn, spec.journal_torn);
  add(DaemonFaultKind::kJournalError, spec.journal_errors);
  add(DaemonFaultKind::kJournalEintr, spec.journal_eintr);
  add(DaemonFaultKind::kSnapshotTorn, spec.snapshot_torn);
  add(DaemonFaultKind::kSocketReset, spec.socket_resets);
  if (spec.journal_enospc_sticky) {
    DaemonFaultEvent e;
    e.kind = DaemonFaultKind::kJournalError;
    e.after = static_cast<u32>(rng.next_below(window));
    e.persistent = true;
    plan.push_back(e);
  }
  return DaemonFaultInjector(std::move(plan));
}

DaemonFaultInjector::JournalFault DaemonFaultInjector::next_journal_append() {
  std::lock_guard<std::mutex> lock(mu_);
  JournalFault f;
  if (journal_stuck_) {
    f.kind = JournalFault::Kind::kError;
    f.persistent = true;
    return f;  // latched: logged when it first fired
  }
  const u64 ordinal = journal_ops_++;
  // Priority when several events share an ordinal: a persistent error beats
  // everything (the disk is full), then torn, then transient error, EINTR.
  const DaemonFaultEvent* hit = nullptr;
  for (const DaemonFaultEvent& e : plan_) {
    if (e.after != ordinal) continue;
    switch (e.kind) {
      case DaemonFaultKind::kJournalError:
        if (e.persistent) {
          hit = &e;
        } else if (!hit || hit->kind == DaemonFaultKind::kJournalEintr) {
          hit = &e;
        }
        break;
      case DaemonFaultKind::kJournalTorn:
        if (!hit || !(hit->kind == DaemonFaultKind::kJournalError &&
                      hit->persistent)) {
          hit = &e;
        }
        break;
      case DaemonFaultKind::kJournalEintr:
        if (!hit) hit = &e;
        break;
      default: break;
    }
  }
  if (!hit) return f;
  log_.push_back(describe(*hit));
  switch (hit->kind) {
    case DaemonFaultKind::kJournalTorn:
      f.kind = JournalFault::Kind::kTorn;
      f.keep_bytes = hit->keep_bytes;
      break;
    case DaemonFaultKind::kJournalError:
      f.kind = JournalFault::Kind::kError;
      f.persistent = hit->persistent;
      if (hit->persistent) journal_stuck_ = true;
      break;
    case DaemonFaultKind::kJournalEintr:
      f.kind = JournalFault::Kind::kEintr;
      break;
    default: break;
  }
  return f;
}

bool DaemonFaultInjector::next_snapshot_publish_torn() {
  std::lock_guard<std::mutex> lock(mu_);
  const u64 ordinal = snapshot_ops_++;
  for (const DaemonFaultEvent& e : plan_) {
    if (e.kind != DaemonFaultKind::kSnapshotTorn || e.after != ordinal) {
      continue;
    }
    log_.push_back(describe(e));
    return true;
  }
  return false;
}

bool DaemonFaultInjector::next_control_response_reset() {
  std::lock_guard<std::mutex> lock(mu_);
  const u64 ordinal = socket_ops_++;
  for (const DaemonFaultEvent& e : plan_) {
    if (e.kind != DaemonFaultKind::kSocketReset || e.after != ordinal) {
      continue;
    }
    log_.push_back(describe(e));
    return true;
  }
  return false;
}

std::vector<std::string> DaemonFaultInjector::injected_log() const {
  std::lock_guard<std::mutex> lock(mu_);
  return log_;
}

}  // namespace bgp::fault
