// Deterministic, seedable fault injection for the collect->dump->load->mine
// pipeline. On a real 40k-node machine truncated files, dropped nodes and
// wrapped counters are facts of life (the paper's §IV validates every dump
// for record counts, lengths and value ranges before mining); this module
// lets tests and harnesses schedule those failures reproducibly and assert
// that the pipeline degrades instead of aborting.
//
// A FaultPlan is a list of concrete scheduled events (built explicitly or
// generated from a seed); a FaultInjector is the runtime oracle the
// instrumented layers query:
//   * rt::Machine asks death_cycle() and unwinds a node's ranks at that time
//   * pc::NodeMonitor asks counter_wraps() and narrows the victim counters
//   * pc::Session asks corrupt_dump() / next_write_fails() around the
//     atomic dump write
// The same (seed, node count, spec) always produces the same plan, and the
// simulator's scheduling is deterministic, so a faulted run is exactly
// reproducible from its seed.
#pragma once

#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace bgp::fault {

enum class FaultKind : u8 {
  kNodeDeath,       ///< every rank of the node aborts at `cycle`
  kDumpWriteError,  ///< the next `attempts` dump writes on the node fail
  kDumpTruncate,    ///< dump silently loses its tail (torn write)
  kDumpBitFlip,     ///< one bit of the dump bytes flips
  kCounterWrap,     ///< a UPC counter behaves as 32-bit and wraps early
};

[[nodiscard]] const char* to_string(FaultKind kind) noexcept;

struct FaultEvent {
  FaultKind kind{};
  u32 node = 0;
  cycles_t cycle = 0;    ///< kNodeDeath: first cycle at which the node is dead
  u32 counter = 0;       ///< kCounterWrap: physical counter index
  u32 margin = 256;      ///< kCounterWrap: counts left before the 32-bit wrap
  u32 keep_bytes = 0;    ///< kDumpTruncate: bytes that survive
  u32 byte_offset = 0;   ///< kDumpBitFlip: victim byte (mod dump size)
  u8 bit = 0;            ///< kDumpBitFlip: victim bit within the byte
  u32 attempts = 1;      ///< kDumpWriteError: failing attempts (kAlwaysFail)
};

/// kDumpWriteError attempt count that outlasts any retry budget: the dump
/// is lost, not delayed.
inline constexpr u32 kAlwaysFail = ~u32{0};

[[nodiscard]] std::string describe(const FaultEvent& e);

/// Knobs for FaultPlan::random().
struct FaultSpec {
  unsigned node_deaths = 0;
  unsigned dump_truncates = 0;
  unsigned dump_bit_flips = 0;
  unsigned transient_write_errors = 0;  ///< recoverable within the retry budget
  unsigned lost_dumps = 0;              ///< persistent write failure
  unsigned counter_wraps = 0;
  /// Extra deaths scheduled after every primary death, inside the window a
  /// survivor-recovery protocol (revoke/agree/shrink) would be running in.
  /// Exercises the FT layer's handling of failures during recovery itself
  /// (e.g. the shrink coordinator dying mid-agreement).
  unsigned deaths_during_recovery = 0;
  /// Deaths are scheduled uniformly in [1, death_window].
  cycles_t death_window = 200'000;
  /// Physical counter narrowed by kCounterWrap events; kAnyCounter lets the
  /// generator pick one (which may be a counter the workload never touches —
  /// a latent fault).
  u32 wrap_counter = kAnyCounter;
  static constexpr u32 kAnyCounter = ~u32{0};
};

class FaultPlan {
 public:
  FaultPlan() = default;

  FaultPlan& add(const FaultEvent& e) {
    events_.push_back(e);
    return *this;
  }

  [[nodiscard]] const std::vector<FaultEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }

  /// Deterministic plan generation: identical (seed, num_nodes, spec) yield
  /// identical plans. Victim nodes for deaths are drawn first; dump faults
  /// are assigned to surviving nodes (a dead node writes nothing to break).
  [[nodiscard]] static FaultPlan random(u64 seed, unsigned num_nodes,
                                        const FaultSpec& spec);

 private:
  std::vector<FaultEvent> events_;
};

/// Runtime oracle for one faulted run. Queries are pure functions of the
/// plan except next_write_fails(), which consumes the per-node failure
/// budget, so use a fresh injector per run.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

  /// First cycle at/after which `node` is dead, if a death is scheduled.
  [[nodiscard]] std::optional<cycles_t> death_cycle(u32 node) const;

  struct CounterWrap {
    u32 counter = 0;
    u64 preload = 0;  ///< initial counter value, `margin` counts below 2^32
  };
  /// Counters on `node` that wrap at 32 bits, with their preload values.
  [[nodiscard]] std::vector<CounterWrap> counter_wraps(u32 node) const;

  /// Apply silent corruption (truncation, bit flips) to serialized dump
  /// bytes. Returns a description of every mutation for the injection log.
  std::vector<std::string> corrupt_dump(u32 node,
                                        std::vector<std::byte>& bytes);

  /// Consume one scheduled write failure for `node`, if any remain.
  [[nodiscard]] bool next_write_fails(u32 node);

  /// Everything injected so far, in injection order (for reports/tests).
  [[nodiscard]] const std::vector<std::string>& injected_log() const noexcept {
    return log_;
  }

 private:
  FaultPlan plan_;
  std::unordered_map<u32, u64> write_failures_left_;  ///< per node
  std::vector<std::string> log_;
};

// ---------------------------------------------------------------------------
// Daemon-surface faults.
//
// bgpcd adds failure surfaces the per-run injector above never sees: the
// write-ahead session journal (torn appends, ENOSPC, EINTR), the BGPSNAP
// publisher (a crash mid-publish leaves a slot's seqlock held), and the
// control socket (a connection reset before the response lands). These are
// ordinal-scheduled ("the Nth append"), not cycle-scheduled, because the
// daemon surfaces run on host time, and they are consumed concurrently from
// control and session threads, so the injector is internally locked.

enum class DaemonFaultKind : u8 {
  kJournalTorn,   ///< the Nth journal append persists only a prefix
  kJournalError,  ///< the Nth journal append fails as if ENOSPC
  kJournalEintr,  ///< the Nth journal append is interrupted once (EINTR)
  kSnapshotTorn,  ///< the Nth snapshot publication dies with the seqlock held
  kSocketReset,   ///< the Nth control response is dropped, connection reset
};

[[nodiscard]] const char* to_string(DaemonFaultKind kind) noexcept;

struct DaemonFaultEvent {
  DaemonFaultKind kind{};
  /// Fires on the (after+1)-th operation of its category (0 = first).
  u32 after = 0;
  u32 keep_bytes = 0;      ///< kJournalTorn: frame bytes that reach the disk
  bool persistent = false;  ///< kJournalError: the disk stays full forever
};

[[nodiscard]] std::string describe(const DaemonFaultEvent& e);

/// Knobs for DaemonFaultInjector::random().
struct DaemonFaultSpec {
  unsigned journal_torn = 0;
  unsigned journal_errors = 0;  ///< transient write failures
  unsigned journal_eintr = 0;
  unsigned snapshot_torn = 0;
  unsigned socket_resets = 0;
  bool journal_enospc_sticky = false;  ///< one persistent failure at the end
  /// Ordinals are drawn uniformly from [0, window).
  u32 window = 16;
  /// kJournalTorn keep_bytes drawn from [0, torn_keep_max].
  u32 torn_keep_max = 64;
};

/// Consume-style oracle for one daemon lifetime. Thread-safe: control
/// threads and session threads query it concurrently.
class DaemonFaultInjector {
 public:
  DaemonFaultInjector() = default;
  explicit DaemonFaultInjector(std::vector<DaemonFaultEvent> plan);

  /// Deterministic: identical (seed, spec) yield identical plans.
  [[nodiscard]] static DaemonFaultInjector random(u64 seed,
                                                  const DaemonFaultSpec& spec);

  struct JournalFault {
    enum class Kind : u8 { kNone, kTorn, kError, kEintr };
    Kind kind = Kind::kNone;
    u32 keep_bytes = 0;
    bool persistent = false;
  };
  /// Fault (if any) scheduled for the next journal append. A persistent
  /// kError latches: every later append fails too (the disk stays full).
  [[nodiscard]] JournalFault next_journal_append();

  /// True if the next snapshot publication should die mid-write, leaving
  /// the slot's seqlock odd (a reader must classify this as writer-gone).
  [[nodiscard]] bool next_snapshot_publish_torn();

  /// True if the next control response should be dropped and the
  /// connection reset instead of answered.
  [[nodiscard]] bool next_control_response_reset();

  /// Everything injected so far, in injection order.
  [[nodiscard]] std::vector<std::string> injected_log() const;

 private:
  std::vector<DaemonFaultEvent> plan_;
  u64 journal_ops_ = 0;
  u64 snapshot_ops_ = 0;
  u64 socket_ops_ = 0;
  bool journal_stuck_ = false;  ///< persistent kJournalError latched
  std::vector<std::string> log_;
  mutable std::mutex mu_;
};

}  // namespace bgp::fault
