// Event delivery interface between the hardware models and the UPC unit.
// Every cache / DDR / network model reports through an EventSink so the
// models stay testable in isolation (tests plug in a recording sink).
#pragma once

#include "isa/events.hpp"

namespace bgp::mem {

/// Sentinel meaning "this event is not wired to a counter".
inline constexpr isa::EventId kNoEvent = 0xFFFF;

/// Receiver of hardware event reports (normally the node's UpcUnit).
class EventSink {
 public:
  virtual ~EventSink() = default;
  /// Report `count` occurrences of edge event `id`.
  virtual void event(isa::EventId id, u64 count) = 0;
};

/// Sink that drops everything (for unwired unit tests).
class NullSink final : public EventSink {
 public:
  void event(isa::EventId, u64) override {}
};

/// Helper: emit only when the hook is wired.
inline void emit(EventSink* sink, isa::EventId id, u64 count) {
  if (sink != nullptr && id != kNoEvent && count != 0) {
    sink->event(id, count);
  }
}

}  // namespace bgp::mem
