// Event delivery interface between the hardware models and the UPC unit.
// Every cache / DDR / network model reports through an EventSink so the
// models stay testable in isolation (tests plug in a recording sink).
//
// Two delivery shapes:
//  * event(id, count)       — one edge-event report (the original path).
//  * events(vec, n)         — a batch of reports delivered in one virtual
//    call. Batching is sum-preserving for edge-configured counters (the
//    UPC adds the counts either way), so a batch of per-block events is
//    indistinguishable from the per-instruction stream it replaces except
//    for costing one virtual dispatch instead of n.
#pragma once

#include <cstddef>

#include "isa/events.hpp"

namespace bgp::mem {

/// Sentinel meaning "this event is not wired to a counter".
inline constexpr isa::EventId kNoEvent = 0xFFFF;

/// Receiver of hardware event reports (normally the node's UpcUnit).
class EventSink {
 public:
  virtual ~EventSink() = default;
  /// Report `count` occurrences of edge event `id`.
  virtual void event(isa::EventId id, u64 count) = 0;
  /// Report a batch of edge events in one call. The default forwards each
  /// entry through event() so recording sinks in tests observe the same
  /// stream either way; the UPC sink overrides it to hoist the run/mode
  /// checks out of the loop.
  virtual void events(const isa::EventCount* batch, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      if (batch[i].id != kNoEvent && batch[i].count != 0) {
        event(batch[i].id, batch[i].count);
      }
    }
  }
};

/// Sink that drops everything (for unwired unit tests).
class NullSink final : public EventSink {
 public:
  void event(isa::EventId, u64) override {}
  void events(const isa::EventCount*, std::size_t) override {}
};

/// Helper: emit only when the hook is wired.
inline void emit(EventSink* sink, isa::EventId id, u64 count) {
  if (sink != nullptr && id != kNoEvent && count != 0) {
    sink->event(id, count);
  }
}

/// Fixed-capacity accumulator for the devirtualized cache walk: levels add
/// their counter increments here during a walk and the whole batch is
/// flushed through one events() call at the end. Capacity covers a full
/// miss chain's distinct ids (L1 + L2 + L3 + both DDR controllers + snoop
/// is under 48); a fuller batch self-flushes, so counts are never dropped.
class EventBatch {
 public:
  static constexpr std::size_t kCapacity = 48;

  explicit EventBatch(EventSink* sink) noexcept : sink_(sink) {}

  /// Add `count` to `id`'s pending total. Duplicate ids coalesce via a
  /// tail-first linear scan (a walk re-reports the same few ids per line,
  /// so the match is almost always near the end) — allocation-free.
  void add(isa::EventId id, u64 count) {
    if (id == kNoEvent || count == 0 || sink_ == nullptr) return;
    for (std::size_t i = n_; i-- > 0;) {
      if (ev_[i].id == id) {
        ev_[i].count += count;
        return;
      }
    }
    if (n_ == kCapacity) flush();
    ev_[n_] = {id, count};
    ++n_;
  }

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] const isa::EventCount* data() const noexcept { return ev_; }

  /// Deliver everything accumulated so far and reset.
  void flush() {
    if (n_ == 0) return;
    sink_->events(ev_, n_);
    n_ = 0;
  }

 private:
  EventSink* sink_;
  isa::EventCount ev_[kCapacity];
  std::size_t n_ = 0;
};

}  // namespace bgp::mem
