#include "mem/prefetch.hpp"

namespace bgp::mem {

L2Unit::L2Unit(std::string name, const CacheParams& cache_params,
               const PrefetchParams& pf, MemLevel* next, EventSink* sink,
               const EventIds& events)
    : cache_(std::move(name), cache_params, next, sink,
             CacheEventIds{
                 .read_access = events.read_access,
                 .read_hit = events.read_hit,
                 .read_miss = events.read_miss,
                 .write_access = events.write_access,
                 .write_miss = events.write_miss,
             }),
      pf_(pf),
      next_(next),
      sink_(sink),
      events_(events),
      streams_(pf.streams) {
  miss_history_.fill(kNoLine);
}

void L2Unit::run_ahead(addr_t line, unsigned core, cycles_t now) {
  const u32 line_bytes = cache_.params().line_bytes;
  for (unsigned d = 1; d <= pf_.depth; ++d) {
    const addr_t pf_line = line + d;
    const addr_t pf_addr = pf_line * line_bytes;
    if (cache_.probe(pf_addr)) continue;
    // The prefetch consumes downstream bandwidth; a demand arriving before
    // the fill completes pays the residual latency.
    const AccessResult fill =
        next_->access(pf_addr, AccessType::kRead, core, now);
    cache_.install(pf_addr, core, now);
    // Bound the tracking map: lines evicted before being demanded would
    // otherwise accumulate forever.
    if (pending_prefetched_.size() > 8192) pending_prefetched_.clear();
    pending_prefetched_[pf_line] = now + fill.latency;
    ++pf_stats_.issued;
    emit(sink_, events_.prefetch_issued, 1);
  }
}

AccessResult L2Unit::access(addr_t addr, AccessType type, unsigned core,
                            cycles_t now) {
  const u32 line_bytes = cache_.params().line_bytes;
  const addr_t line = addr / line_bytes;

  if (type == AccessType::kRead) {
    cycles_t prefetch_ready = 0;
    bool was_prefetched = false;
    if (const auto it = pending_prefetched_.find(line);
        it != pending_prefetched_.end()) {
      was_prefetched = true;
      prefetch_ready = it->second;
      pending_prefetched_.erase(it);
    }
    const bool hit_before = cache_.probe(addr);
    AccessResult r = cache_.access(addr, type, core, now);
    if (hit_before) {
      if (was_prefetched) {
        ++pf_stats_.hits;
        emit(sink_, events_.prefetch_hit, 1);
        // In-flight fill: the demand pays the remaining latency.
        if (prefetch_ready > now) r.latency += prefetch_ready - now;
        // A confirmed prefetch hit keeps the stream running ahead.
        if (pf_.enabled) run_ahead(line, core, now);
      }
      r.serviced_by = 2;
      return r;
    }

    // Demand miss: update the stream table.
    if (pf_.enabled) {
      bool matched = false;
      for (auto& s : streams_) {
        if (s.valid && s.next_line == line) {
          s.next_line = line + 1;
          s.last_use = ++use_tick_;
          matched = true;
          break;
        }
      }
      if (!matched && line != 0) {
        // Two misses on consecutive lines (not necessarily back to back in
        // time) establish a new stream in the LRU stream slot.
        for (const addr_t past : miss_history_) {
          if (past != kNoLine && past + 1 == line) {
            auto* slot = &streams_[0];
            for (auto& s : streams_) {
              if (!s.valid) {
                slot = &s;
                break;
              }
              if (s.last_use < slot->last_use) slot = &s;
            }
            *slot = Stream{line + 1, ++use_tick_, true};
            ++pf_stats_.streams_detected;
            emit(sink_, events_.stream_detected, 1);
            matched = true;
            break;
          }
        }
      }
      if (matched) run_ahead(line, core, now);
      miss_history_[miss_history_pos_] = line;
      miss_history_pos_ = (miss_history_pos_ + 1) % miss_history_.size();
    }
    return r;
  }

  // Writes pass through (the L2 is write-through toward the L3, which is
  // the point of coherence on the chip).
  return cache_.access(addr, type, core, now);
}

}  // namespace bgp::mem
