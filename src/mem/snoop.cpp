#include "mem/snoop.hpp"

#include <bit>

namespace bgp::mem {

void SnoopFilter::record_fill(unsigned core, addr_t line) noexcept {
  Entry& e = slot(line);
  if (!e.valid || e.line != line) {
    // Direct-mapped replacement: the displaced entry's sharer info is lost,
    // which errs toward extra (conservative) snoops — same as real filters.
    e = Entry{line, 0, true};
  }
  e.sharers |= static_cast<u8>(1u << core);
}

unsigned SnoopFilter::on_write(unsigned core, addr_t line) noexcept {
  ++stats_.requests;
  emit(sink_, events_.requests, 1);

  Entry& e = slot(line);
  const u8 self = static_cast<u8>(1u << core);
  if (!e.valid || e.line != line || (e.sharers & ~self) == 0) {
    ++stats_.filter_hits;
    emit(sink_, events_.filter_hits, 1);
    return 0;
  }
  const unsigned others =
      static_cast<unsigned>(std::popcount(static_cast<unsigned>(e.sharers & ~self)));
  stats_.invalidates_sent += others;
  emit(sink_, events_.invalidates_sent, others);
  emit(sink_, events_.invalidates_received, others);
  e.sharers = self;
  return others;
}

}  // namespace bgp::mem
