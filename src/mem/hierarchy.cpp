#include "mem/hierarchy.hpp"

#include "common/strfmt.hpp"

namespace bgp::mem {

namespace {
namespace ev = isa::ev;

CacheEventIds l1d_events(unsigned core) {
  return CacheEventIds{
      .read_access = ev::l1d(core, isa::L1dEvent::kReadAccess),
      .read_miss = ev::l1d(core, isa::L1dEvent::kReadMiss),
      .write_access = ev::l1d(core, isa::L1dEvent::kWriteAccess),
      .write_miss = ev::l1d(core, isa::L1dEvent::kWriteMiss),
      .line_fill = ev::l1d(core, isa::L1dEvent::kLineFill),
      .evict = ev::l1d(core, isa::L1dEvent::kEvict),
      .writeback = ev::l1d(core, isa::L1dEvent::kWriteback),
  };
}

CacheEventIds l1i_events(unsigned core) {
  return CacheEventIds{
      .read_access = ev::l1i(core, isa::L1iEvent::kAccess),
      .read_miss = ev::l1i(core, isa::L1iEvent::kMiss),
  };
}

L2Unit::EventIds l2_events(unsigned core) {
  return L2Unit::EventIds{
      .read_access = ev::l2(core, isa::L2Event::kReadAccess),
      .read_hit = ev::l2(core, isa::L2Event::kReadHit),
      .read_miss = ev::l2(core, isa::L2Event::kReadMiss),
      .write_access = ev::l2(core, isa::L2Event::kWriteAccess),
      .write_miss = ev::l2(core, isa::L2Event::kWriteMiss),
      .prefetch_issued = ev::l2(core, isa::L2Event::kPrefetchIssued),
      .prefetch_hit = ev::l2(core, isa::L2Event::kPrefetchHit),
      .stream_detected = ev::l2(core, isa::L2Event::kStreamDetected),
  };
}

CacheEventIds l3_events() {
  return CacheEventIds{
      .read_access = ev::l3(isa::L3Event::kReadAccess),
      .read_hit = ev::l3(isa::L3Event::kReadHit),
      .read_miss = ev::l3(isa::L3Event::kReadMiss),
      .write_access = ev::l3(isa::L3Event::kWriteAccess),
      .write_hit = ev::l3(isa::L3Event::kWriteHit),
      .write_miss = ev::l3(isa::L3Event::kWriteMiss),
      .line_fill = ev::l3(isa::L3Event::kFillFromDdr),
      .evict = ev::l3(isa::L3Event::kEvict),
      .writeback = ev::l3(isa::L3Event::kWritebackToDdr),
  };
}

SnoopFilter::EventIds snoop_events() {
  return SnoopFilter::EventIds{
      .requests = ev::snoop(isa::SnoopEvent::kRequests),
      .filter_hits = ev::snoop(isa::SnoopEvent::kFilterHits),
      .invalidates_sent = ev::snoop(isa::SnoopEvent::kInvalidatesSent),
      .invalidates_received = ev::snoop(isa::SnoopEvent::kInvalidatesReceived),
  };
}

}  // namespace

MemoryHierarchy::MemoryHierarchy(const HierarchyParams& params,
                                 EventSink* sink)
    : params_(params), sink_(sink) {
  ddr_ = std::make_unique<DdrSystem>(params_.ddr, sink);
  snoop_ = std::make_unique<SnoopFilter>(16384, sink, snoop_events());

  MemLevel* below_l2 = ddr_.get();
  if (params_.l3_size_bytes > 0) {
    CacheParams l3p{.size_bytes = params_.l3_size_bytes,
                    .line_bytes = params_.l3_line_bytes,
                    .assoc = params_.l3_assoc,
                    .hit_latency = params_.l3_hit_latency,
                    .write_through = false,
                    .write_allocate = true,
                    .level_tag = 3};
    l3_ = std::make_unique<Cache>("L3", l3p, ddr_.get(), sink, l3_events());
    below_l2 = l3_.get();
  }

  for (unsigned c = 0; c < isa::kCoresPerNode; ++c) {
    auto& pc = cores_[c];
    pc.l2 = std::make_unique<L2Unit>(strfmt("core%u.L2", c), params_.l2,
                                     params_.prefetch, below_l2, sink,
                                     l2_events(c));
    pc.l1d = std::make_unique<Cache>(strfmt("core%u.L1D", c), params_.l1d,
                                     pc.l2.get(), sink, l1d_events(c));
    pc.l1i = std::make_unique<Cache>(strfmt("core%u.L1I", c), params_.l1i,
                                     pc.l2.get(), sink, l1i_events(c));
  }
}

// ---- devirtualized fast walk -----------------------------------------------
// The hot loop of the whole simulator: every simulated load/store lands
// here. The fast path folds the old probe-then-virtual-access pair into a
// single inlined tag search per line (Cache::read_hit_fast /
// write_note_fast) and accumulates counter increments into a per-walk
// EventBatch flushed once at the end, so an all-hits walk costs zero
// virtual calls on the cache side and at most one on the sink side.
// Misses flush the batch (preserving walk-order delivery) and fall back to
// the unmodified virtual access() chain — miss-path state evolution and
// event streams are bit-for-bit the legacy ones. Counter *totals* are
// identical either way; only intra-walk delivery timing changes, which a
// threshold interrupt could observe mid-walk (none of the shipped
// samplers arm thresholds on mid-walk events).

AccessResult MemoryHierarchy::read(unsigned core, addr_t addr, u64 bytes,
                                   cycles_t now) {
  if (params_.legacy_walk) return read_legacy(core, addr, bytes, now);
  auto& pc = cores_.at(core);
  Cache* const l1 = pc.l1d.get();
  const u32 line = params_.l1d.line_bytes;
  const cycles_t l1_lat = params_.l1d.hit_latency;
  AccessResult total{0, 1};
  addr_t a = addr & ~addr_t{line - 1};
  const addr_t end = addr + (bytes == 0 ? 1 : bytes);
  EventBatch batch(sink_);
  for (; a < end; a += line) {
    if (l1->read_hit_fast(a, batch)) {
      total.latency += l1_lat;
      now += l1_lat;
      continue;
    }
    batch.flush();
    const AccessResult r = l1->access(a, AccessType::kRead, core, now);
    snoop_->record_fill(core, a / line);
    total.latency += r.latency;
    total.serviced_by = std::max(total.serviced_by, r.serviced_by);
    now += r.latency;
  }
  batch.flush();
  return total;
}

AccessResult MemoryHierarchy::write(unsigned core, addr_t addr, u64 bytes,
                                    cycles_t now) {
  // The store fast path bakes in the PPC450 L1 policy (write-through,
  // no-allocate). An exotic configuration with an allocating L1 takes the
  // generic path.
  if (params_.legacy_walk ||
      (!params_.l1d.write_through && params_.l1d.write_allocate)) {
    return write_legacy(core, addr, bytes, now);
  }
  auto& pc = cores_.at(core);
  Cache* const l1 = pc.l1d.get();
  L2Unit* const l2 = pc.l2.get();
  const u32 line = params_.l1d.line_bytes;
  const cycles_t l1_lat = params_.l1d.hit_latency;
  AccessResult total{0, 1};
  addr_t a = addr & ~addr_t{line - 1};
  const addr_t end = addr + (bytes == 0 ? 1 : bytes);
  EventBatch batch(sink_);
  for (; a < end; a += line) {
    snoop_->on_write(core, a / line);
    // The L1 is write-through / no-allocate: the store retires at L1 speed
    // whether it hit or not, and the write always goes below. Do the L1
    // bookkeeping inline and forward straight into the concrete L2 (final,
    // so the call devirtualizes) — identical state and totals to routing
    // through the virtual L1 access().
    const bool hit = l1->write_note_fast(a, batch);
    batch.flush();
    const AccessResult below = l2->access(a, AccessType::kWrite, core, now);
    total.latency += l1_lat;
    if (!hit) total.serviced_by = std::max(total.serviced_by, below.serviced_by);
    now += l1_lat;
  }
  batch.flush();
  return total;
}

AccessResult MemoryHierarchy::read_legacy(unsigned core, addr_t addr,
                                          u64 bytes, cycles_t now) {
  auto& pc = cores_.at(core);
  const u32 line = params_.l1d.line_bytes;
  AccessResult total{0, 1};
  addr_t a = addr & ~addr_t{line - 1};
  const addr_t end = addr + (bytes == 0 ? 1 : bytes);
  for (; a < end; a += line) {
    const bool was_hit = pc.l1d->probe(a);
    const AccessResult r = pc.l1d->access(a, AccessType::kRead, core, now);
    if (!was_hit) {
      snoop_->record_fill(core, a / line);
    }
    total.latency += r.latency;
    total.serviced_by = std::max(total.serviced_by, r.serviced_by);
    now += r.latency;
  }
  return total;
}

AccessResult MemoryHierarchy::write_legacy(unsigned core, addr_t addr,
                                           u64 bytes, cycles_t now) {
  auto& pc = cores_.at(core);
  const u32 line = params_.l1d.line_bytes;
  AccessResult total{0, 1};
  addr_t a = addr & ~addr_t{line - 1};
  const addr_t end = addr + (bytes == 0 ? 1 : bytes);
  for (; a < end; a += line) {
    snoop_->on_write(core, a / line);
    const AccessResult r = pc.l1d->access(a, AccessType::kWrite, core, now);
    total.latency += r.latency;
    total.serviced_by = std::max(total.serviced_by, r.serviced_by);
    now += r.latency;
  }
  return total;
}

AccessResult MemoryHierarchy::ifetch(unsigned core, addr_t addr,
                                     cycles_t now) {
  return cores_.at(core).l1i->access(addr, AccessType::kRead, core, now);
}

}  // namespace bgp::mem
