// Snoop filter model. The BG/P chip places a snoop filter in front of each
// write-through L1 so that stores by one core invalidate stale copies in the
// others without broadcasting every write. We track per-line sharer masks in
// a bounded direct-mapped table: precise enough for the UPC snoop counters,
// cheap enough to sit on the store path.
#pragma once

#include <vector>

#include "mem/sink.hpp"

namespace bgp::mem {

struct SnoopStats {
  u64 requests = 0;          ///< store-side lookups
  u64 filter_hits = 0;       ///< lookups filtered (no other sharer)
  u64 invalidates_sent = 0;  ///< sharer copies invalidated
};

/// UPC event wiring for the snoop filter.
struct SnoopEventIds {
  isa::EventId requests = kNoEvent;
  isa::EventId filter_hits = kNoEvent;
  isa::EventId invalidates_sent = kNoEvent;
  isa::EventId invalidates_received = kNoEvent;
};

class SnoopFilter {
 public:
  using EventIds = SnoopEventIds;

  explicit SnoopFilter(std::size_t table_entries = 16384,
                       EventSink* sink = nullptr, const EventIds& events = {})
      : sink_(sink), events_(events), table_(table_entries) {}

  /// Record that `core` now holds a copy of `line` (L1 fill path).
  void record_fill(unsigned core, addr_t line) noexcept;

  /// A store by `core` to `line`: returns the number of *other* cores whose
  /// copies had to be invalidated.
  unsigned on_write(unsigned core, addr_t line) noexcept;

  [[nodiscard]] const SnoopStats& stats() const noexcept { return stats_; }

 private:
  struct Entry {
    addr_t line = 0;
    u8 sharers = 0;
    bool valid = false;
  };

  [[nodiscard]] Entry& slot(addr_t line) noexcept {
    return table_[static_cast<std::size_t>(line) % table_.size()];
  }

  EventSink* sink_;
  EventIds events_;
  std::vector<Entry> table_;
  SnoopStats stats_;
};

}  // namespace bgp::mem
