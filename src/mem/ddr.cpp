#include "mem/ddr.hpp"

#include <algorithm>
#include <cmath>

namespace bgp::mem {

AccessResult DdrController::access(addr_t, AccessType type, unsigned,
                                   cycles_t now) {
  const auto service =
      static_cast<cycles_t>(std::llround(static_cast<double>(params_.line_bytes) /
                                         params_.bytes_per_cycle));
  const cycles_t start = std::max(now, busy_until_);
  cycles_t queue_wait = start - now;
  queue_wait = std::min<cycles_t>(queue_wait,
                                  u64{params_.max_queue_services} * service);
  busy_until_ = std::max(now, busy_until_) + service;

  stats_.busy_cycles += service;
  stats_.queue_stall_cycles += queue_wait;
  emit(sink_, events_.busy_cycles, service);
  emit(sink_, events_.queue_stall_cycles, queue_wait);

  if (type == AccessType::kRead) {
    ++stats_.read_reqs;
    stats_.bytes_read += params_.line_bytes;
    emit(sink_, events_.read_req, 1);
    emit(sink_, events_.bytes_read_16b, params_.line_bytes / 16);
  } else {
    ++stats_.write_reqs;
    stats_.bytes_written += params_.line_bytes;
    emit(sink_, events_.write_req, 1);
    emit(sink_, events_.bytes_written_16b, params_.line_bytes / 16);
  }

  const cycles_t latency =
      (type == AccessType::kRead) ? queue_wait + params_.base_latency + service
                                  // Writes are posted; only queue pressure
                                  // shows up on the requester's path.
                                  : std::min<cycles_t>(queue_wait, service);
  return {latency, /*serviced_by=*/4};
}

DdrSystem::DdrSystem(const DdrParams& params, EventSink* sink)
    : params_(params) {
  for (unsigned i = 0; i < isa::kNumDdrControllers; ++i) {
    DdrController::EventIds ids{
        .read_req = isa::ev::ddr(i, isa::DdrEvent::kReadReq),
        .write_req = isa::ev::ddr(i, isa::DdrEvent::kWriteReq),
        .bytes_read_16b = isa::ev::ddr(i, isa::DdrEvent::kBytesRead16B),
        .bytes_written_16b = isa::ev::ddr(i, isa::DdrEvent::kBytesWritten16B),
        .busy_cycles = isa::ev::ddr(i, isa::DdrEvent::kBusyCycles),
        .queue_stall_cycles = isa::ev::ddr(i, isa::DdrEvent::kQueueStallCycles),
    };
    ctrls_[i] = std::make_unique<DdrController>(params, sink, ids);
  }
}

AccessResult DdrSystem::access(addr_t addr, AccessType type, unsigned core,
                               cycles_t now) {
  const unsigned ctrl =
      static_cast<unsigned>((addr / params_.line_bytes) % ctrls_.size());
  return ctrls_[ctrl]->access(addr, type, core, now);
}

DdrStats DdrSystem::total() const noexcept {
  DdrStats t;
  for (const auto& c : ctrls_) {
    const DdrStats& s = c->stats();
    t.read_reqs += s.read_reqs;
    t.write_reqs += s.write_reqs;
    t.bytes_read += s.bytes_read;
    t.bytes_written += s.bytes_written;
    t.busy_cycles += s.busy_cycles;
    t.queue_stall_cycles += s.queue_stall_cycles;
  }
  return t;
}

}  // namespace bgp::mem
