// Assembles one Blue Gene/P node's on-chip memory system (paper Fig 2):
// four cores each with private L1 I/D caches and a private prefetching L2,
// a large shared L3 whose size is boot-configurable (0–8 MB; Fig 11 sweeps
// it), a snoop filter, and two line-interleaved DDR controllers.
#pragma once

#include <array>
#include <memory>
#include <optional>

#include "mem/cache.hpp"
#include "mem/ddr.hpp"
#include "mem/prefetch.hpp"
#include "mem/snoop.hpp"

namespace bgp::mem {

struct HierarchyParams {
  /// Private 32 KB, 32 B-line, highly associative L1s at 3-cycle latency.
  CacheParams l1i{.size_bytes = 32 * KiB,
                  .line_bytes = 32,
                  .assoc = 16,
                  .hit_latency = 3,
                  .write_through = true,
                  .write_allocate = false};
  CacheParams l1d{.size_bytes = 32 * KiB,
                  .line_bytes = 32,
                  .assoc = 16,
                  .hit_latency = 3,
                  .write_through = true,
                  .write_allocate = false};
  /// Private L2: small line store feeding the stream prefetcher, 128 B lines.
  CacheParams l2{.size_bytes = 16 * KiB,
                 .line_bytes = 128,
                 .assoc = 8,
                 .hit_latency = 12,
                 .write_through = true,
                 .write_allocate = false,
                 .level_tag = 2};
  PrefetchParams prefetch{};
  /// Shared L3; size 0 disables it (Fig 11's "no L3" point) and L2 misses
  /// then go straight to DDR. Non-zero sizes must keep sets*assoc*line.
  u64 l3_size_bytes = 8 * MiB;
  u32 l3_line_bytes = 128;
  u32 l3_assoc = 8;
  cycles_t l3_hit_latency = 46;
  DdrParams ddr{};
  /// Use the original probe-then-virtual-access walk with per-event sink
  /// calls instead of the devirtualized fast path. Both walks do identical
  /// bookkeeping (same stats, LRU evolution and counter totals); the flag
  /// exists for the identity tests and the before/after perf benches.
  bool legacy_walk = false;
};

/// One node's memory system. Thread-compatible: the runtime guarantees only
/// one rank executes at a time, so no internal locking.
class MemoryHierarchy {
 public:
  /// `sink` receives UPC events for every level (may be null).
  explicit MemoryHierarchy(const HierarchyParams& params,
                           EventSink* sink = nullptr);

  /// Data read of `bytes` starting at `addr` by `core`; walks L1 lines and
  /// returns the summed latency (callers model overlap/MLP on top).
  AccessResult read(unsigned core, addr_t addr, u64 bytes, cycles_t now);

  /// Data write (store) path.
  AccessResult write(unsigned core, addr_t addr, u64 bytes, cycles_t now);

  /// Instruction fetch of one L1I line.
  AccessResult ifetch(unsigned core, addr_t addr, cycles_t now);

  // -- component access for statistics and tests ------------------------
  [[nodiscard]] const Cache& l1d(unsigned core) const {
    return *cores_.at(core).l1d;
  }
  [[nodiscard]] const Cache& l1i(unsigned core) const {
    return *cores_.at(core).l1i;
  }
  [[nodiscard]] const L2Unit& l2(unsigned core) const {
    return *cores_.at(core).l2;
  }
  [[nodiscard]] bool has_l3() const noexcept { return l3_ != nullptr; }
  [[nodiscard]] const Cache& l3() const { return *l3_; }
  [[nodiscard]] const DdrSystem& ddr() const noexcept { return *ddr_; }
  [[nodiscard]] const SnoopFilter& snoop() const noexcept { return *snoop_; }
  [[nodiscard]] const HierarchyParams& params() const noexcept {
    return params_;
  }

 private:
  struct PerCore {
    std::unique_ptr<Cache> l1i;
    std::unique_ptr<Cache> l1d;
    std::unique_ptr<L2Unit> l2;
  };

  /// Original walks (probe + virtual access per line, per-event sink
  /// calls); kept verbatim behind HierarchyParams::legacy_walk for the
  /// batched-vs-legacy identity tests and the before/after benches.
  AccessResult read_legacy(unsigned core, addr_t addr, u64 bytes,
                           cycles_t now);
  AccessResult write_legacy(unsigned core, addr_t addr, u64 bytes,
                            cycles_t now);

  HierarchyParams params_;
  EventSink* sink_;
  std::unique_ptr<DdrSystem> ddr_;
  std::unique_ptr<Cache> l3_;  // null when l3_size_bytes == 0
  std::unique_ptr<SnoopFilter> snoop_;
  std::array<PerCore, isa::kCoresPerNode> cores_;
};

}  // namespace bgp::mem
