#include "mem/cache.hpp"

#include <cassert>
#include <stdexcept>

namespace bgp::mem {

Cache::Cache(std::string name, const CacheParams& params, MemLevel* next,
             EventSink* sink, const CacheEventIds& events)
    : name_(std::move(name)),
      params_(params),
      next_(next),
      sink_(sink),
      events_(events),
      sets_(params.num_sets()),
      lines_(static_cast<std::size_t>(sets_) * params.assoc) {
  if (params_.size_bytes % (u64{params_.line_bytes} * params_.assoc) != 0 ||
      sets_ == 0) {
    throw std::invalid_argument("cache size must be sets*assoc*line");
  }
  const auto is_pow2 = [](u64 v) { return v != 0 && (v & (v - 1)) == 0; };
  if (is_pow2(params_.line_bytes) && is_pow2(sets_)) {
    pow2_geometry_ = true;
    for (u32 v = params_.line_bytes; v > 1; v >>= 1) ++line_shift_;
    set_mask_ = sets_ - 1;
  }
}

int Cache::find(u32 set, addr_t line) const noexcept {
  const std::size_t base = std::size_t{set} * params_.assoc;
  for (u32 w = 0; w < params_.assoc; ++w) {
    const Line& l = lines_[base + w];
    if (l.valid && l.tag == line) return static_cast<int>(w);
  }
  return -1;
}

int Cache::victim(u32 set) const noexcept {
  const std::size_t base = std::size_t{set} * params_.assoc;
  int best = 0;
  u64 best_lru = ~0ull;
  for (u32 w = 0; w < params_.assoc; ++w) {
    const Line& l = lines_[base + w];
    if (!l.valid) return static_cast<int>(w);
    if (l.lru < best_lru) {
      best_lru = l.lru;
      best = static_cast<int>(w);
    }
  }
  return best;
}

void Cache::fill(addr_t line, bool dirty, unsigned core, cycles_t now) {
  const u32 set = set_of(line);
  const int w = victim(set);
  Line& slot = lines_[std::size_t{set} * params_.assoc + w];
  if (slot.valid) {
    ++stats_.evictions;
    emit(sink_, events_.evict, 1);
    if (slot.dirty) {
      ++stats_.writebacks;
      emit(sink_, events_.writeback, 1);
      // Reconstruct the victim's address from its tag (tags store the full
      // line number, so this is exact).
      if (next_ != nullptr) {
        next_->access(slot.tag * params_.line_bytes, AccessType::kWrite, core,
                      now);
      }
    }
  }
  slot = Line{line, ++tick_, /*valid=*/true, dirty};
  ++stats_.line_fills;
  emit(sink_, events_.line_fill, 1);
}

AccessResult Cache::access(addr_t addr, AccessType type, unsigned core,
                           cycles_t now) {
  const addr_t line = line_of(addr);
  const u32 set = set_of(line);
  const bool is_read = type == AccessType::kRead;

  if (is_read) {
    ++stats_.read_access;
    emit(sink_, events_.read_access, 1);
  } else {
    ++stats_.write_access;
    emit(sink_, events_.write_access, 1);
  }

  const int w = find(set, line);
  if (w >= 0) {
    Line& l = lines_[std::size_t{set} * params_.assoc + w];
    l.lru = ++tick_;
    emit(sink_, is_read ? events_.read_hit : events_.write_hit, 1);
    cycles_t latency = params_.hit_latency;
    if (!is_read) {
      if (params_.write_through) {
        // Write-through: the write also goes below, but the store itself
        // retires at L1 speed (the store queue hides the downstream time).
        assert(next_ != nullptr);
        next_->access(addr, AccessType::kWrite, core, now);
      } else {
        l.dirty = true;
      }
    }
    return {latency, params_.level_tag};
  }

  // Miss.
  if (is_read) {
    ++stats_.read_miss;
    emit(sink_, events_.read_miss, 1);
  } else {
    ++stats_.write_miss;
    emit(sink_, events_.write_miss, 1);
  }

  if (next_ == nullptr) {
    // No backing level configured (L3-disabled bypass handles this above
    // the cache, so reaching here is a wiring bug).
    throw std::logic_error(name_ + ": miss with no next level");
  }

  if (!is_read && (params_.write_through || !params_.write_allocate)) {
    // No-allocate write miss: forward the write below; its latency is
    // absorbed by the store queue.
    AccessResult below = next_->access(addr, AccessType::kWrite, core, now);
    return {params_.hit_latency, below.serviced_by};
  }

  // Read miss or allocating write miss: fetch the line from below.
  AccessResult below = next_->access(addr, AccessType::kRead, core, now);
  fill(line, /*dirty=*/!is_read, core, now);
  return {params_.hit_latency + below.latency, below.serviced_by};
}

bool Cache::probe(addr_t addr) const noexcept {
  const addr_t line = line_of(addr);
  return find(set_of(line), line) >= 0;
}

bool Cache::install(addr_t addr, unsigned core, cycles_t now) {
  const addr_t line = line_of(addr);
  if (find(set_of(line), line) >= 0) return false;
  fill(line, /*dirty=*/false, core, now);
  return true;
}

void Cache::flush(unsigned core, cycles_t now) {
  for (auto& l : lines_) {
    if (l.valid && l.dirty && next_ != nullptr) {
      ++stats_.writebacks;
      emit(sink_, events_.writeback, 1);
      next_->access(l.tag * params_.line_bytes, AccessType::kWrite, core, now);
    }
    l = Line{};
  }
}

u64 Cache::resident_lines() const noexcept {
  u64 n = 0;
  for (const auto& l : lines_) n += l.valid ? 1 : 0;
  return n;
}

}  // namespace bgp::mem
