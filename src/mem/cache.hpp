// Generic set-associative cache model with LRU replacement, used for the
// private L1 instruction/data caches (write-through, no write-allocate, as
// on the PPC450) and for the shared L3 (write-back, write-allocate).
#pragma once

#include <string>
#include <vector>

#include "mem/sink.hpp"

namespace bgp::mem {

enum class AccessType : u8 { kRead, kWrite };

/// Result of a memory access: total latency and the level that serviced it
/// (1 = L1, 2 = L2/prefetch buffer, 3 = L3, 4 = DDR).
struct AccessResult {
  cycles_t latency = 0;
  u8 serviced_by = 0;
};

/// Interface to "whatever is below" a cache level.
class MemLevel {
 public:
  virtual ~MemLevel() = default;

  /// Access one line-aligned block. `core` identifies the requesting core,
  /// `now` is the requester's current cycle time (used by queueing models).
  virtual AccessResult access(addr_t line_addr, AccessType type,
                              unsigned core, cycles_t now) = 0;
};

/// Static cache geometry and policy.
struct CacheParams {
  u64 size_bytes = 32 * KiB;
  u32 line_bytes = 32;
  u32 assoc = 16;
  cycles_t hit_latency = 3;
  /// Write-through caches forward every write below and never hold dirty
  /// lines; they also do not allocate on write misses (PPC450 L1 behaviour).
  bool write_through = false;
  /// Write-back caches allocate on write miss when true.
  bool write_allocate = true;
  /// Reported in AccessResult::serviced_by on hits (1=L1, 2=L2, 3=L3).
  u8 level_tag = 1;

  [[nodiscard]] u32 num_sets() const noexcept {
    return static_cast<u32>(size_bytes / (u64{line_bytes} * assoc));
  }
};

/// UPC events a cache instance is wired to (kNoEvent leaves a hook dark).
struct CacheEventIds {
  isa::EventId read_access = kNoEvent;
  isa::EventId read_hit = kNoEvent;
  isa::EventId read_miss = kNoEvent;
  isa::EventId write_access = kNoEvent;
  isa::EventId write_hit = kNoEvent;
  isa::EventId write_miss = kNoEvent;
  isa::EventId line_fill = kNoEvent;
  isa::EventId evict = kNoEvent;
  isa::EventId writeback = kNoEvent;
};

/// Aggregate statistics (kept independently of UPC wiring so unit tests and
/// the ablation benches can interrogate a cache directly).
struct CacheStats {
  u64 read_access = 0;
  u64 read_miss = 0;
  u64 write_access = 0;
  u64 write_miss = 0;
  u64 line_fills = 0;
  u64 evictions = 0;
  u64 writebacks = 0;

  [[nodiscard]] u64 accesses() const noexcept {
    return read_access + write_access;
  }
  [[nodiscard]] u64 misses() const noexcept { return read_miss + write_miss; }
  [[nodiscard]] double miss_rate() const noexcept {
    const u64 a = accesses();
    return a ? static_cast<double>(misses()) / static_cast<double>(a) : 0.0;
  }
};

/// Set-associative LRU cache.
class Cache final : public MemLevel {
 public:
  /// `next` must outlive the cache and services misses (and write-through /
  /// writeback traffic). It may be null only for caches that never miss
  /// (not the usual case; tests use a Backstop).
  Cache(std::string name, const CacheParams& params, MemLevel* next,
        EventSink* sink = nullptr, const CacheEventIds& events = {});

  AccessResult access(addr_t addr, AccessType type, unsigned core,
                      cycles_t now) override;

  /// True if the line holding `addr` is currently resident (no LRU update).
  [[nodiscard]] bool probe(addr_t addr) const noexcept;

  // -- devirtualized walk fast paths (mem/hierarchy.cpp) -------------------
  // These fold probe + access into one tag search and accumulate counter
  // increments into an EventBatch instead of per-event virtual calls. They
  // perform exactly the bookkeeping access() would (stats, LRU clock,
  // event totals), so either path leaves the cache in the same state.

  /// Read fast path: on hit, touch LRU, count the access, and return true;
  /// on miss return false having changed *nothing* — the caller falls back
  /// to the virtual access(), which re-counts from the top exactly like
  /// the legacy probe-then-access pair did.
  [[nodiscard]] bool read_hit_fast(addr_t addr, EventBatch& batch) noexcept {
    const addr_t line = fast_line_of(addr);
    const std::size_t base = std::size_t{fast_set_of(line)} * params_.assoc;
    for (u32 w = 0; w < params_.assoc; ++w) {
      Line& l = lines_[base + w];
      if (l.valid && l.tag == line) {
        l.lru = ++tick_;
        ++stats_.read_access;
        batch.add(events_.read_access, 1);
        batch.add(events_.read_hit, 1);
        return true;
      }
    }
    return false;
  }

  /// Write fast path for write-through / no-allocate caches: does the full
  /// L1-side bookkeeping for a store (access + hit LRU touch or miss
  /// count; neither case allocates) and reports whether it hit. The caller
  /// forwards the write below either way — exactly what access() does for
  /// this policy. Only call on caches with write_through or
  /// !write_allocate.
  [[nodiscard]] bool write_note_fast(addr_t addr, EventBatch& batch) noexcept {
    const addr_t line = fast_line_of(addr);
    const std::size_t base = std::size_t{fast_set_of(line)} * params_.assoc;
    ++stats_.write_access;
    batch.add(events_.write_access, 1);
    for (u32 w = 0; w < params_.assoc; ++w) {
      Line& l = lines_[base + w];
      if (l.valid && l.tag == line) {
        l.lru = ++tick_;
        batch.add(events_.write_hit, 1);
        return true;
      }
    }
    ++stats_.write_miss;
    batch.add(events_.write_miss, 1);
    return false;
  }

  /// Insert a line without charging latency (prefetch fill path). Returns
  /// false if the line was already resident.
  bool install(addr_t addr, unsigned core, cycles_t now);

  /// Drop every line, writing back dirty ones.
  void flush(unsigned core, cycles_t now);

  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const CacheParams& params() const noexcept { return params_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] u64 resident_lines() const noexcept;

 private:
  struct Line {
    addr_t tag = 0;
    u64 lru = 0;
    bool valid = false;
    bool dirty = false;
  };

  [[nodiscard]] addr_t line_of(addr_t addr) const noexcept {
    return addr / params_.line_bytes;
  }
  [[nodiscard]] u32 set_of(addr_t line) const noexcept {
    return static_cast<u32>(line % sets_);
  }
  // Shift/mask forms of line_of/set_of for the fast paths: the divisors
  // are runtime values the compiler cannot strength-reduce, so power-of-
  // two geometries (every real BG/P cache) precompute shifts in the
  // constructor. Non-pow2 test geometries fall back to the division.
  [[nodiscard]] addr_t fast_line_of(addr_t addr) const noexcept {
    return pow2_geometry_ ? addr >> line_shift_ : line_of(addr);
  }
  [[nodiscard]] u32 fast_set_of(addr_t line) const noexcept {
    return pow2_geometry_ ? static_cast<u32>(line) & set_mask_ : set_of(line);
  }

  /// Find the way holding `line` in `set`, or -1.
  [[nodiscard]] int find(u32 set, addr_t line) const noexcept;
  /// Choose a victim way in `set` (invalid first, else LRU).
  [[nodiscard]] int victim(u32 set) const noexcept;

  /// Fill `line` into the cache, evicting as needed; returns extra latency
  /// charged for the fill bookkeeping (0 — fill latency is the miss path).
  void fill(addr_t line, bool dirty, unsigned core, cycles_t now);

  std::string name_;
  CacheParams params_;
  MemLevel* next_;
  EventSink* sink_;
  CacheEventIds events_;
  u32 sets_;
  bool pow2_geometry_ = false;
  u32 line_shift_ = 0;
  u32 set_mask_ = 0;
  std::vector<Line> lines_;  // sets_ * assoc, row-major by set
  u64 tick_ = 0;             // LRU clock
  CacheStats stats_;
};

/// Terminal MemLevel with fixed latency; unit-test backstop standing in for
/// an infinite memory.
class Backstop final : public MemLevel {
 public:
  explicit Backstop(cycles_t latency = 100, u8 level_tag = 4) noexcept
      : latency_(latency), level_tag_(level_tag) {}

  AccessResult access(addr_t, AccessType type, unsigned, cycles_t) override {
    ++accesses_;
    if (type == AccessType::kWrite) ++writes_;
    return {latency_, level_tag_};
  }

  [[nodiscard]] u64 accesses() const noexcept { return accesses_; }
  [[nodiscard]] u64 writes() const noexcept { return writes_; }

 private:
  cycles_t latency_;
  u8 level_tag_;
  u64 accesses_ = 0;
  u64 writes_ = 0;
};

}  // namespace bgp::mem
