// The BG/P private L2 is primarily a prefetch engine: a small line store
// plus sequential stream detection that runs ahead of demand misses. L2Unit
// models it as a small write-through cache combined with a multi-stream
// sequential prefetcher whose depth is configurable (the paper's §IX floats
// varying the prefetch amount as follow-on work; bench/abl_prefetch_sweep
// does exactly that).
#pragma once

#include <array>
#include <unordered_map>
#include <vector>

#include "mem/cache.hpp"

namespace bgp::mem {

struct PrefetchParams {
  bool enabled = true;
  /// Concurrent sequential streams tracked.
  unsigned streams = 8;
  /// Lines fetched ahead of a confirmed stream.
  unsigned depth = 2;
};

struct PrefetchStats {
  u64 issued = 0;        ///< prefetch fills brought into the L2
  u64 hits = 0;          ///< demand accesses served by a prefetched line
  u64 streams_detected = 0;
};

/// UPC event wiring for an L2Unit.
struct L2EventIds {
  isa::EventId read_access = kNoEvent;
  isa::EventId read_hit = kNoEvent;
  isa::EventId read_miss = kNoEvent;
  isa::EventId write_access = kNoEvent;
  isa::EventId write_miss = kNoEvent;
  isa::EventId prefetch_issued = kNoEvent;
  isa::EventId prefetch_hit = kNoEvent;
  isa::EventId stream_detected = kNoEvent;
};

/// Per-core L2: small cache + stream prefetcher.
class L2Unit final : public MemLevel {
 public:
  using EventIds = L2EventIds;

  L2Unit(std::string name, const CacheParams& cache_params,
         const PrefetchParams& pf, MemLevel* next, EventSink* sink = nullptr,
         const EventIds& events = {});

  AccessResult access(addr_t addr, AccessType type, unsigned core,
                      cycles_t now) override;

  [[nodiscard]] const CacheStats& cache_stats() const noexcept {
    return cache_.stats();
  }
  [[nodiscard]] const PrefetchStats& prefetch_stats() const noexcept {
    return pf_stats_;
  }
  [[nodiscard]] const PrefetchParams& prefetch_params() const noexcept {
    return pf_;
  }

 private:
  struct Stream {
    addr_t next_line = 0;  ///< next line number expected on this stream
    u64 last_use = 0;
    bool valid = false;
  };

  /// Issue prefetches for lines [line+1, line+depth] along a stream.
  void run_ahead(addr_t line, unsigned core, cycles_t now);

  Cache cache_;
  PrefetchParams pf_;
  MemLevel* next_;
  EventSink* sink_;
  EventIds events_;
  std::vector<Stream> streams_;
  static constexpr addr_t kNoLine = ~addr_t{0};
  /// Recent demand-miss lines; a miss adjacent to any of them establishes a
  /// stream (so interleaved streams, e.g. x[i] and y[i] of a dot product,
  /// are both detected).
  std::array<addr_t, 8> miss_history_;
  unsigned miss_history_pos_ = 0;
  u64 use_tick_ = 0;
  PrefetchStats pf_stats_;
  /// Lines brought in by prefetch and not yet demanded, with the cycle at
  /// which their fill completes (a demand before that pays the residue —
  /// this is why deeper prefetch hides more latency).
  std::unordered_map<addr_t, cycles_t> pending_prefetched_;
};

}  // namespace bgp::mem
