// Off-chip DDR2 model: two independent controllers, line-interleaved, each a
// FCFS bandwidth server with a base access latency. Queueing at the
// controllers is what produces the paper's Fig 12/13 behaviour: four cores
// in Virtual Node Mode contend for the same two controllers and see both
// more traffic and longer effective latency.
#pragma once

#include <array>
#include <memory>

#include "mem/cache.hpp"

namespace bgp::mem {

struct DdrParams {
  /// Uncontended access latency in core cycles (row activation + transfer
  /// start); BG/P DDR2 latency is on the order of 100 core cycles.
  cycles_t base_latency = 104;
  /// Controller streaming bandwidth in bytes per core cycle. The two BG/P
  /// controllers together deliver 13.6 GB/s at an 850 MHz core clock:
  /// 16 B/cycle total, 8 per controller.
  double bytes_per_cycle = 8.0;
  /// Transfer granularity (the L3 line size).
  u32 line_bytes = 128;
  /// Cap on modelled queueing delay, as a multiple of the service time, to
  /// keep transient inter-core time skew from exploding the model.
  u32 max_queue_services = 64;
};

struct DdrStats {
  u64 read_reqs = 0;
  u64 write_reqs = 0;
  u64 bytes_read = 0;
  u64 bytes_written = 0;
  u64 busy_cycles = 0;
  u64 queue_stall_cycles = 0;

  [[nodiscard]] u64 requests() const noexcept { return read_reqs + write_reqs; }
  [[nodiscard]] u64 bytes() const noexcept { return bytes_read + bytes_written; }
};

/// UPC event wiring for a DdrController.
struct DdrEventIds {
  isa::EventId read_req = kNoEvent;
  isa::EventId write_req = kNoEvent;
  isa::EventId bytes_read_16b = kNoEvent;
  isa::EventId bytes_written_16b = kNoEvent;
  isa::EventId busy_cycles = kNoEvent;
  isa::EventId queue_stall_cycles = kNoEvent;
};

/// One DDR controller.
class DdrController final : public MemLevel {
 public:
  using EventIds = DdrEventIds;

  DdrController(const DdrParams& params, EventSink* sink = nullptr,
                const EventIds& events = {}) noexcept
      : params_(params), sink_(sink), events_(events) {}

  AccessResult access(addr_t addr, AccessType type, unsigned core,
                      cycles_t now) override;

  [[nodiscard]] const DdrStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const DdrParams& params() const noexcept { return params_; }

 private:
  DdrParams params_;
  EventSink* sink_;
  EventIds events_;
  cycles_t busy_until_ = 0;
  DdrStats stats_;
};

/// The pair of controllers, interleaved by line address.
class DdrSystem final : public MemLevel {
 public:
  explicit DdrSystem(const DdrParams& params, EventSink* sink = nullptr);

  AccessResult access(addr_t addr, AccessType type, unsigned core,
                      cycles_t now) override;

  [[nodiscard]] const DdrController& controller(unsigned i) const {
    return *ctrls_.at(i);
  }
  /// Combined statistics over both controllers.
  [[nodiscard]] DdrStats total() const noexcept;

 private:
  DdrParams params_;
  std::array<std::unique_ptr<DdrController>, isa::kNumDdrControllers> ctrls_;
};

}  // namespace bgp::mem
