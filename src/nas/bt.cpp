// BT — block tri-diagonal solver with 5x5 blocks, the heaviest of the NAS
// pseudo-applications. ADI passes solve block-tridiagonal line systems
// along x, y and z (z through the same pencil transpose SP uses); the block
// Thomas algorithm — 5x5 Gaussian elimination with partial pivoting for the
// diagonal solves, dense 5x5 multiplies for the couplings — is implemented
// from scratch and verified by the residual of sampled line systems.
//
// Paper characteristics reproduced: dense 5x5 arithmetic makes BT strongly
// FMA-dominated (Fig 6) with mid-pack optimization gains (Fig 10).
#include <array>
#include <cmath>
#include <vector>

#include "common/strfmt.hpp"
#include "nas/kernel.hpp"
#include "nas/solvers.hpp"

namespace bgp::nas {
namespace {

using isa::FpOp;
using isa::IntOp;
using isa::LoopDesc;
using isa::LsOp;

constexpr unsigned kB = kBlock;  // 5 conserved variables

struct BtSize {
  u64 nx, ny, nz_local;
  unsigned iterations;
};

BtSize size_of(ProblemClass cls) {
  switch (cls) {
    case ProblemClass::kS: return {8, 8, 4, 2};
    case ProblemClass::kW: return {24, 24, 8, 2};
    case ProblemClass::kA: return {32, 32, 12, 3};
  }
  return {8, 8, 4, 2};
}

LoopDesc block_solve_loop(std::string_view name_, u64 cells) {
  LoopDesc d;
  d.name = name_;
  d.trip = cells;
  // Per cell: 5x5 factor/solve (~90 FMA) + two 5x5 matmuls (~250 FMA) +
  // block-vector ops; 5 divides from the pivoting elimination.
  d.body.fp_at(FpOp::kFma) = 340;
  d.body.fp_at(FpOp::kMult) = 30;
  d.body.fp_at(FpOp::kAddSub) = 30;
  d.body.fp_at(FpOp::kDiv) = 5;
  d.body.ls_at(LsOp::kLoadDouble) = 160;
  d.body.ls_at(LsOp::kStoreDouble) = 60;
  d.body.int_at(IntOp::kAlu) = 120;
  d.body.int_at(IntOp::kBranch) = 30;
  d.vectorizable = 0.3;  // small fixed blocks, pivot branches
  d.locality = isa::LocalityClass::kBlocked;
  return d;
}

/// Deterministic diagonally-dominant blocks at line position t.
void bt_blocks(u64 t, u64 seed, Mat5& a, Mat5& b, Mat5& c) {
  const double s = std::sin(0.013 * static_cast<double>(t + seed));
  for (unsigned i = 0; i < kB; ++i) {
    for (unsigned j = 0; j < kB; ++j) {
      const double off = 0.1 * std::cos(0.07 * (i * kB + j) + s);
      a[i * kB + j] = -0.3 + off;
      b[i * kB + j] = (i == j) ? 10.0 + s : 0.4 * off;
      c[i * kB + j] = -0.25 - off;
    }
  }
}

/// One line solve (rhs in, solution out); returns residual.
double bt_solve(u64 n, u64 seed, std::vector<double>& x) {
  return block_tridiag_solve(n, seed, bt_blocks, x);
}

class BtKernel final : public Kernel {
 public:
  explicit BtKernel(ProblemClass cls) : Kernel(cls) {}

  [[nodiscard]] Benchmark id() const noexcept override {
    return Benchmark::kBT;
  }

  void run(rt::RankCtx& ctx) override {
    const BtSize sz = size_of(class_);
    const unsigned p = ctx.size();
    const unsigned r = ctx.rank();
    const u64 plane = sz.nx * sz.ny;
    const u64 cells = plane * sz.nz_local;
    const u64 nz = sz.nz_local * p;

    auto u = ctx.alloc<double>(cells * kB);
    for (u64 i = 0; i < cells * kB; ++i) {
      u[i] = 1.0 + 0.002 * std::cos(0.21 * static_cast<double>(
                                               i + r * cells * kB));
    }
    ctx.touch(rt::MemRange{u.addr(), u.bytes(), true}, 3.0);

    auto idx = [&](u64 i, u64 j, u64 k) {
      return ((k * sz.ny + j) * sz.nx + i) * kB;
    };

    double worst = 0.0;
    for (unsigned it = 0; it < sz.iterations; ++it) {
      // ---- x lines ---------------------------------------------------------
      std::vector<double> line(sz.nx * kB);
      for (u64 k = 0; k < sz.nz_local; ++k) {
        for (u64 j = 0; j < sz.ny; ++j) {
          for (u64 i = 0; i < sz.nx; ++i) {
            for (unsigned c = 0; c < kB; ++c) {
              line[i * kB + c] = u[idx(i, j, k) + c];
            }
          }
          worst = std::max(worst,
                           bt_solve(sz.nx, 7 * (j + k), line));
          for (u64 i = 0; i < sz.nx; ++i) {
            for (unsigned c = 0; c < kB; ++c) {
              u[idx(i, j, k) + c] = line[i * kB + c];
            }
          }
        }
      }
      ctx.loop(block_solve_loop("bt_xsolve", cells),
               {rt::MemRange{u.addr(), u.bytes(), false},
                rt::MemRange{u.addr(), u.bytes(), true}});

      // ---- y lines ---------------------------------------------------------
      std::vector<double> yline(sz.ny * kB);
      for (u64 k = 0; k < sz.nz_local; ++k) {
        for (u64 i = 0; i < sz.nx; ++i) {
          for (u64 j = 0; j < sz.ny; ++j) {
            for (unsigned c = 0; c < kB; ++c) {
              yline[j * kB + c] = u[idx(i, j, k) + c];
            }
          }
          worst = std::max(worst,
                           bt_solve(sz.ny, 11 * (i + k), yline));
          for (u64 j = 0; j < sz.ny; ++j) {
            for (unsigned c = 0; c < kB; ++c) {
              u[idx(i, j, k) + c] = yline[j * kB + c];
            }
          }
        }
      }
      ctx.loop(block_solve_loop("bt_ysolve", cells),
               {rt::MemRange{u.addr(), u.bytes(), false},
                rt::MemRange{u.addr(), u.bytes(), true}});

      // ---- z lines via pencil transpose -------------------------------------
      std::vector<std::vector<double>> out(p), in;
      for (unsigned d = 0; d < p; ++d) {
        const Block cols = block_of(plane, p, d);
        out[d].reserve(cols.size() * sz.nz_local * kB);
        for (u64 col = cols.begin; col < cols.end; ++col) {
          for (u64 k = 0; k < sz.nz_local; ++k) {
            for (unsigned c = 0; c < kB; ++c) {
              out[d].push_back(u[(k * plane + col) * kB + c]);
            }
          }
        }
      }
      ctx.touch(rt::MemRange{u.addr(), u.bytes(), false}, 2.0);
      alltoallv_values(ctx, out, in);

      const Block mine = block_of(plane, p, r);
      std::vector<double> zline(nz * kB);
      for (u64 lc = 0; lc < mine.size(); ++lc) {
        for (unsigned s = 0; s < p; ++s) {
          const double* seg = in[s].data() + lc * sz.nz_local * kB;
          for (u64 k = 0; k < sz.nz_local; ++k) {
            for (unsigned c = 0; c < kB; ++c) {
              zline[(s * sz.nz_local + k) * kB + c] = seg[k * kB + c];
            }
          }
        }
        worst = std::max(
            worst, bt_solve(nz, 13 * (mine.begin + lc), zline));
        for (unsigned s = 0; s < p; ++s) {
          double* seg = in[s].data() + lc * sz.nz_local * kB;
          for (u64 k = 0; k < sz.nz_local; ++k) {
            for (unsigned c = 0; c < kB; ++c) {
              seg[k * kB + c] = zline[(s * sz.nz_local + k) * kB + c];
            }
          }
        }
      }
      ctx.loop(block_solve_loop("bt_zsolve", mine.size() * nz), {});

      std::vector<std::vector<double>> back;
      alltoallv_values(ctx, in, back);
      for (unsigned s = 0; s < p; ++s) {
        const Block cols = block_of(plane, p, s);
        u64 w = 0;
        for (u64 col = cols.begin; col < cols.end; ++col) {
          for (u64 k = 0; k < sz.nz_local; ++k) {
            for (unsigned c = 0; c < kB; ++c) {
              u[(k * plane + col) * kB + c] = back[s][w++];
            }
          }
        }
      }
      ctx.touch(rt::MemRange{u.addr(), u.bytes(), true}, 2.0);
    }

    const double global_worst = ctx.allreduce_max(worst);
    if (ctx.rank() == 0) {
      record(std::isfinite(global_worst) && global_worst < 1e-8,
             strfmt("max block-line residual %.3e over %u ADI sweeps",
                    global_worst, sz.iterations));
    }
  }
};

}  // namespace

std::unique_ptr<Kernel> make_bt(ProblemClass cls) {
  return std::make_unique<BtKernel>(cls);
}

}  // namespace bgp::nas
