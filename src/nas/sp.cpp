// SP — scalar penta-diagonal solver. ADI-style passes factor the implicit
// operator into independent penta-diagonal line systems along x, y and z
// (after diagonalization NPB SP solves scalar penta systems per component).
// x and y lines are rank-local; z lines are reached through an all-to-all
// pencil transpose. The 5-band Gaussian elimination (two sub-diagonals
// forward, two super-diagonals back) is implemented for real and verified
// by computing the residual of sampled line systems.
//
// Paper characteristics reproduced: FMA-dominated with a visible divide
// component (the eliminations), moderate SIMD gains (Fig 10), and the
// square-rank-count convention (the paper runs SP on 121 processes).
#include <cmath>
#include <vector>

#include "common/strfmt.hpp"
#include "nas/kernel.hpp"
#include "nas/solvers.hpp"

namespace bgp::nas {
namespace {

using isa::FpOp;
using isa::IntOp;
using isa::LoopDesc;
using isa::LsOp;

struct SpSize {
  u64 nx, ny, nz_local;
  unsigned iterations;
  unsigned components = 5;
};

SpSize size_of(ProblemClass cls) {
  switch (cls) {
    case ProblemClass::kS: return {12, 12, 4, 2};
    case ProblemClass::kW: return {32, 32, 8, 3};
    case ProblemClass::kA: return {56, 56, 16, 3};
  }
  return {12, 12, 4, 2};
}

LoopDesc solve_loop(std::string_view name_, u64 cells) {
  LoopDesc d;
  d.name = name_;
  d.trip = cells;
  // Forward elimination (two multipliers) + back substitution per cell.
  d.body.fp_at(FpOp::kFma) = 9;
  d.body.fp_at(FpOp::kMult) = 3;
  // Reciprocals of the pivots are reused across the line (as NPB SP does),
  // so the per-cell divide count stays low.
  d.body.fp_at(FpOp::kDiv) = 1;
  d.body.fp_at(FpOp::kAddSub) = 2;
  d.body.ls_at(LsOp::kLoadDouble) = 8;
  d.body.ls_at(LsOp::kStoreDouble) = 3;
  d.body.int_at(IntOp::kAlu) = 8;
  d.body.int_at(IntOp::kBranch) = 2;
  d.vectorizable = 0.35;  // recurrences along the line
  d.locality = isa::LocalityClass::kStreaming;
  return d;
}

/// Deterministic diagonally-dominant penta bands for line position t.
PentaBands sp_bands(u64 t, u64 line_seed) {
  const double v = std::sin(0.01 * static_cast<double>(t + line_seed));
  return PentaBands{-0.5 + 0.1 * v, -1.0 - 0.1 * v, 8.0 + v, -1.0 + 0.05 * v,
                    -0.5 - 0.05 * v};
}

/// Solve one penta line in place (rhs in, solution out); returns residual.
double sp_solve(u64 n, u64 seed, std::vector<double>& x) {
  return penta_solve(n, seed, sp_bands, x);
}

class SpKernel final : public Kernel {
 public:
  explicit SpKernel(ProblemClass cls) : Kernel(cls) {}

  [[nodiscard]] Benchmark id() const noexcept override {
    return Benchmark::kSP;
  }

  void run(rt::RankCtx& ctx) override {
    const SpSize sz = size_of(class_);
    const unsigned p = ctx.size();
    const unsigned r = ctx.rank();
    const u64 plane = sz.nx * sz.ny;
    const u64 cells = plane * sz.nz_local;
    const u64 nz = sz.nz_local * p;
    const unsigned nc = sz.components;

    auto u = ctx.alloc<double>(cells * nc);
    // Initial field.
    for (u64 i = 0; i < cells * nc; ++i) {
      u[i] = 1.0 + 0.001 * std::sin(0.37 * static_cast<double>(
                                               i + r * cells * nc));
    }
    ctx.touch(rt::MemRange{u.addr(), u.bytes(), true}, 3.0);

    double worst = 0.0;
    auto idx = [&](u64 i, u64 j, u64 k, unsigned c) {
      return ((k * sz.ny + j) * sz.nx + i) * nc + c;
    };

    for (unsigned it = 0; it < sz.iterations; ++it) {
      // ---- x lines (contiguous within a row, component-strided) ----------
      std::vector<double> line(sz.nx);
      for (u64 k = 0; k < sz.nz_local; ++k) {
        for (u64 j = 0; j < sz.ny; ++j) {
          for (unsigned c = 0; c < nc; ++c) {
            for (u64 i = 0; i < sz.nx; ++i) line[i] = u[idx(i, j, k, c)];
            worst = std::max(worst,
                             sp_solve(sz.nx, 17 * (j + k) + c, line));
            for (u64 i = 0; i < sz.nx; ++i) u[idx(i, j, k, c)] = line[i];
          }
        }
      }
      ctx.loop(solve_loop("sp_xsolve", cells * nc),
               {rt::MemRange{u.addr(), u.bytes(), false},
                rt::MemRange{u.addr(), u.bytes(), true}});

      // ---- y lines -------------------------------------------------------
      std::vector<double> yline(sz.ny);
      for (u64 k = 0; k < sz.nz_local; ++k) {
        for (u64 i = 0; i < sz.nx; ++i) {
          for (unsigned c = 0; c < nc; ++c) {
            for (u64 j = 0; j < sz.ny; ++j) yline[j] = u[idx(i, j, k, c)];
            worst = std::max(worst,
                             sp_solve(sz.ny, 23 * (i + k) + c, yline));
            for (u64 j = 0; j < sz.ny; ++j) u[idx(i, j, k, c)] = yline[j];
          }
        }
      }
      ctx.loop(solve_loop("sp_ysolve", cells * nc),
               {rt::MemRange{u.addr(), u.bytes(), false},
                rt::MemRange{u.addr(), u.bytes(), true}});

      // ---- z lines via pencil transpose -----------------------------------
      worst = std::max(worst, z_solve(ctx, sz, p, r, nz, u));
    }

    const double global_worst = ctx.allreduce_max(worst);
    if (ctx.rank() == 0) {
      record(std::isfinite(global_worst) && global_worst < 1e-9,
             strfmt("max line residual %.3e over %u ADI sweeps", global_worst,
                    sz.iterations));
    }
  }

 private:
  /// Transpose z-pencils, solve along z, transpose back. Returns the worst
  /// line residual seen locally.
  double z_solve(rt::RankCtx& ctx, const SpSize& sz, unsigned p, unsigned r,
                 u64 nz, rt::SimArray<double>& u) {
    const u64 plane = sz.nx * sz.ny;
    const unsigned nc = sz.components;
    auto idx = [&](u64 col, u64 k, unsigned c) {
      return (k * plane + col) * nc + c;
    };

    // Send each destination the z-segments of the columns it owns.
    std::vector<std::vector<double>> out(p), in;
    for (unsigned d = 0; d < p; ++d) {
      const Block cols = block_of(plane, p, d);
      out[d].reserve(cols.size() * sz.nz_local * nc);
      for (u64 col = cols.begin; col < cols.end; ++col) {
        for (u64 k = 0; k < sz.nz_local; ++k) {
          for (unsigned c = 0; c < nc; ++c) {
            out[d].push_back(u[idx(col, k, c)]);
          }
        }
      }
    }
    ctx.touch(rt::MemRange{u.addr(), u.bytes(), false}, 2.0);
    alltoallv_values(ctx, out, in);

    // Assemble full-z lines for my column block and solve.
    const Block mine = block_of(plane, p, r);
    double worst = 0.0;
    std::vector<double> line(nz);
    for (u64 lc = 0; lc < mine.size(); ++lc) {
      for (unsigned c = 0; c < nc; ++c) {
        for (unsigned s = 0; s < p; ++s) {
          const double* seg =
              in[s].data() + (lc * sz.nz_local + 0) * nc + c;
          for (u64 k = 0; k < sz.nz_local; ++k) {
            line[s * sz.nz_local + k] = seg[k * nc];
          }
        }
        worst = std::max(
            worst, sp_solve(nz, 31 * (mine.begin + lc) + c, line));
        for (unsigned s = 0; s < p; ++s) {
          double* seg = in[s].data() + (lc * sz.nz_local + 0) * nc + c;
          for (u64 k = 0; k < sz.nz_local; ++k) {
            seg[k * nc] = line[s * sz.nz_local + k];
          }
        }
      }
    }
    ctx.loop(solve_loop("sp_zsolve", mine.size() * nz * nc), {});

    // Transpose back.
    std::vector<std::vector<double>> back;
    alltoallv_values(ctx, in, back);
    for (unsigned s = 0; s < p; ++s) {
      const Block cols = block_of(plane, p, s);
      u64 w = 0;
      for (u64 col = cols.begin; col < cols.end; ++col) {
        for (u64 k = 0; k < sz.nz_local; ++k) {
          for (unsigned c = 0; c < nc; ++c) {
            u[idx(col, k, c)] = back[s][w++];
          }
        }
      }
    }
    ctx.touch(rt::MemRange{u.addr(), u.bytes(), true}, 2.0);
    return worst;
  }
};

}  // namespace

std::unique_ptr<Kernel> make_sp(ProblemClass cls) {
  return std::make_unique<SpKernel>(cls);
}

}  // namespace bgp::nas
