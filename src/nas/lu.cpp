// LU — SSOR-style lower/upper sweeps for a 7-point operator on a 3D grid,
// slab-partitioned along z with the benchmark's signature wavefront
// pipeline: the lower sweep ripples bottom-up (each rank waits for the
// boundary plane of the rank below), the upper sweep ripples top-down.
//
// Paper characteristics reproduced: FMA-dominated mix with limited
// SIMDizability (the sweeps carry dependencies), moderate optimization
// gains (Fig 10).
#include <cmath>
#include <vector>

#include "common/strfmt.hpp"
#include "nas/kernel.hpp"

namespace bgp::nas {
namespace {

using isa::FpOp;
using isa::IntOp;
using isa::LoopDesc;
using isa::LsOp;

struct LuSize {
  u64 nx, ny, nz_local;
  unsigned iterations;
};

LuSize size_of(ProblemClass cls) {
  switch (cls) {
    case ProblemClass::kS: return {16, 16, 4, 3};
    case ProblemClass::kW: return {48, 48, 12, 4};
    case ProblemClass::kA: return {64, 64, 24, 4};
  }
  return {16, 16, 4, 3};
}

LoopDesc sweep_loop(std::string_view name_, u64 points) {
  LoopDesc d;
  d.name = name_;
  d.trip = points;
  // Triangular solve step: 3 neighbour FMAs + diagonal scale + update.
  d.body.fp_at(FpOp::kFma) = 5;
  d.body.fp_at(FpOp::kMult) = 1;
  d.body.fp_at(FpOp::kAddSub) = 2;
  d.body.ls_at(LsOp::kLoadDouble) = 5;
  d.body.ls_at(LsOp::kStoreDouble) = 1;
  d.body.int_at(IntOp::kAlu) = 8;
  d.body.int_at(IntOp::kBranch) = 2;
  d.vectorizable = 0.3;  // wavefront dependencies
  d.locality = isa::LocalityClass::kStreaming;
  return d;
}

LoopDesc residual_loop(u64 points) {
  LoopDesc d;
  d.name = "lu_residual";
  d.trip = points;
  d.body.fp_at(FpOp::kFma) = 6;
  d.body.fp_at(FpOp::kAddSub) = 2;
  d.body.ls_at(LsOp::kLoadDouble) = 8;
  d.body.ls_at(LsOp::kStoreDouble) = 1;
  d.body.int_at(IntOp::kAlu) = 6;
  d.body.int_at(IntOp::kBranch) = 1;
  d.vectorizable = 0.6;
  d.locality = isa::LocalityClass::kStreaming;
  return d;
}

class LuKernel final : public Kernel {
 public:
  explicit LuKernel(ProblemClass cls) : Kernel(cls) {}

  [[nodiscard]] Benchmark id() const noexcept override {
    return Benchmark::kLU;
  }

  void run(rt::RankCtx& ctx) override {
    const LuSize sz = size_of(class_);
    const unsigned p = ctx.size();
    const unsigned r = ctx.rank();
    const u64 plane = sz.nx * sz.ny;
    const u64 interior = plane * sz.nz_local;
    const u64 ext = plane * (sz.nz_local + 2);  // halo plane each end

    auto v = ctx.alloc<double>(ext);    // current iterate (extended)
    auto b = ctx.alloc<double>(interior);
    auto res = ctx.alloc<double>(interior);

    // Manufactured RHS: smooth field.
    for (u64 k = 0; k < sz.nz_local; ++k) {
      const double gz = static_cast<double>(r * sz.nz_local + k + 1);
      for (u64 j = 0; j < sz.ny; ++j) {
        for (u64 i = 0; i < sz.nx; ++i) {
          b[(k * sz.ny + j) * sz.nx + i] =
              std::sin(0.1 * gz) + std::cos(0.05 * (i + 2.0 * j));
        }
      }
    }

    auto at = [&](u64 i, u64 j, u64 kext) {
      return (kext * sz.ny + j) * sz.nx + i;
    };
    const double diag = 6.0 + 0.5;  // diagonally dominant
    constexpr double omega = 1.2;   // SSOR relaxation

    const double r0 = residual_norm(ctx, sz, p, r, v, b, res);
    double rn = r0;

    for (unsigned it = 0; it < sz.iterations; ++it) {
      // ---- lower sweep: pipeline bottom-up ------------------------------
      if (r > 0) {
        ctx.recv_values<double>(r - 1, std::span(&v[at(0, 0, 0)], plane),
                                /*tag=*/10 + static_cast<int>(it));
        ctx.touch(rt::MemRange{v.addr(at(0, 0, 0)), plane * 8, true}, 2.0);
      }
      for (u64 k = 1; k <= sz.nz_local; ++k) {
        for (u64 j = 0; j < sz.ny; ++j) {
          for (u64 i = 0; i < sz.nx; ++i) {
            // Forward SOR: lower neighbours fresh, upper ones from the
            // previous sweep (halo planes refreshed by residual_norm).
            const double xm = i > 0 ? v[at(i - 1, j, k)] : 0.0;
            const double ym = j > 0 ? v[at(i, j - 1, k)] : 0.0;
            const double zm = v[at(i, j, k - 1)];
            const double xp = i + 1 < sz.nx ? v[at(i + 1, j, k)] : 0.0;
            const double yp = j + 1 < sz.ny ? v[at(i, j + 1, k)] : 0.0;
            const double zp = v[at(i, j, k + 1)];
            const u64 bi = ((k - 1) * sz.ny + j) * sz.nx + i;
            v[at(i, j, k)] =
                (1.0 - omega) * v[at(i, j, k)] +
                omega * (b[bi] + xm + ym + zm + xp + yp + zp) / diag;
          }
        }
      }
      ctx.loop(sweep_loop("lu_lower", interior),
               {rt::MemRange{v.addr(), v.bytes(), true},
                rt::MemRange{b.addr(), b.bytes(), false}});
      if (r + 1 < p) {
        ctx.send_values<double>(r + 1,
                                std::span(&v[at(0, 0, sz.nz_local)], plane),
                                /*tag=*/10 + static_cast<int>(it));
      }

      // ---- upper sweep: pipeline top-down --------------------------------
      if (r + 1 < p) {
        ctx.recv_values<double>(
            r + 1, std::span(&v[at(0, 0, sz.nz_local + 1)], plane),
            /*tag=*/100 + static_cast<int>(it));
        ctx.touch(rt::MemRange{v.addr(at(0, 0, sz.nz_local + 1)), plane * 8,
                               true},
                  2.0);
      }
      for (u64 k = sz.nz_local; k >= 1; --k) {
        for (u64 j = sz.ny; j-- > 0;) {
          for (u64 i = sz.nx; i-- > 0;) {
            // Backward SOR: upper neighbours fresh, lower ones current.
            const double xp = i + 1 < sz.nx ? v[at(i + 1, j, k)] : 0.0;
            const double yp = j + 1 < sz.ny ? v[at(i, j + 1, k)] : 0.0;
            const double zp = v[at(i, j, k + 1)];
            const double xm = i > 0 ? v[at(i - 1, j, k)] : 0.0;
            const double ym = j > 0 ? v[at(i, j - 1, k)] : 0.0;
            const double zm = v[at(i, j, k - 1)];
            const u64 bi = ((k - 1) * sz.ny + j) * sz.nx + i;
            v[at(i, j, k)] =
                (1.0 - omega) * v[at(i, j, k)] +
                omega * (b[bi] + xp + yp + zp + xm + ym + zm) / diag;
          }
        }
      }
      ctx.loop(sweep_loop("lu_upper", interior),
               {rt::MemRange{v.addr(), v.bytes(), true},
                rt::MemRange{b.addr(), b.bytes(), false}});
      if (r > 0) {
        ctx.send_values<double>(r - 1, std::span(&v[at(0, 0, 1)], plane),
                                /*tag=*/100 + static_cast<int>(it));
      }

      rn = residual_norm(ctx, sz, p, r, v, b, res);
    }

    if (ctx.rank() == 0) {
      const double factor = rn / r0;
      record(std::isfinite(factor) && factor < 0.5,
             strfmt("SSOR residual %.3e -> %.3e (factor %.4f)", r0, rn,
                    factor));
    }
  }

 private:
  /// || b - A v || with A = diag*I - sum(6 neighbours) (halo-exchanged).
  double residual_norm(rt::RankCtx& ctx, const LuSize& sz, unsigned p,
                       unsigned r, rt::SimArray<double>& v,
                       rt::SimArray<double>& b, rt::SimArray<double>& res) {
    const u64 plane = sz.nx * sz.ny;
    auto at = [&](u64 i, u64 j, u64 kext) {
      return (kext * sz.ny + j) * sz.nx + i;
    };
    // Halo exchange (both directions, even/odd phased like CG).
    if (p > 1) {
      if (r + 1 < p) {
        ctx.sendrecv(r + 1,
                     std::as_bytes(std::span(&v[at(0, 0, sz.nz_local)], plane)),
                     std::as_writable_bytes(
                         std::span(&v[at(0, 0, sz.nz_local + 1)], plane)),
                     /*tag=*/3);
      }
      if (r > 0) {
        ctx.sendrecv(r - 1, std::as_bytes(std::span(&v[at(0, 0, 1)], plane)),
                     std::as_writable_bytes(std::span(&v[at(0, 0, 0)], plane)),
                     /*tag=*/3);
      }
    } else {
      for (u64 i = 0; i < plane; ++i) {
        v[at(0, 0, 0) + i] = 0.0;
        v[at(0, 0, sz.nz_local + 1) + i] = 0.0;
      }
    }
    const double diag = 6.0 + 0.5;
    double acc = 0;
    for (u64 k = 1; k <= sz.nz_local; ++k) {
      for (u64 j = 0; j < sz.ny; ++j) {
        for (u64 i = 0; i < sz.nx; ++i) {
          const double xm = i > 0 ? v[at(i - 1, j, k)] : 0.0;
          const double xp = i + 1 < sz.nx ? v[at(i + 1, j, k)] : 0.0;
          const double ym = j > 0 ? v[at(i, j - 1, k)] : 0.0;
          const double yp = j + 1 < sz.ny ? v[at(i, j + 1, k)] : 0.0;
          const double zm = v[at(i, j, k - 1)];
          const double zp = v[at(i, j, k + 1)];
          const u64 bi = ((k - 1) * sz.ny + j) * sz.nx + i;
          const double rr =
              b[bi] - (diag * v[at(i, j, k)] - (xm + xp + ym + yp + zm + zp));
          res[bi] = rr;
          acc += rr * rr;
        }
      }
    }
    const u64 interior = plane * sz.nz_local;
    ctx.loop(residual_loop(interior),
             {rt::MemRange{v.addr(), v.bytes(), false},
              rt::MemRange{b.addr(), b.bytes(), false},
              rt::MemRange{res.addr(), res.bytes(), true}});
    return std::sqrt(ctx.allreduce_sum(acc));
  }
};

}  // namespace

std::unique_ptr<Kernel> make_lu(ProblemClass cls) {
  return std::make_unique<LuKernel>(cls);
}

}  // namespace bgp::nas
