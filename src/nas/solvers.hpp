// The dense/banded linear-algebra kernels the SP and BT benchmarks are
// built on, exposed for direct testing: a penta-diagonal (5-band) Gaussian
// elimination and a block-tridiagonal Thomas solver over 5x5 blocks with
// partially-pivoted dense block solves.
#pragma once

#include <array>
#include <vector>

#include "common/types.hpp"

namespace bgp::nas {

// ---- penta-diagonal (SP) ---------------------------------------------------

/// The five band coefficients of one row.
struct PentaBands {
  double a2 = 0;  ///< second sub-diagonal
  double a1 = 0;  ///< first sub-diagonal
  double b = 1;   ///< diagonal
  double c1 = 0;  ///< first super-diagonal
  double c2 = 0;  ///< second super-diagonal
};

/// Row-coefficient generator: bands(i) for row i of an n-row system.
using PentaRowFn = PentaBands (*)(u64 row, u64 seed);

/// Solve the penta-diagonal system defined by `rows(i, seed)` in place:
/// `x` holds the right-hand side on entry and the solution on exit.
/// Returns the max-norm residual of the original system (a built-in
/// verification, used by SP's NPB-style checks). No pivoting: rows must be
/// diagonally dominant.
double penta_solve(u64 n, u64 seed, PentaRowFn rows, std::vector<double>& x);

// ---- 5x5 block tridiagonal (BT) -------------------------------------------

inline constexpr unsigned kBlock = 5;
using Mat5 = std::array<double, kBlock * kBlock>;
using Vec5 = std::array<double, kBlock>;

[[nodiscard]] Mat5 mat5_mul(const Mat5& a, const Mat5& b);
[[nodiscard]] Vec5 mat5_vec(const Mat5& a, const Vec5& x);
[[nodiscard]] Mat5 mat5_sub(const Mat5& a, const Mat5& b);
[[nodiscard]] Vec5 vec5_sub(const Vec5& a, const Vec5& b);

/// Solve M X = RHS (5x5, multiple right-hand sides as columns) by Gaussian
/// elimination with partial pivoting.
[[nodiscard]] Mat5 mat5_solve(Mat5 m, Mat5 rhs);
[[nodiscard]] Vec5 mat5_solve_vec(const Mat5& m, const Vec5& rhs);

/// Cell-coefficient generator: fills the A (sub), B (diag), C (super)
/// blocks of cell i.
using BlockRowFn = void (*)(u64 cell, u64 seed, Mat5& a, Mat5& b, Mat5& c);

/// Block Thomas solve of one line of n cells; `x` holds the 5n-entry
/// right-hand side on entry and the solution on exit. Returns the max-norm
/// residual of the original block system.
double block_tridiag_solve(u64 n, u64 seed, BlockRowFn blocks,
                           std::vector<double>& x);

}  // namespace bgp::nas
