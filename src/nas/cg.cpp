// CG — conjugate gradient on a symmetric positive-definite sparse system
// (7-point 3D Poisson, slab-partitioned along z, stored in CSR with
// explicit column indices so the x-vector accesses drive the cache model
// with the benchmark's signature gather pattern). Halo planes are exchanged
// with the z-neighbours each iteration; dot products are allreduce.
//
// Paper characteristics reproduced: dominated by scalar FMA with limited
// SIMDizability (Fig 6), modest optimization gains (Fig 9).
#include <cmath>
#include <vector>

#include "common/strfmt.hpp"
#include "nas/kernel.hpp"

namespace bgp::nas {
namespace {

using isa::FpOp;
using isa::IntOp;
using isa::LoopDesc;
using isa::LsOp;

struct CgSize {
  u64 nx, ny, nz_local;
  unsigned iterations;
};

CgSize size_of(ProblemClass cls) {
  switch (cls) {
    case ProblemClass::kS: return {12, 12, 6, 4};
    case ProblemClass::kW: return {24, 24, 12, 8};
    case ProblemClass::kA: return {32, 32, 24, 10};
  }
  return {12, 12, 6, 4};
}

LoopDesc matvec_loop(u64 rows) {
  LoopDesc d;
  d.name = "cg_matvec";
  d.trip = rows;
  // Per row: 7 FMAs over the stencil nonzeros; value + index loads.
  d.body.fp_at(FpOp::kFma) = 7;
  d.body.ls_at(LsOp::kLoadDouble) = 7;   // matrix values
  d.body.ls_at(LsOp::kLoadSingle) = 7;   // column indices
  d.body.ls_at(LsOp::kStoreDouble) = 1;
  d.body.int_at(IntOp::kAlu) = 10;
  d.body.int_at(IntOp::kBranch) = 2;
  d.vectorizable = 0.25;  // indexed x-gather limits packing
  d.locality = isa::LocalityClass::kRandom;
  return d;
}

LoopDesc axpy_loop(u64 n, bool reduction) {
  LoopDesc d;
  d.name = reduction ? "cg_dot" : "cg_axpy";
  d.trip = n;
  d.body.fp_at(FpOp::kFma) = 1;
  d.body.ls_at(LsOp::kLoadDouble) = 2;
  if (!reduction) d.body.ls_at(LsOp::kStoreDouble) = 1;
  d.body.int_at(IntOp::kAlu) = 2;
  d.body.int_at(IntOp::kBranch) = 1;
  d.vectorizable = 0.5;  // short vectors between indexed ops
  d.reduction = reduction;
  d.locality = isa::LocalityClass::kStreaming;
  return d;
}

class CgKernel final : public Kernel {
 public:
  explicit CgKernel(ProblemClass cls) : Kernel(cls) {}

  [[nodiscard]] Benchmark id() const noexcept override {
    return Benchmark::kCG;
  }

  void run(rt::RankCtx& ctx) override {
    const CgSize sz = size_of(class_);
    const unsigned p = ctx.size();
    const unsigned r = ctx.rank();
    const u64 plane = sz.nx * sz.ny;
    const u64 rows = plane * sz.nz_local;  // this rank's rows
    const u64 nnz = rows * 7;

    // Extended x vector: one halo plane below + local + one above.
    const u64 xext = rows + 2 * plane;

    auto aval = ctx.alloc<double>(nnz);
    auto acol = ctx.alloc<u32>(nnz);  // indices into the extended x
    auto x = ctx.alloc<double>(xext);
    auto b = ctx.alloc<double>(rows);
    auto rres = ctx.alloc<double>(rows);
    auto pvec = ctx.alloc<double>(xext);
    auto q = ctx.alloc<double>(rows);

    build_matrix(sz, p, r, aval, acol);

    // RHS: b = A * ones — then the exact solution is all-ones, and CG's
    // residual must shrink toward it.
    x.fill(1.0);
    matvec(ctx, sz, p, r, aval, acol, x, b);
    // Symmetry spot-check: <A e_mix, e_alt> computed two ways.
    const double sym_err = symmetry_check(ctx, sz, p, r, aval, acol);

    // Start from zero: r = b, p = r.
    x.fill(0.0);
    for (u64 i = 0; i < rows; ++i) {
      rres[i] = b[i];
      pvec[plane + i] = b[i];
    }
    double rho = dot(ctx, rres, rres, rows);
    const double rho0 = rho;
    bool positive_definite = true;

    for (unsigned it = 0; it < sz.iterations; ++it) {
      matvec(ctx, sz, p, r, aval, acol, pvec, q);
      double pq = 0;
      for (u64 i = 0; i < rows; ++i) pq += pvec[plane + i] * q[i];
      ctx.loop(axpy_loop(rows, true),
               {rt::MemRange{pvec.addr(plane), rows * 8, false},
                rt::MemRange{q.addr(), rows * 8, false}});
      pq = ctx.allreduce_sum(pq);
      if (pq <= 0.0) positive_definite = false;

      const double alpha = rho / pq;
      for (u64 i = 0; i < rows; ++i) {
        x[plane + i] += alpha * pvec[plane + i];
        rres[i] -= alpha * q[i];
      }
      ctx.loop(axpy_loop(rows, false),
               {rt::MemRange{x.addr(plane), rows * 8, true},
                rt::MemRange{rres.addr(), rows * 8, true},
                rt::MemRange{q.addr(), rows * 8, false}});

      const double rho_new = dot(ctx, rres, rres, rows);
      const double beta = rho_new / rho;
      rho = rho_new;
      for (u64 i = 0; i < rows; ++i) {
        pvec[plane + i] = rres[i] + beta * pvec[plane + i];
      }
      ctx.loop(axpy_loop(rows, false),
               {rt::MemRange{pvec.addr(plane), rows * 8, true},
                rt::MemRange{rres.addr(), rows * 8, false}});
    }

    if (ctx.rank() == 0) {
      const double reduction = std::sqrt(rho / rho0);
      const bool ok = positive_definite && reduction < 0.9 &&
                      std::isfinite(reduction) && sym_err < 1e-10;
      record(ok, strfmt("residual reduced to %.3e of initial, sym_err=%.1e",
                        reduction, sym_err));
    }
  }

 private:
  /// 7-point Laplacian rows for this rank's slab; Dirichlet boundaries.
  /// Columns index the extended x vector (halo planes at both ends).
  void build_matrix(const CgSize& sz, unsigned p, unsigned r,
                    rt::SimArray<double>& aval, rt::SimArray<u32>& acol) {
    const u64 plane = sz.nx * sz.ny;
    const bool has_down = r > 0;
    const bool has_up = r + 1 < p;
    u64 e = 0;
    for (u64 k = 0; k < sz.nz_local; ++k) {
      for (u64 j = 0; j < sz.ny; ++j) {
        for (u64 i = 0; i < sz.nx; ++i) {
          const u64 row = (k * sz.ny + j) * sz.nx + i;
          const u64 self = plane + row;  // extended index
          auto push = [&](u64 col, double v) {
            aval[e] = v;
            acol[e] = static_cast<u32>(col);
            ++e;
          };
          push(self, 6.0 + 1e-3);  // slightly shifted for SPD robustness
          push(i > 0 ? self - 1 : self, i > 0 ? -1.0 : 0.0);
          push(i + 1 < sz.nx ? self + 1 : self, i + 1 < sz.nx ? -1.0 : 0.0);
          push(j > 0 ? self - sz.nx : self, j > 0 ? -1.0 : 0.0);
          push(j + 1 < sz.ny ? self + sz.nx : self,
               j + 1 < sz.ny ? -1.0 : 0.0);
          const bool down_ok = k > 0 || has_down;
          const bool up_ok = k + 1 < sz.nz_local || has_up;
          push(down_ok ? self - plane : self, down_ok ? -1.0 : 0.0);
          push(up_ok ? self + plane : self, up_ok ? -1.0 : 0.0);
        }
      }
    }
  }

  /// Exchange halo planes of `v` (extended layout) with the z-neighbours.
  void halo_exchange(rt::RankCtx& ctx, const CgSize& sz, unsigned p,
                     unsigned r, rt::SimArray<double>& v) {
    const u64 plane = sz.nx * sz.ny;
    const u64 rows = plane * sz.nz_local;
    if (p == 1) return;
    // Exchange with the upper neighbour, then the lower one; even/odd
    // phasing avoids ordering hazards with the eager protocol.
    if (r + 1 < p) {
      ctx.sendrecv(r + 1,
                   std::as_bytes(std::span(&v[plane + rows - plane], plane)),
                   std::as_writable_bytes(std::span(&v[plane + rows], plane)),
                   /*tag=*/1);
    }
    if (r > 0) {
      ctx.sendrecv(r - 1, std::as_bytes(std::span(&v[plane], plane)),
                   std::as_writable_bytes(std::span(&v[0], plane)),
                   /*tag=*/1);
    }
    ctx.touch(rt::MemRange{v.addr(0), plane * 8, true}, 2.0);
    ctx.touch(rt::MemRange{v.addr(plane + rows), plane * 8, true}, 2.0);
  }

  /// q = A * v (v in extended layout).
  void matvec(rt::RankCtx& ctx, const CgSize& sz, unsigned p, unsigned r,
              rt::SimArray<double>& aval, rt::SimArray<u32>& acol,
              rt::SimArray<double>& v, rt::SimArray<double>& q) {
    halo_exchange(ctx, sz, p, r, v);
    const u64 plane = sz.nx * sz.ny;
    const u64 rows = plane * sz.nz_local;
    for (u64 row = 0; row < rows; ++row) {
      double acc = 0;
      for (u64 e = row * 7; e < row * 7 + 7; ++e) {
        acc += aval[e] * v[acol[e]];
      }
      q[row] = acc;
    }
    ctx.loop(matvec_loop(rows),
             {rt::MemRange{aval.addr(), aval.bytes(), false},
              rt::MemRange{acol.addr(), acol.bytes(), false},
              rt::MemRange{q.addr(), q.bytes(), true}});
    // The x-gather: drive the cache with the real (near-diagonal) indices,
    // sampled at line granularity to stay tractable.
    gather_sampled(ctx, acol, v.addr(0), rows);
  }

  /// Sample every 4th nonzero's column index for the cache-model gather
  /// (8-byte elements; 1-in-4 sampling keeps counts honest within a line).
  void gather_sampled(rt::RankCtx& ctx, rt::SimArray<u32>& acol,
                      addr_t xbase, u64 rows) {
    std::vector<u32> idx;
    idx.reserve(rows * 7 / 4 + 1);
    for (u64 e = 0; e < rows * 7; e += 4) {
      idx.push_back(acol[e]);
    }
    ctx.gather(xbase, idx, sizeof(double), /*write=*/false);
  }

  [[nodiscard]] double dot(rt::RankCtx& ctx, rt::SimArray<double>& a,
                           rt::SimArray<double>& b, u64 n) {
    double acc = 0;
    for (u64 i = 0; i < n; ++i) acc += a[i] * b[i];
    ctx.loop(axpy_loop(n, true), {rt::MemRange{a.addr(), n * 8, false},
                                  rt::MemRange{b.addr(), n * 8, false}});
    return ctx.allreduce_sum(acc);
  }

  /// <Au, w> must equal <u, Aw> for symmetric A.
  [[nodiscard]] double symmetry_check(rt::RankCtx& ctx, const CgSize& sz,
                                      unsigned p, unsigned r,
                                      rt::SimArray<double>& aval,
                                      rt::SimArray<u32>& acol) {
    const u64 plane = sz.nx * sz.ny;
    const u64 rows = plane * sz.nz_local;
    auto u = ctx.alloc<double>(rows + 2 * plane);
    auto w = ctx.alloc<double>(rows + 2 * plane);
    auto au = ctx.alloc<double>(rows);
    auto aw = ctx.alloc<double>(rows);
    for (u64 i = 0; i < rows; ++i) {
      const u64 g = r * rows + i;
      u[plane + i] = std::sin(static_cast<double>(g) * 0.1);
      w[plane + i] = std::cos(static_cast<double>(g) * 0.07);
    }
    matvec(ctx, sz, p, r, aval, acol, u, au);
    matvec(ctx, sz, p, r, aval, acol, w, aw);
    double a = 0, bsum = 0;
    for (u64 i = 0; i < rows; ++i) {
      a += au[i] * w[plane + i];
      bsum += u[plane + i] * aw[i];
    }
    a = ctx.allreduce_sum(a);
    bsum = ctx.allreduce_sum(bsum);
    const double scale = std::max(1.0, std::fabs(a));
    return std::fabs(a - bsum) / scale;
  }
};

}  // namespace

std::unique_ptr<Kernel> make_cg(ProblemClass cls) {
  return std::make_unique<CgKernel>(cls);
}

}  // namespace bgp::nas
