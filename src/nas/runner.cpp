#include "nas/runner.hpp"

#include <stdexcept>

#include "common/log.hpp"
#include "postproc/sanity.hpp"

namespace bgp::nas {

RunOutput run_benchmark(const RunConfig& config) {
  rt::MachineConfig mc;
  mc.num_nodes = config.num_nodes;
  mc.mode = config.mode;
  mc.boot = config.boot;
  mc.opt = config.opt;
  mc.num_ranks_override = config.ranks_override;
  rt::Machine machine(mc);

  pc::Options opts;
  opts.app_name = std::string(name(config.bench));
  opts.write_dumps = false;
  pc::Session session(machine, opts);
  session.link_with_mpi();

  auto kernel = make_kernel(config.bench, config.cls);
  machine.run([&](rt::RankCtx& ctx) {
    ctx.mpi_init();
    kernel->run(ctx);
    ctx.mpi_finalize();
  });

  RunOutput out;
  out.dumps = session.dumps();
  out.elapsed = machine.elapsed();
  out.result = kernel->result();
  if (!out.result.verified) {
    log_warn("%s class %s: verification FAILED: %s",
             std::string(name(config.bench)).c_str(),
             std::string(name(config.cls)).c_str(),
             out.result.detail.c_str());
  }
  const auto sanity = post::check(out.dumps);
  if (!sanity.ok()) {
    throw std::runtime_error("counter dump sanity check failed: " +
                             sanity.problems.front().text);
  }
  const post::Aggregate agg(out.dumps, 0);
  out.record = post::make_record(opts.app_name, agg);
  return out;
}

}  // namespace bgp::nas
