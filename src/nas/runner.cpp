#include "nas/runner.hpp"

#include <stdexcept>

#include "common/log.hpp"
#include "postproc/sanity.hpp"
#include "runtime/obs_scope.hpp"

namespace bgp::nas {

RunOutput run_benchmark(const RunConfig& config) {
  rt::MachineConfig mc;
  mc.num_nodes = config.num_nodes;
  mc.mode = config.mode;
  mc.boot = config.boot;
  mc.opt = config.opt;
  mc.num_ranks_override = config.ranks_override;
  rt::Machine machine(mc);
  if (config.fault != nullptr) machine.set_fault_injector(config.fault);
  machine.set_ft_params(config.ft);

  pc::Options opts;
  opts.app_name = std::string(name(config.bench));
  opts.write_dumps = false;
  pc::Session session(machine, opts);
  session.link_with_mpi();

  auto kernel = make_kernel(config.bench, config.cls);
  const std::string region = "region." + std::string(name(config.bench));
  if (config.ft.enabled) {
    machine.run([&](rt::RankCtx& ctx) {
      ft::run_guarded(ctx, [&](rt::RankCtx& c) {
        c.mpi_init();
        rt::ObsScope span(c, region, obs::SpanCat::kRegion);
        kernel->run(c);
      });
      ft::finalize_guarded(ctx);
    });
  } else {
    machine.run([&](rt::RankCtx& ctx) {
      ctx.mpi_init();
      {
        rt::ObsScope span(ctx, region, obs::SpanCat::kRegion);
        kernel->run(ctx);
      }
      ctx.mpi_finalize();
    });
  }

  RunOutput out;
  out.dumps = session.dumps();
  out.elapsed = machine.elapsed();
  out.result = kernel->result();
  out.dead_nodes = machine.dead_nodes();
  out.recovery = machine.recovery_log();
  if (!out.result.verified) {
    log_warn("%s class %s: verification FAILED: %s",
             std::string(name(config.bench)).c_str(),
             std::string(name(config.cls)).c_str(),
             out.result.detail.c_str());
  }
  const auto sanity = post::check(out.dumps);
  if (!sanity.ok()) {
    throw std::runtime_error("counter dump sanity check failed: " +
                             sanity.problems.front().text);
  }
  const post::Aggregate agg(out.dumps, 0);
  out.record = post::make_record(opts.app_name, agg);
  out.record.nodes_expected = config.num_nodes;
  out.record.nodes_mined = static_cast<unsigned>(out.dumps.size());
  out.record.nodes_failed = static_cast<unsigned>(out.dead_nodes.size());
  return out;
}

}  // namespace bgp::nas
