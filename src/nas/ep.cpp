// EP — the NAS "Embarrassingly Parallel" kernel. Generates pairs of
// uniform deviates with the NAS 46-bit LCG (each rank jumping ahead to its
// own subsequence), applies the Marsaglia polar method to produce Gaussian
// pairs, accumulates the sums and the annulus counts, and reduces them.
// The only communication is the final reduction.
//
// Paper characteristics reproduced: dominated by scalar FMA (Fig 6), but
// with big wins from -O5 inlining of the random-number and math calls
// (Fig 9 shows EP among the largest optimization gains).
#include <cmath>

#include "common/rng.hpp"
#include "common/strfmt.hpp"
#include "nas/kernel.hpp"

namespace bgp::nas {
namespace {

using isa::FpOp;
using isa::IntOp;
using isa::LoopDesc;
using isa::LsOp;

u64 pairs_per_rank(ProblemClass cls) {
  switch (cls) {
    case ProblemClass::kS: return u64{1} << 13;
    case ProblemClass::kW: return u64{1} << 16;
    case ProblemClass::kA: return u64{1} << 18;
  }
  return 1 << 13;
}

/// Per-pair op mix of the generation loop (two LCG steps + scaling).
LoopDesc generation_loop(u64 pairs) {
  LoopDesc d;
  d.name = "ep_gen";
  d.trip = pairs;
  // Two randlc steps: each ~5 mult + 4 FMA + 1 add; plus 2 FMA for the
  // [0,1) -> (-1,1) scaling; stores of x[i], y[i].
  d.body.fp_at(FpOp::kMult) = 10;
  d.body.fp_at(FpOp::kFma) = 10;
  d.body.fp_at(FpOp::kAddSub) = 2;
  d.body.ls_at(LsOp::kStoreDouble) = 2;
  d.body.int_at(IntOp::kAlu) = 10;
  d.body.int_at(IntOp::kBranch) = 1;
  d.body.int_at(IntOp::kCall) = 4;  // vranlc()/helpers, inlined by -O5 IPA
  d.vectorizable = 0.15;            // the LCG recurrence is serial
  d.has_calls = true;
  d.locality = isa::LocalityClass::kStreaming;
  return d;
}

/// Per-pair op mix of the polar/acceptance loop.
LoopDesc polar_loop(u64 pairs) {
  LoopDesc d;
  d.name = "ep_polar";
  d.trip = pairs;
  // t = x*x + y*y (mult + FMA); accepted ~78.5%: log ~12 FMA-class ops,
  // sqrt ~8, scaling 3 mult, sums 2 add, annulus 2 add/abs — averaged in.
  d.body.fp_at(FpOp::kMult) = 4;
  d.body.fp_at(FpOp::kFma) = 17;
  d.body.fp_at(FpOp::kAddSub) = 5;
  d.body.fp_at(FpOp::kDiv) = 1;  // -2*log(t)/t
  d.body.ls_at(LsOp::kLoadDouble) = 2;
  d.body.int_at(IntOp::kAlu) = 7;
  d.body.int_at(IntOp::kBranch) = 2;
  d.body.int_at(IntOp::kCall) = 3;  // log(), sqrt(), annulus helper
  d.vectorizable = 0.15;  // acceptance branch blocks packing
  d.has_calls = true;
  d.locality = isa::LocalityClass::kStreaming;
  return d;
}

class EpKernel final : public Kernel {
 public:
  explicit EpKernel(ProblemClass cls) : Kernel(cls) {}

  [[nodiscard]] Benchmark id() const noexcept override {
    return Benchmark::kEP;
  }

  void run(rt::RankCtx& ctx) override {
    const u64 pairs = pairs_per_rank(class_);
    constexpr u64 kBatch = 2048;
    auto xs = ctx.alloc<double>(kBatch);
    auto ys = ctx.alloc<double>(kBatch);

    // Jump this rank's generator ahead of everyone below it (each pair
    // consumes two deviates).
    NasRng rng(NasRng::jump(NasRng::kDefaultSeed, NasRng::kDefaultA,
                            u64{ctx.rank()} * pairs * 2));

    double sx = 0.0, sy = 0.0;
    std::array<u64, 10> q{};
    u64 accepted = 0;

    for (u64 done = 0; done < pairs; done += kBatch) {
      const u64 n = std::min(kBatch, pairs - done);
      for (u64 i = 0; i < n; ++i) {
        xs[i] = 2.0 * rng.next() - 1.0;
        ys[i] = 2.0 * rng.next() - 1.0;
      }
      ctx.loop(generation_loop(n),
               {rt::MemRange{xs.addr(), n * 8, true},
                rt::MemRange{ys.addr(), n * 8, true}});

      for (u64 i = 0; i < n; ++i) {
        const double x = xs[i];
        const double y = ys[i];
        const double t = x * x + y * y;
        if (t <= 1.0 && t > 0.0) {
          const double z = std::sqrt(-2.0 * std::log(t) / t);
          const double gx = x * z;
          const double gy = y * z;
          sx += gx;
          sy += gy;
          const auto annulus = static_cast<unsigned>(
              std::min(9.0, std::floor(std::max(std::fabs(gx),
                                                std::fabs(gy)))));
          ++q[annulus];
          ++accepted;
        }
      }
      ctx.loop(polar_loop(n), {rt::MemRange{xs.addr(), n * 8, false},
                               rt::MemRange{ys.addr(), n * 8, false}});
    }

    // Global reductions (the kernel's only communication).
    const double gsx = ctx.allreduce_sum(sx);
    const double gsy = ctx.allreduce_sum(sy);
    const u64 gaccepted = ctx.allreduce_sum(accepted);
    u64 gq_total = 0;
    for (u64 c : q) gq_total += c;
    gq_total = ctx.allreduce_sum(gq_total);

    if (ctx.rank() == 0) {
      const double total =
          static_cast<double>(pairs) * static_cast<double>(ctx.size());
      const double ratio = static_cast<double>(gaccepted) / total;
      // pi/4 acceptance, 5-sigma statistical bounds on the Gaussian sums.
      const double sigma = 5.0 * std::sqrt(static_cast<double>(gaccepted));
      const bool ok_ratio = std::fabs(ratio - 0.7853981633974483) < 0.01;
      const bool ok_sums = std::fabs(gsx) < sigma && std::fabs(gsy) < sigma;
      const bool ok_counts = gq_total == gaccepted;
      record(ok_ratio && ok_sums && ok_counts,
             strfmt("ratio=%.6f sx=%.3f sy=%.3f accepted=%llu", ratio, gsx,
                    gsy, static_cast<unsigned long long>(gaccepted)));
    }
  }
};

}  // namespace

std::unique_ptr<Kernel> make_ep(ProblemClass cls) {
  return std::make_unique<EpKernel>(cls);
}

}  // namespace bgp::nas
