#include "nas/solvers.hpp"

#include <cmath>

namespace bgp::nas {

double penta_solve(u64 n, u64 seed, PentaRowFn rows, std::vector<double>& x) {
  std::vector<double> a2(n), a1(n), b(n), c1(n), c2(n), rhs(x);
  for (u64 i = 0; i < n; ++i) {
    const PentaBands w = rows(i, seed);
    a2[i] = i >= 2 ? w.a2 : 0.0;
    a1[i] = i >= 1 ? w.a1 : 0.0;
    b[i] = w.b;
    c1[i] = i + 1 < n ? w.c1 : 0.0;
    c2[i] = i + 2 < n ? w.c2 : 0.0;
  }
  // Forward elimination of the two sub-diagonals.
  for (u64 i = 0; i < n; ++i) {
    if (i + 1 < n) {
      const double m1 = a1[i + 1] / b[i];
      b[i + 1] -= m1 * c1[i];
      c1[i + 1] -= m1 * c2[i];
      x[i + 1] -= m1 * x[i];
    }
    if (i + 2 < n) {
      const double m2 = a2[i + 2] / b[i];
      a1[i + 2] -= m2 * c1[i];
      b[i + 2] -= m2 * c2[i];
      x[i + 2] -= m2 * x[i];
    }
  }
  // Back substitution with the two super-diagonals.
  for (u64 i = n; i-- > 0;) {
    double v = x[i];
    if (i + 1 < n) v -= c1[i] * x[i + 1];
    if (i + 2 < n) v -= c2[i] * x[i + 2];
    x[i] = v / b[i];
  }
  // Residual of the original system.
  double resid = 0;
  for (u64 i = 0; i < n; ++i) {
    const PentaBands w = rows(i, seed);
    double acc = w.b * x[i];
    if (i >= 2) acc += w.a2 * x[i - 2];
    if (i >= 1) acc += w.a1 * x[i - 1];
    if (i + 1 < n) acc += w.c1 * x[i + 1];
    if (i + 2 < n) acc += w.c2 * x[i + 2];
    resid = std::max(resid, std::fabs(acc - rhs[i]));
  }
  return resid;
}

Mat5 mat5_mul(const Mat5& a, const Mat5& b) {
  Mat5 c{};
  for (unsigned i = 0; i < kBlock; ++i) {
    for (unsigned k = 0; k < kBlock; ++k) {
      const double aik = a[i * kBlock + k];
      for (unsigned j = 0; j < kBlock; ++j) {
        c[i * kBlock + j] += aik * b[k * kBlock + j];
      }
    }
  }
  return c;
}

Vec5 mat5_vec(const Mat5& a, const Vec5& x) {
  Vec5 y{};
  for (unsigned i = 0; i < kBlock; ++i) {
    for (unsigned j = 0; j < kBlock; ++j) y[i] += a[i * kBlock + j] * x[j];
  }
  return y;
}

Mat5 mat5_sub(const Mat5& a, const Mat5& b) {
  Mat5 c;
  for (unsigned i = 0; i < kBlock * kBlock; ++i) c[i] = a[i] - b[i];
  return c;
}

Vec5 vec5_sub(const Vec5& a, const Vec5& b) {
  Vec5 c;
  for (unsigned i = 0; i < kBlock; ++i) c[i] = a[i] - b[i];
  return c;
}

Mat5 mat5_solve(Mat5 m, Mat5 rhs) {
  for (unsigned col = 0; col < kBlock; ++col) {
    unsigned piv = col;
    for (unsigned r = col + 1; r < kBlock; ++r) {
      if (std::fabs(m[r * kBlock + col]) > std::fabs(m[piv * kBlock + col])) {
        piv = r;
      }
    }
    if (piv != col) {
      for (unsigned j = 0; j < kBlock; ++j) {
        std::swap(m[col * kBlock + j], m[piv * kBlock + j]);
        std::swap(rhs[col * kBlock + j], rhs[piv * kBlock + j]);
      }
    }
    const double d = m[col * kBlock + col];
    for (unsigned r = 0; r < kBlock; ++r) {
      if (r == col) continue;
      const double f = m[r * kBlock + col] / d;
      for (unsigned j = 0; j < kBlock; ++j) {
        m[r * kBlock + j] -= f * m[col * kBlock + j];
        rhs[r * kBlock + j] -= f * rhs[col * kBlock + j];
      }
    }
  }
  Mat5 x;
  for (unsigned r = 0; r < kBlock; ++r) {
    const double d = m[r * kBlock + r];
    for (unsigned j = 0; j < kBlock; ++j) x[r * kBlock + j] = rhs[r * kBlock + j] / d;
  }
  return x;
}

Vec5 mat5_solve_vec(const Mat5& m, const Vec5& rhs) {
  Mat5 rhs_m{};
  for (unsigned i = 0; i < kBlock; ++i) rhs_m[i * kBlock] = rhs[i];
  const Mat5 x = mat5_solve(m, rhs_m);
  Vec5 out;
  for (unsigned i = 0; i < kBlock; ++i) out[i] = x[i * kBlock];
  return out;
}

double block_tridiag_solve(u64 n, u64 seed, BlockRowFn blocks,
                           std::vector<double>& x) {
  std::vector<Vec5> rhs(n), sol(n);
  for (u64 i = 0; i < n; ++i) {
    for (unsigned c = 0; c < kBlock; ++c) rhs[i][c] = x[i * kBlock + c];
  }
  // Forward elimination: Bp[i] = B[i] - A[i] * inv(Bp[i-1]) * C[i-1].
  std::vector<Mat5> bp(n), cfac(n);
  std::vector<Vec5> rp(n);
  {
    Mat5 a, b, c;
    blocks(0, seed, a, b, c);
    bp[0] = b;
    cfac[0] = c;
    rp[0] = rhs[0];
  }
  for (u64 i = 1; i < n; ++i) {
    Mat5 a, b, c;
    blocks(i, seed, a, b, c);
    const Mat5 g = mat5_solve(bp[i - 1], cfac[i - 1]);  // inv(Bp)*C
    bp[i] = mat5_sub(b, mat5_mul(a, g));
    const Vec5 h = mat5_solve_vec(bp[i - 1], rp[i - 1]);
    rp[i] = vec5_sub(rhs[i], mat5_vec(a, h));
    cfac[i] = c;
  }
  // Back substitution.
  sol[n - 1] = mat5_solve_vec(bp[n - 1], rp[n - 1]);
  for (u64 i = n - 1; i-- > 0;) {
    const Vec5 cx = mat5_vec(cfac[i], sol[i + 1]);
    sol[i] = mat5_solve_vec(bp[i], vec5_sub(rp[i], cx));
  }
  // Residual of the original block system.
  double resid = 0;
  for (u64 i = 0; i < n; ++i) {
    Mat5 a, b, c;
    blocks(i, seed, a, b, c);
    Vec5 acc = mat5_vec(b, sol[i]);
    if (i > 0) {
      const Vec5 t = mat5_vec(a, sol[i - 1]);
      for (unsigned k = 0; k < kBlock; ++k) acc[k] += t[k];
    }
    if (i + 1 < n) {
      const Vec5 t = mat5_vec(c, sol[i + 1]);
      for (unsigned k = 0; k < kBlock; ++k) acc[k] += t[k];
    }
    for (unsigned k = 0; k < kBlock; ++k) {
      resid = std::max(resid, std::fabs(acc[k] - rhs[i][k]));
    }
  }
  for (u64 i = 0; i < n; ++i) {
    for (unsigned c = 0; c < kBlock; ++c) x[i * kBlock + c] = sol[i][c];
  }
  return resid;
}

}  // namespace bgp::nas
