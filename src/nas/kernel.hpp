// From-scratch implementations of the NAS Parallel Benchmark kernels used
// by the paper (§V): MG, FT, EP, CG, IS, LU, SP and BT. Each kernel runs
// *real numerics on real data* (verified by its own checks, mirroring the
// NPB verification stage) while driving the simulated chip: loop-level op
// bundles go through the compiler model to the core, and the actual array
// address streams go through the cache hierarchy.
//
// Problem sizing is weak-scaling: each rank owns a footprint set by the
// problem class, so a Virtual Node Mode node carries 4x the footprint of an
// SMP/1 node — the same relationship the paper's class C runs had.
#pragma once

#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/rankctx.hpp"

namespace bgp::nas {

enum class Benchmark : u8 { kEP = 0, kCG, kMG, kFT, kIS, kLU, kSP, kBT };

[[nodiscard]] std::string_view name(Benchmark b) noexcept;
[[nodiscard]] Benchmark parse_benchmark(std::string_view s);
[[nodiscard]] const std::vector<Benchmark>& all_benchmarks();

/// Problem classes (scaled-down analogues of the NPB classes):
///   kS — seconds-fast sanity size for unit tests (~64 KB per rank)
///   kW — bench default (~1 MB per rank: 4 MB per VNM node, the Fig 11 knee)
///   kA — larger (~2.5 MB per rank)
enum class ProblemClass : u8 { kS = 0, kW, kA };

[[nodiscard]] std::string_view name(ProblemClass c) noexcept;
[[nodiscard]] ProblemClass parse_class(std::string_view s);

/// Outcome of the kernel's built-in verification (NPB-style).
struct KernelResult {
  bool verified = false;
  std::string detail;
};

class Kernel {
 public:
  virtual ~Kernel() = default;

  [[nodiscard]] virtual Benchmark id() const noexcept = 0;
  [[nodiscard]] ProblemClass problem_class() const noexcept { return class_; }

  /// The rank program. Called once per rank inside Machine::run; rank 0
  /// records the verification result.
  virtual void run(rt::RankCtx& ctx) = 0;

  [[nodiscard]] const KernelResult& result() const noexcept { return result_; }

 protected:
  explicit Kernel(ProblemClass cls) noexcept : class_(cls) {}

  /// Record the global verification outcome (call from rank 0 only; the
  /// scheduler token serializes access).
  void record(bool ok, std::string detail) {
    result_ = KernelResult{ok, std::move(detail)};
  }

  ProblemClass class_;

 private:
  KernelResult result_;
};

/// Kernel factory.
[[nodiscard]] std::unique_ptr<Kernel> make_kernel(Benchmark b,
                                                  ProblemClass cls);

// ---- shared helpers ---------------------------------------------------------

/// Contiguous block decomposition of `total` items over `parts`.
struct Block {
  u64 begin = 0;
  u64 end = 0;
  [[nodiscard]] u64 size() const noexcept { return end - begin; }
};
[[nodiscard]] Block block_of(u64 total, unsigned parts, unsigned index);

/// Variable-size all-to-all built on the fixed-chunk primitive: each block
/// is padded to the global maximum block size plus a length prefix. `send`
/// and `recv` must have ctx.size() entries.
void alltoallv_padded(rt::RankCtx& ctx,
                      const std::vector<std::vector<std::byte>>& send,
                      std::vector<std::vector<std::byte>>& recv);

/// Typed convenience wrapper over alltoallv_padded.
template <typename T>
void alltoallv_values(rt::RankCtx& ctx,
                      const std::vector<std::vector<T>>& send,
                      std::vector<std::vector<T>>& recv) {
  std::vector<std::vector<std::byte>> sraw(send.size());
  for (std::size_t i = 0; i < send.size(); ++i) {
    const auto bytes = std::as_bytes(std::span(send[i]));
    sraw[i].assign(bytes.begin(), bytes.end());
  }
  std::vector<std::vector<std::byte>> rraw;
  alltoallv_padded(ctx, sraw, rraw);
  recv.assign(rraw.size(), {});
  for (std::size_t i = 0; i < rraw.size(); ++i) {
    recv[i].resize(rraw[i].size() / sizeof(T));
    if (!rraw[i].empty()) {  // empty blocks have no buffer to copy
      std::memcpy(recv[i].data(), rraw[i].data(), rraw[i].size());
    }
  }
}

}  // namespace bgp::nas
