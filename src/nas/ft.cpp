// FT — 3D FFT benchmark. The complex grid is slab-partitioned along z;
// x-direction FFTs run on contiguous lines, y-direction FFTs are done as
// row-vectorized butterfly sweeps across whole planes (the layout-friendly
// formulation real FFT codes use), and the z-direction is reached through
// an all-to-all transpose. The radix-2 Cooley-Tukey kernels are implemented
// from scratch on std::complex<double>.
//
// Verification: a forward+inverse round trip must reproduce the original
// data, and Parseval's identity must hold between the two domains.
//
// Paper characteristics reproduced: complex arithmetic pairs perfectly onto
// the double-hummer, so FT is dominated by SIMD add-sub/FMA with -qarch440d
// (Figs 6 and 7) and shows the largest optimization gains (Fig 9). Its
// all-to-all plus blocked access also drive the >4x VNM DDR growth (Fig 12).
#include <bit>
#include <cmath>
#include <complex>
#include <vector>

#include "common/rng.hpp"
#include "common/strfmt.hpp"
#include "nas/kernel.hpp"

namespace bgp::nas {
namespace {

using cplx = std::complex<double>;
using isa::FpOp;
using isa::IntOp;
using isa::LoopDesc;
using isa::LsOp;

struct FtSize {
  u64 nx, ny;      ///< plane dimensions (powers of two)
  u64 nz_local;    ///< z planes per rank (power of two)
};

FtSize size_of(ProblemClass cls) {
  switch (cls) {
    case ProblemClass::kS: return {16, 16, 2};
    case ProblemClass::kW: return {64, 64, 8};
    case ProblemClass::kA: return {128, 64, 8};
  }
  return {16, 16, 2};
}

/// Butterfly op bundle: complex twiddle multiply + add/sub per butterfly.
LoopDesc butterfly_loop(std::string_view name_, u64 butterflies) {
  LoopDesc d;
  d.name = name_;
  d.trip = butterflies;
  // Complex multiply: 2 FMA + 2 mult; complex add + sub: 4 add-sub.
  d.body.fp_at(FpOp::kMult) = 2;
  d.body.fp_at(FpOp::kFma) = 2;
  d.body.fp_at(FpOp::kAddSub) = 4;
  d.body.ls_at(LsOp::kLoadDouble) = 4;
  d.body.ls_at(LsOp::kStoreDouble) = 4;
  d.body.int_at(IntOp::kAlu) = 9;
  d.body.int_at(IntOp::kBranch) = 1;
  d.vectorizable = 0.9;  // re/im pairs map straight onto the SIMD pipes
  d.locality = isa::LocalityClass::kBlocked;
  return d;
}

/// In-place radix-2 DIT FFT of one contiguous line.
void fft_line(cplx* a, u64 n, bool inverse) {
  // Bit-reversal permutation.
  for (u64 i = 1, j = 0; i < n; ++i) {
    u64 bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (u64 len = 2; len <= n; len <<= 1) {
    const double ang = (inverse ? 2.0 : -2.0) * M_PI / static_cast<double>(len);
    const cplx wl(std::cos(ang), std::sin(ang));
    for (u64 i = 0; i < n; i += len) {
      cplx w(1.0, 0.0);
      for (u64 k = 0; k < len / 2; ++k) {
        const cplx u = a[i + k];
        const cplx v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wl;
      }
    }
  }
  if (inverse) {
    const double inv = 1.0 / static_cast<double>(n);
    for (u64 i = 0; i < n; ++i) a[i] *= inv;
  }
}

class FtKernel final : public Kernel {
 public:
  explicit FtKernel(ProblemClass cls) : Kernel(cls) {}

  [[nodiscard]] Benchmark id() const noexcept override {
    return Benchmark::kFT;
  }

  void run(rt::RankCtx& ctx) override {
    FtSize sz = size_of(class_);
    p_ = ctx.size();
    if (!std::has_single_bit(static_cast<u64>(p_))) {
      // The transpose needs P | ny and P | nz; NPB FT has the same
      // power-of-two constraint. Degrade gracefully.
      if (ctx.rank() == 0) {
        record(false,
               strfmt("FT requires a power-of-two rank count; got %u", p_));
      }
      return;
    }
    // Large partitions: widen the plane so every rank owns a y-block,
    // shrinking the local z extent to keep the per-rank footprint constant.
    while (sz.ny < p_) {
      sz.ny *= 2;
      if (sz.nz_local > 1) sz.nz_local /= 2;
    }
    const u64 nz = sz.nz_local * p_;  // global z (power of two)
    const u64 local = sz.nx * sz.ny * sz.nz_local;

    auto data = ctx.alloc<cplx>(local);
    auto original = ctx.alloc<cplx>(local);
    auto zbuf = ctx.alloc<cplx>(local);  // y-slab layout after transpose

    // NPB-style pseudorandom initial field, rank-jumped.
    NasRng rng(NasRng::jump(314159265.0, NasRng::kDefaultA,
                            u64{ctx.rank()} * local * 2));
    for (u64 i = 0; i < local; ++i) {
      data[i] = cplx(rng.next(), rng.next());
      original[i] = data[i];
    }
    ctx.touch(rt::MemRange{data.addr(), data.bytes(), true}, 3.0);

    const double sum_sq_time = norm_sq(ctx, data, local);

    fft3d(ctx, sz, nz, data, zbuf, /*inverse=*/false);
    const double sum_sq_freq = norm_sq(ctx, data, local);

    fft3d(ctx, sz, nz, data, zbuf, /*inverse=*/true);

    // Round-trip error and Parseval check.
    double err = 0;
    for (u64 i = 0; i < local; ++i) {
      err = std::max(err, std::abs(data[i] - original[i]));
    }
    err = ctx.allreduce_max(err);
    const double n_total =
        static_cast<double>(sz.nx * sz.ny) * static_cast<double>(nz);
    const double parseval =
        std::fabs(sum_sq_freq / n_total - sum_sq_time) /
        std::max(1.0, sum_sq_time);

    if (ctx.rank() == 0) {
      record(err < 1e-9 && parseval < 1e-9,
             strfmt("roundtrip err=%.2e parseval=%.2e", err, parseval));
    }
  }

 private:
  unsigned p_ = 1;

  [[nodiscard]] static double norm_sq_local(const rt::SimArray<cplx>& a,
                                            u64 n) {
    double s = 0;
    for (u64 i = 0; i < n; ++i) s += std::norm(a[i]);
    return s;
  }

  [[nodiscard]] double norm_sq(rt::RankCtx& ctx, rt::SimArray<cplx>& a,
                               u64 n) {
    LoopDesc d;
    d.name = "ft_checksum";
    d.trip = n;
    d.body.fp_at(FpOp::kFma) = 2;
    d.body.ls_at(LsOp::kLoadDouble) = 2;
    d.body.int_at(IntOp::kAlu) = 2;
    d.body.int_at(IntOp::kBranch) = 1;
    d.vectorizable = 0.9;
    d.reduction = true;
    ctx.loop(d, {rt::MemRange{a.addr(), n * sizeof(cplx), false}});
    return ctx.allreduce_sum(norm_sq_local(a, n));
  }

  /// FFT all x-lines (contiguous) of the z-slab array.
  void fft_x(rt::RankCtx& ctx, const FtSize& sz, rt::SimArray<cplx>& a,
             u64 planes, bool inverse) {
    const u64 lines = sz.ny * planes;
    for (u64 l = 0; l < lines; ++l) {
      fft_line(&a[l * sz.nx], sz.nx, inverse);
    }
    const u64 butterflies =
        lines * (sz.nx / 2) * static_cast<u64>(std::bit_width(sz.nx) - 1);
    ctx.loop(butterfly_loop("ft_fft_x", butterflies),
             {rt::MemRange{a.addr(), a.bytes(), false},
              rt::MemRange{a.addr(), a.bytes(), true}});
  }

  /// FFT along y as row-vectorized butterflies over each plane.
  void fft_y(rt::RankCtx& ctx, const FtSize& sz, rt::SimArray<cplx>& a,
             u64 planes, bool inverse) {
    const u64 stride = sz.nx;
    for (u64 pl = 0; pl < planes; ++pl) {
      cplx* base = &a[pl * sz.nx * sz.ny];
      // Bit-reverse rows.
      for (u64 i = 1, j = 0; i < sz.ny; ++i) {
        u64 bit = sz.ny >> 1;
        for (; j & bit; bit >>= 1) j ^= bit;
        j ^= bit;
        if (i < j) {
          for (u64 x = 0; x < sz.nx; ++x) {
            std::swap(base[i * stride + x], base[j * stride + x]);
          }
        }
      }
      for (u64 len = 2; len <= sz.ny; len <<= 1) {
        const double ang =
            (inverse ? 2.0 : -2.0) * M_PI / static_cast<double>(len);
        const cplx wl(std::cos(ang), std::sin(ang));
        for (u64 i = 0; i < sz.ny; i += len) {
          cplx w(1.0, 0.0);
          for (u64 k = 0; k < len / 2; ++k) {
            cplx* row_u = base + (i + k) * stride;
            cplx* row_v = base + (i + k + len / 2) * stride;
            for (u64 x = 0; x < sz.nx; ++x) {
              const cplx u = row_u[x];
              const cplx v = row_v[x] * w;
              row_u[x] = u + v;
              row_v[x] = u - v;
            }
            w *= wl;
          }
        }
      }
      if (inverse) {
        const double inv = 1.0 / static_cast<double>(sz.ny);
        for (u64 i = 0; i < sz.nx * sz.ny; ++i) base[i] *= inv;
      }
    }
    const u64 butterflies = planes * (sz.ny / 2) *
                            static_cast<u64>(std::bit_width(sz.ny) - 1) *
                            sz.nx;
    ctx.loop(butterfly_loop("ft_fft_y", butterflies),
             {rt::MemRange{a.addr(), a.bytes(), false},
              rt::MemRange{a.addr(), a.bytes(), true}});
  }

  /// Transpose between z-slabs (nx,ny,nz_local) and y-slabs
  /// (nx, ny/P, nz): block (y-range r) of every local plane goes to rank r.
  void transpose(rt::RankCtx& ctx, const FtSize& sz, u64 nz,
                 rt::SimArray<cplx>& from, rt::SimArray<cplx>& to,
                 bool forward) {
    const u64 yb = sz.ny / p_;         // y rows per destination
    const u64 zb = nz / p_;            // z planes per source (nz_local)
    const u64 chunk_elems = sz.nx * yb * zb;
    std::vector<cplx> sbuf(chunk_elems * p_), rbuf(chunk_elems * p_);

    if (forward) {
      // from: z-slab [x, y, zlocal] -> send y-block d of every plane to d.
      for (unsigned d = 0; d < p_; ++d) {
        cplx* out = &sbuf[d * chunk_elems];
        u64 w = 0;
        for (u64 k = 0; k < zb; ++k) {
          for (u64 y = 0; y < yb; ++y) {
            const cplx* src = &from[(k * sz.ny + d * yb + y) * sz.nx];
            for (u64 x = 0; x < sz.nx; ++x) out[w++] = src[x];
          }
        }
      }
    } else {
      // from: y-slab [x, ylocal, z] -> send z-block d back to rank d.
      for (unsigned d = 0; d < p_; ++d) {
        cplx* out = &sbuf[d * chunk_elems];
        u64 w = 0;
        for (u64 k = 0; k < zb; ++k) {     // destination's local z index
          for (u64 y = 0; y < yb; ++y) {
            const cplx* src = &from[((d * zb + k) * yb + y) * sz.nx];
            for (u64 x = 0; x < sz.nx; ++x) out[w++] = src[x];
          }
        }
      }
    }
    ctx.touch(rt::MemRange{from.addr(), from.bytes(), false}, 2.0);

    ctx.alltoall(std::as_bytes(std::span(sbuf)),
                 std::as_writable_bytes(std::span(rbuf)),
                 chunk_elems * sizeof(cplx));

    if (forward) {
      // Assemble y-slab layout [x, ylocal(yb), z(nz)]: source rank s owns
      // z block s.
      for (unsigned s = 0; s < p_; ++s) {
        const cplx* in = &rbuf[s * chunk_elems];
        u64 w = 0;
        for (u64 k = 0; k < zb; ++k) {
          for (u64 y = 0; y < yb; ++y) {
            cplx* dst = &to[((s * zb + k) * yb + y) * sz.nx];
            for (u64 x = 0; x < sz.nx; ++x) dst[x] = in[w++];
          }
        }
      }
    } else {
      for (unsigned s = 0; s < p_; ++s) {
        const cplx* in = &rbuf[s * chunk_elems];
        u64 w = 0;
        for (u64 k = 0; k < zb; ++k) {
          for (u64 y = 0; y < yb; ++y) {
            cplx* dst = &to[(k * sz.ny + s * yb + y) * sz.nx];
            for (u64 x = 0; x < sz.nx; ++x) dst[x] = in[w++];
          }
        }
      }
    }
    ctx.touch(rt::MemRange{to.addr(), to.bytes(), true}, 2.0);
  }

  /// FFT along z on the y-slab layout [x, ylocal, z]: rows are (x,ylocal)
  /// planes indexed by z — reuse the row-vectorized formulation.
  void fft_z(rt::RankCtx& ctx, const FtSize& sz, u64 nz,
             rt::SimArray<cplx>& a, bool inverse) {
    const u64 row = sz.nx * (sz.ny / p_);  // elements per z "row"
    // Bit-reverse z rows.
    for (u64 i = 1, j = 0; i < nz; ++i) {
      u64 bit = nz >> 1;
      for (; j & bit; bit >>= 1) j ^= bit;
      j ^= bit;
      if (i < j) {
        for (u64 x = 0; x < row; ++x) std::swap(a[i * row + x], a[j * row + x]);
      }
    }
    for (u64 len = 2; len <= nz; len <<= 1) {
      const double ang =
          (inverse ? 2.0 : -2.0) * M_PI / static_cast<double>(len);
      const cplx wl(std::cos(ang), std::sin(ang));
      for (u64 i = 0; i < nz; i += len) {
        cplx w(1.0, 0.0);
        for (u64 k = 0; k < len / 2; ++k) {
          cplx* ru = &a[(i + k) * row];
          cplx* rv = &a[(i + k + len / 2) * row];
          for (u64 x = 0; x < row; ++x) {
            const cplx u = ru[x];
            const cplx v = rv[x] * w;
            ru[x] = u + v;
            rv[x] = u - v;
          }
          w *= wl;
        }
      }
    }
    if (inverse) {
      const double inv = 1.0 / static_cast<double>(nz);
      for (u64 i = 0; i < nz * row; ++i) a[i] *= inv;
    }
    const u64 butterflies =
        (nz / 2) * static_cast<u64>(std::bit_width(nz) - 1) * row;
    ctx.loop(butterfly_loop("ft_fft_z", butterflies),
             {rt::MemRange{a.addr(), a.bytes(), false},
              rt::MemRange{a.addr(), a.bytes(), true}});
  }

  void fft3d(rt::RankCtx& ctx, const FtSize& sz, u64 nz,
             rt::SimArray<cplx>& data, rt::SimArray<cplx>& zbuf,
             bool inverse) {
    fft_x(ctx, sz, data, sz.nz_local, inverse);
    fft_y(ctx, sz, data, sz.nz_local, inverse);
    transpose(ctx, sz, nz, data, zbuf, /*forward=*/true);
    fft_z(ctx, sz, nz, zbuf, inverse);
    transpose(ctx, sz, nz, zbuf, data, /*forward=*/false);
  }
};

}  // namespace

std::unique_ptr<Kernel> make_ft(ProblemClass cls) {
  return std::make_unique<FtKernel>(cls);
}

}  // namespace bgp::nas
