#include "nas/kernel.hpp"

#include <stdexcept>

namespace bgp::nas {

std::string_view name(Benchmark b) noexcept {
  switch (b) {
    case Benchmark::kEP: return "EP";
    case Benchmark::kCG: return "CG";
    case Benchmark::kMG: return "MG";
    case Benchmark::kFT: return "FT";
    case Benchmark::kIS: return "IS";
    case Benchmark::kLU: return "LU";
    case Benchmark::kSP: return "SP";
    case Benchmark::kBT: return "BT";
  }
  return "?";
}

Benchmark parse_benchmark(std::string_view s) {
  for (Benchmark b : all_benchmarks()) {
    if (s == name(b)) return b;
  }
  throw std::invalid_argument("unknown benchmark: " + std::string(s));
}

const std::vector<Benchmark>& all_benchmarks() {
  static const std::vector<Benchmark> all = {
      Benchmark::kEP, Benchmark::kCG, Benchmark::kMG, Benchmark::kFT,
      Benchmark::kIS, Benchmark::kLU, Benchmark::kSP, Benchmark::kBT,
  };
  return all;
}

std::string_view name(ProblemClass c) noexcept {
  switch (c) {
    case ProblemClass::kS: return "S";
    case ProblemClass::kW: return "W";
    case ProblemClass::kA: return "A";
  }
  return "?";
}

ProblemClass parse_class(std::string_view s) {
  if (s == "S") return ProblemClass::kS;
  if (s == "W") return ProblemClass::kW;
  if (s == "A") return ProblemClass::kA;
  throw std::invalid_argument("unknown problem class: " + std::string(s));
}

void alltoallv_padded(rt::RankCtx& ctx,
                      const std::vector<std::vector<std::byte>>& send,
                      std::vector<std::vector<std::byte>>& recv) {
  const unsigned p = ctx.size();
  if (send.size() != p) {
    throw std::invalid_argument("alltoallv_padded: need one block per rank");
  }
  u64 local_max = 0;
  for (const auto& blk : send) local_max = std::max<u64>(local_max, blk.size());
  const u64 chunk_payload = static_cast<u64>(
      ctx.allreduce_max(static_cast<double>(local_max)));
  const u64 chunk = chunk_payload + sizeof(u64);

  std::vector<std::byte> sbuf(chunk * p), rbuf(chunk * p);
  for (unsigned d = 0; d < p; ++d) {
    const u64 len = send[d].size();
    std::memcpy(sbuf.data() + d * chunk, &len, sizeof(u64));
    if (len > 0) {  // an empty block has no data() to copy from
      std::memcpy(sbuf.data() + d * chunk + sizeof(u64), send[d].data(), len);
    }
  }
  ctx.alltoall(sbuf, rbuf, chunk);
  recv.assign(p, {});
  for (unsigned s = 0; s < p; ++s) {
    u64 len = 0;
    std::memcpy(&len, rbuf.data() + s * chunk, sizeof(u64));
    recv[s].assign(rbuf.begin() + static_cast<std::ptrdiff_t>(s * chunk + sizeof(u64)),
                   rbuf.begin() + static_cast<std::ptrdiff_t>(s * chunk + sizeof(u64) + len));
  }
}

Block block_of(u64 total, unsigned parts, unsigned index) {
  const u64 base = total / parts;
  const u64 rem = total % parts;
  const u64 begin = index * base + std::min<u64>(index, rem);
  const u64 size = base + (index < rem ? 1 : 0);
  return Block{begin, begin + size};
}

// Forward declarations of the per-benchmark factories (defined in their
// translation units).
std::unique_ptr<Kernel> make_ep(ProblemClass);
std::unique_ptr<Kernel> make_cg(ProblemClass);
std::unique_ptr<Kernel> make_mg(ProblemClass);
std::unique_ptr<Kernel> make_ft(ProblemClass);
std::unique_ptr<Kernel> make_is(ProblemClass);
std::unique_ptr<Kernel> make_lu(ProblemClass);
std::unique_ptr<Kernel> make_sp(ProblemClass);
std::unique_ptr<Kernel> make_bt(ProblemClass);

std::unique_ptr<Kernel> make_kernel(Benchmark b, ProblemClass cls) {
  switch (b) {
    case Benchmark::kEP: return make_ep(cls);
    case Benchmark::kCG: return make_cg(cls);
    case Benchmark::kMG: return make_mg(cls);
    case Benchmark::kFT: return make_ft(cls);
    case Benchmark::kIS: return make_is(cls);
    case Benchmark::kLU: return make_lu(cls);
    case Benchmark::kSP: return make_sp(cls);
    case Benchmark::kBT: return make_bt(cls);
  }
  throw std::invalid_argument("unknown benchmark");
}

}  // namespace bgp::nas
