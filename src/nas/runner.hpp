// One-call instrumented benchmark runs: build the machine, link the
// interface library into "MPI", run the kernel, collect the per-node dumps
// and compute the standard metrics record. This is what the bench harnesses
// and examples drive.
#pragma once

#include "core/session.hpp"
#include "fault/fault.hpp"
#include "ft/ftcomm.hpp"
#include "nas/kernel.hpp"
#include "postproc/report.hpp"

namespace bgp::nas {

struct RunConfig {
  Benchmark bench = Benchmark::kEP;
  ProblemClass cls = ProblemClass::kW;
  unsigned num_nodes = 4;
  sys::OpMode mode = sys::OpMode::kVnm;
  sys::BootOptions boot{};
  opt::OptConfig opt = opt::OptConfig{opt::OptLevel::kO5, false, true};
  /// Use fewer ranks than the partition hosts (paper: 121 for SP/BT). 0=all.
  unsigned ranks_override = 0;
  /// Optional fault injector (borrowed, not owned): node deaths and dump
  /// faults fire per its plan during the run.
  fault::FaultInjector* fault = nullptr;
  /// ULFM-style survivor recovery. Disabled (the default), a node death
  /// aborts its ranks and strands blocked peers exactly as before; enabled,
  /// the kernel runs guarded and survivors recover, finalize and dump.
  ft::FtParams ft{};
};

struct RunOutput {
  std::vector<pc::NodeDump> dumps;  ///< per-node counter dumps
  cycles_t elapsed = 0;             ///< wall clock of the slowest node
  KernelResult result;              ///< kernel verification outcome
  post::AppRecord record;           ///< standard metrics (paper §IV)
  std::vector<unsigned> dead_nodes;        ///< nodes lost during the run
  std::vector<ft::RecoveryEvent> recovery; ///< machine recovery log (FT)
};

/// Run one benchmark fully instrumented (counters started in MPI_Init,
/// dumped at MPI_Finalize) and post-process the counters.
[[nodiscard]] RunOutput run_benchmark(const RunConfig& config);

}  // namespace bgp::nas
