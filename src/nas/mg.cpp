// MG — V-cycle multigrid on a 3D Poisson problem, slab-partitioned along z.
// Weighted-Jacobi smoothing, full-weighting restriction and trilinear
// prolongation are implemented for real on real grids; halo planes are
// exchanged with the z-neighbours at every level that still has at least
// one local plane.
//
// Paper characteristics reproduced: stencil sweeps vectorize extremely well,
// so MG is dominated by SIMD add-sub and SIMD FMA once -qarch440d is on
// (Figs 6 and 8).
#include <algorithm>
#include <cmath>
#include <vector>

#include "common/strfmt.hpp"
#include "nas/kernel.hpp"

namespace bgp::nas {
namespace {

using isa::FpOp;
using isa::IntOp;
using isa::LoopDesc;
using isa::LsOp;

struct MgSize {
  u64 nx, ny, nz_local;  ///< finest level, per rank
  unsigned vcycles;
  unsigned pre_smooth = 2, post_smooth = 2;
};

MgSize size_of(ProblemClass cls) {
  switch (cls) {
    case ProblemClass::kS: return {16, 16, 4, 3};
    case ProblemClass::kW: return {48, 48, 16, 4};
    case ProblemClass::kA: return {64, 64, 24, 4};
  }
  return {16, 16, 4, 2};
}

LoopDesc stencil_loop(std::string_view name_, u64 points, double vec) {
  LoopDesc d;
  d.name = name_;
  d.trip = points;
  // 7-point stencil: 6 adds + 1 FMA-ish scale, streaming loads/stores.
  d.body.fp_at(FpOp::kAddSub) = 6;
  d.body.fp_at(FpOp::kFma) = 2;
  d.body.ls_at(LsOp::kLoadDouble) = 8;
  d.body.ls_at(LsOp::kStoreDouble) = 1;
  d.body.int_at(IntOp::kAlu) = 6;
  d.body.int_at(IntOp::kBranch) = 1;
  d.vectorizable = vec;
  d.locality = isa::LocalityClass::kStreaming;
  return d;
}

/// One level's per-rank grid with one halo plane at each z end.
struct Level {
  u64 nx = 0, ny = 0, nz = 0;  // local interior planes
  rt::SimArray<double> u, rhs, res;

  [[nodiscard]] u64 plane() const noexcept { return nx * ny; }
  [[nodiscard]] u64 interior() const noexcept { return plane() * nz; }
  [[nodiscard]] u64 ext() const noexcept { return plane() * (nz + 2); }
  [[nodiscard]] u64 at(u64 i, u64 j, u64 k_ext) const noexcept {
    return (k_ext * ny + j) * nx + i;
  }
};

class MgKernel final : public Kernel {
 public:
  explicit MgKernel(ProblemClass cls) : Kernel(cls) {}

  [[nodiscard]] Benchmark id() const noexcept override {
    return Benchmark::kMG;
  }

  void run(rt::RankCtx& ctx) override {
    const MgSize sz = size_of(class_);
    const unsigned p = ctx.size();
    const unsigned r = ctx.rank();

    // Build the level hierarchy: halve all dimensions while they stay
    // representable (z halving needs at least 2 local planes).
    std::vector<Level> levels;
    u64 nx = sz.nx, ny = sz.ny, nz = sz.nz_local;
    for (;;) {
      Level lv;
      lv.nx = nx;
      lv.ny = ny;
      lv.nz = nz;
      lv.u = ctx.alloc<double>(lv.ext());
      lv.rhs = ctx.alloc<double>(lv.ext());
      lv.res = ctx.alloc<double>(lv.ext());
      levels.push_back(std::move(lv));
      if (nx < 8 || ny < 8 || nz < 2) break;
      nx /= 2;
      ny /= 2;
      nz /= 2;
    }

    // Problem: A u = rhs with a smooth manufactured right-hand side.
    Level& fine = levels[0];
    for (u64 k = 0; k < fine.nz; ++k) {
      const double gz =
          static_cast<double>(r * fine.nz + k) / (p * fine.nz);
      for (u64 j = 0; j < fine.ny; ++j) {
        for (u64 i = 0; i < fine.nx; ++i) {
          const double gx = static_cast<double>(i) / fine.nx;
          const double gy = static_cast<double>(j) / fine.ny;
          fine.rhs[fine.at(i, j, k + 1)] =
              std::sin(2 * M_PI * gx) * std::sin(2 * M_PI * gy) *
              std::sin(2 * M_PI * gz);
        }
      }
    }

    const double r0 = residual_norm(ctx, fine);
    double rN = r0;
    for (unsigned cycle = 0; cycle < sz.vcycles; ++cycle) {
      vcycle(ctx, levels, 0, sz);
      rN = residual_norm(ctx, fine);
    }

    if (ctx.rank() == 0) {
      const double factor = rN / r0;
      record(std::isfinite(factor) && factor < 0.2,
             strfmt("residual %.3e -> %.3e (factor %.3f) over %u V-cycles",
                    r0, rN, factor, sz.vcycles));
    }
  }

 private:
  // The kernel object is shared by every rank; all per-rank state lives on
  // the run() stack and rank identity is read from the context.
  // The problem is fully periodic (like NPB MG): x/y wrap locally, z wraps
  // around the rank ring, so the discretization is identical on every level
  // and rediscretized coarse-grid correction is exact up to interpolation.
  void halo(rt::RankCtx& ctx, Level& lv, rt::SimArray<double>& v) {
    const u64 plane = lv.plane();
    const unsigned p = ctx.size();
    const unsigned r = ctx.rank();
    if (p > 1) {
      const unsigned up = (r + 1) % p;
      const unsigned down = (r + p - 1) % p;
      // Eager sends never block, so post both sends before both receives;
      // direction tags keep the streams apart even when up == down (the
      // two-rank ring).
      ctx.send_values<double>(up, std::span(&v[lv.at(0, 0, lv.nz)], plane),
                              /*tag=*/20);
      ctx.send_values<double>(down, std::span(&v[lv.at(0, 0, 1)], plane),
                              /*tag=*/21);
      ctx.recv_values<double>(down, std::span(&v[lv.at(0, 0, 0)], plane),
                              /*tag=*/20);
      ctx.recv_values<double>(up, std::span(&v[lv.at(0, 0, lv.nz + 1)], plane),
                              /*tag=*/21);
    } else {
      for (u64 i = 0; i < plane; ++i) {
        v[lv.at(0, 0, 0) + i] = v[lv.at(0, 0, lv.nz) + i];
        v[lv.at(0, 0, lv.nz + 1) + i] = v[lv.at(0, 0, 1) + i];
      }
    }
    ctx.touch(rt::MemRange{v.addr(0), plane * 8, true}, 2.0);
  }

  /// Apply A = 6I - sum(neighbours) into `out` (interior only).
  void apply(rt::RankCtx& ctx, Level& lv, rt::SimArray<double>& v,
             rt::SimArray<double>& out) {
    halo(ctx, lv, v);
    for (u64 k = 1; k <= lv.nz; ++k) {
      for (u64 j = 0; j < lv.ny; ++j) {
        for (u64 i = 0; i < lv.nx; ++i) {
          const double c = v[lv.at(i, j, k)];
          const double xm = v[lv.at((i + lv.nx - 1) % lv.nx, j, k)];
          const double xp = v[lv.at((i + 1) % lv.nx, j, k)];
          const double ym = v[lv.at(i, (j + lv.ny - 1) % lv.ny, k)];
          const double yp = v[lv.at(i, (j + 1) % lv.ny, k)];
          const double zm = v[lv.at(i, j, k - 1)];
          const double zp = v[lv.at(i, j, k + 1)];
          out[lv.at(i, j, k)] = 6.0 * c - (xm + xp + ym + yp + zm + zp);
        }
      }
    }
    ctx.loop(stencil_loop("mg_apply", lv.interior(), 0.8),
             {rt::MemRange{v.addr(), v.bytes(), false},
              rt::MemRange{out.addr(), out.bytes(), true}});
  }

  /// Weighted Jacobi: u += w * (rhs - A u) / diag.
  void smooth(rt::RankCtx& ctx, Level& lv, unsigned sweeps) {
    constexpr double w = 0.8 / 6.0;
    for (unsigned s = 0; s < sweeps; ++s) {
      apply(ctx, lv, lv.u, lv.res);
      for (u64 idx = lv.plane(); idx < lv.plane() * (lv.nz + 1); ++idx) {
        lv.u[idx] += w * (lv.rhs[idx] - lv.res[idx]);
      }
      ctx.loop(stencil_loop("mg_smooth_update", lv.interior(), 0.9),
               {rt::MemRange{lv.u.addr(lv.plane()), lv.interior() * 8, true},
                rt::MemRange{lv.rhs.addr(lv.plane()), lv.interior() * 8,
                             false}});
    }
  }

  [[nodiscard]] double residual_norm(rt::RankCtx& ctx, Level& lv) {
    apply(ctx, lv, lv.u, lv.res);
    double acc = 0;
    for (u64 idx = lv.plane(); idx < lv.plane() * (lv.nz + 1); ++idx) {
      const double rr = lv.rhs[idx] - lv.res[idx];
      acc += rr * rr;
    }
    return std::sqrt(ctx.allreduce_sum(acc));
  }

  void vcycle(rt::RankCtx& ctx, std::vector<Level>& levels, std::size_t l,
              const MgSize& sz) {
    Level& lv = levels[l];
    if (l + 1 == levels.size()) {
      smooth(ctx, lv, 24);  // coarsest: just relax hard
      return;
    }
    Level& coarse = levels[l + 1];
    smooth(ctx, lv, sz.pre_smooth);

    // Residual, restricted by 2x averaging in every direction.
    apply(ctx, lv, lv.u, lv.res);
    for (u64 idx = lv.plane(); idx < lv.plane() * (lv.nz + 1); ++idx) {
      lv.res[idx] = lv.rhs[idx] - lv.res[idx];
    }
    for (u64 k = 0; k < coarse.nz; ++k) {
      for (u64 j = 0; j < coarse.ny; ++j) {
        for (u64 i = 0; i < coarse.nx; ++i) {
          double acc = 0;
          for (unsigned dk = 0; dk < 2; ++dk) {
            for (unsigned dj = 0; dj < 2; ++dj) {
              for (unsigned di = 0; di < 2; ++di) {
                acc += lv.res[lv.at(2 * i + di, 2 * j + dj,
                                    2 * k + dk + 1)];
              }
            }
          }
          // Full-weighting restriction (avg = acc/8) with the coarse grid
          // rediscretized by the same unscaled stencil: the coarse operator
          // stands for (2h)^2∆ = 4·h^2∆, so the residual equation needs
          // rhs = 4·avg = acc/2.
          coarse.rhs[coarse.at(i, j, k + 1)] = acc / 2.0;
          coarse.u[coarse.at(i, j, k + 1)] = 0.0;
        }
      }
    }
    ctx.loop(stencil_loop("mg_restrict", coarse.interior(), 0.7),
             {rt::MemRange{lv.res.addr(), lv.res.bytes(), false},
              rt::MemRange{coarse.rhs.addr(), coarse.rhs.bytes(), true}});

    vcycle(ctx, levels, l + 1, sz);

    // Refresh the coarse halos so prolongation can read across the rank
    // boundary.
    halo(ctx, coarse, coarse.u);

    // Trilinear (cell-centered) prolongation and correction: each fine cell
    // blends its parent with the next coarse neighbour on the finer side,
    // weights 3/4 and 1/4 per dimension, clamped at the boundary.
    for (u64 k = 0; k < lv.nz; ++k) {
      for (u64 j = 0; j < lv.ny; ++j) {
        for (u64 i = 0; i < lv.nx; ++i) {
          const u64 ci = i / 2, cj = j / 2, ck = k / 2;
          // Periodic in x/y; in z the +-1 neighbour may live in the
          // (just refreshed) coarse halo planes.
          const u64 ni = (ci + ((i & 1) ? 1 : coarse.nx - 1)) % coarse.nx;
          const u64 nj = (cj + ((j & 1) ? 1 : coarse.ny - 1)) % coarse.ny;
          const u64 nk_ext = (k & 1) ? ck + 2 : ck;  // ext z index of nbr
          double acc = 0;
          for (unsigned s = 0; s < 8; ++s) {
            const u64 ii = (s & 1) ? ni : ci;
            const u64 jj = (s & 2) ? nj : cj;
            const u64 kk_ext = (s & 4) ? nk_ext : ck + 1;
            const double w = ((s & 1) ? 0.25 : 0.75) *
                             ((s & 2) ? 0.25 : 0.75) *
                             ((s & 4) ? 0.25 : 0.75);
            acc += w * coarse.u[coarse.at(ii, jj, kk_ext)];
          }
          lv.u[lv.at(i, j, k + 1)] += acc;
        }
      }
    }
    ctx.loop(stencil_loop("mg_prolong", lv.interior(), 0.8),
             {rt::MemRange{coarse.u.addr(), coarse.u.bytes(), false},
              rt::MemRange{lv.u.addr(), lv.u.bytes(), true}});

    smooth(ctx, lv, sz.post_smooth);
  }
};

}  // namespace

std::unique_ptr<Kernel> make_mg(ProblemClass cls) {
  return std::make_unique<MgKernel>(cls);
}

}  // namespace bgp::nas
