// IS — the NAS Integer Sort kernel. Keys are generated with the NAS
// floating-point LCG (averaging four deviates, as NPB does, to get the
// characteristic non-uniform key distribution), bucketized across ranks,
// exchanged with an all-to-all, and counting-sorted locally; verification
// checks global sortedness and key conservation every repetition.
//
// Paper characteristics reproduced: almost no FP work (what FP there is
// comes from the key generator), random-access stress on the memory system
// (Fig 12: IS DDR traffic grows >4x in VNM due to cache interference).
#include <algorithm>
#include <cstring>
#include <numeric>

#include "common/rng.hpp"
#include "common/strfmt.hpp"
#include "nas/kernel.hpp"

namespace bgp::nas {
namespace {

using isa::FpOp;
using isa::IntOp;
using isa::LoopDesc;
using isa::LsOp;

struct IsSize {
  u64 keys_per_rank;
  u32 key_log2;  ///< keys uniform-ish in [0, 2^key_log2)
  unsigned repetitions;
};

IsSize size_of(ProblemClass cls) {
  switch (cls) {
    case ProblemClass::kS: return {4096, 14, 2};
    case ProblemClass::kW: return {32768, 22, 3};
    case ProblemClass::kA: return {65536, 24, 3};
  }
  return {4096, 14, 2};
}

LoopDesc keygen_loop(u64 keys) {
  LoopDesc d;
  d.name = "is_keygen";
  d.trip = keys;
  // Four randlc steps per key + averaging + scale to the key range.
  d.body.fp_at(FpOp::kMult) = 21;
  d.body.fp_at(FpOp::kFma) = 16;
  d.body.fp_at(FpOp::kAddSub) = 5;
  d.body.ls_at(LsOp::kStoreSingle) = 1;  // 4-byte key store
  d.body.int_at(IntOp::kAlu) = 4;
  d.body.int_at(IntOp::kBranch) = 1;
  d.body.int_at(IntOp::kCall) = 1;
  d.vectorizable = 0.1;
  d.has_calls = true;
  d.locality = isa::LocalityClass::kStreaming;
  return d;
}

LoopDesc bucket_count_loop(u64 keys) {
  LoopDesc d;
  d.name = "is_bucket_count";
  d.trip = keys;
  d.body.ls_at(LsOp::kLoadSingle) = 2;
  d.body.ls_at(LsOp::kStoreSingle) = 1;
  d.body.int_at(IntOp::kAlu) = 5;
  d.body.int_at(IntOp::kBranch) = 1;
  d.vectorizable = 0.0;  // data-dependent scatter
  d.locality = isa::LocalityClass::kRandom;
  return d;
}

LoopDesc counting_sort_loop(u64 keys) {
  LoopDesc d;
  d.name = "is_counting_sort";
  d.trip = keys;
  d.body.ls_at(LsOp::kLoadSingle) = 2;
  d.body.ls_at(LsOp::kStoreSingle) = 1;
  d.body.int_at(IntOp::kAlu) = 4;
  d.body.int_at(IntOp::kBranch) = 1;
  d.body.fp_at(FpOp::kFma) = 1;  // rank-weight accumulation (NPB partial verify)
  d.vectorizable = 0.0;
  d.locality = isa::LocalityClass::kRandom;
  return d;
}

class IsKernel final : public Kernel {
 public:
  explicit IsKernel(ProblemClass cls) : Kernel(cls) {}

  [[nodiscard]] Benchmark id() const noexcept override {
    return Benchmark::kIS;
  }

  void run(rt::RankCtx& ctx) override {
    const IsSize sz = size_of(class_);
    const unsigned p = ctx.size();
    const u64 max_key = u64{1} << sz.key_log2;

    auto keys = ctx.alloc<u32>(sz.keys_per_rank);
    // Local counting-sort workspace covering this rank's key sub-range.
    const Block my_range = block_of(max_key, p, ctx.rank());
    auto counts = ctx.alloc<u32>(std::max<u64>(my_range.size(), 1));

    NasRng rng(NasRng::jump(314159265.0, NasRng::kDefaultA,
                            u64{ctx.rank()} * sz.keys_per_rank * 4));

    bool all_ok = true;
    std::string fail;

    for (unsigned rep = 0; rep < sz.repetitions && all_ok; ++rep) {
      // ---- key generation (FP LCG, like NPB's create_seq) ----------------
      for (u64 i = 0; i < sz.keys_per_rank; ++i) {
        const double r =
            (rng.next() + rng.next() + rng.next() + rng.next()) / 4.0;
        keys[i] = static_cast<u32>(r * static_cast<double>(max_key));
      }
      ctx.loop(keygen_loop(sz.keys_per_rank),
               {rt::MemRange{keys.addr(), keys.bytes(), true}});

      // ---- bucketize per destination rank --------------------------------
      std::vector<std::vector<u32>> outgoing(p);
      for (u64 i = 0; i < sz.keys_per_rank; ++i) {
        // Destination owns the key's sub-range (balanced block split).
        const unsigned dest = static_cast<unsigned>(
            std::min<u64>(p - 1, u64{keys[i]} * p / max_key));
        // Block split is uneven by remainder; fix up around the boundary.
        unsigned d = dest;
        while (keys[i] < block_of(max_key, p, d).begin) --d;
        while (keys[i] >= block_of(max_key, p, d).end) ++d;
        outgoing[d].push_back(keys[i]);
      }
      ctx.loop(bucket_count_loop(sz.keys_per_rank),
               {rt::MemRange{keys.addr(), keys.bytes(), false}});

      // ---- exchange -------------------------------------------------------
      std::vector<std::vector<u32>> incoming;
      alltoallv_values(ctx, outgoing, incoming);

      // ---- local counting sort over this rank's key sub-range ------------
      counts.fill(0);
      u64 received = 0;
      // The scatter into `counts` is the benchmark's signature random-access
      // pattern; drive the cache model with the real indices.
      std::vector<u32> scatter_indices;
      for (const auto& blk : incoming) {
        for (u32 k : blk) {
          counts[k - my_range.begin]++;
          scatter_indices.push_back(static_cast<u32>(k - my_range.begin));
          ++received;
        }
      }
      ctx.gather(counts.addr(), scatter_indices, sizeof(u32), /*write=*/true);
      ctx.loop(counting_sort_loop(received));

      // Reconstruct the sorted keys (prefix-sum sweep over counts).
      std::vector<u32> sorted;
      sorted.reserve(received);
      for (u64 v = 0; v < my_range.size(); ++v) {
        for (u32 c = 0; c < counts[v]; ++c) {
          sorted.push_back(static_cast<u32>(my_range.begin + v));
        }
      }
      ctx.touch(rt::MemRange{counts.addr(), counts.bytes(), false}, 3.0);

      // ---- verification ----------------------------------------------------
      // (a) conservation: total keys preserved.
      const u64 total = ctx.allreduce_sum(received);
      // (b) global sortedness: my max <= right neighbour's min.
      double left_max = -1.0;
      const double my_max =
          sorted.empty() ? -1.0 : static_cast<double>(sorted.back());
      const double my_min = sorted.empty()
                                ? static_cast<double>(max_key)
                                : static_cast<double>(sorted.front());
      if (p > 1) {
        if (ctx.rank() + 1 < p) {
          ctx.send_values<double>(ctx.rank() + 1, std::span(&my_max, 1), 42);
        }
        if (ctx.rank() > 0) {
          ctx.recv_values<double>(ctx.rank() - 1, std::span(&left_max, 1), 42);
        }
      }
      const bool locally_sorted = std::is_sorted(sorted.begin(), sorted.end());
      const bool boundary_ok = left_max <= my_min || sorted.empty();
      const double bad =
          ctx.allreduce_sum((locally_sorted && boundary_ok) ? 0.0 : 1.0);

      if (ctx.rank() == 0) {
        const u64 expect = sz.keys_per_rank * p;
        if (total != expect || bad != 0.0) {
          all_ok = false;
          fail = strfmt("rep %u: total=%llu expect=%llu bad_ranks=%.0f", rep,
                        static_cast<unsigned long long>(total),
                        static_cast<unsigned long long>(expect), bad);
        }
      }
      // Everyone must agree on continuing.
      all_ok = ctx.allreduce_sum(all_ok ? 0.0 : 1.0) == 0.0;
    }

    if (ctx.rank() == 0) {
      record(all_ok, all_ok ? strfmt("%u repetitions sorted", sz.repetitions)
                            : fail);
    }
  }
};

}  // namespace

std::unique_ptr<Kernel> make_is(ProblemClass cls) {
  return std::make_unique<IsKernel>(cls);
}

}  // namespace bgp::nas
