#include "postproc/report.hpp"

#include "common/strfmt.hpp"

namespace bgp::post {

AppRecord make_record(const std::string& app, const Aggregate& agg) {
  AppRecord rec;
  rec.app = app;
  rec.exec_cycles = mean_exec_cycles(agg);
  rec.mflops_per_node = mean_mflops_per_node(agg);
  rec.ddr_traffic_bytes = mean_ddr_traffic_bytes(agg);
  rec.ddr_bandwidth_bytes_per_cycle = mean_ddr_bandwidth(agg);
  rec.l3_read_miss_ratio = l3_read_miss_ratio(agg);
  rec.fp = fp_profile(agg);
  return rec;
}

void write_metrics_csv(CsvWriter& csv, const std::vector<AppRecord>& records) {
  std::vector<std::string> header{
      "app",          "exec_cycles",      "mflops_per_node",
      "ddr_bytes",    "ddr_bytes_per_cyc", "l3_read_miss_ratio",
      "nodes_expected", "nodes_mined",    "nodes_failed",
  };
  for (std::size_t i = 0; i < isa::kNumFpOps; ++i) {
    header.push_back(std::string(isa::to_string(static_cast<isa::FpOp>(i))));
  }
  csv.header(header);
  for (const AppRecord& r : records) {
    std::vector<std::string> row{
        r.app,
        strfmt("%.0f", r.exec_cycles),
        strfmt("%.2f", r.mflops_per_node),
        strfmt("%.0f", r.ddr_traffic_bytes),
        strfmt("%.4f", r.ddr_bandwidth_bytes_per_cycle),
        strfmt("%.4f", r.l3_read_miss_ratio),
        strfmt("%u", r.nodes_expected),
        strfmt("%u", r.nodes_mined),
        strfmt("%u", r.nodes_failed),
    };
    for (double c : r.fp.counts) row.push_back(strfmt("%.0f", c));
    csv.row(row);
  }
}

void write_counter_stats_csv(CsvWriter& csv, const Aggregate& agg) {
  csv.header({"event_id", "event", "unit", "nodes", "min", "max", "mean"});
  for (u16 id = 0; id < isa::kNumEvents; ++id) {
    const RunningStats& s = agg.stats(id);
    if (s.count() == 0) continue;
    const isa::EventInfo& info = isa::event_info(id);
    if (info.unit == isa::Unit::kReserved && s.max() == 0) continue;
    csv.row({strfmt("%u", id), std::string(info.name),
             std::string(isa::to_string(info.unit)),
             strfmt("%llu", static_cast<unsigned long long>(s.count())),
             strfmt("%.0f", s.min()), strfmt("%.0f", s.max()),
             strfmt("%.2f", s.mean())});
  }
}

void write_full_csv(CsvWriter& csv, const std::vector<pc::NodeDump>& dumps,
                    unsigned set) {
  csv.header({"node", "card", "mode", "set", "counter", "event", "value"});
  for (const pc::NodeDump& d : dumps) {
    const pc::SetDump* s = Aggregate::find_set(d, set);
    if (s == nullptr) continue;
    for (unsigned c = 0; c < isa::kCountersPerUnit; ++c) {
      const isa::EventInfo& info = isa::event_info(d.event_of(c));
      if (info.unit == isa::Unit::kReserved && s->deltas[c] == 0) continue;
      csv.row({strfmt("%u", d.node_id), strfmt("%u", d.card_id),
               strfmt("%u", d.counter_mode), strfmt("%u", s->set_id),
               strfmt("%u", c), std::string(info.name),
               strfmt("%llu", static_cast<unsigned long long>(s->deltas[c]))});
    }
  }
}

}  // namespace bgp::post
