#include "postproc/timeline.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <optional>

#include "common/csv.hpp"
#include "common/strfmt.hpp"

namespace bgp::post {

namespace {

/// What each traced event contributes to the derived metrics; resolved once
/// per trace from its header's event list.
struct EventWeights {
  std::vector<double> flops;       ///< flops per count
  std::vector<double> simd_flops;  ///< flops per count, SIMD classes only
  std::vector<double> fp_instr;    ///< FP instructions per count
  std::vector<double> simd_instr;
  std::vector<double> ls_instr;
  std::vector<double> instr;       ///< completed instructions per count
  std::vector<double> ddr_read;    ///< DDR bytes read per count
  std::vector<double> ddr_write;
};

EventWeights resolve_weights(const std::vector<isa::EventId>& events) {
  EventWeights w;
  const std::size_t n = events.size();
  w.flops.assign(n, 0);
  w.simd_flops.assign(n, 0);
  w.fp_instr.assign(n, 0);
  w.simd_instr.assign(n, 0);
  w.ls_instr.assign(n, 0);
  w.instr.assign(n, 0);
  w.ddr_read.assign(n, 0);
  w.ddr_write.assign(n, 0);
  for (std::size_t j = 0; j < n; ++j) {
    const isa::EventId e = events[j];
    const u8 mode = isa::event_mode(e);
    const u8 c = isa::event_counter(e);
    if (mode == 0) {
      const unsigned slot = c % isa::ev::kPerCoreSlice;
      if (slot < isa::kNumFpOps) {
        const auto op = static_cast<isa::FpOp>(slot);
        w.flops[j] = isa::flops_per_op(op);
        w.fp_instr[j] = 1;
        if (isa::is_simd(op)) {
          w.simd_flops[j] = isa::flops_per_op(op);
          w.simd_instr[j] = 1;
        }
      } else if (slot < 8 + isa::kNumLsOps) {
        w.ls_instr[j] = 1;
      } else if (slot == 19) {
        w.instr[j] = 1;
      }
    } else if (mode == 1 && c >= 16 && c < 48) {
      const auto ev = static_cast<isa::DdrEvent>((c - 16) % 16);
      if (ev == isa::DdrEvent::kBytesRead16B) w.ddr_read[j] = 16;
      if (ev == isa::DdrEvent::kBytesWritten16B) w.ddr_write[j] = 16;
    }
  }
  return w;
}

/// One open trace in the merge: the reader, its weights and the pending
/// (not yet fully consumed) record. At most one record is held per trace.
struct MergeSource {
  std::unique_ptr<trace::TraceReader> reader;
  EventWeights weights;
  std::optional<trace::IntervalRecord> cur;
  /// Leading intervals of `cur` already folded into the timeline (a
  /// coalesced record is consumed one covered interval at a time).
  u32 consumed = 0;
  bool failed = false;

  /// First interval index this source still covers, or nullopt when drained.
  [[nodiscard]] std::optional<u64> next_index() const {
    if (!cur.has_value()) return std::nullopt;
    return cur->index + consumed;
  }
};

void advance(MergeSource& src, std::vector<std::string>& problems) {
  src.consumed = 0;
  try {
    auto rec = src.reader->next();
    if (rec.has_value()) {
      src.cur = std::move(rec);
    } else {
      src.cur.reset();
    }
  } catch (const std::exception& e) {
    // Mid-file corruption: keep what was merged so far, drop the rest of
    // this trace (degraded mode), and report it.
    problems.push_back(e.what());
    src.cur.reset();
    src.failed = true;
  }
}

/// Signature used for change-point detection, each component in [0, 1]
/// after normalization against the timeline maxima.
struct Signature {
  double mflops = 0;
  double ddr = 0;
  double fp = 0;
  double ls = 0;
  double simd = 0;

  [[nodiscard]] double distance(const Signature& o) const noexcept {
    return std::abs(mflops - o.mflops) + std::abs(ddr - o.ddr) +
           std::abs(fp - o.fp) + std::abs(ls - o.ls) +
           std::abs(simd - o.simd);
  }
};

Signature signature_of(const IntervalMetrics& m, double mflops_max,
                       double ddr_max) {
  Signature s;
  s.mflops = mflops_max > 0 ? m.mflops / mflops_max : 0;
  s.ddr = ddr_max > 0 ? (m.ddr_read_mbs + m.ddr_write_mbs) / ddr_max : 0;
  s.fp = m.fp_fraction;
  s.ls = m.ls_fraction;
  s.simd = m.simd_fraction;
  return s;
}

void detect_phases(TimelineReport& report, const TimelineOptions& opts) {
  const auto& iv = report.intervals;
  if (iv.empty()) return;
  double mflops_max = 0;
  double ddr_max = 0;
  for (const IntervalMetrics& m : iv) {
    mflops_max = std::max(mflops_max, m.mflops);
    ddr_max = std::max(ddr_max, m.ddr_read_mbs + m.ddr_write_mbs);
  }

  // Walk the timeline keeping a running mean signature for the open phase;
  // an interval far from that mean opens a new phase, provided the open
  // phase is long enough to stand on its own (short excursions are folded
  // back in, which smooths single-interval spikes).
  std::vector<std::size_t> boundaries = {0};
  Signature mean = signature_of(iv[0], mflops_max, ddr_max);
  std::size_t phase_len = 1;
  for (std::size_t i = 1; i < iv.size(); ++i) {
    const Signature s = signature_of(iv[i], mflops_max, ddr_max);
    if (s.distance(mean) > opts.change_threshold &&
        phase_len >= opts.min_phase_intervals) {
      boundaries.push_back(i);
      mean = s;
      phase_len = 1;
      continue;
    }
    // Fold into the running mean.
    const double k = 1.0 / static_cast<double>(phase_len + 1);
    mean.mflops += (s.mflops - mean.mflops) * k;
    mean.ddr += (s.ddr - mean.ddr) * k;
    mean.fp += (s.fp - mean.fp) * k;
    mean.ls += (s.ls - mean.ls) * k;
    mean.simd += (s.simd - mean.simd) * k;
    ++phase_len;
  }
  boundaries.push_back(iv.size());

  for (std::size_t b = 0; b + 1 < boundaries.size(); ++b) {
    const std::size_t begin = boundaries[b];
    const std::size_t end = boundaries[b + 1];
    PhaseRecord ph;
    ph.id = static_cast<unsigned>(b);
    ph.first_interval = iv[begin].index;
    ph.last_interval = iv[end - 1].index;
    ph.t_begin = iv[begin].t_begin;
    ph.t_end = iv[end - 1].t_end;
    const double n = static_cast<double>(end - begin);
    for (std::size_t i = begin; i < end; ++i) {
      ph.mflops += iv[i].mflops / n;
      ph.ddr_read_mbs += iv[i].ddr_read_mbs / n;
      ph.ddr_write_mbs += iv[i].ddr_write_mbs / n;
      ph.fp_fraction += iv[i].fp_fraction / n;
      ph.ls_fraction += iv[i].ls_fraction / n;
      ph.simd_fraction += iv[i].simd_fraction / n;
    }
    report.phases.push_back(ph);
  }
}

}  // namespace

std::vector<std::filesystem::path> list_trace_files(
    const std::filesystem::path& dir, const std::string& app,
    bool include_partial) {
  if (!std::filesystem::is_directory(dir)) {
    throw BinIoError(
        strfmt("trace directory %s does not exist", dir.string().c_str()));
  }
  std::vector<std::filesystem::path> files;
  const std::string prefix = app.empty() ? "" : app + ".node";
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    const bool sealed = name.ends_with(trace::kTraceSuffix);
    const bool partial = name.ends_with(trace::kPartialSuffix);
    if (!sealed && !partial) continue;
    if (partial && !include_partial) continue;
    if (!prefix.empty() && !name.starts_with(prefix)) continue;
    files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

TimelineReport mine_timeline(const std::filesystem::path& dir,
                             const std::string& app,
                             const TimelineOptions& opts) {
  std::vector<std::filesystem::path> files;
  try {
    files = list_trace_files(dir, app, opts.include_partial);
  } catch (const std::exception& e) {
    TimelineReport report;
    report.problems.push_back(e.what());
    return report;
  }
  return mine_timeline(files, opts);
}

TimelineReport mine_timeline(const std::vector<std::filesystem::path>& files,
                             const TimelineOptions& opts) {
  TimelineReport report;
  report.coverage.expected = opts.expected_nodes;

  std::vector<MergeSource> sources;
  unsigned max_node = 0;
  for (const auto& file : files) {
    MergeSource src;
    try {
      src.reader = std::make_unique<trace::TraceReader>(file);
    } catch (const std::exception& e) {
      report.problems.push_back(e.what());
      continue;
    }
    const trace::TraceMeta& meta = src.reader->meta();
    max_node = std::max(max_node, meta.node_id);
    if (report.interval_cycles == 0) {
      report.interval_cycles = meta.interval_cycles;
    } else if (meta.interval_cycles != report.interval_cycles) {
      report.problems.push_back(strfmt(
          "%s: interval geometry mismatch (%llu cycles vs batch %llu)",
          file.string().c_str(),
          static_cast<unsigned long long>(meta.interval_cycles),
          static_cast<unsigned long long>(report.interval_cycles)));
      continue;
    }
    src.weights = resolve_weights(meta.events);
    sources.push_back(std::move(src));
  }
  report.coverage.loaded = static_cast<unsigned>(sources.size());
  if (report.coverage.expected == 0 && !sources.empty()) {
    report.coverage.expected = max_node + 1;
  }

  // Prime every source, then merge: repeatedly take the smallest interval
  // index any source still covers, fold in every covering source's
  // (span-prorated) deltas, and advance the sources whose record is spent.
  // Memory stays at one pending record per trace.
  for (MergeSource& src : sources) advance(src, report.problems);

  while (true) {
    u64 index = std::numeric_limits<u64>::max();
    for (const MergeSource& src : sources) {
      if (const auto ni = src.next_index(); ni.has_value()) {
        index = std::min(index, *ni);
      }
    }
    if (index == std::numeric_limits<u64>::max()) break;

    IntervalMetrics m;
    m.index = index;
    m.t_begin = index * report.interval_cycles;
    m.t_end = (index + 1) * report.interval_cycles;
    double flops = 0, simd_flops = 0, fp_instr = 0, simd_instr = 0;
    double ls_instr = 0, instr = 0, ddr_rd = 0, ddr_wr = 0;
    for (MergeSource& src : sources) {
      if (!src.cur.has_value()) continue;
      const trace::IntervalRecord& rec = *src.cur;
      if (rec.index > index) continue;
      // A coalesced record spreads its deltas evenly over its span.
      const double frac = 1.0 / static_cast<double>(rec.spanned);
      const EventWeights& w = src.weights;
      for (std::size_t j = 0; j < rec.values.size(); ++j) {
        const double v = static_cast<double>(rec.values[j]) * frac;
        flops += v * w.flops[j];
        simd_flops += v * w.simd_flops[j];
        fp_instr += v * w.fp_instr[j];
        simd_instr += v * w.simd_instr[j];
        ls_instr += v * w.ls_instr[j];
        instr += v * w.instr[j];
        ddr_rd += v * w.ddr_read[j];
        ddr_wr += v * w.ddr_write[j];
      }
      ++m.nodes;
      src.consumed = static_cast<u32>(index + 1 - rec.index);
      if (src.consumed >= rec.spanned) {
        advance(src, report.problems);
      }
    }

    const double secs = cycles_to_seconds(report.interval_cycles);
    m.flops = flops;
    m.instructions = instr;
    m.mflops = secs > 0 ? flops / secs / 1e6 : 0;
    m.ddr_read_mbs = secs > 0 ? ddr_rd / secs / 1e6 : 0;
    m.ddr_write_mbs = secs > 0 ? ddr_wr / secs / 1e6 : 0;
    m.fp_fraction = instr > 0 ? fp_instr / instr : 0;
    m.ls_fraction = instr > 0 ? ls_instr / instr : 0;
    m.simd_fraction = fp_instr > 0 ? simd_instr / fp_instr : 0;
    report.intervals.push_back(m);
  }

  unsigned mined = 0;
  for (const MergeSource& src : sources) {
    if (src.failed) continue;
    ++mined;
    const trace::TraceReader& r = *src.reader;
    if (r.truncated()) {
      report.truncated_nodes.push_back(r.meta().node_id);
    }
    if (r.totals().has_value()) {
      report.dropped_intervals += r.totals()->dropped;
      report.overhead_cycles += r.totals()->overhead_cycles;
    }
  }
  std::sort(report.truncated_nodes.begin(), report.truncated_nodes.end());
  report.coverage.mined = mined;
  report.ok = mined > 0 && !report.intervals.empty();
  detect_phases(report, opts);
  return report;
}

std::string interval_csv(const TimelineReport& report) {
  CsvWriter csv;
  csv.header({"interval", "t_begin_cycles", "t_end_cycles", "nodes", "mflops",
              "ddr_read_mbs", "ddr_write_mbs", "fp_fraction", "ls_fraction",
              "simd_fraction"});
  for (const IntervalMetrics& m : report.intervals) {
    csv.row({strfmt("%llu", static_cast<unsigned long long>(m.index)),
             strfmt("%llu", static_cast<unsigned long long>(m.t_begin)),
             strfmt("%llu", static_cast<unsigned long long>(m.t_end)),
             strfmt("%u", m.nodes), strfmt("%.3f", m.mflops),
             strfmt("%.3f", m.ddr_read_mbs), strfmt("%.3f", m.ddr_write_mbs),
             strfmt("%.4f", m.fp_fraction), strfmt("%.4f", m.ls_fraction),
             strfmt("%.4f", m.simd_fraction)});
  }
  return csv.text();
}

std::string phase_csv(const TimelineReport& report) {
  CsvWriter csv;
  csv.header({"phase", "first_interval", "last_interval", "t_begin_cycles",
              "t_end_cycles", "mflops", "ddr_read_mbs", "ddr_write_mbs",
              "fp_fraction", "ls_fraction", "simd_fraction"});
  for (const PhaseRecord& p : report.phases) {
    csv.row({strfmt("%u", p.id),
             strfmt("%llu", static_cast<unsigned long long>(p.first_interval)),
             strfmt("%llu", static_cast<unsigned long long>(p.last_interval)),
             strfmt("%llu", static_cast<unsigned long long>(p.t_begin)),
             strfmt("%llu", static_cast<unsigned long long>(p.t_end)),
             strfmt("%.3f", p.mflops), strfmt("%.3f", p.ddr_read_mbs),
             strfmt("%.3f", p.ddr_write_mbs), strfmt("%.4f", p.fp_fraction),
             strfmt("%.4f", p.ls_fraction), strfmt("%.4f", p.simd_fraction)});
  }
  return csv.text();
}

std::string render_timeline(const TimelineReport& report) {
  std::string out;
  out += strfmt("timeline: %zu intervals of %llu cycles, %zu phases\n",
                report.intervals.size(),
                static_cast<unsigned long long>(report.interval_cycles),
                report.phases.size());
  out += "coverage: " + report.coverage.to_string() + "\n";
  if (!report.truncated_nodes.empty()) {
    out += strfmt("truncated traces (dead nodes): %zu [",
                  report.truncated_nodes.size());
    for (std::size_t i = 0; i < report.truncated_nodes.size(); ++i) {
      out += strfmt(i == 0 ? "%u" : " %u", report.truncated_nodes[i]);
    }
    out += "]\n";
  }
  if (report.dropped_intervals > 0) {
    out += strfmt("dropped intervals (ring overflow): %llu\n",
                  static_cast<unsigned long long>(report.dropped_intervals));
  }
  out += strfmt("modeled sampling overhead: %llu cycles\n",
                static_cast<unsigned long long>(report.overhead_cycles));
  for (const PhaseRecord& p : report.phases) {
    out += strfmt(
        "phase %2u  intervals %5llu..%-5llu  %9.1f MFLOPS  "
        "ddr %7.1f/%7.1f MB/s  fp %4.1f%%  ls %4.1f%%  simd %4.1f%%\n",
        p.id, static_cast<unsigned long long>(p.first_interval),
        static_cast<unsigned long long>(p.last_interval), p.mflops,
        p.ddr_read_mbs, p.ddr_write_mbs, 100.0 * p.fp_fraction,
        100.0 * p.ls_fraction, 100.0 * p.simd_fraction);
  }
  for (const std::string& p : report.problems) {
    out += "problem: " + p + "\n";
  }
  return out;
}

}  // namespace bgp::post
