#include "postproc/aggregate.hpp"

namespace bgp::post {

const pc::SetDump* Aggregate::find_set(const pc::NodeDump& dump,
                                       unsigned set) {
  for (const pc::SetDump& s : dump.sets) {
    if (s.set_id == set) return &s;
  }
  return nullptr;
}

Aggregate::Aggregate(const std::vector<pc::NodeDump>& dumps, unsigned set)
    : set_(set) {
  for (const pc::NodeDump& d : dumps) {
    if (d.counter_mode >= isa::kNumCounterModes) continue;
    by_mode_[d.counter_mode].push_back(d);
    const pc::SetDump* s = find_set(d, set);
    if (s == nullptr) continue;
    for (unsigned c = 0; c < isa::kCountersPerUnit; ++c) {
      per_event_[d.event_of(c)].add(static_cast<double>(s->deltas[c]));
    }
  }
}

}  // namespace bgp::post
