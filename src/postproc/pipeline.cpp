#include "postproc/pipeline.hpp"

#include <algorithm>
#include <set>

#include "common/strfmt.hpp"
#include "obs/obs.hpp"
#include "postproc/aggregate.hpp"

namespace bgp::post {

std::string Coverage::to_string() const {
  std::string s = strfmt("%u/%u nodes (%.1f%%)", mined, expected,
                         100.0 * fraction());
  if (failed > 0) {
    s += strfmt(", %u death(s) FT-accounted", failed);
  }
  return s;
}

namespace {

unsigned infer_expected(const std::vector<pc::NodeDump>& dumps) {
  unsigned max_id = 0;
  for (const pc::NodeDump& d : dumps) max_id = std::max(max_id, d.node_id);
  return dumps.empty() ? 0 : max_id + 1;
}

}  // namespace

MineResult mine(const std::filesystem::path& dir, const std::string& app,
                const MineOptions& opts) {
  MineResult res;

  LoadReport loaded = load_dumps_tolerant(dir, app);
  res.load_errors = loaded.errors;
  for (const LoadError& e : loaded.errors) {
    res.problems.push_back(
        strfmt("load %s: %s", e.file.string().c_str(), e.reason.c_str()));
  }

  res.coverage.expected = opts.expected_nodes != 0
                              ? opts.expected_nodes
                              : infer_expected(loaded.dumps);
  res.coverage.loaded = static_cast<unsigned>(loaded.dumps.size());

  res.sanity = check(loaded.dumps);
  // Disqualify nodes with error-severity findings; batch-level errors
  // (mixed apps, empty batch) poison the whole result.
  std::set<u32> bad_nodes;
  bool batch_error = false;
  for (const Problem& p : res.sanity.problems) {
    if (p.severity != Severity::kError) continue;
    if (p.node == Problem::kNoNode) {
      batch_error = true;
    } else {
      bad_nodes.insert(p.node);
    }
    res.problems.push_back("sanity: " + p.text);
  }

  std::set<u32> mined_ids;
  for (const pc::NodeDump& d : loaded.dumps) {
    if (bad_nodes.contains(d.node_id)) continue;
    mined_ids.insert(d.node_id);
    res.dumps.push_back(d);
  }
  res.coverage.mined = static_cast<unsigned>(res.dumps.size());

  // Union of the survivors' recovery logs (each survivor carries the full
  // log, so dedup by value), ordered by completion cycle.
  std::set<u32> failed_nodes;
  for (const pc::NodeDump& d : loaded.dumps) {
    for (const ft::RecoveryEvent& e : d.recovery) {
      if (std::find(res.recovery.begin(), res.recovery.end(), e) ==
          res.recovery.end()) {
        res.recovery.push_back(e);
      }
      if (e.kind == ft::RecoveryKind::kDeathDetected) {
        failed_nodes.insert(e.node);
      }
    }
  }
  std::stable_sort(res.recovery.begin(), res.recovery.end(),
                   [](const ft::RecoveryEvent& a, const ft::RecoveryEvent& b) {
                     return a.cycle < b.cycle;
                   });
  if (opts.ft) {
    res.coverage.failed = static_cast<unsigned>(failed_nodes.size());
  }

  // Nodes the run owed us but that never produced a minable dump: node
  // death before BGP_Finalize, an exhausted write-retry budget, or a dump
  // disqualified above. In ft mode a death the recovery logs account for
  // is an expected casualty, not a problem.
  for (unsigned n = 0; n < res.coverage.expected; ++n) {
    if (mined_ids.contains(n)) continue;
    if (bad_nodes.contains(n)) continue;  // already reported via sanity
    if (opts.ft && failed_nodes.contains(n)) continue;
    bool load_failed = false;
    for (const LoadError& e : res.load_errors) {
      if (e.file.filename().string().find(strfmt("node%04u", n)) !=
          std::string::npos) {
        load_failed = true;  // already reported via the load error
        break;
      }
    }
    if (!load_failed) {
      res.problems.push_back(
          strfmt("node %u: dump missing (node death or lost write)", n));
    }
  }

  // An FT batch whose accounting contradicts the stated partition size is
  // a hard error, not a quiet coverage shortfall: either --expected-nodes
  // is wrong or the directory mixes dumps from different runs.
  if (opts.ft && res.coverage.expected > 0) {
    unsigned out_of_range = 0;
    for (const u32 n : failed_nodes) {
      if (n >= res.coverage.expected) ++out_of_range;
    }
    if (out_of_range > 0 ||
        res.coverage.mined + res.coverage.failed > res.coverage.expected) {
      res.problems.push_back(strfmt(
          "ft accounting mismatch: %u survivor dump(s) + %u recorded "
          "death(s) does not fit the %u expected nodes (wrong "
          "--expected-nodes, or mixed dump batches)",
          res.coverage.mined, res.coverage.failed, res.coverage.expected));
    }
  }

  if (opts.strict) {
    // All-or-nothing: any problem at all (every one is already listed in
    // res.problems) refuses the mine. In ft mode "all" means every
    // expected node is either mined or an accounted death.
    const bool covered =
        opts.ft ? res.coverage.accounted() : res.coverage.full();
    res.ok = res.problems.empty() && covered;
    if (!covered && res.problems.empty()) {
      res.problems.push_back(
          strfmt("coverage %s below required 100%%",
                 res.coverage.to_string().c_str()));
    }
  } else {
    res.ok = !batch_error && res.coverage.mined > 0 &&
             res.coverage.fraction() >= opts.min_coverage;
    if (!res.ok && !batch_error && res.coverage.fraction() < opts.min_coverage) {
      res.problems.push_back(
          strfmt("coverage %s below quorum (%.1f%% required)",
                 res.coverage.to_string().c_str(),
                 100.0 * opts.min_coverage));
    }
  }

  if (res.ok) {
    const Aggregate agg(res.dumps, opts.set);
    res.record = make_record(app, agg);
    res.record.nodes_expected = res.coverage.expected;
    res.record.nodes_mined = res.coverage.mined;
    res.record.nodes_failed = res.coverage.failed;
  }

  if (auto* fr = obs::recorder()) {
    auto& m = fr->metrics();
    m.counter("bgpc_miner_runs_total", "Dump-mining pipeline invocations")
        .add(1);
    m.counter("bgpc_miner_problems_total",
              "Problems reported across mining runs")
        .add(res.problems.size());
    m.gauge("bgpc_miner_coverage_ratio",
            "Mined/expected node fraction of the last mine")
        .set(res.coverage.fraction());
  }
  return res;
}

}  // namespace bgp::post
