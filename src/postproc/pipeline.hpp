// End-to-end mining pipeline with degraded-mode support: load every dump
// that survives (skipping corrupt files), sanity-check, drop disqualified
// nodes, and mine the remaining quorum — annotating every result with how
// much of the partition it actually covers. Strict mode inverts this: any
// missing node, load failure or sanity error refuses to mine and reports
// the full problem list.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "postproc/loader.hpp"
#include "postproc/report.hpp"
#include "postproc/sanity.hpp"

namespace bgp::post {

struct MineOptions {
  unsigned set = 0;
  /// Refuse to mine unless every expected node contributed a clean dump.
  bool strict = false;
  /// Degraded mode: smallest acceptable fraction of expected nodes.
  double min_coverage = 0.9;
  /// Number of nodes the run was supposed to produce. 0 = infer as
  /// max(node_id) + 1 over the dumps that loaded (a lower bound: trailing
  /// dead nodes are invisible to inference).
  unsigned expected_nodes = 0;
  /// FT run: nodes whose deaths the dumps' recovery logs account for are
  /// expected casualties, not problems. With strict, the batch passes iff
  /// survivors + accounted deaths cover every expected node; a mismatch
  /// against expected_nodes is a hard error rather than silent coverage
  /// failure.
  bool ft = false;
};

/// How much of the partition a mining result is based on.
struct Coverage {
  unsigned expected = 0;  ///< nodes the run should have produced
  unsigned loaded = 0;    ///< dump files that parsed cleanly
  unsigned mined = 0;     ///< dumps surviving sanity disqualification
  /// Distinct nodes the FT recovery logs report dead (ft mode only).
  unsigned failed = 0;
  [[nodiscard]] double fraction() const noexcept {
    return expected == 0 ? 0.0
                         : static_cast<double>(mined) / expected;
  }
  [[nodiscard]] bool full() const noexcept {
    return expected > 0 && mined == expected;
  }
  /// Every expected node is either mined or an accounted FT casualty.
  [[nodiscard]] bool accounted() const noexcept {
    return expected > 0 && mined + failed == expected;
  }
  [[nodiscard]] std::string to_string() const;
};

struct MineResult {
  /// Mining produced a usable record (always coverage-annotated).
  bool ok = false;
  Coverage coverage;
  /// Everything wrong with the batch, human-readable: load failures (file
  /// and CRC byte ranges), sanity findings, and missing nodes.
  std::vector<std::string> problems;
  /// The dumps actually mined (sanity survivors), sorted by node id.
  std::vector<pc::NodeDump> dumps;
  /// Metrics over the mined quorum; meaningful only when ok.
  AppRecord record;
  SanityReport sanity;            ///< full report over the loaded dumps
  std::vector<LoadError> load_errors;
  /// Union of the dumps' FT recovery logs, deduplicated and ordered by
  /// completion cycle: deaths with detection latency, revoke/agree/shrink
  /// steps with their cycle costs.
  std::vector<ft::RecoveryEvent> recovery;
};

/// Mine `<app>.node*.bgpc` under `dir`. Never throws on bad data — every
/// failure mode is reported through MineResult.
[[nodiscard]] MineResult mine(const std::filesystem::path& dir,
                              const std::string& app,
                              const MineOptions& opts = {});

}  // namespace bgp::post
