// Data validation before mining (paper §IV: "the data is checked based on
// the number of records and the length of each record and also for the
// range of values in the different counter readings to eliminate possible
// errors").
#pragma once

#include <string>
#include <vector>

#include "core/dumpformat.hpp"

namespace bgp::post {

struct SanityReport {
  std::vector<std::string> problems;
  [[nodiscard]] bool ok() const noexcept { return problems.empty(); }
};

/// Checks applied:
///  * at least one dump, unique node ids, one application name
///  * every node reports the same set ids with pair counts > 0
///  * counter modes within [0,4)
///  * counter values within a plausibility range (< 2^60)
///  * set time windows are ordered (first start <= last stop)
[[nodiscard]] SanityReport check(const std::vector<pc::NodeDump>& dumps);

}  // namespace bgp::post
