// Data validation before mining (paper §IV: "the data is checked based on
// the number of records and the length of each record and also for the
// range of values in the different counter readings to eliminate possible
// errors").
#pragma once

#include <string>
#include <vector>

#include "core/dumpformat.hpp"

namespace bgp::post {

/// How bad a sanity problem is. Errors disqualify the affected node's data
/// (or the whole batch, for structural problems); warnings are advisory
/// and do not fail the report.
enum class Severity : u8 { kError, kWarning };

/// What kind of problem was found, so tools can react programmatically
/// instead of parsing message strings.
enum class ProblemKind : u8 {
  kNoDumps,          ///< empty batch
  kDuplicateNode,    ///< two dumps claim the same node id
  kMixedApps,        ///< dumps from more than one application
  kBadMode,          ///< counter mode outside [0, kNumCounterModes)
  kSetMismatch,      ///< node's set list differs from the reference node
  kZeroPairs,        ///< a set with no start/stop pairs
  kTimeInversion,    ///< last stop before first start
  kCounterWrap,      ///< delta in the top half of u64: wraparound suspected
  kImplausible,      ///< delta >= 2^60 without the wrap signature
  kOutlier,          ///< one node's counter far from the cross-node median
  kRecoveryConflict, ///< FT recovery logs contradict the dumps on hand
};

struct Problem {
  ProblemKind kind = ProblemKind::kNoDumps;
  Severity severity = Severity::kError;
  /// Affected node id, or kNoNode for batch-level problems.
  u32 node = kNoNode;
  std::string text;

  static constexpr u32 kNoNode = ~u32{0};
};

struct SanityReport {
  std::vector<Problem> problems;
  /// Clean or warnings only. Errors make the report not-ok.
  [[nodiscard]] bool ok() const noexcept {
    for (const Problem& p : problems) {
      if (p.severity == Severity::kError) return false;
    }
    return true;
  }
  [[nodiscard]] std::size_t num_errors() const noexcept {
    std::size_t n = 0;
    for (const Problem& p : problems) {
      if (p.severity == Severity::kError) ++n;
    }
    return n;
  }
};

/// Checks applied:
///  * at least one dump, unique node ids, one application name
///  * every node reports the same set ids with pair counts > 0
///  * counter modes within [0,4)
///  * counter wraparound signature (delta >= 2^63: subtracting a snapshot
///    taken just below a narrow counter's wrap boundary from one taken
///    after the wrap yields a huge two's-complement difference)
///  * counter values within a plausibility range (< 2^60)
///  * set time windows are ordered (first start <= last stop)
///  * cross-node outliers (warning): a counter more than ~64x the median
///    of its (mode, set, counter) peers suggests single-node corruption
///  * FT recovery consistency: a node both listed dead in a recovery log
///    and present with a dump, or two logs disagreeing on a death cycle,
///    is a conflict (error)
[[nodiscard]] SanityReport check(const std::vector<pc::NodeDump>& dumps);

}  // namespace bgp::post
