// User-defined metrics computed from the raw counters (paper §IV):
// MFLOPS from the FPU counters with the FMA/SIMD weights, the dynamic FP
// instruction mix (Fig 6), L3–DDR traffic and DDR bandwidth (Figs 11/12),
// and execution time from CYCLE_COUNT (Figs 9/10/13).
#pragma once

#include <array>

#include "postproc/aggregate.hpp"

namespace bgp::post {

/// Dynamic FP instruction profile: per-class instruction counts summed over
/// a node's four cores, averaged across mode-0 nodes.
struct FpProfile {
  /// Mean per-node dynamic instruction count per FP class.
  std::array<double, isa::kNumFpOps> counts{};

  [[nodiscard]] double total() const noexcept;
  /// Fraction of the dynamic FP instructions in `op` (Fig 6's bars).
  [[nodiscard]] double fraction(isa::FpOp op) const noexcept;
  /// Weighted flop count (FMA = 2, SIMD = 2x).
  [[nodiscard]] double flops() const noexcept;
  /// SIMD instruction count (Figs 7/8's y-axis).
  [[nodiscard]] double simd_instructions() const noexcept;
};

[[nodiscard]] FpProfile fp_profile(const Aggregate& agg);

/// Mean per-node execution cycles: the max CYCLE_COUNT over the node's
/// cores, averaged across mode-0 nodes.
[[nodiscard]] double mean_exec_cycles(const Aggregate& agg);

/// Mean per-node MFLOPS (paper: "performance of the application is
/// computed in terms of MFLOPS based on the data of all the floating point
/// counters").
[[nodiscard]] double mean_mflops_per_node(const Aggregate& agg);

/// Mean per-node L3<->DDR traffic in bytes (fills + writebacks), from the
/// DDR controllers' byte counters on mode-1 nodes.
[[nodiscard]] double mean_ddr_traffic_bytes(const Aggregate& agg);

/// Mean DDR bandwidth in bytes/cycle over the set's execution window.
[[nodiscard]] double mean_ddr_bandwidth(const Aggregate& agg);

/// Fraction of L3 read accesses that miss (Fig 11 commentary: "misses are
/// reduced to nearly 10% of the total accesses" at 4 MB).
[[nodiscard]] double l3_read_miss_ratio(const Aggregate& agg);

/// Mean per-node load/store instruction counts (quadword forms separate).
struct LsProfile {
  std::array<double, isa::kNumLsOps> counts{};
  [[nodiscard]] double quad_fraction() const noexcept;
};
[[nodiscard]] LsProfile ls_profile(const Aggregate& agg);

}  // namespace bgp::post
