#include "postproc/sanity.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "common/strfmt.hpp"

namespace bgp::post {

namespace {

void add(SanityReport& rep, ProblemKind kind, Severity sev, u32 node,
         std::string text) {
  rep.problems.push_back(Problem{kind, sev, node, std::move(text)});
}

/// Cross-node comparison: within one (mode, set, counter) population, a
/// value wildly above the median points at single-node corruption (e.g. a
/// bit flip in the high bytes of one delta). Warning severity: genuine
/// workload imbalance can also trip this, so it never disqualifies data by
/// itself.
void flag_outliers(SanityReport& rep, const std::vector<pc::NodeDump>& dumps) {
  struct Sample {
    u32 node;
    u64 value;
  };
  std::map<std::tuple<u32, u32, unsigned>, std::vector<Sample>> groups;
  for (const pc::NodeDump& d : dumps) {
    for (const pc::SetDump& s : d.sets) {
      for (unsigned c = 0; c < isa::kCountersPerUnit; ++c) {
        groups[{d.counter_mode, s.set_id, c}].push_back(
            {d.node_id, s.deltas[c]});
      }
    }
  }
  constexpr std::size_t kMinSamples = 4;
  constexpr u64 kRatio = 64;
  constexpr u64 kFloor = 1'000'000;  // ignore noise in tiny counters
  for (auto& [key, samples] : groups) {
    if (samples.size() < kMinSamples) continue;
    std::vector<u64> values;
    values.reserve(samples.size());
    for (const Sample& s : samples) values.push_back(s.value);
    std::nth_element(values.begin(), values.begin() + values.size() / 2,
                     values.end());
    const u64 median = values[values.size() / 2];
    for (const Sample& s : samples) {
      if (s.value > median * kRatio + kFloor) {
        add(rep, ProblemKind::kOutlier, Severity::kWarning, s.node,
            strfmt("node %u set %u counter %u: value %llu is an outlier "
                   "(cross-node median %llu)",
                   s.node, std::get<1>(key), std::get<2>(key),
                   static_cast<unsigned long long>(s.value),
                   static_cast<unsigned long long>(median)));
      }
    }
  }
}

/// Recovery-log consistency across the batch. Every survivor carries a
/// copy of the (global, deterministic) recovery log, so the logs must not
/// contradict each other — and a node the logs say died cannot also have
/// produced a dump.
void check_recovery(SanityReport& rep,
                    const std::vector<pc::NodeDump>& dumps) {
  std::map<u32, u64> death_cycles;  // node -> injected death cycle
  for (const pc::NodeDump& d : dumps) {
    for (const ft::RecoveryEvent& e : d.recovery) {
      if (e.kind != ft::RecoveryKind::kDeathDetected) continue;
      const auto [it, inserted] = death_cycles.emplace(e.node, e.aux);
      if (!inserted && it->second != e.aux) {
        add(rep, ProblemKind::kRecoveryConflict, Severity::kError, e.node,
            strfmt("node %u: recovery logs disagree on the death cycle "
                   "(%llu vs %llu)",
                   e.node, static_cast<unsigned long long>(it->second),
                   static_cast<unsigned long long>(e.aux)));
      }
    }
  }
  for (const pc::NodeDump& d : dumps) {
    const auto it = death_cycles.find(d.node_id);
    if (it != death_cycles.end()) {
      add(rep, ProblemKind::kRecoveryConflict, Severity::kError, d.node_id,
          strfmt("node %u: recovery logs report it dead (cycle %llu) but it "
                 "produced a dump",
                 d.node_id, static_cast<unsigned long long>(it->second)));
    }
  }
}

}  // namespace

SanityReport check(const std::vector<pc::NodeDump>& dumps) {
  SanityReport rep;
  if (dumps.empty()) {
    add(rep, ProblemKind::kNoDumps, Severity::kError, Problem::kNoNode,
        "no dump records");
    return rep;
  }

  std::set<u32> node_ids;
  std::set<std::string> apps;
  std::set<u32> reference_sets;
  for (const pc::SetDump& s : dumps.front().sets) {
    reference_sets.insert(s.set_id);
  }

  for (const pc::NodeDump& d : dumps) {
    if (!node_ids.insert(d.node_id).second) {
      add(rep, ProblemKind::kDuplicateNode, Severity::kError, d.node_id,
          strfmt("duplicate node id %u", d.node_id));
    }
    apps.insert(d.app_name);
    if (d.counter_mode >= isa::kNumCounterModes) {
      add(rep, ProblemKind::kBadMode, Severity::kError, d.node_id,
          strfmt("node %u: counter mode %u out of range", d.node_id,
                 d.counter_mode));
    }
    std::set<u32> sets;
    for (const pc::SetDump& s : d.sets) {
      sets.insert(s.set_id);
      if (s.pairs == 0) {
        add(rep, ProblemKind::kZeroPairs, Severity::kError, d.node_id,
            strfmt("node %u set %u: zero start/stop pairs", d.node_id,
                   s.set_id));
      }
      if (s.last_stop_cycle < s.first_start_cycle) {
        add(rep, ProblemKind::kTimeInversion, Severity::kError, d.node_id,
            strfmt("node %u set %u: stop before start", d.node_id, s.set_id));
      }
      for (unsigned c = 0; c < isa::kCountersPerUnit; ++c) {
        // A counter that wrapped between snapshots leaves stop - start in
        // the top half of the u64 range; anything >= 2^60 without that
        // signature is corruption of another kind.
        if (s.deltas[c] >= (u64{1} << 63)) {
          add(rep, ProblemKind::kCounterWrap, Severity::kError, d.node_id,
              strfmt("node %u set %u counter %u: wraparound suspected "
                     "(delta %llu)",
                     d.node_id, s.set_id, c,
                     static_cast<unsigned long long>(s.deltas[c])));
          break;
        }
        if (s.deltas[c] >= (u64{1} << 60)) {
          add(rep, ProblemKind::kImplausible, Severity::kError, d.node_id,
              strfmt("node %u set %u counter %u: implausible value",
                     d.node_id, s.set_id, c));
          break;
        }
      }
    }
    if (sets != reference_sets) {
      add(rep, ProblemKind::kSetMismatch, Severity::kError, d.node_id,
          strfmt("node %u: set list differs from node %u", d.node_id,
                 dumps.front().node_id));
    }
  }
  if (apps.size() > 1) {
    add(rep, ProblemKind::kMixedApps, Severity::kError, Problem::kNoNode,
        "dumps from more than one application");
  }
  flag_outliers(rep, dumps);
  check_recovery(rep, dumps);
  return rep;
}

}  // namespace bgp::post
