#include "postproc/sanity.hpp"

#include <set>

#include "common/strfmt.hpp"

namespace bgp::post {

SanityReport check(const std::vector<pc::NodeDump>& dumps) {
  SanityReport rep;
  if (dumps.empty()) {
    rep.problems.push_back("no dump records");
    return rep;
  }

  std::set<u32> node_ids;
  std::set<std::string> apps;
  std::set<u32> reference_sets;
  for (const pc::SetDump& s : dumps.front().sets) {
    reference_sets.insert(s.set_id);
  }

  for (const pc::NodeDump& d : dumps) {
    if (!node_ids.insert(d.node_id).second) {
      rep.problems.push_back(strfmt("duplicate node id %u", d.node_id));
    }
    apps.insert(d.app_name);
    if (d.counter_mode >= isa::kNumCounterModes) {
      rep.problems.push_back(
          strfmt("node %u: counter mode %u out of range", d.node_id,
                 d.counter_mode));
    }
    std::set<u32> sets;
    for (const pc::SetDump& s : d.sets) {
      sets.insert(s.set_id);
      if (s.pairs == 0) {
        rep.problems.push_back(
            strfmt("node %u set %u: zero start/stop pairs", d.node_id,
                   s.set_id));
      }
      if (s.last_stop_cycle < s.first_start_cycle) {
        rep.problems.push_back(
            strfmt("node %u set %u: stop before start", d.node_id, s.set_id));
      }
      for (unsigned c = 0; c < isa::kCountersPerUnit; ++c) {
        if (s.deltas[c] >= (u64{1} << 60)) {
          rep.problems.push_back(
              strfmt("node %u set %u counter %u: implausible value",
                     d.node_id, s.set_id, c));
          break;
        }
      }
    }
    if (sets != reference_sets) {
      rep.problems.push_back(
          strfmt("node %u: set list differs from node %u", d.node_id,
                 dumps.front().node_id));
    }
  }
  if (apps.size() > 1) {
    rep.problems.push_back("dumps from more than one application");
  }
  return rep;
}

}  // namespace bgp::post
