#include "postproc/metrics.hpp"

#include <algorithm>

namespace bgp::post {

namespace ev = isa::ev;

double FpProfile::total() const noexcept {
  double t = 0;
  for (double c : counts) t += c;
  return t;
}

double FpProfile::fraction(isa::FpOp op) const noexcept {
  const double t = total();
  return t > 0 ? counts[static_cast<std::size_t>(op)] / t : 0.0;
}

double FpProfile::flops() const noexcept {
  double f = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    f += counts[i] * isa::flops_per_op(static_cast<isa::FpOp>(i));
  }
  return f;
}

double FpProfile::simd_instructions() const noexcept {
  double s = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (isa::is_simd(static_cast<isa::FpOp>(i))) s += counts[i];
  }
  return s;
}

FpProfile fp_profile(const Aggregate& agg) {
  FpProfile p;
  for (const pc::NodeDump& d : agg.dumps_in_mode(0)) {
    const pc::SetDump* s = Aggregate::find_set(d, agg.set_id());
    if (s == nullptr) continue;
    for (std::size_t i = 0; i < isa::kNumFpOps; ++i) {
      double node_total = 0;
      for (unsigned core = 0; core < isa::kCoresPerNode; ++core) {
        node_total += static_cast<double>(
            s->deltas[isa::event_counter(
                ev::fpu_op(core, static_cast<isa::FpOp>(i)))]);
      }
      p.counts[i] += node_total;
    }
  }
  const auto n = static_cast<double>(agg.dumps_in_mode(0).size());
  if (n > 0) {
    for (double& c : p.counts) c /= n;
  }
  return p;
}

LsProfile ls_profile(const Aggregate& agg) {
  LsProfile p;
  for (const pc::NodeDump& d : agg.dumps_in_mode(0)) {
    const pc::SetDump* s = Aggregate::find_set(d, agg.set_id());
    if (s == nullptr) continue;
    for (std::size_t i = 0; i < isa::kNumLsOps; ++i) {
      for (unsigned core = 0; core < isa::kCoresPerNode; ++core) {
        p.counts[i] += static_cast<double>(
            s->deltas[isa::event_counter(
                ev::ls_op(core, static_cast<isa::LsOp>(i)))]);
      }
    }
  }
  const auto n = static_cast<double>(agg.dumps_in_mode(0).size());
  if (n > 0) {
    for (double& c : p.counts) c /= n;
  }
  return p;
}

double LsProfile::quad_fraction() const noexcept {
  double quad = counts[static_cast<std::size_t>(isa::LsOp::kLoadQuad)] +
                counts[static_cast<std::size_t>(isa::LsOp::kStoreQuad)];
  double total = 0;
  for (double c : counts) total += c;
  return total > 0 ? quad / total : 0.0;
}

double mean_exec_cycles(const Aggregate& agg) {
  double sum = 0;
  unsigned n = 0;
  for (const pc::NodeDump& d : agg.dumps_in_mode(0)) {
    const pc::SetDump* s = Aggregate::find_set(d, agg.set_id());
    if (s == nullptr) continue;
    u64 node_max = 0;
    for (unsigned core = 0; core < isa::kCoresPerNode; ++core) {
      node_max = std::max(
          node_max, s->deltas[isa::event_counter(ev::cycle_count(core))]);
    }
    sum += static_cast<double>(node_max);
    ++n;
  }
  return n ? sum / n : 0.0;
}

double mean_mflops_per_node(const Aggregate& agg) {
  // flops and cycles both come from mode-0 nodes; convert with the 850 MHz
  // clock: MFLOPS = flops / seconds / 1e6.
  const double cycles = mean_exec_cycles(agg);
  if (cycles <= 0) return 0.0;
  const double seconds = cycles / kCoreClockHz;
  return fp_profile(agg).flops() / seconds / 1e6;
}

double mean_ddr_traffic_bytes(const Aggregate& agg) {
  double sum = 0;
  unsigned n = 0;
  for (const pc::NodeDump& d : agg.dumps_in_mode(1)) {
    const pc::SetDump* s = Aggregate::find_set(d, agg.set_id());
    if (s == nullptr) continue;
    u64 chunks = 0;
    for (unsigned ctrl = 0; ctrl < isa::kNumDdrControllers; ++ctrl) {
      chunks += s->deltas[isa::event_counter(
          ev::ddr(ctrl, isa::DdrEvent::kBytesRead16B))];
      chunks += s->deltas[isa::event_counter(
          ev::ddr(ctrl, isa::DdrEvent::kBytesWritten16B))];
    }
    sum += static_cast<double>(chunks) * 16.0;
    ++n;
  }
  return n ? sum / n : 0.0;
}

double mean_ddr_bandwidth(const Aggregate& agg) {
  double sum = 0;
  unsigned n = 0;
  for (const pc::NodeDump& d : agg.dumps_in_mode(1)) {
    const pc::SetDump* s = Aggregate::find_set(d, agg.set_id());
    if (s == nullptr || s->last_stop_cycle <= s->first_start_cycle) continue;
    u64 chunks = 0;
    for (unsigned ctrl = 0; ctrl < isa::kNumDdrControllers; ++ctrl) {
      chunks += s->deltas[isa::event_counter(
          ev::ddr(ctrl, isa::DdrEvent::kBytesRead16B))];
      chunks += s->deltas[isa::event_counter(
          ev::ddr(ctrl, isa::DdrEvent::kBytesWritten16B))];
    }
    const double window =
        static_cast<double>(s->last_stop_cycle - s->first_start_cycle);
    sum += static_cast<double>(chunks) * 16.0 / window;
    ++n;
  }
  return n ? sum / n : 0.0;
}

double l3_read_miss_ratio(const Aggregate& agg) {
  const double access = agg.mean(ev::l3(isa::L3Event::kReadAccess));
  const double miss = agg.mean(ev::l3(isa::L3Event::kReadMiss));
  return access > 0 ? miss / access : 0.0;
}

}  // namespace bgp::post
