// Loading of per-node binary dump files (the post-processing tools "read
// all the files dumped by each node", paper §IV).
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "core/dumpformat.hpp"

namespace bgp::post {

/// Parse one dump file.
[[nodiscard]] pc::NodeDump load_dump(const std::filesystem::path& file);

/// Load every `<app>.node*.bgpc` in `dir`, sorted by node id.
[[nodiscard]] std::vector<pc::NodeDump> load_dumps(
    const std::filesystem::path& dir, const std::string& app);

/// Load an explicit file list.
[[nodiscard]] std::vector<pc::NodeDump> load_dumps(
    const std::vector<std::filesystem::path>& files);

}  // namespace bgp::post
