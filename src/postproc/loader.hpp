// Loading of per-node binary dump files (the post-processing tools "read
// all the files dumped by each node", paper §IV).
//
// Two flavours: the strict loaders throw on the first unreadable file (the
// original behaviour), while the tolerant loader skips bad files and
// reports them, so one corrupt or truncated dump does not abort mining a
// whole batch (degraded-mode operation after injected faults).
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "core/dumpformat.hpp"

namespace bgp::post {

/// One dump file that could not be loaded, and why.
struct LoadError {
  std::filesystem::path file;
  std::string reason;
};

/// Result of a tolerant batch load: the dumps that parsed cleanly (sorted
/// by node id) plus an error record per file that did not.
struct LoadReport {
  std::vector<pc::NodeDump> dumps;
  std::vector<LoadError> errors;
  [[nodiscard]] bool ok() const noexcept { return errors.empty(); }
};

/// Parse one dump file. Throws BinIoError on any corruption.
[[nodiscard]] pc::NodeDump load_dump(const std::filesystem::path& file);

/// List every `<app>.node*.bgpc` in `dir`, sorted by path. Throws
/// BinIoError when `dir` does not exist.
[[nodiscard]] std::vector<std::filesystem::path> list_dump_files(
    const std::filesystem::path& dir, const std::string& app);

/// Load every `<app>.node*.bgpc` in `dir`, sorted by node id. Throws
/// BinIoError when no matching file exists (a silent empty result used to
/// mask typo'd app names and missing runs) or when any file is corrupt.
[[nodiscard]] std::vector<pc::NodeDump> load_dumps(
    const std::filesystem::path& dir, const std::string& app);

/// Load an explicit file list. Throws on the first unreadable file.
[[nodiscard]] std::vector<pc::NodeDump> load_dumps(
    const std::vector<std::filesystem::path>& files);

/// Tolerant variant of load_dumps(dir, app): unreadable or corrupt files
/// (including "no files at all") become LoadReport::errors entries instead
/// of exceptions, and every cleanly-parsed dump is still returned.
[[nodiscard]] LoadReport load_dumps_tolerant(const std::filesystem::path& dir,
                                             const std::string& app);

/// Tolerant variant of load_dumps(files).
[[nodiscard]] LoadReport load_dumps_tolerant(
    const std::vector<std::filesystem::path>& files);

}  // namespace bgp::post
