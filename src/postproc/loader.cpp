#include "postproc/loader.hpp"

#include <algorithm>

#include "common/binio.hpp"
#include "core/node_monitor.hpp"

namespace bgp::post {

pc::NodeDump load_dump(const std::filesystem::path& file) {
  const auto bytes = read_file_bytes(file);
  return pc::NodeMonitor::parse(bytes);
}

std::vector<pc::NodeDump> load_dumps(const std::filesystem::path& dir,
                                     const std::string& app) {
  std::vector<std::filesystem::path> files;
  const std::string prefix = app + ".node";
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.starts_with(prefix) && name.ends_with(".bgpc")) {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  return load_dumps(files);
}

std::vector<pc::NodeDump> load_dumps(
    const std::vector<std::filesystem::path>& files) {
  std::vector<pc::NodeDump> dumps;
  dumps.reserve(files.size());
  for (const auto& f : files) {
    dumps.push_back(load_dump(f));
  }
  std::sort(dumps.begin(), dumps.end(),
            [](const pc::NodeDump& a, const pc::NodeDump& b) {
              return a.node_id < b.node_id;
            });
  return dumps;
}

}  // namespace bgp::post
