#include "postproc/loader.hpp"

#include <algorithm>

#include "common/binio.hpp"
#include "common/strfmt.hpp"
#include "core/node_monitor.hpp"

namespace bgp::post {

namespace {

void sort_by_node(std::vector<pc::NodeDump>& dumps) {
  std::sort(dumps.begin(), dumps.end(),
            [](const pc::NodeDump& a, const pc::NodeDump& b) {
              return a.node_id < b.node_id;
            });
}

}  // namespace

pc::NodeDump load_dump(const std::filesystem::path& file) {
  const auto bytes = read_file_bytes(file);
  return pc::NodeMonitor::parse(bytes);
}

std::vector<std::filesystem::path> list_dump_files(
    const std::filesystem::path& dir, const std::string& app) {
  if (!std::filesystem::is_directory(dir)) {
    throw BinIoError(
        strfmt("dump directory %s does not exist", dir.string().c_str()));
  }
  std::vector<std::filesystem::path> files;
  const std::string prefix = app + ".node";
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.starts_with(prefix) && name.ends_with(".bgpc")) {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::vector<pc::NodeDump> load_dumps(const std::filesystem::path& dir,
                                     const std::string& app) {
  const auto files = list_dump_files(dir, app);
  if (files.empty()) {
    throw BinIoError(strfmt("no %s.node*.bgpc dump files in %s", app.c_str(),
                            dir.string().c_str()));
  }
  return load_dumps(files);
}

std::vector<pc::NodeDump> load_dumps(
    const std::vector<std::filesystem::path>& files) {
  std::vector<pc::NodeDump> dumps;
  dumps.reserve(files.size());
  for (const auto& f : files) {
    dumps.push_back(load_dump(f));
  }
  sort_by_node(dumps);
  return dumps;
}

LoadReport load_dumps_tolerant(const std::filesystem::path& dir,
                               const std::string& app) {
  LoadReport rep;
  std::vector<std::filesystem::path> files;
  try {
    files = list_dump_files(dir, app);
  } catch (const std::exception& e) {
    rep.errors.push_back({dir, e.what()});
    return rep;
  }
  if (files.empty()) {
    rep.errors.push_back(
        {dir, strfmt("no %s.node*.bgpc dump files", app.c_str())});
    return rep;
  }
  return load_dumps_tolerant(files);
}

LoadReport load_dumps_tolerant(
    const std::vector<std::filesystem::path>& files) {
  LoadReport rep;
  rep.dumps.reserve(files.size());
  for (const auto& f : files) {
    try {
      rep.dumps.push_back(load_dump(f));
    } catch (const std::exception& e) {
      rep.errors.push_back({f, e.what()});
    }
  }
  sort_by_node(rep.dumps);
  return rep;
}

}  // namespace bgp::post
