// Timeline mining over per-node trace files: a streaming interval-by-
// interval merge (one pending record per trace, never the whole set in
// memory), per-interval derived metrics (MFLOPS, L3↔DDR bandwidth,
// instruction-mix drift), and change-point phase detection over the merged
// timeline. Degraded-mode aware like the dump pipeline: corrupt traces are
// skipped and reported, footer-less partials from dead nodes truncate
// cleanly, and every result carries a coverage annotation.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "postproc/pipeline.hpp"
#include "trace/trace_io.hpp"

namespace bgp::post {

struct TimelineOptions {
  /// Normalized signature distance above which an interval opens a new
  /// phase (L1 distance over the metric signature, each component in
  /// [0, 1]).
  double change_threshold = 0.35;
  /// Shortest run of intervals that counts as a phase; shorter excursions
  /// are folded into the surrounding phase.
  unsigned min_phase_intervals = 4;
  /// Also mine `.bgpt.partial` files (dead-node leftovers).
  bool include_partial = true;
  /// Number of traces the run was supposed to produce. 0 = infer as
  /// max(node_id) + 1 over the traces that loaded.
  unsigned expected_nodes = 0;
};

/// Merged metrics for one sampling interval across the contributing nodes.
struct IntervalMetrics {
  u64 index = 0;
  cycles_t t_begin = 0;
  cycles_t t_end = 0;
  unsigned nodes = 0;  ///< traces contributing to this interval
  double flops = 0;
  double instructions = 0;
  double mflops = 0;          ///< aggregate across contributing nodes
  double ddr_read_mbs = 0;    ///< DDR read bandwidth, MB/s
  double ddr_write_mbs = 0;   ///< DDR write bandwidth, MB/s
  double fp_fraction = 0;     ///< FP instrs / completed instrs
  double ls_fraction = 0;     ///< load-store instrs / completed instrs
  double simd_fraction = 0;   ///< SIMD FP instrs / FP instrs
};

/// One detected phase: a maximal run of intervals with a stable signature.
struct PhaseRecord {
  unsigned id = 0;
  u64 first_interval = 0;
  u64 last_interval = 0;
  cycles_t t_begin = 0;
  cycles_t t_end = 0;
  double mflops = 0;         ///< mean over the phase's intervals
  double ddr_read_mbs = 0;
  double ddr_write_mbs = 0;
  double fp_fraction = 0;
  double ls_fraction = 0;
  double simd_fraction = 0;
};

struct TimelineReport {
  bool ok = false;
  Coverage coverage;  ///< expected / loaded / mined trace counts
  /// Everything wrong with the batch: unreadable traces, CRC failures,
  /// interval-geometry mismatches, missing nodes.
  std::vector<std::string> problems;
  /// Traces that ended without a footer (dead nodes) — their node ids.
  std::vector<unsigned> truncated_nodes;
  cycles_t interval_cycles = 0;
  u64 dropped_intervals = 0;       ///< summed ring-buffer drops (footers)
  cycles_t overhead_cycles = 0;    ///< summed modeled sampling overhead
  std::vector<IntervalMetrics> intervals;
  std::vector<PhaseRecord> phases;
};

/// List every `<app>.node*.bgpt` (and `.bgpt.partial` when requested)
/// under `dir`, sorted by path. Empty `app` matches any app.
[[nodiscard]] std::vector<std::filesystem::path> list_trace_files(
    const std::filesystem::path& dir, const std::string& app,
    bool include_partial = true);

/// Mine an explicit trace file list. Never throws on bad data — every
/// failure mode is reported through TimelineReport::problems.
[[nodiscard]] TimelineReport mine_timeline(
    const std::vector<std::filesystem::path>& files,
    const TimelineOptions& opts = {});

/// Mine `<app>.node*.bgpt[.partial]` under `dir`.
[[nodiscard]] TimelineReport mine_timeline(const std::filesystem::path& dir,
                                           const std::string& app,
                                           const TimelineOptions& opts = {});

/// Per-interval timeline as CSV (one row per interval).
[[nodiscard]] std::string interval_csv(const TimelineReport& report);
/// Detected phases as CSV (one row per phase).
[[nodiscard]] std::string phase_csv(const TimelineReport& report);
/// Human-readable phase report with the coverage annotation.
[[nodiscard]] std::string render_timeline(const TimelineReport& report);

}  // namespace bgp::post
