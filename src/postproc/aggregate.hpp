// Cross-node aggregation: min / max / arithmetic mean of each of the 512
// monitored events (paper §IV), merging the even-card and odd-card views
// into one event-indexed table.
#pragma once

#include <array>
#include <vector>

#include "common/stats.hpp"
#include "core/dumpformat.hpp"

namespace bgp::post {

class Aggregate {
 public:
  /// Aggregate counter deltas of `set` across all nodes. Each node
  /// contributes to the 256 events of its programmed mode.
  explicit Aggregate(const std::vector<pc::NodeDump>& dumps, unsigned set = 0);

  /// Statistics across the nodes that monitored `event`.
  [[nodiscard]] const RunningStats& stats(isa::EventId event) const {
    return per_event_.at(event);
  }
  [[nodiscard]] double mean(isa::EventId event) const {
    return stats(event).mean();
  }
  /// Number of nodes that monitored the event's mode.
  [[nodiscard]] u64 nodes_reporting(isa::EventId event) const {
    return stats(event).count();
  }

  /// The underlying dumps restricted to one counter mode (owned copies, so
  /// the Aggregate is safe to keep after the source vector is gone).
  [[nodiscard]] const std::vector<pc::NodeDump>& dumps_in_mode(u8 mode) const {
    return by_mode_.at(mode);
  }

  [[nodiscard]] unsigned set_id() const noexcept { return set_; }

  /// The set record of a dump, or null if the set is absent.
  [[nodiscard]] static const pc::SetDump* find_set(const pc::NodeDump& dump,
                                                   unsigned set);

 private:
  unsigned set_;
  std::array<RunningStats, isa::kNumEvents> per_event_{};
  std::array<std::vector<pc::NodeDump>, isa::kNumCounterModes> by_mode_{};
};

}  // namespace bgp::post
