// CSV reporting (paper §IV): one metrics record per application, plus the
// optional full dumps — statistics of all monitored counters, or every
// counter value read on every node.
#pragma once

#include <string>
#include <vector>

#include "common/csv.hpp"
#include "postproc/metrics.hpp"

namespace bgp::post {

/// The standard per-application metrics record. The coverage fields record
/// how much of the partition the record is based on: `nodes_mined <
/// nodes_expected` means the miner ran degraded (node deaths, lost or
/// corrupt dumps) and the averages come from the surviving quorum only.
/// `nodes_failed` counts nodes whose deaths the FT recovery log accounts
/// for — on a fully-recovered FT run, mined + failed == expected.
struct AppRecord {
  std::string app;
  double exec_cycles = 0;
  double mflops_per_node = 0;
  double ddr_traffic_bytes = 0;
  double ddr_bandwidth_bytes_per_cycle = 0;
  double l3_read_miss_ratio = 0;
  FpProfile fp;
  unsigned nodes_expected = 0;
  unsigned nodes_mined = 0;
  unsigned nodes_failed = 0;
};

/// Compute the standard record from aggregated dumps.
[[nodiscard]] AppRecord make_record(const std::string& app,
                                    const Aggregate& agg);

/// Append metric records, one row per application.
void write_metrics_csv(CsvWriter& csv, const std::vector<AppRecord>& records);

/// Per-counter statistics (min/max/mean over nodes) for all monitored
/// events of the aggregate.
void write_counter_stats_csv(CsvWriter& csv, const Aggregate& agg);

/// Every counter value read on every node (the "one massive .csv file").
void write_full_csv(CsvWriter& csv, const std::vector<pc::NodeDump>& dumps,
                    unsigned set = 0);

}  // namespace bgp::post
