// Minimal JSON value type for the daemon's newline-delimited control
// protocol and the /sessions listing. Deliberately tiny: objects keep
// insertion order (deterministic wire bytes), numbers are doubles (every
// quantity on the wire — ranks, seeds, cycle periods — fits in the 2^53
// exact-integer range), and parse errors throw with a byte offset. No
// external dependency, matching the repo's no-new-deps rule.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace bgp::daemon::json {

/// Malformed input (parse) or type mismatch (as_* accessors).
struct JsonError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

class Value {
 public:
  enum class Type : u8 { kNull, kBool, kNumber, kString, kObject, kArray };

  Value() = default;  // null
  explicit Value(bool b) : type_(Type::kBool), bool_(b) {}
  explicit Value(double n) : type_(Type::kNumber), num_(n) {}
  explicit Value(u64 n) : type_(Type::kNumber), num_(static_cast<double>(n)) {}
  explicit Value(int n) : type_(Type::kNumber), num_(n) {}
  explicit Value(std::string s) : type_(Type::kString), str_(std::move(s)) {}
  explicit Value(const char* s) : type_(Type::kString), str_(s) {}

  [[nodiscard]] static Value object() {
    Value v;
    v.type_ = Type::kObject;
    return v;
  }
  [[nodiscard]] static Value array() {
    Value v;
    v.type_ = Type::kArray;
    return v;
  }

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::kNull; }
  [[nodiscard]] bool is_object() const noexcept {
    return type_ == Type::kObject;
  }

  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  /// as_number() checked to be a non-negative whole value that fits u64.
  [[nodiscard]] u64 as_u64() const;

  // ---- object access ------------------------------------------------------
  /// Sets (or replaces) a member; turns a null value into an object.
  Value& set(std::string key, Value v);
  /// Member lookup; nullptr when absent (or not an object).
  [[nodiscard]] const Value* get(std::string_view key) const;
  [[nodiscard]] const std::vector<std::pair<std::string, Value>>& members()
      const noexcept {
    return members_;
  }

  // ---- array access -------------------------------------------------------
  /// Appends an element; turns a null value into an array.
  Value& push(Value v);
  [[nodiscard]] const std::vector<Value>& items() const noexcept {
    return items_;
  }

  /// Compact one-line serialization (the wire format — one value per line).
  [[nodiscard]] std::string dump() const;

  /// Parse a complete JSON document; trailing junk is an error.
  [[nodiscard]] static Value parse(std::string_view text);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  std::vector<std::pair<std::string, Value>> members_;
  std::vector<Value> items_;
};

}  // namespace bgp::daemon::json
