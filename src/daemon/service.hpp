// The daemon's session manager: admits jobs under quota, runs each session
// on its own thread (Machine + pc::Session + SnapshotPublisher, exactly the
// bgpc_run construction so finished dumps are byte-identical to batch
// runs), exposes list/status/kill, and drains gracefully — stop admissions,
// let running sessions finish, checkpoint nothing by force (kill is
// explicit). The daemon's own health metrics live in a private
// MetricsRegistry rendered by the /metrics endpoint.
#pragma once

#include <deque>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "daemon/hostobs.hpp"
#include "daemon/jobspec.hpp"
#include "daemon/journal.hpp"
#include "daemon/publisher.hpp"
#include "obs/metrics.hpp"

namespace bgp::daemon {

enum class SessionState : u8 {
  kQueued,
  kRunning,
  kFinished,  ///< ran to completion (dump files final)
  kFailed,    ///< threw; detail holds the error
  kKilled,    ///< stopped via kill/drain; checkpoint dumps written
  kAborted,   ///< orphaned by a daemon crash; salvage dumps may exist
};

[[nodiscard]] std::string_view to_string(SessionState s) noexcept;

struct SessionStatus;
/// The wire form of one session's status (the /sessions array element).
[[nodiscard]] json::Value to_json(const SessionStatus& st);

/// A point-in-time copy of one session's public state.
struct SessionStatus {
  std::string name;
  JobSpec spec;
  SessionState state = SessionState::kQueued;
  std::string detail;  ///< error text / verification summary
  bool verified = false;
  std::size_t dump_files = 0;
  std::size_t trace_files = 0;
  u64 resident_bytes = 0;
  cycles_t sim_cycles = 0;
  std::filesystem::path dump_dir;
  std::filesystem::path snapshot_path;
  /// Non-empty for kAborted sessions whose last checkpoint was salvaged
  /// into minable dumps.
  std::filesystem::path salvage_dir;
  /// True when this session was re-listed from the journal (a previous
  /// daemon life ran it).
  bool recovered = false;
};

struct ServiceConfig {
  /// Per-session working directories and snapshot files live here.
  std::filesystem::path work_dir = "bgpcd_work";
  Quotas quotas;
  /// Defaults for sessions that do not pick their own snapshot period.
  PublisherConfig snapshot;
  /// Write-ahead session journal; empty = <work_dir>/bgpcd.journal.
  std::filesystem::path journal_path;
  /// Replay the journal at startup (re-list finished sessions, abort +
  /// salvage orphans). Off only for throwaway test services.
  bool recover = true;
  /// Daemon-surface fault injector (journal/snapshot/socket); not owned.
  fault::DaemonFaultInjector* faults = nullptr;
  /// Host-side observability: event log levels, build version, flight
  /// ring geometry. Always on — host instrumentation bills no simulated
  /// cycles, so there is nothing to turn off.
  HostObsConfig host;
};

/// What startup recovery found and did; rendered into
/// <work_dir>/recovery.log and kept for /metrics and tests.
struct RecoveryReport {
  bool journal_found = false;
  std::size_t records_replayed = 0;
  std::size_t bytes_dropped = 0;  ///< torn/corrupt journal tail
  std::string tail_error;
  unsigned relisted = 0;        ///< terminal sessions listed again
  unsigned orphans_aborted = 0; ///< in-flight sessions marked kAborted
  unsigned dumps_salvaged = 0;  ///< node dumps recovered from snapshots
  std::vector<std::string> log; ///< human-readable recovery narrative
};

struct SubmitResult {
  bool ok = false;
  std::string error_code;  ///< structured: over_quota_*, draining, ...
  std::string detail;
  std::string session;
  std::filesystem::path dump_dir;
  std::filesystem::path snapshot_path;
};

class Service {
 public:
  explicit Service(ServiceConfig config);
  /// Drains and joins every session thread.
  ~Service();
  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Admission control + session start. Structured rejection codes:
  /// `draining`, `duplicate_session`, `over_quota_sessions`,
  /// `over_quota_ranks`, `over_quota_bytes`, `journal_unwritable`.
  /// `req_id` is the control-layer correlation ID threaded into the
  /// journal record and host events (empty for direct/API callers).
  SubmitResult submit(const JobSpec& spec, const std::string& req_id = {});

  [[nodiscard]] std::vector<SessionStatus> list() const;
  [[nodiscard]] bool status(const std::string& name, SessionStatus* out) const;

  /// Request a mid-run stop; the session checkpoints (seals traces, writes
  /// dumps atomically) and lands in kKilled. False with *err set when the
  /// session is unknown or already terminal.
  bool kill(const std::string& name, std::string* err,
            const std::string& req_id = {});

  /// Stop admitting; running sessions keep going.
  void begin_drain();
  [[nodiscard]] bool draining() const;
  /// Join every session thread (idempotent).
  void wait_idle();

  /// True once a journal append failed: the daemon serves reads and lets
  /// running sessions finish but admits nothing new (graceful degradation
  /// instead of crashing on a full disk).
  [[nodiscard]] bool read_only() const;
  /// "ok" / "degraded" (read-only) / "draining" — the /healthz body.
  [[nodiscard]] std::string health_text() const;

  /// What startup recovery replayed/salvaged (empty report when
  /// config.recover was false or no journal existed).
  [[nodiscard]] const RecoveryReport& recovery() const noexcept {
    return recovery_;
  }

  /// The daemon's own metrics (admissions, rejections, session states,
  /// resident bytes) — the /metrics exposition source.
  [[nodiscard]] obs::MetricsRegistry& metrics() noexcept { return metrics_; }
  /// The host observability bundle (latency histograms, event log,
  /// flight ring). Constructed with the service; never null.
  [[nodiscard]] HostObs& host() noexcept { return *host_obs_; }
  /// Refresh the gauges (running sessions, resident bytes) before export.
  void update_metrics();

  /// Count a structured rejection (also used by the control layer for
  /// protocol-level `bad_request`s).
  void count_rejection(const std::string& code);

  /// The /sessions listing as a JSON array.
  [[nodiscard]] json::Value sessions_json() const;

  [[nodiscard]] const ServiceConfig& config() const noexcept {
    return config_;
  }

 private:
  struct ActiveSession {
    std::string name;
    JobSpec spec;
    std::filesystem::path dir;
    std::filesystem::path snapshot_path;
    u64 resident_bytes = 0;
    /// Host clock at admission; run_session observes the delta into the
    /// queue-wait histogram when the session thread starts.
    i64 admit_host_ns = 0;
    std::thread thread;  ///< not joinable for recovered sessions

    /// Guards everything below (state transitions, machine handle).
    mutable std::mutex mu;
    SessionState state = SessionState::kQueued;
    std::string detail;
    bool verified = false;
    std::size_t dump_files = 0;
    std::size_t trace_files = 0;
    cycles_t sim_cycles = 0;
    rt::Machine* machine = nullptr;  ///< non-null only while running
    bool kill_requested = false;
    std::filesystem::path salvage_dir;
    bool recovered = false;
  };

  void run_session(ActiveSession& s);
  [[nodiscard]] SessionStatus snapshot_status(const ActiveSession& s) const;
  [[nodiscard]] u64 resident_now_locked() const;
  [[nodiscard]] unsigned live_sessions_locked() const;

  /// Append a lifecycle record; a write failure latches read-only mode
  /// (never throws out of a session thread).
  void journal_append(const char* op, const std::string& session,
                      json::Value body);
  void enter_read_only(const std::string& reason);
  /// Replay the journal: re-list terminal sessions, abort + salvage
  /// orphans, advance the auto-name counter past recovered names.
  void recover_from_journal();
  /// Salvage an orphan's last BGPSNAP checkpoint into
  /// <session_dir>/salvage/*.bgpc; returns the dump count.
  unsigned salvage_session(ActiveSession& s);
  void write_recovery_log() const;

  ServiceConfig config_;
  mutable std::mutex mu_;  ///< guards sessions_ membership + draining_
  std::mutex join_mu_;     ///< serializes wait_idle callers
  bool draining_ = false;
  unsigned seq_ = 0;  ///< auto-name counter
  /// Append-only (finished sessions stay listed); deque for stable refs.
  std::deque<std::unique_ptr<ActiveSession>> sessions_;

  std::unique_ptr<JournalWriter> journal_;  ///< null when unopenable
  mutable std::mutex ro_mu_;                ///< guards the two below
  bool read_only_ = false;
  std::string read_only_reason_;
  RecoveryReport recovery_;

  obs::MetricsRegistry metrics_;
  std::unique_ptr<HostObs> host_obs_;
  obs::Counter* admitted_ = nullptr;
  /// One pre-registered series per structured rejection code (registering
  /// lazily would race the /metrics render).
  std::map<std::string, obs::Counter*> rejected_by_;
  obs::Counter* finished_ = nullptr;
  obs::Counter* failed_ = nullptr;
  obs::Counter* killed_ = nullptr;
  obs::Counter* snapshots_ = nullptr;
  obs::Counter* journal_records_ = nullptr;
  obs::Counter* journal_errors_ = nullptr;
  obs::Counter* recovered_sessions_ = nullptr;
  obs::Counter* salvaged_dumps_ = nullptr;
  obs::Gauge* running_ = nullptr;
  obs::Gauge* resident_ = nullptr;
  obs::Gauge* draining_g_ = nullptr;
  obs::Gauge* read_only_g_ = nullptr;
};

}  // namespace bgp::daemon
