#include "daemon/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/strfmt.hpp"

namespace bgp::daemon::json {

bool Value::as_bool() const {
  if (type_ != Type::kBool) throw JsonError("expected a JSON bool");
  return bool_;
}

double Value::as_number() const {
  if (type_ != Type::kNumber) throw JsonError("expected a JSON number");
  return num_;
}

const std::string& Value::as_string() const {
  if (type_ != Type::kString) throw JsonError("expected a JSON string");
  return str_;
}

u64 Value::as_u64() const {
  const double n = as_number();
  if (!(n >= 0) || n != std::floor(n) || n > 1.8e19) {
    throw JsonError(strfmt("expected a non-negative integer, got %g", n));
  }
  return static_cast<u64>(n);
}

Value& Value::set(std::string key, Value v) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  if (type_ != Type::kObject) throw JsonError("set() on a non-object");
  for (auto& [k, old] : members_) {
    if (k == key) {
      old = std::move(v);
      return *this;
    }
  }
  members_.emplace_back(std::move(key), std::move(v));
  return *this;
}

const Value* Value::get(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

Value& Value::push(Value v) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  if (type_ != Type::kArray) throw JsonError("push() on a non-array");
  items_.push_back(std::move(v));
  return *this;
}

namespace {

void dump_string(const std::string& s, std::string& out) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void dump_number(double n, std::string& out) {
  if (n == std::floor(n) && std::abs(n) < 9.0e15) {
    out += strfmt("%lld", static_cast<long long>(n));
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", n);
    out += buf;
  }
}

void dump_value(const Value& v, std::string& out) {
  switch (v.type()) {
    case Value::Type::kNull: out += "null"; break;
    case Value::Type::kBool: out += v.as_bool() ? "true" : "false"; break;
    case Value::Type::kNumber: dump_number(v.as_number(), out); break;
    case Value::Type::kString: dump_string(v.as_string(), out); break;
    case Value::Type::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& [k, m] : v.members()) {
        if (!first) out.push_back(',');
        first = false;
        dump_string(k, out);
        out.push_back(':');
        dump_value(m, out);
      }
      out.push_back('}');
      break;
    }
    case Value::Type::kArray: {
      out.push_back('[');
      bool first = true;
      for (const Value& e : v.items()) {
        if (!first) out.push_back(',');
        first = false;
        dump_value(e, out);
      }
      out.push_back(']');
      break;
    }
  }
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    throw JsonError(strfmt("JSON parse error at byte %zu: %s", pos_, what));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char c) {
    if (!consume(c)) fail(strfmt("expected '%c'", c).c_str());
  }

  bool consume_word(const char* w) {
    const std::size_t n = std::strlen(w);
    if (text_.substr(pos_, n) == w) {
      pos_ += n;
      return true;
    }
    return false;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return Value(parse_string());
    if (consume_word("true")) return Value(true);
    if (consume_word("false")) return Value(false);
    if (consume_word("null")) return Value();
    return parse_number();
  }

  Value parse_object() {
    expect('{');
    Value obj = Value::object();
    skip_ws();
    if (consume('}')) return obj;
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(std::move(key), parse_value());
      skip_ws();
      if (consume(',')) continue;
      expect('}');
      return obj;
    }
  }

  Value parse_array() {
    expect('[');
    Value arr = Value::array();
    skip_ws();
    if (consume(']')) return arr;
    for (;;) {
      arr.push(parse_value());
      skip_ws();
      if (consume(',')) continue;
      expect(']');
      return arr;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') {
              cp |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              cp |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              cp |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not worth
          // supporting on this control channel; session names are ASCII).
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {}
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("malformed number");
    return Value(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string Value::dump() const {
  std::string out;
  dump_value(*this, out);
  return out;
}

Value Value::parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace bgp::daemon::json
