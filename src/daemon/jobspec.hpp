// A job submission on the daemon's control channel: machine configuration,
// workload, fault/FT/trace/obs options — the same knob set bgpc_run exposes
// as flags, so a daemon-hosted session can reproduce a batch run exactly.
// Parsed from the NDJSON control protocol with strict validation: unknown
// keys and malformed values are structured errors, never silent defaults.
#pragma once

#include <optional>
#include <string>

#include "daemon/json.hpp"
#include "ft/ftypes.hpp"
#include "nas/kernel.hpp"
#include "runtime/sched.hpp"
#include "sys/mode.hpp"

namespace bgp::daemon {

struct JobSpec {
  /// Session name (path-safe: [A-Za-z0-9._-]); empty = daemon assigns one.
  std::string session;
  nas::Benchmark bench = nas::Benchmark::kCG;
  nas::ProblemClass cls = nas::ProblemClass::kS;
  unsigned nodes = 4;
  sys::OpMode mode = sys::OpMode::kVnm;
  unsigned ranks = 0;  ///< 0 = all the partition hosts
  rt::SchedMode sched = rt::SchedMode::kSerial;
  unsigned jobs = 0;

  unsigned deaths = 0;
  u64 fault_seed = 1;
  ft::FtParams ftp;

  bool trace = false;
  cycles_t interval_cycles = 10'000;
  std::string preset = "default";

  bool obs = false;

  /// Periodic snapshot publication period in simulated cycles; nullopt =
  /// the daemon's default, 0 = final-only snapshots.
  std::optional<cycles_t> snapshot_period_cycles;

  /// Ranks this job will run (after mode/override resolution).
  [[nodiscard]] unsigned effective_ranks() const {
    const unsigned capacity = nodes * sys::processes_per_node(mode);
    return ranks == 0 ? capacity : ranks;
  }

  /// Strict parse of a control-protocol submit object. Throws
  /// json::JsonError (with a human detail) on unknown keys or bad values.
  [[nodiscard]] static JobSpec from_json(const json::Value& v);
  /// The wire form (round-trips through from_json).
  [[nodiscard]] json::Value to_json() const;
};

/// Admission-control budgets, enforced per submit.
struct Quotas {
  unsigned max_sessions = 8;        ///< concurrently queued/running
  unsigned max_ranks = 1024;        ///< per session
  u64 max_resident_bytes = u64{2} << 30;  ///< sum over live sessions
};

/// Deterministic resident-memory model for admission control: the simulated
/// L3 + DDR structures per node, fiber/thread stacks per rank, and the
/// snapshot file mapping. Intentionally a coarse upper-bound model — the
/// point is a stable, explainable admission decision.
[[nodiscard]] u64 estimate_resident_bytes(const JobSpec& spec);

/// True when `name` is a safe session name (nonempty, [A-Za-z0-9._-],
/// no leading dot, at most 64 chars).
[[nodiscard]] bool valid_session_name(const std::string& name);

}  // namespace bgp::daemon
