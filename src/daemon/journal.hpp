// Write-ahead session journal: the daemon's crash-safe memory of every
// session lifecycle transition. The Service appends one record per
// transition (admit/start/checkpoint/finish/kill/abort) *before* acting on
// it; a restarted daemon replays the journal to re-list finished sessions
// and to find orphans — sessions that were in flight when the process died —
// whose last BGPSNAP checkpoint it salvages into minable dumps.
//
// On-disk layout (single file, append-only):
//
//   header   magic "BGPJRNL\0" + u32 version
//   frame[]  u32 payload_len | u32 crc32(payload) | payload
//
// where each payload is one compact JSON object ({"op","session","body"}).
// A crash can tear the final frame (short write) or leave garbage past the
// last fsync — replay walks frames until the first one whose length or CRC
// fails, keeps everything before it, and reports the dropped tail. The
// writer truncates the torn tail on reopen so post-crash appends always
// land on a frame boundary and stay readable.
#pragma once

#include <filesystem>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "daemon/json.hpp"

namespace bgp::fault {
class DaemonFaultInjector;
}

namespace bgp::obs {
class Histogram;
}

namespace bgp::daemon {

inline constexpr char kJournalMagic[8] = {'B', 'G', 'P', 'J', 'R', 'N', 'L',
                                          '\0'};
inline constexpr u32 kJournalVersion = 1;
/// magic + version.
inline constexpr std::size_t kJournalHeaderBytes = 12;
/// Upper bound on one record's payload; a larger length field means the
/// frame is garbage, not a huge record.
inline constexpr std::size_t kJournalMaxRecordBytes = 1 * MiB;

/// Journal ops, in lifecycle order. `kAbort` is written by *recovery* when
/// it orphans an in-flight session (never by a live run).
namespace journal_op {
inline constexpr const char* kAdmit = "admit";
inline constexpr const char* kStart = "start";
inline constexpr const char* kCheckpoint = "checkpoint";
inline constexpr const char* kFinish = "finish";
inline constexpr const char* kKill = "kill";
inline constexpr const char* kAbort = "abort";
}  // namespace journal_op

struct JournalRecord {
  std::string op;
  std::string session;
  json::Value body;  ///< op-specific payload (object or null)

  [[nodiscard]] json::Value to_json() const;
  [[nodiscard]] static JournalRecord from_json(const json::Value& v);
};

/// The journal file is unusable (foreign magic, unsupported version).
struct JournalError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// An append could not be persisted (ENOSPC, I/O error, injected fault).
/// The daemon reacts by entering read-only mode, not by crashing.
struct JournalWriteError : JournalError {
  using JournalError::JournalError;
};

/// Result of walking a journal file.
struct JournalReplay {
  std::vector<JournalRecord> records;
  /// Bytes of header + intact frames (the truncation point for a writer).
  std::size_t valid_bytes = 0;
  /// Torn/corrupt tail bytes discarded past valid_bytes.
  std::size_t dropped_bytes = 0;
  /// Why the walk stopped early; empty on a clean end-of-file.
  std::string tail_error;
};

/// Replay a journal. A missing file is an empty journal; a file with a
/// foreign magic or unsupported version throws JournalError (never
/// clobber something that isn't ours). Torn tails are tolerated and
/// reported, never fatal.
[[nodiscard]] JournalReplay replay_journal(const std::filesystem::path& path);

/// Appending writer. Construction replays any existing journal (exposed
/// via recovered()) and truncates a torn tail so the file ends on a frame
/// boundary. Appends are serialized internally and written as one
/// contiguous frame; on failure the frame is considered not written (a
/// partial frame is exactly what replay tolerates).
class JournalWriter {
 public:
  explicit JournalWriter(std::filesystem::path path,
                         fault::DaemonFaultInjector* faults = nullptr);
  ~JournalWriter();
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Throws JournalWriteError if the record could not be fully persisted.
  /// The frame is written and then fdatasync'd — "persisted" means the
  /// kernel has accepted it for durable storage, not just buffered it.
  void append(const JournalRecord& rec);

  /// Attach host-latency histograms (frame write / fdatasync phases).
  /// Either may be null; observations are in host seconds and bill no
  /// simulated cycles.
  void set_host_timers(obs::Histogram* write_seconds,
                       obs::Histogram* fsync_seconds) noexcept {
    t_write_ = write_seconds;
    t_fsync_ = fsync_seconds;
  }

  [[nodiscard]] const JournalReplay& recovered() const noexcept {
    return recovered_;
  }
  [[nodiscard]] const std::filesystem::path& path() const noexcept {
    return path_;
  }
  [[nodiscard]] u64 appended() const noexcept;

 private:
  std::filesystem::path path_;
  fault::DaemonFaultInjector* faults_ = nullptr;
  int fd_ = -1;
  JournalReplay recovered_;
  u64 appended_ = 0;
  obs::Histogram* t_write_ = nullptr;
  obs::Histogram* t_fsync_ = nullptr;
  mutable std::mutex mu_;
};

/// Serialize one frame (length + CRC + payload) — exposed for tests that
/// hand-craft journals and corrupt their tails.
[[nodiscard]] std::vector<std::byte> encode_journal_frame(
    const JournalRecord& rec);

}  // namespace bgp::daemon
