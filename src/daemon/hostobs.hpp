// Host-side self-characterization for bgpcd: the daemon measured with the
// same discipline it applies to simulated workloads. One HostObs instance
// (owned by the Service) bundles
//
//   - the host-latency histogram families exported on /metrics
//     (control request phases, journal append + fsync, snapshot seqlock
//     publish, HTTP scrape, session admission-to-start queue wait),
//   - structured JSONL host event logging (events.jsonl, leveled,
//     rotating, crash-safe) with per-request correlation IDs,
//   - the mmap-backed flight ring of recent events (survives SIGKILL;
//     salvaged into flight.jsonl at the next start, dumpable from fatal
//     signal handlers, readable live via /debug/events),
//   - bgpcd_build_info / bgpcd_uptime_seconds.
//
// Everything here runs on the HOST timeline (steady/realtime clocks) and
// bills zero simulated cycles: enabling host observability cannot move a
// single simulated event, which tab_overhead re-asserts byte-for-byte.
#pragma once

#include <atomic>
#include <filesystem>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "obs/flight_ring.hpp"
#include "obs/host_clock.hpp"
#include "obs/host_log.hpp"
#include "obs/metrics.hpp"

namespace bgp::daemon {

struct HostObsConfig {
  /// Threshold for the events.jsonl file sink.
  obs::EventLevel file_level = obs::EventLevel::kDebug;
  /// Threshold for the stderr mirror (bgpcd --log-level); nullopt keeps
  /// stderr quiet (the in-process test default).
  std::optional<obs::EventLevel> stderr_level;
  /// Reported in bgpcd_build_info{version=...}; empty renders "unknown".
  std::string version;
  u64 log_rotate_bytes = 8 * MiB;
  unsigned log_rotate_keep = 2;
  u32 ring_slots = 512;
  u32 ring_slot_bytes = 512;
};

class HostObs {
 public:
  /// Registers the host metric families in `reg` (which must outlive
  /// this object), opens <work_dir>/events.jsonl and the flight ring,
  /// and salvages a crashed predecessor's ring into flight.jsonl.
  HostObs(obs::MetricsRegistry& reg, std::filesystem::path work_dir,
          HostObsConfig cfg);
  HostObs(const HostObs&) = delete;
  HostObs& operator=(const HostObs&) = delete;

  // --- latency histograms (never null) ---------------------------------
  obs::Histogram* control_parse = nullptr;
  obs::Histogram* control_dispatch = nullptr;
  obs::Histogram* control_respond = nullptr;
  obs::Histogram* journal_write = nullptr;
  obs::Histogram* journal_fsync = nullptr;
  obs::Histogram* snapshot_publish = nullptr;
  obs::Histogram* queue_wait = nullptr;
  /// The per-path scrape histogram; unknown paths share the
  /// {path="other"} series so cardinality stays bounded.
  [[nodiscard]] obs::Histogram* http_request(const std::string& path);

  // --- correlation + events --------------------------------------------
  /// Fresh process-unique correlation ID ("r000001", ...).
  [[nodiscard]] std::string next_request_id();
  /// True when an event at `level` would reach any sink (the ring always
  /// counts, so this is effectively always true — kept for symmetry and
  /// for callers that only build events when someone listens).
  [[nodiscard]] bool enabled(obs::EventLevel level) const noexcept;
  /// Render once; append to the flight ring unconditionally, to the
  /// JSONL log / stderr per the configured levels.
  void emit(obs::EventLevel level, const obs::HostEvent& ev);

  /// Consistent copy of the flight ring (the /debug/events body).
  [[nodiscard]] std::vector<std::string> recent_events() const;
  /// Null when the ring could not be mapped (logging continues without it).
  [[nodiscard]] obs::FlightRing* ring() noexcept { return ring_.get(); }
  [[nodiscard]] obs::HostEventLog& log() noexcept { return log_; }

  /// Events recovered from a dirty predecessor ring at startup (already
  /// appended to flight.jsonl by the constructor).
  [[nodiscard]] std::size_t salvaged_events() const noexcept {
    return salvaged_events_;
  }
  [[nodiscard]] const std::filesystem::path& flight_dump_path()
      const noexcept {
    return flight_dump_path_;
  }

  /// Refresh bgpcd_uptime_seconds (called from Service::update_metrics).
  void update_uptime();

 private:
  HostObsConfig cfg_;
  std::filesystem::path flight_dump_path_;
  obs::HostEventLog log_;
  std::unique_ptr<obs::FlightRing> ring_;
  std::size_t salvaged_events_ = 0;
  std::atomic<u64> req_seq_{0};
  i64 start_ns_ = 0;
  obs::Gauge* uptime_ = nullptr;
  std::map<std::string, obs::Histogram*, std::less<>> http_by_path_;
  obs::Histogram* http_other_ = nullptr;
  obs::Counter* events_by_level_[4] = {};
};

}  // namespace bgp::daemon
