#include "daemon/httpd.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "common/strfmt.hpp"
#include "obs/host_clock.hpp"

namespace bgp::daemon {

namespace {

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 503: return "Service Unavailable";
    default: return "Error";
  }
}

/// Read until the end of the request headers (or the buffer limit). The
/// socket carries an SO_RCVTIMEO deadline: a half-open or trickling client
/// surfaces as EAGAIN here and the connection is dropped.
bool read_request_head(int fd, std::string& head) {
  char buf[2048];
  while (head.size() < 16 * 1024) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    head.append(buf, static_cast<std::size_t>(n));
    if (head.find("\r\n\r\n") != std::string::npos ||
        head.find("\n\n") != std::string::npos) {
      return true;
    }
  }
  return false;
}

void send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return;  // peer gone or send deadline expired: drop
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace

HttpServer::~HttpServer() { stop(); }

void HttpServer::route(std::string path, HttpHandler handler) {
  routes_[std::move(path)] = std::move(handler);
}

unsigned short HttpServer::start(unsigned short port, unsigned threads) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error(strfmt("socket: %s", std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, 64) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error(
        strfmt("cannot listen on 127.0.0.1:%u: %s", port, std::strerror(err)));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  workers_.reserve(threads);
  for (unsigned i = 0; i < std::max(1u, threads); ++i) {
    workers_.emplace_back([this] { accept_loop(); });
  }
  return port_;
}

void HttpServer::stop() {
  if (listen_fd_ < 0) return;
  // shutdown() kicks every worker out of its blocking accept(); close()
  // afterwards releases the descriptor.
  ::shutdown(listen_fd_, SHUT_RDWR);
  for (auto& w : workers_) w.join();
  workers_.clear();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void HttpServer::accept_loop() {
  for (;;) {
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // shutdown() or a fatal error: the worker retires
    }
    serve(client);
    ::close(client);
  }
}

void HttpServer::serve(int client_fd) {
  if (io_timeout_ms_ != 0) {
    timeval tv{};
    tv.tv_sec = io_timeout_ms_ / 1000;
    tv.tv_usec = static_cast<suseconds_t>((io_timeout_ms_ % 1000) * 1000);
    (void)::setsockopt(client_fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    (void)::setsockopt(client_fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
  std::string head;
  if (!read_request_head(client_fd, head)) return;
  // Host latency from here: the request is in hand, the clock measures
  // us (handler + serialization + send), not the client's typing speed.
  const obs::HostTimer timer;
  // Request line: METHOD SP PATH SP VERSION.
  const std::size_t eol = head.find_first_of("\r\n");
  const std::string line = head.substr(0, eol);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  HttpResponse resp;
  std::string path;
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    resp = HttpResponse{400, "text/plain; charset=utf-8", "bad request\n"};
  } else {
    const std::string method = line.substr(0, sp1);
    path = line.substr(sp1 + 1, sp2 - sp1 - 1);
    if (const std::size_t q = path.find('?'); q != std::string::npos) {
      path.resize(q);
    }
    if (method != "GET") {
      resp = HttpResponse{405, "text/plain; charset=utf-8",
                          "only GET is supported\n"};
    } else if (const auto it = routes_.find(path); it != routes_.end()) {
      try {
        resp = it->second(path);
      } catch (const std::exception& e) {
        resp = HttpResponse{500, "text/plain; charset=utf-8",
                            strfmt("handler error: %s\n", e.what())};
      }
    } else {
      resp = HttpResponse{404, "text/plain; charset=utf-8", "not found\n"};
    }
  }
  std::string out = strfmt(
      "HTTP/1.0 %d %s\r\nContent-Type: %s\r\nContent-Length: %zu\r\n"
      "Connection: close\r\n\r\n",
      resp.status, status_text(resp.status), resp.content_type.c_str(),
      resp.body.size());
  out += resp.body;
  send_all(client_fd, out);
  if (observer_) observer_(path, resp.status, timer.elapsed_seconds());
}

}  // namespace bgp::daemon
