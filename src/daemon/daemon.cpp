#include "daemon/daemon.hpp"

#include "common/strfmt.hpp"
#include "obs/promtext.hpp"

namespace bgp::daemon {

Daemon::Daemon(DaemonConfig config) : service_(std::move(config.service)) {
  std::filesystem::path sock = config.socket_path;
  if (sock.empty()) sock = service_.config().work_dir / "bgpcd.sock";
  control_.set_io_timeout_ms(config.control_io_timeout_ms);
  control_.set_fault_injector(service_.config().faults);
  control_.set_host_obs(&service_.host());
  control_.start(sock, [this](const json::Value& req, const ControlContext&
                                                         ctx) {
    return handle(req, ctx);
  });

  http_.set_io_timeout_ms(config.http_io_timeout_ms);
  http_.set_observer(
      [this](const std::string& path, int status, double seconds) {
        service_.host().http_request(path)->observe(seconds);
        if (status >= 400 &&
            service_.host().enabled(obs::EventLevel::kDebug)) {
          service_.host().emit(obs::EventLevel::kDebug,
                               obs::HostEvent("http_request")
                                   .str("path", path)
                                   .num("status", i64{status})
                                   .num("seconds", seconds));
        }
      });
  http_.route("/healthz", [this](const std::string&) {
    return HttpResponse{200, "text/plain; charset=utf-8",
                        service_.health_text() + "\n"};
  });
  http_.route("/metrics", [this](const std::string&) {
    service_.update_metrics();
    return HttpResponse{200, "text/plain; version=0.0.4; charset=utf-8",
                        obs::render_prometheus(service_.metrics())};
  });
  http_.route("/sessions", [this](const std::string&) {
    return HttpResponse{200, "application/json",
                        service_.sessions_json().dump() + "\n"};
  });
  http_.route("/debug/events", [this](const std::string&) {
    // The flight ring, live: one JSON event per line, oldest first —
    // the same records a crash would leave in flight.jsonl.
    std::string body;
    for (const std::string& line : service_.host().recent_events()) {
      body += line;
      body += '\n';
    }
    return HttpResponse{200, "application/x-ndjson", std::move(body)};
  });
  try {
    http_.start(config.http_port, config.http_threads);
  } catch (...) {
    control_.stop();
    throw;
  }
}

Daemon::~Daemon() {
  http_.stop();
  control_.stop();
  // ~Service drains and joins the session threads.
}

void Daemon::begin_drain() {
  service_.begin_drain();
  {
    std::lock_guard<std::mutex> lk(drain_mu_);
    drain_requested_ = true;
  }
  drain_cv_.notify_all();
}

unsigned Daemon::run_until_drained() {
  {
    std::unique_lock<std::mutex> lk(drain_mu_);
    drain_cv_.wait(lk, [this] { return drain_requested_; });
  }
  // Admissions are closed; the servers stay up while sessions finish so
  // scrapes and status queries keep working through the drain.
  service_.wait_idle();
  unsigned failed = 0;
  for (const SessionStatus& st : service_.list()) {
    if (st.state == SessionState::kFailed) ++failed;
  }
  http_.stop();
  control_.stop();
  return failed;
}

json::Value Daemon::handle(const json::Value& req, const ControlContext& ctx) {
  const json::Value* cmd_v = req.is_object() ? req.get("cmd") : nullptr;
  if (cmd_v == nullptr) {
    service_.count_rejection("bad_request");
    return control_error("bad_request", "request needs a 'cmd' member");
  }
  const std::string cmd = cmd_v->as_string();

  if (cmd == "ping") {
    json::Value v = control_ok();
    v.set("pong", json::Value(true));
    v.set("draining", json::Value(service_.draining()));
    return v;
  }
  if (cmd == "submit") {
    const json::Value* job = req.get("job");
    if (job == nullptr) {
      service_.count_rejection("bad_request");
      return control_error("bad_request", "submit needs a 'job' object");
    }
    JobSpec spec;
    try {
      spec = JobSpec::from_json(*job);
    } catch (const json::JsonError& e) {
      service_.count_rejection("bad_request");
      return control_error("bad_request", e.what());
    }
    const SubmitResult res = service_.submit(spec, ctx.request_id);
    if (!res.ok) return control_error(res.error_code, res.detail);
    json::Value v = control_ok();
    v.set("session", json::Value(res.session));
    v.set("dump_dir", json::Value(res.dump_dir.string()));
    v.set("snapshot", json::Value(res.snapshot_path.string()));
    return v;
  }
  if (cmd == "list") {
    json::Value v = control_ok();
    v.set("sessions", service_.sessions_json());
    return v;
  }
  if (cmd == "status") {
    const json::Value* name = req.get("session");
    if (name == nullptr) {
      return control_error("bad_request", "status needs a 'session' name");
    }
    SessionStatus st;
    if (!service_.status(name->as_string(), &st)) {
      return control_error(
          "not_found",
          strfmt("no session named '%s'", name->as_string().c_str()));
    }
    json::Value v = control_ok();
    v.set("session", to_json(st));
    return v;
  }
  if (cmd == "kill") {
    const json::Value* name = req.get("session");
    if (name == nullptr) {
      return control_error("bad_request", "kill needs a 'session' name");
    }
    std::string err;
    if (!service_.kill(name->as_string(), &err, ctx.request_id)) {
      return control_error("not_found", err);
    }
    return control_ok();
  }
  if (cmd == "drain" || cmd == "shutdown") {
    begin_drain();
    return control_ok();
  }
  service_.count_rejection("bad_request");
  return control_error("bad_request",
                       strfmt("unknown command '%s'", cmd.c_str()));
}

}  // namespace bgp::daemon
