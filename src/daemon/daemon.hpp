// The composed daemon: a Service (session manager) fronted by the control
// socket (submit/list/status/kill/drain/shutdown/ping) and the HTTP
// observability surface (/metrics, /sessions, /healthz). Embeddable — the
// integration tests run a Daemon in-process; tools/bgpcd wraps it in a
// main() with signal-driven drain.
#pragma once

#include <atomic>
#include <condition_variable>
#include <filesystem>
#include <mutex>

#include "daemon/control.hpp"
#include "daemon/httpd.hpp"
#include "daemon/service.hpp"

namespace bgp::daemon {

struct DaemonConfig {
  ServiceConfig service;
  std::filesystem::path socket_path;  ///< empty = <work_dir>/bgpcd.sock
  unsigned short http_port = 0;       ///< 0 = ephemeral
  unsigned http_threads = 2;
  /// Per-connection socket deadlines (0 = no deadline). Slow or half-open
  /// clients get dropped instead of pinning a worker thread.
  unsigned control_io_timeout_ms = 30'000;
  unsigned http_io_timeout_ms = 5'000;
};

class Daemon {
 public:
  /// Starts the control and HTTP servers. Throws on bind failure.
  explicit Daemon(DaemonConfig config);
  ~Daemon();
  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  [[nodiscard]] Service& service() noexcept { return service_; }
  [[nodiscard]] const std::filesystem::path& socket_path() const noexcept {
    return control_.socket_path();
  }
  [[nodiscard]] unsigned short http_port() const noexcept {
    return http_.port();
  }

  /// Graceful-shutdown entry (what SIGTERM triggers): stop admissions and
  /// wake run_until_drained(). Safe from any thread; idempotent. NOT
  /// async-signal-safe — signal handlers should set a flag/poke a pipe and
  /// call this from a normal thread (tools/bgpcd does).
  void begin_drain();

  /// Block until begin_drain() was called and every session ended, then
  /// stop both servers. Returns the number of sessions that ended kFailed
  /// (0 = clean exit).
  unsigned run_until_drained();

 private:
  json::Value handle(const json::Value& req, const ControlContext& ctx);

  Service service_;
  ControlServer control_;
  HttpServer http_;
  std::mutex drain_mu_;
  std::condition_variable drain_cv_;
  bool drain_requested_ = false;
};

}  // namespace bgp::daemon
