// Live attach: read a running (or finished) session's snapshot file and
// reconstruct the in-memory NodeDump shape the post-processing layer mines.
// The reconstruction is exact for the interface library's standard flow
// (BGP_Initialize clears the counters, BGP_Start follows immediately), so a
// mid-flight snapshot is "set 0, one open pair, deltas = the raw counters".
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "core/dumpformat.hpp"
#include "daemon/snapfile.hpp"

namespace bgp::daemon {

/// One attached read of the whole snapshot file.
struct AttachView {
  std::string app;
  std::string session;
  /// Nodes whose snapshot was readable and non-idle, in node order.
  std::vector<NodeSnapshot> nodes;
  /// Nodes skipped because their seqlock never stabilized (publisher mid
  /// write through every retry) or the slot CRC failed.
  std::vector<unsigned> unreadable;
  /// The publisher's rendered metrics exposition ("" when none published).
  std::string metrics_text;
  /// True when every readable node was kFinal (the run is over).
  bool final_only = true;
};

/// Read every node block (and the metrics text) from an open reader.
[[nodiscard]] AttachView attach_read(const SnapshotReader& reader);

/// Convenience: open `path` and read it once.
[[nodiscard]] AttachView attach_file(const std::filesystem::path& path);

/// Reconstruct the miner-facing dump for one snapshot: set 0, one
/// start/stop pair spanning [0, published_cycle], deltas = the raw
/// counters. kIdle nodes (initialized but not yet counting) yield a dump
/// with zero pairs.
[[nodiscard]] pc::NodeDump to_node_dump(const NodeSnapshot& snap,
                                        const std::string& app);

/// All readable nodes of a view as NodeDumps (kIdle nodes included).
[[nodiscard]] std::vector<pc::NodeDump> to_node_dumps(const AttachView& view);

}  // namespace bgp::daemon
