// Live attach: read a running (or finished) session's snapshot file and
// reconstruct the in-memory NodeDump shape the post-processing layer mines.
// The reconstruction is exact for the interface library's standard flow
// (BGP_Initialize clears the counters, BGP_Start follows immediately), so a
// mid-flight snapshot is "set 0, one open pair, deltas = the raw counters".
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "core/dumpformat.hpp"
#include "daemon/snapfile.hpp"

namespace bgp::daemon {

/// One attached read of the whole snapshot file.
struct AttachView {
  std::string app;
  std::string session;
  /// Nodes whose snapshot was readable and non-idle, in node order.
  std::vector<NodeSnapshot> nodes;
  /// Nodes skipped because their seqlock never stabilized (publisher mid
  /// write through every retry) or the slot CRC failed. Union of `busy`
  /// and `corrupt`, kept for compatibility.
  std::vector<unsigned> unreadable;
  /// Subset of unreadable: seqlock never stabilized. On a live file this
  /// is a racing writer (retry helps); on a dead writer's file it means
  /// the writer crashed mid-publish and the slot is stale forever.
  std::vector<unsigned> busy;
  /// Subset of unreadable: stable sequence, CRC mismatch (bit rot).
  std::vector<unsigned> corrupt;
  /// The publisher's rendered metrics exposition ("" when none published).
  std::string metrics_text;
  /// True when every readable node was kFinal (the run is over).
  bool final_only = true;
};

/// Read every node block (and the metrics text) from an open reader.
[[nodiscard]] AttachView attach_read(const SnapshotReader& reader);

/// Convenience: open `path` and read it once.
[[nodiscard]] AttachView attach_file(const std::filesystem::path& path);

/// Bounded-retry attach for files whose writer may be live, slow, or dead.
struct AttachRetry {
  /// Total attach attempts before giving up on busy nodes.
  unsigned attempts = 8;
  /// Backoff between attempts: base * 2^attempt, capped, jittered ±50%.
  unsigned base_delay_ms = 2;
  unsigned max_delay_ms = 100;
  /// 0 = derive a seed (non-reproducible); fixed values make tests exact.
  u64 jitter_seed = 0;
};

/// attach_file that retries while nodes are seqlock-busy (a live writer
/// publishing). If nodes are still busy after the final attempt the writer
/// is gone or wedged: throws std::runtime_error with a clear
/// "writer gone / snapshot stale" message instead of spinning forever.
/// Corrupt (CRC-failing) nodes never throw — they stay listed in
/// `corrupt`/`unreadable` and the caller mines what is readable.
[[nodiscard]] AttachView attach_file_retry(const std::filesystem::path& path,
                                           const AttachRetry& retry = {});

/// Reconstruct the miner-facing dump for one snapshot: set 0, one
/// start/stop pair spanning [0, published_cycle], deltas = the raw
/// counters. kIdle nodes (initialized but not yet counting) yield a dump
/// with zero pairs.
[[nodiscard]] pc::NodeDump to_node_dump(const NodeSnapshot& snap,
                                        const std::string& app);

/// All readable nodes of a view as NodeDumps (kIdle nodes included).
[[nodiscard]] std::vector<pc::NodeDump> to_node_dumps(const AttachView& view);

}  // namespace bgp::daemon
