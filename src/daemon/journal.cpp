#include "daemon/journal.hpp"

#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>

#include "common/binio.hpp"
#include "common/crc.hpp"
#include "common/strfmt.hpp"
#include "fault/fault.hpp"
#include "obs/host_clock.hpp"

namespace bgp::daemon {

namespace {

std::vector<std::byte> journal_header_bytes() {
  std::vector<std::byte> out(kJournalHeaderBytes);
  std::memcpy(out.data(), kJournalMagic, sizeof(kJournalMagic));
  const u32 version = kJournalVersion;
  std::memcpy(out.data() + sizeof(kJournalMagic), &version, sizeof(version));
  return out;
}

/// write() the whole buffer, retrying short writes and real EINTR.
/// Returns an errno on failure, 0 on success.
int write_fully(int fd, const std::byte* data, std::size_t len) {
  std::size_t done = 0;
  while (done < len) {
    const ssize_t n = ::write(fd, data + done, len - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno;
    }
    done += static_cast<std::size_t>(n);
  }
  return 0;
}

}  // namespace

json::Value JournalRecord::to_json() const {
  json::Value v = json::Value::object();
  v.set("op", json::Value(op));
  v.set("session", json::Value(session));
  v.set("body", body);
  return v;
}

JournalRecord JournalRecord::from_json(const json::Value& v) {
  JournalRecord rec;
  const json::Value* op = v.get("op");
  const json::Value* session = v.get("session");
  if (!op || !session) {
    throw json::JsonError("journal record missing op/session");
  }
  rec.op = op->as_string();
  rec.session = session->as_string();
  if (const json::Value* body = v.get("body")) rec.body = *body;
  return rec;
}

std::vector<std::byte> encode_journal_frame(const JournalRecord& rec) {
  const std::string payload = rec.to_json().dump();
  const auto* p = reinterpret_cast<const std::byte*>(payload.data());
  const u32 len = static_cast<u32>(payload.size());
  const u32 crc = crc32({p, payload.size()});
  std::vector<std::byte> frame(8 + payload.size());
  std::memcpy(frame.data(), &len, 4);
  std::memcpy(frame.data() + 4, &crc, 4);
  std::memcpy(frame.data() + 8, p, payload.size());
  return frame;
}

JournalReplay replay_journal(const std::filesystem::path& path) {
  JournalReplay out;
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) return out;

  const std::vector<std::byte> bytes = read_file_bytes(path);
  if (bytes.empty()) {
    // Created but never got its header (crash between open and write):
    // an empty journal.
    return out;
  }
  if (bytes.size() >= sizeof(kJournalMagic) &&
      std::memcmp(bytes.data(), kJournalMagic, sizeof(kJournalMagic)) != 0) {
    throw JournalError(
        strfmt("%s is not a bgpcd journal (bad magic)", path.c_str()));
  }
  if (bytes.size() < kJournalHeaderBytes) {
    // Magic prefix but torn header: treat as an empty journal whose tail
    // (the partial header) is dropped; the writer rebuilds the header.
    out.dropped_bytes = bytes.size();
    out.tail_error = "torn header";
    return out;
  }
  u32 version = 0;
  std::memcpy(&version, bytes.data() + sizeof(kJournalMagic), sizeof(version));
  if (version != kJournalVersion) {
    throw JournalError(strfmt("journal %s has unsupported version %u",
                              path.c_str(), version));
  }

  std::size_t off = kJournalHeaderBytes;
  while (off + 8 <= bytes.size()) {
    u32 len = 0;
    u32 crc = 0;
    std::memcpy(&len, bytes.data() + off, 4);
    std::memcpy(&crc, bytes.data() + off + 4, 4);
    if (len == 0 || len > kJournalMaxRecordBytes) {
      out.tail_error = strfmt("bad frame length %u at offset %zu", len, off);
      break;
    }
    if (off + 8 + len > bytes.size()) {
      out.tail_error = strfmt("torn frame at offset %zu (%zu of %u payload "
                              "bytes present)",
                              off, bytes.size() - off - 8, len);
      break;
    }
    const std::span<const std::byte> payload{bytes.data() + off + 8, len};
    if (crc32(payload) != crc) {
      out.tail_error = strfmt("frame checksum mismatch at offset %zu", off);
      break;
    }
    try {
      const std::string_view text{
          reinterpret_cast<const char*>(payload.data()), payload.size()};
      out.records.push_back(JournalRecord::from_json(json::Value::parse(text)));
    } catch (const json::JsonError& e) {
      // A CRC-valid frame with unparseable JSON can only be corruption that
      // happens to collide — treat like any other bad tail.
      out.tail_error =
          strfmt("unparseable record at offset %zu: %s", off, e.what());
      break;
    }
    off += 8 + len;
  }
  if (off + 8 > bytes.size() && off < bytes.size() && out.tail_error.empty()) {
    out.tail_error = strfmt("torn frame header at offset %zu", off);
  }
  out.valid_bytes = off;
  out.dropped_bytes = bytes.size() - off;
  return out;
}

JournalWriter::JournalWriter(std::filesystem::path path,
                             fault::DaemonFaultInjector* faults)
    : path_(std::move(path)), faults_(faults) {
  recovered_ = replay_journal(path_);  // throws JournalError on foreign files

  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    throw JournalWriteError(strfmt("cannot open journal %s: %s", path_.c_str(),
                                   ::strerror(errno)));
  }
  // Drop any torn tail so post-crash appends land on a frame boundary; the
  // header counts as valid bytes 0 only when the file was empty/torn.
  const off_t keep = static_cast<off_t>(
      std::max(recovered_.valid_bytes, std::size_t{0}));
  if (::ftruncate(fd_, keep) != 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw JournalWriteError(strfmt("cannot truncate journal %s: %s",
                                   path_.c_str(), ::strerror(err)));
  }
  if (::lseek(fd_, 0, SEEK_END) < 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw JournalWriteError(strfmt("cannot seek journal %s: %s", path_.c_str(),
                                   ::strerror(err)));
  }
  if (recovered_.valid_bytes < kJournalHeaderBytes) {
    const std::vector<std::byte> header = journal_header_bytes();
    const int err = write_fully(fd_, header.data(), header.size());
    if (err != 0) {
      ::close(fd_);
      fd_ = -1;
      throw JournalWriteError(strfmt("cannot write journal header %s: %s",
                                     path_.c_str(), ::strerror(err)));
    }
  }
}

JournalWriter::~JournalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

u64 JournalWriter::appended() const noexcept {
  std::lock_guard<std::mutex> lock(mu_);
  return appended_;
}

void JournalWriter::append(const JournalRecord& rec) {
  const std::vector<std::byte> frame = encode_journal_frame(rec);
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) throw JournalWriteError("journal is closed");

  if (faults_) {
    using JF = fault::DaemonFaultInjector::JournalFault;
    const JF f = faults_->next_journal_append();
    switch (f.kind) {
      case JF::Kind::kNone:
        break;
      case JF::Kind::kEintr:
        // A real EINTR is retried inside write_fully; the injected one just
        // exercises that the caller-visible behavior is "append succeeded".
        break;
      case JF::Kind::kTorn: {
        // Persist only a prefix of the frame, exactly what a crash mid-
        // append leaves behind, then report the append as failed.
        const std::size_t keep =
            std::min<std::size_t>(f.keep_bytes, frame.size());
        (void)write_fully(fd_, frame.data(), keep);
        throw JournalWriteError("injected torn journal append");
      }
      case JF::Kind::kError:
        throw JournalWriteError(
            f.persistent ? "injected journal write failure (ENOSPC, "
                           "persistent)"
                         : "injected journal write failure (ENOSPC)");
    }
  }

  obs::HostTimer timer;
  const int err = write_fully(fd_, frame.data(), frame.size());
  timer.observe(t_write_);
  if (err != 0) {
    throw JournalWriteError(strfmt("journal append failed: %s",
                                   ::strerror(err)));
  }
  // Write-ahead only means anything if the record is durable before the
  // action it journals; fdatasync (not fsync — the length change rides
  // with the data on ext4/xfs) is the cheapest call with that property.
  timer.restart();
  const int sync_rc = ::fdatasync(fd_);
  timer.observe(t_fsync_);
  if (sync_rc != 0 && errno != EINVAL && errno != EROFS) {
    // EINVAL: fd doesn't support sync (some tmpfs variants) — the write
    // itself succeeded and there is nothing more durable available.
    throw JournalWriteError(strfmt("journal fdatasync failed: %s",
                                   ::strerror(errno)));
  }
  ++appended_;
}

}  // namespace bgp::daemon
