#include "daemon/snapfile.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <stdexcept>

#include "common/crc.hpp"
#include "common/strfmt.hpp"
#include "fault/fault.hpp"

namespace bgp::daemon {

namespace {

// ---- fixed layout (all offsets u64-aligned so atomic_ref is legal) --------
//
// Header:
//   0   char     magic[8]
//   8   u32      version
//   12  u32      num_nodes
//   16  u64      node0_offset
//   24  u64      node_block_bytes
//   32  u64      metrics_offset
//   40  u64      metrics_capacity      (per-slot text bytes, 8-aligned)
//   48  char     app[kSnapNameBytes]
//   168 char     session[kSnapNameBytes]
//   288 = kHeaderBytes
//
// NodeBlock (per node):
//   +0   u64 seq           seqlock: odd while a publish is in flight
//   +8   u64 active_slot   0/1, index of the last published slot
//   +16  Slot[2]
// Slot:
//   +0   u64 published_cycle
//   +8   u64 mode
//   +16  u64 state
//   +24  u64 node_id
//   +32  u64 card_id
//   +40  u64 counters[kCountersPerUnit]
//   +40+8*256 u64 crc32    (of the preceding slot bytes)
//
// MetricsBlock:
//   +0   u64 seq
//   +8   u64 active_slot
//   +16  MSlot[2]
// MSlot:
//   +0   u64 len
//   +8   u64 crc32         (of text[0..len))
//   +16  char text[metrics_capacity]

constexpr std::size_t kHeaderBytes = 48 + 2 * kSnapNameBytes;
constexpr std::size_t kSlotWords = 5 + isa::kCountersPerUnit + 1;
constexpr std::size_t kSlotBytes = kSlotWords * sizeof(u64);
constexpr std::size_t kNodeBlockBytes = 16 + 2 * kSlotBytes;

constexpr std::size_t round8(std::size_t n) { return (n + 7) & ~std::size_t{7}; }

std::atomic_ref<u64> word_ref(const std::byte* p) {
  // atomic_ref wants a mutable lvalue even for loads; readers of a
  // PROT_READ mapping never store through it.
  return std::atomic_ref<u64>(
      *reinterpret_cast<u64*>(const_cast<std::byte*>(p)));
}

void store_words_relaxed(std::byte* dst, const u64* src, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    word_ref(dst + i * sizeof(u64)).store(src[i], std::memory_order_relaxed);
  }
}

void load_words_relaxed(u64* dst, const std::byte* src, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = word_ref(src + i * sizeof(u64)).load(std::memory_order_relaxed);
  }
}

struct Geometry {
  std::size_t node0_offset = kHeaderBytes;
  std::size_t node_block_bytes = kNodeBlockBytes;
  std::size_t metrics_offset = 0;
  std::size_t metrics_capacity = 0;
  std::size_t total = 0;
};

Geometry make_geometry(unsigned num_nodes, std::size_t metrics_capacity) {
  Geometry g;
  g.metrics_capacity = round8(metrics_capacity);
  g.metrics_offset = g.node0_offset + num_nodes * g.node_block_bytes;
  const std::size_t mslot = 16 + g.metrics_capacity;
  g.total = g.metrics_offset + 16 + 2 * mslot;
  return g;
}

void write_name(std::byte* dst, const std::string& name) {
  char buf[kSnapNameBytes] = {};
  std::memcpy(buf, name.data(), std::min(name.size(), kSnapNameBytes - 1));
  std::memcpy(dst, buf, kSnapNameBytes);
}

std::string read_name(const std::byte* src) {
  char buf[kSnapNameBytes];
  std::memcpy(buf, src, kSnapNameBytes);
  buf[kSnapNameBytes - 1] = '\0';
  return std::string(buf);
}

}  // namespace

const char* to_string(SnapReadStatus status) noexcept {
  switch (status) {
    case SnapReadStatus::kOk: return "ok";
    case SnapReadStatus::kBusy: return "busy";
    case SnapReadStatus::kCorrupt: return "corrupt";
  }
  return "unknown";
}

SnapshotWriter::SnapshotWriter(const std::filesystem::path& path,
                               const std::string& app,
                               const std::string& session, unsigned num_nodes,
                               std::size_t metrics_capacity,
                               fault::DaemonFaultInjector* faults)
    : path_(path),
      num_nodes_(num_nodes),
      metrics_capacity_(round8(metrics_capacity)),
      faults_(faults) {
  const Geometry g = make_geometry(num_nodes, metrics_capacity);
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw std::runtime_error(
        strfmt("cannot create snapshot file %s: %s", path.c_str(),
               std::strerror(errno)));
  }
  if (::ftruncate(fd, static_cast<off_t>(g.total)) != 0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error(strfmt("cannot size snapshot file %s: %s",
                                    path.c_str(), std::strerror(err)));
  }
  void* map = ::mmap(nullptr, g.total, PROT_READ | PROT_WRITE, MAP_SHARED,
                     fd, 0);
  ::close(fd);
  if (map == MAP_FAILED) {
    throw std::runtime_error(strfmt("cannot mmap snapshot file %s: %s",
                                    path.c_str(), std::strerror(errno)));
  }
  map_ = static_cast<std::byte*>(map);
  map_bytes_ = g.total;

  // Names and geometry first, magic last: a reader that mmaps a file whose
  // magic is present can trust the header fields.
  u32 version = kSnapVersion;
  u32 nodes32 = num_nodes;
  std::memcpy(map_ + 8, &version, sizeof(version));
  std::memcpy(map_ + 12, &nodes32, sizeof(nodes32));
  const u64 geom[4] = {g.node0_offset, g.node_block_bytes, g.metrics_offset,
                       g.metrics_capacity};
  std::memcpy(map_ + 16, geom, sizeof(geom));
  write_name(map_ + 48, app);
  write_name(map_ + 48 + kSnapNameBytes, session);
  std::atomic_thread_fence(std::memory_order_release);
  std::memcpy(map_, kSnapMagic, sizeof(kSnapMagic));

  // Seed every node with a readable kIdle slot: an attach racing session
  // startup must distinguish "not started yet" from corruption, and an
  // all-zero slot fails its CRC.
  const std::array<u64, isa::kCountersPerUnit> zeros{};
  for (unsigned node = 0; node < num_nodes_; ++node) {
    publish_node(node, node, 0, 0, SnapState::kIdle, 0, zeros);
  }
}

SnapshotWriter::~SnapshotWriter() {
  if (map_ != nullptr) ::munmap(map_, map_bytes_);
}

void SnapshotWriter::publish_node(
    unsigned node, u32 node_id, u32 card_id, u32 mode, SnapState state,
    cycles_t now, const std::array<u64, isa::kCountersPerUnit>& counters) {
  if (node >= num_nodes_) {
    throw std::out_of_range(strfmt("snapshot node %u out of range", node));
  }
  std::byte* block = map_ + kHeaderBytes + node * kNodeBlockBytes;
  auto seq = word_ref(block);
  auto active = word_ref(block + 8);

  u64 staged[kSlotWords];
  staged[0] = now;
  staged[1] = mode;
  staged[2] = static_cast<u64>(state);
  staged[3] = node_id;
  staged[4] = card_id;
  std::memcpy(&staged[5], counters.data(), sizeof(u64) * counters.size());
  staged[kSlotWords - 1] =
      crc32({reinterpret_cast<const std::byte*>(staged),
             (kSlotWords - 1) * sizeof(u64)});

  const u64 next = 1 - active.load(std::memory_order_relaxed);
  seq.fetch_add(1, std::memory_order_acq_rel);  // odd: publish in flight
  if (faults_ != nullptr && faults_->next_snapshot_publish_torn()) {
    // A crash mid-publish: half the slot lands, the seqlock stays odd.
    // Readers must classify this as writer-gone, never spin forever.
    store_words_relaxed(block + 16 + next * kSlotBytes, staged,
                        kSlotWords / 2);
    return;
  }
  store_words_relaxed(block + 16 + next * kSlotBytes, staged, kSlotWords);
  active.store(next, std::memory_order_release);
  seq.fetch_add(1, std::memory_order_release);  // even: stable again
}

void SnapshotWriter::publish_metrics(std::string_view text) {
  std::byte* block = map_ + map_bytes_ - (16 + 2 * (16 + metrics_capacity_));
  auto seq = word_ref(block);
  auto active = word_ref(block + 8);

  const std::size_t len = std::min(text.size(), metrics_capacity_);
  std::vector<u64> staged(2 + metrics_capacity_ / sizeof(u64), 0);
  staged[0] = len;
  staged[1] = crc32({reinterpret_cast<const std::byte*>(text.data()), len});
  std::memcpy(&staged[2], text.data(), len);

  const u64 next = 1 - active.load(std::memory_order_relaxed);
  seq.fetch_add(1, std::memory_order_acq_rel);
  store_words_relaxed(block + 16 + next * (16 + metrics_capacity_),
                      staged.data(), staged.size());
  active.store(next, std::memory_order_release);
  seq.fetch_add(1, std::memory_order_release);
}

SnapshotReader SnapshotReader::open_file(const std::filesystem::path& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    throw std::runtime_error(strfmt("cannot open snapshot file %s: %s",
                                    path.c_str(), std::strerror(errno)));
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    throw std::runtime_error(
        strfmt("cannot stat snapshot file %s", path.c_str()));
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  void* map = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
  ::close(fd);
  if (map == MAP_FAILED) {
    throw std::runtime_error(strfmt("cannot mmap snapshot file %s: %s",
                                    path.c_str(), std::strerror(errno)));
  }
  SnapshotReader r;
  r.owns_map_ = true;
  try {
    r.init(static_cast<const std::byte*>(map), size);
  } catch (...) {
    ::munmap(map, size);
    r.base_ = nullptr;
    throw;
  }
  return r;
}

SnapshotReader SnapshotReader::from_view(const std::byte* data,
                                         std::size_t size) {
  SnapshotReader r;
  r.init(data, size);
  return r;
}

SnapshotReader::SnapshotReader(SnapshotReader&& other) noexcept
    : base_(other.base_),
      bytes_(other.bytes_),
      owns_map_(other.owns_map_),
      num_nodes_(other.num_nodes_),
      metrics_capacity_(other.metrics_capacity_),
      app_(std::move(other.app_)),
      session_(std::move(other.session_)) {
  other.base_ = nullptr;
  other.owns_map_ = false;
}

SnapshotReader::~SnapshotReader() {
  if (owns_map_ && base_ != nullptr) {
    ::munmap(const_cast<std::byte*>(base_), bytes_);
  }
}

void SnapshotReader::init(const std::byte* data, std::size_t size) {
  if (size < kHeaderBytes ||
      std::memcmp(data, kSnapMagic, sizeof(kSnapMagic)) != 0) {
    throw std::runtime_error("not a BGPSNAP snapshot (bad magic)");
  }
  u32 version = 0;
  u32 nodes32 = 0;
  std::memcpy(&version, data + 8, sizeof(version));
  std::memcpy(&nodes32, data + 12, sizeof(nodes32));
  if (version != kSnapVersion) {
    throw std::runtime_error(
        strfmt("unsupported snapshot version %u", version));
  }
  u64 geom[4];
  std::memcpy(geom, data + 16, sizeof(geom));
  const Geometry expect = make_geometry(nodes32, geom[3]);
  if (geom[0] != expect.node0_offset ||
      geom[1] != expect.node_block_bytes ||
      geom[2] != expect.metrics_offset || size < expect.total) {
    throw std::runtime_error("corrupt snapshot header (bad geometry)");
  }
  base_ = data;
  bytes_ = size;
  num_nodes_ = nodes32;
  metrics_capacity_ = geom[3];
  app_ = read_name(data + 48);
  session_ = read_name(data + 48 + kSnapNameBytes);
}

bool SnapshotReader::read_node(unsigned node, NodeSnapshot& out,
                               unsigned max_retries) const {
  return read_node_status(node, out, max_retries) == SnapReadStatus::kOk;
}

SnapReadStatus SnapshotReader::read_node_status(unsigned node,
                                                NodeSnapshot& out,
                                                unsigned max_retries) const {
  if (node >= num_nodes_) return SnapReadStatus::kCorrupt;
  const std::byte* block = base_ + kHeaderBytes + node * kNodeBlockBytes;
  auto seq = word_ref(block);
  auto active = word_ref(block + 8);
  u64 staged[kSlotWords];
  for (unsigned attempt = 0; attempt <= max_retries; ++attempt) {
    const u64 s1 = seq.load(std::memory_order_acquire);
    if (s1 % 2 != 0) continue;  // publish in flight
    const u64 idx = active.load(std::memory_order_acquire) & 1;
    load_words_relaxed(staged, block + 16 + idx * kSlotBytes, kSlotWords);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (seq.load(std::memory_order_acquire) != s1) continue;  // torn, retry
    const u32 crc = crc32({reinterpret_cast<const std::byte*>(staged),
                           (kSlotWords - 1) * sizeof(u64)});
    if (staged[kSlotWords - 1] != crc) {
      // Stable sequence but bad checksum: foreign corruption, not a race.
      return SnapReadStatus::kCorrupt;
    }
    out.published_cycle = staged[0];
    out.mode = static_cast<u32>(staged[1]);
    out.state = static_cast<SnapState>(staged[2]);
    out.node_id = static_cast<u32>(staged[3]);
    out.card_id = static_cast<u32>(staged[4]);
    std::memcpy(out.counters.data(), &staged[5],
                sizeof(u64) * out.counters.size());
    return SnapReadStatus::kOk;
  }
  // The sequence never stabilized: either a live writer is publishing
  // faster than we can copy (transient) or the writer died mid-publish
  // and the lock is held forever (stale). The caller decides via retry.
  return SnapReadStatus::kBusy;
}

bool SnapshotReader::read_metrics(std::string& out,
                                  unsigned max_retries) const {
  const std::byte* block =
      base_ + bytes_ - (16 + 2 * (16 + metrics_capacity_));
  auto seq = word_ref(block);
  auto active = word_ref(block + 8);
  std::vector<u64> staged(2 + metrics_capacity_ / sizeof(u64));
  for (unsigned attempt = 0; attempt <= max_retries; ++attempt) {
    const u64 s1 = seq.load(std::memory_order_acquire);
    if (s1 % 2 != 0) continue;
    const u64 idx = active.load(std::memory_order_acquire) & 1;
    load_words_relaxed(staged.data(),
                       block + 16 + idx * (16 + metrics_capacity_),
                       staged.size());
    std::atomic_thread_fence(std::memory_order_acquire);
    if (seq.load(std::memory_order_acquire) != s1) continue;
    const u64 len = staged[0];
    if (len > metrics_capacity_) return false;
    out.assign(reinterpret_cast<const char*>(&staged[2]), len);
    const u32 crc =
        crc32({reinterpret_cast<const std::byte*>(out.data()), out.size()});
    if (s1 != 0 && staged[1] != crc) return false;
    return true;
  }
  return false;
}

}  // namespace bgp::daemon
