#include "daemon/publisher.hpp"

#include "obs/host_clock.hpp"
#include "obs/promtext.hpp"
#include "sys/node.hpp"

namespace bgp::daemon {

SnapshotPublisher::SnapshotPublisher(rt::Machine& machine,
                                     const std::filesystem::path& path,
                                     const std::string& app,
                                     const std::string& session,
                                     const PublisherConfig& config)
    : machine_(machine), config_(config) {
  const unsigned n = machine.partition().num_nodes();
  writer_ = std::make_unique<SnapshotWriter>(path, app, session, n,
                                             config.metrics_capacity,
                                             config.faults);
  next_due_.assign(n, config_.period_cycles);
  if (config_.period_cycles == 0) return;  // final-only snapshots
  for (unsigned node = 0; node < n; ++node) {
    machine.partition().node(node).add_pulse_hook(
        [this, node](cycles_t now) { return on_pulse(node, now); });
  }
}

cycles_t SnapshotPublisher::on_pulse(unsigned node, cycles_t now) {
  if (now < next_due_[node]) return 0;
  // Publish once per pulse no matter how many periods elapsed (a long
  // compute segment skips deadlines, exactly like the trace sampler's
  // catch-up), then re-arm at the next period boundary after `now`.
  publish_node_now(node, SnapState::kCounting, now);
  next_due_[node] = (now / config_.period_cycles + 1) * config_.period_cycles;
  publishes_.fetch_add(1, std::memory_order_relaxed);
  return config_.per_snapshot_overhead;
}

void SnapshotPublisher::publish_node_now(unsigned node, SnapState state,
                                         cycles_t now) {
  const obs::ScopedHostTimer host_cost(config_.host_publish_seconds);
  sys::Node& n = machine_.partition().node(node);
  const auto& upc = n.upc();
  const SnapState st =
      state == SnapState::kCounting && !upc.running() ? SnapState::kIdle
                                                      : state;
  writer_->publish_node(node, n.id(), n.card_id(), upc.mode(), st, now,
                        upc.snapshot());
  if (node == 0 && metrics_ != nullptr) {
    writer_->publish_metrics(obs::render_prometheus(*metrics_));
  }
}

void SnapshotPublisher::publish_final() {
  for (unsigned node = 0; node < machine_.partition().num_nodes(); ++node) {
    publish_node_now(node, SnapState::kFinal, machine_.node_time(node));
  }
  if (metrics_ != nullptr) {
    writer_->publish_metrics(obs::render_prometheus(*metrics_));
  }
}

}  // namespace bgp::daemon
