// Jittered exponential backoff shared by every daemon-facing retry loop
// (control clients, live attach). Deliberately tiny and dependency-free:
// a splitmix-style generator seeded explicitly, so tests that pin the seed
// get exact delay sequences while production callers derive a seed from
// the clock and decorrelate from each other.
#pragma once

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/types.hpp"

namespace bgp::daemon {

class Backoff {
 public:
  /// seed 0 derives one from the steady clock (decorrelated retriers).
  explicit Backoff(unsigned base_delay_ms, unsigned max_delay_ms,
                   u64 seed = 0)
      : base_ms_(std::max(base_delay_ms, 1u)),
        max_ms_(std::max(max_delay_ms, base_delay_ms)),
        state_(seed != 0 ? seed
                         : static_cast<u64>(std::chrono::steady_clock::now()
                                                .time_since_epoch()
                                                .count()) |
                               1) {}

  /// Delay before retry `attempt` (0-based): base * 2^attempt capped at
  /// max, then jittered uniformly into [50%, 150%].
  [[nodiscard]] unsigned delay_ms(unsigned attempt) {
    u64 exp = base_ms_;
    for (unsigned i = 0; i < attempt && exp < max_ms_; ++i) exp *= 2;
    exp = std::min<u64>(exp, max_ms_);
    // splitmix64 step for the jitter draw.
    state_ += 0x9E3779B97F4A7C15ull;
    u64 z = state_;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    z ^= z >> 31;
    const u64 half = std::max<u64>(exp / 2, 1);
    return static_cast<unsigned>(exp - half + (z % (2 * half + 1)));
  }

  void sleep(unsigned attempt) {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms(attempt)));
  }

 private:
  u64 base_ms_;
  u64 max_ms_;
  u64 state_;
};

}  // namespace bgp::daemon
