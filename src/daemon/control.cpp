#include "daemon/control.hpp"

#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <mutex>
#include <stdexcept>

#include "common/strfmt.hpp"
#include "daemon/backoff.hpp"
#include "daemon/hostobs.hpp"
#include "fault/fault.hpp"
#include "obs/host_clock.hpp"

namespace bgp::daemon {

namespace {

/// Apply SO_RCVTIMEO/SO_SNDTIMEO; 0 leaves the socket blocking forever.
void set_io_deadline(int fd, unsigned timeout_ms) {
  if (timeout_ms == 0) return;
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = static_cast<suseconds_t>((timeout_ms % 1000) * 1000);
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  (void)::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

int connect_unix(const std::filesystem::path& path) {
  const std::string p = path.string();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (p.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error(
        strfmt("socket path too long (%zu bytes): %s", p.size(), p.c_str()));
  }
  std::memcpy(addr.sun_path, p.c_str(), p.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error(strfmt("socket: %s", std::strerror(errno)));
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error(
        strfmt("cannot connect to %s: %s", p.c_str(), std::strerror(err)));
  }
  return fd;
}

void send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      throw std::runtime_error("control socket write timed out");
    }
    if (n <= 0) throw std::runtime_error("control socket write failed");
    off += static_cast<std::size_t>(n);
  }
}

/// Read up to the next '\n' (exclusive). False on EOF before any byte.
/// A receive deadline expiring mid-line throws (the peer stalled).
bool read_line(int fd, std::string& line) {
  line.clear();
  char c;
  for (;;) {
    const ssize_t n = ::recv(fd, &c, 1, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      throw std::runtime_error("control socket read timed out");
    }
    if (n <= 0) return !line.empty();
    if (c == '\n') return true;
    line.push_back(c);
    if (line.size() > 1 * MiB) {
      throw std::runtime_error("control request line too long");
    }
  }
}

}  // namespace

bool is_retryable_code(std::string_view code) noexcept {
  // Transient conditions: the same request may succeed once pressure
  // clears or an operator fixes the disk. Everything else (bad_request,
  // duplicate_session, not_found, over_quota_ranks — a spec bigger than
  // the machine never fits, draining — the daemon is going away) is final.
  return code == "journal_unwritable" || code == "over_quota_sessions" ||
         code == "over_quota_bytes";
}

json::Value control_error(const std::string& code, const std::string& detail) {
  json::Value err = json::Value::object();
  err.set("code", json::Value(code));
  err.set("detail", json::Value(detail));
  err.set("retryable", json::Value(is_retryable_code(code)));
  json::Value v = json::Value::object();
  v.set("ok", json::Value(false));
  v.set("error", std::move(err));
  return v;
}

json::Value control_ok() {
  json::Value v = json::Value::object();
  v.set("ok", json::Value(true));
  return v;
}

bool control_response_retryable(const json::Value& resp) {
  const json::Value* ok = resp.get("ok");
  if (!ok || ok->as_bool()) return false;
  const json::Value* err = resp.get("error");
  if (!err) return false;
  if (const json::Value* retryable = err->get("retryable")) {
    return retryable->as_bool();
  }
  const json::Value* code = err->get("code");
  return code != nullptr && is_retryable_code(code->as_string());
}

ControlServer::~ControlServer() { stop(); }

void ControlServer::start(const std::filesystem::path& socket_path,
                          ControlHandler handler) {
  handler_ = std::move(handler);
  path_ = socket_path;
  const std::string p = path_.string();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (p.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error(
        strfmt("socket path too long (%zu bytes): %s", p.size(), p.c_str()));
  }
  std::memcpy(addr.sun_path, p.c_str(), p.size() + 1);
  ::unlink(p.c_str());  // a stale socket from a dead daemon
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error(strfmt("socket: %s", std::strerror(errno)));
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, 16) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error(
        strfmt("cannot listen on %s: %s", p.c_str(), std::strerror(err)));
  }
  acceptor_ = std::thread([this] { accept_loop(); });
}

void ControlServer::stop() {
  if (listen_fd_ < 0) return;
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  std::vector<std::thread> conns;
  {
    std::lock_guard<std::mutex> lk(conn_mu_);
    conns.swap(conns_);
  }
  for (auto& t : conns) t.join();
  ::unlink(path_.string().c_str());
}

void ControlServer::accept_loop() {
  for (;;) {
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // shutdown() or a fatal error
    }
    std::lock_guard<std::mutex> lk(conn_mu_);
    conns_.emplace_back([this, client] {
      serve(client);
      ::close(client);
    });
  }
}

void ControlServer::serve(int client_fd) {
  set_io_deadline(client_fd, io_timeout_ms_);
  std::string line;
  for (;;) {
    try {
      if (!read_line(client_fd, line)) return;
    } catch (const std::exception&) {
      return;  // oversized line or stalled client: drop the connection
    }
    if (line.empty()) continue;

    // Host-timeline request tracing: mint a correlation ID, time the
    // three phases (the read above is excluded — that clock would mostly
    // measure the client thinking), emit one structured event.
    ControlContext ctx;
    if (host_ != nullptr) ctx.request_id = host_->next_request_id();
    obs::HostTimer timer;
    double parse_s = 0.0;
    double dispatch_s = 0.0;
    std::string cmd;
    json::Value resp;
    try {
      const json::Value req = json::Value::parse(line);
      parse_s = timer.observe(host_ != nullptr ? host_->control_parse
                                               : nullptr);
      timer.restart();
      if (const json::Value* c = req.is_object() ? req.get("cmd") : nullptr) {
        cmd = c->as_string();
      }
      resp = handler_(req, ctx);
    } catch (const json::JsonError& e) {
      resp = control_error("bad_request", e.what());
    } catch (const std::exception& e) {
      resp = control_error("internal", e.what());
    }
    dispatch_s = timer.observe(host_ != nullptr ? host_->control_dispatch
                                                : nullptr);
    if (faults_ != nullptr && faults_->next_control_response_reset()) {
      return;  // injected reset: the client sees EOF instead of an answer
    }
    const std::string wire = resp.dump() + "\n";
    bool sent = true;
    timer.restart();
    try {
      send_all(client_fd, wire);
    } catch (const std::exception&) {
      sent = false;
    }
    const double respond_s =
        timer.observe(host_ != nullptr ? host_->control_respond : nullptr);
    if (host_ != nullptr && host_->enabled(obs::EventLevel::kDebug)) {
      bool req_ok = false;
      try {
        const json::Value* ok = resp.get("ok");
        req_ok = ok != nullptr && ok->as_bool();
      } catch (const json::JsonError&) {
        // a handler returning a non-standard shape; report ok=false
      }
      obs::HostEvent ev("control_request");
      ev.str("req", ctx.request_id)
          .str("cmd", cmd)
          .boolean("ok", req_ok)
          .num("bytes_in", u64{line.size()})
          .num("bytes_out", u64{wire.size()})
          .num("parse_s", parse_s)
          .num("dispatch_s", dispatch_s)
          .num("respond_s", respond_s);
      if (!sent) ev.boolean("send_failed", true);
      host_->emit(obs::EventLevel::kDebug, ev);
    }
    if (!sent) return;
  }
}

json::Value control_request(const std::filesystem::path& socket_path,
                            const json::Value& request, unsigned timeout_ms) {
  const int fd = connect_unix(socket_path);
  set_io_deadline(fd, timeout_ms);
  json::Value resp;
  try {
    send_all(fd, request.dump() + "\n");
    std::string line;
    if (!read_line(fd, line)) {
      throw std::runtime_error("daemon closed the control connection");
    }
    resp = json::Value::parse(line);
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
  return resp;
}

json::Value control_request_retry(const std::filesystem::path& socket_path,
                                  const json::Value& request,
                                  const ControlRetry& retry) {
  const unsigned attempts = std::max(retry.attempts, 1u);
  Backoff backoff(retry.base_delay_ms, retry.max_delay_ms, retry.jitter_seed);
  std::string last_error;
  for (unsigned attempt = 0; attempt < attempts; ++attempt) {
    try {
      json::Value resp = control_request(socket_path, request,
                                         retry.timeout_ms);
      if (!control_response_retryable(resp)) return resp;
      const json::Value* err = resp.get("error");
      const json::Value* detail = err ? err->get("detail") : nullptr;
      last_error = strfmt("retryable response: %s",
                          detail ? detail->as_string().c_str() : "(no detail)");
      if (attempt + 1 == attempts) return resp;  // surface the real error
    } catch (const std::exception& e) {
      // Transport failure: the daemon may be restarting — retry.
      last_error = e.what();
    }
    if (attempt + 1 < attempts) backoff.sleep(attempt);
  }
  throw std::runtime_error(strfmt("control request failed after %u attempts: "
                                  "%s",
                                  attempts, last_error.c_str()));
}

}  // namespace bgp::daemon
