#include "daemon/control.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <mutex>
#include <stdexcept>

#include "common/strfmt.hpp"

namespace bgp::daemon {

namespace {

int connect_unix(const std::filesystem::path& path) {
  const std::string p = path.string();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (p.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error(
        strfmt("socket path too long (%zu bytes): %s", p.size(), p.c_str()));
  }
  std::memcpy(addr.sun_path, p.c_str(), p.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error(strfmt("socket: %s", std::strerror(errno)));
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error(
        strfmt("cannot connect to %s: %s", p.c_str(), std::strerror(err)));
  }
  return fd;
}

void send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) throw std::runtime_error("control socket write failed");
    off += static_cast<std::size_t>(n);
  }
}

/// Read up to the next '\n' (exclusive). False on EOF before any byte.
bool read_line(int fd, std::string& line) {
  line.clear();
  char c;
  for (;;) {
    const ssize_t n = ::recv(fd, &c, 1, 0);
    if (n <= 0) return !line.empty();
    if (c == '\n') return true;
    line.push_back(c);
    if (line.size() > 1 * MiB) {
      throw std::runtime_error("control request line too long");
    }
  }
}

}  // namespace

json::Value control_error(const std::string& code, const std::string& detail) {
  json::Value err = json::Value::object();
  err.set("code", json::Value(code));
  err.set("detail", json::Value(detail));
  json::Value v = json::Value::object();
  v.set("ok", json::Value(false));
  v.set("error", std::move(err));
  return v;
}

json::Value control_ok() {
  json::Value v = json::Value::object();
  v.set("ok", json::Value(true));
  return v;
}

ControlServer::~ControlServer() { stop(); }

void ControlServer::start(const std::filesystem::path& socket_path,
                          ControlHandler handler) {
  handler_ = std::move(handler);
  path_ = socket_path;
  const std::string p = path_.string();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (p.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error(
        strfmt("socket path too long (%zu bytes): %s", p.size(), p.c_str()));
  }
  std::memcpy(addr.sun_path, p.c_str(), p.size() + 1);
  ::unlink(p.c_str());  // a stale socket from a dead daemon
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error(strfmt("socket: %s", std::strerror(errno)));
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, 16) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error(
        strfmt("cannot listen on %s: %s", p.c_str(), std::strerror(err)));
  }
  acceptor_ = std::thread([this] { accept_loop(); });
}

void ControlServer::stop() {
  if (listen_fd_ < 0) return;
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  std::vector<std::thread> conns;
  {
    std::lock_guard<std::mutex> lk(conn_mu_);
    conns.swap(conns_);
  }
  for (auto& t : conns) t.join();
  ::unlink(path_.string().c_str());
}

void ControlServer::accept_loop() {
  for (;;) {
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // shutdown() or a fatal error
    }
    std::lock_guard<std::mutex> lk(conn_mu_);
    conns_.emplace_back([this, client] {
      serve(client);
      ::close(client);
    });
  }
}

void ControlServer::serve(int client_fd) {
  std::string line;
  for (;;) {
    try {
      if (!read_line(client_fd, line)) return;
    } catch (const std::exception&) {
      return;  // oversized line: drop the connection
    }
    if (line.empty()) continue;
    json::Value resp;
    try {
      const json::Value req = json::Value::parse(line);
      resp = handler_(req);
    } catch (const json::JsonError& e) {
      resp = control_error("bad_request", e.what());
    } catch (const std::exception& e) {
      resp = control_error("internal", e.what());
    }
    try {
      send_all(client_fd, resp.dump() + "\n");
    } catch (const std::exception&) {
      return;
    }
  }
}

json::Value control_request(const std::filesystem::path& socket_path,
                            const json::Value& request) {
  const int fd = connect_unix(socket_path);
  json::Value resp;
  try {
    send_all(fd, request.dump() + "\n");
    std::string line;
    if (!read_line(fd, line)) {
      throw std::runtime_error("daemon closed the control connection");
    }
    resp = json::Value::parse(line);
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
  return resp;
}

}  // namespace bgp::daemon
