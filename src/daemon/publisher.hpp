// Snapshot publisher: periodically copies each node's UPC counters (and
// optionally a metrics registry's Prometheus exposition) into the session's
// snapshot file. Pacing runs on the *simulated* timeline through the node
// pulse-hook mechanism — the same instrumentation points the trace sampler
// uses — so each publication bills a modeled overhead to the pulsing core
// and the run stays deterministic: two runs with the same options publish
// at the same cycles and dump identical bytes.
//
// Thread safety: a node's pulse hook only ever runs on the thread currently
// executing that node (both dispatchers guarantee node exclusivity), so
// per-node publisher state needs no locks and reading the node's plain
// counter array is race-free. Cross-thread publication into the mmap goes
// through SnapshotWriter's seqlocked slots.
#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "daemon/snapfile.hpp"
#include "runtime/machine.hpp"

namespace bgp::obs {
class Histogram;
class MetricsRegistry;
}

namespace bgp::daemon {

struct PublisherConfig {
  /// Publication period in simulated cycles (0 = no periodic publishing;
  /// publish_final still writes the end-of-run snapshot). 500 us of
  /// simulated time by default — frequent enough for live attach, ~200
  /// snapshots over a class-A CG run.
  cycles_t period_cycles = 425'000;
  /// Modeled cost billed to the pulsing core per publication (same budget
  /// family as trace sampling's 64-cycle snapshots; the seqlocked
  /// double-buffer write is cheaper than the tracer's ring push + drain).
  cycles_t per_snapshot_overhead = 48;
  /// Capacity of the metrics-text slots in the snapshot file.
  std::size_t metrics_capacity = kSnapMetricsCapacity;
  /// Optional daemon fault injector (torn-publish crash simulation);
  /// forwarded to the SnapshotWriter. Not owned.
  fault::DaemonFaultInjector* faults = nullptr;
  /// Optional host-latency histogram: the real (steady-clock) seconds one
  /// seqlocked publication takes. Purely host-side — the simulated cost
  /// stays per_snapshot_overhead and the timeline is unchanged. Not owned.
  obs::Histogram* host_publish_seconds = nullptr;
};

class SnapshotPublisher {
 public:
  /// Creates the snapshot file and installs a pulse hook on every node of
  /// `machine`'s partition. The publisher must outlive the machine's run.
  SnapshotPublisher(rt::Machine& machine, const std::filesystem::path& path,
                    const std::string& app, const std::string& session,
                    const PublisherConfig& config = {});

  /// Attach a metrics registry whose Prometheus exposition is published
  /// alongside node 0's counters (and at publish_final). Not owned; call
  /// before the run starts.
  void set_metrics_source(const obs::MetricsRegistry* reg) noexcept {
    metrics_ = reg;
  }

  /// Publish every node's final counter state (state = kFinal). Call after
  /// Machine::run() returned or threw; bills nothing (the run is over).
  void publish_final();

  [[nodiscard]] const SnapshotWriter& writer() const noexcept {
    return *writer_;
  }
  /// Total periodic publications so far (all nodes).
  [[nodiscard]] u64 publishes() const noexcept {
    return publishes_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const PublisherConfig& config() const noexcept {
    return config_;
  }

 private:
  cycles_t on_pulse(unsigned node, cycles_t now);
  void publish_node_now(unsigned node, SnapState state, cycles_t now);

  rt::Machine& machine_;
  PublisherConfig config_;
  std::unique_ptr<SnapshotWriter> writer_;
  const obs::MetricsRegistry* metrics_ = nullptr;
  /// Next publication deadline per node; only the node's executing thread
  /// touches its entry.
  std::vector<cycles_t> next_due_;
  std::atomic<u64> publishes_{0};
};

}  // namespace bgp::daemon
