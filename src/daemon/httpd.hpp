// Tiny HTTP/1.0 server for the daemon's observability surface (/metrics,
// /sessions, /healthz): a listening TCP socket on loopback and a small
// pool of blocking-accept threads, each serving one GET request per
// connection. No keep-alive, no TLS, no external dependencies — scrape
// targets (curl, Prometheus) speak this subset happily.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

namespace bgp::daemon {

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Handler for one route; `path` is the request path without query string.
using HttpHandler = std::function<HttpResponse(const std::string& path)>;

/// Called once per served request with the routed path (empty for a
/// malformed request line), the response status, and the host seconds
/// from request-head received to response handed to the kernel.
using HttpObserver =
    std::function<void(const std::string& path, int status, double seconds)>;

class HttpServer {
 public:
  HttpServer() = default;
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Register a handler for an exact path. Must precede start().
  void route(std::string path, HttpHandler handler);

  /// Bind 127.0.0.1:`port` (0 = ephemeral), listen, and spawn `threads`
  /// accept workers. Returns the bound port. Throws on bind failure.
  unsigned short start(unsigned short port, unsigned threads = 2);

  /// Stop accepting, join the workers. Idempotent.
  void stop();

  /// Per-connection read/write deadline (before start()). A slow or
  /// half-open client is dropped when it expires, so one bad scraper
  /// can't wedge an accept worker. 0 disables (not recommended).
  void set_io_timeout_ms(unsigned ms) noexcept { io_timeout_ms_ = ms; }

  /// Install a per-request latency observer (before start()).
  void set_observer(HttpObserver observer) { observer_ = std::move(observer); }

  [[nodiscard]] unsigned short port() const noexcept { return port_; }

 private:
  void accept_loop();
  void serve(int client_fd);

  std::map<std::string, HttpHandler> routes_;
  HttpObserver observer_;
  std::vector<std::thread> workers_;
  int listen_fd_ = -1;
  unsigned io_timeout_ms_ = 5'000;
  unsigned short port_ = 0;
};

}  // namespace bgp::daemon
