#include "daemon/jobspec.hpp"

#include <cctype>

#include "common/strfmt.hpp"
#include "trace/tracer.hpp"

namespace bgp::daemon {

namespace {

unsigned get_unsigned(const json::Value& v, const char* key) {
  const u64 n = v.as_u64();
  if (n > ~0u) {
    throw json::JsonError(strfmt("'%s' is out of range", key));
  }
  return static_cast<unsigned>(n);
}

/// The wire token parse_mode() accepts (sys::to_string's display form,
/// "SMP/1", is not parseable).
const char* mode_token(sys::OpMode m) {
  switch (m) {
    case sys::OpMode::kSmp1: return "smp1";
    case sys::OpMode::kSmp4: return "smp4";
    case sys::OpMode::kDual: return "dual";
    case sys::OpMode::kVnm: return "vnm";
  }
  return "?";
}

}  // namespace

JobSpec JobSpec::from_json(const json::Value& v) {
  if (!v.is_object()) {
    throw json::JsonError("job spec must be a JSON object");
  }
  JobSpec spec;
  for (const auto& [key, val] : v.members()) {
    try {
      if (key == "session") {
        spec.session = val.as_string();
        if (!valid_session_name(spec.session)) {
          throw json::JsonError(
              "session names are [A-Za-z0-9._-], no leading dot, <= 64 "
              "chars");
        }
      } else if (key == "bench") {
        spec.bench = nas::parse_benchmark(val.as_string());
      } else if (key == "class") {
        spec.cls = nas::parse_class(val.as_string());
      } else if (key == "nodes") {
        spec.nodes = get_unsigned(val, key.c_str());
        if (spec.nodes == 0) throw json::JsonError("'nodes' must be positive");
      } else if (key == "mode") {
        spec.mode = sys::parse_mode(val.as_string());
      } else if (key == "ranks") {
        spec.ranks = get_unsigned(val, key.c_str());
      } else if (key == "sched") {
        const std::string& s = val.as_string();
        if (s == "serial") {
          spec.sched = rt::SchedMode::kSerial;
        } else if (s == "parallel") {
          spec.sched = rt::SchedMode::kParallel;
        } else {
          throw json::JsonError("'sched' must be \"serial\" or \"parallel\"");
        }
      } else if (key == "jobs") {
        spec.jobs = get_unsigned(val, key.c_str());
      } else if (key == "deaths") {
        spec.deaths = get_unsigned(val, key.c_str());
      } else if (key == "fault_seed") {
        spec.fault_seed = val.as_u64();
      } else if (key == "ft") {
        spec.ftp.enabled = val.as_bool();
      } else if (key == "ft_detect_latency") {
        spec.ftp.detect_latency = val.as_u64();
      } else if (key == "trace") {
        spec.trace = val.as_bool();
      } else if (key == "interval_cycles") {
        spec.interval_cycles = val.as_u64();
        if (spec.interval_cycles == 0) {
          throw json::JsonError("'interval_cycles' must be positive");
        }
      } else if (key == "preset") {
        spec.preset = val.as_string();
        (void)trace::preset_trace_events(spec.preset, 0);
      } else if (key == "obs") {
        spec.obs = val.as_bool();
      } else if (key == "snapshot_period_cycles") {
        spec.snapshot_period_cycles = val.as_u64();
      } else {
        throw json::JsonError(strfmt("unknown key '%s'", key.c_str()));
      }
    } catch (const json::JsonError&) {
      throw;
    } catch (const std::exception& e) {
      // Normalize parse_benchmark/parse_mode/... failures into the
      // structured bad_request path with the key named.
      throw json::JsonError(strfmt("'%s': %s", key.c_str(), e.what()));
    }
  }
  if (spec.ranks != 0 &&
      spec.ranks > spec.nodes * sys::processes_per_node(spec.mode)) {
    throw json::JsonError(
        strfmt("'ranks' %u exceeds the partition capacity %u", spec.ranks,
               spec.nodes * sys::processes_per_node(spec.mode)));
  }
  return spec;
}

json::Value JobSpec::to_json() const {
  json::Value v = json::Value::object();
  if (!session.empty()) v.set("session", json::Value(session));
  v.set("bench", json::Value(std::string(nas::name(bench))));
  v.set("class", json::Value(std::string(nas::name(cls))));
  v.set("nodes", json::Value(u64{nodes}));
  v.set("mode", json::Value(mode_token(mode)));
  if (ranks != 0) v.set("ranks", json::Value(u64{ranks}));
  v.set("sched", json::Value(sched == rt::SchedMode::kParallel
                                 ? std::string("parallel")
                                 : std::string("serial")));
  if (jobs != 0) v.set("jobs", json::Value(u64{jobs}));
  if (deaths != 0) {
    v.set("deaths", json::Value(u64{deaths}));
    v.set("fault_seed", json::Value(fault_seed));
  }
  if (ftp.enabled) {
    v.set("ft", json::Value(true));
    v.set("ft_detect_latency", json::Value(ftp.detect_latency));
  }
  if (trace) {
    v.set("trace", json::Value(true));
    v.set("interval_cycles", json::Value(interval_cycles));
    v.set("preset", json::Value(preset));
  }
  if (obs) v.set("obs", json::Value(true));
  if (snapshot_period_cycles.has_value()) {
    v.set("snapshot_period_cycles", json::Value(*snapshot_period_cycles));
  }
  return v;
}

u64 estimate_resident_bytes(const JobSpec& spec) {
  // Per node: the modeled L3 array dominates (8 MiB default) plus DDR/
  // snoop/core structures; round to 10 MiB. Per rank: a fiber or thread
  // stack plus mailbox slack; 1 MiB covers the default fiber stack. The
  // snapshot mapping adds two full counter slots per node plus the
  // metrics text (~4.2 KiB + 128 KiB).
  const u64 per_node = 10 * MiB;
  const u64 per_rank = 1 * MiB;
  const u64 snapshot = u64{spec.nodes} * 4352 + 160 * 1024;
  return u64{spec.nodes} * per_node + u64{spec.effective_ranks()} * per_rank +
         snapshot;
}

bool valid_session_name(const std::string& name) {
  if (name.empty() || name.size() > 64 || name.front() == '.') return false;
  for (const char c : name) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '.' ||
          c == '_' || c == '-')) {
      return false;
    }
  }
  return true;
}

}  // namespace bgp::daemon
