#include "daemon/attach.hpp"

#include <stdexcept>

#include "common/strfmt.hpp"
#include "daemon/backoff.hpp"

namespace bgp::daemon {

AttachView attach_read(const SnapshotReader& reader) {
  AttachView view;
  view.app = reader.app();
  view.session = reader.session();
  for (unsigned node = 0; node < reader.num_nodes(); ++node) {
    NodeSnapshot snap;
    switch (reader.read_node_status(node, snap)) {
      case SnapReadStatus::kOk:
        view.nodes.push_back(snap);
        if (snap.state != SnapState::kFinal) view.final_only = false;
        break;
      case SnapReadStatus::kBusy:
        view.unreadable.push_back(node);
        view.busy.push_back(node);
        break;
      case SnapReadStatus::kCorrupt:
        view.unreadable.push_back(node);
        view.corrupt.push_back(node);
        break;
    }
  }
  (void)reader.read_metrics(view.metrics_text);
  return view;
}

AttachView attach_file(const std::filesystem::path& path) {
  const SnapshotReader reader = SnapshotReader::open_file(path);
  return attach_read(reader);
}

AttachView attach_file_retry(const std::filesystem::path& path,
                             const AttachRetry& retry) {
  const unsigned attempts = std::max(retry.attempts, 1u);
  Backoff backoff(retry.base_delay_ms, retry.max_delay_ms, retry.jitter_seed);
  AttachView view;
  for (unsigned attempt = 0; attempt < attempts; ++attempt) {
    // Re-open each attempt: the writer may have grown/replaced the file.
    const SnapshotReader reader = SnapshotReader::open_file(path);
    view = attach_read(reader);
    if (view.busy.empty()) return view;
    if (attempt + 1 < attempts) backoff.sleep(attempt);
  }
  throw std::runtime_error(strfmt(
      "node %u of %s is seqlock-busy after %u attach attempts — the "
      "writer is gone or the snapshot is stale (daemon crashed "
      "mid-publish?); a fresh run must recreate the file",
      view.busy.front(), path.c_str(), attempts));
}

pc::NodeDump to_node_dump(const NodeSnapshot& snap, const std::string& app) {
  pc::NodeDump dump;
  dump.node_id = snap.node_id;
  dump.card_id = snap.card_id;
  dump.counter_mode = snap.mode;
  dump.app_name = app;
  pc::SetDump set;
  set.set_id = 0;
  // BGP_Initialize clears the counters and BGP_Start follows immediately,
  // so the raw counter words ARE the set-0 deltas of one pair spanning
  // boot to the publish cycle. An idle node has no pair yet.
  set.pairs = snap.state == SnapState::kIdle ? 0 : 1;
  set.first_start_cycle = 0;
  set.last_stop_cycle = snap.published_cycle;
  set.deltas = snap.counters;
  dump.sets.push_back(set);
  return dump;
}

std::vector<pc::NodeDump> to_node_dumps(const AttachView& view) {
  std::vector<pc::NodeDump> dumps;
  dumps.reserve(view.nodes.size());
  for (const NodeSnapshot& snap : view.nodes) {
    dumps.push_back(to_node_dump(snap, view.app));
  }
  return dumps;
}

}  // namespace bgp::daemon
