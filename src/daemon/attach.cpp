#include "daemon/attach.hpp"

namespace bgp::daemon {

AttachView attach_read(const SnapshotReader& reader) {
  AttachView view;
  view.app = reader.app();
  view.session = reader.session();
  for (unsigned node = 0; node < reader.num_nodes(); ++node) {
    NodeSnapshot snap;
    if (!reader.read_node(node, snap)) {
      view.unreadable.push_back(node);
      continue;
    }
    view.nodes.push_back(snap);
    if (snap.state != SnapState::kFinal) view.final_only = false;
  }
  (void)reader.read_metrics(view.metrics_text);
  return view;
}

AttachView attach_file(const std::filesystem::path& path) {
  const SnapshotReader reader = SnapshotReader::open_file(path);
  return attach_read(reader);
}

pc::NodeDump to_node_dump(const NodeSnapshot& snap, const std::string& app) {
  pc::NodeDump dump;
  dump.node_id = snap.node_id;
  dump.card_id = snap.card_id;
  dump.counter_mode = snap.mode;
  dump.app_name = app;
  pc::SetDump set;
  set.set_id = 0;
  // BGP_Initialize clears the counters and BGP_Start follows immediately,
  // so the raw counter words ARE the set-0 deltas of one pair spanning
  // boot to the publish cycle. An idle node has no pair yet.
  set.pairs = snap.state == SnapState::kIdle ? 0 : 1;
  set.first_start_cycle = 0;
  set.last_stop_cycle = snap.published_cycle;
  set.deltas = snap.counters;
  dump.sets.push_back(set);
  return dump;
}

std::vector<pc::NodeDump> to_node_dumps(const AttachView& view) {
  std::vector<pc::NodeDump> dumps;
  dumps.reserve(view.nodes.size());
  for (const NodeSnapshot& snap : view.nodes) {
    dumps.push_back(to_node_dump(snap, view.app));
  }
  return dumps;
}

}  // namespace bgp::daemon
