#include "daemon/hostobs.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <utility>

#include "common/strfmt.hpp"

namespace bgp::daemon {

namespace {

/// The scrape paths whose latency series are pre-registered (lazy
/// registration under the exposition lock works, but a fixed set keeps
/// the family's label cardinality bounded and its order deterministic).
constexpr const char* kHttpPaths[] = {"/metrics", "/sessions", "/healthz",
                                      "/debug/events"};

constexpr const char* kLevelNames[] = {"debug", "info", "warn", "error"};

}  // namespace

HostObs::HostObs(obs::MetricsRegistry& reg, std::filesystem::path work_dir,
                 HostObsConfig cfg)
    : cfg_(std::move(cfg)),
      flight_dump_path_(work_dir / "flight.jsonl"),
      log_(obs::HostLogConfig{
          .path = work_dir / "events.jsonl",
          .file_level = cfg_.file_level,
          .stderr_level = cfg_.stderr_level,
          .rotate_bytes = cfg_.log_rotate_bytes,
          .rotate_keep = cfg_.log_rotate_keep,
      }),
      start_ns_(obs::host_now_ns()) {
  const std::vector<double> bounds = obs::host_latency_bounds();
  const auto phase_hist = [&](const char* phase) {
    return &reg.histogram(
        "bgpcd_control_request_seconds",
        "Host latency of control requests, by processing phase", bounds,
        {{"phase", phase}});
  };
  control_parse = phase_hist("parse");
  control_dispatch = phase_hist("dispatch");
  control_respond = phase_hist("respond");
  journal_write = &reg.histogram(
      "bgpcd_journal_append_seconds",
      "Host latency of journal appends, split into the frame write and "
      "the fdatasync that makes it durable",
      bounds, {{"phase", "write"}});
  journal_fsync = &reg.histogram(
      "bgpcd_journal_append_seconds",
      "Host latency of journal appends, split into the frame write and "
      "the fdatasync that makes it durable",
      bounds, {{"phase", "fsync"}});
  snapshot_publish = &reg.histogram(
      "bgpcd_snapshot_publish_seconds",
      "Host cost of one seqlocked snapshot publication (simulated cost "
      "is billed separately on the simulated timeline)",
      bounds);
  queue_wait = &reg.histogram(
      "bgpcd_session_queue_wait_seconds",
      "Host time between a session's admission and its thread starting",
      bounds);
  for (const char* path : kHttpPaths) {
    http_by_path_[path] = &reg.histogram(
        "bgpcd_http_request_seconds",
        "Host latency of HTTP observability requests, by path", bounds,
        {{"path", path}});
  }
  http_other_ = &reg.histogram(
      "bgpcd_http_request_seconds",
      "Host latency of HTTP observability requests, by path", bounds,
      {{"path", "other"}});
  for (std::size_t i = 0; i < 4; ++i) {
    events_by_level_[i] =
        &reg.counter("bgpcd_host_events_total",
                     "Structured host events emitted, by level",
                     {{"level", kLevelNames[i]}});
  }
  reg.gauge("bgpcd_build_info",
            "Build metadata; the value is always 1",
            {{"version", cfg_.version.empty() ? "unknown" : cfg_.version},
             {"compiler", __VERSION__}})
      .set(1.0);
  uptime_ = &reg.gauge("bgpcd_uptime_seconds",
                       "Host seconds since this daemon process started");

  // The flight ring: crash evidence first, then a fresh ring for us. A
  // ring that cannot be mapped (odd filesystem) degrades to log-only.
  try {
    ring_ = std::make_unique<obs::FlightRing>(obs::FlightRingConfig{
        .path = work_dir / "flight.ring",
        .slot_bytes = cfg_.ring_slot_bytes,
        .num_slots = cfg_.ring_slots,
    });
  } catch (const std::exception& e) {
    emit(obs::EventLevel::kWarn, obs::HostEvent("flight_ring_unavailable")
                                     .str("error", e.what()));
  }
  if (ring_ != nullptr && ring_->recovered_dirty()) {
    // The predecessor died without closing the ring: its event tail is
    // the crash narrative. Append (not truncate) to flight.jsonl so
    // repeated crash/restart cycles accumulate their evidence.
    salvaged_events_ = ring_->salvaged().size();
    const int fd = ::open(flight_dump_path_.c_str(),
                          O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC, 0644);
    if (fd >= 0) {
      for (const std::string& line : ring_->salvaged()) {
        std::string framed = line + "\n";
        ssize_t n;
        do {
          n = ::write(fd, framed.data(), framed.size());
        } while (n < 0 && errno == EINTR);
      }
      ::close(fd);
    }
    emit(obs::EventLevel::kInfo,
         obs::HostEvent("flight_ring_salvaged")
             .num("events", u64{salvaged_events_})
             .str("dump", flight_dump_path_.string()));
  }
}

obs::Histogram* HostObs::http_request(const std::string& path) {
  const auto it = http_by_path_.find(path);
  return it != http_by_path_.end() ? it->second : http_other_;
}

std::string HostObs::next_request_id() {
  return strfmt("r%06llu",
                static_cast<unsigned long long>(
                    req_seq_.fetch_add(1, std::memory_order_relaxed) + 1));
}

bool HostObs::enabled(obs::EventLevel level) const noexcept {
  return ring_ != nullptr || log_.enabled(level);
}

void HostObs::emit(obs::EventLevel level, const obs::HostEvent& ev) {
  const std::string line = ev.render(level, obs::host_wall_ns());
  if (ring_ != nullptr) ring_->append(line);
  log_.write_line(level, line);
  events_by_level_[static_cast<std::size_t>(level)]->add();
}

std::vector<std::string> HostObs::recent_events() const {
  if (ring_ == nullptr) return {};
  return ring_->records();
}

void HostObs::update_uptime() {
  uptime_->set(static_cast<double>(obs::host_now_ns() - start_ns_) /
               obs::kNsPerSecond);
}

}  // namespace bgp::daemon
