// The daemon's control channel: newline-delimited JSON over a Unix domain
// socket. Each connection carries a sequence of request objects (one per
// line); the daemon answers each with one response line. Success is
// {"ok":true,...}; failures are structured, {"ok":false,"error":{"code":
// "...","detail":"..."}} — machine-checkable codes, human detail.
#pragma once

#include <filesystem>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "daemon/json.hpp"

namespace bgp::daemon {

/// Handles one decoded request; returns the response value. Thrown
/// json::JsonError becomes a `bad_request` response, other exceptions an
/// `internal` one.
using ControlHandler = std::function<json::Value(const json::Value& request)>;

/// Build the standard failure response shape.
[[nodiscard]] json::Value control_error(const std::string& code,
                                        const std::string& detail);
/// Build an {"ok":true} response to extend.
[[nodiscard]] json::Value control_ok();

class ControlServer {
 public:
  ControlServer() = default;
  ~ControlServer();
  ControlServer(const ControlServer&) = delete;
  ControlServer& operator=(const ControlServer&) = delete;

  /// Bind and listen on `socket_path` (unlinking a stale socket first),
  /// then serve connections on background threads. Throws on bind failure.
  void start(const std::filesystem::path& socket_path, ControlHandler handler);

  /// Stop accepting, join every connection thread, unlink the socket.
  void stop();

  [[nodiscard]] const std::filesystem::path& socket_path() const noexcept {
    return path_;
  }

 private:
  void accept_loop();
  void serve(int client_fd);

  ControlHandler handler_;
  std::filesystem::path path_;
  int listen_fd_ = -1;
  std::thread acceptor_;
  std::mutex conn_mu_;  ///< guards conns_
  std::vector<std::thread> conns_;
};

/// Client side: connect to `socket_path`, send one request line, read one
/// response line. Throws std::runtime_error on connect/IO failure and
/// json::JsonError on an unparseable response.
[[nodiscard]] json::Value control_request(
    const std::filesystem::path& socket_path, const json::Value& request);

}  // namespace bgp::daemon
