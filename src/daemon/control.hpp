// The daemon's control channel: newline-delimited JSON over a Unix domain
// socket. Each connection carries a sequence of request objects (one per
// line); the daemon answers each with one response line. Success is
// {"ok":true,...}; failures are structured, {"ok":false,"error":{"code":
// "...","detail":"..."}} — machine-checkable codes, human detail.
#pragma once

#include <filesystem>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "daemon/json.hpp"

namespace bgp::fault {
class DaemonFaultInjector;
}

namespace bgp::daemon {

class HostObs;

/// Per-request context handed to the handler: the correlation ID the
/// server minted for this request (threaded into journal records and host
/// events so one grep reconstructs the whole request path).
struct ControlContext {
  std::string request_id;
};

/// Handles one decoded request; returns the response value. Thrown
/// json::JsonError becomes a `bad_request` response, other exceptions an
/// `internal` one.
using ControlHandler =
    std::function<json::Value(const json::Value& request,
                              const ControlContext& ctx)>;

/// Whether a structured error code names a transient condition a client
/// should retry with backoff (quota pressure, degraded daemon) as opposed
/// to one that will never succeed verbatim (bad request, duplicate name).
[[nodiscard]] bool is_retryable_code(std::string_view code) noexcept;

/// Build the standard failure response shape:
/// {"ok":false,"error":{"code","detail","retryable"}}.
[[nodiscard]] json::Value control_error(const std::string& code,
                                        const std::string& detail);
/// Build an {"ok":true} response to extend.
[[nodiscard]] json::Value control_ok();

/// True iff `resp` is an {"ok":false} response flagged retryable.
[[nodiscard]] bool control_response_retryable(const json::Value& resp);

class ControlServer {
 public:
  ControlServer() = default;
  ~ControlServer();
  ControlServer(const ControlServer&) = delete;
  ControlServer& operator=(const ControlServer&) = delete;

  /// Bind and listen on `socket_path` (unlinking a stale socket first),
  /// then serve connections on background threads. Throws on bind failure.
  void start(const std::filesystem::path& socket_path, ControlHandler handler);

  /// Stop accepting, join every connection thread, unlink the socket.
  void stop();

  /// Per-connection read/write deadline (before start()); a client that
  /// stalls longer than this mid-request is dropped. 0 disables.
  void set_io_timeout_ms(unsigned ms) noexcept { io_timeout_ms_ = ms; }

  /// Inject socket resets (before start()): when the injector schedules
  /// one, the response is dropped and the connection closed instead.
  void set_fault_injector(fault::DaemonFaultInjector* faults) noexcept {
    faults_ = faults;
  }

  /// Attach host observability (before start()): request IDs come from
  /// its counter, parse/dispatch/respond latencies land in its
  /// histograms, and one control_request event is emitted per request.
  void set_host_obs(HostObs* host) noexcept { host_ = host; }

  [[nodiscard]] const std::filesystem::path& socket_path() const noexcept {
    return path_;
  }

 private:
  void accept_loop();
  void serve(int client_fd);

  ControlHandler handler_;
  std::filesystem::path path_;
  int listen_fd_ = -1;
  unsigned io_timeout_ms_ = 30'000;
  fault::DaemonFaultInjector* faults_ = nullptr;
  HostObs* host_ = nullptr;
  std::thread acceptor_;
  std::mutex conn_mu_;  ///< guards conns_
  std::vector<std::thread> conns_;
};

/// Client side: connect to `socket_path`, send one request line, read one
/// response line, with a per-request I/O deadline (0 = block forever).
/// Throws std::runtime_error on connect/IO failure or timeout and
/// json::JsonError on an unparseable response.
[[nodiscard]] json::Value control_request(
    const std::filesystem::path& socket_path, const json::Value& request,
    unsigned timeout_ms = 10'000);

/// Retry policy for control_request_retry.
struct ControlRetry {
  unsigned attempts = 5;
  unsigned base_delay_ms = 25;
  unsigned max_delay_ms = 1'000;
  unsigned timeout_ms = 10'000;  ///< per-attempt I/O deadline
  u64 jitter_seed = 0;           ///< 0 = derive (decorrelated clients)
};

/// control_request with jittered exponential backoff. Retries transport
/// failures (connect refused/reset, timeout, EOF — the daemon may be
/// restarting) and structured responses flagged retryable; returns fatal
/// {"ok":false} responses to the caller immediately (retrying a
/// bad_request can never help). Throws std::runtime_error when every
/// attempt failed at the transport layer.
[[nodiscard]] json::Value control_request_retry(
    const std::filesystem::path& socket_path, const json::Value& request,
    const ControlRetry& retry = {});

}  // namespace bgp::daemon
