// The per-session snapshot file: an mmap-able view of a running session's
// UPC counters and metrics registry, modeled on Open MPI's SPC mmap design
// (mpi_spc_mmap_enabled / orte_spc_snapshot_period). Layout:
//
//   Header      magic, version, geometry, app/session names
//   NodeBlock[] one per node: seqlock word + two slots, each holding the
//               publish cycle, counter mode, lifecycle state and the full
//               256-counter snapshot, CRC-protected
//   MetricsBlock seqlock word + two slots of Prometheus exposition text
//
// Writers double-buffer: stage a slot locally, copy it into the inactive
// slot, then bump the seqlock (odd while switching, even when stable) and
// flip the active-slot index. Readers copy the active slot and retry when
// the sequence moved underneath them — they never observe a torn snapshot.
// All shared words are accessed through std::atomic_ref so in-process
// readers (live attach while the session runs) are exact under TSan, and
// cross-process readers see release/acquire-ordered publication.
#pragma once

#include <array>
#include <cstddef>
#include <filesystem>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "isa/events.hpp"

namespace bgp::fault {
class DaemonFaultInjector;
}

namespace bgp::daemon {

inline constexpr char kSnapMagic[8] = {'B', 'G', 'P', 'S',
                                       'N', 'A', 'P', '\0'};
inline constexpr u32 kSnapVersion = 1;
/// Fixed name-field capacity in the header (truncation is fine: names only
/// label the file for humans; the authoritative copy is in the daemon).
inline constexpr std::size_t kSnapNameBytes = 120;
/// Default capacity of each metrics-text slot.
inline constexpr std::size_t kSnapMetricsCapacity = 64 * 1024;

/// Node lifecycle as seen through the snapshot.
enum class SnapState : u32 {
  kIdle = 0,      ///< initialized, counters not yet started
  kCounting = 1,  ///< mid-run live counters
  kFinal = 2,     ///< the session ended; this is the last word
};

/// One decoded node snapshot (a consistent copy of one slot).
struct NodeSnapshot {
  u32 node_id = 0;
  u32 card_id = 0;
  u32 mode = 0;
  SnapState state = SnapState::kIdle;
  cycles_t published_cycle = 0;
  std::array<u64, isa::kCountersPerUnit> counters{};
};

/// Writer side: creates (or truncates) the file, maps it shared, and
/// publishes slots. One writer per file; publish_node for different nodes
/// may run concurrently (each node block is independent), publish_metrics
/// must come from one thread at a time.
class SnapshotWriter {
 public:
  SnapshotWriter(const std::filesystem::path& path, const std::string& app,
                 const std::string& session, unsigned num_nodes,
                 std::size_t metrics_capacity = kSnapMetricsCapacity,
                 fault::DaemonFaultInjector* faults = nullptr);
  ~SnapshotWriter();
  SnapshotWriter(const SnapshotWriter&) = delete;
  SnapshotWriter& operator=(const SnapshotWriter&) = delete;

  void publish_node(unsigned node, u32 node_id, u32 card_id, u32 mode,
                    SnapState state, cycles_t now,
                    const std::array<u64, isa::kCountersPerUnit>& counters);
  /// Truncated to the slot capacity when the exposition outgrew it.
  void publish_metrics(std::string_view text);

  [[nodiscard]] const std::filesystem::path& path() const noexcept {
    return path_;
  }
  /// The live mapping — hand to SnapshotReader::from_view for in-process
  /// attach (the TSan-exercised path).
  [[nodiscard]] const std::byte* data() const noexcept { return map_; }
  [[nodiscard]] std::size_t size() const noexcept { return map_bytes_; }
  [[nodiscard]] unsigned num_nodes() const noexcept { return num_nodes_; }

 private:
  std::filesystem::path path_;
  unsigned num_nodes_ = 0;
  std::size_t metrics_capacity_ = 0;
  std::byte* map_ = nullptr;
  std::size_t map_bytes_ = 0;
  fault::DaemonFaultInjector* faults_ = nullptr;
};

/// Why a slot read failed — readers that outlive the writer (post-crash
/// attach, salvage) must distinguish a writer that died mid-publish
/// (seqlock held forever → kBusy, the "writer gone / snapshot stale" case)
/// from on-disk corruption (kCorrupt).
enum class SnapReadStatus : u8 {
  kOk = 0,
  kBusy = 1,     ///< seqlock never stabilized within the retry budget
  kCorrupt = 2,  ///< stable sequence but CRC mismatch, or node out of range
};

[[nodiscard]] const char* to_string(SnapReadStatus status) noexcept;

/// Reader side: maps the file (or wraps an in-process writer's view) and
/// copies out consistent slots.
class SnapshotReader {
 public:
  /// mmap a snapshot file read-only. Throws on missing/short/foreign files.
  [[nodiscard]] static SnapshotReader open_file(
      const std::filesystem::path& path);
  /// Wrap a live in-process mapping (no ownership).
  [[nodiscard]] static SnapshotReader from_view(const std::byte* data,
                                                std::size_t size);
  ~SnapshotReader();
  SnapshotReader(SnapshotReader&& other) noexcept;
  SnapshotReader& operator=(SnapshotReader&&) = delete;
  SnapshotReader(const SnapshotReader&) = delete;
  SnapshotReader& operator=(const SnapshotReader&) = delete;

  [[nodiscard]] unsigned num_nodes() const noexcept { return num_nodes_; }
  [[nodiscard]] const std::string& app() const noexcept { return app_; }
  [[nodiscard]] const std::string& session() const noexcept {
    return session_;
  }

  /// Copy a consistent snapshot of `node`'s active slot. Retries while the
  /// writer races; false after `max_retries` failed attempts (pathological
  /// writer churn) or a CRC mismatch (foreign corruption).
  [[nodiscard]] bool read_node(unsigned node, NodeSnapshot& out,
                               unsigned max_retries = 64) const;
  /// read_node with the failure cause split out (kBusy = writer mid-publish
  /// or dead with the seqlock held; kCorrupt = CRC mismatch).
  [[nodiscard]] SnapReadStatus read_node_status(
      unsigned node, NodeSnapshot& out, unsigned max_retries = 64) const;
  /// Copy a consistent metrics exposition. Empty text with `true` simply
  /// means nothing was published yet.
  [[nodiscard]] bool read_metrics(std::string& out,
                                  unsigned max_retries = 64) const;

 private:
  SnapshotReader() = default;
  void init(const std::byte* data, std::size_t size);

  const std::byte* base_ = nullptr;
  std::size_t bytes_ = 0;
  bool owns_map_ = false;
  unsigned num_nodes_ = 0;
  std::size_t metrics_capacity_ = 0;
  std::string app_;
  std::string session_;
};

}  // namespace bgp::daemon
